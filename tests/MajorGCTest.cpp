//===- tests/MajorGCTest.cpp - major collection behaviour (Fig. 3) --------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace manti;
using namespace manti::test;

TEST(MajorGC, YoungDataStaysLocal) {
  // Runs under MANTI_STRESS_GC too (it used to be skipped): a stress
  // period longer than this test's allocation count keeps the forced
  // collections out of the setup, so the zero-promotion premise holds
  // while the stress plumbing (period schedule included) still runs.
  // The MANTI_STRESS_GC_PERIOD env override would clobber the pinned
  // period, so shelve it around the world's construction.
  ScopedUnsetEnv NoPeriod("MANTI_STRESS_GC_PERIOD");
  GCConfig Cfg = smallConfig();
  Cfg.StressGCPeriod = 1u << 20;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 30));
  // majorGC runs its own preceding minor; the list is copied by that
  // minor and is therefore young -- it must NOT be promoted ("the young
  // data are guaranteed to be live ... we do not copy it to the global
  // heap").
  H.majorGC();
  EXPECT_TRUE(isLocalTo(H, List));
  EXPECT_EQ(H.Stats.MajorBytesPromoted, 0u);
  EXPECT_EQ(listSum(List), intListSum(30));
}

TEST(MajorGC, OldDataIsPromotedToGlobal) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 30));
  H.minorGC(); // List becomes young
  H.minorGC(); // List becomes old
  H.majorGC(); // old data moves to the global heap
  EXPECT_FALSE(isLocalTo(H, List));
  EXPECT_TRUE(isGlobal(TW.World, List));
  EXPECT_GT(H.Stats.MajorBytesPromoted, 0u);
  EXPECT_EQ(listSum(List), intListSum(30));
}

TEST(MajorGC, YoungSlidesToHeapBase) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &OldList = Frame.root(makeIntList(H, 40));
  H.minorGC();
  H.minorGC(); // OldList now old
  Value &YoungList = Frame.root(makeIntList(H, 25));
  H.majorGC(); // minor copies YoungList to young, then old evacuates
  // After the slide, the retained data occupies [base, oldTop) (Fig. 3).
  EXPECT_TRUE(H.local().inOldData(YoungList.asPtr()))
      << "slid young data becomes the old area";
  EXPECT_EQ(H.local().youngStart(), H.local().oldTop())
      << "young area is empty until the next minor collection";
  EXPECT_GT(H.Stats.MajorBytesSlid, 0u);
  EXPECT_EQ(listSum(YoungList), intListSum(25));
  EXPECT_EQ(listSum(OldList), intListSum(40));
}

TEST(MajorGC, CrossRegionPointersAreRewritten) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &OldTail = Frame.root(makeIntList(H, 10));
  H.minorGC();
  H.minorGC(); // OldTail is old
  // New cell referencing old data: young -> old edge at major time.
  Value &Young = Frame.root(cons(H, Value::fromInt(99), OldTail));
  H.majorGC();
  EXPECT_TRUE(isLocalTo(H, Young));
  Value Tail = vectorGet(Young, 1);
  EXPECT_TRUE(isGlobal(TW.World, Tail))
      << "young object's field must point at the promoted copy";
  EXPECT_EQ(listSum(Tail), intListSum(10));
}

TEST(MajorGC, GlobalCopiesReferenceGlobalCopies) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 50));
  H.minorGC();
  H.minorGC();
  H.majorGC();
  // Walk the promoted list: every cell must be global (the evacuator
  // drains transitively).
  Value Cur = List;
  while (!Cur.isNil()) {
    EXPECT_TRUE(isGlobal(TW.World, Cur));
    Cur = vectorGet(Cur, 1);
  }
  verifyHeap(H);
}

TEST(MajorGC, EmptyHeapIsANoop) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  H.majorGC();
  EXPECT_EQ(H.Stats.MajorBytesPromoted, 0u);
  EXPECT_EQ(H.local().localDataBytes(), 0u);
}

TEST(MajorGC, TriggeredByNurseryThreshold) {
  GCConfig Cfg = smallConfig();
  Cfg.MinNurseryBytes = 30 * 1024; // aggressive threshold
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Keep a growing amount of live data so minor collections shrink the
  // nursery below the threshold and force majors.
  std::vector<Value> Lists(8);
  for (auto &Slot : Lists) {
    Frame.root(Slot);
    Slot = makeIntList(H, 400);
  }
  allocGarbage(H, 4000);
  EXPECT_GT(H.Stats.MajorPause.count(), 0u)
      << "slow path must escalate to a major collection";
  for (auto &Slot : Lists)
    EXPECT_EQ(listSum(Slot), intListSum(400));
}

TEST(MajorGC, StatsAccumulate) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &A = Frame.root(makeIntList(H, 100));
  H.minorGC();
  H.minorGC();
  H.majorGC();
  uint64_t First = H.Stats.MajorBytesPromoted;
  EXPECT_GT(First, 0u);
  Value &B = Frame.root(makeIntList(H, 100));
  H.minorGC();
  H.minorGC();
  H.majorGC();
  EXPECT_GT(H.Stats.MajorBytesPromoted, First);
  EXPECT_EQ(listSum(A), intListSum(100));
  EXPECT_EQ(listSum(B), intListSum(100));
}

TEST(MajorGC, RepeatedCyclesKeepInvariants) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 128));
  for (int I = 0; I < 6; ++I) {
    allocGarbage(H, 300);
    Value Temp = makeIntList(H, 64);
    (void)Temp;
    H.majorGC();
    ASSERT_EQ(listSum(Keep), intListSum(128)) << "cycle " << I;
    verifyHeap(H);
  }
}

TEST(MajorGC, MixedObjectsPromoteCorrectly) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  uint16_t Id = TW.World.descriptors().registerMixed("pairRawPtr", 2, {1});
  GcFrame Frame(H);
  Value &Inner = Frame.root(makeIntList(H, 7));
  // Rooted variant: see MinorGCTest -- the raw snapshot pattern breaks
  // under GCConfig::StressGC.
  Word Fields[2] = {12345, 0};
  Value *Slots[1] = {&Inner};
  Value &Mixed = Frame.root(gcinternal::allocMixedRooted(H, Id, Fields, Slots));
  H.minorGC();
  H.minorGC();
  H.majorGC();
  EXPECT_TRUE(isGlobal(TW.World, Mixed));
  EXPECT_EQ(mixedGetWord(Mixed, 0), 12345u);
  EXPECT_EQ(listSum(mixedGet(Mixed, 1)), intListSum(7));
}

TEST(MajorGC, TrafficIsRecorded) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Frame.root(makeIntList(H, 200));
  H.minorGC();
  H.minorGC();
  uint64_t Before = TW.World.traffic().totalBytes();
  H.majorGC();
  EXPECT_GT(TW.World.traffic().totalBytes(), Before)
      << "evacuation must be charged to the traffic ledger";
}
