//===- tests/LocalHeapTest.cpp - Appel heap layout tests ------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/LocalHeap.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

using namespace manti;

namespace {

struct HeapFixture : ::testing::Test {
  static constexpr std::size_t Bytes = 64 * 1024;
  void SetUp() override {
    Mem = std::aligned_alloc(8, Bytes);
    Heap = std::make_unique<LocalHeap>(Mem, Bytes);
  }
  void TearDown() override {
    Heap.reset();
    std::free(Mem);
  }
  void *Mem = nullptr;
  std::unique_ptr<LocalHeap> Heap;
};

} // namespace

TEST_F(HeapFixture, FreshHeapIsEmpty) {
  EXPECT_EQ(Heap->youngStart(), Heap->base());
  EXPECT_EQ(Heap->oldTop(), Heap->base());
  EXPECT_EQ(Heap->localDataBytes(), 0u);
  EXPECT_EQ(Heap->nurseryUsedBytes(), 0u);
}

TEST_F(HeapFixture, NurseryIsUpperHalfOfFreeSpace) {
  // With an empty heap, free space is the whole heap; the nursery is its
  // upper half (Fig. 2 right-hand side).
  std::size_t Words = Bytes / sizeof(Word);
  EXPECT_EQ(Heap->nurseryStart(), Heap->base() + Words - Words / 2);
  EXPECT_EQ(Heap->nurseryCapacityBytes(), Bytes / 2);
}

TEST_F(HeapFixture, AllocBumpsAndWritesHeader) {
  Word *Obj = Heap->tryAlloc(IdVector, 3);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(headerId(headerOf(Obj)), IdVector);
  EXPECT_EQ(headerLenWords(headerOf(Obj)), 3u);
  EXPECT_EQ(Heap->nurseryUsedBytes(), 4 * sizeof(Word));
  Word *Obj2 = Heap->tryAlloc(IdRaw, 1);
  ASSERT_NE(Obj2, nullptr);
  EXPECT_EQ(Obj2, Obj + 4) << "bump allocation is contiguous";
}

TEST_F(HeapFixture, AllocFailsWhenNurseryFull) {
  std::size_t NurseryWords = Heap->nurseryCapacityBytes() / sizeof(Word);
  // One object that fills the nursery exactly (minus its header).
  Word *Obj = Heap->tryAlloc(IdRaw, NurseryWords - 1);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Heap->tryAlloc(IdRaw, 1), nullptr);
}

TEST_F(HeapFixture, OversizeAllocFails) {
  std::size_t NurseryWords = Heap->nurseryCapacityBytes() / sizeof(Word);
  EXPECT_EQ(Heap->tryAlloc(IdRaw, NurseryWords), nullptr);
}

TEST_F(HeapFixture, RegionPredicates) {
  Word *Obj = Heap->tryAlloc(IdRaw, 2);
  ASSERT_NE(Obj, nullptr);
  EXPECT_TRUE(Heap->contains(Obj));
  EXPECT_TRUE(Heap->inNursery(Obj));
  EXPECT_FALSE(Heap->inOldData(Obj));
  EXPECT_FALSE(Heap->inYoungData(Obj));
  alignas(8) static Word Outside[2];
  EXPECT_FALSE(Heap->contains(&Outside[0]));
}

TEST_F(HeapFixture, SignalZeroesLimitAndAllocFails) {
  ASSERT_NE(Heap->tryAlloc(IdRaw, 1), nullptr);
  Heap->signalLimit();
  EXPECT_TRUE(Heap->limitSignalled());
  EXPECT_EQ(Heap->tryAlloc(IdRaw, 1), nullptr)
      << "zeroed limit must force the slow path (Section 3.4 step 2)";
  Heap->restoreLimit();
  EXPECT_FALSE(Heap->limitSignalled());
  EXPECT_NE(Heap->tryAlloc(IdRaw, 1), nullptr);
}

TEST_F(HeapFixture, SetRegionsMovesBoundaries) {
  Word *Base = Heap->base();
  Heap->setRegions(Base + 100, Base + 200);
  EXPECT_TRUE(Heap->inOldData(Base + 50));
  EXPECT_TRUE(Heap->inYoungData(Base + 150));
  EXPECT_FALSE(Heap->inYoungData(Base + 250));
  EXPECT_EQ(Heap->localDataBytes(), 200 * sizeof(Word));
}

TEST_F(HeapFixture, ResplitAfterGrowthShrinksNursery) {
  Word *Base = Heap->base();
  std::size_t Words = Bytes / sizeof(Word);
  Heap->setRegions(Base + Words / 4, Base + Words / 2);
  Heap->resplitNursery();
  // Free space is the upper half; nursery is its upper half = top 1/4.
  EXPECT_EQ(Heap->nurseryCapacityBytes(), Bytes / 4);
  // The reserve gap is at least as large as the nursery, so a fully-live
  // nursery can always be copied (minor-GC safety property).
  std::size_t Gap = static_cast<std::size_t>(Heap->nurseryStart() -
                                             Heap->oldTop()) *
                    sizeof(Word);
  EXPECT_GE(Gap, Heap->nurseryCapacityBytes());
}

TEST_F(HeapFixture, GapAlwaysCoversNursery) {
  // Property: for any old-top position, resplit leaves gap >= nursery.
  Word *Base = Heap->base();
  std::size_t Words = Bytes / sizeof(Word);
  for (std::size_t Used = 0; Used < Words; Used += Words / 13) {
    Heap->setRegions(Base + Used, Base + Used);
    Heap->resplitNursery();
    std::size_t Gap =
        static_cast<std::size_t>(Heap->nurseryStart() - Heap->oldTop());
    std::size_t Nursery =
        static_cast<std::size_t>(Heap->top() - Heap->nurseryStart());
    EXPECT_GE(Gap, Nursery) << "at used=" << Used;
  }
}

TEST_F(HeapFixture, ResetEmptiesEverything) {
  ASSERT_NE(Heap->tryAlloc(IdRaw, 5), nullptr);
  Heap->setRegions(Heap->base() + 10, Heap->base() + 20);
  Heap->reset();
  EXPECT_EQ(Heap->localDataBytes(), 0u);
  EXPECT_EQ(Heap->nurseryUsedBytes(), 0u);
}
