//===- tests/MinorGCTest.cpp - minor collection behaviour (Fig. 2) --------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"

#include <gtest/gtest.h>

#include <type_traits>

// The internal GcFrame::root proxy binds as Value& but refuses the
// silently-unrooting by-value copy (the public RootScope analogue is
// asserted in HandlesTest.cpp).
static_assert(std::is_convertible_v<manti::RootedSlot, manti::Value &>,
              "RootedSlot must bind as Value&");
static_assert(!std::is_convertible_v<manti::RootedSlot, manti::Value>,
              "Value X = Frame.root(...) must not compile");

using namespace manti;
using namespace manti::test;

TEST(MinorGC, LiveDataSurvives) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 100));
  H.minorGC();
  EXPECT_EQ(listLength(List), 100);
  EXPECT_EQ(listSum(List), intListSum(100));
}

TEST(MinorGC, RootSlotIsForwarded) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 4));
  Word *Before = List.asPtr();
  ASSERT_TRUE(H.local().inNursery(Before));
  H.minorGC();
  EXPECT_NE(List.asPtr(), Before) << "object moved out of the nursery";
  EXPECT_TRUE(H.local().inYoungData(List.asPtr()))
      << "minor GC output is the young-data area";
}

TEST(MinorGC, GarbageIsReclaimed) {
  // Runs under MANTI_STRESS_GC too (it used to be skipped): a stress
  // period longer than this test's allocation count keeps the forced
  // collections away from the phase-exact byte accounting below. The
  // MANTI_STRESS_GC_PERIOD env override would clobber the pinned
  // period, so shelve it around the world's construction.
  ScopedUnsetEnv NoPeriod("MANTI_STRESS_GC_PERIOD");
  GCConfig Cfg = smallConfig();
  Cfg.StressGCPeriod = 1u << 20;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Live = Frame.root(makeIntList(H, 10));
  allocGarbage(H, 200);
  std::size_t UsedBefore = H.local().nurseryUsedBytes();
  H.minorGC();
  EXPECT_GT(H.Stats.MinorBytesReclaimed, 0u);
  EXPECT_LT(H.Stats.MinorBytesCopied, UsedBefore);
  EXPECT_EQ(listSum(Live), intListSum(10));
}

TEST(MinorGC, EmptyNurseryIsCheap) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  H.minorGC();
  EXPECT_EQ(H.Stats.MinorBytesCopied, 0u);
  EXPECT_EQ(H.local().localDataBytes(), 0u);
}

TEST(MinorGC, SharedStructureStaysShared) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Shared = Frame.root(makeIntList(H, 5));
  Value &A = Frame.root(cons(H, Value::fromInt(1), Shared));
  Value &B = Frame.root(cons(H, Value::fromInt(2), Shared));
  H.minorGC();
  EXPECT_EQ(vectorGet(A, 1).asPtr(), vectorGet(B, 1).asPtr())
      << "forwarding must preserve sharing, not duplicate the tail";
  EXPECT_EQ(listSum(vectorGet(A, 1)), intListSum(5));
}

TEST(MinorGC, NurseryResetAfterCollection) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Frame.root(makeIntList(H, 50));
  H.minorGC();
  EXPECT_EQ(H.local().nurseryUsedBytes(), 0u);
  EXPECT_GT(H.local().nurseryCapacityBytes(), 0u);
}

TEST(MinorGC, SecondMinorTurnsYoungIntoOld) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 20));
  H.minorGC();
  ASSERT_TRUE(H.local().inYoungData(List.asPtr()));
  H.minorGC(); // nothing new in the nursery
  EXPECT_TRUE(H.local().inOldData(List.asPtr()))
      << "young data is only what the last minor collection copied";
  EXPECT_EQ(listSum(List), intListSum(20));
}

TEST(MinorGC, ManyCollectionsPreserveDeepStructure) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 300));
  for (int I = 0; I < 10; ++I) {
    allocGarbage(H, 50);
    H.minorGC();
    ASSERT_EQ(listLength(List), 300) << "iteration " << I;
    ASSERT_EQ(listSum(List), intListSum(300)) << "iteration " << I;
  }
}

TEST(MinorGC, AutomaticallyTriggeredBySlowPath) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 10));
  // Allocate until the nursery must have cycled several times.
  allocGarbage(H, 20000);
  EXPECT_GT(H.Stats.MinorPause.count(), 0u);
  EXPECT_EQ(listSum(List), intListSum(10));
}

TEST(MinorGC, InvariantsHoldAfterCollections) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 64));
  allocGarbage(H, 500);
  H.minorGC();
  VerifyResult R = verifyHeap(H);
  EXPECT_GE(R.LocalObjects, 64u);
  EXPECT_EQ(listSum(List), intListSum(64));
}

TEST(MinorGC, MixedObjectsAreScannedViaDescriptors) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  // A mixed type: [rawWord, ptr, rawWord] -- only word 1 is a pointer.
  uint16_t Id = TW.World.descriptors().registerMixed("triple", 3, {1});
  GcFrame Frame(H);
  Value &Inner = Frame.root(makeIntList(H, 3));
  // The rooted variant re-reads Inner after the allocation: the raw
  // snapshot pattern breaks under GCConfig::StressGC, which collects
  // inside every allocation.
  Word Fields[3] = {0xDEAD, 0, 0xBEEF};
  Value *Slots[1] = {&Inner};
  Value &Mixed = Frame.root(gcinternal::allocMixedRooted(H, Id, Fields, Slots));
  H.minorGC();
  EXPECT_EQ(mixedGetWord(Mixed, 0), 0xDEADu);
  EXPECT_EQ(mixedGetWord(Mixed, 2), 0xBEEFu);
  EXPECT_EQ(listSum(mixedGet(Mixed, 1)), intListSum(3))
      << "pointer field must be forwarded by the generated scanner";
}

TEST(MinorGC, AllocMixedRootedSurvivesMidAllocationCollection) {
  // Build a long chain of mixed nodes; the allocations trigger many
  // collections mid-build, and the rooted-slot variant must never leave
  // stale child pointers behind.
  TestWorld TW;
  VProcHeap &H = TW.heap();
  uint16_t Id = TW.World.descriptors().registerMixed("chain", 3, {0});
  GcFrame Frame(H);
  Value &Root = Frame.root(Value::nil());
  const int64_t N = 20000; // far beyond one nursery
  for (int64_t I = 0; I < N; ++I) {
    Word Fields[3] = {Root.bits(), static_cast<Word>(I), 0};
    Value *Slots[1] = {&Root};
    Root = gcinternal::allocMixedRooted(H, Id, Fields, Slots);
  }
  EXPECT_GT(H.Stats.MinorPause.count(), 0u) << "build must have collected";
  int64_t Len = 0;
  for (Value Cur = Root; !Cur.isNil(); Cur = mixedGet(Cur, 0))
    ++Len;
  EXPECT_EQ(Len, N);
}

TEST(MinorGC, SizeClassCacheServesHitsAndStaysVerifiable) {
  // Small-vector allocations are batch-carved into the size-class cache:
  // after the first (miss + refill), subsequent same-size allocations
  // must pop cached runs, and the heap must stay walkable with dormant
  // runs parked in the nursery.
  ScopedUnsetEnv NoStress("MANTI_STRESS_GC");
  ScopedUnsetEnv NoPeriod("MANTI_STRESS_GC_PERIOD");
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &A = Frame.root(cons(H, Value::fromInt(1), Value::nil()));
  EXPECT_GT(H.Stats.SizeClassMisses, 0u) << "first allocation is a refill";
  EXPECT_GT(H.sizeClassCachedRuns(), 0u) << "the refill parks spare runs";
  Value &B = Frame.root(cons(H, Value::fromInt(2), A));
  Value &C = Frame.root(cons(H, Value::fromInt(3), B));
  (void)C;
  EXPECT_GE(H.Stats.SizeClassHits, 2u) << "same-size allocations must hit";
  // verifyHeap aborts on any invariant violation: dormant runs must
  // keep the heap walkable.
  verifyHeap(H);
  EXPECT_EQ(listSum(C), 1 + 2 + 3);
}

TEST(MinorGC, SizeClassCacheIsInvalidatedByEveryCollectionFlavor) {
  // The cached runs live in the nursery; a run surviving any collection
  // would be a dangling pointer into recycled space. Populate the cache,
  // then check each collection flavor empties it and bumps the flush
  // counter. A stress period longer than the test's allocations keeps
  // the MANTI_STRESS_GC=1 CI lane from collecting (and flushing) between
  // the populate step and the assertions while still running this test's
  // own collections under the stress config.
  ScopedUnsetEnv NoPeriod("MANTI_STRESS_GC_PERIOD");
  GCConfig Cfg = smallConfig();
  Cfg.StressGCPeriod = 1u << 20;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Live = Frame.root(Value::nil());

  auto Populate = [&] {
    Live = cons(H, Value::fromInt(7), Value::nil());
    ASSERT_GT(H.sizeClassCachedRuns(), 0u) << "refill must park spare runs";
  };

  Populate();
  uint64_t Flushes = H.Stats.SizeClassFlushes;
  H.minorGC();
  EXPECT_EQ(H.sizeClassCachedRuns(), 0u) << "minor GC must flush the cache";
  EXPECT_GT(H.Stats.SizeClassFlushes, Flushes);

  Populate();
  Flushes = H.Stats.SizeClassFlushes;
  H.majorGC();
  EXPECT_EQ(H.sizeClassCachedRuns(), 0u) << "major GC must flush the cache";
  EXPECT_GT(H.Stats.SizeClassFlushes, Flushes);

  Populate();
  Flushes = H.Stats.SizeClassFlushes;
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_EQ(H.sizeClassCachedRuns(), 0u)
      << "global GC participation must flush the cache";
  EXPECT_GT(H.Stats.SizeClassFlushes, Flushes);

  EXPECT_EQ(vectorGet(Live, 0).asInt(), 7);
  verifyHeap(H);
}

TEST(MinorGC, RawObjectsAreNotScanned) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Raw payload that would look like a pointer if misinterpreted.
  uint64_t Bogus[4] = {0x10, 0x20, 0x30, 0x40};
  Value &Raw = Frame.root(H.allocRaw(Bogus, sizeof(Bogus)));
  H.minorGC();
  EXPECT_EQ(rawSizeBytes(Raw), sizeof(Bogus));
  EXPECT_EQ(static_cast<uint64_t *>(rawData(Raw))[3], 0x40u);
}
