//===- tests/MemoryBanksTest.cpp - tests for numa/MemoryBanks -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/MemoryBanks.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

using namespace manti;

TEST(MemoryBanks, AllocRecordsHomeNode) {
  MemoryBanks Banks(4);
  void *A = Banks.allocBlock(8192, 2);
  void *B = Banks.allocBlock(4096, 0);
  EXPECT_EQ(Banks.nodeOf(A), 2);
  EXPECT_EQ(Banks.nodeOf(B), 0);
}

TEST(MemoryBanks, InteriorPointersResolve) {
  MemoryBanks Banks(2);
  char *A = static_cast<char *>(Banks.allocBlock(16384, 1));
  EXPECT_EQ(Banks.nodeOf(A + 1), 1);
  EXPECT_EQ(Banks.nodeOf(A + 16383), 1);
}

TEST(MemoryBanks, UnknownAddressIsMinusOne) {
  MemoryBanks Banks(2);
  int Local = 0;
  EXPECT_EQ(Banks.nodeOf(&Local), -1);
}

TEST(MemoryBanks, BlocksArePageAligned) {
  MemoryBanks Banks(1);
  void *A = Banks.allocBlock(100, 0); // rounds to one page
  EXPECT_EQ(reinterpret_cast<uintptr_t>(A) % MemoryBanks::PageSize, 0u);
}

TEST(MemoryBanks, CustomAlignmentHonored) {
  MemoryBanks Banks(1);
  void *A = Banks.allocBlock(1 << 16, 0, 1 << 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(A) % (1 << 16), 0u);
}

TEST(MemoryBanks, FreeListReusesBlock) {
  MemoryBanks Banks(2);
  void *A = Banks.allocBlock(8192, 1);
  Banks.freeBlock(A, 8192);
  void *B = Banks.allocBlock(8192, 1);
  EXPECT_EQ(A, B) << "recycled block should come back on the same node";
}

TEST(MemoryBanks, FreeListIsPerNode) {
  MemoryBanks Banks(2);
  void *A = Banks.allocBlock(8192, 0);
  Banks.freeBlock(A, 8192);
  void *B = Banks.allocBlock(8192, 1);
  EXPECT_NE(A, B) << "node 1 must not steal node 0's recycled block";
}

TEST(MemoryBanks, InUseAccounting) {
  MemoryBanks Banks(2);
  EXPECT_EQ(Banks.bytesInUse(0), 0u);
  void *A = Banks.allocBlock(4096, 0);
  EXPECT_EQ(Banks.bytesInUse(0), 4096u);
  EXPECT_EQ(Banks.bytesInUse(1), 0u);
  Banks.freeBlock(A, 4096);
  EXPECT_EQ(Banks.bytesInUse(0), 0u);
  EXPECT_GE(Banks.bytesReserved(0), 4096u);
}

TEST(MemoryBanks, DifferentAlignmentsDoNotMix) {
  MemoryBanks Banks(1);
  void *A = Banks.allocBlock(1 << 14, 0, 1 << 14);
  Banks.freeBlock(A, 1 << 14, 1 << 14);
  // A page-aligned request of the same size must not return the block
  // unless it happens to satisfy alignment; requesting the aligned shape
  // gets it back.
  void *B = Banks.allocBlock(1 << 14, 0, 1 << 14);
  EXPECT_EQ(A, B);
}

TEST(MemoryBanks, ConcurrentAllocFree) {
  MemoryBanks Banks(4);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T) {
    Threads.emplace_back([&Banks, T] {
      std::vector<void *> Blocks;
      for (int I = 0; I < 50; ++I)
        Blocks.push_back(Banks.allocBlock(4096, T % 4));
      for (void *B : Blocks) {
        EXPECT_EQ(Banks.nodeOf(B), static_cast<int>(T % 4));
        Banks.freeBlock(B, 4096);
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  for (unsigned N = 0; N < 4; ++N)
    EXPECT_EQ(Banks.bytesInUse(N), 0u);
}

TEST(MemoryBanks, WritableMemory) {
  MemoryBanks Banks(1);
  char *A = static_cast<char *>(Banks.allocBlock(4096, 0));
  std::memset(A, 0xAB, 4096);
  EXPECT_EQ(static_cast<unsigned char>(A[4095]), 0xABu);
}
