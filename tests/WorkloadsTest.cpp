//===- tests/WorkloadsTest.cpp - benchmark workload correctness -----------===//
//
// Part of the manticore-gc project. Each of the paper's five benchmarks
// is validated against a serial reference or an internal invariant.
//
//===----------------------------------------------------------------------===//

#include "workloads/BarnesHut.h"
#include "workloads/Dmm.h"
#include "workloads/Quicksort.h"
#include "workloads/Raytracer.h"
#include "workloads/Smvm.h"

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "runtime/Rope.h"

#include "support/XorShift.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

using namespace manti;
using namespace manti::test;
using namespace manti::workloads;

namespace {

RuntimeConfig wlConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.GC.LocalHeapBytes = 256 * 1024;
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Quicksort
//===----------------------------------------------------------------------===//

TEST(QuicksortWL, SortsCorrectly) {
  Runtime RT(wlConfig(4), Topology::uniform(2, 2));
  static QuicksortResult Res;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        QuicksortParams P;
        P.NumElements = 20000;
        P.Cutoff = 512;
        Res = runQuicksort(RT, VP, P);
      },
      nullptr);
  EXPECT_TRUE(Res.Sorted);
  EXPECT_EQ(Res.Length, 20000);
}

TEST(QuicksortWL, SmallAndDegenerateInputs) {
  Runtime RT(wlConfig(2), Topology::uniform(2, 1));
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        for (int64_t N : {int64_t(1), int64_t(2), int64_t(100)}) {
          QuicksortParams P;
          P.NumElements = N;
          P.Cutoff = 4;
          QuicksortResult R = runQuicksort(RT, VP, P);
          EXPECT_TRUE(R.Sorted) << "N=" << N;
        }
      },
      nullptr);
}

namespace {

struct RootSortPack {
  JoinCounter Join{1};
  int64_t Cutoff = 256;
  bool Sorted = false;
};

void rootSortTask(Runtime &RT, VProc &VP, Task T) {
  auto *Pack = static_cast<RootSortPack *>(T.Ctx);
  RootScope Scope(VP.heap());
  Scope.rootExternal(T.Env);
  Ref<> Out = Scope.root(quicksort(RT, VP, T.Env, Pack->Cutoff));
  int64_t N = rope::length(Out);
  Pack->Sorted = true;
  for (int64_t I = 1; I < N && Pack->Sorted; ++I)
    Pack->Sorted = rope::getInt(Out, I - 1) <= rope::getInt(Out, I);
  Pack->Join.sub();
}

} // namespace

TEST(QuicksortWL, StealsPromoteRopeEnvironments) {
  // The recursive sub-sorts carry rope environments. Spawn the whole
  // sort as a task the main vproc refuses to run: a worker must steal
  // it, promoting the input rope (lazy promotion at steal time).
  Runtime RT(wlConfig(4), Topology::uniform(2, 2));
  static RootSortPack Pack;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        XorShift64 Rng(99);
        std::vector<uint64_t> In(20000);
        for (auto &W : In)
          W = Rng.next() >> 8;
        Ref<> R = rope::fromArray(Scope, In.data(),
                                  static_cast<int64_t>(In.size()));
        VP.spawn({rootSortTask, &Pack, R, 0, 0});
        while (!Pack.Join.done()) {
          VP.poll(); // answer the steal, never run the task ourselves
          std::this_thread::yield();
        }
      },
      nullptr);
  EXPECT_TRUE(Pack.Sorted);
  GCStats Total = RT.world().aggregateStats();
  EXPECT_GT(Total.PromoteBytes, 0u)
      << "the stolen root sort must promote its input rope";
  EXPECT_GT(RT.vproc(0).stealsServiced(), 0u);
  verifyWorld(RT.world());
}

//===----------------------------------------------------------------------===//
// Barnes-Hut
//===----------------------------------------------------------------------===//

TEST(BarnesHutWL, PlummerIsDeterministic) {
  Bodies A = plummerDistribution(500, 7);
  Bodies B = plummerDistribution(500, 7);
  EXPECT_EQ(A.X, B.X);
  EXPECT_EQ(A.Y, B.Y);
  Bodies C = plummerDistribution(500, 8);
  EXPECT_NE(A.X, C.X);
}

TEST(BarnesHutWL, TreeForceApproximatesDirectForce) {
  TestWorld TW(1, smallConfig());
  registerBarnesHutDescriptors(TW.World);
  Bodies B = plummerDistribution(400, 21);
  RootScope Scope(TW.heap());
  Ref<> Root = Scope.root(buildQuadtree(TW.heap(), B));

  double MaxRel = 0.0;
  for (int64_t I = 0; I < B.size(); I += 7) {
    double Ax, Ay, Dx, Dy;
    treeForce(Root, B, I, /*Theta=*/0.3, &Ax, &Ay);
    directForce(B, I, &Dx, &Dy);
    double Mag = std::sqrt(Dx * Dx + Dy * Dy);
    double Err = std::sqrt((Ax - Dx) * (Ax - Dx) + (Ay - Dy) * (Ay - Dy));
    if (Mag > 1e-9)
      MaxRel = std::max(MaxRel, Err / Mag);
  }
  EXPECT_LT(MaxRel, 0.05) << "theta=0.3 should be within 5% of direct";
}

TEST(BarnesHutWL, TreeMassEqualsTotalMass) {
  TestWorld TW(1, smallConfig());
  registerBarnesHutDescriptors(TW.World);
  Bodies B = plummerDistribution(1000, 3);
  RootScope Scope(TW.heap());
  Ref<BhNode> Root = Scope.rootAs<BhNode>(buildQuadtree(TW.heap(), B));
  ASSERT_TRUE(Root.isPtr());
  ASSERT_EQ(objectId(Root), TW.World.BhNodeId);
  EXPECT_NEAR(Root.get<&BhNode::Mass>(), 1.0, 1e-9)
      << "Plummer masses sum to 1";
  EXPECT_EQ(Root.get<&BhNode::Count>(), 1000);
}

TEST(BarnesHutWL, FullRunConservesMomentumRoughly) {
  Runtime RT(wlConfig(4), Topology::uniform(2, 2));
  static BarnesHutResult Res;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        BarnesHutParams P;
        P.NumBodies = 2000;
        P.Iterations = 3;
        Res = runBarnesHut(RT, VP, P);
      },
      nullptr);
  EXPECT_TRUE(std::isfinite(Res.KineticEnergy));
  EXPECT_GT(Res.KineticEnergy, 0.0);
  // Center of mass should stay near the origin for a symmetric system.
  EXPECT_LT(std::fabs(Res.CenterOfMassX), 0.5);
  EXPECT_LT(std::fabs(Res.CenterOfMassY), 0.5);
}

TEST(BarnesHutWL, RunIsDeterministicAcrossVProcCounts) {
  static BarnesHutResult R1, R4;
  {
    Runtime RT(wlConfig(1), Topology::singleNode(1));
    RT.run(
        [](Runtime &RT, VProc &VP, void *) {
          BarnesHutParams P;
          P.NumBodies = 800;
          P.Iterations = 2;
          R1 = runBarnesHut(RT, VP, P);
        },
        nullptr);
  }
  {
    Runtime RT(wlConfig(4), Topology::uniform(2, 2));
    RT.run(
        [](Runtime &RT, VProc &VP, void *) {
          BarnesHutParams P;
          P.NumBodies = 800;
          P.Iterations = 2;
          R4 = runBarnesHut(RT, VP, P);
        },
        nullptr);
  }
  EXPECT_NEAR(R1.KineticEnergy, R4.KineticEnergy, 1e-12)
      << "same physics regardless of parallelism";
}

//===----------------------------------------------------------------------===//
// Raytracer
//===----------------------------------------------------------------------===//

TEST(RaytracerWL, MatchesSerialPixelLoop) {
  Runtime RT(wlConfig(3), Topology::uniform(3, 1));
  static RaytracerResult Res;
  static RaytracerParams P;
  P.Width = 64;
  P.Height = 48;
  static std::vector<uint32_t> Image;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        Res = runRaytracer(RT, VP, P, &Image);
      },
      nullptr);

  ASSERT_EQ(Res.Pixels, int64_t(64) * 48);
  std::vector<Sphere> Scene = makeScene(P);
  uint64_t SerialSum = 0;
  for (int Y = 0; Y < P.Height; ++Y)
    for (int X = 0; X < P.Width; ++X) {
      uint32_t Pix = tracePixel(Scene, X, Y, P);
      SerialSum += Pix;
      ASSERT_EQ(Image[static_cast<std::size_t>(Y) * P.Width + X], Pix)
          << "pixel (" << X << "," << Y << ")";
    }
  EXPECT_EQ(Res.Checksum, SerialSum);
}

TEST(RaytracerWL, DeterministicAcrossRuns) {
  static uint64_t Sum1, Sum2;
  RaytracerParams P;
  P.Width = 40;
  P.Height = 40;
  for (uint64_t *Out : {&Sum1, &Sum2}) {
    Runtime RT(wlConfig(2), Topology::uniform(2, 1));
    static RaytracerParams SP;
    SP = P;
    static uint64_t *Dst;
    Dst = Out;
    RT.run(
        [](Runtime &RT, VProc &VP, void *) {
          *Dst = runRaytracer(RT, VP, SP).Checksum;
        },
        nullptr);
  }
  EXPECT_EQ(Sum1, Sum2);
}

TEST(RaytracerWL, SceneHasGroundAndSpheres) {
  RaytracerParams P;
  std::vector<Sphere> Scene = makeScene(P);
  EXPECT_EQ(Scene.size(), static_cast<std::size_t>(P.NumSpheres) + 1);
  EXPECT_GT(Scene[0].Radius, 100.0) << "ground sphere";
}

//===----------------------------------------------------------------------===//
// SMVM
//===----------------------------------------------------------------------===//

TEST(SmvmWL, ParallelMatchesSerial) {
  Runtime RT(wlConfig(4), Topology::uniform(2, 2));
  static SmvmResult Res;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        SmvmParams P;
        P.NumRows = 500;
        P.NumNonZeros = 20000;
        Res = runSmvm(RT, VP, P); // aborts internally on divergence
      },
      nullptr);
  EXPECT_EQ(Res.Rows, 500);
  EXPECT_GT(Res.ResultNorm1, 0.0);
}

TEST(SmvmWL, ProblemShapesMatchPaper) {
  TestWorld TW(1, smallConfig());
  RootScope Scope(TW.heap());
  SmvmParams P; // defaults are the paper's sizes
  EXPECT_EQ(P.NumRows, 16614);
  EXPECT_EQ(P.NumNonZeros, 1091362);
  // Build a scaled-down instance and check CSR structure.
  P.NumRows = 100;
  P.NumNonZeros = 1000;
  SmvmProblem Prob = makeProblem(TW.heap(), P);
  Scope.rootExternal(Prob.RowPtr);
  Scope.rootExternal(Prob.ColIdx);
  Scope.rootExternal(Prob.Vals);
  Scope.rootExternal(Prob.X);
  const auto *RowPtr = static_cast<const int64_t *>(rawData(Prob.RowPtr));
  EXPECT_EQ(RowPtr[0], 0);
  EXPECT_EQ(RowPtr[100], 1000);
  for (int R = 0; R < 100; ++R)
    EXPECT_LE(RowPtr[R], RowPtr[R + 1]);
  // Inputs are shared: they must be global.
  EXPECT_TRUE(isGlobal(TW.World, Prob.Vals));
  EXPECT_TRUE(isGlobal(TW.World, Prob.X));
}

//===----------------------------------------------------------------------===//
// DMM
//===----------------------------------------------------------------------===//

TEST(DmmWL, ParallelMatchesSerial) {
  Runtime RT(wlConfig(4), Topology::uniform(2, 2));
  static DmmResult Res;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        DmmParams P;
        P.N = 64;
        Res = runDmm(RT, VP, P); // aborts internally on divergence
      },
      nullptr);
  EXPECT_EQ(Res.N, 64);
  EXPECT_GT(Res.FrobeniusNorm, 0.0);
  EXPECT_TRUE(std::isfinite(Res.FrobeniusNorm));
}

TEST(DmmWL, SerialReferenceIdentity) {
  // A * I == A.
  const int64_t N = 16;
  std::vector<double> A(N * N), I(N * N, 0.0), C(N * N);
  for (int64_t K = 0; K < N * N; ++K)
    A[static_cast<std::size_t>(K)] = static_cast<double>(K % 7) - 3.0;
  for (int64_t D = 0; D < N; ++D)
    I[static_cast<std::size_t>(D * N + D)] = 1.0;
  dmmSerial(A.data(), I.data(), N, C.data());
  EXPECT_EQ(A, C);
}
