//===- tests/AllocPolicyTest.cpp - tests for numa/AllocPolicy -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/AllocPolicy.h"

#include <gtest/gtest.h>

using namespace manti;

TEST(AllocPolicy, LocalReturnsRequester) {
  AllocPolicy P(AllocPolicyKind::Local, 8);
  for (NodeId N = 0; N < 8; ++N)
    EXPECT_EQ(P.homeFor(N), N);
}

TEST(AllocPolicy, SingleNodeAlwaysZero) {
  AllocPolicy P(AllocPolicyKind::SingleNode, 8);
  for (NodeId N = 0; N < 8; ++N)
    EXPECT_EQ(P.homeFor(N), 0u);
}

TEST(AllocPolicy, InterleavedRoundRobins) {
  AllocPolicy P(AllocPolicyKind::Interleaved, 4);
  // Regardless of the requester, consecutive allocations cycle nodes.
  EXPECT_EQ(P.homeFor(3), 0u);
  EXPECT_EQ(P.homeFor(3), 1u);
  EXPECT_EQ(P.homeFor(0), 2u);
  EXPECT_EQ(P.homeFor(1), 3u);
  EXPECT_EQ(P.homeFor(2), 0u);
}

TEST(AllocPolicy, InterleavedBalances) {
  AllocPolicy P(AllocPolicyKind::Interleaved, 4);
  std::vector<unsigned> Count(4, 0);
  for (int I = 0; I < 400; ++I)
    ++Count[P.homeFor(0)];
  for (unsigned C : Count)
    EXPECT_EQ(C, 100u);
}

TEST(AllocPolicy, Names) {
  EXPECT_STREQ(allocPolicyName(AllocPolicyKind::Local), "local");
  EXPECT_STREQ(allocPolicyName(AllocPolicyKind::Interleaved), "interleaved");
  EXPECT_STREQ(allocPolicyName(AllocPolicyKind::SingleNode), "single-node");
}

TEST(AllocPolicy, ParseRoundTrip) {
  EXPECT_EQ(parseAllocPolicy("local"), AllocPolicyKind::Local);
  EXPECT_EQ(parseAllocPolicy("interleaved"), AllocPolicyKind::Interleaved);
  EXPECT_EQ(parseAllocPolicy("single-node"), AllocPolicyKind::SingleNode);
  EXPECT_EQ(parseAllocPolicy("socket0"), AllocPolicyKind::SingleNode);
  EXPECT_EQ(parseAllocPolicy("garbage"), AllocPolicyKind::Local);
}
