//===- tests/SupportTest.cpp - unit tests for src/support ----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"
#include "support/MathExtras.h"
#include "support/SpinLock.h"
#include "support/Stats.h"
#include "support/XorShift.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace manti;

TEST(MathExtras, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(uint64_t(1) << 47));
  EXPECT_FALSE(isPowerOf2((uint64_t(1) << 47) + 1));
}

TEST(MathExtras, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
  EXPECT_EQ(alignTo(4095, 4096), 4096u);
}

TEST(MathExtras, AlignDown) {
  EXPECT_EQ(alignDown(0, 8), 0u);
  EXPECT_EQ(alignDown(7, 8), 0u);
  EXPECT_EQ(alignDown(8, 8), 8u);
  EXPECT_EQ(alignDown(4097, 4096), 4096u);
}

TEST(MathExtras, DivideCeil) {
  EXPECT_EQ(divideCeil(0, 8), 0u);
  EXPECT_EQ(divideCeil(1, 8), 1u);
  EXPECT_EQ(divideCeil(8, 8), 1u);
  EXPECT_EQ(divideCeil(9, 8), 2u);
}

TEST(MathExtras, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(uint64_t(1) << 40), 40u);
}

TEST(MathExtras, NextPowerOf2) {
  EXPECT_EQ(nextPowerOf2(1), 1u);
  EXPECT_EQ(nextPowerOf2(3), 4u);
  EXPECT_EQ(nextPowerOf2(4), 4u);
  EXPECT_EQ(nextPowerOf2(1000), 1024u);
}

TEST(XorShift, Deterministic) {
  XorShift64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(XorShift, DifferentSeedsDiffer) {
  XorShift64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(XorShift, BelowRespectsBound) {
  XorShift64 R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(XorShift, DoubleInUnitInterval) {
  XorShift64 R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(XorShift, ZeroSeedIsRemapped) {
  XorShift64 R(0);
  EXPECT_NE(R.next(), 0u);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock Lock;
  int Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I < 1000; ++I) {
        std::lock_guard<SpinLock> Guard(Lock);
        ++Counter;
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Counter, 4000);
}

TEST(SpinLockTest, TryLock) {
  SpinLock Lock;
  EXPECT_TRUE(Lock.try_lock());
  EXPECT_FALSE(Lock.try_lock());
  Lock.unlock();
  EXPECT_TRUE(Lock.try_lock());
  Lock.unlock();
}

TEST(BarrierTest, SingleParticipantIsSerial) {
  Barrier B(1);
  EXPECT_TRUE(B.arriveAndWait());
  EXPECT_TRUE(B.arriveAndWait());
}

TEST(BarrierTest, ExactlyOneSerialThreadPerPhase) {
  constexpr unsigned N = 4;
  Barrier B(N);
  std::atomic<int> SerialCount{0};
  std::atomic<int> Phase2Count{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T) {
    Threads.emplace_back([&] {
      if (B.arriveAndWait())
        SerialCount.fetch_add(1);
      B.arriveAndWait();
      Phase2Count.fetch_add(1);
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(SerialCount.load(), 1);
  EXPECT_EQ(Phase2Count.load(), static_cast<int>(N));
}

TEST(BarrierTest, ReusableAcrossManyPhases) {
  constexpr unsigned N = 3;
  Barrier B(N);
  std::atomic<uint64_t> Sum{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T) {
    Threads.emplace_back([&] {
      for (int Phase = 0; Phase < 50; ++Phase) {
        Sum.fetch_add(1);
        B.arriveAndWait();
      }
    });
  }
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Sum.load(), 50u * N);
}

TEST(DurationStatTest, Accumulates) {
  DurationStat S;
  S.addSample(std::chrono::nanoseconds(10));
  S.addSample(std::chrono::nanoseconds(30));
  EXPECT_EQ(S.count(), 2u);
  EXPECT_EQ(S.totalNanos(), 40u);
  EXPECT_EQ(S.maxNanos(), 30u);
  EXPECT_DOUBLE_EQ(S.meanNanos(), 20.0);
}

TEST(DurationStatTest, Merge) {
  DurationStat A, B;
  A.addSample(std::chrono::nanoseconds(5));
  B.addSample(std::chrono::nanoseconds(50));
  A.merge(B);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_EQ(A.maxNanos(), 50u);
}

TEST(FormatBytesTest, Units) {
  char Buf[32];
  formatBytes(512, Buf, sizeof(Buf));
  EXPECT_STREQ(Buf, "512 B");
  formatBytes(2048, Buf, sizeof(Buf));
  EXPECT_STREQ(Buf, "2.00 KiB");
  formatBytes(3u << 20, Buf, sizeof(Buf));
  EXPECT_STREQ(Buf, "3.00 MiB");
}
