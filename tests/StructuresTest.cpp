//===- tests/StructuresTest.cpp - lock-free structure suite ---------------===//
//
// Part of the manticore-gc project.
//
// Correctness and linearizability smoke tests for the src/structures/
// ordered sets, in both reclamation flavors. The multi-thread hammers
// are the collector's adversarial mutators: they run with concurrent
// marking (started deterministically mid-hammer) and, in a separate
// test, with tiny budgets so stop-the-world copying collections move
// nodes between operations. The linearizability smoke is the per-key
// net-count invariant: successful inserts and erases of one key must
// alternate, so each key's (inserts - erases) is 0 or 1 and equals its
// final membership.
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "structures/EpochStructures.h"
#include "structures/GcStructures.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <vector>

using namespace manti;
using namespace manti::structures;
using namespace manti::test;

namespace {

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
  Z ^= Z >> 30;
  Z *= 0xBF58476D1CE4E5B9ull;
  Z ^= Z >> 27;
  Z *= 0x94D049BB133111EBull;
  Z ^= Z >> 31;
  return Z;
}

/// Runs Body(heap, tid) on one thread per vproc, then keeps every
/// thread in a safe-point drain loop until all are done and no
/// collection is in flight (a rendezvous needs every vproc).
template <typename Body>
void runWorkers(GCWorld &W, Body Fn) {
  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < W.numVProcs(); ++I) {
    Threads.emplace_back([&W, I, &Fn, &Done] {
      VProcHeap &H = W.heap(I);
      Fn(H, I);
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < W.numVProcs() ||
             W.collectionInProgress()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (auto &T : Threads)
    T.join();
}

/// Single-threaded set semantics shared by all four variants.
template <typename Set> void checkBasics(Set &S, VProcHeap &H) {
  EXPECT_FALSE(S.contains(H, 7));
  EXPECT_TRUE(S.insert(H, 7));
  EXPECT_FALSE(S.insert(H, 7)) << "duplicate insert must fail";
  EXPECT_TRUE(S.contains(H, 7));
  EXPECT_TRUE(S.insert(H, 3));
  EXPECT_TRUE(S.insert(H, 11));
  EXPECT_FALSE(S.erase(H, 5)) << "absent erase must fail";
  EXPECT_TRUE(S.erase(H, 7));
  EXPECT_FALSE(S.contains(H, 7));
  EXPECT_FALSE(S.erase(H, 7)) << "double erase must fail";
  EXPECT_TRUE(S.insert(H, 7)) << "re-insert after erase";

  std::vector<int64_t> Keys = S.keys();
  EXPECT_EQ(Keys, (std::vector<int64_t>{3, 7, 11}));
}

/// Larger shuffled workload: insert 0..N-1 in random order, erase the
/// odd keys, check order and membership.
template <typename Set> void checkManyKeys(Set &S, VProcHeap &H, int N) {
  std::vector<int64_t> Order(N);
  for (int I = 0; I < N; ++I)
    Order[I] = I;
  std::mt19937_64 Rng(42);
  std::shuffle(Order.begin(), Order.end(), Rng);
  for (int64_t K : Order)
    ASSERT_TRUE(S.insert(H, K));
  for (int64_t K = 1; K < N; K += 2)
    ASSERT_TRUE(S.erase(H, K));
  std::vector<int64_t> Keys = S.keys();
  ASSERT_EQ(Keys.size(), static_cast<std::size_t>((N + 1) / 2));
  EXPECT_TRUE(std::is_sorted(Keys.begin(), Keys.end()));
  for (std::size_t I = 0; I < Keys.size(); ++I)
    EXPECT_EQ(Keys[I], static_cast<int64_t>(2 * I));
  for (int64_t K = 0; K < N; ++K)
    ASSERT_EQ(S.contains(H, K), K % 2 == 0) << "key " << K;
}

struct HammerOptions {
  unsigned KeySpace = 96;
  int OpsPerThread = 1500;
  /// Vproc 0 starts a concurrent mark at this op index (-1: never).
  int StartConcMarkAt = -1;
  /// Vproc 0 requests stop-the-world globals at every multiple of this
  /// op index (0: never).
  int RequestStwEvery = 0;
};

/// The linearizability smoke: mixed ops from every vproc, per-key net
/// counters, then a quiescent sweep comparing counters to membership.
template <typename Set>
void hammerSet(GCWorld &W, Set &S, const HammerOptions &Opt) {
  std::vector<std::atomic<int>> Net(Opt.KeySpace);
  runWorkers(W, [&](VProcHeap &H, unsigned Tid) {
    uint64_t Seed = 0x5EED + Tid * 0xABCDull;
    for (int Op = 0; Op < Opt.OpsPerThread; ++Op) {
      if (Tid == 0 && Op == Opt.StartConcMarkAt &&
          !W.collectionInProgress())
        W.startConcurrentMark();
      if (Tid == 0 && Opt.RequestStwEvery > 0 && Op > 0 &&
          Op % Opt.RequestStwEvery == 0 && !W.collectionInProgress())
        W.requestGlobalGC();
      uint64_t Z = splitmix64(Seed);
      int64_t Key = static_cast<int64_t>((Z >> 8) % Opt.KeySpace);
      switch (Z % 16) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
      case 5:
        if (S.insert(H, Key))
          Net[Key].fetch_add(1, std::memory_order_relaxed);
        break;
      case 6:
      case 7:
      case 8:
      case 9:
      case 10:
      case 11:
        if (S.erase(H, Key))
          Net[Key].fetch_sub(1, std::memory_order_relaxed);
        break;
      default:
        (void)S.contains(H, Key);
        break;
      }
    }
  });

  std::vector<int64_t> Keys = S.keys();
  EXPECT_TRUE(std::is_sorted(Keys.begin(), Keys.end()));
  EXPECT_EQ(std::adjacent_find(Keys.begin(), Keys.end()), Keys.end())
      << "set holds a duplicate key";
  std::set<int64_t> Present(Keys.begin(), Keys.end());
  for (unsigned K = 0; K < Opt.KeySpace; ++K) {
    int N = Net[K].load(std::memory_order_relaxed);
    ASSERT_GE(N, 0) << "key " << K << ": more erases than inserts succeeded";
    ASSERT_LE(N, 1) << "key " << K << ": two concurrent inserts succeeded";
    EXPECT_EQ(N == 1, Present.count(K) == 1) << "key " << K;
  }
}

GCConfig concurrentConfig() {
  GCConfig Cfg = smallConfig();
  Cfg.ConcurrentGlobal = true;
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Single-threaded semantics
//===----------------------------------------------------------------------===//

TEST(Structures, GcListBasics) {
  TestWorld TW;
  GcReclaimer R(1);
  GcList S(TW.heap(), R);
  checkBasics(S, TW.heap());
  verifyHeap(TW.heap());
}

TEST(Structures, GcSkipListBasics) {
  TestWorld TW;
  GcReclaimer R(1);
  GcSkipList S(TW.heap(), R);
  checkBasics(S, TW.heap());
  verifyHeap(TW.heap());
}

TEST(Structures, EpochListBasics) {
  TestWorld TW;
  EpochReclaimer R(1);
  EpochList S(R);
  checkBasics(S, TW.heap());
}

TEST(Structures, EpochSkipListBasics) {
  TestWorld TW;
  EpochReclaimer R(1);
  EpochSkipList S(R);
  checkBasics(S, TW.heap());
}

TEST(Structures, GcSkipListManyKeysOrdered) {
  TestWorld TW;
  GcReclaimer R(1);
  GcSkipList S(TW.heap(), R);
  checkManyKeys(S, TW.heap(), 512);
  EXPECT_GT(R.stats().RetiredBytes, 0u);
  verifyWorld(TW.World);
}

TEST(Structures, EpochSkipListManyKeysOrdered) {
  TestWorld TW;
  EpochReclaimer R(1);
  {
    EpochSkipList S(R);
    checkManyKeys(S, TW.heap(), 512);
  }
  R.drain();
  ReclaimerStats St = R.stats();
  EXPECT_EQ(St.RetiredObjects, St.ReclaimedObjects)
      << "after drain every retired node must be reclaimed";
  EXPECT_EQ(St.RetiredBytes, St.ReclaimedBytes);
  EXPECT_GT(St.EpochAdvances, 0u) << "the global epoch never advanced";
}

//===----------------------------------------------------------------------===//
// Deterministic mutation under a stepped concurrent mark
//===----------------------------------------------------------------------===//

TEST(StructuresMidMark, GcSkipListMutatesDuringConcurrentMark) {
  GCConfig Cfg = smallConfig();
  Cfg.ConcurrentGlobal = true;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcReclaimer R(1);
  GcSkipList S(H, R);
  for (int64_t K = 0; K < 128; ++K)
    ASSERT_TRUE(S.insert(H, K));

  TW.World.startConcurrentMark();
  H.safePoint();
  ASSERT_EQ(TW.World.phase(), GCPhase::ConcMark);

  // Rewire the structure mid-snapshot: unlink half the nodes (the SATB
  // records from the unlink CASes must keep the snapshot sound) and
  // insert fresh post-snapshot nodes (retained via allocation stamps).
  for (int64_t K = 0; K < 128; K += 2)
    ASSERT_TRUE(S.erase(H, K));
  for (int64_t K = 200; K < 232; ++K)
    ASSERT_TRUE(S.insert(H, K));

  while (TW.World.collectionInProgress())
    H.safePoint();
  ASSERT_GE(TW.World.concurrentGCCount(), 1u);

  // Contents survived the cycle.
  for (int64_t K = 0; K < 128; ++K)
    ASSERT_EQ(S.contains(H, K), K % 2 == 1) << "key " << K;
  for (int64_t K = 200; K < 232; ++K)
    ASSERT_TRUE(S.contains(H, K));

  // A second, quiescent cycle sweeps the floating garbage the first
  // one retained; the structure must still be intact afterwards.
  TW.World.startConcurrentMark();
  while (TW.World.collectionInProgress())
    H.safePoint();
  EXPECT_EQ(S.keys().size(), 64u + 32u);
  verifyWorld(TW.World);
}

//===----------------------------------------------------------------------===//
// Concurrent hammers (linearizability smoke)
//===----------------------------------------------------------------------===//

TEST(StructuresHammer, GcListUnderConcurrentMark) {
  TestWorld TW(4, concurrentConfig(), Topology::uniform(2, 2));
  GcReclaimer R(4);
  {
    GcList S(TW.heap(0), R);
    HammerOptions Opt;
    Opt.StartConcMarkAt = Opt.OpsPerThread / 3;
    hammerSet(TW.World, S, Opt);
    EXPECT_GE(TW.World.concurrentGCCount(), 1u);
    EXPECT_GT(R.stats().RetiredObjects, 0u);
  }
  verifyWorld(TW.World);
}

TEST(StructuresHammer, GcSkipListUnderConcurrentMark) {
  TestWorld TW(4, concurrentConfig(), Topology::uniform(2, 2));
  GcReclaimer R(4);
  {
    GcSkipList S(TW.heap(0), R);
    HammerOptions Opt;
    Opt.StartConcMarkAt = Opt.OpsPerThread / 3;
    hammerSet(TW.World, S, Opt);
    EXPECT_GE(TW.World.concurrentGCCount(), 1u);
  }
  verifyWorld(TW.World);
}

TEST(StructuresHammer, GcSkipListUnderStopTheWorldCopying) {
  // Repeated STW copying collections mid-hammer: every global *moves*
  // every node, exercising the rooted-slot CAS discipline.
  TestWorld TW(4, smallConfig(), Topology::uniform(2, 2));
  GcReclaimer R(4);
  {
    GcSkipList S(TW.heap(0), R);
    HammerOptions Opt;
    Opt.RequestStwEvery = Opt.OpsPerThread / 5;
    hammerSet(TW.World, S, Opt);
    EXPECT_GE(TW.World.globalGCCount(), 3u)
        << "the hammer should have run through repeated copying GCs";
  }
  verifyWorld(TW.World);
}

TEST(StructuresHammer, EpochList) {
  TestWorld TW(4, smallConfig(), Topology::uniform(2, 2));
  EpochReclaimer R(4);
  {
    EpochList S(R);
    hammerSet(TW.World, S, HammerOptions{});
  }
  R.drain();
  ReclaimerStats St = R.stats();
  EXPECT_EQ(St.RetiredObjects, St.ReclaimedObjects);
}

TEST(StructuresHammer, EpochSkipList) {
  TestWorld TW(4, smallConfig(), Topology::uniform(2, 2));
  EpochReclaimer R(4);
  {
    EpochSkipList S(R);
    hammerSet(TW.World, S, HammerOptions{});
  }
  R.drain();
  ReclaimerStats St = R.stats();
  EXPECT_EQ(St.RetiredObjects, St.ReclaimedObjects);
  EXPECT_GT(St.EpochAdvances, 0u);
}
