//===- tests/HostTopologyTest.cpp - tests for the host topology probe -----===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <pthread.h>
#include <sched.h>
#include <set>
#include <string>

using namespace manti;

namespace {

/// Builds a fake sysfs node tree under the test temp dir. Each entry is
/// (os node id, cpulist text, distance text, meminfo text).
struct FakeNode {
  unsigned Id;
  std::string CpuList;
  std::string Distance;
  std::string MemInfo;
};

std::string makeFakeTree(const std::string &Name,
                         const std::vector<FakeNode> &Nodes) {
  namespace fs = std::filesystem;
  fs::path Root = fs::path(::testing::TempDir()) / ("manti_sysfs_" + Name);
  fs::remove_all(Root);
  for (const FakeNode &N : Nodes) {
    fs::path Dir = Root / ("node" + std::to_string(N.Id));
    fs::create_directories(Dir);
    std::ofstream(Dir / "cpulist") << N.CpuList << "\n";
    std::ofstream(Dir / "distance") << N.Distance << "\n";
    std::ofstream(Dir / "meminfo") << N.MemInfo << "\n";
  }
  return Root.string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Live-machine probe round-trip: whatever the machine is, the probe must
// hand back a topology every consumer can use.
//===----------------------------------------------------------------------===//

TEST(HostTopology, ProbeRoundTrip) {
  Topology Host = Topology::host();
  ASSERT_GE(Host.numNodes(), 1u);
  ASSERT_GE(Host.coresPerNode(), 1u);

  // Distance matrix: symmetric, local entries the strict row minima.
  for (NodeId A = 0; A < Host.numNodes(); ++A) {
    for (NodeId B = 0; B < Host.numNodes(); ++B) {
      EXPECT_EQ(Host.distance(A, B), Host.distance(B, A));
      if (A != B) {
        EXPECT_GT(Host.distance(A, B), Host.distance(A, A));
      }
    }
  }

  // Cores partition onto distinct OS cpus.
  std::set<unsigned> Cpus;
  for (CoreId C = 0; C < Host.numCores(); ++C)
    Cpus.insert(Host.osCpuOfCore(C));
  EXPECT_EQ(Cpus.size(), Host.numCores());

  // Proximity tiers: self first, every node in exactly one tier.
  unsigned Seen = 0;
  for (NodeId N = 0; N < Host.numNodes(); ++N) {
    auto Tiers = Host.nodesByDistance(N);
    ASSERT_FALSE(Tiers.empty());
    ASSERT_EQ(Tiers[0], std::vector<NodeId>{N});
    Seen = 0;
    for (const auto &Tier : Tiers)
      Seen += static_cast<unsigned>(Tier.size());
    EXPECT_EQ(Seen, Host.numNodes());
  }

  // The scheduler's sparse assignment must work as-is.
  auto Cores = Host.assignVProcsSparsely(
      std::min(Host.numCores(), 4u));
  for (CoreId C : Cores)
    EXPECT_LT(C, Host.numCores());
}

//===----------------------------------------------------------------------===//
// sysfs probe against fake trees (deterministic on any machine).
//===----------------------------------------------------------------------===//

TEST(HostTopology, SysfsTwoNodeProbe) {
  std::string Root = makeFakeTree(
      "two",
      {{0, "0-1", "10 21", "Node 0 MemTotal:  4194304 kB"},
       {1, "2-3", "21 10", "Node 1 MemTotal:  2097152 kB"}});
  Topology T = Topology::hostFromSysfs(Root);

  EXPECT_EQ(T.name(), "host");
  ASSERT_EQ(T.numNodes(), 2u);
  EXPECT_EQ(T.coresPerNode(), 2u);
  EXPECT_TRUE(T.hasCpuMap());
  EXPECT_EQ(T.osCpuOfCore(0), 0u);
  EXPECT_EQ(T.osCpuOfCore(1), 1u);
  EXPECT_EQ(T.osCpuOfCore(2), 2u);
  EXPECT_EQ(T.osCpuOfCore(3), 3u);
  EXPECT_EQ(T.distance(0, 1), 21u);
  EXPECT_EQ(T.distance(1, 0), 21u);
  EXPECT_EQ(T.distance(0, 0), 10u);
  EXPECT_EQ(T.memoryBytes(0), 4194304ull * 1024);
  EXPECT_EQ(T.memoryBytes(1), 2097152ull * 1024);

  // Remote bandwidth estimate sits strictly below local until the
  // stream bench calibrates it.
  EXPECT_LT(T.pathGBps(0, 1), T.pathGBps(0, 0));

  auto Tiers = T.nodesByDistance(0);
  ASSERT_EQ(Tiers.size(), 2u);
  EXPECT_EQ(Tiers[0], std::vector<NodeId>{0});
  EXPECT_EQ(Tiers[1], std::vector<NodeId>{1});
}

TEST(HostTopology, SysfsSkipsMemoryOnlyNodesAndSquaresOffCpus) {
  // node1 is a cpuless memory bank (CXL-style); node2 has three cpus to
  // node0's two. Expect: node1 dropped, distance columns re-selected,
  // cores-per-node squared off to 2, OS ids preserved for mbind.
  std::string Root = makeFakeTree(
      "sparse",
      {{0, "0-1", "10 17 28", "Node 0 MemTotal: 1048576 kB"},
       {1, "", "17 10 28", "Node 1 MemTotal: 8388608 kB"},
       {2, "4-6", "28 28 10", "Node 2 MemTotal: 1048576 kB"}});
  Topology T = Topology::hostFromSysfs(Root);

  ASSERT_EQ(T.numNodes(), 2u);
  EXPECT_EQ(T.coresPerNode(), 2u);
  EXPECT_EQ(T.osNodeOfNode(0), 0u);
  EXPECT_EQ(T.osNodeOfNode(1), 2u);
  EXPECT_EQ(T.osCpuOfCore(2), 4u); // node 2's first cpu
  EXPECT_EQ(T.osCpuOfCore(3), 5u);
  EXPECT_EQ(T.distance(0, 1), 28u) << "distance column must skip node1";
}

TEST(HostTopology, SysfsSingleNodeIsUMAFallbackShape) {
  // A UMA machine probed through sysfs must look exactly like a 1-node
  // recorded topology to every consumer: one node, one tier, zero hops.
  std::string Root = makeFakeTree(
      "uma", {{0, "0-3", "10", "Node 0 MemTotal: 1048576 kB"}});
  Topology T = Topology::hostFromSysfs(Root);
  Topology Recorded = Topology::singleNode(4);

  ASSERT_EQ(T.numNodes(), Recorded.numNodes());
  EXPECT_EQ(T.coresPerNode(), Recorded.coresPerNode());
  EXPECT_EQ(T.hopCount(0, 0), Recorded.hopCount(0, 0));
  EXPECT_EQ(T.distance(0, 0), Recorded.distance(0, 0));
  EXPECT_EQ(T.nodesByDistance(0), Recorded.nodesByDistance(0));
  EXPECT_EQ(T.assignVProcsSparsely(4), Recorded.assignVProcsSparsely(4));
}

TEST(HostTopology, SysfsMissingTreeFallsBackToSingleNode) {
  Topology T = Topology::hostFromSysfs("/nonexistent/manti/sysfs");
  ASSERT_EQ(T.numNodes(), 1u);
  EXPECT_GE(T.numCores(), 1u);
  EXPECT_FALSE(T.hasCpuMap());
  EXPECT_EQ(T.nodesByDistance(0), std::vector<std::vector<NodeId>>{{0}});
}

//===----------------------------------------------------------------------===//
// Distance-matrix semantics shared by recorded and probed topologies.
//===----------------------------------------------------------------------===//

TEST(HostTopology, RecordedTopologiesDeriveDistanceFromHops) {
  Topology Amd = Topology::amdMagnyCours48();
  EXPECT_EQ(Amd.distance(0, 0), 10u);
  EXPECT_EQ(Amd.distance(0, 1), 20u); // package mate, one hop
  for (NodeId A = 0; A < Amd.numNodes(); ++A)
    for (NodeId B = 0; B < Amd.numNodes(); ++B)
      EXPECT_EQ(Amd.distance(A, B), 10 + 10 * Amd.hopCount(A, B));

  Topology Intel = Topology::intelXeon32();
  for (NodeId B = 1; B < Intel.numNodes(); ++B)
    EXPECT_EQ(Intel.distance(0, B), 20u); // full mesh: all one hop
}

TEST(HostTopology, SetDistanceMatrixSymmetrizes) {
  Topology T = Topology::uniform(2, 2);
  T.setDistanceMatrix({10, 30, 20, 10});
  EXPECT_EQ(T.distance(0, 1), 30u);
  EXPECT_EQ(T.distance(1, 0), 30u);
}

//===----------------------------------------------------------------------===//
// Thread pinning through the probed cpu map.
//===----------------------------------------------------------------------===//

TEST(HostTopology, PinningAppliedAndRestored) {
  cpu_set_t Before;
  ASSERT_EQ(pthread_getaffinity_np(pthread_self(), sizeof(Before), &Before),
            0);
  int FirstCpu = -1;
  for (int C = 0; C < CPU_SETSIZE; ++C)
    if (CPU_ISSET(C, &Before)) {
      FirstCpu = C;
      break;
    }
  ASSERT_GE(FirstCpu, 0);
  // Capability probe: some containers forbid affinity changes entirely;
  // pinning is documented best-effort there, so there is nothing to
  // assert.
  cpu_set_t Probe;
  CPU_ZERO(&Probe);
  CPU_SET(FirstCpu, &Probe);
  if (pthread_setaffinity_np(pthread_self(), sizeof(Probe), &Probe) != 0)
    GTEST_SKIP() << "host forbids thread affinity changes";
  ASSERT_EQ(pthread_setaffinity_np(pthread_self(), sizeof(Before), &Before),
            0);

  Topology Host = Topology::host();
  unsigned Core0 = 0; // vproc 0 gets node 0's first core (sparse assign)
  unsigned ExpectedCpu = Host.hasCpuMap()
                             ? Host.osCpuOfCore(Core0)
                             : Core0 % std::thread::hardware_concurrency();
  if (!CPU_ISSET(ExpectedCpu, &Before))
    GTEST_SKIP() << "cpu " << ExpectedCpu << " outside the allowed set";

  {
    RuntimeConfig Cfg;
    Cfg.NumVProcs = 1;
    Cfg.PinThreads = true;
    Runtime RT(Cfg, Host);
    cpu_set_t During;
    ASSERT_EQ(
        pthread_getaffinity_np(pthread_self(), sizeof(During), &During), 0);
    EXPECT_EQ(CPU_COUNT(&During), 1) << "vproc 0 must be pinned to one cpu";
    EXPECT_TRUE(CPU_ISSET(ExpectedCpu, &During));
  }

  // The runtime's destructor hands the caller's thread back unpinned.
  cpu_set_t After;
  ASSERT_EQ(pthread_getaffinity_np(pthread_self(), sizeof(After), &After), 0);
  EXPECT_TRUE(CPU_EQUAL(&Before, &After));
}
