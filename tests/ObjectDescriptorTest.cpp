//===- tests/ObjectDescriptorTest.cpp - descriptor table tests ------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/ObjectDescriptor.h"

#include <gtest/gtest.h>

#include <vector>

using namespace manti;

namespace {

std::vector<unsigned> scannedOffsets(const ObjectDescriptor &Desc, Word *Obj) {
  std::vector<unsigned> Offsets;
  struct Ctx {
    Word *Obj;
    std::vector<unsigned> *Out;
  } C{Obj, &Offsets};
  Desc.scan(
      Obj,
      [](Word *Slot, void *CtxPtr) {
        auto *C = static_cast<Ctx *>(CtxPtr);
        C->Out->push_back(static_cast<unsigned>(Slot - C->Obj));
      },
      &C);
  return Offsets;
}

} // namespace

TEST(DescriptorTable, FirstIdIsFirstMixed) {
  ObjectDescriptorTable T;
  uint16_t Id = T.registerMixed("pair", 2, {0, 1});
  EXPECT_EQ(Id, FirstMixedId);
  EXPECT_EQ(T.numRegistered(), 1u);
}

TEST(DescriptorTable, SequentialIds) {
  ObjectDescriptorTable T;
  uint16_t A = T.registerMixed("a", 1, {});
  uint16_t B = T.registerMixed("b", 2, {0});
  uint16_t C = T.registerMixed("c", 3, {2});
  EXPECT_EQ(B, A + 1);
  EXPECT_EQ(C, B + 1);
}

TEST(DescriptorTable, LookupReturnsRegistration) {
  ObjectDescriptorTable T;
  uint16_t Id = T.registerMixed("node", 5, {1, 3});
  const ObjectDescriptor &D = T.lookup(Id);
  EXPECT_EQ(D.name(), "node");
  EXPECT_EQ(D.id(), Id);
  EXPECT_EQ(D.sizeWords(), 5u);
  EXPECT_EQ(D.numPtrFields(), 2u);
  EXPECT_EQ(D.ptrOffsets()[0], 1u);
  EXPECT_EQ(D.ptrOffsets()[1], 3u);
}

TEST(DescriptorScan, VisitsExactlyThePointerFields) {
  ObjectDescriptorTable T;
  uint16_t Id = T.registerMixed("mix", 6, {0, 2, 5});
  alignas(8) Word Storage[7] = {makeHeader(Id, 6), 0, 0, 0, 0, 0, 0};
  auto Offsets = scannedOffsets(T.lookup(Id), &Storage[1]);
  EXPECT_EQ(Offsets, (std::vector<unsigned>{0, 2, 5}));
}

TEST(DescriptorScan, NoPointerFields) {
  ObjectDescriptorTable T;
  uint16_t Id = T.registerMixed("raw-ish", 4, {});
  alignas(8) Word Storage[5] = {makeHeader(Id, 4), 0, 0, 0, 0};
  EXPECT_TRUE(scannedOffsets(T.lookup(Id), &Storage[1]).empty());
}

/// The generated scanners are specialized per field count up to 8 and
/// fall back to a generic loop beyond that; both must visit all fields.
class DescriptorScanWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(DescriptorScanWidth, AllWidthsVisitEverything) {
  unsigned NumFields = GetParam();
  ObjectDescriptorTable T;
  std::vector<uint16_t> Offsets;
  for (unsigned I = 0; I < NumFields; ++I)
    Offsets.push_back(static_cast<uint16_t>(I));
  uint16_t Id = T.registerMixed("wide", NumFields + 1, Offsets);

  std::vector<Word> Storage(NumFields + 2, 0);
  Storage[0] = makeHeader(Id, NumFields + 1);
  auto Visited = scannedOffsets(T.lookup(Id), &Storage[1]);
  ASSERT_EQ(Visited.size(), NumFields);
  for (unsigned I = 0; I < NumFields; ++I)
    EXPECT_EQ(Visited[I], I);
}

INSTANTIATE_TEST_SUITE_P(Widths, DescriptorScanWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           16u, 32u, 48u));

TEST(DescriptorScan, VisitorMayRewriteSlots) {
  ObjectDescriptorTable T;
  uint16_t Id = T.registerMixed("cell", 2, {0});
  alignas(8) Word Storage[3] = {makeHeader(Id, 2), 111, 222};
  T.lookup(Id).scan(
      &Storage[1], [](Word *Slot, void *) { *Slot = 999; }, nullptr);
  EXPECT_EQ(Storage[1], 999u);
  EXPECT_EQ(Storage[2], 222u) << "non-pointer field untouched";
}

using DescriptorDeath = ::testing::Test;

TEST(DescriptorDeath, LookupReservedIdAborts) {
  ObjectDescriptorTable T;
  EXPECT_DEATH(T.lookup(IdRaw), "reserved");
  EXPECT_DEATH(T.lookup(IdVector), "reserved");
}

TEST(DescriptorDeath, LookupUnregisteredAborts) {
  ObjectDescriptorTable T;
  EXPECT_DEATH(T.lookup(FirstMixedId), "unregistered");
}

TEST(DescriptorDeath, OffsetOutOfRangeAborts) {
  ObjectDescriptorTable T;
  EXPECT_DEATH(T.registerMixed("bad", 2, {2}), "out of range");
}

TEST(DescriptorDeath, NonIncreasingOffsetsAbort) {
  ObjectDescriptorTable T;
  EXPECT_DEATH(T.registerMixed("bad", 4, {2, 2}), "increasing");
}
