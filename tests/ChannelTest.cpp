//===- tests/ChannelTest.cpp - CML channel tests --------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "runtime/Channel.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace manti;
using namespace manti::test;

namespace {

RuntimeConfig chanConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  return Cfg;
}

struct ChanCtx {
  Channel *Chan;
  std::atomic<int64_t> Received{0};
  std::atomic<int> Done{0};
  int Messages = 0;
};

void receiverTask(Runtime &, VProc &VP, Task T) {
  auto *Ctx = static_cast<ChanCtx *>(T.Ctx);
  for (int I = 0; I < Ctx->Messages; ++I) {
    RootScope Scope(VP.heap());
    Ref<> Msg = Ctx->Chan->recv(Scope, VP);
    Ctx->Received.fetch_add(listSum(Msg));
  }
  Ctx->Done.fetch_add(1);
}

} // namespace

TEST(Channel, SendRecvAcrossVProcs) {
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel Chan(RT);
  static ChanCtx Ctx;
  Ctx.Chan = &Chan;
  Ctx.Received = 0;
  Ctx.Done = 0;
  Ctx.Messages = 20;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *Ctx = static_cast<ChanCtx *>(CtxP);
        // Receiver runs as a task (stolen by the other vproc or run
        // here; either way the channel handshake works).
        VP.spawn({receiverTask, Ctx, Value::nil(), 0, 0});
        for (int I = 0; I < Ctx->Messages; ++I) {
          RootScope Scope(VP.heap());
          Ref<> Msg = Scope.root(makeIntList(VP.heap(), 12));
          Ctx->Chan->send(VP, Msg);
        }
        while (Ctx->Done.load() == 0)
          VP.poll();
        (void)RT;
      },
      &Ctx);

  EXPECT_EQ(Ctx.Received.load(), 20 * intListSum(12));
}

TEST(Channel, MessagesArePromoted) {
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel Chan(RT);
  struct LocalCtx {
    Channel *Chan;
    bool WasGlobal = false;
  };
  static LocalCtx Ctx;
  Ctx.Chan = &Chan;
  Ctx.WasGlobal = false;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *Ctx = static_cast<LocalCtx *>(CtxP);
        static JoinCounter Join;
        Join.add();
        VP.spawn({[](Runtime &RT, VProc &VP, Task T) {
                    auto *Ctx = static_cast<LocalCtx *>(T.Ctx);
                    RootScope Scope(VP.heap());
                    Ref<> Msg = Ctx->Chan->recv(Scope, VP);
                    Ctx->WasGlobal = isGlobal(RT.world(), Msg);
                    EXPECT_EQ(listSum(Msg), intListSum(7));
                    Join.sub();
                  },
                  Ctx, Value::nil(), 0, 0});
        RootScope Scope(VP.heap());
        Ref<> Msg = Scope.root(makeIntList(VP.heap(), 7));
        EXPECT_TRUE(isLocalTo(VP.heap(), Msg));
        Ctx->Chan->send(VP, Msg);
        VP.joinWait(Join);
        (void)RT;
      },
      &Ctx);

  EXPECT_TRUE(Ctx.WasGlobal)
      << "messages must move to the global heap (Section 2.3)";
}

TEST(Channel, TryRecvEmptyFails) {
  Runtime RT(chanConfig(1), Topology::singleNode(1));
  Channel Chan(RT);
  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *Chan = static_cast<Channel *>(CtxP);
        Value Out;
        EXPECT_FALSE(Chan->tryRecv(VP, Out));
        (void)RT;
      },
      &Chan);
}

TEST(Channel, SenderBlocksUntilReceiver) {
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel Chan(RT);
  struct Ctx2 {
    Channel *Chan;
    std::atomic<bool> SendReturned{false};
  };
  static Ctx2 Ctx;
  Ctx.Chan = &Chan;
  Ctx.SendReturned = false;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *Ctx = static_cast<Ctx2 *>(CtxP);
        static JoinCounter Join;
        Join.add();
        VP.spawn({[](Runtime &, VProc &VP, Task T) {
                    auto *Ctx = static_cast<Ctx2 *>(T.Ctx);
                    Ctx->Chan->send(VP, Value::fromInt(5));
                    Ctx->SendReturned.store(true);
                    Join.sub();
                  },
                  Ctx, Value::nil(), 0, 0});
        // Let the sender run/block, then receive.
        Value Got = Ctx->Chan->recv(VP);
        EXPECT_EQ(Got.asInt(), 5);
        VP.joinWait(Join);
        EXPECT_TRUE(Ctx->SendReturned.load());
        (void)RT;
      },
      &Ctx);
}

TEST(Channel, BlockedReceiverSurvivesGlobalGC) {
  // The proxy-parked receiver is the paper's motivating proxy use: its
  // local continuation must survive local AND global collections that
  // run while it is blocked. The main vproc blocks in recv *first*; the
  // sender task sits in its queue until a worker steals it, guaranteeing
  // the receiver really parks and that the collections (driven by the
  // sender's churn) run while it is parked.
  RuntimeConfig Cfg = chanConfig(2);
  Cfg.GC.GlobalGCBytesPerVProc = 48 * 1024;
  Runtime RT(Cfg, Topology::uniform(2, 1));
  Channel Chan(RT);
  static Channel *ChanPtr;
  ChanPtr = &Chan;
  static int64_t ContSum, MsgSum;
  ContSum = MsgSum = 0;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    // Churn the global heap so collections run while the
                    // receiver is parked, then send.
                    for (int I = 0; I < 60; ++I) {
                      RootScope Inner(VP.heap());
                      Ref<> Junk = Inner.root(makeIntList(VP.heap(), 150));
                      promote(Inner, Junk);
                      VP.poll();
                    }
                    RootScope Scope(VP.heap());
                    Ref<> Msg = Scope.root(makeIntList(VP.heap(), 11));
                    ChanPtr->send(VP, Msg);
                  },
                  nullptr, Value::nil(), 0, 0});

        // Block with local continuation data. recv's poll loop answers
        // the worker's steal request, handing the sender task over.
        RootScope Scope(VP.heap());
        Ref<> Cont = Scope.root(makeIntList(VP.heap(), 9));
        Ref<> ContBack = Scope.root(Value::nil());
        Ref<> Msg = ChanPtr->recv(Scope, VP, Cont, &ContBack);
        ContSum = listSum(ContBack);
        MsgSum = listSum(Msg);
      },
      nullptr);

  EXPECT_EQ(ContSum, intListSum(9))
      << "proxy-parked continuation must survive the collections";
  EXPECT_EQ(MsgSum, intListSum(11));
  EXPECT_GE(RT.world().globalGCCount(), 1u);
}

TEST(Channel, SelectRecvPicksReadyChannel) {
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel A(RT), B(RT);
  static Channel *ChanA, *ChanB;
  ChanA = &A;
  ChanB = &B;
  static int64_t Got;
  static unsigned Which;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        Join.add();
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    // Send on the second channel only.
                    ChanB->send(VP, Value::fromInt(77));
                    Join.sub();
                  },
                  nullptr, Value::nil(), 0, 0});
        Channel *Chans[2] = {ChanA, ChanB};
        Value V = Channel::selectRecv(VP, Chans, 2, &Which);
        Got = V.asInt();
        VP.joinWait(Join);
      },
      nullptr);

  EXPECT_EQ(Got, 77);
  EXPECT_EQ(Which, 1u);
  EXPECT_EQ(A.pendingSends(), 0u);
  EXPECT_EQ(B.pendingSends(), 0u);
}

TEST(Channel, SelectRecvDrainsBothChannels) {
  // Two sender tasks target different channels; the main vproc never
  // runs tasks itself, so a worker steals and runs them in spawn order
  // (each send blocks until its select match, serializing them).
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel A(RT), B(RT);
  static Channel *ChanA, *ChanB;
  ChanA = &A;
  ChanB = &B;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        for (int I = 0; I < 2; ++I) {
          Join.add();
          VP.spawn({[](Runtime &, VProc &VP, Task T) {
                      (T.A == 0 ? ChanA : ChanB)
                          ->send(VP, Value::fromInt(T.A + 100));
                      Join.sub();
                    },
                    nullptr, Value::nil(), I, 0});
        }
        Channel *Chans[2] = {ChanA, ChanB};
        unsigned Which = 99;
        Value First = Channel::selectRecv(VP, Chans, 2, &Which);
        EXPECT_EQ(Which, 0u) << "steals happen oldest-first";
        EXPECT_EQ(First.asInt(), 100);
        Value Second = Channel::selectRecv(VP, Chans, 2, &Which);
        EXPECT_EQ(Which, 1u);
        EXPECT_EQ(Second.asInt(), 101);
        while (!Join.done())
          VP.poll();
      },
      nullptr);
}

TEST(Channel, BlockedReceiverParksAndIsRungAwake) {
  // The blocked receiver registers a waiter and parks in the ParkLot;
  // the sender's hand-off rings its node. The sender holds the message
  // until it *observes the receiver parked on its doorbell*, so the
  // park rung is reached deterministically even on a loaded host.
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel Chan(RT);
  static Channel *ChanPtr;
  ChanPtr = &Chan;
  static int64_t Got;
  Got = 0;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        VP.spawn({[](Runtime &RT2, VProc &VP, Task) {
                    // The receiver (vproc 0) lives on node 0: wait for
                    // it to park before handing over the message.
                    NodeId RecvNode = RT2.vproc(0).node();
                    while (RT2.parkLot().parkedOn(RecvNode) == 0)
                      std::this_thread::yield();
                    RootScope S(VP.heap());
                    Ref<> Msg = S.root(makeIntList(VP.heap(), 13));
                    ChanPtr->send(VP, Msg);
                  },
                  nullptr, Value::nil(), 0, 0});
        RootScope S(VP.heap());
        Ref<> Msg = ChanPtr->recv(S, VP);
        Got = listSum(Msg);
      },
      nullptr);

  EXPECT_EQ(Got, intListSum(13));
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.Parks, 0u)
      << "the receiver must reach the park rung before the hand-off";
}

TEST(Channel, TryRecvReturnsEmptyWhileHandoffPends) {
  // Regression (mid-handoff spin): a parked receiver's pending
  // handshake is not a queued message. tryRecv must report "empty"
  // instead of waiting on someone else's hand-off to settle.
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel Chan(RT);
  static Channel *ChanPtr;
  ChanPtr = &Chan;
  static std::atomic<int64_t> ReceiverGot;
  ReceiverGot = 0;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        // The receiver task parks on a worker vproc.
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    RootScope S(VP.heap());
                    Ref<> Msg = ChanPtr->recv(S, VP);
                    ReceiverGot.store(listSum(Msg));
                  },
                  nullptr, Value::nil(), 0, 0});
        // Wait until the receiver is registered, then probe: the parked
        // receiver must be invisible to tryRecv.
        while (ChanPtr->pendingRecvs() == 0)
          VP.poll();
        Value Out;
        for (int I = 0; I < 100; ++I)
          EXPECT_FALSE(ChanPtr->tryRecv(VP, Out))
              << "a parked receiver is not a message";
        RootScope S(VP.heap());
        Ref<> Msg = S.root(makeIntList(VP.heap(), 6));
        ChanPtr->send(VP, Msg);
        while (ReceiverGot.load() == 0)
          VP.poll();
      },
      nullptr);

  EXPECT_EQ(ReceiverGot.load(), intListSum(6));
  EXPECT_EQ(Chan.pendingSends(), 0u);
  EXPECT_EQ(Chan.pendingRecvs(), 0u);
}

TEST(Channel, TryRecvHandoffHammer) {
  // TSan hammer for the two-flag handoff (Claimed picks the filler,
  // Ready/Taken publish completion): a blocked receiver, a sender, and
  // a prober that hammers tryRecv and recycles anything it happens to
  // intercept, so every message still arrives exactly once.
  Runtime RT(chanConfig(3), Topology::uniform(3, 1));
  Channel Chan(RT);
  static Channel *ChanPtr;
  ChanPtr = &Chan;
  constexpr int Messages = 40;
  static std::atomic<int64_t> Received;
  static std::atomic<bool> Done;
  Received = 0;
  Done = false;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        // Prober: intercepted messages go right back into the channel.
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    while (!Done.load(std::memory_order_acquire)) {
                      RootScope S(VP.heap());
                      Ref<> Out = S.root(Value::nil());
                      if (ChanPtr->tryRecv(VP, Out))
                        ChanPtr->send(VP, Out);
                      VP.poll();
                      std::this_thread::yield();
                    }
                  },
                  nullptr, Value::nil(), 0, 0});
        // Sender: synchronous sends; each blocks until *someone* takes
        // the message (the receiver's waiter or the prober).
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    for (int I = 0; I < Messages; ++I) {
                      RootScope S(VP.heap());
                      Ref<> Msg = S.root(makeIntList(VP.heap(), 5));
                      ChanPtr->send(VP, Msg);
                    }
                  },
                  nullptr, Value::nil(), 0, 0});
        // Receiver: the main vproc takes every message.
        for (int I = 0; I < Messages; ++I) {
          RootScope S(VP.heap());
          Ref<> Msg = ChanPtr->recv(S, VP);
          Received.fetch_add(listSum(Msg));
        }
        Done.store(true, std::memory_order_release);
      },
      nullptr);

  EXPECT_EQ(Received.load(), Messages * intListSum(5));
  EXPECT_EQ(Chan.pendingSends(), 0u);
  EXPECT_EQ(Chan.pendingRecvs(), 0u);
  verifyWorld(RT.world());
}

TEST(Channel, SelectRecvParksUntilLateSender) {
  // selectRecv's real blocking path: no channel is ready, the selector
  // registers one waiter on both and parks; the late sender claims it,
  // fills it, and rings.
  Runtime RT(chanConfig(2), Topology::uniform(2, 1));
  Channel A(RT), B(RT);
  static Channel *ChanA, *ChanB;
  ChanA = &A;
  ChanB = &B;
  static int64_t Got;
  static unsigned Which;
  Got = 0;
  Which = 99;

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        Join.add();
        VP.spawn({[](Runtime &, VProc &VP, Task) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(15));
                    ChanB->send(VP, Value::fromInt(321));
                    Join.sub();
                  },
                  nullptr, Value::nil(), 0, 0});
        Channel *Chans[2] = {ChanA, ChanB};
        Value V = Channel::selectRecv(VP, Chans, 2, &Which);
        Got = V.asInt();
        VP.joinWait(Join);
      },
      nullptr);

  EXPECT_EQ(Got, 321);
  EXPECT_EQ(Which, 1u);
  EXPECT_EQ(A.pendingRecvs(), 0u) << "losing waiters must be withdrawn";
  EXPECT_EQ(B.pendingRecvs(), 0u);
}

TEST(Channel, LadderBaselineChannelsStillWork) {
  // UseDoorbells=false: channel blocking falls back to the blind
  // bounded-sleep ladder (the ablation baseline) -- slower, still
  // correct.
  RuntimeConfig Cfg = chanConfig(2);
  Cfg.UseDoorbells = false;
  Runtime RT(Cfg, Topology::uniform(2, 1));
  Channel Chan(RT);
  static ChanCtx Ctx;
  Ctx.Chan = &Chan;
  Ctx.Received = 0;
  Ctx.Done = 0;
  Ctx.Messages = 10;

  RT.run(
      [](Runtime &, VProc &VP, void *CtxP) {
        auto *Ctx = static_cast<ChanCtx *>(CtxP);
        VP.spawn({receiverTask, Ctx, Value::nil(), 0, 0});
        for (int I = 0; I < Ctx->Messages; ++I) {
          RootScope Scope(VP.heap());
          Ref<> Msg = Scope.root(makeIntList(VP.heap(), 8));
          Ctx->Chan->send(VP, Msg);
        }
        while (Ctx->Done.load() == 0)
          VP.poll();
      },
      &Ctx);

  EXPECT_EQ(Ctx.Received.load(), 10 * intListSum(8));
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.RingsSent, 0u);
}

TEST(Channel, ManyMessagesManyCollections) {
  RuntimeConfig Cfg = chanConfig(3);
  Cfg.GC.GlobalGCBytesPerVProc = 256 * 1024;
  Runtime RT(Cfg, Topology::uniform(3, 1));
  Channel Chan(RT);
  static ChanCtx Ctx;
  Ctx.Chan = &Chan;
  Ctx.Received = 0;
  Ctx.Done = 0;
  Ctx.Messages = 60;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *Ctx = static_cast<ChanCtx *>(CtxP);
        VP.spawn({receiverTask, Ctx, Value::nil(), 0, 0});
        for (int I = 0; I < Ctx->Messages; ++I) {
          RootScope Scope(VP.heap());
          Ref<> Msg = Scope.root(makeIntList(VP.heap(), 25));
          Ctx->Chan->send(VP, Msg);
          // Interleave garbage to drive collections.
          allocGarbage(VP.heap(), 50);
        }
        while (Ctx->Done.load() == 0)
          VP.poll();
        (void)RT;
      },
      &Ctx);

  EXPECT_EQ(Ctx.Received.load(), 60 * intListSum(25));
  verifyWorld(RT.world());
}
