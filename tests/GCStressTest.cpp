//===- tests/GCStressTest.cpp - randomized property testing ---------------===//
//
// Part of the manticore-gc project.
//
// Property-based stress testing of the full collector stack against a
// shadow model: random sequences of allocation, sharing, promotion,
// proxy, and collection operations, with the expected contents of every
// rooted structure tracked in plain C++ and re-verified throughout. The
// suite is parameterized over heap geometries and allocation policies so
// each instantiation exercises different trigger paths (nursery
// exhaustion, major thresholds, emergency evacuation, global GC).
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "gc/Proxy.h"
#include "support/XorShift.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <thread>
#include <tuple>
#include <vector>

using namespace manti;
using namespace manti::test;

namespace {

/// Expected contents of one rooted structure.
struct Shadow {
  enum KindT { IntList, RawBytes } Kind = IntList;
  std::vector<int64_t> Ints;      // for IntList (head-first order)
  std::vector<uint8_t> Bytes;     // for RawBytes
};

/// One mutator's stress state: a fixed bank of rooted slots plus the
/// shadow expectations for each.
class StressMutator {
public:
  static constexpr unsigned MaxRoots = 24;

  StressMutator(VProcHeap &H, uint64_t Seed) : H(H), Rng(Seed) {
    for (Value &Slot : Roots)
      H.ShadowStack.push_back(&Slot);
    Shadows.resize(MaxRoots);
    Live.assign(MaxRoots, false);
  }

  ~StressMutator() {
    // Pop exactly our slots (LIFO registration).
    for (unsigned I = 0; I < MaxRoots; ++I)
      H.ShadowStack.pop_back();
  }

  /// Runs one random operation.
  void step() {
    switch (Rng.nextBelow(12)) {
    case 0:
    case 1:
      makeList();
      break;
    case 2:
      makeRaw();
      break;
    case 3:
      shareTail();
      break;
    case 4:
      dropRoot();
      break;
    case 5:
      promoteRoot();
      break;
    case 6:
      H.minorGC();
      break;
    case 7:
      H.majorGC();
      break;
    case 8:
      allocGarbage(H, 1 + Rng.nextBelow(40));
      break;
    case 9:
      proxyRoundTrip();
      break;
    case 10:
      H.safePoint();
      break;
    case 11:
      verifyAll();
      break;
    }
  }

  void verifyAll() {
    for (unsigned I = 0; I < MaxRoots; ++I) {
      if (!Live[I])
        continue;
      const Shadow &S = Shadows[I];
      Value V = Roots[I];
      if (S.Kind == Shadow::IntList) {
        std::size_t Pos = 0;
        for (Value Cur = V; !Cur.isNil(); Cur = vectorGet(Cur, 1)) {
          ASSERT_LT(Pos, S.Ints.size()) << "list longer than shadow";
          ASSERT_EQ(vectorGet(Cur, 0).asInt(), S.Ints[Pos]) << "slot " << I;
          ++Pos;
        }
        ASSERT_EQ(Pos, S.Ints.size()) << "list shorter than shadow";
      } else {
        ASSERT_GE(rawSizeBytes(V), S.Bytes.size());
        ASSERT_EQ(std::memcmp(rawData(V), S.Bytes.data(), S.Bytes.size()),
                  0)
            << "raw contents diverged in slot " << I;
      }
    }
  }

private:
  unsigned randomSlot() { return static_cast<unsigned>(Rng.nextBelow(MaxRoots)); }

  int randomLiveSlot() {
    for (int Tries = 0; Tries < 8; ++Tries) {
      unsigned I = randomSlot();
      if (Live[I])
        return static_cast<int>(I);
    }
    return -1;
  }

  void makeList() {
    unsigned Slot = randomSlot();
    int64_t Len = 1 + static_cast<int64_t>(Rng.nextBelow(48));
    Shadow S;
    S.Kind = Shadow::IntList;
    GcFrame Frame(H);
    Value &L = Frame.root(Value::nil());
    for (int64_t I = 0; I < Len; ++I) {
      int64_t X = static_cast<int64_t>(Rng.next() >> 16);
      L = cons(H, Value::fromInt(X), L);
      S.Ints.insert(S.Ints.begin(), X);
    }
    Roots[Slot] = L;
    Shadows[Slot] = std::move(S);
    Live[Slot] = true;
  }

  void makeRaw() {
    unsigned Slot = randomSlot();
    std::size_t Len = 8 + Rng.nextBelow(240);
    Shadow S;
    S.Kind = Shadow::RawBytes;
    S.Bytes.resize(Len);
    for (auto &B : S.Bytes)
      B = static_cast<uint8_t>(Rng.next());
    Roots[Slot] = H.allocRaw(S.Bytes.data(), Len);
    Shadows[Slot] = std::move(S);
    Live[Slot] = true;
  }

  /// New list cell sharing an existing list as its tail.
  void shareTail() {
    int Tail = randomLiveSlot();
    if (Tail < 0 || Shadows[Tail].Kind != Shadow::IntList)
      return;
    unsigned Slot = randomSlot();
    if (static_cast<int>(Slot) == Tail)
      return;
    int64_t X = static_cast<int64_t>(Rng.next() >> 16);
    Shadow S;
    S.Kind = Shadow::IntList;
    S.Ints = Shadows[Tail].Ints;
    S.Ints.insert(S.Ints.begin(), X);
    Roots[Slot] = cons(H, Value::fromInt(X), Roots[Tail]);
    Shadows[Slot] = std::move(S);
    Live[Slot] = true;
  }

  void dropRoot() {
    unsigned Slot = randomSlot();
    Roots[Slot] = Value::nil();
    Shadows[Slot] = Shadow();
    Shadows[Slot].Ints.clear();
    Live[Slot] = false;
  }

  void promoteRoot() {
    int Slot = randomLiveSlot();
    if (Slot < 0)
      return;
    Roots[Slot] = H.promote(Roots[Slot]);
  }

  /// Create a proxy over a live root, collect a little, resolve it, and
  /// check the payload survived.
  void proxyRoundTrip() {
    int Slot = randomLiveSlot();
    if (Slot < 0 || Shadows[Slot].Kind != Shadow::IntList)
      return;
    GcFrame Frame(H);
    Value &P = Frame.root(createProxy(H, Roots[Slot]));
    if (Rng.nextBelow(2) == 0)
      H.minorGC();
    Value Resolved = resolveProxy(H, P);
    std::size_t Pos = 0;
    for (Value Cur = Resolved; !Cur.isNil(); Cur = vectorGet(Cur, 1)) {
      ASSERT_EQ(vectorGet(Cur, 0).asInt(), Shadows[Slot].Ints[Pos]);
      ++Pos;
    }
    ASSERT_EQ(Pos, Shadows[Slot].Ints.size());
  }

  VProcHeap &H;
  XorShift64 Rng;
  Value Roots[MaxRoots];
  std::vector<Shadow> Shadows;
  std::vector<bool> Live;
};

} // namespace

//===----------------------------------------------------------------------===//
// Single-vproc stress across heap geometries
//===----------------------------------------------------------------------===//

/// (LocalHeapBytes, ChunkBytes, GlobalGCBytesPerVProc)
using GeometryParam = std::tuple<std::size_t, std::size_t, std::size_t>;

class GCStressGeometry : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(GCStressGeometry, RandomOpsPreserveContents) {
  auto [HeapBytes, ChunkBytes, Budget] = GetParam();
  GCConfig Cfg;
  Cfg.LocalHeapBytes = HeapBytes;
  Cfg.MinNurseryBytes = HeapBytes / 8;
  Cfg.ChunkBytes = ChunkBytes;
  Cfg.GlobalGCBytesPerVProc = Budget;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();

  StressMutator M(H, 0xC0FFEE ^ HeapBytes ^ ChunkBytes ^ Budget);
  for (int Op = 0; Op < 2500; ++Op) {
    M.step();
    if (Op % 500 == 499) {
      M.verifyAll();
      verifyHeap(H);
    }
  }
  M.verifyAll();
  VerifyResult R = verifyHeap(H);
  EXPECT_GE(R.Edges, 0u);
  // The tiny budgets must actually have driven collections.
  EXPECT_GT(H.Stats.MinorPause.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GCStressGeometry,
    ::testing::Combine(
        ::testing::Values<std::size_t>(64 * 1024, 128 * 1024, 512 * 1024),
        ::testing::Values<std::size_t>(16 * 1024, 64 * 1024, 256 * 1024),
        ::testing::Values<std::size_t>(128 * 1024, 4 * 1024 * 1024)),
    [](const ::testing::TestParamInfo<GeometryParam> &Info) {
      return "heap" + std::to_string(std::get<0>(Info.param) / 1024) +
             "k_chunk" + std::to_string(std::get<1>(Info.param) / 1024) +
             "k_budget" + std::to_string(std::get<2>(Info.param) / 1024) +
             "k";
    });

//===----------------------------------------------------------------------===//
// Multi-vproc threaded stress across policies
//===----------------------------------------------------------------------===//

/// (NumVProcs, PolicyKind)
using ThreadedParam = std::tuple<unsigned, AllocPolicyKind>;

class GCStressThreaded : public ::testing::TestWithParam<ThreadedParam> {};

TEST_P(GCStressThreaded, ConcurrentMutatorsPreserveContents) {
  auto [NumVProcs, Policy] = GetParam();
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024; // frequent global collections
  Cfg.Policy = Policy;
  TestWorld TW(NumVProcs, Cfg, Topology::uniform(2, 4));
  GCWorld &W = TW.World;

  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned V = 0; V < NumVProcs; ++V) {
    Threads.emplace_back([&W, V, &Done, NumVProcs] {
      VProcHeap &H = W.heap(V);
      {
        StressMutator M(H, 0xFACE + V * 7919);
        for (int Op = 0; Op < 1200; ++Op) {
          M.step();
          if (Op % 300 == 299)
            M.verifyAll();
        }
        M.verifyAll();
      }
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < NumVProcs ||
             W.globalGCPending()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  verifyWorld(W);
}

INSTANTIATE_TEST_SUITE_P(
    VProcsAndPolicies, GCStressThreaded,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(AllocPolicyKind::Local,
                                         AllocPolicyKind::Interleaved,
                                         AllocPolicyKind::SingleNode)),
    [](const ::testing::TestParamInfo<ThreadedParam> &Info) {
      return std::string("vp") + std::to_string(std::get<0>(Info.param)) +
             "_" +
             (std::get<1>(Info.param) == AllocPolicyKind::Local
                  ? "local"
                  : std::get<1>(Info.param) == AllocPolicyKind::Interleaved
                        ? "interleaved"
                        : "single");
    });

//===----------------------------------------------------------------------===//
// Targeted edge cases the random walk may miss
//===----------------------------------------------------------------------===//

TEST(GCEdge, OversizedRawGoesToDedicatedChunk) {
  GCConfig Cfg = smallConfig(); // 64 KiB chunks
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  std::vector<uint8_t> Data(200 * 1024);
  for (std::size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I * 31);
  Value &Big = Frame.root(H.allocGlobalRaw(Data.data(), Data.size()));
  EXPECT_TRUE(isGlobal(TW.World, Big));
  EXPECT_EQ(std::memcmp(rawData(Big), Data.data(), Data.size()), 0);
  // chunkOf must find it through the oversized index.
  Chunk *C = TW.World.chunks().chunkOf(Big.asPtr());
  EXPECT_TRUE(C->IsOversized);
}

TEST(GCEdge, OversizedObjectSurvivesGlobalGC) {
  GCConfig Cfg = smallConfig();
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  std::vector<uint8_t> Data(150 * 1024);
  for (std::size_t I = 0; I < Data.size(); ++I)
    Data[I] = static_cast<uint8_t>(I * 13 + 1);
  Value &Big = Frame.root(H.allocGlobalRaw(Data.data(), Data.size()));
  Word *Before = Big.asPtr();
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_NE(Big.asPtr(), Before) << "copied into a fresh oversized chunk";
  EXPECT_EQ(std::memcmp(rawData(Big), Data.data(), Data.size()), 0);
  verifyHeap(H);
}

TEST(GCEdge, OversizedGarbageIsFreed) {
  GCConfig Cfg = smallConfig();
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  {
    GcFrame Frame(H);
    Value &Big = Frame.root(H.allocGlobalRaw(nullptr, 300 * 1024));
    (void)Big;
  }
  uint64_t ActiveBefore = TW.World.chunks().activeBytes();
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_LT(TW.World.chunks().activeBytes(), ActiveBefore)
      << "the dead oversized chunk must be released";
}

TEST(GCEdge, LocalRawAboveNurseryGoesGlobal) {
  GCConfig Cfg = smallConfig(); // 128 KiB heap, 64 KiB nursery
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // 80 KiB cannot fit any nursery: the slow path routes it globally
  // (raw data carries no pointers, so this is invariant-safe).
  Value &Big = Frame.root(H.allocRaw(nullptr, 80 * 1024));
  EXPECT_TRUE(isGlobal(TW.World, Big));
  EXPECT_GT(H.Stats.BytesAllocatedGlobal, 0u);
}

TEST(GCEdge, OversizedVectorPromotesItsElements) {
  GCConfig Cfg = smallConfig();
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Vector bigger than LocalHeapBytes/4 forces the global path, which
  // must promote the (local) elements first.
  const std::size_t N = Cfg.LocalHeapBytes / 4 / 8 + 16;
  std::vector<Value> Elems(N, Value::nil());
  Value &First = Frame.root(makeIntList(H, 5));
  for (auto &E : Elems)
    Frame.root(E); // root every slot
  Elems[0] = First;
  Value &Vec = Frame.root(H.allocVector(Elems.data(), N));
  EXPECT_TRUE(isGlobal(TW.World, Vec));
  Value Head = vectorGet(Vec, 0);
  EXPECT_TRUE(isGlobal(TW.World, Head))
      << "global vector elements must be global";
  EXPECT_EQ(listSum(Head), intListSum(5));
  verifyHeap(H);
}

TEST(GCEdge, EmergencyEvacuationWhenHeapCrowded) {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 64 * 1024;
  Cfg.MinNurseryBytes = 4 * 1024;
  Cfg.ChunkBytes = 64 * 1024;
  Cfg.GlobalGCBytesPerVProc = 8 * 1024 * 1024;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Live data approaching the whole local heap forces the AllLocal
  // emergency path; everything must survive in the global heap.
  std::deque<Value> Keep;
  std::vector<Value *> Slots;
  for (int I = 0; I < 40; ++I) {
    Keep.push_back(Value::nil());
    H.ShadowStack.push_back(&Keep.back());
    Keep.back() = makeIntList(H, 60);
  }
  int64_t Total = 0;
  for (Value &V : Keep)
    Total += listSum(V);
  EXPECT_EQ(Total, 40 * intListSum(60));
  verifyHeap(H);
  for (int I = 0; I < 40; ++I)
    H.ShadowStack.pop_back();
}

TEST(GCEdge, AggregateStatsSumAcrossVProcs) {
  TestWorld TW(3);
  for (unsigned V = 0; V < 3; ++V) {
    GcFrame Frame(TW.heap(V));
    Value &L = Frame.root(makeIntList(TW.heap(V), 10));
    (void)L;
    TW.heap(V).minorGC();
  }
  GCStats Total = TW.World.aggregateStats();
  // The aggregate must be the sum over the per-vproc stats. (Compare
  // against the actual per-heap counts rather than a literal: under
  // GCConfig::StressGC every allocation also collects.)
  uint64_t PerHeap = 0;
  for (unsigned V = 0; V < 3; ++V)
    PerHeap += TW.heap(V).Stats.MinorPause.count();
  EXPECT_EQ(Total.MinorPause.count(), PerHeap);
  EXPECT_GE(Total.MinorPause.count(), 3u);
  EXPECT_GT(Total.BytesAllocatedLocal, 0u);
}

TEST(GCEdgeDeath, GlobalVectorRejectsLocalElements) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Local = Frame.root(makeIntList(H, 3));
  Value Elems[1] = {Local};
  EXPECT_DEATH(H.allocGlobalVector(Elems, 1), "references a local heap");
}

TEST(GCEdgeDeath, MisconfiguredWorldAborts) {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 8 * 1024; // below the minimum
  EXPECT_DEATH(TestWorld TW(1, Cfg), "local heap size");
  GCConfig Cfg2;
  Cfg2.MinNurseryBytes = Cfg2.LocalHeapBytes; // nursery too large
  EXPECT_DEATH(TestWorld TW2(1, Cfg2), "nursery too large");
}

TEST(GCEdgeDeath, ChunkSizeMustBePowerOfTwo) {
  MemoryBanks Banks(1);
  AllocPolicy Policy(AllocPolicyKind::Local, 1);
  EXPECT_DEATH(ChunkManager Mgr(Banks, Policy, 3 * 4096), "power-of-two");
}
