//===- tests/MemoryBindTest.cpp - MemoryBanks real-placement mode ---------===//
//
// Part of the manticore-gc project.
//
// Bound-mode MemoryBanks: mmap'd arenas, mbind'd to their node when the
// host can (MANTI_NUMA=ON build + libnuma + NUMA kernel), first-touch
// otherwise. The bind assertions GTEST_SKIP on hosts that cannot bind --
// the mmap/recycle/page-map mechanics are asserted everywhere.
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"

#include "numa/MemoryBanks.h"
#include "numa/NumaOS.h"
#include "numa/Topology.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

using namespace manti;
using namespace manti::test;

TEST(MemoryBind, BoundModeAllocatesWritesAndRecycles) {
  MemoryBanks Banks(2, MemoryBanks::BindMode::Bound);
  EXPECT_EQ(Banks.mode(), MemoryBanks::BindMode::Bound);

  void *B0 = Banks.allocBlock(8 * MemoryBanks::PageSize, 0);
  void *B1 = Banks.allocBlock(8 * MemoryBanks::PageSize, 1);
  ASSERT_NE(B0, nullptr);
  ASSERT_NE(B1, nullptr);
  std::memset(B0, 0xa5, 8 * MemoryBanks::PageSize);
  std::memset(B1, 0x5a, 8 * MemoryBanks::PageSize);

  // The page map answers placement exactly as in Simulated mode.
  EXPECT_EQ(Banks.nodeOf(B0), 0);
  EXPECT_EQ(Banks.nodeOf(static_cast<char *>(B1) + 5 * MemoryBanks::PageSize),
            1);
  EXPECT_EQ(Banks.bytesInUse(0), 8 * MemoryBanks::PageSize);

  // Recycle: a freed block comes back verbatim from the node free list.
  Banks.freeBlock(B0, 8 * MemoryBanks::PageSize);
  EXPECT_EQ(Banks.bytesInUse(0), 0u);
  void *Again = Banks.allocBlock(8 * MemoryBanks::PageSize, 0);
  EXPECT_EQ(Again, B0);
  Banks.freeBlock(Again, 8 * MemoryBanks::PageSize);
  Banks.freeBlock(B1, 8 * MemoryBanks::PageSize);
}

TEST(MemoryBind, BoundModeHonoursLargeAlignment) {
  // Align > PageSize exercises mapAligned's over-map-and-trim path; the
  // trimmed extent must still be writable end to end and recyclable.
  MemoryBanks Banks(1, MemoryBanks::BindMode::Bound);
  const std::size_t Align = 256 * 1024;
  void *B = Banks.allocBlock(Align, 0, Align);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(B) % Align, 0u);
  std::memset(B, 0x17, Align);
  EXPECT_EQ(Banks.nodeOf(static_cast<char *>(B) + Align - 1), 0);
  Banks.freeBlock(B, Align, Align);
}

TEST(MemoryBind, CanBindMatchesNumaOsAvailability) {
  EXPECT_EQ(MemoryBanks::canBind(), numaos::available());
  if (!MemoryBanks::canBind()) {
    // Unsupported hosts must say so rather than invent placements.
    int X = 0;
    EXPECT_EQ(MemoryBanks::osNodeOf(&X), -1);
  }
}

TEST(MemoryBind, SimulatedModeNeverBinds) {
  MemoryBanks Banks(2, MemoryBanks::BindMode::Simulated);
  void *B = Banks.allocBlock(4 * MemoryBanks::PageSize, 1);
  std::memset(B, 1, 4 * MemoryBanks::PageSize);
  EXPECT_EQ(Banks.bytesBound(0), 0u);
  EXPECT_EQ(Banks.bytesBound(1), 0u);
  Banks.freeBlock(B, 4 * MemoryBanks::PageSize);
}

TEST(MemoryBind, PageMapAgreesWithMovePages) {
  if (!MemoryBanks::canBind())
    GTEST_SKIP() << "host cannot mbind (no libnuma build or UMA kernel)";

  // Home every logical node on the OS nodes the probe reports, allocate
  // a block per node, and let move_pages referee: the OS's answer for
  // each touched page must match the bank's page map.
  Topology Host = Topology::host();
  std::vector<unsigned> OsIds(Host.numNodes());
  for (NodeId N = 0; N < Host.numNodes(); ++N)
    OsIds[N] = Host.osNodeOfNode(N);
  MemoryBanks Banks(Host.numNodes(), MemoryBanks::BindMode::Bound, OsIds);

  const std::size_t Bytes = 16 * MemoryBanks::PageSize;
  for (NodeId N = 0; N < Host.numNodes(); ++N) {
    char *B = static_cast<char *>(Banks.allocBlock(Bytes, N));
    std::memset(B, 0x33, Bytes); // touch so move_pages has a placement
    if (Banks.bytesBound(N) == 0)
      continue; // the kernel refused this node's bind; nothing to verify
    for (std::size_t Off = 0; Off < Bytes; Off += 5 * MemoryBanks::PageSize) {
      int OsNode = MemoryBanks::osNodeOf(B + Off);
      ASSERT_GE(OsNode, 0);
      EXPECT_EQ(static_cast<unsigned>(OsNode), OsIds[N])
          << "page at offset " << Off << " landed off node " << N;
      EXPECT_EQ(Banks.nodeOf(B + Off), static_cast<int>(N));
    }
    Banks.freeBlock(B, Bytes);
  }
}

TEST(MemoryBind, GCWorldBindMemoryEndToEnd) {
  // A world built with BindMemory=true runs the full mutator/collector
  // path on mmap'd banks: allocate a list, survive a minor collection,
  // re-read it.
  GCConfig Cfg = smallConfig();
  Cfg.BindMemory = true;
  TestWorld T(1, Cfg);
  EXPECT_EQ(T.World.banks().mode(), MemoryBanks::BindMode::Bound);
  EXPECT_GT(T.World.banks().bytesReserved(0), 0u);

  VProcHeap &H = T.heap();
  RootScope S(H);
  Ref<> List = S.root(makeIntList(H, 500));
  H.minorGC();
  EXPECT_EQ(listLength(List.value()), 500);
  EXPECT_EQ(listSum(List.value()), 500 * 499 / 2);
}
