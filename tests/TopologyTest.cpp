//===- tests/TopologyTest.cpp - tests for numa/Topology -------------------===//
//
// Part of the manticore-gc project. Checks the Appendix A machines
// (Figs. 8 and 9) and the Table 1 bandwidths.
//
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace manti;

TEST(TopologyAmd, Shape) {
  Topology T = Topology::amdMagnyCours48();
  EXPECT_EQ(T.numNodes(), 8u);
  EXPECT_EQ(T.coresPerNode(), 6u);
  EXPECT_EQ(T.numCores(), 48u);
  EXPECT_EQ(T.numPackages(), 4u);
}

TEST(TopologyAmd, PackagesPairNodes) {
  Topology T = Topology::amdMagnyCours48();
  for (NodeId N = 0; N < 8; ++N)
    EXPECT_EQ(T.packageOfNode(N), N / 2);
  EXPECT_TRUE(T.samePackage(0, 1));
  EXPECT_FALSE(T.samePackage(1, 2));
}

TEST(TopologyAmd, Table1Bandwidths) {
  Topology T = Topology::amdMagnyCours48();
  // Local memory: 21.3 GB/s.
  EXPECT_DOUBLE_EQ(T.pathGBps(0, 0), 21.3);
  // Node in same package: 19.2 GB/s.
  EXPECT_DOUBLE_EQ(T.pathGBps(0, 1), 19.2);
  // Node on another package: 6.4 GB/s.
  EXPECT_DOUBLE_EQ(T.pathGBps(0, 7), 6.4);
}

TEST(TopologyAmd, EveryDieHasThreeRemoteLinks) {
  Topology T = Topology::amdMagnyCours48();
  std::vector<unsigned> RemoteEnds(8, 0);
  for (LinkId L = 0; L < T.numLinks(); ++L) {
    const Link &Lk = T.link(L);
    if (!T.samePackage(Lk.NodeA, Lk.NodeB)) {
      ++RemoteEnds[Lk.NodeA];
      ++RemoteEnds[Lk.NodeB];
    }
  }
  for (unsigned Ends : RemoteEnds)
    EXPECT_EQ(Ends, 3u) << "each die drives one 8-bit HT3 link per package";
}

TEST(TopologyAmd, RemoteRoutesAtMostTwoHops) {
  Topology T = Topology::amdMagnyCours48();
  for (NodeId A = 0; A < 8; ++A) {
    for (NodeId B = 0; B < 8; ++B) {
      if (A == B)
        continue;
      EXPECT_LE(T.hopCount(A, B), 2u);
    }
  }
}

TEST(TopologyIntel, Shape) {
  Topology T = Topology::intelXeon32();
  EXPECT_EQ(T.numNodes(), 4u);
  EXPECT_EQ(T.coresPerNode(), 8u);
  EXPECT_EQ(T.numCores(), 32u);
  EXPECT_EQ(T.numPackages(), 4u);
}

TEST(TopologyIntel, Table1Bandwidths) {
  Topology T = Topology::intelXeon32();
  // Local memory: 17.1 GB/s.
  EXPECT_DOUBLE_EQ(T.pathGBps(0, 0), 17.1);
  // Remote: QPI link is 25.6 GB/s, but the remote memory controller
  // still bounds the end-to-end path at 17.1 (the paper's Table 1 lists
  // the 25.6 GB/s link figure; the Intel machine's NUMA penalty is small
  // precisely because the link does not throttle below local bandwidth).
  EXPECT_DOUBLE_EQ(T.link(0).GBps, 25.6);
  EXPECT_DOUBLE_EQ(T.pathGBps(0, 3), 17.1);
}

TEST(TopologyIntel, FullyConnectedOneHop) {
  Topology T = Topology::intelXeon32();
  for (NodeId A = 0; A < 4; ++A)
    for (NodeId B = 0; B < 4; ++B)
      EXPECT_EQ(T.hopCount(A, B), A == B ? 0u : 1u);
}

TEST(TopologyGeneric, SingleNodeHasNoLinks) {
  Topology T = Topology::singleNode(4);
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_EQ(T.numCores(), 4u);
  EXPECT_EQ(T.numLinks(), 0u);
  EXPECT_EQ(T.hopCount(0, 0), 0u);
}

TEST(TopologyGeneric, UniformShape) {
  Topology T = Topology::uniform(3, 2, 20.0, 5.0);
  EXPECT_EQ(T.numNodes(), 3u);
  EXPECT_EQ(T.numCores(), 6u);
  EXPECT_DOUBLE_EQ(T.pathGBps(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(T.pathGBps(1, 1), 20.0);
}

TEST(TopologyGeneric, NodeOfCore) {
  Topology T = Topology::uniform(4, 8);
  EXPECT_EQ(T.nodeOfCore(0), 0u);
  EXPECT_EQ(T.nodeOfCore(7), 0u);
  EXPECT_EQ(T.nodeOfCore(8), 1u);
  EXPECT_EQ(T.nodeOfCore(31), 3u);
}

TEST(TopologyGeneric, RoutesAreDeterministic) {
  Topology A = Topology::amdMagnyCours48();
  Topology B = Topology::amdMagnyCours48();
  for (NodeId From = 0; From < 8; ++From)
    for (NodeId To = 0; To < 8; ++To)
      EXPECT_EQ(A.route(From, To), B.route(From, To));
}

TEST(SparseAssignment, SpreadsAcrossNodes) {
  Topology T = Topology::intelXeon32();
  // Four vprocs on a four-node machine: one per node (minimizing L3
  // contention, Section 2.2).
  std::vector<CoreId> Cores = T.assignVProcsSparsely(4);
  std::set<NodeId> Nodes;
  for (CoreId C : Cores)
    Nodes.insert(T.nodeOfCore(C));
  EXPECT_EQ(Nodes.size(), 4u);
}

TEST(SparseAssignment, EightOnIntelIsTwoPerNode) {
  Topology T = Topology::intelXeon32();
  std::vector<CoreId> Cores = T.assignVProcsSparsely(8);
  std::vector<unsigned> PerNode(4, 0);
  for (CoreId C : Cores)
    ++PerNode[T.nodeOfCore(C)];
  for (unsigned N : PerNode)
    EXPECT_EQ(N, 2u);
}

TEST(SparseAssignment, FullMachineUsesEveryCoreOnce) {
  Topology T = Topology::amdMagnyCours48();
  std::vector<CoreId> Cores = T.assignVProcsSparsely(48);
  std::set<CoreId> Unique(Cores.begin(), Cores.end());
  EXPECT_EQ(Unique.size(), 48u);
}

TEST(NodesByDistance, IntelIsSelfThenEverybody) {
  Topology T = Topology::intelXeon32();
  for (NodeId N = 0; N < T.numNodes(); ++N) {
    auto Tiers = T.nodesByDistance(N);
    ASSERT_EQ(Tiers.size(), 2u); // fully connected: self, then 1 hop
    ASSERT_EQ(Tiers[0].size(), 1u);
    EXPECT_EQ(Tiers[0][0], N);
    EXPECT_EQ(Tiers[1].size(), T.numNodes() - 1);
  }
}

TEST(NodesByDistance, AmdTiersIncreaseInHops) {
  Topology T = Topology::amdMagnyCours48();
  for (NodeId N = 0; N < T.numNodes(); ++N) {
    auto Tiers = T.nodesByDistance(N);
    ASSERT_GE(Tiers.size(), 2u);
    EXPECT_EQ(Tiers[0], std::vector<NodeId>{N});
    unsigned Seen = 0;
    int PrevHops = -1;
    for (const auto &Tier : Tiers) {
      ASSERT_FALSE(Tier.empty());
      unsigned Hops = T.hopCount(N, Tier[0]);
      EXPECT_GT(static_cast<int>(Hops), PrevHops);
      PrevHops = static_cast<int>(Hops);
      for (NodeId M : Tier) {
        EXPECT_EQ(T.hopCount(N, M), Hops);
        ++Seen;
      }
    }
    EXPECT_EQ(Seen, T.numNodes());
    // The package sibling is always a direct link on this machine.
    NodeId Sibling = N ^ 1u;
    ASSERT_GE(Tiers.size(), 2u);
    EXPECT_NE(std::find(Tiers[1].begin(), Tiers[1].end(), Sibling),
              Tiers[1].end());
  }
}
