//===- tests/GlobalGCTest.cpp - parallel global collection (Section 3.4) --===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "gc/Proxy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace manti;
using namespace manti::test;

TEST(GlobalGC, SingleVProcCollectsGarbage) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 50));
  Keep = H.promote(Keep);
  // Create global garbage: promote and drop.
  for (int I = 0; I < 40; ++I) {
    GcFrame Inner(H);
    Value &Junk = Inner.root(makeIntList(H, 100));
    H.promote(Junk);
  }
  uint64_t ActiveBefore = TW.World.chunks().activeBytes();
  TW.World.requestGlobalGC();
  EXPECT_TRUE(H.gcSignalled());
  H.safePoint(); // barrier of one: runs the whole collection
  EXPECT_EQ(TW.World.globalGCCount(), 1u);
  EXPECT_FALSE(TW.World.globalGCPending());
  EXPECT_LT(TW.World.chunks().activeBytes(), ActiveBefore)
      << "garbage chunks must return to the free pool";
  EXPECT_EQ(listSum(Keep), intListSum(50));
  verifyHeap(H);
}

TEST(GlobalGC, SignalZeroesEveryLimit) {
  TestWorld TW(3);
  TW.World.requestGlobalGC();
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_TRUE(TW.heap(I).gcSignalled());
}

TEST(GlobalGC, TriggeredAutomaticallyByThreshold) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024; // tiny budget: 4 chunks
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 20));
  Frame.root(Keep);
  for (int I = 0; I < 200 && TW.World.globalGCCount() == 0; ++I) {
    {
      GcFrame Inner(H);
      Value &Junk = Inner.root(makeIntList(H, 200));
      H.promote(Junk);
    }
    H.safePoint();
  }
  EXPECT_GE(TW.World.globalGCCount(), 1u)
      << "promotion volume must eventually trip the trigger";
  EXPECT_EQ(listSum(Keep), intListSum(20));
}

TEST(GlobalGC, YoungDataSurvivesInLocalHeap) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &LocalList = Frame.root(makeIntList(H, 25));
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_TRUE(isLocalTo(H, LocalList))
      << "data copied by the collection-entry minor GC stays local";
  EXPECT_EQ(listSum(LocalList), intListSum(25));
}

TEST(GlobalGC, CompactsLiveDataIntoFewerChunks) {
  GCConfig Cfg = smallConfig();
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Interleave live and dead promotions so live data is spread thinly
  // over many from-space chunks.
  std::vector<Value> Kept(10);
  for (auto &Slot : Kept)
    Frame.root(Slot);
  for (int Round = 0; Round < 10; ++Round) {
    Kept[Round] = H.promote(makeIntList(H, 30));
    GcFrame Inner(H);
    Value &Junk = Inner.root(makeIntList(H, 600));
    H.promote(Junk);
  }
  unsigned ChunksBefore =
      static_cast<unsigned>(TW.World.chunks().activeBytes() /
                            Cfg.ChunkBytes);
  TW.World.requestGlobalGC();
  H.safePoint();
  unsigned ChunksAfter =
      static_cast<unsigned>(TW.World.chunks().activeBytes() / Cfg.ChunkBytes);
  EXPECT_LT(ChunksAfter, ChunksBefore) << "copying collection compacts";
  for (auto &Slot : Kept)
    EXPECT_EQ(listSum(Slot), intListSum(30));
}

TEST(GlobalGC, ProxiesMoveAndTablesFollow) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 8));
  Value &P = Frame.root(createProxy(H, Payload));
  Word *ProxyBefore = P.asPtr();
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_NE(P.asPtr(), ProxyBefore) << "proxy object was copied";
  EXPECT_EQ(H.ProxyTable.size(), 1u);
  EXPECT_EQ(H.ProxyTable[0], P.asPtr()) << "table tracks the moved proxy";
  EXPECT_FALSE(proxyResolved(P));
  EXPECT_EQ(listSum(proxyPayload(P)), intListSum(8));
  // Resolution still works after the move.
  Value G = resolveProxy(H, P);
  EXPECT_EQ(listSum(G), intListSum(8));
  verifyHeap(H);
}

TEST(GlobalGC, AdaptiveThresholdGrowsWithLiveData) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 128 * 1024;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Keep a lot of live global data.
  std::vector<Value> Kept(12);
  for (auto &Slot : Kept) {
    Frame.root(Slot);
    Slot = H.promote(makeIntList(H, 800));
  }
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_GT(TW.World.globalGCThresholdBytes(),
            static_cast<uint64_t>(Cfg.GlobalGCBytesPerVProc))
      << "threshold adapts when live data exceeds the base budget";
  for (auto &Slot : Kept)
    EXPECT_EQ(listSum(Slot), intListSum(800));
}

//===----------------------------------------------------------------------===//
// Multi-vproc (threaded) collections
//===----------------------------------------------------------------------===//

namespace {

/// Runs Body on each vproc's own thread. A global collection needs every
/// vproc at its barriers, so after Body returns each thread stays in a
/// safe-point drain loop until all threads are done AND no collection is
/// pending -- only then can no new collection arise.
void runOnVProcs(GCWorld &W, void (*Body)(VProcHeap &)) {
  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < W.numVProcs(); ++I) {
    Threads.emplace_back([&W, I, Body, &Done] {
      VProcHeap &H = W.heap(I);
      Body(H);
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < W.numVProcs() ||
             W.collectionInProgress()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (auto &T : Threads)
    T.join();
}

} // namespace

namespace {
/// Durable per-vproc root cells that outlive the worker threads, so the
/// post-join world verification still reaches the promoted survivors.
std::vector<Value> DurableKeeps;
} // namespace

TEST(GlobalGCParallel, FourVProcsCollectTogether) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024;
  TestWorld TW(4, Cfg, Topology::uniform(2, 2));

  DurableKeeps.assign(4, Value::nil());
  for (unsigned I = 0; I < 4; ++I)
    TW.heap(I).ShadowStack.push_back(&DurableKeeps[I]);

  runOnVProcs(TW.World, [](VProcHeap &H) {
    GcFrame Frame(H);
    Value &Keep = Frame.root(makeIntList(H, 40));
    Keep = H.promote(Keep);
    DurableKeeps[H.id()] = Keep;
    for (int I = 0; I < 120; ++I) {
      {
        GcFrame Inner(H);
        Value &Junk = Inner.root(makeIntList(H, 120));
        H.promote(Junk);
      }
      H.safePoint();
    }
    EXPECT_EQ(listSum(Keep), intListSum(40));
  });

  EXPECT_GE(TW.World.globalGCCount(), 1u);
  VerifyResult R = verifyWorld(TW.World);
  EXPECT_GT(R.GlobalObjects, 0u);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(listSum(DurableKeeps[I]), intListSum(40));
}

TEST(GlobalGCParallel, MixedLocalAndGlobalLiveData) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 192 * 1024;
  TestWorld TW(3, Cfg, Topology::uniform(3, 1));

  runOnVProcs(TW.World, [](VProcHeap &H) {
    GcFrame Frame(H);
    Value &LocalKeep = Frame.root(makeIntList(H, 15));
    Value &GlobalKeep = Frame.root(makeIntList(H, 15));
    GlobalKeep = H.promote(GlobalKeep);
    for (int I = 0; I < 200; ++I) {
      allocGarbage(H, 40);
      if (I % 3 == 0) {
        GcFrame Inner(H);
        Value &Junk = Inner.root(makeIntList(H, 80));
        H.promote(Junk);
      }
      H.safePoint();
      ASSERT_EQ(listSum(LocalKeep), intListSum(15));
      ASSERT_EQ(listSum(GlobalKeep), intListSum(15));
    }
  });

  verifyWorld(TW.World);
}

//===----------------------------------------------------------------------===//
// Mostly-concurrent marking (GCConfig::ConcurrentGlobal)
//===----------------------------------------------------------------------===//

namespace {

/// Steps a single-vproc world through the rest of a concurrent cycle:
/// with a barrier of one, each safe point runs an entire rendezvous, and
/// the ConcMark assists drain the gray stack.
void stepCycleToCompletion(GCWorld &W, VProcHeap &H) {
  while (W.collectionInProgress())
    H.safePoint();
}

} // namespace

TEST(ConcurrentGlobalGC, PhaseMachineSteps) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 20));
  Keep = H.promote(Keep);

  ASSERT_TRUE(TW.World.startConcurrentMark());
  EXPECT_FALSE(TW.World.startConcurrentMark()) << "no re-entry mid-cycle";
  EXPECT_EQ(TW.World.phase(), GCPhase::ConcInit);
  EXPECT_TRUE(H.gcSignalled());

  H.safePoint(); // barrier of one: runs the whole initial rendezvous
  EXPECT_EQ(TW.World.phase(), GCPhase::ConcMark);
  EXPECT_TRUE(TW.World.satbActive());

  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.phase(), GCPhase::Idle);
  EXPECT_FALSE(TW.World.satbActive());
  EXPECT_EQ(TW.World.globalGCCount(), 1u);
  EXPECT_EQ(TW.World.concurrentGCCount(), 1u);
  EXPECT_EQ(listSum(Keep), intListSum(20));
  verifyHeap(H);
}

TEST(ConcurrentGlobalGC, SingleVProcCollectsGarbage) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 50));
  Keep = H.promote(Keep);
  // Whole-chunk garbage: the non-moving sweep reclaims chunks with no
  // marked objects, so the junk must span several chunks by itself.
  for (int I = 0; I < 40; ++I) {
    GcFrame Inner(H);
    Value &Junk = Inner.root(makeIntList(H, 200));
    H.promote(Junk);
  }
  uint64_t ActiveBefore = TW.World.chunks().activeBytes();
  ASSERT_TRUE(TW.World.startConcurrentMark());
  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.concurrentGCCount(), 1u);
  EXPECT_LT(TW.World.chunks().activeBytes(), ActiveBefore)
      << "all-garbage chunks must return to the free pool";
  EXPECT_EQ(listSum(Keep), intListSum(50));
  verifyHeap(H);
}

TEST(ConcurrentGlobalGC, MutationMidMarkKeepsSnapshotSafe) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H); // arms the handle-layer deletion barrier for this heap
  // Enough dropped data to span whole chunks, so the *second* cycle can
  // be seen reclaiming the floating garbage.
  std::vector<Ref<>> Dropped;
  for (int I = 0; I < 10; ++I)
    Dropped.push_back(S.root(H.promote(makeIntList(H, 600))));
  Ref<> Keep = S.root(H.promote(makeIntList(H, 40)));

  ASSERT_TRUE(TW.World.startConcurrentMark());
  H.safePoint(); // initial rendezvous: snapshot taken
  ASSERT_EQ(TW.World.phase(), GCPhase::ConcMark);

  // Mutate mid-mark. Overwrites and deletes of root slots drop the only
  // references to snapshotted data: the Yuasa barrier must record the
  // old values, or the tracer could miss them and sweep live chunks.
  for (std::size_t I = 0; I < Dropped.size(); ++I)
    Dropped[I] = (I % 2 == 0) ? Value::nil() // delete
                              : H.promote(makeIntList(H, 3)); // overwrite
  // Data allocated during the mark is retained by allocation epoch.
  Ref<> Fresh = S.root(H.promote(makeIntList(H, 12)));

  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.concurrentGCCount(), 1u);
  EXPECT_EQ(listSum(Keep.value()), intListSum(40));
  EXPECT_EQ(listSum(Fresh.value()), intListSum(12));
  verifyHeap(H);

  // The dropped lists survived cycle 1 as floating garbage (the barrier
  // marked them). Nothing references them now: cycle 2 frees their
  // chunks.
  uint64_t ActiveAfterFirst = TW.World.chunks().activeBytes();
  ASSERT_TRUE(TW.World.startConcurrentMark());
  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.concurrentGCCount(), 2u);
  EXPECT_LT(TW.World.chunks().activeBytes(), ActiveAfterFirst)
      << "floating garbage must be reclaimed by the next cycle";
  EXPECT_EQ(listSum(Keep.value()), intListSum(40));
  verifyHeap(H);
}

TEST(ConcurrentGlobalGC, VecRefOverwriteMidMarkKeepsSnapshotSafe) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  // The vector twin of MutationMidMarkKeepsSnapshotSafe: VecRef has its
  // own assignment operators with their own satbRecordOverwrite calls,
  // so the barrier coverage must be demonstrated separately.
  std::vector<VecRef<>> Dropped;
  for (int I = 0; I < 10; ++I)
    Dropped.push_back(S.rootVector(H.promote(makeIntList(H, 600))));
  VecRef<> Keep = S.rootVector(H.promote(makeIntList(H, 40)));

  ASSERT_TRUE(TW.World.startConcurrentMark());
  H.safePoint(); // initial rendezvous: snapshot taken
  ASSERT_EQ(TW.World.phase(), GCPhase::ConcMark);

  // Re-target the vector handles mid-mark. Each overwrite drops the
  // only reference to a snapshotted list; VecRef::operator= must feed
  // the old head to the deletion barrier exactly as Ref's does.
  for (std::size_t I = 0; I < Dropped.size(); ++I)
    Dropped[I] = (I % 2 == 0) ? Value::nil() // delete
                              : H.promote(makeIntList(H, 3)); // overwrite
  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.concurrentGCCount(), 1u);
  EXPECT_EQ(listSum(Keep.value()), intListSum(40));
  // Typed element access through the handle still works post-cycle.
  EXPECT_EQ(Keep.size(), 2u);
  EXPECT_EQ(listSum(Keep.at(1)), intListSum(39));
  verifyHeap(H);

  // Cycle 2 reclaims what cycle 1 retained as floating garbage.
  uint64_t ActiveAfterFirst = TW.World.chunks().activeBytes();
  ASSERT_TRUE(TW.World.startConcurrentMark());
  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.concurrentGCCount(), 2u);
  EXPECT_LT(TW.World.chunks().activeBytes(), ActiveAfterFirst)
      << "floating garbage must be reclaimed by the next cycle";
  EXPECT_EQ(listSum(Keep.value()), intListSum(40));
  verifyHeap(H);
}

TEST(ConcurrentGlobalGC, ProxyResolutionMidMark) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 8));
  Value &P = Frame.root(createProxy(H, Payload));

  ASSERT_TRUE(TW.World.startConcurrentMark());
  H.safePoint();
  ASSERT_EQ(TW.World.phase(), GCPhase::ConcMark);

  // The one true heap mutation in the system: resolution publishes the
  // promoted payload into the proxy while the marker may be scanning it.
  Value G = resolveProxy(H, P);
  stepCycleToCompletion(TW.World, H);

  EXPECT_TRUE(proxyResolved(P));
  EXPECT_EQ(listSum(proxyPayload(P)), intListSum(8));
  EXPECT_EQ(listSum(G), intListSum(8));
  verifyHeap(H);
}

TEST(ConcurrentGlobalGC, StwRequestDoesNotPreemptRunningCycle) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 20));
  Keep = H.promote(Keep);

  ASSERT_TRUE(TW.World.startConcurrentMark());
  H.safePoint();
  ASSERT_EQ(TW.World.phase(), GCPhase::ConcMark);
  TW.World.requestGlobalGC(); // must be a no-op mid-cycle
  EXPECT_FALSE(TW.World.globalGCPending());
  EXPECT_EQ(TW.World.phase(), GCPhase::ConcMark);

  stepCycleToCompletion(TW.World, H);
  EXPECT_EQ(TW.World.globalGCCount(), 1u);
  EXPECT_EQ(TW.World.concurrentGCCount(), 1u);
  EXPECT_EQ(listSum(Keep), intListSum(20));
}

TEST(ConcurrentGlobalGC, WatermarkTriggersAutomatically) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024; // tiny budget: 4 chunks
  Cfg.ConcurrentGlobal = true;
  Cfg.ConcurrentMarkWatermark = 0.5;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 20));
  Keep = H.promote(Keep);
  for (int I = 0; I < 400 && TW.World.concurrentGCCount() == 0; ++I) {
    {
      GcFrame Inner(H);
      Value &Junk = Inner.root(makeIntList(H, 200));
      H.promote(Junk);
    }
    H.safePoint();
  }
  EXPECT_GE(TW.World.concurrentGCCount(), 1u)
      << "allocation volume must trip the concurrent-mark watermark";
  EXPECT_EQ(listSum(Keep), intListSum(20));
  verifyHeap(H);
}

TEST(ConcurrentGlobalGCParallel, MutationUnderConcurrentMark) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024;
  Cfg.ConcurrentGlobal = true;
  TestWorld TW(4, Cfg, Topology::uniform(2, 2));

  DurableKeeps.assign(4, Value::nil());
  for (unsigned I = 0; I < 4; ++I)
    TW.heap(I).ShadowStack.push_back(&DurableKeeps[I]);

  runOnVProcs(TW.World, [](VProcHeap &H) {
    RootScope S(H);
    Ref<> Keep = S.root(H.promote(makeIntList(H, 40)));
    DurableKeeps[H.id()] = Keep.value();
    // Churn a root slot while cycles run underneath: every assignment
    // is an overwrite (deletion barrier) and every nil store a delete.
    Ref<> Churn = S.root(Value::nil());
    for (int I = 0; I < 150; ++I) {
      Churn = H.promote(makeIntList(H, 60));
      if (I % 7 == 0)
        Churn = Value::nil();
      H.safePoint();
      ASSERT_EQ(listSum(Keep.value()), intListSum(40));
    }
    DurableKeeps[H.id()] = Keep.value();
  });

  EXPECT_GE(TW.World.concurrentGCCount(), 1u)
      << "the churn volume must start at least one concurrent cycle";
  VerifyResult R = verifyWorld(TW.World);
  EXPECT_GT(R.GlobalObjects, 0u);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(listSum(DurableKeeps[I]), intListSum(40));
}

TEST(GlobalGCParallel, StatsAggregateAcrossVProcs) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 128 * 1024;
  TestWorld TW(2, Cfg);

  runOnVProcs(TW.World, [](VProcHeap &H) {
    for (int I = 0; I < 150; ++I) {
      GcFrame Inner(H);
      Value &Junk = Inner.root(makeIntList(H, 100));
      H.promote(Junk);
      H.safePoint();
    }
  });

  GCStats Total = TW.World.aggregateStats();
  EXPECT_GT(Total.PromoteCalls, 0u);
  EXPECT_GE(TW.World.globalGCCount(), 1u);
  EXPECT_GT(Total.GlobalPause.count(), 0u);
}
