//===- tests/GlobalGCTest.cpp - parallel global collection (Section 3.4) --===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "gc/Proxy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace manti;
using namespace manti::test;

TEST(GlobalGC, SingleVProcCollectsGarbage) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 50));
  Keep = H.promote(Keep);
  // Create global garbage: promote and drop.
  for (int I = 0; I < 40; ++I) {
    GcFrame Inner(H);
    Value &Junk = Inner.root(makeIntList(H, 100));
    H.promote(Junk);
  }
  uint64_t ActiveBefore = TW.World.chunks().activeBytes();
  TW.World.requestGlobalGC();
  EXPECT_TRUE(H.gcSignalled());
  H.safePoint(); // barrier of one: runs the whole collection
  EXPECT_EQ(TW.World.globalGCCount(), 1u);
  EXPECT_FALSE(TW.World.globalGCPending());
  EXPECT_LT(TW.World.chunks().activeBytes(), ActiveBefore)
      << "garbage chunks must return to the free pool";
  EXPECT_EQ(listSum(Keep), intListSum(50));
  verifyHeap(H);
}

TEST(GlobalGC, SignalZeroesEveryLimit) {
  TestWorld TW(3);
  TW.World.requestGlobalGC();
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_TRUE(TW.heap(I).gcSignalled());
}

TEST(GlobalGC, TriggeredAutomaticallyByThreshold) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024; // tiny budget: 4 chunks
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 20));
  Frame.root(Keep);
  for (int I = 0; I < 200 && TW.World.globalGCCount() == 0; ++I) {
    {
      GcFrame Inner(H);
      Value &Junk = Inner.root(makeIntList(H, 200));
      H.promote(Junk);
    }
    H.safePoint();
  }
  EXPECT_GE(TW.World.globalGCCount(), 1u)
      << "promotion volume must eventually trip the trigger";
  EXPECT_EQ(listSum(Keep), intListSum(20));
}

TEST(GlobalGC, YoungDataSurvivesInLocalHeap) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &LocalList = Frame.root(makeIntList(H, 25));
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_TRUE(isLocalTo(H, LocalList))
      << "data copied by the collection-entry minor GC stays local";
  EXPECT_EQ(listSum(LocalList), intListSum(25));
}

TEST(GlobalGC, CompactsLiveDataIntoFewerChunks) {
  GCConfig Cfg = smallConfig();
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Interleave live and dead promotions so live data is spread thinly
  // over many from-space chunks.
  std::vector<Value> Kept(10);
  for (auto &Slot : Kept)
    Frame.root(Slot);
  for (int Round = 0; Round < 10; ++Round) {
    Kept[Round] = H.promote(makeIntList(H, 30));
    GcFrame Inner(H);
    Value &Junk = Inner.root(makeIntList(H, 600));
    H.promote(Junk);
  }
  unsigned ChunksBefore =
      static_cast<unsigned>(TW.World.chunks().activeBytes() /
                            Cfg.ChunkBytes);
  TW.World.requestGlobalGC();
  H.safePoint();
  unsigned ChunksAfter =
      static_cast<unsigned>(TW.World.chunks().activeBytes() / Cfg.ChunkBytes);
  EXPECT_LT(ChunksAfter, ChunksBefore) << "copying collection compacts";
  for (auto &Slot : Kept)
    EXPECT_EQ(listSum(Slot), intListSum(30));
}

TEST(GlobalGC, ProxiesMoveAndTablesFollow) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 8));
  Value &P = Frame.root(createProxy(H, Payload));
  Word *ProxyBefore = P.asPtr();
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_NE(P.asPtr(), ProxyBefore) << "proxy object was copied";
  EXPECT_EQ(H.ProxyTable.size(), 1u);
  EXPECT_EQ(H.ProxyTable[0], P.asPtr()) << "table tracks the moved proxy";
  EXPECT_FALSE(proxyResolved(P));
  EXPECT_EQ(listSum(proxyPayload(P)), intListSum(8));
  // Resolution still works after the move.
  Value G = resolveProxy(H, P);
  EXPECT_EQ(listSum(G), intListSum(8));
  verifyHeap(H);
}

TEST(GlobalGC, AdaptiveThresholdGrowsWithLiveData) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 128 * 1024;
  TestWorld TW(1, Cfg);
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Keep a lot of live global data.
  std::vector<Value> Kept(12);
  for (auto &Slot : Kept) {
    Frame.root(Slot);
    Slot = H.promote(makeIntList(H, 800));
  }
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_GT(TW.World.globalGCThresholdBytes(),
            static_cast<uint64_t>(Cfg.GlobalGCBytesPerVProc))
      << "threshold adapts when live data exceeds the base budget";
  for (auto &Slot : Kept)
    EXPECT_EQ(listSum(Slot), intListSum(800));
}

//===----------------------------------------------------------------------===//
// Multi-vproc (threaded) collections
//===----------------------------------------------------------------------===//

namespace {

/// Runs Body on each vproc's own thread. A global collection needs every
/// vproc at its barriers, so after Body returns each thread stays in a
/// safe-point drain loop until all threads are done AND no collection is
/// pending -- only then can no new collection arise.
void runOnVProcs(GCWorld &W, void (*Body)(VProcHeap &)) {
  std::atomic<unsigned> Done{0};
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < W.numVProcs(); ++I) {
    Threads.emplace_back([&W, I, Body, &Done] {
      VProcHeap &H = W.heap(I);
      Body(H);
      Done.fetch_add(1, std::memory_order_acq_rel);
      while (Done.load(std::memory_order_acquire) < W.numVProcs() ||
             W.globalGCPending()) {
        H.safePoint();
        std::this_thread::yield();
      }
    });
  }
  for (auto &T : Threads)
    T.join();
}

} // namespace

namespace {
/// Durable per-vproc root cells that outlive the worker threads, so the
/// post-join world verification still reaches the promoted survivors.
std::vector<Value> DurableKeeps;
} // namespace

TEST(GlobalGCParallel, FourVProcsCollectTogether) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 256 * 1024;
  TestWorld TW(4, Cfg, Topology::uniform(2, 2));

  DurableKeeps.assign(4, Value::nil());
  for (unsigned I = 0; I < 4; ++I)
    TW.heap(I).ShadowStack.push_back(&DurableKeeps[I]);

  runOnVProcs(TW.World, [](VProcHeap &H) {
    GcFrame Frame(H);
    Value &Keep = Frame.root(makeIntList(H, 40));
    Keep = H.promote(Keep);
    DurableKeeps[H.id()] = Keep;
    for (int I = 0; I < 120; ++I) {
      {
        GcFrame Inner(H);
        Value &Junk = Inner.root(makeIntList(H, 120));
        H.promote(Junk);
      }
      H.safePoint();
    }
    EXPECT_EQ(listSum(Keep), intListSum(40));
  });

  EXPECT_GE(TW.World.globalGCCount(), 1u);
  VerifyResult R = verifyWorld(TW.World);
  EXPECT_GT(R.GlobalObjects, 0u);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(listSum(DurableKeeps[I]), intListSum(40));
}

TEST(GlobalGCParallel, MixedLocalAndGlobalLiveData) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 192 * 1024;
  TestWorld TW(3, Cfg, Topology::uniform(3, 1));

  runOnVProcs(TW.World, [](VProcHeap &H) {
    GcFrame Frame(H);
    Value &LocalKeep = Frame.root(makeIntList(H, 15));
    Value &GlobalKeep = Frame.root(makeIntList(H, 15));
    GlobalKeep = H.promote(GlobalKeep);
    for (int I = 0; I < 200; ++I) {
      allocGarbage(H, 40);
      if (I % 3 == 0) {
        GcFrame Inner(H);
        Value &Junk = Inner.root(makeIntList(H, 80));
        H.promote(Junk);
      }
      H.safePoint();
      ASSERT_EQ(listSum(LocalKeep), intListSum(15));
      ASSERT_EQ(listSum(GlobalKeep), intListSum(15));
    }
  });

  verifyWorld(TW.World);
}

TEST(GlobalGCParallel, StatsAggregateAcrossVProcs) {
  GCConfig Cfg = smallConfig();
  Cfg.GlobalGCBytesPerVProc = 128 * 1024;
  TestWorld TW(2, Cfg);

  runOnVProcs(TW.World, [](VProcHeap &H) {
    for (int I = 0; I < 150; ++I) {
      GcFrame Inner(H);
      Value &Junk = Inner.root(makeIntList(H, 100));
      H.promote(Junk);
      H.safePoint();
    }
  });

  GCStats Total = TW.World.aggregateStats();
  EXPECT_GT(Total.PromoteCalls, 0u);
  EXPECT_GE(TW.World.globalGCCount(), 1u);
  EXPECT_GT(Total.GlobalPause.count(), 0u);
}
