//===- tests/GCTestUtils.h - shared helpers for GC tests ------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small world builder plus cons-list helpers used across the GC test
/// files. Lists are built from two-element vectors [head, tail], the
/// canonical mutation-free structure, so every collector phase can be
/// checked by re-reading list contents afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_TESTS_GCTESTUTILS_H
#define MANTI_TESTS_GCTESTUTILS_H

#include "gc/Handles.h"
#include "gc/Heap.h"
#ifdef MANTI_GC_INTERNAL
#include "gc/HeapInternal.h" // GcFrame + raw mixed allocators for GC tests
#endif
#include "numa/Topology.h"

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace manti::test {

/// Default small configuration: every collector phase triggers quickly.
inline GCConfig smallConfig() {
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 128 * 1024;
  Cfg.MinNurseryBytes = 16 * 1024;
  Cfg.ChunkBytes = 64 * 1024;
  Cfg.GlobalGCBytesPerVProc = 1024 * 1024;
  return Cfg;
}

/// Unsets an environment variable for the current scope and restores
/// its previous value on destruction. Tests that pin a config knob an
/// env override would clobber (e.g. MANTI_STRESS_GC_PERIOD) wrap the
/// world construction in one of these.
class ScopedUnsetEnv {
public:
  explicit ScopedUnsetEnv(const char *Name) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      Saved = Old;
      HadValue = true;
    }
    unsetenv(Name);
  }
  ~ScopedUnsetEnv() {
    if (HadValue)
      setenv(Name, Saved.c_str(), 1);
  }

  ScopedUnsetEnv(const ScopedUnsetEnv &) = delete;
  ScopedUnsetEnv &operator=(const ScopedUnsetEnv &) = delete;

private:
  const char *Name;
  std::string Saved;
  bool HadValue = false;
};

/// A world over a 2-node, 4-core uniform machine unless overridden.
struct TestWorld {
  explicit TestWorld(unsigned NumVProcs = 1, GCConfig Cfg = smallConfig(),
                     Topology Topo = Topology::uniform(2, 2))
      : World(Cfg, Topo, NumVProcs) {}

  GCWorld World;
  VProcHeap &heap(unsigned I = 0) { return World.heap(I); }
};

/// Allocates the cons cell [Head, Tail]. allocVectorOf roots both
/// elements across the allocation; the returned Value escapes the inner
/// scope and must be rooted by the caller before its next allocation.
inline Value cons(VProcHeap &H, Value Head, Value Tail) {
  RootScope S(H);
  Ref<> Cell = allocVectorOf(S, Head, Tail);
  return Cell.value();
}

/// Builds the list [N-1, ..., 1, 0] of tagged integers.
inline Value makeIntList(VProcHeap &H, int64_t N) {
  RootScope S(H);
  Ref<> List = S.root(Value::nil());
  for (int64_t I = 0; I < N; ++I)
    List = cons(H, Value::fromInt(I), List);
  return List.value();
}

inline int64_t listLength(Value List) {
  int64_t Len = 0;
  while (!List.isNil()) {
    ++Len;
    List = vectorGet(List, 1);
  }
  return Len;
}

inline int64_t listSum(Value List) {
  int64_t Sum = 0;
  while (!List.isNil()) {
    Sum += vectorGet(List, 0).asInt();
    List = vectorGet(List, 1);
  }
  return Sum;
}

/// Expected sum of makeIntList(H, N).
inline int64_t intListSum(int64_t N) { return N * (N - 1) / 2; }

/// Allocates \p Count dead cons cells (immediate garbage).
inline void allocGarbage(VProcHeap &H, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    cons(H, Value::fromInt(I), Value::nil());
}

/// \returns true if \p V points into \p H's local heap.
inline bool isLocalTo(VProcHeap &H, Value V) {
  return V.isPtr() && H.local().contains(V.asPtr());
}

/// \returns true if \p V points into the global heap.
inline bool isGlobal(GCWorld &W, Value V) {
  return V.isPtr() && W.chunks().activeChunksContain(V.asPtr());
}

} // namespace manti::test

#endif // MANTI_TESTS_GCTESTUTILS_H
