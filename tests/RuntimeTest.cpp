//===- tests/RuntimeTest.cpp - runtime, scheduler, combinators ------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "runtime/Parallel.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace manti;
using namespace manti::test;

namespace {

RuntimeConfig testRuntimeConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false; // single-core CI container
  return Cfg;
}

} // namespace

TEST(Runtime, RunExecutesMainOnVProc0) {
  Runtime RT(testRuntimeConfig(2), Topology::uniform(2, 1));
  static unsigned SeenId = 99;
  RT.run([](Runtime &, VProc &VP, void *) { SeenId = VP.id(); }, nullptr);
  EXPECT_EQ(SeenId, 0u);
}

TEST(Runtime, RunIsRepeatable) {
  Runtime RT(testRuntimeConfig(3), Topology::uniform(3, 1));
  static int Counter;
  Counter = 0;
  for (int I = 0; I < 3; ++I)
    RT.run([](Runtime &, VProc &, void *) { ++Counter; }, nullptr);
  EXPECT_EQ(Counter, 3);
}

TEST(Runtime, VProcsAssignedSparsely) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(4, 2));
  // 4 vprocs on 4 nodes: one per node.
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(RT.vproc(I).node(), I);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static std::vector<std::atomic<int>> Hits(1000);
  for (auto &H : Hits)
    H.store(0);
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 1000, 16,
            [](Runtime &, VProc &, int64_t Lo, int64_t Hi, void *) {
              for (int64_t I = Lo; I < Hi; ++I)
                Hits[static_cast<std::size_t>(I)].fetch_add(1);
            },
            nullptr);
      },
      nullptr);
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  Runtime RT(testRuntimeConfig(2), Topology::uniform(2, 1));
  static std::atomic<int> Count;
  Count = 0;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 5, 5, 4,
            [](Runtime &, VProc &, int64_t, int64_t, void *) {
              Count.fetch_add(1);
            },
            nullptr);
        parallelFor(
            RT, VP, 0, 1, 4,
            [](Runtime &, VProc &, int64_t Lo, int64_t Hi, void *) {
              Count.fetch_add(static_cast<int>(Hi - Lo));
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Count.load(), 1);
}

TEST(ParallelFor, TasksAllocateFreely) {
  // Each range body allocates lists; collections run concurrently with
  // other vprocs' mutators -- the core of the paper's design.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static std::atomic<int64_t> Total;
  Total = 0;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 200, 8,
            [](Runtime &, VProc &VP, int64_t Lo, int64_t Hi, void *) {
              for (int64_t I = Lo; I < Hi; ++I) {
                RootScope Scope(VP.heap());
                Ref<> L = Scope.root(makeIntList(VP.heap(), 40));
                Total.fetch_add(listSum(L));
              }
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Total.load(), 200 * intListSum(40));
}

TEST(ParallelSum, MatchesSerial) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static int64_t Result;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        Result = parallelSumInt64(
            RT, VP, 0, 100000, 512,
            [](Runtime &, VProc &, int64_t Lo, int64_t Hi, void *) {
              int64_t S = 0;
              for (int64_t I = Lo; I < Hi; ++I)
                S += I;
              return S;
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Result, int64_t(100000) * 99999 / 2);
}

TEST(ParallelSumDouble, MatchesSerial) {
  Runtime RT(testRuntimeConfig(3), Topology::uniform(3, 1));
  static double Result;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        Result = parallelSumDouble(
            RT, VP, 0, 4096, 64,
            [](Runtime &, VProc &, int64_t Lo, int64_t Hi, void *) {
              double S = 0;
              for (int64_t I = Lo; I < Hi; ++I)
                S += 0.5 * static_cast<double>(I);
              return S;
            },
            nullptr);
      },
      nullptr);
  EXPECT_DOUBLE_EQ(Result, 0.5 * 4096.0 * 4095.0 / 2.0);
}

TEST(ParallelReduce, BuildsValueTree) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static int64_t Sum;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        // Leaf: list of the range's integers. Combine: concatenation via
        // a cons of the two lists' sums (keep it simple: sum lists).
        Value Result = parallelReduce(
            RT, VP, 0, 3000, 100,
            [](Runtime &, VProc &VP, int64_t Lo, int64_t Hi, void *) {
              RootScope Scope(VP.heap());
              Ref<> L = Scope.root(Value::nil());
              for (int64_t I = Lo; I < Hi; ++I)
                L = cons(VP.heap(), Value::fromInt(I), L);
              return L.value();
            },
            [](Runtime &, VProc &VP, Value A, Value B, void *) {
              // Combine: single cell holding the sum of both sides.
              int64_t S = (A.isPtr() ? listSum(A) : A.asInt()) +
                          (B.isPtr() ? listSum(B) : B.asInt());
              (void)VP;
              return Value::fromInt(S);
            },
            nullptr);
        Sum = Result.isPtr() ? listSum(Result) : Result.asInt();
      },
      nullptr);
  EXPECT_EQ(Sum, int64_t(3000) * 2999 / 2);
}

TEST(WorkStealing, StealsHappenAcrossVProcs) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  // This test pins the steal channel: with shedding on, part of the
  // burst would (correctly) migrate through the shed bay instead and
  // never count as stolen.
  Cfg.ShedThreshold = 0;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 40;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        // Spawn tasks but never run them locally: the spawner only
        // answers steal requests, so every task must migrate.
        for (int I = 0; I < 40; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  uint64_t TotalSteals = 0, TotalBatches = 0;
  for (unsigned I = 0; I < RT.numVProcs(); ++I) {
    TotalSteals += RT.vproc(I).stealsOut();
    TotalBatches += RT.vproc(I).schedStats().StealBatches;
  }
  // Each task leaves vproc 0 exactly once; tasks queued from a stolen
  // batch may migrate again, so total stolen tasks can exceed 40.
  EXPECT_EQ(RT.vproc(0).stealsServiced(), 40u);
  EXPECT_GE(TotalSteals, 40u)
      << "every task must have been stolen by an idle vproc";
  EXPECT_GE(TotalSteals, TotalBatches)
      << "a successful handshake carries at least one task";
}

TEST(WorkStealing, GlobalCollectionDuringParallelWork) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.GC.GlobalGCBytesPerVProc = 64 * 1024; // force global GCs
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int64_t> Total;
  Total = 0;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 300, 4,
            [](Runtime &, VProc &VP, int64_t Lo, int64_t Hi, void *) {
              for (int64_t I = Lo; I < Hi; ++I) {
                RootScope Scope(VP.heap());
                Ref<> L = Scope.root(makeIntList(VP.heap(), 60));
                promoteInPlace(Scope, L); // drive the global trigger
                Total.fetch_add(listSum(L));
              }
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Total.load(), 300 * intListSum(60));
  EXPECT_GE(RT.world().globalGCCount(), 1u);
  verifyWorld(RT.world());
}

TEST(WorkStealing, ConcurrentMarkDuringParallelWork) {
  // Phase-flip hammer: tiny budget plus heavy promotion drives repeated
  // concurrent cycles (init rendezvous -> marker tasks + assists ->
  // terminal rendezvous) while every worker thread keeps mutating and
  // overwriting roots. Runs under TSan via the sched label: the marker
  // reads only below the stamped MarkLimit, so tracing and bump
  // allocation must never touch the same words.
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.GC.GlobalGCBytesPerVProc = 64 * 1024;
  Cfg.GC.ConcurrentGlobal = true;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int64_t> Total;
  Total = 0;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 300, 4,
            [](Runtime &, VProc &VP, int64_t Lo, int64_t Hi, void *) {
              for (int64_t I = Lo; I < Hi; ++I) {
                RootScope Scope(VP.heap());
                Ref<> L = Scope.root(makeIntList(VP.heap(), 60));
                promoteInPlace(Scope, L); // drive the watermark
                // Overwrite the rooted slot mid-cycle: deletion-barrier
                // traffic from every worker thread.
                L = makeIntList(VP.heap(), 10);
                Total.fetch_add(listSum(L.value()));
              }
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Total.load(), 300 * intListSum(10));
  EXPECT_GE(RT.world().concurrentGCCount(), 1u)
      << "the promotion volume must start concurrent cycles";
  EXPECT_EQ(RT.world().phase(), GCPhase::Idle)
      << "run() must not return with a cycle in flight";
  verifyWorld(RT.world());
}

TEST(WorkStealing, LazyPromotesAtMostStolenTasks) {
  // Lazy promotion: environment promotions happen only for stolen tasks.
  RuntimeConfig Cfg = testRuntimeConfig(3);
  Cfg.LazyPromotion = true;
  Runtime RT(Cfg, Topology::uniform(3, 1));

  struct SpawnEnvJob {
    JoinCounter Join;
  };
  static SpawnEnvJob Job;

  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        (void)RT;
        RootScope Scope(VP.heap());
        for (int I = 0; I < 200; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 10));
          Job.Join.add();
          VP.spawn({[](Runtime &, VProc &VP2, Task T) {
                      // Environment must be intact wherever we run.
                      EXPECT_EQ(listSum(T.Env), intListSum(10));
                      (void)VP2;
                      Job.Join.sub();
                    },
                    nullptr, Env, 0, 0});
        }
        VP.joinWait(Job.Join);
      },
      nullptr);

  uint64_t Promotions = 0, Migrations = 0;
  for (unsigned I = 0; I < RT.numVProcs(); ++I) {
    Promotions += RT.world().heap(I).Stats.PromoteCalls;
    // Both migration channels promote: the steal handshake and the
    // victim-initiated shed path.
    Migrations += RT.vproc(I).stealsServiced();
    Migrations += RT.vproc(I).schedStats().TasksShed;
  }
  EXPECT_LE(Promotions, Migrations)
      << "lazy promotion pays only for tasks that actually migrate";
}

TEST(WorkStealing, EagerPromotesEverySpawnWithEnv) {
  RuntimeConfig Cfg = testRuntimeConfig(2);
  Cfg.LazyPromotion = false;
  Runtime RT(Cfg, Topology::uniform(2, 1));

  static JoinCounter Join;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        for (int I = 0; I < 50; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 5));
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(5));
                      Join.sub();
                    },
                    nullptr, Env, 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);

  EXPECT_GE(RT.world().heap(0).Stats.PromoteCalls, 50u)
      << "eager promotion pays on every spawn";
}

TEST(SchedulerStats, SpawnsCounted) {
  Runtime RT(testRuntimeConfig(2), Topology::uniform(2, 1));
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 64, 1,
            [](Runtime &, VProc &, int64_t, int64_t, void *) {},
            nullptr);
      },
      nullptr);
  uint64_t Spawns = 0;
  for (unsigned I = 0; I < RT.numVProcs(); ++I)
    Spawns += RT.vproc(I).spawns();
  EXPECT_GT(Spawns, 0u);
}
