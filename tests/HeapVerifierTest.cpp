//===- tests/HeapVerifierTest.cpp - invariant checker tests ---------------===//
//
// Part of the manticore-gc project. The verifier must accept every state
// the collectors produce (covered throughout the suite) and *reject*
// hand-built violations of the paper's invariants -- these tests corrupt
// heaps deliberately and expect the checker to abort.
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/GCReport.h"
#include "gc/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace manti;
using namespace manti::test;

TEST(HeapVerifier, EmptyWorldPasses) {
  TestWorld TW(2);
  VerifyResult R = verifyWorld(TW.World);
  EXPECT_EQ(R.LocalObjects, 0u);
  EXPECT_EQ(R.GlobalObjects, 0u);
}

TEST(HeapVerifier, CountsMatchStructure) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &L = Frame.root(makeIntList(H, 10)); // 10 cons cells
  Value &G = Frame.root(H.promote(makeIntList(H, 5)));
  (void)L;
  (void)G;
  VerifyResult R = verifyHeap(H);
  // 10 local cells (plus possibly the pre-promotion husks are NOT
  // counted: tracing goes through forwarding pointers).
  EXPECT_GE(R.LocalObjects, 10u);
  EXPECT_GE(R.GlobalObjects, 5u);
  EXPECT_GE(R.Edges, 15u);
}

TEST(HeapVerifier, SharedStructureCountedOnce) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Shared = Frame.root(makeIntList(H, 8));
  Value &A = Frame.root(cons(H, Value::fromInt(1), Shared));
  Value &B = Frame.root(cons(H, Value::fromInt(2), Shared));
  (void)A;
  (void)B;
  VerifyResult R = verifyHeap(H);
  EXPECT_EQ(R.LocalObjects, 10u) << "8 shared cells + 2 heads";
}

TEST(HeapVerifier, FollowsForwardingChains) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &L = Frame.root(makeIntList(H, 4));
  Value Stale = L;       // unrooted copy
  H.promote(L);          // L's slot still points at the husk
  // Add the stale value as an extra root; the verifier must trace it
  // through the forwarding pointer rather than reject it.
  H.ShadowStack.push_back(&Stale);
  VerifyResult R = verifyHeap(H);
  EXPECT_GT(R.ForwardedEdges, 0u);
  H.ShadowStack.pop_back();
}

TEST(HeapVerifierDeath, DetectsCrossVProcLocalPointer) {
  TestWorld TW(2);
  VProcHeap &H0 = TW.heap(0);
  VProcHeap &H1 = TW.heap(1);
  GcFrame F0(H0);
  GcFrame F1(H1);
  Value &Mine = F0.root(makeIntList(H0, 2));
  Value &Theirs = F1.root(makeIntList(H1, 2));
  // Corrupt: a vproc-0 cell whose tail points into vproc 1's heap.
  Value &Cell = F0.root(cons(H0, Value::fromInt(0), Mine));
  Cell.asPtr()[1] = Theirs.bits();
  EXPECT_DEATH(verifyHeap(H0), "another vproc's local heap");
}

TEST(HeapVerifierDeath, DetectsGlobalToLocalPointer) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Local = Frame.root(makeIntList(H, 2));
  Value &Global = Frame.root(H.promote(makeIntList(H, 1)));
  // Corrupt: a global cell referencing the local heap (mutation of
  // global objects is exactly what the design forbids).
  Global.asPtr()[1] = Local.bits();
  EXPECT_DEATH(verifyHeap(H), "global heap points into a local heap");
}

TEST(HeapVerifierDeath, DetectsWildPointer) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Cell = Frame.root(cons(H, Value::fromInt(0), Value::nil()));
  alignas(8) static Word Outside[4] = {makeHeader(IdRaw, 3), 0, 0, 0};
  Cell.asPtr()[1] = Value::fromPtr(&Outside[1]).bits();
  EXPECT_DEATH(verifyHeap(H), "outside every heap");
}

//===----------------------------------------------------------------------===//
// GC report
//===----------------------------------------------------------------------===//

TEST(GCReportTest, MentionsEveryPhase) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &L = Frame.root(makeIntList(H, 50));
  H.minorGC();
  H.majorGC();
  L = H.promote(L);
  TW.World.requestGlobalGC();
  H.safePoint();

  std::string Report = gcReportString(TW.World);
  for (const char *Needle :
       {"minor", "major", "promotion", "global", "allocation",
        "inter-node traffic", "uniform", "local"})
    EXPECT_NE(Report.find(Needle), std::string::npos)
        << "report must mention '" << Needle << "'\n"
        << Report;
}

TEST(GCReportTest, ReportsPolicyName) {
  GCConfig Cfg = smallConfig();
  Cfg.Policy = AllocPolicyKind::Interleaved;
  TestWorld TW(1, Cfg);
  EXPECT_NE(gcReportString(TW.World).find("interleaved"),
            std::string::npos);
}
