//===- tests/PromotionTest.cpp - object promotion tests -------------------===//
//
// Part of the manticore-gc project. Promotion copies an object graph
// into the global heap so it can be shared across vprocs (Section 3.1).
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"

#include <gtest/gtest.h>

using namespace manti;
using namespace manti::test;

TEST(Promotion, NonPointersPassThrough) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  EXPECT_EQ(H.promote(Value::fromInt(42)), Value::fromInt(42));
  EXPECT_EQ(H.promote(Value::nil()), Value::nil());
}

TEST(Promotion, CopiesWholeGraphToGlobal) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 20));
  Value &Promoted = Frame.root(H.promote(List));
  for (Value Cur = Promoted; !Cur.isNil(); Cur = vectorGet(Cur, 1))
    EXPECT_TRUE(isGlobal(TW.World, Cur));
  EXPECT_EQ(listSum(Promoted), intListSum(20));
  EXPECT_GT(H.Stats.PromoteBytes, 0u);
  EXPECT_EQ(H.Stats.PromoteCalls, 1u);
}

TEST(Promotion, AlreadyGlobalIsIdempotent) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 5));
  Value &P1 = Frame.root(H.promote(List));
  uint64_t BytesAfterFirst = H.Stats.PromoteBytes;
  Value &P2 = Frame.root(H.promote(P1));
  EXPECT_EQ(P1, P2) << "promoting a global value is the identity";
  EXPECT_EQ(H.Stats.PromoteBytes, BytesAfterFirst);
}

TEST(Promotion, HusksRepairOtherCopiesAtNextMinor) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 8));
  Value &Promoted = Frame.root(H.promote(List));
  // The original root still points at the husk; its data words are
  // intact, so reads keep working.
  EXPECT_NE(List.asPtr(), Promoted.asPtr());
  EXPECT_EQ(listSum(List), intListSum(8));
  // The next minor collection forwards the root through the husk.
  H.minorGC();
  EXPECT_EQ(List.asPtr(), Promoted.asPtr())
      << "minor GC must repair stale copies through forwarding pointers";
}

TEST(Promotion, SharedTailPromotedOnce) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Shared = Frame.root(makeIntList(H, 6));
  Value &A = Frame.root(cons(H, Value::fromInt(1), Shared));
  Value &B = Frame.root(cons(H, Value::fromInt(2), Shared));
  Value &PA = Frame.root(H.promote(A));
  Value &PB = Frame.root(H.promote(B));
  EXPECT_EQ(vectorGet(PA, 1).asPtr(), vectorGet(PB, 1).asPtr())
      << "second promotion must reuse the forwarding pointers";
  EXPECT_EQ(listSum(vectorGet(PB, 1)), intListSum(6));
}

TEST(Promotion, PartialGraphOnlyReachableMoves) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Keep = Frame.root(makeIntList(H, 10));
  Value &Other = Frame.root(makeIntList(H, 10));
  H.promote(Keep);
  EXPECT_TRUE(isLocalTo(H, Other))
      << "promotion must not drag unrelated objects to the global heap";
}

TEST(Promotion, PromotedDataSurvivesLocalCollections) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &List = Frame.root(makeIntList(H, 30));
  List = H.promote(List);
  for (int I = 0; I < 5; ++I) {
    allocGarbage(H, 500);
    H.minorGC();
  }
  H.majorGC();
  EXPECT_EQ(listSum(List), intListSum(30));
  verifyHeap(H);
}

TEST(Promotion, MixedObjectGraph) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  uint16_t Id = TW.World.descriptors().registerMixed("node2", 3, {0, 1});
  GcFrame Frame(H);
  Value &L = Frame.root(makeIntList(H, 3));
  Value &R = Frame.root(makeIntList(H, 4));
  // allocMixedRooted re-reads the rooted slots after the allocation: the
  // raw allocMixed snapshot pattern breaks under GCConfig::StressGC,
  // which forces a collection inside every allocation.
  Word Fields[3] = {0, 0, 777};
  Value *Slots[2] = {&L, &R};
  Value &Node = Frame.root(gcinternal::allocMixedRooted(H, Id, Fields, Slots));
  Value &P = Frame.root(H.promote(Node));
  EXPECT_TRUE(isGlobal(TW.World, P));
  EXPECT_TRUE(isGlobal(TW.World, mixedGet(P, 0)));
  EXPECT_TRUE(isGlobal(TW.World, mixedGet(P, 1)));
  EXPECT_EQ(mixedGetWord(P, 2), 777u);
  EXPECT_EQ(listSum(mixedGet(P, 0)), intListSum(3));
  EXPECT_EQ(listSum(mixedGet(P, 1)), intListSum(4));
}

TEST(Promotion, LargePromotionSpansChunks) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  // Each cons cell is 3 words = 24 bytes; 4000 cells > one 64 KiB chunk.
  Value &List = Frame.root(makeIntList(H, 4000));
  Value &P = Frame.root(H.promote(List));
  EXPECT_EQ(listLength(P), 4000);
  EXPECT_EQ(listSum(P), intListSum(4000));
  EXPECT_GT(TW.World.chunks().numChunksCreated(), 1u);
}

TEST(Promotion, WorldInvariantsAfterPromotions) {
  TestWorld TW(2);
  VProcHeap &H0 = TW.heap(0);
  GcFrame Frame(H0);
  Value &A = Frame.root(makeIntList(H0, 12));
  A = H0.promote(A);
  VerifyResult R = verifyWorld(TW.World);
  EXPECT_GE(R.GlobalObjects, 12u);
}
