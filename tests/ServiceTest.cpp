//===- tests/ServiceTest.cpp - serving-layer tests ------------------------===//
//
// Part of the manticore-gc project.
//
// Covers the service layer: LatencyRecorder percentile math on known
// distributions, deterministic TrafficGen schedules, KVStore
// correctness across forced minor/major/global collections, and a small
// end-to-end serving run. In the stress lane (MANTI_STRESS_GC=1) every
// eligible allocation collects, so the store's rooting discipline is
// exercised on every put.
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "runtime/Runtime.h"
#include "service/KVStore.h"
#include "service/LatencyRecorder.h"
#include "service/TrafficGen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace manti;
using namespace manti::test;

//===----------------------------------------------------------------------===//
// LatencyRecorder
//===----------------------------------------------------------------------===//

TEST(LatencyRecorder, EmptyReportsZero) {
  LatencyRecorder R;
  EXPECT_EQ(R.count(), 0u);
  EXPECT_EQ(R.maxNanos(), 0u);
  EXPECT_EQ(R.percentileNanos(50), 0u);
  EXPECT_DOUBLE_EQ(R.meanNanos(), 0.0);
}

TEST(LatencyRecorder, SmallValuesAreExact) {
  // Values below 32 land in single-value buckets: percentiles exact.
  LatencyRecorder R;
  for (uint64_t V = 0; V < 32; ++V)
    R.record(V);
  EXPECT_EQ(R.count(), 32u);
  EXPECT_EQ(R.maxNanos(), 31u);
  EXPECT_EQ(R.percentileNanos(50), 15u); // 16th of 32 samples is value 15
  EXPECT_EQ(R.percentileNanos(100), 31u);
  EXPECT_DOUBLE_EQ(R.meanNanos(), 15.5);
}

TEST(LatencyRecorder, UniformDistributionPercentiles) {
  // 1..1000 uniformly: percentile P should land near 10*P with the
  // histogram's ~3.1% relative quantization error.
  LatencyRecorder R;
  for (uint64_t V = 1; V <= 1000; ++V)
    R.record(V);
  for (double P : {10.0, 50.0, 90.0, 99.0}) {
    double Expect = 10.0 * P;
    double Got = static_cast<double>(R.percentileNanos(P));
    EXPECT_GE(Got, Expect - 1) << "P" << P;
    EXPECT_LE(Got, Expect * 1.04 + 1) << "P" << P;
  }
  EXPECT_EQ(R.maxNanos(), 1000u);
  EXPECT_EQ(R.percentileNanos(100), 1000u);
  EXPECT_DOUBLE_EQ(R.meanNanos(), 500.5);
}

TEST(LatencyRecorder, PercentileNeverExceedsExactMax) {
  // A single large sample: every percentile is clamped to the exact
  // maximum, not its bucket's (coarser) upper edge.
  LatencyRecorder R;
  R.record(1'000'003);
  EXPECT_EQ(R.percentileNanos(50), 1'000'003u);
  EXPECT_EQ(R.percentileNanos(99.9), 1'000'003u);
  EXPECT_EQ(R.maxNanos(), 1'000'003u);
}

TEST(LatencyRecorder, WideRangeBoundedRelativeError) {
  LatencyRecorder R;
  const uint64_t Samples[] = {100, 10'000, 1'000'000, 100'000'000,
                              10'000'000'000ull};
  for (uint64_t S : Samples)
    R.record(S);
  // The k-th of 5 equal-weight samples sits at percentile 20k; probe
  // each sample's own percentile and require <= 3.2% relative error.
  for (unsigned K = 0; K < 5; ++K) {
    double P = 20.0 * K + 10.0;
    double Got = static_cast<double>(R.percentileNanos(P));
    double Expect = static_cast<double>(Samples[K]);
    EXPECT_GE(Got, Expect * 0.999) << "sample " << K;
    EXPECT_LE(Got, Expect * 1.032 + 1) << "sample " << K;
  }
}

TEST(LatencyRecorder, MergeMatchesCombinedStream) {
  LatencyRecorder A, B, Both;
  for (uint64_t V = 1; V <= 500; ++V) {
    A.record(V * 3);
    Both.record(V * 3);
  }
  for (uint64_t V = 1; V <= 300; ++V) {
    B.record(V * 7919);
    Both.record(V * 7919);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Both.count());
  EXPECT_EQ(A.maxNanos(), Both.maxNanos());
  EXPECT_DOUBLE_EQ(A.meanNanos(), Both.meanNanos());
  for (double P : {25.0, 50.0, 95.0, 99.9})
    EXPECT_EQ(A.percentileNanos(P), Both.percentileNanos(P)) << "P" << P;
}

//===----------------------------------------------------------------------===//
// TrafficGen schedules
//===----------------------------------------------------------------------===//

namespace {

TrafficConfig testTraffic() {
  TrafficConfig T;
  T.Seed = 7;
  T.RatePerGen = 1e6;
  T.RequestsPerGen = 4000;
  T.KeySpace = 512;
  T.ValueBytes = 64;
  return T;
}

} // namespace

TEST(TrafficGen, ScheduleIsDeterministic) {
  TrafficConfig T = testTraffic();
  std::vector<Request> A = buildSchedule(T, 3);
  std::vector<Request> B = buildSchedule(T, 3);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].ScheduledNanos, B[I].ScheduledNanos);
    EXPECT_EQ(A[I].Key, B[I].Key);
    EXPECT_EQ(A[I].Op, B[I].Op);
  }
}

TEST(TrafficGen, GeneratorsGetDistinctStreams) {
  TrafficConfig T = testTraffic();
  std::vector<Request> A = buildSchedule(T, 0);
  std::vector<Request> B = buildSchedule(T, 1);
  ASSERT_EQ(A.size(), B.size());
  unsigned Different = 0;
  for (std::size_t I = 0; I < A.size(); ++I)
    if (A[I].ScheduledNanos != B[I].ScheduledNanos || A[I].Key != B[I].Key)
      Different++;
  EXPECT_GT(Different, A.size() / 2);
}

TEST(TrafficGen, ArrivalsAreMonotoneAtTheOfferedRate) {
  TrafficConfig T = testTraffic();
  std::vector<Request> S = buildSchedule(T, 0);
  ASSERT_EQ(S.size(), T.RequestsPerGen);
  for (std::size_t I = 1; I < S.size(); ++I)
    EXPECT_GE(S[I].ScheduledNanos, S[I - 1].ScheduledNanos);
  // Mean arrival rate: N exponential gaps of mean 1/rate sum to N/rate
  // with ~1/sqrt(N) spread; 4000 samples puts 10% far outside noise.
  double ExpectSpanNanos = 1e9 * T.RequestsPerGen / T.RatePerGen;
  double Span = static_cast<double>(S.back().ScheduledNanos);
  EXPECT_GT(Span, ExpectSpanNanos * 0.9);
  EXPECT_LT(Span, ExpectSpanNanos * 1.1);
}

TEST(TrafficGen, OpMixMatchesConfiguredPercentages) {
  TrafficConfig T = testTraffic();
  std::vector<Request> S = buildSchedule(T, 0);
  uint64_t Gets = 0, Puts = 0, Deletes = 0;
  for (const Request &R : S) {
    Gets += R.Op == OpKind::Get;
    Puts += R.Op == OpKind::Put;
    Deletes += R.Op == OpKind::Delete;
    EXPECT_LT(R.Key, T.KeySpace);
  }
  double N = static_cast<double>(S.size());
  EXPECT_NEAR(Gets / N, 0.70, 0.03);
  EXPECT_NEAR(Puts / N, 0.25, 0.03);
  EXPECT_NEAR(Deletes / N, 0.05, 0.02);
}

//===----------------------------------------------------------------------===//
// KVStore across forced collections
//===----------------------------------------------------------------------===//

namespace {

RuntimeConfig serviceRuntimeConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false;
  return Cfg;
}

struct StoreCtx {
  KVStore *Store = nullptr;
  unsigned Failures = 0;
};

constexpr uint64_t StoreKeys = 200;

void storeGCMain(Runtime &RT, VProc &VP, void *CtxP) {
  auto *C = static_cast<StoreCtx *>(CtxP);
  KVStore &Store = *C->Store;
  auto CheckAll = [&](const char *When) {
    for (uint64_t K = 0; K < StoreKeys; ++K)
      if (!Store.get(VP, K)) {
        ADD_FAILURE() << "lost key " << K << " " << When;
        C->Failures++;
      }
  };

  for (uint64_t K = 0; K < StoreKeys; ++K)
    Store.put(VP, K, 64 + (K % 5) * 32);
  CheckAll("after load");

  VProcHeap &H = VP.heap();
  H.minorGC();
  CheckAll("after minor GC");

  H.majorGC();
  H.majorGC(); // age every survivor into the global heap
  CheckAll("after major GCs");

  // Overwrite half the keys (old entries become global garbage), make
  // extra global garbage, then run a global collection.
  for (uint64_t K = 0; K < StoreKeys; K += 2)
    Store.put(VP, K, 128);
  {
    RootScope Junk(H);
    for (int I = 0; I < 10; ++I) {
      Ref<> Dead = Junk.root(makeIntList(H, 300));
      promote(Junk, Dead);
    }
  }
  RT.world().requestGlobalGC();
  H.safePoint();
  CheckAll("after global GC");

  for (uint64_t K = 0; K < StoreKeys; K += 4)
    EXPECT_TRUE(Store.erase(VP, K));
  RT.world().requestGlobalGC();
  H.safePoint();
  for (uint64_t K = 0; K < StoreKeys; ++K) {
    bool Hit = Store.get(VP, K);
    EXPECT_EQ(Hit, K % 4 != 0) << "key " << K;
  }
}

} // namespace

TEST(KVStore, SurvivesMinorMajorAndGlobalCollections) {
  Runtime RT(serviceRuntimeConfig(2), Topology::uniform(2, 2));
  KVStore Store(RT, 4);
  StoreCtx Ctx;
  Ctx.Store = &Store;
  RT.run(&storeGCMain, &Ctx);
  EXPECT_EQ(Ctx.Failures, 0u);
  EXPECT_EQ(Store.corruptions(), 0u);
  EXPECT_EQ(Store.size(), StoreKeys - StoreKeys / 4);
  EXPECT_GE(RT.world().globalGCCount(), 2u);
}

TEST(KVStore, ShardsSpreadAcrossNodes) {
  Runtime RT(serviceRuntimeConfig(2), Topology::uniform(2, 2));
  KVStore Store(RT, 4);
  EXPECT_EQ(Store.numShards(), 4u);
  bool SawNode[2] = {false, false};
  for (unsigned S = 0; S < 4; ++S) {
    ASSERT_LT(Store.shardHome(S), 2u);
    SawNode[Store.shardHome(S)] = true;
  }
  EXPECT_TRUE(SawNode[0]);
  EXPECT_TRUE(SawNode[1]);
  // homeNodeOf agrees with the shard assignment.
  for (uint64_t K = 0; K < 64; ++K)
    EXPECT_EQ(Store.homeNodeOf(K), Store.shardHome(Store.shardOf(K)));
}

//===----------------------------------------------------------------------===//
// End-to-end serving run
//===----------------------------------------------------------------------===//

TEST(Serving, SmallOpenLoopRunCompletes) {
  Runtime RT(serviceRuntimeConfig(4), Topology::uniform(2, 2));
  ServingConfig Cfg;
  Cfg.Workers = 2;
  Cfg.PreloadKeys = 128;
  Cfg.Traffic.Seed = 11;
  Cfg.Traffic.RatePerGen = 20000;
  Cfg.Traffic.RequestsPerGen = 150;
  Cfg.Traffic.KeySpace = 128;
  Cfg.Traffic.ValueBytes = 96;

  ServingResult R = runServing(RT, Cfg);
  const uint64_t Total = 2 * Cfg.Traffic.RequestsPerGen;
  EXPECT_EQ(R.Latency.count(), Total);
  EXPECT_EQ(R.Gets + R.Puts + R.Deletes, Total);
  EXPECT_EQ(R.Corruptions, 0u);
  // Full keyspace preloaded, so only keys a delete removed earlier in
  // the run can miss.
  EXPECT_LT(R.Misses, Total / 2);
  EXPECT_GT(R.AchievedRps, 0.0);
  EXPECT_GT(R.Seconds, 0.0);
  EXPECT_GT(R.Latency.maxNanos(), 0u);
  EXPECT_DOUBLE_EQ(R.OfferedRps, 2 * Cfg.Traffic.RatePerGen);
}
