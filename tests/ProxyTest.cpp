//===- tests/ProxyTest.cpp - object proxy tests ---------------------------===//
//
// Part of the manticore-gc project. Proxies allow references from the
// global heap back into a local heap (Section 3.1, footnote 1).
//
//===----------------------------------------------------------------------===//

// Collector test: exercises the raw Value-level surface beneath the
// handle layer on purpose.
#define MANTI_GC_INTERNAL 1

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "gc/Proxy.h"

#include <gtest/gtest.h>

using namespace manti;
using namespace manti::test;

TEST(Proxy, CreateAllocatesGlobalObject) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 4));
  Value &P = Frame.root(createProxy(H, Payload));
  EXPECT_TRUE(isProxy(P));
  EXPECT_TRUE(isGlobal(TW.World, P));
  EXPECT_FALSE(proxyResolved(P));
  EXPECT_EQ(proxyOwner(P), H.id());
  EXPECT_EQ(H.ProxyTable.size(), 1u);
}

TEST(Proxy, PayloadStaysLocalUntilResolved) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 4));
  Value &P = Frame.root(createProxy(H, Payload));
  EXPECT_TRUE(isLocalTo(H, proxyPayload(P)))
      << "the whole point of a proxy: global object, local payload";
  verifyHeap(H); // sanctioned exception must pass the invariant checker
}

TEST(Proxy, OwnerMinorGCForwardsPayload) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 6));
  Value &P = Frame.root(createProxy(H, Payload));
  H.minorGC();
  // The payload moved out of the nursery; the proxy's slot must track it.
  Value NewPayload = proxyPayload(P);
  EXPECT_TRUE(isLocalTo(H, NewPayload));
  EXPECT_EQ(listSum(NewPayload), intListSum(6));
}

TEST(Proxy, PayloadSurvivesEvenWithoutOtherRoots) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value P;
  Frame.root(P); // rooted before the proxy is stored into it
  {
    GcFrame Inner(H);
    Value &Payload = Inner.root(makeIntList(H, 9));
    P = createProxy(H, Payload);
    // Payload's own root goes away here; only the proxy table keeps the
    // list alive.
  }
  H.minorGC();
  H.minorGC();
  EXPECT_EQ(listSum(proxyPayload(P)), intListSum(9))
      << "proxy table must act as a root set for unresolved payloads";
}

TEST(Proxy, ResolvePromotesPayload) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 5));
  Value &P = Frame.root(createProxy(H, Payload));
  Value &Global = Frame.root(resolveProxy(H, P));
  EXPECT_TRUE(proxyResolved(P));
  EXPECT_TRUE(isGlobal(TW.World, Global));
  EXPECT_EQ(proxyPayload(P), Global);
  EXPECT_EQ(listSum(Global), intListSum(5));
  EXPECT_TRUE(H.ProxyTable.empty()) << "resolution unregisters the proxy";
}

TEST(Proxy, ResolvedProxySurvivesLocalGCsUntouched) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &Payload = Frame.root(makeIntList(H, 5));
  Value &P = Frame.root(createProxy(H, Payload));
  resolveProxy(H, P);
  H.majorGC();
  EXPECT_TRUE(proxyResolved(P));
  EXPECT_EQ(listSum(proxyPayload(P)), intListSum(5));
  verifyHeap(H);
}

TEST(Proxy, IntPayloadNeedsNoHeap) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &P = Frame.root(createProxy(H, Value::fromInt(77)));
  EXPECT_EQ(proxyPayload(P).asInt(), 77);
  Value R = resolveProxy(H, P);
  EXPECT_EQ(R.asInt(), 77);
}

TEST(Proxy, MultipleProxiesTrackIndependently) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  GcFrame Frame(H);
  Value &PayA = Frame.root(makeIntList(H, 3));
  Value &PayB = Frame.root(makeIntList(H, 7));
  Value &PA = Frame.root(createProxy(H, PayA));
  Value &PB = Frame.root(createProxy(H, PayB));
  EXPECT_EQ(H.ProxyTable.size(), 2u);
  H.minorGC();
  EXPECT_EQ(listSum(proxyPayload(PA)), intListSum(3));
  EXPECT_EQ(listSum(proxyPayload(PB)), intListSum(7));
  resolveProxy(H, PA);
  EXPECT_EQ(H.ProxyTable.size(), 1u);
  EXPECT_FALSE(proxyResolved(PB));
}

TEST(Proxy, DeathOnForeignResolve) {
  TestWorld TW(2);
  VProcHeap &H0 = TW.heap(0);
  VProcHeap &H1 = TW.heap(1);
  GcFrame Frame(H0);
  Value &P = Frame.root(createProxy(H0, Value::fromInt(1)));
  EXPECT_DEATH(resolveProxy(H1, P), "owning vproc");
}
