//===- tests/GlobalHeapTest.cpp - chunk manager tests ---------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/GlobalHeap.h"

#include <gtest/gtest.h>

using namespace manti;

namespace {

struct ChunkFixture : ::testing::Test {
  static constexpr std::size_t ChunkBytes = 64 * 1024;
  ChunkFixture()
      : Banks(4), Policy(AllocPolicyKind::Local, 4),
        Mgr(Banks, Policy, ChunkBytes) {}
  MemoryBanks Banks;
  AllocPolicy Policy;
  ChunkManager Mgr;
};

} // namespace

TEST_F(ChunkFixture, AcquireGivesUsableChunk) {
  Chunk *C = Mgr.acquireChunk(1);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->HomeNode, 1u) << "local policy backs the requester's node";
  EXPECT_EQ(C->usedBytes(), 0u);
  EXPECT_GT(C->sizeBytes(), 0u);
  Word *Obj = C->tryAlloc(IdRaw, 4);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(headerLenWords(headerOf(Obj)), 4u);
  EXPECT_TRUE(C->contains(Obj));
}

TEST_F(ChunkFixture, ActiveBytesTracksAcquisitions) {
  uint64_t Size = Mgr.acquireChunk(0)->sizeBytes() +
                  static_cast<uint64_t>(ChunkMetaWords) * sizeof(Word);
  EXPECT_EQ(Mgr.activeBytes(), ChunkBytes);
  EXPECT_EQ(Size, ChunkBytes);
  Mgr.acquireChunk(0);
  EXPECT_EQ(Mgr.activeBytes(), 2 * ChunkBytes);
}

TEST_F(ChunkFixture, TryAllocRespectsCapacity) {
  Chunk *C = Mgr.acquireChunk(0);
  std::size_t Words = C->sizeBytes() / sizeof(Word);
  EXPECT_EQ(C->tryAlloc(IdRaw, Words), nullptr) << "header does not fit";
  EXPECT_NE(C->tryAlloc(IdRaw, Words - 1), nullptr);
  EXPECT_EQ(C->tryAlloc(IdRaw, 1), nullptr) << "chunk is full";
}

TEST_F(ChunkFixture, FromInteriorPtrFindsChunk) {
  Chunk *C = Mgr.acquireChunk(2);
  Word *Obj = C->tryAlloc(IdRaw, 8);
  EXPECT_EQ(Chunk::fromInteriorPtr(Obj, ChunkBytes), C);
  EXPECT_EQ(Chunk::fromInteriorPtr(Obj + 7, ChunkBytes), C);
}

TEST_F(ChunkFixture, GatherMarksFromSpaceAndGroupsByNode) {
  Chunk *A = Mgr.acquireChunk(0);
  Chunk *B = Mgr.acquireChunk(1);
  Chunk *C = Mgr.acquireChunk(1);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  EXPECT_EQ(Mgr.activeBytes(), 0u);
  EXPECT_TRUE(A->InFromSpace);
  EXPECT_TRUE(B->InFromSpace);
  EXPECT_EQ(FromByNode[0], A);
  // Node 1 holds B and C in some order.
  unsigned Node1Count = 0;
  for (Chunk *Cur = FromByNode[1]; Cur; Cur = Cur->Next)
    ++Node1Count;
  EXPECT_EQ(Node1Count, 2u);
  (void)C;
}

TEST_F(ChunkFixture, ReleaseThenReuseKeepsNodeAffinity) {
  Chunk *A = Mgr.acquireChunk(3);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  Mgr.releaseChunk(A);
  EXPECT_FALSE(A->InFromSpace);
  Chunk *B = Mgr.acquireChunk(3);
  EXPECT_EQ(A, B) << "free chunk homed on node 3 must be reused there";
  EXPECT_EQ(Mgr.nodeLocalReuses(), 1u);
}

TEST_F(ChunkFixture, CrossNodeReuseOnlyWhenNecessary) {
  Chunk *A = Mgr.acquireChunk(0);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  Mgr.releaseChunk(A);
  // Requesting from node 2: no node-2 free chunk exists, so the node-0
  // chunk is reused (cheaper than mapping fresh memory) but it keeps its
  // node-0 home.
  Chunk *B = Mgr.acquireChunk(2);
  EXPECT_EQ(B, A);
  EXPECT_EQ(B->HomeNode, 0u);
}

TEST_F(ChunkFixture, CountersDistinguishSyncClasses) {
  Mgr.acquireChunk(0); // fresh: global synchronization
  EXPECT_EQ(Mgr.globalAllocations(), 1u);
  EXPECT_EQ(Mgr.nodeLocalReuses(), 0u);
}

TEST_F(ChunkFixture, ResetForReuseClearsCursors) {
  Chunk *C = Mgr.acquireChunk(0);
  C->tryAlloc(IdRaw, 16);
  C->ScanPtr = C->AllocPtr;
  C->resetForReuse();
  EXPECT_EQ(C->usedBytes(), 0u);
  EXPECT_EQ(C->ScanPtr, C->Base);
  EXPECT_FALSE(C->InFromSpace);
}

TEST(ChunkAffinityAblation, DisabledAffinityIgnoresHomeNode) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::Local, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/false);
  Chunk *A = Mgr.acquireChunk(0);
  Chunk *B = Mgr.acquireChunk(3);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  Mgr.releaseChunk(A);
  Mgr.releaseChunk(B);
  // With affinity off, a node-3 request may be served by the node-0
  // chunk (first free list scanned in node order).
  Chunk *C = Mgr.acquireChunk(3);
  EXPECT_EQ(C->HomeNode, 0u);
}

TEST(ChunkManagerPolicy, InterleavedSpreadsChunkHomes) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::Interleaved, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024);
  std::vector<unsigned> PerNode(4, 0);
  for (int I = 0; I < 8; ++I)
    ++PerNode[Mgr.acquireChunk(0)->HomeNode];
  for (unsigned N : PerNode)
    EXPECT_EQ(N, 2u) << "GHC-style balancing across nodes";
}

TEST(ChunkManagerPolicy, SingleNodePutsEverythingOnZero) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::SingleNode, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Mgr.acquireChunk(I % 4)->HomeNode, 0u);
}
