//===- tests/GlobalHeapTest.cpp - chunk manager tests ---------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/GlobalHeap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace manti;

namespace {

/// Batch size 1 keeps the original one-chunk-per-mapping semantics these
/// unit tests were written against; batching is covered separately below.
struct ChunkFixture : ::testing::Test {
  static constexpr std::size_t ChunkBytes = 64 * 1024;
  ChunkFixture()
      : Banks(4), Policy(AllocPolicyKind::Local, 4),
        Mgr(Banks, Policy, ChunkBytes, /*PreserveAffinity=*/true,
            /*BatchChunks=*/1) {}
  MemoryBanks Banks;
  AllocPolicy Policy;
  ChunkManager Mgr;
};

} // namespace

TEST_F(ChunkFixture, AcquireGivesUsableChunk) {
  Chunk *C = Mgr.acquireChunk(1);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->HomeNode, 1u) << "local policy backs the requester's node";
  EXPECT_EQ(C->usedBytes(), 0u);
  EXPECT_GT(C->sizeBytes(), 0u);
  Word *Obj = C->tryAlloc(IdRaw, 4);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(headerLenWords(headerOf(Obj)), 4u);
  EXPECT_TRUE(C->contains(Obj));
}

TEST_F(ChunkFixture, ActiveBytesTracksAcquisitions) {
  uint64_t Size = Mgr.acquireChunk(0)->sizeBytes() +
                  static_cast<uint64_t>(ChunkMetaWords) * sizeof(Word);
  EXPECT_EQ(Mgr.activeBytes(), ChunkBytes);
  EXPECT_EQ(Size, ChunkBytes);
  Mgr.acquireChunk(0);
  EXPECT_EQ(Mgr.activeBytes(), 2 * ChunkBytes);
}

TEST_F(ChunkFixture, TryAllocRespectsCapacity) {
  Chunk *C = Mgr.acquireChunk(0);
  std::size_t Words = C->sizeBytes() / sizeof(Word);
  EXPECT_EQ(C->tryAlloc(IdRaw, Words), nullptr) << "header does not fit";
  EXPECT_NE(C->tryAlloc(IdRaw, Words - 1), nullptr);
  EXPECT_EQ(C->tryAlloc(IdRaw, 1), nullptr) << "chunk is full";
}

TEST_F(ChunkFixture, FromInteriorPtrFindsChunk) {
  Chunk *C = Mgr.acquireChunk(2);
  Word *Obj = C->tryAlloc(IdRaw, 8);
  EXPECT_EQ(Chunk::fromInteriorPtr(Obj, ChunkBytes), C);
  EXPECT_EQ(Chunk::fromInteriorPtr(Obj + 7, ChunkBytes), C);
}

TEST_F(ChunkFixture, GatherMarksFromSpaceAndGroupsByNode) {
  Chunk *A = Mgr.acquireChunk(0);
  Chunk *B = Mgr.acquireChunk(1);
  Chunk *C = Mgr.acquireChunk(1);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  EXPECT_EQ(Mgr.activeBytes(), 0u);
  EXPECT_TRUE(A->InFromSpace);
  EXPECT_TRUE(B->InFromSpace);
  EXPECT_EQ(FromByNode[0], A);
  // Node 1 holds B and C in some order.
  unsigned Node1Count = 0;
  for (Chunk *Cur = FromByNode[1]; Cur; Cur = Cur->Next)
    ++Node1Count;
  EXPECT_EQ(Node1Count, 2u);
  (void)C;
}

TEST_F(ChunkFixture, ReleaseThenReuseKeepsNodeAffinity) {
  Chunk *A = Mgr.acquireChunk(3);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  Mgr.releaseChunk(A);
  EXPECT_FALSE(A->InFromSpace);
  ChunkSource Src;
  Chunk *B = Mgr.acquireChunk(3, &Src);
  EXPECT_EQ(A, B) << "free chunk homed on node 3 must be reused there";
  EXPECT_EQ(Src, ChunkSource::LocalReuse);
  EXPECT_EQ(Mgr.nodeLocalReuses(), 1u);
  EXPECT_EQ(Mgr.crossNodeSteals(), 0u);
}

TEST_F(ChunkFixture, CrossNodeReuseOnlyWhenNecessary) {
  Chunk *A = Mgr.acquireChunk(0);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  Mgr.releaseChunk(A);
  // Requesting from node 2: no node-2 free chunk exists, so the node-0
  // chunk is stolen (cheaper than mapping fresh memory) but it keeps its
  // node-0 home.
  ChunkSource Src;
  Chunk *B = Mgr.acquireChunk(2, &Src);
  EXPECT_EQ(B, A);
  EXPECT_EQ(B->HomeNode, 0u);
  EXPECT_EQ(Src, ChunkSource::RemoteReuse);
  EXPECT_EQ(Mgr.crossNodeSteals(), 1u);
  EXPECT_EQ(Mgr.nodeLocalReuses(), 0u);
}

TEST_F(ChunkFixture, CountersDistinguishSyncClasses) {
  ChunkSource Src;
  Mgr.acquireChunk(0, &Src); // fresh: global synchronization
  EXPECT_EQ(Src, ChunkSource::Fresh);
  EXPECT_EQ(Mgr.freshRegistrations(), 1u);
  EXPECT_EQ(Mgr.globalAllocations(), 1u) << "historical alias";
  EXPECT_EQ(Mgr.nodeLocalReuses(), 0u);
  EXPECT_EQ(Mgr.crossNodeSteals(), 0u);
}

TEST_F(ChunkFixture, ResetForReuseClearsCursors) {
  Chunk *C = Mgr.acquireChunk(0);
  C->tryAlloc(IdRaw, 16);
  C->ScanPtr = C->AllocPtr;
  C->resetForReuse();
  EXPECT_EQ(C->usedBytes(), 0u);
  EXPECT_EQ(C->ScanPtr, C->Base);
  EXPECT_FALSE(C->InFromSpace);
}

TEST(ChunkAffinityAblation, DisabledAffinityIgnoresHomeNode) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::Local, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/false,
                   /*BatchChunks=*/1);
  Chunk *A = Mgr.acquireChunk(0);
  Chunk *B = Mgr.acquireChunk(3);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  Mgr.releaseChunk(A);
  Mgr.releaseChunk(B);
  // With affinity off, a node-3 request may be served by the node-0
  // chunk (first free shard scanned in node order).
  Chunk *C = Mgr.acquireChunk(3);
  EXPECT_EQ(C->HomeNode, 0u);
}

TEST(ChunkManagerPolicy, InterleavedSpreadsChunkHomes) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::Interleaved, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/true,
                   /*BatchChunks=*/1);
  std::vector<unsigned> PerNode(4, 0);
  for (int I = 0; I < 8; ++I)
    ++PerNode[Mgr.acquireChunk(0)->HomeNode];
  for (unsigned N : PerNode)
    EXPECT_EQ(N, 2u) << "GHC-style balancing across nodes";
}

TEST(ChunkManagerPolicy, SingleNodePutsEverythingOnZero) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::SingleNode, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Mgr.acquireChunk(I % 4)->HomeNode, 0u);
}

//===----------------------------------------------------------------------===//
// Batched registration
//===----------------------------------------------------------------------===//

namespace {

struct BatchedFixture : ::testing::Test {
  static constexpr std::size_t ChunkBytes = 64 * 1024;
  static constexpr unsigned Batch = 4;
  BatchedFixture()
      : Banks(4), Policy(AllocPolicyKind::Local, 4),
        Mgr(Banks, Policy, ChunkBytes, /*PreserveAffinity=*/true, Batch) {}
  MemoryBanks Banks;
  AllocPolicy Policy;
  ChunkManager Mgr;
};

} // namespace

TEST_F(BatchedFixture, OneMappingCarvesWholeBatch) {
  ChunkSource Src;
  Chunk *C = Mgr.acquireChunk(2, &Src);
  EXPECT_EQ(Src, ChunkSource::Fresh);
  EXPECT_EQ(C->HomeNode, 2u);
  EXPECT_EQ(Mgr.numChunksCreated(), Batch);
  EXPECT_EQ(Mgr.freshRegistrations(), 1u) << "one mapping, one global sync";
  EXPECT_EQ(Mgr.activeBytes(), ChunkBytes) << "only the handed-out chunk";
}

TEST_F(BatchedFixture, BatchExtrasServeSameNodeWithoutGlobalSync) {
  Mgr.acquireChunk(2);
  for (unsigned I = 1; I < Batch; ++I) {
    ChunkSource Src;
    Chunk *C = Mgr.acquireChunk(2, &Src);
    EXPECT_EQ(Src, ChunkSource::LocalReuse)
        << "batch extras are node-local synchronization";
    EXPECT_EQ(C->HomeNode, 2u);
  }
  EXPECT_EQ(Mgr.freshRegistrations(), 1u);
  EXPECT_EQ(Mgr.numChunksCreated(), Batch) << "no further mappings";
  EXPECT_EQ(Mgr.nodeLocalReuses(), static_cast<uint64_t>(Batch - 1));
  // The batch is exhausted: the next acquisition maps again.
  Mgr.acquireChunk(2);
  EXPECT_EQ(Mgr.freshRegistrations(), 2u);
}

TEST_F(BatchedFixture, EveryBatchChunkIsSizeAlignedAndFindable) {
  Chunk *First = Mgr.acquireChunk(1);
  std::vector<Chunk *> Batch1{First};
  for (unsigned I = 1; I < Batch; ++I)
    Batch1.push_back(Mgr.acquireChunk(1));
  for (Chunk *C : Batch1) {
    uintptr_t Block = reinterpret_cast<uintptr_t>(C->Base - ChunkMetaWords);
    EXPECT_EQ(Block % ChunkBytes, 0u) << "interior-pointer mask alignment";
    Word *Obj = C->tryAlloc(IdRaw, 4);
    EXPECT_EQ(Chunk::fromInteriorPtr(Obj, ChunkBytes), C);
    EXPECT_EQ(Mgr.chunkOf(Obj), C);
  }
}

TEST_F(BatchedFixture, GatherReleaseRecyclesBatchChunksByHome) {
  std::vector<Chunk *> Acquired;
  for (unsigned I = 0; I < 2 * Batch; ++I)
    Acquired.push_back(Mgr.acquireChunk(3));
  EXPECT_EQ(Mgr.freshRegistrations(), 2u);
  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  for (Chunk *C : Acquired)
    Mgr.releaseChunk(C);
  // Every recycled chunk comes back on its home node.
  for (unsigned I = 0; I < 2 * Batch; ++I) {
    ChunkSource Src;
    Chunk *C = Mgr.acquireChunk(3, &Src);
    EXPECT_EQ(Src, ChunkSource::LocalReuse);
    EXPECT_EQ(C->HomeNode, 3u);
  }
  EXPECT_EQ(Mgr.freshRegistrations(), 2u) << "recycling maps nothing new";
}

TEST(ChunkManagerBatched, InterleavedPolicyRoundRobinsMappings) {
  MemoryBanks Banks(4);
  AllocPolicy Policy(AllocPolicyKind::Interleaved, 4);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/true,
                   /*BatchChunks=*/2);
  // Fresh mappings round-robin across nodes; each mapping's extras stay
  // with their batch's home.
  std::vector<unsigned> PerNode(4, 0);
  for (int I = 0; I < 8; ++I)
    ++PerNode[Mgr.acquireChunk(0)->HomeNode];
  EXPECT_EQ(Mgr.freshRegistrations(), 4u);
  for (unsigned N : PerNode)
    EXPECT_EQ(N, 2u) << "one 2-chunk batch per node";
}

//===----------------------------------------------------------------------===//
// Concurrent stress: sharded reuse / registration
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Threads threads of \p Fn(tid) and joins them.
template <typename FnT> void runThreads(unsigned Threads, FnT Fn) {
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&Fn, T] { Fn(T); });
  for (std::thread &T : Ts)
    T.join();
}

} // namespace

TEST(ChunkManagerStress, ConcurrentAcquireReleaseKeepsAffinityAndCounters) {
  constexpr unsigned Nodes = 4;
  constexpr unsigned Threads = 8;
  constexpr unsigned Rounds = 20;
  constexpr unsigned PerRound = 6;
  MemoryBanks Banks(Nodes);
  AllocPolicy Policy(AllocPolicyKind::Local, Nodes);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/true,
                   /*BatchChunks=*/4);

  std::atomic<uint64_t> LocalTally{0}, StealTally{0}, FreshTally{0};
  std::atomic<uint64_t> HomeMismatches{0};
  uint64_t TotalAcquires = 0;

  for (unsigned Round = 0; Round < Rounds; ++Round) {
    std::vector<std::vector<Chunk *>> Got(Threads);
    runThreads(Threads, [&](unsigned T) {
      NodeId Node = T % Nodes;
      for (unsigned I = 0; I < PerRound; ++I) {
        ChunkSource Src;
        Chunk *C = Mgr.acquireChunk(Node, &Src);
        ASSERT_NE(C, nullptr);
        switch (Src) {
        case ChunkSource::LocalReuse:
          LocalTally.fetch_add(1);
          // A node-local acquisition must hand back a chunk homed on the
          // requesting node (the whole point of the shards).
          if (C->HomeNode != Node)
            HomeMismatches.fetch_add(1);
          break;
        case ChunkSource::RemoteReuse:
          StealTally.fetch_add(1);
          if (C->HomeNode == Node)
            HomeMismatches.fetch_add(1);
          break;
        case ChunkSource::Fresh:
          FreshTally.fetch_add(1);
          // Local policy: fresh batches land on the requester's node.
          if (C->HomeNode != Node)
            HomeMismatches.fetch_add(1);
          break;
        }
        Got[T].push_back(C);
      }
    });
    TotalAcquires += Threads * PerRound;

    // Stop-the-world recycle, as the global collector would.
    std::vector<Chunk *> FromByNode;
    Mgr.gatherFromSpace(FromByNode);
    std::set<Chunk *> Gathered;
    for (Chunk *Head : FromByNode)
      for (Chunk *C = Head; C; C = C->Next)
        Gathered.insert(C);
    std::set<Chunk *> Handed;
    for (auto &V : Got)
      for (Chunk *C : V)
        Handed.insert(C);
    EXPECT_EQ(Gathered, Handed) << "gather must see every handed-out chunk";
    for (Chunk *Head : FromByNode) {
      while (Chunk *C = Head) {
        Head = C->Next;
        Mgr.releaseChunk(C);
      }
    }
  }

  EXPECT_EQ(HomeMismatches.load(), 0u);
  // The per-call tallies and the manager's counters must agree, and
  // every acquisition is accounted to exactly one class.
  EXPECT_EQ(Mgr.nodeLocalReuses(), LocalTally.load());
  EXPECT_EQ(Mgr.crossNodeSteals(), StealTally.load());
  EXPECT_EQ(Mgr.freshRegistrations(), FreshTally.load());
  EXPECT_EQ(LocalTally.load() + StealTally.load() + FreshTally.load(),
            TotalAcquires);
  // Every created chunk traces back to a batched mapping.
  EXPECT_EQ(Mgr.numChunksCreated(), FreshTally.load() * Mgr.batchChunks());
}

TEST(ChunkManagerStress, ConcurrentFreshRegistrationsStayConsistent) {
  constexpr unsigned Nodes = 2;
  constexpr unsigned Threads = 6;
  constexpr unsigned PerThread = 10;
  MemoryBanks Banks(Nodes);
  AllocPolicy Policy(AllocPolicyKind::Local, Nodes);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/true,
                   /*BatchChunks=*/2);
  std::vector<std::vector<Chunk *>> Got(Threads);
  runThreads(Threads, [&](unsigned T) {
    for (unsigned I = 0; I < PerThread; ++I)
      Got[T].push_back(Mgr.acquireChunk(T % Nodes));
  });
  // No chunk may be handed to two owners.
  std::set<Chunk *> Unique;
  unsigned Total = 0;
  for (auto &V : Got)
    for (Chunk *C : V) {
      EXPECT_TRUE(Unique.insert(C).second) << "chunk handed out twice";
      ++Total;
    }
  EXPECT_EQ(Total, Threads * PerThread);
  EXPECT_EQ(Mgr.activeBytes(), static_cast<uint64_t>(Total) * 64 * 1024);
  // Interior pointers of every chunk resolve to their descriptor even
  // after concurrent batched registration.
  for (Chunk *C : Unique) {
    Word *Obj = C->tryAlloc(IdRaw, 2);
    ASSERT_NE(Obj, nullptr);
    EXPECT_EQ(Mgr.chunkOf(Obj), C);
  }
}

//===----------------------------------------------------------------------===//
// Treiber pending-chunk stack
//===----------------------------------------------------------------------===//

TEST(ChunkStackTest, PendingPushLeavesActiveListsIntact) {
  // During global-GC phase 4, a to-space chunk is pushed onto the
  // pending stack while it still sits on its shard's active list. The
  // stack must link through PendingNext, not Next: corrupting the
  // active linkage would make the next collection lose or double-gather
  // chunks.
  MemoryBanks Banks(2);
  AllocPolicy Policy(AllocPolicyKind::Local, 2);
  ChunkManager Mgr(Banks, Policy, 64 * 1024, /*PreserveAffinity=*/true,
                   /*BatchChunks=*/1);
  Chunk *A = Mgr.acquireChunk(0);
  Chunk *B = Mgr.acquireChunk(0); // active list on shard 0: B -> A
  Chunk *C = Mgr.acquireChunk(1);

  ChunkStack Pending;
  Pending.push(A); // as the scanner publishes a filled current chunk
  Pending.push(C);

  std::vector<Chunk *> FromByNode;
  Mgr.gatherFromSpace(FromByNode);
  std::set<Chunk *> Gathered;
  for (Chunk *Head : FromByNode)
    for (Chunk *Cur = Head; Cur; Cur = Cur->Next)
      EXPECT_TRUE(Gathered.insert(Cur).second) << "chunk gathered twice";
  EXPECT_EQ(Gathered, (std::set<Chunk *>{A, B, C}))
      << "pending pushes must not drop or duplicate active chunks";
  EXPECT_EQ(Pending.tryPop(), C);
  EXPECT_EQ(Pending.tryPop(), A);
}

TEST(ChunkStackTest, PushPopLifoSingleThread) {
  ChunkStack S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.tryPop(), nullptr);
  Chunk A, B, C;
  S.push(&A);
  S.push(&B);
  S.push(&C);
  EXPECT_FALSE(S.empty());
  EXPECT_EQ(S.tryPop(), &C);
  EXPECT_EQ(S.tryPop(), &B);
  EXPECT_EQ(S.tryPop(), &A);
  EXPECT_EQ(S.tryPop(), nullptr);
  EXPECT_TRUE(S.empty());
}

TEST(ChunkStackTest, ConcurrentPushPopLosesNothing) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 2000;
  ChunkStack S;
  std::vector<Chunk> Pool(Threads * PerThread);
  std::atomic<uint64_t> Popped{0};

  // Half the threads push their slice while the other half pop whatever
  // is available; then the poppers drain the rest. Every descriptor must
  // come out exactly once (the ABA tag is what makes this safe).
  std::atomic<bool> PushersDone{false};
  std::vector<std::thread> Ts;
  std::vector<std::vector<Chunk *>> PoppedBy(Threads / 2);
  for (unsigned T = 0; T < Threads / 2; ++T)
    Ts.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread * 2; ++I)
        S.push(&Pool[T * PerThread * 2 + I]);
    });
  for (unsigned T = 0; T < Threads / 2; ++T)
    Ts.emplace_back([&, T] {
      for (;;) {
        if (Chunk *C = S.tryPop()) {
          PoppedBy[T].push_back(C);
          Popped.fetch_add(1, std::memory_order_relaxed);
        } else if (PushersDone.load(std::memory_order_acquire) && S.empty()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  for (unsigned T = 0; T < Threads / 2; ++T)
    Ts[T].join();
  PushersDone.store(true, std::memory_order_release);
  for (unsigned T = Threads / 2; T < Threads; ++T)
    Ts[T].join();

  EXPECT_EQ(Popped.load(), static_cast<uint64_t>(Threads) * PerThread);
  std::set<Chunk *> Seen;
  for (auto &V : PoppedBy)
    for (Chunk *C : V)
      EXPECT_TRUE(Seen.insert(C).second) << "descriptor popped twice";
  EXPECT_EQ(Seen.size(), Pool.size());
}
