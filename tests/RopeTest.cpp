//===- tests/RopeTest.cpp - rope tests ------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/HeapVerifier.h"
#include "runtime/Rope.h"

#include <gtest/gtest.h>

#include <vector>

using namespace manti;
using namespace manti::test;

namespace {

struct RopeWorld : TestWorld {
  RopeWorld() { registerRopeDescriptors(World); }
};

uint64_t identity(int64_t I, void *) { return static_cast<uint64_t>(I); }

} // namespace

TEST(Rope, EmptyRopeIsNil) {
  RopeWorld TW;
  Value R = rope::fromFunction(TW.heap(), 0, identity, nullptr);
  EXPECT_TRUE(R.isNil());
  EXPECT_EQ(rope::length(R), 0);
}

TEST(Rope, SingleLeaf) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> R = Scope.root(rope::fromFunction(TW.heap(), 100, identity, nullptr));
  EXPECT_EQ(rope::length(R), 100);
  EXPECT_EQ(rope::depth(R), 0);
  for (int64_t I = 0; I < 100; I += 7)
    EXPECT_EQ(rope::getInt(R, I), I);
}

TEST(Rope, MultiLeafBalanced) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  const int64_t N = rope::LeafElems * 9 + 17;
  Ref<> R = Scope.root(rope::fromFunction(TW.heap(), N, identity, nullptr));
  EXPECT_EQ(rope::length(R), N);
  EXPECT_LE(rope::depth(R), 5) << "10 leaves need depth <= ceil(log2(10))+1";
  for (int64_t I = 0; I < N; I += 997)
    EXPECT_EQ(rope::getInt(R, I), I);
  EXPECT_EQ(rope::getInt(R, N - 1), N - 1);
}

TEST(Rope, FromToArrayRoundTrip) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  std::vector<uint64_t> In(5000);
  for (std::size_t I = 0; I < In.size(); ++I)
    In[I] = I * 3 + 1;
  Ref<> R = Scope.root(
      rope::fromArray(TW.heap(), In.data(), static_cast<int64_t>(In.size())));
  std::vector<uint64_t> Out(In.size());
  rope::toArray(R, Out.data());
  EXPECT_EQ(In, Out);
}

TEST(Rope, ConcatPreservesOrder) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> A = Scope.root(rope::fromFunction(TW.heap(), 1500, identity, nullptr));
  Ref<> B = Scope.root(rope::fromFunction(
      TW.heap(), 700, [](int64_t I, void *) { return uint64_t(I + 1500); },
      nullptr));
  Ref<> C = Scope.root(rope::concat(TW.heap(), A, B));
  EXPECT_EQ(rope::length(C), 2200);
  for (int64_t I = 0; I < 2200; I += 101)
    EXPECT_EQ(rope::getInt(C, I), I);
}

TEST(Rope, ConcatWithNil) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> A = Scope.root(rope::fromFunction(TW.heap(), 10, identity, nullptr));
  EXPECT_EQ(rope::concat(TW.heap(), Value::nil(), A), A);
  EXPECT_EQ(rope::concat(TW.heap(), A, Value::nil()), A);
}

TEST(Rope, RepeatedConcatStaysShallow) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> R = Scope.root(Value::nil());
  // Worst-case skew: append single elements one at a time.
  for (int64_t I = 0; I < 400; ++I) {
    uint64_t Elem = static_cast<uint64_t>(I);
    RootScope Inner(TW.heap());
    Ref<> Leaf = Inner.root(rope::fromArray(TW.heap(), &Elem, 1));
    R = rope::concat(TW.heap(), R, Leaf);
  }
  EXPECT_EQ(rope::length(R), 400);
  EXPECT_LE(rope::depth(R), 24) << "rebuild must bound the spine depth";
  for (int64_t I = 0; I < 400; I += 13)
    EXPECT_EQ(rope::getInt(R, I), I);
}

TEST(Rope, Slice) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> R = Scope.root(rope::fromFunction(TW.heap(), 3000, identity, nullptr));
  Ref<> S = Scope.root(rope::slice(TW.heap(), R, 1000, 1500));
  EXPECT_EQ(rope::length(S), 500);
  for (int64_t I = 0; I < 500; I += 49)
    EXPECT_EQ(rope::getInt(S, I), 1000 + I);
}

TEST(Rope, DoubleRopes) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> R = Scope.root(rope::fromFunction(
      TW.heap(), 512,
      [](int64_t I, void *) {
        return rope::packDouble(0.5 * static_cast<double>(I));
      },
      nullptr));
  EXPECT_DOUBLE_EQ(rope::getDouble(R, 100), 50.0);
  EXPECT_DOUBLE_EQ(rope::getDouble(R, 511), 255.5);
}

TEST(Rope, SurvivesCollections) {
  RopeWorld TW;
  VProcHeap &H = TW.heap();
  RootScope Scope(H);
  const int64_t N = 4000;
  Ref<> R = Scope.root(rope::fromFunction(H, N, identity, nullptr));
  allocGarbage(H, 500);
  H.minorGC();
  for (int64_t I = 0; I < N; I += 371)
    ASSERT_EQ(rope::getInt(R, I), I);
  H.majorGC();
  H.majorGC(); // push it to the global heap
  for (int64_t I = 0; I < N; I += 371)
    ASSERT_EQ(rope::getInt(R, I), I);
  verifyHeap(H);
}

TEST(Rope, SurvivesPromotionAndGlobalGC) {
  RopeWorld TW;
  VProcHeap &H = TW.heap();
  RootScope Scope(H);
  Ref<> R = Scope.root(rope::fromFunction(H, 2500, identity, nullptr));
  R = H.promote(R);
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_EQ(rope::length(R), 2500);
  for (int64_t I = 0; I < 2500; I += 203)
    ASSERT_EQ(rope::getInt(R, I), I);
}

TEST(Rope, IsRopePredicate) {
  RopeWorld TW;
  RootScope Scope(TW.heap());
  Ref<> R = Scope.root(rope::fromFunction(TW.heap(), 2048, identity, nullptr));
  EXPECT_TRUE(rope::isRope(TW.World, R));
  EXPECT_TRUE(rope::isRope(TW.World, Value::nil()));
  EXPECT_FALSE(rope::isRope(TW.World, Value::fromInt(3)));
  Ref<> V = Scope.root(TW.heap().allocVector(nullptr, 3));
  EXPECT_FALSE(rope::isRope(TW.World, V));
}
