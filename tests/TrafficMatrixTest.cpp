//===- tests/TrafficMatrixTest.cpp - tests for numa/TrafficMatrix ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/TrafficMatrix.h"
#include "numa/Topology.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace manti;

TEST(TrafficMatrix, RecordAndQuery) {
  TrafficMatrix T(4);
  T.record(0, 1, 100);
  T.record(0, 1, 50);
  T.record(1, 0, 25);
  EXPECT_EQ(T.bytes(0, 1), 150u);
  EXPECT_EQ(T.bytes(1, 0), 25u);
  EXPECT_EQ(T.bytes(2, 3), 0u);
}

TEST(TrafficMatrix, SelfTrafficCountsAsLocal) {
  TrafficMatrix T(2);
  T.record(0, 0, 10);
  T.record(0, 1, 5);
  EXPECT_EQ(T.totalBytes(), 15u);
  EXPECT_EQ(T.remoteBytes(), 5u);
}

TEST(TrafficMatrix, BytesInto) {
  TrafficMatrix T(3);
  T.record(0, 2, 7);
  T.record(1, 2, 9);
  T.record(2, 2, 11);
  EXPECT_EQ(T.bytesInto(2), 27u);
}

TEST(TrafficMatrix, Reset) {
  TrafficMatrix T(2);
  T.record(0, 1, 99);
  T.reset();
  EXPECT_EQ(T.totalBytes(), 0u);
}

TEST(TrafficMatrix, ConcurrentRecording) {
  TrafficMatrix T(2);
  std::vector<std::thread> Threads;
  for (int I = 0; I < 4; ++I)
    Threads.emplace_back([&] {
      for (int J = 0; J < 10000; ++J)
        T.record(0, 1, 1);
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(T.bytes(0, 1), 40000u);
}

TEST(TrafficMatrix, PerLinkProjectionIntel) {
  Topology Topo = Topology::intelXeon32();
  TrafficMatrix T(Topo.numNodes());
  T.record(0, 1, 1000);
  std::vector<uint64_t> PerLink = T.perLinkBytes(Topo);
  // Exactly one link (0-1) carries the traffic on the full mesh.
  uint64_t Total = 0;
  unsigned Loaded = 0;
  for (uint64_t B : PerLink) {
    Total += B;
    if (B)
      ++Loaded;
  }
  EXPECT_EQ(Total, 1000u);
  EXPECT_EQ(Loaded, 1u);
}

TEST(TrafficMatrix, PerLinkProjectionAmdTwoHop) {
  Topology Topo = Topology::amdMagnyCours48();
  TrafficMatrix T(Topo.numNodes());
  // Find a two-hop pair and check both links on the route are charged.
  NodeId From = 0, To = 0;
  for (NodeId B = 1; B < Topo.numNodes() && !To; ++B)
    if (Topo.hopCount(0, B) == 2)
      To = B;
  ASSERT_NE(To, 0u) << "AMD topology should contain two-hop pairs";
  T.record(From, To, 500);
  std::vector<uint64_t> PerLink = T.perLinkBytes(Topo);
  unsigned Loaded = 0;
  for (uint64_t B : PerLink)
    if (B == 500)
      ++Loaded;
  EXPECT_EQ(Loaded, 2u);
}
