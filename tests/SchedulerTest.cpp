//===- tests/SchedulerTest.cpp - topology-aware work stealing -------------===//
//
// Part of the manticore-gc project.
//
// Covers the Scheduler subsystem: proximity-tier victim ordering, the
// LocalStealFirst ablation knob, steal batching, the cross-thread queue
// depth counter, the idle ladder's park accounting, the ParkLot
// doorbells (node-exact rings, broadcast, and the ring-vs-park race),
// spawn affinity routing, and a steal handshake hammer (the regression
// test for the StealRequest release/acquire protocol; CI runs this
// binary under ThreadSanitizer).
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/GCReport.h"
#include "runtime/Parallel.h"
#include "runtime/ParkLot.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace manti;
using namespace manti::test;

namespace {

RuntimeConfig testRuntimeConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false; // single-core CI container
  return Cfg;
}

Task trivialTask() {
  return {[](Runtime &, VProc &, Task) {}, nullptr, Value::nil(), 0, 0};
}

} // namespace

//===----------------------------------------------------------------------===//
// Proximity ordering
//===----------------------------------------------------------------------===//

TEST(Scheduler, ProximityTiersPutSameNodeFirstOnAmd) {
  // The 48-core AMD machine (4 G34 packages, 8 nodes) with 16 vprocs:
  // the sparse assignment puts vprocs V and V+8 on node V.
  Runtime RT(testRuntimeConfig(16), Topology::amdMagnyCours48());
  const Topology &Topo = RT.world().topology();
  Scheduler &Sched = RT.scheduler();

  for (unsigned V = 0; V < 16; ++V) {
    const auto &Tiers = Sched.proximityOrder(V);
    ASSERT_FALSE(Tiers.empty());

    // Tier 0 is exactly the other vprocs on V's node.
    std::set<unsigned> Tier0(Tiers[0].begin(), Tiers[0].end());
    std::set<unsigned> SameNode;
    for (unsigned U = 0; U < 16; ++U)
      if (U != V && RT.vproc(U).node() == RT.vproc(V).node())
        SameNode.insert(U);
    EXPECT_EQ(Tier0, SameNode) << "vproc " << V;

    // Tiers are strictly increasing in hop distance, uniform within a
    // tier, and cover every other vproc exactly once.
    unsigned Seen = 0;
    int PrevHops = -1;
    for (const auto &Tier : Tiers) {
      ASSERT_FALSE(Tier.empty());
      unsigned Hops =
          Topo.hopCount(RT.vproc(V).node(), RT.vproc(Tier[0]).node());
      EXPECT_GT(static_cast<int>(Hops), PrevHops);
      PrevHops = static_cast<int>(Hops);
      for (unsigned U : Tier) {
        EXPECT_NE(U, V);
        EXPECT_EQ(Topo.hopCount(RT.vproc(V).node(), RT.vproc(U).node()),
                  Hops);
        ++Seen;
      }
    }
    EXPECT_EQ(Seen, 15u);
  }
}

TEST(Scheduler, ProximityTiersOnFourNodeMachine) {
  // 4 nodes x 2 cores, 8 vprocs: vprocs V and V+4 share node V.
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  for (unsigned V = 0; V < 8; ++V) {
    const auto &Tiers = Sched.proximityOrder(V);
    ASSERT_EQ(Tiers.size(), 2u); // same node, then everything at 1 hop
    ASSERT_EQ(Tiers[0].size(), 1u);
    EXPECT_EQ(Tiers[0][0], (V + 4) % 8);
    EXPECT_EQ(Tiers[1].size(), 6u);
  }
}

TEST(Scheduler, LoadedSameNodeVictimPreferred) {
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();

  // Load the same-node peer of vproc 0 (vproc 4) *and* a remote vproc
  // (vproc 1). Workers are idle-draining and no steal is in flight, so
  // pushing onto their queues from here is safe.
  for (int I = 0; I < 4; ++I) {
    RT.vproc(4).spawn(trivialTask());
    RT.vproc(1).spawn(trivialTask());
  }

  for (int Trial = 0; Trial < 100; ++Trial) {
    VProc *Victim = Sched.pickVictim(RT.vproc(0));
    ASSERT_NE(Victim, nullptr);
    EXPECT_EQ(Victim->id(), 4u)
        << "a loaded same-node victim must beat a loaded remote one";
  }
}

TEST(Scheduler, UniformRandomRestoredByLocalStealFirstOff) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.LocalStealFirst = false;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  EXPECT_FALSE(Sched.localStealFirst());

  // Same load pattern as above; uniform-random selection is load-blind,
  // so every other vproc must eventually be picked.
  for (int I = 0; I < 4; ++I) {
    RT.vproc(4).spawn(trivialTask());
    RT.vproc(1).spawn(trivialTask());
  }
  std::set<unsigned> Picked;
  for (int Trial = 0; Trial < 700; ++Trial) {
    VProc *Victim = Sched.pickVictim(RT.vproc(0));
    ASSERT_NE(Victim, nullptr);
    ASSERT_NE(Victim->id(), 0u);
    Picked.insert(Victim->id());
  }
  EXPECT_EQ(Picked.size(), 7u)
      << "uniform-random selection must spread over all other vprocs";
}

TEST(Scheduler, RemoteStealPatienceGatesFartherTiers) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 3;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  VProc &Thief = RT.vproc(0);

  // Load only a *remote* vproc; the thief's node peer (vproc 4) is dry.
  for (int I = 0; I < 8; ++I)
    RT.vproc(1).spawn(trivialTask());

  // Fresh thief: only tier 0 is probeable, and it is empty. Each
  // empty-handed round counts toward the unlock; tier 1 opens after 3.
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // failed rounds: 1
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // 2
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // 3 -> tier 1 unlocked
  VProc *Victim = Sched.pickVictim(Thief);
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Victim->id(), 1u);

  // A successful steal (a real handshake: vproc 1's worker answers from
  // its idle poll loop) resets the throttle, locking tier 1 again.
  EXPECT_TRUE(Sched.stealAndRun(Thief));
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
}

TEST(Scheduler, ZeroPatienceUnlocksEveryTierImmediately) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 0;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  for (int I = 0; I < 8; ++I)
    RT.vproc(1).spawn(trivialTask());
  VProc *Victim = RT.scheduler().pickVictim(RT.vproc(0));
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Victim->id(), 1u);
}

//===----------------------------------------------------------------------===//
// Queue depth (cross-thread)
//===----------------------------------------------------------------------===//

TEST(Scheduler, QueueDepthReadableFromOtherThreads) {
  Runtime RT(testRuntimeConfig(2), Topology::uniform(2, 1));
  VProc &VP = RT.vproc(0);
  EXPECT_EQ(VP.queueDepth(), 0u);
  for (int I = 0; I < 5; ++I)
    VP.spawn(trivialTask());
  // The depth counter, not the deque, is what other threads read.
  std::size_t Observed = 0;
  std::thread Reader([&] { Observed = VP.queueDepth(); });
  Reader.join();
  EXPECT_EQ(Observed, 5u);
  EXPECT_TRUE(VP.runOneLocal());
  EXPECT_EQ(VP.queueDepth(), 4u);
  while (VP.runOneLocal())
    ;
  EXPECT_EQ(VP.queueDepth(), 0u);
}

//===----------------------------------------------------------------------===//
// Steal batching
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchSizeOneRestoresSingleTaskSteals) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 1;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 60;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        for (int I = 0; I < 60; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksStolen, S.StealBatches)
      << "StealBatch=1 must hand over exactly one task per handshake";
  EXPECT_EQ(S.TasksServiced, S.TasksStolen);
}

TEST(Scheduler, BatchesRespectTheConfiguredCap) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 3;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  EXPECT_EQ(RT.scheduler().stealBatchLimit(), 3u);
  static std::atomic<int> Remaining;
  Remaining = 60;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        for (int I = 0; I < 60; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.StealBatches, 0u);
  EXPECT_LE(S.TasksStolen, S.StealBatches * 3)
      << "no handshake may exceed the StealBatch cap";
  EXPECT_GT(S.meanStealBatch(), 1.0)
      << "a deep victim queue must yield multi-task batches";
}

//===----------------------------------------------------------------------===//
// Idle ladder
//===----------------------------------------------------------------------===//

TEST(Scheduler, IdleVProcsParkAndAccountTheTime) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  RT.run(
      [](Runtime &, VProc &, void *) {
        // No work spawned: the three workers descend the full ladder
        // (generous window so heavily loaded CI hosts still park).
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.Parks, 0u) << "idle workers must reach the park rung";
  EXPECT_GT(S.ParkNanos, 0u);
  EXPECT_GT(S.FailedStealRounds, 0u);
}

//===----------------------------------------------------------------------===//
// ParkLot doorbells (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(Doorbell, RingWakesExactlyTheRingedNode) {
  ParkLot Lot(2);
  std::atomic<int> Woken0{-1}, Woken1{-1};
  std::atomic<bool> Ready0{false}, Ready1{false};

  std::thread P0([&] {
    ParkLot::Token T = Lot.prepare(0);
    Ready0.store(true);
    Woken0.store(Lot.park(0, T, std::chrono::milliseconds(2000)) ? 1 : 0);
  });
  std::thread P1([&] {
    ParkLot::Token T = Lot.prepare(1);
    Ready1.store(true);
    // This parker must NOT be woken by the node-0 ring: it runs out its
    // backstop instead.
    Woken1.store(Lot.park(1, T, std::chrono::milliseconds(600)) ? 1 : 0);
  });

  // Wait until both are registered (a ring between prepare and park is
  // fine -- the epoch snapshot catches it), then ring node 0 only.
  while (!Ready0.load() || !Ready1.load())
    std::this_thread::yield();
  Lot.ring(0);
  P0.join();
  P1.join();
  EXPECT_EQ(Woken0.load(), 1) << "ringed node must wake by ring";
  EXPECT_EQ(Woken1.load(), 0) << "other node must run out its backstop";
}

TEST(Doorbell, BroadcastWakesAllNodes) {
  constexpr unsigned Nodes = 4;
  ParkLot Lot(Nodes);
  std::atomic<unsigned> Rung{0};
  std::vector<std::thread> Parkers;
  for (unsigned N = 0; N < Nodes; ++N) {
    Parkers.emplace_back([&, N] {
      ParkLot::Token T = Lot.prepare(N);
      if (Lot.park(N, T, std::chrono::milliseconds(2000)))
        Rung.fetch_add(1);
    });
  }
  for (unsigned N = 0; N < Nodes; ++N)
    while (Lot.parkedOn(N) == 0)
      std::this_thread::yield();
  Lot.ringBroadcast();
  for (std::thread &P : Parkers)
    P.join();
  EXPECT_EQ(Rung.load(), Nodes) << "a broadcast must wake every node";
}

TEST(Doorbell, NoLostWakeupWhenRingRacesPark) {
  // The protocol's contract: a ring sent after the parker's prepare()
  // fails the futex value check, and one sent before it is caught by the
  // parker's own condition re-check -- no interleaving sleeps through a
  // ring. A lost wake-up here would turn every round into a full 100 ms
  // backstop timeout, so the timeout count is the observable.
  constexpr int Rounds = 300;
  ParkLot Lot(1);
  std::atomic<int> Flag{0};
  std::atomic<int> Timeouts{0};

  std::thread Parker([&] {
    for (int I = 1; I <= Rounds; ++I) {
      while (Flag.load(std::memory_order_acquire) < I) {
        ParkLot::Token T = Lot.prepare(0);
        if (Flag.load(std::memory_order_acquire) >= I) {
          Lot.cancel(0);
          break;
        }
        if (!Lot.park(0, T, std::chrono::milliseconds(100)))
          Timeouts.fetch_add(1);
      }
    }
  });
  for (int I = 1; I <= Rounds; ++I) {
    Flag.store(I, std::memory_order_release);
    Lot.ring(0);
    // Lock-step: let the parker consume round I before round I+1, so
    // every round really exercises a fresh park/ring race.
    while (Flag.load(std::memory_order_acquire) == I &&
           Lot.parkedOn(0) == 0 && I < Rounds)
      std::this_thread::yield();
  }
  Parker.join();
  // A scheduling stall can time out the odd round (the ring arrives
  // while the parker is descheduled before prepare); systematic losses
  // would time out nearly all of them.
  EXPECT_LT(Timeouts.load(), Rounds / 4)
      << "rings racing parks must not be lost";
}

TEST(Scheduler, SpawnRingsDoorbellsAndWorkCompletes) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 200;
  RT.run(
      [](Runtime &RT2, VProc &VP, void *) {
        // Let a worker descend to the park rung first, so the spawn
        // rings below have a parked vproc to wake.
        while (RT2.parkLot().parkedOn(0) == 0 &&
               RT2.parkLot().parkedOn(1) == 0)
          std::this_thread::yield();
        static JoinCounter Join;
        for (int I = 0; I < 200; ++I) {
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task) {
                      Remaining.fetch_sub(1);
                      Join.sub();
                    },
                    nullptr, Value::nil(), 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);
  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.RingsSent, 0u) << "every spawn attempts a doorbell ring";
  EXPECT_GT(S.Parks, 0u);
}

TEST(Scheduler, LadderBaselineDisablesRings) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.UseDoorbells = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  EXPECT_FALSE(RT.scheduler().doorbells());
  static std::atomic<int64_t> Sum;
  Sum = 0;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 512, 4,
            [](Runtime &, VProc &, int64_t Lo, int64_t Hi, void *) {
              Sum.fetch_add(Hi - Lo);
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Sum.load(), 512);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.RingsSent, 0u) << "the ladder baseline never rings";
  EXPECT_EQ(S.RingWakeups, 0u);
}

//===----------------------------------------------------------------------===//
// Spawn affinity
//===----------------------------------------------------------------------===//

TEST(Scheduler, PopForStealPrefersThiefAffineTasks) {
  // 4 vprocs on uniform(2, 2): vprocs 0/2 on node 0, vprocs 1/3 on
  // node 1. Queue mixed-affinity tasks on vproc 0 (its owner thread is
  // this one, between runs) and pop for a node-1 thief.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  VProc &VP = RT.vproc(0);
  ASSERT_EQ(VP.node(), 0u);
  ASSERT_EQ(RT.vproc(1).node(), 1u);

  const NodeId Hints[6] = {1, Task::NoAffinity, 0, 1, Task::NoAffinity, 0};
  for (int I = 0; I < 6; ++I) {
    Task T = trivialTask();
    T.A = I;
    T.Affinity = Hints[I];
    VP.spawn(T);
  }

  // A node-1 thief gets the node-1-hinted tasks first, then unhinted.
  Task Out[StealRequest::MaxBatch];
  unsigned Matches = 0;
  unsigned Got = VP.popForSteal(/*ThiefNode=*/1, 3, Out, &Matches);
  ASSERT_EQ(Got, 3u);
  EXPECT_EQ(Matches, 2u);
  EXPECT_EQ(Out[0].A, 0); // hinted at node 1, oldest
  EXPECT_EQ(Out[1].A, 3); // hinted at node 1
  EXPECT_EQ(Out[2].A, 1); // unhinted

  // Work conservation: with no matching or unhinted tasks left, a
  // node-1 thief still gets the node-0-hinted leftovers.
  Got = VP.popForSteal(/*ThiefNode=*/1, 3, Out, &Matches);
  ASSERT_EQ(Got, 3u);
  EXPECT_EQ(Matches, 0u);
  EXPECT_EQ(Out[0].A, 4); // unhinted beats hinted-elsewhere
  EXPECT_EQ(Out[1].A, 2); // hinted at node 0, oldest
  EXPECT_EQ(Out[2].A, 5);
  EXPECT_EQ(VP.queueDepth(), 0u);
}

TEST(Scheduler, AffinityTasksFlowToTheirNode) {
  // End-to-end: tasks hinted at node 1 end up running there when node 1
  // has idle vprocs. The spawner never runs its own queue (it blocks in
  // joinWait only after a final unhinted task), so every hinted task is
  // stolen; the affinity-aware handshake routes them.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static std::atomic<int> Total;
  Total = 0;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        for (int I = 0; I < 64; ++I) {
          Join.add();
          Task T{[](Runtime &, VProc &, Task) {
                   Total.fetch_add(1);
                   Join.sub();
                 },
                 nullptr, Value::nil(), 0, 0};
          T.Affinity = 1;
          VP.spawn(T);
          // Brief pause so thieves drain the queue through handshakes
          // rather than the spawner running everything locally.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        VP.joinWait(Join);
      },
      nullptr);
  EXPECT_EQ(Total.load(), 64);
  SchedStats S = RT.aggregateSchedStats();
  if (S.TasksStolen > 0) {
    EXPECT_GT(S.AffinityHandoffs, 0u)
        << "stolen hinted tasks must register affinity-matched handoffs";
  }
}

//===----------------------------------------------------------------------===//
// Handshake hammer (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(Scheduler, HandshakeHammer) {
  // Hammer the StealRequest protocol from 8 vprocs at once: a fine-grain
  // parallelFor keeps every vproc both stealing and being stolen from,
  // then an environment-carrying spawn storm checks that batched
  // promotion delivers intact environments. The release/acquire pairs
  // documented on StealRequest are exactly what TSan checks here.
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.StealBatch = 4;
  Runtime RT(Cfg, Topology::uniform(4, 2));

  constexpr int Parents = 250, Children = 3;
  static std::atomic<int> Remaining;
  Remaining = Parents * (1 + Children);

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        // The spawner never runs its own tasks: every parent must be
        // stolen. Parents spawn children from whatever vproc ran them,
        // so workers become victims of each other too.
        for (int I = 0; I < Parents; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 8));
          VP.spawn({[](Runtime &, VProc &VP2, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(8));
                      RootScope Inner(VP2.heap());
                      for (int C = 0; C < Children; ++C) {
                        Ref<> CEnv =
                            Inner.root(makeIntList(VP2.heap(), 8));
                        VP2.spawn({[](Runtime &, VProc &, Task CT) {
                                     EXPECT_EQ(listSum(CT.Env),
                                               intListSum(8));
                                     Remaining.fetch_sub(1);
                                   },
                                   nullptr, CEnv, 0, 0});
                      }
                      Remaining.fetch_sub(1);
                    },
                    nullptr, Env, 0, 0});
        }
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);

  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksServiced, S.TasksStolen)
      << "every task a victim hands over is received by exactly one thief";
  EXPECT_GT(S.StealBatches, 0u);
  EXPECT_GE(S.TasksStolen, static_cast<uint64_t>(Parents))
      << "every parent task must have migrated off the spawner";
}

//===----------------------------------------------------------------------===//
// Stats plumbing
//===----------------------------------------------------------------------===//

TEST(Scheduler, ReportRendersSchedulerSection) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 256, 4,
            [](Runtime &, VProc &, int64_t, int64_t, void *) {},
            nullptr);
      },
      nullptr);
  std::string Report = gcReportString(RT.world(), RT.aggregateSchedStats());
  EXPECT_NE(Report.find("scheduler:"), std::string::npos);
  EXPECT_NE(Report.find("node-local"), std::string::npos);
  EXPECT_NE(Report.find("parked"), std::string::npos);
}

TEST(Scheduler, StolenEnvBytesFlowIntoTrafficMatrix) {
  // Steals with heap environments must charge (victim node -> thief
  // node) in the traffic ledger.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(4, 1));
  static JoinCounter Join;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        for (int I = 0; I < 100; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 16));
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(16));
                      Join.sub();
                    },
                    nullptr, Env, 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  if (S.StolenEnvBytes > 0) {
    // One vproc per node here, so stolen-env traffic is off-node.
    EXPECT_GT(RT.world().traffic().remoteBytes(), 0u);
  }
}
