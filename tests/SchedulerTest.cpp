//===- tests/SchedulerTest.cpp - topology-aware work stealing -------------===//
//
// Part of the manticore-gc project.
//
// Covers the Scheduler subsystem: proximity-tier victim ordering, the
// LocalStealFirst ablation knob, steal batching, the cross-thread queue
// depth counter, the idle ladder's park accounting, and a steal
// handshake hammer (the regression test for the StealRequest
// release/acquire protocol; CI runs this binary under ThreadSanitizer).
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/GCReport.h"
#include "runtime/Parallel.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace manti;
using namespace manti::test;

namespace {

RuntimeConfig testRuntimeConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false; // single-core CI container
  return Cfg;
}

Task trivialTask() {
  return {[](Runtime &, VProc &, Task) {}, nullptr, Value::nil(), 0, 0};
}

} // namespace

//===----------------------------------------------------------------------===//
// Proximity ordering
//===----------------------------------------------------------------------===//

TEST(Scheduler, ProximityTiersPutSameNodeFirstOnAmd) {
  // The 48-core AMD machine (4 G34 packages, 8 nodes) with 16 vprocs:
  // the sparse assignment puts vprocs V and V+8 on node V.
  Runtime RT(testRuntimeConfig(16), Topology::amdMagnyCours48());
  const Topology &Topo = RT.world().topology();
  Scheduler &Sched = RT.scheduler();

  for (unsigned V = 0; V < 16; ++V) {
    const auto &Tiers = Sched.proximityOrder(V);
    ASSERT_FALSE(Tiers.empty());

    // Tier 0 is exactly the other vprocs on V's node.
    std::set<unsigned> Tier0(Tiers[0].begin(), Tiers[0].end());
    std::set<unsigned> SameNode;
    for (unsigned U = 0; U < 16; ++U)
      if (U != V && RT.vproc(U).node() == RT.vproc(V).node())
        SameNode.insert(U);
    EXPECT_EQ(Tier0, SameNode) << "vproc " << V;

    // Tiers are strictly increasing in hop distance, uniform within a
    // tier, and cover every other vproc exactly once.
    unsigned Seen = 0;
    int PrevHops = -1;
    for (const auto &Tier : Tiers) {
      ASSERT_FALSE(Tier.empty());
      unsigned Hops =
          Topo.hopCount(RT.vproc(V).node(), RT.vproc(Tier[0]).node());
      EXPECT_GT(static_cast<int>(Hops), PrevHops);
      PrevHops = static_cast<int>(Hops);
      for (unsigned U : Tier) {
        EXPECT_NE(U, V);
        EXPECT_EQ(Topo.hopCount(RT.vproc(V).node(), RT.vproc(U).node()),
                  Hops);
        ++Seen;
      }
    }
    EXPECT_EQ(Seen, 15u);
  }
}

TEST(Scheduler, ProximityTiersOnFourNodeMachine) {
  // 4 nodes x 2 cores, 8 vprocs: vprocs V and V+4 share node V.
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  for (unsigned V = 0; V < 8; ++V) {
    const auto &Tiers = Sched.proximityOrder(V);
    ASSERT_EQ(Tiers.size(), 2u); // same node, then everything at 1 hop
    ASSERT_EQ(Tiers[0].size(), 1u);
    EXPECT_EQ(Tiers[0][0], (V + 4) % 8);
    EXPECT_EQ(Tiers[1].size(), 6u);
  }
}

TEST(Scheduler, LoadedSameNodeVictimPreferred) {
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();

  // Load the same-node peer of vproc 0 (vproc 4) *and* a remote vproc
  // (vproc 1). Workers are idle-draining and no steal is in flight, so
  // pushing onto their queues from here is safe.
  for (int I = 0; I < 4; ++I) {
    RT.vproc(4).spawn(trivialTask());
    RT.vproc(1).spawn(trivialTask());
  }

  for (int Trial = 0; Trial < 100; ++Trial) {
    VProc *Victim = Sched.pickVictim(RT.vproc(0));
    ASSERT_NE(Victim, nullptr);
    EXPECT_EQ(Victim->id(), 4u)
        << "a loaded same-node victim must beat a loaded remote one";
  }
}

TEST(Scheduler, UniformRandomRestoredByLocalStealFirstOff) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.LocalStealFirst = false;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  EXPECT_FALSE(Sched.localStealFirst());

  // Same load pattern as above; uniform-random selection is load-blind,
  // so every other vproc must eventually be picked.
  for (int I = 0; I < 4; ++I) {
    RT.vproc(4).spawn(trivialTask());
    RT.vproc(1).spawn(trivialTask());
  }
  std::set<unsigned> Picked;
  for (int Trial = 0; Trial < 700; ++Trial) {
    VProc *Victim = Sched.pickVictim(RT.vproc(0));
    ASSERT_NE(Victim, nullptr);
    ASSERT_NE(Victim->id(), 0u);
    Picked.insert(Victim->id());
  }
  EXPECT_EQ(Picked.size(), 7u)
      << "uniform-random selection must spread over all other vprocs";
}

TEST(Scheduler, RemoteStealPatienceGatesFartherTiers) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 3;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  VProc &Thief = RT.vproc(0);

  // Load only a *remote* vproc; the thief's node peer (vproc 4) is dry.
  for (int I = 0; I < 8; ++I)
    RT.vproc(1).spawn(trivialTask());

  // Fresh thief: only tier 0 is probeable, and it is empty. Each
  // empty-handed round counts toward the unlock; tier 1 opens after 3.
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // failed rounds: 1
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // 2
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // 3 -> tier 1 unlocked
  VProc *Victim = Sched.pickVictim(Thief);
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Victim->id(), 1u);

  // A successful steal (a real handshake: vproc 1's worker answers from
  // its idle poll loop) resets the throttle, locking tier 1 again.
  EXPECT_TRUE(Sched.stealAndRun(Thief));
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
}

TEST(Scheduler, ZeroPatienceUnlocksEveryTierImmediately) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 0;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  for (int I = 0; I < 8; ++I)
    RT.vproc(1).spawn(trivialTask());
  VProc *Victim = RT.scheduler().pickVictim(RT.vproc(0));
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Victim->id(), 1u);
}

//===----------------------------------------------------------------------===//
// Queue depth (cross-thread)
//===----------------------------------------------------------------------===//

TEST(Scheduler, QueueDepthReadableFromOtherThreads) {
  Runtime RT(testRuntimeConfig(2), Topology::uniform(2, 1));
  VProc &VP = RT.vproc(0);
  EXPECT_EQ(VP.queueDepth(), 0u);
  for (int I = 0; I < 5; ++I)
    VP.spawn(trivialTask());
  // The depth counter, not the deque, is what other threads read.
  std::size_t Observed = 0;
  std::thread Reader([&] { Observed = VP.queueDepth(); });
  Reader.join();
  EXPECT_EQ(Observed, 5u);
  EXPECT_TRUE(VP.runOneLocal());
  EXPECT_EQ(VP.queueDepth(), 4u);
  while (VP.runOneLocal())
    ;
  EXPECT_EQ(VP.queueDepth(), 0u);
}

//===----------------------------------------------------------------------===//
// Steal batching
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchSizeOneRestoresSingleTaskSteals) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 1;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 60;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        for (int I = 0; I < 60; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksStolen, S.StealBatches)
      << "StealBatch=1 must hand over exactly one task per handshake";
  EXPECT_EQ(S.TasksServiced, S.TasksStolen);
}

TEST(Scheduler, BatchesRespectTheConfiguredCap) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 3;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  EXPECT_EQ(RT.scheduler().stealBatchLimit(), 3u);
  static std::atomic<int> Remaining;
  Remaining = 60;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        for (int I = 0; I < 60; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.StealBatches, 0u);
  EXPECT_LE(S.TasksStolen, S.StealBatches * 3)
      << "no handshake may exceed the StealBatch cap";
  EXPECT_GT(S.meanStealBatch(), 1.0)
      << "a deep victim queue must yield multi-task batches";
}

//===----------------------------------------------------------------------===//
// Idle ladder
//===----------------------------------------------------------------------===//

TEST(Scheduler, IdleVProcsParkAndAccountTheTime) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  RT.run(
      [](Runtime &, VProc &, void *) {
        // No work spawned: the three workers descend the full ladder
        // (generous window so heavily loaded CI hosts still park).
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.Parks, 0u) << "idle workers must reach the park rung";
  EXPECT_GT(S.ParkNanos, 0u);
  EXPECT_GT(S.FailedStealRounds, 0u);
}

//===----------------------------------------------------------------------===//
// Handshake hammer (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(Scheduler, HandshakeHammer) {
  // Hammer the StealRequest protocol from 8 vprocs at once: a fine-grain
  // parallelFor keeps every vproc both stealing and being stolen from,
  // then an environment-carrying spawn storm checks that batched
  // promotion delivers intact environments. The release/acquire pairs
  // documented on StealRequest are exactly what TSan checks here.
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.StealBatch = 4;
  Runtime RT(Cfg, Topology::uniform(4, 2));

  constexpr int Parents = 250, Children = 3;
  static std::atomic<int> Remaining;
  Remaining = Parents * (1 + Children);

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        // The spawner never runs its own tasks: every parent must be
        // stolen. Parents spawn children from whatever vproc ran them,
        // so workers become victims of each other too.
        for (int I = 0; I < Parents; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 8));
          VP.spawn({[](Runtime &, VProc &VP2, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(8));
                      RootScope Inner(VP2.heap());
                      for (int C = 0; C < Children; ++C) {
                        Ref<> CEnv =
                            Inner.root(makeIntList(VP2.heap(), 8));
                        VP2.spawn({[](Runtime &, VProc &, Task CT) {
                                     EXPECT_EQ(listSum(CT.Env),
                                               intListSum(8));
                                     Remaining.fetch_sub(1);
                                   },
                                   nullptr, CEnv, 0, 0});
                      }
                      Remaining.fetch_sub(1);
                    },
                    nullptr, Env, 0, 0});
        }
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);

  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksServiced, S.TasksStolen)
      << "every task a victim hands over is received by exactly one thief";
  EXPECT_GT(S.StealBatches, 0u);
  EXPECT_GE(S.TasksStolen, static_cast<uint64_t>(Parents))
      << "every parent task must have migrated off the spawner";
}

//===----------------------------------------------------------------------===//
// Stats plumbing
//===----------------------------------------------------------------------===//

TEST(Scheduler, ReportRendersSchedulerSection) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 256, 4,
            [](Runtime &, VProc &, int64_t, int64_t, void *) {},
            nullptr);
      },
      nullptr);
  std::string Report = gcReportString(RT.world(), RT.aggregateSchedStats());
  EXPECT_NE(Report.find("scheduler:"), std::string::npos);
  EXPECT_NE(Report.find("node-local"), std::string::npos);
  EXPECT_NE(Report.find("parked"), std::string::npos);
}

TEST(Scheduler, StolenEnvBytesFlowIntoTrafficMatrix) {
  // Steals with heap environments must charge (victim node -> thief
  // node) in the traffic ledger.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(4, 1));
  static JoinCounter Join;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        for (int I = 0; I < 100; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 16));
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(16));
                      Join.sub();
                    },
                    nullptr, Env, 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  if (S.StolenEnvBytes > 0) {
    // One vproc per node here, so stolen-env traffic is off-node.
    EXPECT_GT(RT.world().traffic().remoteBytes(), 0u);
  }
}
