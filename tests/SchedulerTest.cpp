//===- tests/SchedulerTest.cpp - topology-aware work stealing -------------===//
//
// Part of the manticore-gc project.
//
// Covers the Scheduler subsystem: proximity-tier victim ordering, the
// LocalStealFirst ablation knob, steal batching, the cross-thread queue
// depth counter, the idle ladder's park accounting, the ParkLot
// doorbells (node-exact rings, broadcast, and the ring-vs-park race),
// spawn affinity routing, and a steal handshake hammer (the regression
// test for the StealRequest release/acquire protocol; CI runs this
// binary under ThreadSanitizer).
//
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/GCReport.h"
#include "runtime/Parallel.h"
#include "runtime/ParkLot.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

using namespace manti;
using namespace manti::test;

namespace {

RuntimeConfig testRuntimeConfig(unsigned NumVProcs) {
  RuntimeConfig Cfg;
  Cfg.GC = smallConfig();
  Cfg.NumVProcs = NumVProcs;
  Cfg.PinThreads = false; // single-core CI container
  return Cfg;
}

Task trivialTask() {
  return {[](Runtime &, VProc &, Task) {}, nullptr, Value::nil(), 0, 0};
}

} // namespace

//===----------------------------------------------------------------------===//
// Proximity ordering
//===----------------------------------------------------------------------===//

TEST(Scheduler, ProximityTiersPutSameNodeFirstOnAmd) {
  // The 48-core AMD machine (4 G34 packages, 8 nodes) with 16 vprocs:
  // the sparse assignment puts vprocs V and V+8 on node V.
  Runtime RT(testRuntimeConfig(16), Topology::amdMagnyCours48());
  const Topology &Topo = RT.world().topology();
  Scheduler &Sched = RT.scheduler();

  for (unsigned V = 0; V < 16; ++V) {
    const auto &Tiers = Sched.proximityOrder(V);
    ASSERT_FALSE(Tiers.empty());

    // Tier 0 is exactly the other vprocs on V's node.
    std::set<unsigned> Tier0(Tiers[0].begin(), Tiers[0].end());
    std::set<unsigned> SameNode;
    for (unsigned U = 0; U < 16; ++U)
      if (U != V && RT.vproc(U).node() == RT.vproc(V).node())
        SameNode.insert(U);
    EXPECT_EQ(Tier0, SameNode) << "vproc " << V;

    // Tiers are strictly increasing in hop distance, uniform within a
    // tier, and cover every other vproc exactly once.
    unsigned Seen = 0;
    int PrevHops = -1;
    for (const auto &Tier : Tiers) {
      ASSERT_FALSE(Tier.empty());
      unsigned Hops =
          Topo.hopCount(RT.vproc(V).node(), RT.vproc(Tier[0]).node());
      EXPECT_GT(static_cast<int>(Hops), PrevHops);
      PrevHops = static_cast<int>(Hops);
      for (unsigned U : Tier) {
        EXPECT_NE(U, V);
        EXPECT_EQ(Topo.hopCount(RT.vproc(V).node(), RT.vproc(U).node()),
                  Hops);
        ++Seen;
      }
    }
    EXPECT_EQ(Seen, 15u);
  }
}

TEST(Scheduler, ProximityTiersOnFourNodeMachine) {
  // 4 nodes x 2 cores, 8 vprocs: vprocs V and V+4 share node V.
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  for (unsigned V = 0; V < 8; ++V) {
    const auto &Tiers = Sched.proximityOrder(V);
    ASSERT_EQ(Tiers.size(), 2u); // same node, then everything at 1 hop
    ASSERT_EQ(Tiers[0].size(), 1u);
    EXPECT_EQ(Tiers[0][0], (V + 4) % 8);
    EXPECT_EQ(Tiers[1].size(), 6u);
  }
}

TEST(Scheduler, LoadedSameNodeVictimPreferred) {
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();

  // Load the same-node peer of vproc 0 (vproc 4) *and* a remote vproc
  // (vproc 1). Workers are idle-draining and no steal is in flight, so
  // pushing onto their queues from here is safe.
  for (int I = 0; I < 4; ++I) {
    RT.vproc(4).spawn(trivialTask());
    RT.vproc(1).spawn(trivialTask());
  }

  for (int Trial = 0; Trial < 100; ++Trial) {
    VProc *Victim = Sched.pickVictim(RT.vproc(0));
    ASSERT_NE(Victim, nullptr);
    EXPECT_EQ(Victim->id(), 4u)
        << "a loaded same-node victim must beat a loaded remote one";
  }
}

TEST(Scheduler, UniformRandomRestoredByLocalStealFirstOff) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.LocalStealFirst = false;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  EXPECT_FALSE(Sched.localStealFirst());

  // Same load pattern as above; uniform-random selection is load-blind,
  // so every other vproc must eventually be picked.
  for (int I = 0; I < 4; ++I) {
    RT.vproc(4).spawn(trivialTask());
    RT.vproc(1).spawn(trivialTask());
  }
  std::set<unsigned> Picked;
  for (int Trial = 0; Trial < 700; ++Trial) {
    VProc *Victim = Sched.pickVictim(RT.vproc(0));
    ASSERT_NE(Victim, nullptr);
    ASSERT_NE(Victim->id(), 0u);
    Picked.insert(Victim->id());
  }
  EXPECT_EQ(Picked.size(), 7u)
      << "uniform-random selection must spread over all other vprocs";
}

TEST(Scheduler, RemoteStealPatienceGatesFartherTiers) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 3;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  VProc &Thief = RT.vproc(0);

  // Load only a *remote* vproc; the thief's node peer (vproc 4) is dry.
  for (int I = 0; I < 8; ++I)
    RT.vproc(1).spawn(trivialTask());

  // Fresh thief: only tier 0 is probeable, and it is empty. Each
  // empty-handed round counts toward the unlock; tier 1 opens after 3.
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // failed rounds: 1
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // 2
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
  EXPECT_FALSE(Sched.stealAndRun(Thief)); // 3 -> tier 1 unlocked
  VProc *Victim = Sched.pickVictim(Thief);
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Victim->id(), 1u);

  // A successful steal (a real handshake: vproc 1's worker answers from
  // its idle poll loop) resets the throttle, locking tier 1 again.
  EXPECT_TRUE(Sched.stealAndRun(Thief));
  EXPECT_EQ(Sched.pickVictim(Thief), nullptr);
}

TEST(Scheduler, ZeroPatienceUnlocksEveryTierImmediately) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 0;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  for (int I = 0; I < 8; ++I)
    RT.vproc(1).spawn(trivialTask());
  VProc *Victim = RT.scheduler().pickVictim(RT.vproc(0));
  ASSERT_NE(Victim, nullptr);
  EXPECT_EQ(Victim->id(), 1u);
}

//===----------------------------------------------------------------------===//
// Queue depth (cross-thread)
//===----------------------------------------------------------------------===//

TEST(Scheduler, QueueDepthReadableFromOtherThreads) {
  Runtime RT(testRuntimeConfig(2), Topology::uniform(2, 1));
  VProc &VP = RT.vproc(0);
  EXPECT_EQ(VP.queueDepth(), 0u);
  for (int I = 0; I < 5; ++I)
    VP.spawn(trivialTask());
  // The depth counter, not the deque, is what other threads read.
  std::size_t Observed = 0;
  std::thread Reader([&] { Observed = VP.queueDepth(); });
  Reader.join();
  EXPECT_EQ(Observed, 5u);
  EXPECT_TRUE(VP.runOneLocal());
  EXPECT_EQ(VP.queueDepth(), 4u);
  while (VP.runOneLocal())
    ;
  EXPECT_EQ(VP.queueDepth(), 0u);
}

//===----------------------------------------------------------------------===//
// Steal batching
//===----------------------------------------------------------------------===//

TEST(Scheduler, BatchSizeOneRestoresSingleTaskSteals) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 1;
  // This test pins the PR 2 fixed-batch baseline: with steal-half a
  // single handshake would legitimately move several chunks of one.
  Cfg.StealHalf = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 60;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        for (int I = 0; I < 60; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksStolen, S.StealBatches)
      << "StealBatch=1 must hand over exactly one task per handshake";
  EXPECT_EQ(S.TasksServiced, S.TasksStolen);
}

TEST(Scheduler, BatchesRespectTheConfiguredCap) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 3;
  // Fixed-batch baseline: StealBatch caps the whole handshake (under
  // steal-half it is only the chunk size). Shedding off so every
  // migration goes through the capped handshake under test.
  Cfg.StealHalf = false;
  Cfg.ShedThreshold = 0;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  EXPECT_EQ(RT.scheduler().stealBatchLimit(), 3u);
  static std::atomic<int> Remaining;
  Remaining = 60;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        for (int I = 0; I < 60; ++I)
          VP.spawn({[](Runtime &, VProc &, Task) { Remaining.fetch_sub(1); },
                    nullptr, Value::nil(), 0, 0});
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.StealBatches, 0u);
  EXPECT_LE(S.TasksStolen, S.StealBatches * 3)
      << "no handshake may exceed the StealBatch cap";
  EXPECT_GT(S.meanStealBatch(), 1.0)
      << "a deep victim queue must yield multi-task batches";
}

//===----------------------------------------------------------------------===//
// Idle ladder
//===----------------------------------------------------------------------===//

TEST(Scheduler, IdleVProcsParkAndAccountTheTime) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  RT.run(
      [](Runtime &, VProc &, void *) {
        // No work spawned: the three workers descend the full ladder
        // (generous window so heavily loaded CI hosts still park).
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.Parks, 0u) << "idle workers must reach the park rung";
  EXPECT_GT(S.ParkNanos, 0u);
  EXPECT_GT(S.FailedStealRounds, 0u);
}

//===----------------------------------------------------------------------===//
// ParkLot doorbells (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(Doorbell, RingWakesExactlyTheRingedNode) {
  ParkLot Lot(2);
  std::atomic<int> Woken0{-1}, Woken1{-1};
  std::atomic<bool> Ready0{false}, Ready1{false};

  std::thread P0([&] {
    ParkLot::Token T = Lot.prepare(0);
    Ready0.store(true);
    Woken0.store(Lot.park(0, T, std::chrono::milliseconds(2000)) ? 1 : 0);
  });
  std::thread P1([&] {
    ParkLot::Token T = Lot.prepare(1);
    Ready1.store(true);
    // This parker must NOT be woken by the node-0 ring: it runs out its
    // backstop instead.
    Woken1.store(Lot.park(1, T, std::chrono::milliseconds(600)) ? 1 : 0);
  });

  // Wait until both are registered (a ring between prepare and park is
  // fine -- the epoch snapshot catches it), then ring node 0 only.
  while (!Ready0.load() || !Ready1.load())
    std::this_thread::yield();
  Lot.ring(0);
  P0.join();
  P1.join();
  EXPECT_EQ(Woken0.load(), 1) << "ringed node must wake by ring";
  EXPECT_EQ(Woken1.load(), 0) << "other node must run out its backstop";
}

TEST(Doorbell, BroadcastWakesAllNodes) {
  constexpr unsigned Nodes = 4;
  ParkLot Lot(Nodes);
  std::atomic<unsigned> Rung{0};
  std::vector<std::thread> Parkers;
  for (unsigned N = 0; N < Nodes; ++N) {
    Parkers.emplace_back([&, N] {
      ParkLot::Token T = Lot.prepare(N);
      if (Lot.park(N, T, std::chrono::milliseconds(2000)))
        Rung.fetch_add(1);
    });
  }
  for (unsigned N = 0; N < Nodes; ++N)
    while (Lot.parkedOn(N) == 0)
      std::this_thread::yield();
  Lot.ringBroadcast();
  for (std::thread &P : Parkers)
    P.join();
  EXPECT_EQ(Rung.load(), Nodes) << "a broadcast must wake every node";
}

TEST(Doorbell, NoLostWakeupWhenRingRacesPark) {
  // The protocol's contract: a ring sent after the parker's prepare()
  // fails the futex value check, and one sent before it is caught by the
  // parker's own condition re-check -- no interleaving sleeps through a
  // ring. A lost wake-up here would turn every round into a full 100 ms
  // backstop timeout, so the timeout count is the observable.
  constexpr int Rounds = 300;
  ParkLot Lot(1);
  std::atomic<int> Flag{0};
  std::atomic<int> Timeouts{0};

  std::thread Parker([&] {
    for (int I = 1; I <= Rounds; ++I) {
      while (Flag.load(std::memory_order_acquire) < I) {
        ParkLot::Token T = Lot.prepare(0);
        if (Flag.load(std::memory_order_acquire) >= I) {
          Lot.cancel(0, T);
          break;
        }
        if (!Lot.park(0, T, std::chrono::milliseconds(100)))
          Timeouts.fetch_add(1);
      }
    }
  });
  for (int I = 1; I <= Rounds; ++I) {
    Flag.store(I, std::memory_order_release);
    Lot.ring(0);
    // Lock-step: let the parker consume round I before round I+1, so
    // every round really exercises a fresh park/ring race.
    while (Flag.load(std::memory_order_acquire) == I &&
           Lot.parkedOn(0) == 0 && I < Rounds)
      std::this_thread::yield();
  }
  Parker.join();
  // A scheduling stall can time out the odd round (the ring arrives
  // while the parker is descheduled before prepare); systematic losses
  // would time out nearly all of them.
  EXPECT_LT(Timeouts.load(), Rounds / 4)
      << "rings racing parks must not be lost";
}

TEST(Scheduler, SpawnRingsDoorbellsAndWorkCompletes) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 200;
  RT.run(
      [](Runtime &RT2, VProc &VP, void *) {
        // Let a worker descend to the park rung first, so the spawn
        // rings below have a parked vproc to wake.
        while (RT2.parkLot().parkedOn(0) == 0 &&
               RT2.parkLot().parkedOn(1) == 0)
          std::this_thread::yield();
        static JoinCounter Join;
        for (int I = 0; I < 200; ++I) {
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task) {
                      Remaining.fetch_sub(1);
                      Join.sub();
                    },
                    nullptr, Value::nil(), 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);
  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.RingsSent, 0u) << "every spawn attempts a doorbell ring";
  EXPECT_GT(S.Parks, 0u);
}

TEST(Scheduler, LadderBaselineDisablesRings) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.UseDoorbells = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  EXPECT_FALSE(RT.scheduler().doorbells());
  static std::atomic<int64_t> Sum;
  Sum = 0;
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 512, 4,
            [](Runtime &, VProc &, int64_t Lo, int64_t Hi, void *) {
              Sum.fetch_add(Hi - Lo);
            },
            nullptr);
      },
      nullptr);
  EXPECT_EQ(Sum.load(), 512);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.RingsSent, 0u) << "the ladder baseline never rings";
  EXPECT_EQ(S.RingWakeups, 0u);
}

//===----------------------------------------------------------------------===//
// Spawn affinity
//===----------------------------------------------------------------------===//

TEST(Scheduler, PopForStealPrefersThiefAffineTasks) {
  // 4 vprocs on uniform(2, 2): vprocs 0/2 on node 0, vprocs 1/3 on
  // node 1. Queue mixed-affinity tasks on vproc 0 (its owner thread is
  // this one, between runs) and pop for a node-1 thief.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  VProc &VP = RT.vproc(0);
  ASSERT_EQ(VP.node(), 0u);
  ASSERT_EQ(RT.vproc(1).node(), 1u);

  const NodeId Hints[6] = {1, Task::NoAffinity, 0, 1, Task::NoAffinity, 0};
  for (int I = 0; I < 6; ++I) {
    Task T = trivialTask();
    T.A = I;
    T.Affinity = Hints[I];
    VP.spawn(T);
  }

  // A node-1 thief gets the node-1-hinted tasks first, then unhinted.
  Task Out[StealRequest::MaxBatch];
  unsigned Matches = 0;
  unsigned Got = VP.popForSteal(/*ThiefNode=*/1, 3, Out, &Matches);
  ASSERT_EQ(Got, 3u);
  EXPECT_EQ(Matches, 2u);
  EXPECT_EQ(Out[0].A, 0); // hinted at node 1, oldest
  EXPECT_EQ(Out[1].A, 3); // hinted at node 1
  EXPECT_EQ(Out[2].A, 1); // unhinted

  // Work conservation: with no matching or unhinted tasks left, a
  // node-1 thief still gets the node-0-hinted leftovers.
  Got = VP.popForSteal(/*ThiefNode=*/1, 3, Out, &Matches);
  ASSERT_EQ(Got, 3u);
  EXPECT_EQ(Matches, 0u);
  EXPECT_EQ(Out[0].A, 4); // unhinted beats hinted-elsewhere
  EXPECT_EQ(Out[1].A, 2); // hinted at node 0, oldest
  EXPECT_EQ(Out[2].A, 5);
  EXPECT_EQ(VP.queueDepth(), 0u);
}

TEST(Scheduler, AffinityTasksFlowToTheirNode) {
  // End-to-end: tasks hinted at node 1 end up running there when node 1
  // has idle vprocs. The spawner never runs its own queue (it blocks in
  // joinWait only after a final unhinted task), so every hinted task is
  // stolen; the affinity-aware handshake routes them.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  static std::atomic<int> Total;
  Total = 0;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        for (int I = 0; I < 64; ++I) {
          Join.add();
          Task T{[](Runtime &, VProc &, Task) {
                   Total.fetch_add(1);
                   Join.sub();
                 },
                 nullptr, Value::nil(), 0, 0};
          T.Affinity = 1;
          VP.spawn(T);
          // Brief pause so thieves drain the queue through handshakes
          // rather than the spawner running everything locally.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        VP.joinWait(Join);
      },
      nullptr);
  EXPECT_EQ(Total.load(), 64);
  SchedStats S = RT.aggregateSchedStats();
  if (S.TasksStolen > 0) {
    EXPECT_GT(S.AffinityHandoffs, 0u)
        << "stolen hinted tasks must register affinity-matched handoffs";
  }
}

//===----------------------------------------------------------------------===//
// Handshake hammer (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(Scheduler, HandshakeHammer) {
  // Hammer the StealRequest protocol from 8 vprocs at once: a fine-grain
  // parallelFor keeps every vproc both stealing and being stolen from,
  // then an environment-carrying spawn storm checks that batched
  // promotion delivers intact environments. The release/acquire pairs
  // documented on StealRequest are exactly what TSan checks here.
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.StealBatch = 4;
  // Keep every migration on the steal path: a shed parent would not
  // count toward TasksStolen and break the >= Parents assertion below.
  // (Steal-half stays on, so the deep spawner queue exercises the
  // chunked Filled/Consumed protocol under TSan.)
  Cfg.ShedThreshold = 0;
  Runtime RT(Cfg, Topology::uniform(4, 2));

  constexpr int Parents = 250, Children = 3;
  static std::atomic<int> Remaining;
  Remaining = Parents * (1 + Children);

  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        // The spawner never runs its own tasks: every parent must be
        // stolen. Parents spawn children from whatever vproc ran them,
        // so workers become victims of each other too.
        for (int I = 0; I < Parents; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 8));
          VP.spawn({[](Runtime &, VProc &VP2, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(8));
                      RootScope Inner(VP2.heap());
                      for (int C = 0; C < Children; ++C) {
                        Ref<> CEnv =
                            Inner.root(makeIntList(VP2.heap(), 8));
                        VP2.spawn({[](Runtime &, VProc &, Task CT) {
                                     EXPECT_EQ(listSum(CT.Env),
                                               intListSum(8));
                                     Remaining.fetch_sub(1);
                                   },
                                   nullptr, CEnv, 0, 0});
                      }
                      Remaining.fetch_sub(1);
                    },
                    nullptr, Env, 0, 0});
        }
        while (Remaining.load() > 0) {
          VP.poll();
          std::this_thread::yield();
        }
      },
      nullptr);

  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksServiced, S.TasksStolen)
      << "every task a victim hands over is received by exactly one thief";
  EXPECT_GT(S.StealBatches, 0u);
  EXPECT_GE(S.TasksStolen, static_cast<uint64_t>(Parents))
      << "every parent task must have migrated off the spawner";
}

//===----------------------------------------------------------------------===//
// Load balancing: steal-half, victim-initiated shedding, adaptive
// patience (the rebalance tests; run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(Rebalance, StealHalfDrainsDeepQueueInChunks) {
  // One handshake against a deep queue must move ceil(k/2) tasks in
  // several mailbox chunks. Deterministic setup: load vproc 2 (the
  // thief's node-0 peer on uniform(2,2)) between runs, then drive one
  // stealAndRun from the test thread as vproc 0; vproc 2's worker
  // answers from its drain poll loop.
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 4;
  Cfg.ShedThreshold = 0; // the spawns below must stay on vproc 2
  Runtime RT(Cfg, Topology::uniform(2, 2));
  ASSERT_EQ(RT.vproc(2).node(), RT.vproc(0).node());
  ASSERT_TRUE(RT.scheduler().stealHalf());

  constexpr unsigned Deep = 40;
  for (unsigned I = 0; I < Deep; ++I)
    RT.vproc(2).spawn(trivialTask());
  ASSERT_EQ(RT.vproc(2).queueDepth(), Deep);

  ASSERT_TRUE(RT.scheduler().stealAndRun(RT.vproc(0)));
  SchedStats S = RT.vproc(0).schedStats();
  EXPECT_EQ(S.StealBatches, 1u);
  EXPECT_EQ(S.TasksStolen, (Deep + 1) / 2)
      << "steal-half must move half the queue through one handshake";
  EXPECT_EQ(S.StealChunks, (S.TasksStolen + 3) / 4)
      << "the transfer must arrive in StealBatch-sized chunks";
  EXPECT_EQ(RT.vproc(2).queueDepth(), Deep - S.TasksStolen);
  // One stolen task ran, the rest landed on the thief's queue.
  EXPECT_EQ(RT.vproc(0).queueDepth(), S.TasksStolen - 1);
}

TEST(Rebalance, FixedBatchBaselineCapsTheHandshake) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.StealBatch = 4;
  Cfg.StealHalf = false;
  Cfg.ShedThreshold = 0;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  for (unsigned I = 0; I < 40; ++I)
    RT.vproc(2).spawn(trivialTask());
  ASSERT_TRUE(RT.scheduler().stealAndRun(RT.vproc(0)));
  SchedStats S = RT.vproc(0).schedStats();
  EXPECT_EQ(S.TasksStolen, 4u);
  EXPECT_EQ(S.StealChunks, 1u);
  EXPECT_EQ(S.StealBatches, 1u);
}

TEST(Rebalance, LoadBoardAggregatesPerNodeDepth) {
  // uniform(2, 2), 4 vprocs: 0/2 on node 0, 1/3 on node 1.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  Scheduler &Sched = RT.scheduler();
  EXPECT_EQ(Sched.nodeDepth(0), 0u);
  EXPECT_EQ(Sched.nodeDepth(1), 0u);
  for (int I = 0; I < 3; ++I)
    RT.vproc(0).spawn(trivialTask());
  for (int I = 0; I < 2; ++I)
    RT.vproc(2).spawn(trivialTask());
  for (int I = 0; I < 5; ++I)
    RT.vproc(1).spawn(trivialTask());
  EXPECT_EQ(Sched.nodeDepth(0), 5u) << "node 0 = vproc 0 + vproc 2";
  EXPECT_EQ(Sched.nodeDepth(1), 5u) << "node 1 = vproc 1";
  while (RT.vproc(0).runOneLocal() || RT.vproc(1).runOneLocal() ||
         RT.vproc(2).runOneLocal())
    ;
  EXPECT_EQ(Sched.nodeDepth(0), 0u);
  EXPECT_EQ(Sched.nodeDepth(1), 0u);
}

TEST(Rebalance, NeverShedsBelowThreshold) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.ShedThreshold = 8;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  ParkLot &Lot = RT.parkLot();
  // Force node 1 to look parked and starved (a registered waiter that
  // never sleeps), so the *only* thing gating a shed is the threshold.
  ParkLot::Token FakeWaiter = Lot.prepare(1);
  for (int I = 0; I < 7; ++I)
    RT.vproc(0).spawn(trivialTask());
  EXPECT_EQ(RT.vproc(0).schedStats().TasksShed, 0u)
      << "a queue below ShedThreshold must never shed";
  EXPECT_EQ(Lot.shedDepth(1), 0u);
  // The eighth spawn crosses the threshold: ceil(8/2) tasks move.
  RT.vproc(0).spawn(trivialTask());
  SchedStats S = RT.vproc(0).schedStats();
  EXPECT_EQ(S.ShedBatches, 1u);
  EXPECT_EQ(S.TasksShed, 4u);
  EXPECT_EQ(Lot.shedDepth(1), 4u);
  EXPECT_EQ(RT.vproc(0).queueDepth(), 4u);
  Lot.cancel(1, FakeWaiter);
  // Drain the bay from a node-1 vproc so nothing leaks into teardown
  // accounting (claims are an owner-thread operation; vproc 1's worker
  // is drain-idling and never claims between runs).
  while (RT.scheduler().claimShedAndRun(RT.vproc(1)))
    ;
  while (RT.vproc(1).runOneLocal())
    ;
  EXPECT_EQ(Lot.shedDepth(1), 0u);
  EXPECT_EQ(RT.vproc(1).schedStats().ShedTasksClaimed, 4u);
}

TEST(Rebalance, ShedThresholdZeroDisablesShedding) {
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.ShedThreshold = 0;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  ParkLot::Token FakeWaiter = RT.parkLot().prepare(1);
  for (int I = 0; I < 64; ++I)
    RT.vproc(0).spawn(trivialTask());
  RT.parkLot().cancel(1, FakeWaiter);
  SchedStats S = RT.vproc(0).schedStats();
  EXPECT_EQ(S.TasksShed, 0u);
  EXPECT_EQ(S.ShedBatches, 0u);
  EXPECT_EQ(S.ShedTargetMisses, 0u) << "threshold 0 never even looks";
  EXPECT_EQ(RT.parkLot().shedDepth(1), 0u);
  while (RT.vproc(0).runOneLocal())
    ;
}

TEST(Rebalance, ShedRespectsAffinityHints) {
  // popForShed's class order: hinted-at-target, un-hinted, hinted at
  // some other remote node, and hinted-local strictly last.
  Runtime RT(testRuntimeConfig(8), Topology::uniform(4, 2));
  VProc &VP = RT.vproc(0);
  ASSERT_EQ(VP.node(), 0u);

  const NodeId Hints[8] = {0,  Task::NoAffinity, 2, 1,
                           0,  Task::NoAffinity, 3, 1};
  for (int I = 0; I < 8; ++I) {
    Task T = trivialTask();
    T.A = I;
    T.Affinity = Hints[I];
    VP.spawn(T);
  }

  // Shed 4 to node 1: both node-1-hinted tasks first, then the two
  // un-hinted ones -- and NOT the node-0-hinted tasks, which sit ahead
  // of them in queue order.
  Task Out[MaxShedBatch];
  unsigned Got = VP.popForShed(/*TargetNode=*/1, 4, Out);
  ASSERT_EQ(Got, 4u);
  EXPECT_EQ(Out[0].A, 3); // hinted at target, oldest
  EXPECT_EQ(Out[1].A, 7); // hinted at target
  EXPECT_EQ(Out[2].A, 1); // un-hinted, oldest
  EXPECT_EQ(Out[3].A, 5); // un-hinted

  // Next shed: other-remote-hinted (nodes 2, 3) go before local-hinted.
  Got = VP.popForShed(/*TargetNode=*/1, 2, Out);
  ASSERT_EQ(Got, 2u);
  EXPECT_EQ(Out[0].A, 2); // hinted at node 2
  EXPECT_EQ(Out[1].A, 6); // hinted at node 3

  // Only local-hinted tasks remain: work conservation still sheds them.
  Got = VP.popForShed(/*TargetNode=*/1, 2, Out);
  ASSERT_EQ(Got, 2u);
  EXPECT_EQ(Out[0].A, 0);
  EXPECT_EQ(Out[1].A, 4);
  EXPECT_EQ(VP.queueDepth(), 0u);
}

TEST(Rebalance, StarvedNodePickOnAmdTopology) {
  // The 48-core AMD machine, 16 vprocs: vprocs V and V+8 on node V.
  // Load every node except node 3, register a (never-sleeping) waiter
  // on 3, and the shed target must be exactly the starved node.
  RuntimeConfig Cfg = testRuntimeConfig(16);
  Cfg.ShedThreshold = 0; // the loading spawns themselves must not shed
  Runtime RT(Cfg, Topology::amdMagnyCours48());
  ParkLot &Lot = RT.parkLot();
  for (unsigned V = 0; V < 16; ++V) {
    if (RT.vproc(V).node() == 3)
      continue;
    for (int I = 0; I < 2; ++I)
      RT.vproc(V).spawn(trivialTask());
  }
  // Make the would-be shedder deep enough that loaded nodes (depth 4)
  // fail the starvation test (load * 2 >= depth) but an empty node 3
  // passes it.
  for (int I = 0; I < 16; ++I)
    RT.vproc(0).spawn(trivialTask());

  // Register waiters on both the empty node 3 and the loaded node 5:
  // "most starved" must pick the empty one no matter which other nodes'
  // workers happen to be parked at this instant (every loaded node
  // carries board depth >= 4 and loses the min to node 3's 0).
  ParkLot::Token Waiter3 = Lot.prepare(3);
  ParkLot::Token Waiter5 = Lot.prepare(5);
  for (int Trial = 0; Trial < 50; ++Trial)
    EXPECT_EQ(RT.scheduler().pickShedTarget(RT.vproc(0)), 3u)
        << "the most-starved parked node must win";
  Lot.cancel(3, Waiter3);
  Lot.cancel(5, Waiter5);
  for (unsigned V = 0; V < 16; ++V)
    while (RT.vproc(V).runOneLocal())
      ;
}

TEST(Rebalance, AdaptivePatienceStaysWithinBounds) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 16;
  Cfg.RemoteStealPatienceMin = 4;
  Cfg.RemoteStealPatienceMax = 64;
  Cfg.AdaptivePatience = true;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  ASSERT_TRUE(Sched.adaptivePatience());
  VProc &Thief = RT.vproc(0);
  EXPECT_EQ(Sched.patienceOf(0), 16u);

  // A dry world: every round fails, so windows keep halving the
  // patience until it pins at the lower bound -- never below.
  for (int I = 0; I < 400; ++I) {
    EXPECT_FALSE(Sched.stealAndRun(Thief));
    EXPECT_GE(Sched.patienceOf(0), 4u);
    EXPECT_LE(Sched.patienceOf(0), 64u);
  }
  EXPECT_EQ(Sched.patienceOf(0), 4u) << "dry rounds must pin at Min";
  SchedStats S = Thief.schedStats();
  EXPECT_GT(S.PatienceDrops, 0u);
  EXPECT_EQ(S.PatienceRaises, 0u);

  // A fed neighborhood: vproc 4 (same node) always has work, so every
  // round succeeds and the patience doubles up to -- never past -- Max.
  for (int I = 0; I < 400; ++I) {
    RT.vproc(4).spawn(trivialTask());
    EXPECT_TRUE(Sched.stealAndRun(Thief));
    EXPECT_LE(Sched.patienceOf(0), 64u);
    while (Thief.runOneLocal())
      ;
  }
  EXPECT_EQ(Sched.patienceOf(0), 64u) << "fed rounds must pin at Max";
  EXPECT_GT(Thief.schedStats().PatienceRaises, 0u);
}

TEST(Rebalance, FixedPatienceBaselineNeverAdapts) {
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.RemoteStealPatience = 16;
  Cfg.AdaptivePatience = false;
  Runtime RT(Cfg, Topology::uniform(4, 2));
  Scheduler &Sched = RT.scheduler();
  EXPECT_FALSE(Sched.adaptivePatience());
  for (int I = 0; I < 200; ++I) {
    Sched.stealAndRun(RT.vproc(0));
    EXPECT_EQ(Sched.patienceOf(0), 16u);
  }
  SchedStats S = RT.vproc(0).schedStats();
  EXPECT_EQ(S.PatienceDrops, 0u);
  EXPECT_EQ(S.PatienceRaises, 0u);
}

TEST(Rebalance, ShedBatchFlowsToStarvedNode) {
  // End-to-end: a skewed producer on node 0 bursts deep queues while
  // node 1 idles; shed batches must arrive through node 1's bay and be
  // claimed there. A pinned waiter on node 1 makes the target choice
  // deterministic even when the real workers are mid-wake.
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.ShedThreshold = 16;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  ParkLot::Token FakeWaiter = RT.parkLot().prepare(1);
  static std::atomic<int> Remaining;
  Remaining = 240;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        for (int B = 0; B < 8; ++B) {
          // Let workers drain and park between bursts.
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          for (int I = 0; I < 30; ++I) {
            Join.add();
            VP.spawn({[](Runtime &, VProc &, Task) {
                        Remaining.fetch_sub(1);
                        Join.sub();
                      },
                      &Join, Value::nil(), 0, 0});
          }
        }
        VP.joinWait(Join);
      },
      nullptr);
  RT.parkLot().cancel(1, FakeWaiter);
  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_GT(S.TasksShed, 0u) << "deep bursts against an idle node must shed";
  EXPECT_EQ(S.ShedTasksClaimed, S.TasksShed)
      << "every shed task must be claimed (all work completed)";
  EXPECT_GT(S.ShedBatches, 0u);
  EXPECT_EQ(RT.parkLot().shedDepth(0), 0u);
  EXPECT_EQ(RT.parkLot().shedDepth(1), 0u);
}

TEST(Rebalance, RemoteBayClaimUnlocksWithPatience) {
  // Bay work conservation: a batch shed toward node 1 must be
  // reachable by a node-0 vproc once its failed steal rounds pass one
  // patience -- the rescue path for a batch whose target node went
  // busy or blocked after the shed.
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.ShedThreshold = 8;
  Cfg.RemoteStealPatience = 16;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  ParkLot &Lot = RT.parkLot();
  ParkLot::Token FakeWaiter = Lot.prepare(1);
  for (int I = 0; I < 8; ++I)
    RT.vproc(0).spawn(trivialTask());
  Lot.cancel(1, FakeWaiter);
  ASSERT_EQ(Lot.shedDepth(1), 4u);

  // vproc 2 (node 0): own bay empty, no failed rounds yet -- the
  // remote bay stays locked.
  VProc &Rescuer = RT.vproc(2);
  EXPECT_FALSE(RT.scheduler().claimShedAndRun(Rescuer));
  EXPECT_EQ(Lot.shedDepth(1), 4u);

  // Drain vproc 0 so every steal round genuinely fails, run the rounds
  // out, and the remote bay opens on the same terms as remote victims.
  while (RT.vproc(0).runOneLocal())
    ;
  bool Claimed = false;
  for (int I = 0; I < 200 && !Claimed; ++I) {
    RT.scheduler().stealAndRun(Rescuer);
    Claimed = RT.scheduler().claimShedAndRun(Rescuer);
  }
  EXPECT_TRUE(Claimed) << "patience-expired vprocs must rescue remote bays";
  EXPECT_EQ(Lot.shedDepth(1), 0u);
  EXPECT_EQ(Rescuer.schedStats().ShedTasksClaimed, 4u);
  while (Rescuer.runOneLocal())
    ;
}

TEST(Rebalance, BaselineKnobsRestorePriorStatsShape) {
  // ShedThreshold=0 + AdaptivePatience=false + StealHalf=false is the
  // PR 4 scheduler: every new counter must stay at zero (and chunks
  // must degenerate to one per handshake).
  RuntimeConfig Cfg = testRuntimeConfig(4);
  Cfg.ShedThreshold = 0;
  Cfg.AdaptivePatience = false;
  Cfg.StealHalf = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));
  static std::atomic<int> Remaining;
  Remaining = 300;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        static JoinCounter Join;
        for (int I = 0; I < 300; ++I) {
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task) {
                      Remaining.fetch_sub(1);
                      Join.sub();
                    },
                    &Join, Value::nil(), 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);
  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.TasksShed, 0u);
  EXPECT_EQ(S.ShedBatches, 0u);
  EXPECT_EQ(S.ShedEnvBytes, 0u);
  EXPECT_EQ(S.ShedTargetMisses, 0u);
  EXPECT_EQ(S.ShedClaims, 0u);
  EXPECT_EQ(S.ShedTasksClaimed, 0u);
  EXPECT_EQ(S.PatienceRaises, 0u);
  EXPECT_EQ(S.PatienceDrops, 0u);
  EXPECT_EQ(S.StealChunks, S.StealBatches)
      << "fixed-batch handshakes are exactly one chunk each";
}

TEST(Rebalance, LoadBoardTeardownHammer) {
  // The queueDepth lifetime protocol under TSan: external threads read
  // the load board (and raw depths) continuously across run() epochs
  // and the between-runs drain, stopping before ~Runtime -- the
  // documented contract for any cross-thread depth reader.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reads{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 2; ++T) {
    Readers.emplace_back([&] {
      uint64_t Sink = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        for (NodeId N = 0; N < 2; ++N)
          Sink += RT.scheduler().nodeDepth(N);
        for (unsigned V = 0; V < 4; ++V)
          Sink += RT.vproc(V).queueDepth();
        Reads.fetch_add(1, std::memory_order_relaxed);
      }
      if (Sink == ~0ull)
        std::abort(); // keep the reads observable
    });
  }
  for (int Run = 0; Run < 3; ++Run) {
    static std::atomic<int> Remaining;
    Remaining = 400;
    RT.run(
        [](Runtime &, VProc &VP, void *) {
          static JoinCounter Join;
          for (int I = 0; I < 400; ++I) {
            Join.add();
            VP.spawn({[](Runtime &, VProc &, Task) {
                        Remaining.fetch_sub(1);
                        Join.sub();
                      },
                      &Join, Value::nil(), 0, 0});
          }
          VP.joinWait(Join);
        },
        nullptr);
    EXPECT_EQ(Remaining.load(), 0);
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &R : Readers)
    R.join();
  EXPECT_GT(Reads.load(), 0u);
}

TEST(Rebalance, ShedHammer) {
  // Everything on at once -- shedding, steal-half chunking, adaptive
  // patience -- under an environment-carrying spawn storm: the TSan
  // regression test for the publish/claim bay protocol and the chunked
  // Filled/Consumed handshake, plus end-to-end env integrity.
  RuntimeConfig Cfg = testRuntimeConfig(8);
  Cfg.StealBatch = 4;
  Cfg.ShedThreshold = 8;
  Runtime RT(Cfg, Topology::uniform(4, 2));

  constexpr int Tasks = 600;
  static std::atomic<int> Remaining;
  Remaining = Tasks;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        static JoinCounter Join;
        for (int I = 0; I < Tasks; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 8));
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(8));
                      Remaining.fetch_sub(1);
                      Join.sub();
                    },
                    &Join, Env, 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);

  EXPECT_EQ(Remaining.load(), 0);
  SchedStats S = RT.aggregateSchedStats();
  EXPECT_EQ(S.ShedTasksClaimed, S.TasksShed)
      << "a completed run leaves no shed task unclaimed";
  EXPECT_EQ(S.TasksServiced, S.TasksStolen);
  for (NodeId N = 0; N < 4; ++N)
    EXPECT_EQ(RT.parkLot().shedDepth(N), 0u);
}

//===----------------------------------------------------------------------===//
// Stats plumbing
//===----------------------------------------------------------------------===//

TEST(Scheduler, ReportRendersSchedulerSection) {
  Runtime RT(testRuntimeConfig(4), Topology::uniform(2, 2));
  RT.run(
      [](Runtime &RT, VProc &VP, void *) {
        parallelFor(
            RT, VP, 0, 256, 4,
            [](Runtime &, VProc &, int64_t, int64_t, void *) {},
            nullptr);
      },
      nullptr);
  std::string Report = gcReportString(RT.world(), RT.aggregateSchedStats());
  EXPECT_NE(Report.find("scheduler:"), std::string::npos);
  EXPECT_NE(Report.find("node-local"), std::string::npos);
  EXPECT_NE(Report.find("parked"), std::string::npos);
}

TEST(Scheduler, StolenEnvBytesFlowIntoTrafficMatrix) {
  // Steals with heap environments must charge (victim node -> thief
  // node) in the traffic ledger.
  Runtime RT(testRuntimeConfig(4), Topology::uniform(4, 1));
  static JoinCounter Join;
  RT.run(
      [](Runtime &, VProc &VP, void *) {
        RootScope Scope(VP.heap());
        for (int I = 0; I < 100; ++I) {
          Ref<> Env = Scope.root(makeIntList(VP.heap(), 16));
          Join.add();
          VP.spawn({[](Runtime &, VProc &, Task T) {
                      EXPECT_EQ(listSum(T.Env), intListSum(16));
                      Join.sub();
                    },
                    nullptr, Env, 0, 0});
        }
        VP.joinWait(Join);
      },
      nullptr);
  SchedStats S = RT.aggregateSchedStats();
  if (S.StolenEnvBytes > 0) {
    // One vproc per node here, so stolen-env traffic is off-node.
    EXPECT_GT(RT.world().traffic().remoteBytes(), 0u);
  }
}
