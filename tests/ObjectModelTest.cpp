//===- tests/ObjectModelTest.cpp - header word and value tagging ----------===//
//
// Part of the manticore-gc project. Checks the Figure 1 header layout
// and the tagged-value representation, including parameterized sweeps
// over the ID and length ranges.
//
//===----------------------------------------------------------------------===//

#include "gc/ObjectModel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

using namespace manti;

TEST(HeaderWord, LowestBitAlwaysOne) {
  EXPECT_EQ(makeHeader(0, 0) & 1, 1u);
  EXPECT_EQ(makeHeader(123, 456) & 1, 1u);
  EXPECT_EQ(makeHeader(MaxObjectId, MaxObjectWords) & 1, 1u);
}

TEST(HeaderWord, ForwardPointersHaveBitClear) {
  alignas(8) Word Storage[2] = {0, 0};
  Word Fwd = reinterpret_cast<Word>(&Storage[1]);
  EXPECT_TRUE(isForwardWord(Fwd));
  EXPECT_FALSE(isHeaderWord(Fwd));
}

TEST(HeaderWord, ReservedIds) {
  EXPECT_EQ(IdRaw, 0);
  EXPECT_EQ(IdVector, 1);
  EXPECT_EQ(IdProxy, 2);
  EXPECT_LT(static_cast<unsigned>(FirstMixedId),
            static_cast<unsigned>(MaxObjectId));
}

TEST(HeaderWord, FifteenBitIdFortyEightBitLength) {
  // The extreme corners of Figure 1's field widths round-trip.
  Word H = makeHeader(MaxObjectId, MaxObjectWords);
  EXPECT_EQ(headerId(H), MaxObjectId);
  EXPECT_EQ(headerLenWords(H), MaxObjectWords);
}

/// Parameterized round-trip sweep over (id, length) pairs.
class HeaderRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint16_t, uint64_t>> {};

TEST_P(HeaderRoundTrip, IdAndLengthRoundTrip) {
  auto [Id, Len] = GetParam();
  Word H = makeHeader(Id, Len);
  EXPECT_TRUE(isHeaderWord(H));
  EXPECT_EQ(headerId(H), Id);
  EXPECT_EQ(headerLenWords(H), Len);
  EXPECT_EQ(objectFootprintWords(H), Len + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeaderRoundTrip,
    ::testing::Combine(
        ::testing::Values<uint16_t>(0, 1, 2, 3, 7, 100, 1024, 16383, 32767),
        ::testing::Values<uint64_t>(0, 1, 2, 63, 4096, (uint64_t(1) << 32),
                                    MaxObjectWords)));

TEST(ValueTag, NilIsNeitherIntNorPtr) {
  Value V = Value::nil();
  EXPECT_TRUE(V.isNil());
  EXPECT_FALSE(V.isInt());
  EXPECT_FALSE(V.isPtr());
}

TEST(ValueTag, PtrRoundTrip) {
  alignas(8) Word Storage[4] = {makeHeader(IdRaw, 3), 1, 2, 3};
  Word *Obj = &Storage[1];
  Value V = Value::fromPtr(Obj);
  EXPECT_TRUE(V.isPtr());
  EXPECT_FALSE(V.isInt());
  EXPECT_EQ(V.asPtr(), Obj);
}

TEST(ValueTag, Equality) {
  EXPECT_EQ(Value::fromInt(7), Value::fromInt(7));
  EXPECT_NE(Value::fromInt(7), Value::fromInt(8));
  EXPECT_EQ(Value::nil(), Value::nil());
}

TEST(ValueTag, WordIsPtrAgreesWithTags) {
  EXPECT_FALSE(wordIsPtr(Value::nil().bits()));
  EXPECT_FALSE(wordIsPtr(Value::fromInt(12).bits()));
  alignas(8) Word Storage[2] = {makeHeader(IdRaw, 1), 0};
  EXPECT_TRUE(wordIsPtr(Value::fromPtr(&Storage[1]).bits()));
}

/// Parameterized integer round-trip across the 63-bit range.
class IntRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(IntRoundTrip, TagUntag) {
  int64_t I = GetParam();
  Value V = Value::fromInt(I);
  EXPECT_TRUE(V.isInt());
  EXPECT_FALSE(V.isPtr());
  EXPECT_EQ(V.asInt(), I);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntRoundTrip,
    ::testing::Values(int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                      int64_t(-42), int64_t(1) << 40, -(int64_t(1) << 40),
                      (int64_t(1) << 62) - 1, -(int64_t(1) << 62)));

TEST(ObjectAccess, HeaderOf) {
  alignas(8) Word Storage[3] = {makeHeader(IdVector, 2), 0, 0};
  Word *Obj = &Storage[1];
  EXPECT_EQ(headerOf(Obj), Storage[0]);
  headerOf(Obj) = makeHeader(IdVector, 2);
  EXPECT_EQ(headerId(headerOf(Obj)), IdVector);
}
