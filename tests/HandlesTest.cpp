//===- tests/HandlesTest.cpp - typed RAII-rooted handle API tests ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the mutator-facing handle layer (gc/Handles.h): handle
/// survival across forced minor/major/global collections with StressGC
/// enabled (a minor collection on *every* allocation), typed field
/// access after promotion, and ObjectType descriptor registration
/// round-trips against the ObjectDescriptorTest expectations.
///
//===----------------------------------------------------------------------===//

#include "GCTestUtils.h"
#include "gc/Handles.h"
#include "gc/HeapVerifier.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <type_traits>
#include <vector>

using namespace manti;
using namespace manti::test;

namespace {

/// A small typed object: two scanned fields flanking raw fields, so the
/// descriptor's offset list is non-trivial ({0, 2}).
struct PairNode {
  Value First;
  int64_t Tag;
  Value Second;
  double Weight;
  static constexpr const char *GcName = "handles-pair";
  static constexpr auto GcPtrFields =
      ptrFields(&PairNode::First, &PairNode::Second);
};

/// Raw-only typed object (no scanned fields).
struct Stamp {
  int64_t A;
  int64_t B;
  static constexpr const char *GcName = "handles-stamp";
  static constexpr auto GcPtrFields = ptrFields();
};

GCConfig stressConfig() {
  GCConfig Cfg = smallConfig();
  Cfg.StressGC = true; // minor collection on every eligible allocation
  return Cfg;
}

struct HandleWorld : TestWorld {
  explicit HandleWorld(GCConfig Cfg = stressConfig()) : TestWorld(1, Cfg) {
    ObjectType<PairNode>::registerWith(World);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Compile-time surface: the footguns the redesign retires must not
// compile. These are satellite guarantees, checked as type traits.
//===----------------------------------------------------------------------===//

// A temporary handle must not decay into an unrooted Value...
static_assert(!std::is_convertible_v<Ref<Object>, Value>,
              "rvalue Ref -> Value snapshot must not compile");
// ...but a named (lvalue) handle may be snapshotted deliberately.
static_assert(std::is_convertible_v<Ref<Object> &, Value>,
              "lvalue Ref -> Value interop must stay available");
// Handles cannot be copied out of their scope.
static_assert(!std::is_copy_constructible_v<Ref<Object>> &&
                  !std::is_copy_assignable_v<Ref<Object>>,
              "handles are non-copyable");
static_assert(std::is_move_constructible_v<Ref<Object>>,
              "handles are movable within their scope");
//===----------------------------------------------------------------------===//
// ObjectType registration round-trips (ObjectDescriptorTest parity)
//===----------------------------------------------------------------------===//

TEST(ObjectTypeDSL, RegistrationMatchesDescriptorTable) {
  TestWorld TW;
  uint16_t Id = ObjectType<PairNode>::registerWith(TW.World);
  EXPECT_EQ(Id, FirstMixedId) << "first registration takes the first id";
  EXPECT_EQ(ObjectType<PairNode>::idIn(TW.World), Id);

  const ObjectDescriptor &D = TW.World.descriptors().lookup(Id);
  EXPECT_EQ(D.name(), "handles-pair");
  EXPECT_EQ(D.id(), Id);
  EXPECT_EQ(D.sizeWords(), 4u) << "four 8-byte members";
  EXPECT_EQ(D.numPtrFields(), 2u);
  EXPECT_EQ(D.ptrOffsets()[0], 0u);
  EXPECT_EQ(D.ptrOffsets()[1], 2u) << "Second sits after the raw Tag";
}

TEST(ObjectTypeDSL, RawOnlyTypeHasNoPtrFields) {
  TestWorld TW;
  uint16_t Id = ObjectType<Stamp>::registerWith(TW.World);
  const ObjectDescriptor &D = TW.World.descriptors().lookup(Id);
  EXPECT_EQ(D.sizeWords(), 2u);
  EXPECT_EQ(D.numPtrFields(), 0u);
}

TEST(ObjectTypeDSL, ScanVisitsExactlyTheValueMembers) {
  TestWorld TW;
  RootScope S(TW.heap());
  ObjectType<PairNode>::registerWith(TW.World);
  Ref<PairNode> P = alloc<PairNode>(
      S, PairNode{Value::fromInt(1), 7, Value::fromInt(2), 0.5});

  // Mirror ObjectDescriptorTest's scannedOffsets helper on a real
  // handle-allocated object.
  const ObjectDescriptor &D =
      TW.World.descriptors().lookup(ObjectType<PairNode>::idIn(TW.World));
  std::vector<unsigned> Offsets;
  struct Ctx {
    Word *Obj;
    std::vector<unsigned> *Out;
  } C{P.value().asPtr(), &Offsets};
  D.scan(
      C.Obj,
      [](Word *Slot, void *CtxPtr) {
        auto *C = static_cast<Ctx *>(CtxPtr);
        C->Out->push_back(static_cast<unsigned>(Slot - C->Obj));
      },
      &C);
  EXPECT_EQ(Offsets, (std::vector<unsigned>{0, 2}));
}

TEST(ObjectTypeDSL, PerWorldIds) {
  TestWorld A, B;
  ObjectType<Stamp>::registerWith(A.World);
  uint16_t IdA = ObjectType<Stamp>::idIn(A.World);
  EXPECT_FALSE(ObjectType<Stamp>::registeredIn(B.World))
      << "ids are world state, not globals";
  // Register something else first in B: the same C++ type may have a
  // different id in a different world.
  ObjectType<PairNode>::registerWith(B.World);
  ObjectType<Stamp>::registerWith(B.World);
  EXPECT_NE(ObjectType<Stamp>::idIn(B.World), IdA);
}

TEST(ObjectTypeDSL, IsInstance) {
  HandleWorld TW;
  RootScope S(TW.heap());
  Ref<PairNode> P =
      alloc<PairNode>(S, PairNode{Value::nil(), 0, Value::nil(), 0.0});
  EXPECT_TRUE(ObjectType<PairNode>::isInstance(TW.World, P.value()));
  Ref<> Vec = allocVectorOf(S, Value::fromInt(1));
  EXPECT_FALSE(ObjectType<PairNode>::isInstance(TW.World, Vec.value()));
}

//===----------------------------------------------------------------------===//
// Handle survival under StressGC (a collection on every allocation)
//===----------------------------------------------------------------------===//

TEST(HandlesStress, ListSurvivesPerAllocationCollections) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> List = S.root(Value::nil());
  // Every cons triggers a minor collection; the handle must track the
  // list through all of them.
  for (int64_t I = 0; I < 300; ++I)
    List = cons(H, Value::fromInt(I), List);
  EXPECT_EQ(listLength(List), 300);
  EXPECT_EQ(listSum(List), intListSum(300));
  VerifyResult R = verifyHeap(H);
  EXPECT_GT(R.LocalObjects + R.GlobalObjects, 0u);
}

TEST(HandlesStress, AllocRootsItsPointerArguments) {
  HandleWorld TW;
  RootScope S(TW.heap());
  Ref<> A = S.root(makeIntList(TW.heap(), 20));
  Ref<> B = S.root(makeIntList(TW.heap(), 10));
  // The allocation below forces a minor collection (StressGC) that moves
  // A's and B's referents; alloc must re-read the rooted slots when
  // initializing the new object's pointer fields.
  Ref<PairNode> P = alloc<PairNode>(S, PairNode{A, 42, B, 2.5});
  EXPECT_EQ(listSum(P.get<&PairNode::First>()), intListSum(20));
  EXPECT_EQ(listSum(P.get<&PairNode::Second>()), intListSum(10));
  EXPECT_EQ(P.get<&PairNode::Tag>(), 42);
  EXPECT_DOUBLE_EQ(P.get<&PairNode::Weight>(), 2.5);
}

TEST(HandlesStress, SurvivesForcedMinorMajorGlobal) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> List = S.root(makeIntList(H, 150));
  Ref<PairNode> P = alloc<PairNode>(S, PairNode{List, 1, List, 0.0});

  H.minorGC();
  EXPECT_EQ(listSum(List), intListSum(150));
  EXPECT_EQ(listSum(P.get<&PairNode::First>()), intListSum(150));

  H.majorGC();
  H.majorGC(); // age everything into the global heap
  EXPECT_EQ(listSum(List), intListSum(150));
  EXPECT_EQ(listSum(P.get<&PairNode::Second>()), intListSum(150));

  // Global collection: make global garbage, then collect it.
  for (int I = 0; I < 20; ++I) {
    RootScope Junk(H);
    Ref<> Dead = Junk.root(makeIntList(H, 200));
    promote(Junk, Dead);
  }
  TW.World.requestGlobalGC();
  H.safePoint();
  EXPECT_EQ(listSum(List), intListSum(150));
  EXPECT_EQ(listSum(P.get<&PairNode::First>()), intListSum(150));
  VerifyResult R = verifyHeap(H);
  EXPECT_GT(R.GlobalObjects, 0u);
}

TEST(HandlesStress, VectorOfRootsItsElements) {
  HandleWorld TW;
  RootScope S(TW.heap());
  Ref<> A = S.root(makeIntList(TW.heap(), 12));
  // allocVectorOf roots A across the stress collection it triggers.
  Ref<> Vec = allocVectorOf(S, Value::fromInt(5), A);
  EXPECT_EQ(vectorGet(Vec, 0).asInt(), 5);
  EXPECT_EQ(listSum(vectorGet(Vec, 1)), intListSum(12));
}

//===----------------------------------------------------------------------===//
// Typed field access after promotion
//===----------------------------------------------------------------------===//

TEST(Handles, TypedAccessAfterPromotion) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> Inner = S.root(makeIntList(H, 30));
  Ref<PairNode> Local =
      alloc<PairNode>(S, PairNode{Inner, 9, Value::fromInt(-3), 1.25});
  ASSERT_TRUE(isLocalTo(H, Local.value()));

  Ref<PairNode> Global = promote(S, Local);
  EXPECT_TRUE(isGlobal(TW.World, Global.value()));
  EXPECT_EQ(listSum(Global.get<&PairNode::First>()), intListSum(30));
  EXPECT_EQ(Global.get<&PairNode::Second>().asInt(), -3);
  EXPECT_EQ(Global.get<&PairNode::Tag>(), 9);
  EXPECT_DOUBLE_EQ(Global.get<&PairNode::Weight>(), 1.25);
  // The promoted copy's scanned fields must themselves be global (the
  // no-global-to-local-pointer invariant).
  EXPECT_TRUE(isGlobal(TW.World, Global.get<&PairNode::First>()));

  // In-place promotion updates the handle's own slot.
  Ref<PairNode> Again =
      alloc<PairNode>(S, PairNode{Inner, 11, Value::nil(), 0.0});
  promoteInPlace(S, Again);
  EXPECT_TRUE(isGlobal(TW.World, Again.value()));
  EXPECT_EQ(Again.get<&PairNode::Tag>(), 11);
}

TEST(Handles, RootAsChecksTheObjectType) {
  HandleWorld TW;
  RootScope S(TW.heap());
  Ref<PairNode> P =
      alloc<PairNode>(S, PairNode{Value::nil(), 3, Value::nil(), 0.0});
  // Round-trip through an untyped handle and back.
  Ref<> Untyped = S.root(P.value());
  Ref<PairNode> Back = S.rootAs<PairNode>(Untyped.value());
  EXPECT_EQ(Back.get<&PairNode::Tag>(), 3);
  // nil is an instance of every type.
  Ref<PairNode> Nil = S.rootAs<PairNode>(Value::nil());
  EXPECT_TRUE(Nil.isNil());
}

TEST(HandlesDeath, RootAsWrongTypeAborts) {
  HandleWorld TW;
  RootScope S(TW.heap());
  Ref<> Vec = allocVectorOf(S, Value::fromInt(1));
  EXPECT_DEATH(S.rootAs<PairNode>(Vec.value()), "not an instance");
}

//===----------------------------------------------------------------------===//
// RootScope mechanics and the StressGC shadow-stack check
//===----------------------------------------------------------------------===//

TEST(Handles, ScopesPopTheirSlots) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  std::size_t Before = H.numRegisteredRootSlots();
  {
    RootScope Outer(H);
    Outer.root(Value::fromInt(1));
    {
      RootScope Inner(H);
      Inner.root(Value::fromInt(2));
      Inner.root(Value::fromInt(3));
      EXPECT_EQ(H.numRegisteredRootSlots(), Before + 3);
      EXPECT_EQ(Inner.numSlots(), 2u);
    }
    EXPECT_EQ(H.numRegisteredRootSlots(), Before + 1);
  }
  EXPECT_EQ(H.numRegisteredRootSlots(), Before);
}

TEST(Handles, SlabGrowthAcrossNestedScopes) {
  // Scopes store their slots in fixed-capacity slabs (one inline,
  // overflow slabs chained on demand). Deeply nested scopes that each
  // overflow their inline slab must keep every level's registration
  // count exact -- and drop back to it level by level as the scopes
  // unwind, returning overflow slabs to the heap's recycling list.
  HandleWorld TW; // StressGC: every allocation collects
  VProcHeap &H = TW.heap();
  constexpr std::size_t PerScope = 3 * RootSlab::Capacity + 5;
  std::size_t Before = H.numRegisteredRootSlots();

  RootScope S1(H);
  for (std::size_t I = 0; I < PerScope; ++I)
    S1.root(cons(H, Value::fromInt(static_cast<int64_t>(I)), Value::nil()));
  EXPECT_EQ(S1.numSlots(), PerScope);
  EXPECT_EQ(H.numRegisteredRootSlots(), Before + PerScope);
  {
    RootScope S2(H);
    for (std::size_t I = 0; I < PerScope; ++I)
      S2.root(Value::fromInt(static_cast<int64_t>(I)));
    EXPECT_EQ(H.numRegisteredRootSlots(), Before + 2 * PerScope);
    {
      RootScope S3(H);
      for (std::size_t I = 0; I < PerScope; ++I)
        S3.root(makeIntList(H, 3));
      EXPECT_EQ(H.numRegisteredRootSlots(), Before + 3 * PerScope);
    }
    EXPECT_EQ(H.numRegisteredRootSlots(), Before + 2 * PerScope);
  }
  EXPECT_EQ(H.numRegisteredRootSlots(), Before + PerScope);
  // Everything the outer scope rooted survived the inner scopes' stress
  // collections (all of which enumerated the slab slots as roots).
  H.minorGC();
  H.majorGC();
  verifyHeap(H);
}

TEST(Handles, HandleStabilityWhileSlabsGrow) {
  // Growing a scope past its slab capacity chains *new* slabs; slots
  // already handed out must not move (Ref::slotAddr stays valid), unlike
  // a vector-backed design where growth reallocates.
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> Early = S.root(makeIntList(H, 7));
  Value *EarlyAddr = Early.slotAddr();
  std::vector<Value *> Addrs;
  std::vector<Ref<>> Held;
  Held.reserve(4 * RootSlab::Capacity);
  for (std::size_t I = 0; I < 4 * RootSlab::Capacity; ++I) {
    Held.push_back(S.root(cons(H, Value::fromInt(static_cast<int64_t>(I)),
                               Value::nil())));
    Addrs.push_back(Held.back().slotAddr());
  }
  EXPECT_EQ(Early.slotAddr(), EarlyAddr)
      << "slab growth must not move existing slots";
  for (std::size_t I = 0; I < Held.size(); ++I)
    EXPECT_EQ(Held[I].slotAddr(), Addrs[I]);
  // The slots are still registered and forwarded: collections move the
  // referents, the slots keep tracking them.
  H.minorGC();
  H.majorGC();
  EXPECT_EQ(listSum(Early), intListSum(7));
  for (std::size_t I = 0; I < Held.size(); ++I)
    EXPECT_EQ(vectorGet(Held[I], 0).asInt(), static_cast<int64_t>(I));
}

TEST(Handles, SwapExchangesValuesNotSlots) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> A = S.root(Value::fromInt(1));
  Ref<> B = S.root(Value::fromInt(2));
  Value *SlotA = A.slotAddr(), *SlotB = B.slotAddr();
  using std::swap;
  swap(A, B); // ADL picks the value-swapping overload
  EXPECT_EQ(A.asInt(), 2);
  EXPECT_EQ(B.asInt(), 1);
  EXPECT_EQ(A.slotAddr(), SlotA);
  EXPECT_EQ(B.slotAddr(), SlotB);
}

TEST(Handles, MoveAssignOverwritesTheSlotInPlace) {
  TestWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> A = S.root(Value::fromInt(1));
  Value *SlotA = A.slotAddr();
  A = S.root(Value::fromInt(2));
  EXPECT_EQ(A.slotAddr(), SlotA) << "assignment keeps the original slot";
  EXPECT_EQ(A.asInt(), 2);
}

TEST(HandlesDeath, StressGCCatchesStaleShadowSlot) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> Rooted = S.root(makeIntList(H, 5));
  // Deliberately capture an unrooted snapshot, let a collection move the
  // list, then register the stale copy: exactly the bug the old API
  // invited. The next allocation's shadow-stack sweep must abort.
  Value Stale = Rooted.value();
  H.minorGC();
  ASSERT_NE(Stale.bits(), Rooted.value().bits()) << "the list must move";
  S.slot(Stale);
  EXPECT_DEATH(H.allocRaw(nullptr, 8), "unrooted or stale");
}

TEST(Handles, EnvironmentVariableEnablesStress) {
  // GCConfig::StressGC is also driven by MANTI_STRESS_GC so CI can run
  // unmodified test binaries in stress mode.
  GCConfig Cfg = smallConfig();
  EXPECT_FALSE(Cfg.StressGC);
  const char *Prev = getenv("MANTI_STRESS_GC");
  std::string Saved = Prev ? Prev : "";
  setenv("MANTI_STRESS_GC", "1", 1);
  TestWorld TW(1, Cfg);
  // Restore rather than unset: in the CI stress job the variable is set
  // process-wide, and dropping it here would silently de-stress every
  // world a later test constructs.
  if (Prev)
    setenv("MANTI_STRESS_GC", Saved.c_str(), 1);
  else
    unsetenv("MANTI_STRESS_GC");
  EXPECT_TRUE(TW.World.config().StressGC);
}

TEST(Handles, VectorOfLeavesTheShadowStackConsistent) {
  // Regression: allocVectorOf's temporary element roots must be popped
  // before the result is rooted, or a dangling stack-array slot stays
  // registered after the call returns.
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> Leaf = S.root(makeIntList(H, 4));
  std::size_t ShadowBefore = H.ShadowStack.size();
  std::size_t SlotsBefore = S.numSlots();
  Ref<> Pair = allocVectorOf(S, Value::fromInt(1), Leaf);
  ASSERT_EQ(H.ShadowStack.size(), ShadowBefore)
      << "the temporary element roots must all be deregistered";
  ASSERT_EQ(S.numSlots(), SlotsBefore + 1)
      << "exactly the result handle's slot must remain";
  // The README's workload pattern: keep allocating in the same scope.
  // Under StressGC this collects, sweeping the whole shadow stack; a
  // leftover dangling registration would abort (or corrupt) here.
  Ref<> More = S.root(makeIntList(H, 8));
  EXPECT_EQ(listSum(More), intListSum(8));
  EXPECT_EQ(listSum(vectorGet(Pair, 1)), intListSum(4));
  EXPECT_EQ(vectorGet(Pair, 0).asInt(), 1);
}

//===----------------------------------------------------------------------===//
// VecRef<T>: the typed-vector face
//===----------------------------------------------------------------------===//

TEST(VecRef, TypedGetAndInit) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  // init-then-publish construction through the typed face.
  VecRef<> V = allocVec(S, 3);
  V.init(0, Value::fromInt(7));
  V.init(1, Value::fromInt(8));
  V.init(2, Value::fromInt(9));
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V.intAt(0), 7);
  EXPECT_EQ(V.at(2).asInt(), 9);
  // Static faces for raw-Value traversals.
  EXPECT_EQ(VecRef<>::getInt(V, 1), 8);
  EXPECT_TRUE(VecRef<>::get(V, 2).isInt());
}

TEST(VecRef, TypedElementReadIsChecked) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<PairNode> P =
      alloc<PairNode>(S, PairNode{Value::nil(), 5, Value::nil(), 0.5});
  Ref<> Vec = allocVectorOf(S, P);
  VecRef<PairNode> V = S.rootVector<PairNode>(Vec.value());
  Ref<PairNode> Elem = V.get(S, 0);
  EXPECT_EQ(Elem.get<&PairNode::Tag>(), 5);
}

TEST(VecRef, TraversalSlotSurvivesCollections) {
  // The cons-list traversal pattern: one rooted VecRef walked down the
  // list with `Cell = Cell.at(1)`. Under StressGC every allocation
  // collects, so the slot is being forwarded while the list is built
  // and while it is traversed.
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<> List = S.root(makeIntList(H, 20));
  H.minorGC(); // move the list at least once
  int64_t Sum = 0;
  VecRef<> Cell = S.rootVector(List.value());
  for (; !Cell.isNil(); Cell = Cell.at(1))
    Sum += Cell.intAt(0);
  EXPECT_EQ(Sum, intListSum(20));
  // Allocate mid-traversal too: the rooted slot must be forwarded.
  Sum = 0;
  Cell = List.value();
  for (; !Cell.isNil(); Cell = Cell.at(1)) {
    Sum += Cell.intAt(0);
    Ref<> Junk = S.root(makeIntList(H, 2)); // collects under stress
    (void)Junk;
  }
  EXPECT_EQ(Sum, intListSum(20));
}

TEST(VecRef, SwapExchangesValuesNotSlots) {
  // Pins the same move-semantics invariant Ref guards: the ADL swap
  // must exchange the slots' *values*; generic std::swap would
  // mis-compose the aliasing move-ctor with the value-copying
  // move-assign and drop one value.
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  VecRef<> A = allocVec(S, 1, Value::fromInt(1));
  VecRef<> B = allocVec(S, 1, Value::fromInt(2));
  Value *SlotA = A.slotAddr(), *SlotB = B.slotAddr();
  using std::swap;
  swap(A, B);
  EXPECT_EQ(A.intAt(0), 2);
  EXPECT_EQ(B.intAt(0), 1);
  EXPECT_EQ(A.slotAddr(), SlotA) << "swap exchanges values, not slots";
  EXPECT_EQ(B.slotAddr(), SlotB);
}

TEST(VecRefDeath, RootVectorRejectsNonVectors) {
  HandleWorld TW;
  VProcHeap &H = TW.heap();
  RootScope S(H);
  Ref<PairNode> P =
      alloc<PairNode>(S, PairNode{Value::nil(), 1, Value::nil(), 0.0});
  EXPECT_DEATH((void)S.rootVector(P.value()),
               "rootVector: value is not a vector object");
}
