//===- tests/SimTest.cpp - machine-model tests -----------------------------===//
//
// Part of the manticore-gc project. Besides engine unit tests, this file
// encodes the paper's qualitative evaluation claims (Section 4) as
// assertions over the simulated speedup curves, so a calibration change
// that breaks a figure's shape fails the suite.
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"
#include "sim/Speedup.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace manti;
using namespace manti::sim;

namespace {

double speedupAt(const SpeedupSeries &S, unsigned Threads) {
  for (std::size_t I = 0; I < S.Threads.size(); ++I)
    if (S.Threads[I] == Threads)
      return S.Speedup[I];
  ADD_FAILURE() << "thread count " << Threads << " not in series";
  return 0;
}

const SpeedupSeries &byName(const std::vector<SpeedupSeries> &All,
                            const char *Name) {
  for (const SpeedupSeries &S : All)
    if (S.Benchmark == Name)
      return S;
  ADD_FAILURE() << "no series " << Name;
  return All.front();
}

struct Figures {
  std::vector<SpeedupSeries> Fig4, Fig5, Fig6, Fig7;
  Figures() {
    SimMachine Amd = SimMachine::amd48();
    SimMachine Intel = SimMachine::intel32();
    Fig4 = speedupSweep(Intel, AllocPolicyKind::Local, AllocPolicyKind::Local,
                        intelThreadAxis());
    Fig5 = speedupSweep(Amd, AllocPolicyKind::Local, AllocPolicyKind::Local,
                        amdThreadAxis());
    Fig6 = speedupSweep(Amd, AllocPolicyKind::Interleaved,
                        AllocPolicyKind::Local, amdThreadAxis());
    Fig7 = speedupSweep(Amd, AllocPolicyKind::SingleNode,
                        AllocPolicyKind::Local, amdThreadAxis());
  }
};

const Figures &figures() {
  static Figures F;
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine basics
//===----------------------------------------------------------------------===//

TEST(SimEngine, Deterministic) {
  SimMachine M = SimMachine::amd48();
  WorkloadProfile W = profileSmvm();
  SimParams P;
  P.Threads = 24;
  double A = simulate(M, W, P).Seconds;
  double B = simulate(M, W, P).Seconds;
  EXPECT_DOUBLE_EQ(A, B);
}

TEST(SimEngine, OneThreadMatchesSerialWorkSum) {
  // With one thread there is no contention; time is at least the pure
  // CPU time and not absurdly above it.
  SimMachine M = SimMachine::intel32();
  WorkloadProfile W = profileDmm();
  SimParams P;
  P.Threads = 1;
  SimResult R = simulate(M, W, P);
  double CpuSeconds = 0;
  for (const PhaseSpec &Ph : W.Phases)
    CpuSeconds += (Ph.NumElems * (Ph.CpuCyclesPerElem +
                                  Ph.AllocBytesPerElem * P.GcCpuPerAllocByte) +
                   Ph.SeqSetupCycles) /
                  (M.CoreGHz * 1e9);
  CpuSeconds *= W.Repeats;
  EXPECT_GE(R.Seconds, CpuSeconds * 0.999);
  EXPECT_LE(R.Seconds, CpuSeconds * 3.0);
}

TEST(SimEngine, MoreThreadsNeverSlower) {
  SimMachine M = SimMachine::amd48();
  for (const WorkloadProfile &W : allProfiles()) {
    double Prev = 1e30;
    for (unsigned T : {1u, 2u, 4u, 8u, 16u, 32u, 48u}) {
      SimParams P;
      P.Threads = T;
      double S = simulate(M, W, P).Seconds;
      EXPECT_LE(S, Prev * 1.02) << W.Name << " at " << T << " threads";
      Prev = S;
    }
  }
}

TEST(SimEngine, DramTrafficFollowsPolicy) {
  SimMachine M = SimMachine::amd48();
  WorkloadProfile W = profileRaytracer();
  SimParams P;
  P.Threads = 16;
  P.Policy = AllocPolicyKind::SingleNode;
  SimResult R = simulate(M, W, P);
  double Node0 = R.NodeDramBytes[0], Others = 0;
  for (unsigned N = 1; N < M.Topo.numNodes(); ++N)
    Others += R.NodeDramBytes[N];
  EXPECT_GT(Node0, 0.0);
  EXPECT_NEAR(Others, 0.0, Node0 * 1e-9)
      << "single-node policy must put all DRAM traffic on node 0";

  P.Policy = AllocPolicyKind::Local;
  SimResult RL = simulate(M, W, P);
  unsigned NodesWithTraffic = 0;
  for (double B : RL.NodeDramBytes)
    NodesWithTraffic += (B > 1e6);
  EXPECT_GT(NodesWithTraffic, 1u)
      << "local policy spreads allocation traffic with the vprocs";
}

TEST(SimEngine, BusyFractionIsSane) {
  SimMachine M = SimMachine::intel32();
  SimParams P;
  P.Threads = 8;
  SimResult R = simulate(M, profileDmm(), P);
  EXPECT_GT(R.CpuBusyFraction, 0.5);
  EXPECT_LE(R.CpuBusyFraction, 1.0 + 1e-9);
}

TEST(SimEngine, SequentialPhaseUsesOneCore) {
  SimMachine M = SimMachine::amd48();
  WorkloadProfile W;
  W.Name = "seq-only";
  W.Regions = {{"r", 1024, PlacementKind::SharedByVProc0}};
  PhaseSpec Ph;
  Ph.Name = "seq";
  Ph.Sequential = true;
  Ph.NumElems = 1;
  Ph.CpuCyclesPerElem = 2.1e9; // exactly one second at 2.1 GHz
  W.Phases = {Ph};
  for (unsigned T : {1u, 8u, 48u}) {
    SimParams P;
    P.Threads = T;
    EXPECT_NEAR(simulate(M, W, P).Seconds, 1.0, 0.01)
        << "sequential work cannot speed up with threads";
  }
}

TEST(SimEngine, LinkTrafficOnlyWhenRemote) {
  SimMachine M = SimMachine::amd48();
  WorkloadProfile W = profileRaytracer();
  // One thread, local policy: everything is node-local, links idle.
  SimParams P;
  P.Threads = 1;
  P.Policy = AllocPolicyKind::Local;
  SimResult R = simulate(M, W, P);
  double LinkTotal = 0;
  for (double B : R.LinkBytes)
    LinkTotal += B;
  EXPECT_NEAR(LinkTotal, 0.0, 1.0) << "no remote traffic at one thread";

  // Single-node policy with threads on other nodes loads the links.
  P.Threads = 16;
  P.Policy = AllocPolicyKind::SingleNode;
  SimResult R2 = simulate(M, W, P);
  LinkTotal = 0;
  for (double B : R2.LinkBytes)
    LinkTotal += B;
  EXPECT_GT(LinkTotal, 1e6);
}

//===----------------------------------------------------------------------===//
// Workload profiles must keep the paper's input sizes
//===----------------------------------------------------------------------===//

TEST(WorkloadProfiles, PaperParametersEncoded) {
  // Section 4.1's inputs, guarded against calibration drift.
  WorkloadProfile Dmm = profileDmm();
  EXPECT_EQ(Dmm.Phases[0].NumElems, 600) << "600 x 600 matrices";
  EXPECT_DOUBLE_EQ(Dmm.Regions[0].Bytes, 600.0 * 600 * 8);

  WorkloadProfile Rt = profileRaytracer();
  EXPECT_EQ(Rt.Phases[0].NumElems, 512) << "512 x 512 image";

  WorkloadProfile Qs = profileQuicksort();
  EXPECT_DOUBLE_EQ(Qs.Regions[0].Bytes, 10e6 * 8) << "10,000,000 integers";

  WorkloadProfile Bh = profileBarnesHut();
  EXPECT_EQ(Bh.Phases[1].NumElems, 400000) << "400,000 particles";
  EXPECT_TRUE(Bh.Phases[0].Sequential) << "tree build is the serial phase";

  WorkloadProfile Sm = profileSmvm();
  EXPECT_EQ(Sm.Phases[0].NumElems, 16614) << "16,614-element vector";
  EXPECT_DOUBLE_EQ(Sm.Regions[0].Bytes, 1091362.0 * 16)
      << "1,091,362 matrix elements";

  EXPECT_EQ(allProfiles().size(), 5u);
}

TEST(WorkloadProfiles, SharedDataIsSharedPartitionedIsNot) {
  WorkloadProfile Sm = profileSmvm();
  EXPECT_EQ(Sm.Regions[0].Placement, PlacementKind::SharedByVProc0)
      << "the CSR matrix is the shared hot spot";
  EXPECT_EQ(Sm.Regions[2].Placement, PlacementKind::PartitionedFirstTouch)
      << "the output vector is first-touched by its writer";
  WorkloadProfile Bh = profileBarnesHut();
  EXPECT_EQ(Bh.Regions[0].Placement, PlacementKind::SharedByVProc0)
      << "the quadtree is built once and read by all";
}

//===----------------------------------------------------------------------===//
// Paper-shape assertions (Section 4.2 / 4.3)
//===----------------------------------------------------------------------===//

TEST(PaperShapes, Fig4IntelDmmAndRaytracerNearIdeal) {
  const auto &F = figures().Fig4;
  EXPECT_GT(speedupAt(byName(F, "Dense-Matrix-Multiply"), 32), 28.0);
  EXPECT_GT(speedupAt(byName(F, "Raytracer"), 32), 28.0);
}

TEST(PaperShapes, Fig4IntelOthersBendPast16ButImprove) {
  const auto &F = figures().Fig4;
  for (const char *Name : {"Quicksort", "Barnes-Hut", "SMVM"}) {
    const SpeedupSeries &S = byName(F, Name);
    double At16 = speedupAt(S, 16), At32 = speedupAt(S, 32);
    EXPECT_LT(At32, 28.0) << Name << " must fall short of ideal at 32";
    EXPECT_GT(At32, At16) << Name << " keeps improving past 16 threads";
  }
}

TEST(PaperShapes, Fig5AmdDmmAndRaytracerNearIdeal) {
  const auto &F = figures().Fig5;
  EXPECT_GT(speedupAt(byName(F, "Dense-Matrix-Multiply"), 48), 40.0);
  EXPECT_GT(speedupAt(byName(F, "Raytracer"), 48), 40.0);
}

TEST(PaperShapes, Fig5AmdQuicksortAndBarnesHutKneeAfter36) {
  const auto &F = figures().Fig5;
  for (const char *Name : {"Quicksort", "Barnes-Hut"}) {
    const SpeedupSeries &S = byName(F, Name);
    double At24 = speedupAt(S, 24), At36 = speedupAt(S, 36),
           At48 = speedupAt(S, 48);
    EXPECT_GT(At36, At24) << Name << " scales nicely to 36";
    double MarginalEfficiency = (At48 - At36) / 12.0;
    EXPECT_LT(MarginalEfficiency, 0.75)
        << Name << " takes only slight advantage of threads past 36";
  }
}

TEST(PaperShapes, Fig5AmdSmvmFlattensEarliest) {
  const auto &F = figures().Fig5;
  const SpeedupSeries &S = byName(F, "SMVM");
  double At24 = speedupAt(S, 24), At48 = speedupAt(S, 48);
  EXPECT_LT(At48, 16.0) << "SMVM is the least scalable on the AMD machine";
  EXPECT_LT(std::fabs(At48 - At24), 2.0) << "flat beyond 24 threads";
}

TEST(PaperShapes, Fig6LocalBeatsInterleavedExceptSmvmPast24) {
  const auto &Local = figures().Fig5;
  const auto &Inter = figures().Fig6;
  // "provides slightly better absolute performance at all processor
  // counts on all benchmarks except for SMVM in the interleaved strategy
  // at greater than 24 cores".
  for (const char *Name :
       {"Dense-Matrix-Multiply", "Raytracer", "Quicksort", "Barnes-Hut"}) {
    for (unsigned T : {1u, 8u, 24u, 48u}) {
      EXPECT_GE(speedupAt(byName(Local, Name), T) * 1.001,
                speedupAt(byName(Inter, Name), T))
          << Name << " at " << T;
    }
  }
  EXPECT_GT(speedupAt(byName(Inter, "SMVM"), 36),
            speedupAt(byName(Local, "SMVM"), 36))
      << "SMVM crossover above 24 cores";
  EXPECT_GT(speedupAt(byName(Inter, "SMVM"), 48),
            speedupAt(byName(Local, "SMVM"), 48));
}

TEST(PaperShapes, Fig7SingleNodeReasonableTo12ThenFails) {
  const auto &F = figures().Fig7;
  for (const SpeedupSeries &S : figures().Fig7) {
    double At12 = speedupAt(S, 12);
    EXPECT_GT(At12, 5.0) << S.Benchmark
                         << ": reasonable scalability until 12 cores";
    double At48 = speedupAt(S, 48);
    EXPECT_LT(At48, 20.0) << S.Benchmark
                          << ": the strategy fails past that point";
  }
  // The collapse shows as outright decline for the most
  // allocation-intensive benchmarks.
  const SpeedupSeries &Dmm = byName(F, "Dense-Matrix-Multiply");
  EXPECT_LT(speedupAt(Dmm, 48), speedupAt(Dmm, 24));
}

TEST(PaperShapes, IntelHandlesSmvmBetterThanAmd) {
  // Section 4.2: "the Intel machine's greater performance, particularly
  // on SMVM, is due to a smaller NUMA penalty".
  double IntelFrac =
      speedupAt(byName(figures().Fig4, "SMVM"), 32) / 32.0;
  double AmdFrac = speedupAt(byName(figures().Fig5, "SMVM"), 48) / 48.0;
  EXPECT_GT(IntelFrac, AmdFrac * 1.5);
}
