//===- examples/nbody.cpp - Barnes-Hut N-body simulation ------------------===//
//
// Part of the manticore-gc project.
//
// The paper's Barnes-Hut benchmark as an application: a Plummer-model
// cluster evolved for a few steps. The quadtree is built in the GC heap
// each iteration (the sequential phase) and promoted so every vproc can
// traverse it during the parallel force phase.
//
//===----------------------------------------------------------------------===//

#include "workloads/BarnesHut.h"

#include <cstdio>

using namespace manti;
using namespace manti::workloads;

int main(int Argc, char **Argv) {
  int64_t Bodies = Argc > 1 ? std::atoll(Argv[1]) : 5000;
  unsigned Iters = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 4;

  std::printf("manticore-gc n-body example (Barnes-Hut)\n");
  std::printf("========================================\n\n");

  RuntimeConfig Cfg;
  Cfg.NumVProcs = 4;
  Cfg.GC.LocalHeapBytes = 512 * 1024;
  Cfg.PinThreads = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));

  struct Args {
    BarnesHutParams P;
    BarnesHutResult Res;
  };
  static Args A;
  A.P.NumBodies = Bodies;
  A.P.Iterations = Iters;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *A = static_cast<Args *>(CtxP);
        A->Res = runBarnesHut(RT, VP, A->P);
      },
      &A);

  std::printf("evolved %lld bodies for %u steps in %.3f s\n",
              static_cast<long long>(Bodies), Iters, A.Res.Seconds);
  std::printf("  center of mass: (%+.6f, %+.6f)\n", A.Res.CenterOfMassX,
              A.Res.CenterOfMassY);
  std::printf("  kinetic energy: %.6f\n", A.Res.KineticEnergy);

  GCStats S = RT.world().aggregateStats();
  char Buf[32];
  std::printf("\ncollector work:\n");
  std::printf("  minor collections: %llu\n",
              static_cast<unsigned long long>(S.MinorPause.count()));
  std::printf("  tree promotions:   %llu\n",
              static_cast<unsigned long long>(S.PromoteCalls));
  manti::formatBytes(S.PromoteBytes, Buf, sizeof(Buf));
  std::printf("  promoted bytes:    %s (the shared quadtrees)\n", Buf);
  return 0;
}
