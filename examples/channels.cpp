//===- examples/channels.cpp - CML-style message passing ------------------===//
//
// Part of the manticore-gc project.
//
// Explicit concurrency (paper Section 2.1): two vprocs exchange lists
// over a synchronous channel. Every message is promoted to the global
// heap on send, and a blocked receiver parks its continuation behind an
// object proxy -- the paper's sanctioned global-to-local reference.
//
//===----------------------------------------------------------------------===//

#include "gc/Handles.h"
#include "runtime/Channel.h"
#include "runtime/Runtime.h"

#include <cstdio>

using namespace manti;

namespace {

Value cons(VProcHeap &H, Value Head, Value Tail) {
  RootScope S(H);
  Ref<> Cell = allocVectorOf(S, Head, Tail);
  return Cell.value();
}

Value makeList(VProcHeap &H, int64_t Lo, int64_t Hi) {
  RootScope S(H);
  Ref<> L = S.root(Value::nil());
  for (int64_t I = Hi; I >= Lo; --I)
    L = cons(H, Value::fromInt(I), L);
  return L.value();
}

int64_t listSum(Value L) {
  int64_t Sum = 0;
  for (; !L.isNil(); L = VecRef<>::get(L, 1))
    Sum += VecRef<>::getInt(L, 0);
  return Sum;
}

struct PingPong {
  Channel *Requests;
  Channel *Replies;
  int Rounds;
};

/// Echo server: receives a list, replies with its sum.
void serverTask(Runtime &, VProc &VP, Task T) {
  auto *PP = static_cast<PingPong *>(T.Ctx);
  for (int I = 0; I < PP->Rounds; ++I) {
    RootScope S(VP.heap());
    // Park with continuation data: the round number, kept local until
    // the wake-up resolves the proxy.
    Ref<> ContBack = S.root(Value::nil());
    Ref<> Msg = PP->Requests->recv(S, VP, Value::fromInt(I), &ContBack);
    std::printf("  server(vp%u): round %lld received list, sum=%lld\n",
                VP.id(), static_cast<long long>(ContBack.asInt()),
                static_cast<long long>(listSum(Msg)));
    PP->Replies->send(VP, Value::fromInt(listSum(Msg)));
  }
}

} // namespace

int main() {
  std::printf("manticore-gc channels example\n");
  std::printf("=============================\n\n");

  RuntimeConfig Cfg;
  Cfg.NumVProcs = 2;
  Cfg.GC.LocalHeapBytes = 128 * 1024;
  Cfg.GC.MinNurseryBytes = 16 * 1024;
  Cfg.GC.GlobalGCBytesPerVProc = 512 * 1024; // force global GCs mid-run
  Cfg.PinThreads = false;
  Runtime RT(Cfg, Topology::uniform(2, 1));

  Channel Requests(RT);
  Channel Replies(RT);
  static PingPong PP;
  PP = {&Requests, &Replies, 5};

  RT.run(
      [](Runtime &, VProc &VP, void *CtxP) {
        auto *PP = static_cast<PingPong *>(CtxP);
        VP.spawn({serverTask, PP, Value::nil(), 0, 0});
        for (int I = 0; I < PP->Rounds; ++I) {
          RootScope S(VP.heap());
          Ref<> Msg = S.root(makeList(VP.heap(), 1, 100 * (I + 1)));
          std::printf("client(vp%u): sending %d-element list\n", VP.id(),
                      100 * (I + 1));
          PP->Requests->send(VP, Msg); // promoted on send
          Ref<> Sum = PP->Replies->recv(S, VP);
          std::printf("client(vp%u): server replied sum=%lld\n", VP.id(),
                      static_cast<long long>(Sum.asInt()));
        }
      },
      &PP);

  std::printf("\ncompleted %d rounds; global collections during run: %llu\n",
              PP.Rounds,
              static_cast<unsigned long long>(RT.world().globalGCCount()));
  GCStats S = RT.world().aggregateStats();
  std::printf("messages promoted %llu times (%llu bytes)\n",
              static_cast<unsigned long long>(S.PromoteCalls),
              static_cast<unsigned long long>(S.PromoteBytes));
  return 0;
}
