//===- examples/numa_speedup.cpp - explore the machine model --------------===//
//
// Part of the manticore-gc project.
//
// Uses the machine model directly: compares the three page-allocation
// policies for one benchmark across thread counts, printing the speedup
// curves and per-node DRAM traffic, the quantities behind the paper's
// Figures 5-7.
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"
#include "sim/Speedup.h"

#include <cstdio>
#include <cstring>

using namespace manti;
using namespace manti::sim;

int main(int Argc, char **Argv) {
  const char *Bench = Argc > 1 ? Argv[1] : "SMVM";
  std::printf("manticore-gc machine-model example: %s on the 48-core AMD "
              "machine\n\n",
              Bench);

  WorkloadProfile Profile;
  bool Found = false;
  for (const WorkloadProfile &W : allProfiles()) {
    if (W.Name == Bench) {
      Profile = W;
      Found = true;
    }
  }
  if (!Found) {
    std::printf("unknown benchmark '%s'; choose one of:\n", Bench);
    for (const WorkloadProfile &W : allProfiles())
      std::printf("  %s\n", W.Name.c_str());
    return 1;
  }

  SimMachine M = SimMachine::amd48();
  SimParams Base;
  Base.Threads = 1;
  double T1 = simulate(M, Profile, Base).Seconds;

  std::printf("%-8s %-14s %-14s %-14s\n", "Threads", "local",
              "interleaved", "single-node");
  for (unsigned T : amdThreadAxis()) {
    std::printf("%-8u", T);
    for (AllocPolicyKind Policy :
         {AllocPolicyKind::Local, AllocPolicyKind::Interleaved,
          AllocPolicyKind::SingleNode}) {
      SimParams P;
      P.Policy = Policy;
      P.Threads = T;
      std::printf(" %-13.2f", T1 / simulate(M, Profile, P).Seconds);
    }
    std::printf("\n");
  }

  std::printf("\nPer-node DRAM gigabytes served at 48 threads:\n");
  std::printf("%-14s", "policy");
  for (unsigned N = 0; N < M.Topo.numNodes(); ++N)
    std::printf(" node%-6u", N);
  std::printf("\n");
  for (AllocPolicyKind Policy :
       {AllocPolicyKind::Local, AllocPolicyKind::Interleaved,
        AllocPolicyKind::SingleNode}) {
    SimParams P;
    P.Policy = Policy;
    P.Threads = 48;
    SimResult R = simulate(M, Profile, P);
    std::printf("%-14s", allocPolicyName(Policy));
    for (double B : R.NodeDramBytes)
      std::printf(" %-10.2f", B / 1e9);
    std::printf("\n");
  }
  std::printf("\nThe single-node row shows the funnel: every byte lands on "
              "node 0,\nwhich is the saturation Figure 7 plots.\n");
  return 0;
}
