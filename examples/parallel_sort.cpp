//===- examples/parallel_sort.cpp - NESL-style quicksort ------------------===//
//
// Part of the manticore-gc project.
//
// The paper's Quicksort benchmark as an application: sorts integers on
// rope sequences with stolen sub-sorts promoting their partitions.
//
//===----------------------------------------------------------------------===//

#include "workloads/Quicksort.h"

#include <cstdio>

using namespace manti;
using namespace manti::workloads;

int main(int Argc, char **Argv) {
  int64_t N = Argc > 1 ? std::atoll(Argv[1]) : 200000;
  std::printf("manticore-gc parallel sort example\n");
  std::printf("==================================\n\n");

  RuntimeConfig Cfg;
  Cfg.NumVProcs = 4;
  Cfg.GC.LocalHeapBytes = 512 * 1024;
  Cfg.PinThreads = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));

  struct Args {
    int64_t N;
    QuicksortResult Res;
  };
  static Args A;
  A.N = N;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *A = static_cast<Args *>(CtxP);
        QuicksortParams P;
        P.NumElements = A->N;
        P.Cutoff = 4096;
        A->Res = runQuicksort(RT, VP, P);
      },
      &A);

  std::printf("sorted %lld integers on %u vprocs in %.3f s (%s)\n",
              static_cast<long long>(A.Res.Length), RT.numVProcs(),
              A.Res.Seconds, A.Res.Sorted ? "verified" : "FAILED");

  GCStats S = RT.world().aggregateStats();
  std::printf("\ncollector work during the sort:\n");
  std::printf("  minor collections: %llu\n",
              static_cast<unsigned long long>(S.MinorPause.count()));
  std::printf("  major collections: %llu\n",
              static_cast<unsigned long long>(S.MajorPause.count()));
  std::printf("  promotions:        %llu (stolen sub-sorts)\n",
              static_cast<unsigned long long>(S.PromoteCalls));
  SchedStats Sched = RT.aggregateSchedStats();
  std::printf("  tasks stolen:      %llu (%llu batches, %.1f%% node-local)\n",
              static_cast<unsigned long long>(Sched.TasksStolen),
              static_cast<unsigned long long>(Sched.StealBatches),
              100.0 * Sched.nodeLocalFraction());
  return A.Res.Sorted ? 0 : 1;
}
