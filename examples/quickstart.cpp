//===- examples/quickstart.cpp - first steps with the memory system -------===//
//
// Part of the manticore-gc project.
//
// Builds a world, allocates immutable values, and walks through the
// three collection phases of the paper: minor (nursery -> old area),
// major (old area -> global heap), and the parallel global collection.
//
//===----------------------------------------------------------------------===//

#include "gc/GCReport.h"
#include "gc/Handles.h"
#include "gc/Heap.h"
#include "gc/HeapVerifier.h"
#include "numa/Topology.h"
#include "support/Stats.h"

#include <cstdio>

using namespace manti;

namespace {

/// [head | tail] cons cell. allocVectorOf roots its arguments across
/// the allocation; the result escapes the inner scope and is rooted
/// again by the caller before the next allocation.
Value cons(VProcHeap &H, Value Head, Value Tail) {
  RootScope S(H);
  Ref<> Cell = allocVectorOf(S, Head, Tail);
  return Cell.value();
}

/// Allocation-free traversal through the typed-vector face (the static
/// VecRef accessors are the handle layer's blessed raw-Value reads).
int64_t listSum(Value L) {
  int64_t Sum = 0;
  for (; !L.isNil(); L = VecRef<>::get(L, 1))
    Sum += VecRef<>::getInt(L, 0);
  return Sum;
}

void printStats(const char *When, GCWorld &World) {
  GCStats S = World.aggregateStats();
  char Buf[32];
  std::printf("--- %s ---\n", When);
  formatBytes(S.BytesAllocatedLocal, Buf, sizeof(Buf));
  std::printf("  allocated locally:   %s\n", Buf);
  std::printf("  minor collections:   %llu\n",
              static_cast<unsigned long long>(S.MinorPause.count()));
  formatBytes(S.MinorBytesCopied, Buf, sizeof(Buf));
  std::printf("  nursery data copied: %s\n", Buf);
  std::printf("  major collections:   %llu\n",
              static_cast<unsigned long long>(S.MajorPause.count()));
  formatBytes(S.MajorBytesPromoted, Buf, sizeof(Buf));
  std::printf("  promoted to global:  %s\n", Buf);
  std::printf("  global collections:  %llu\n\n",
              static_cast<unsigned long long>(World.globalGCCount()));
}

} // namespace

int main() {
  std::printf("manticore-gc quickstart\n");
  std::printf("=======================\n\n");

  // A world on the paper's Intel machine shape with one vproc. The
  // config is small so every phase triggers visibly.
  GCConfig Cfg;
  Cfg.LocalHeapBytes = 128 * 1024;
  Cfg.MinNurseryBytes = 16 * 1024;
  Cfg.ChunkBytes = 64 * 1024;
  Cfg.GlobalGCBytesPerVProc = 512 * 1024;
  GCWorld World(Cfg, Topology::intelXeon32(), 1);
  VProcHeap &H = World.heap(0);

  // Values are tagged words: 63-bit ints inline, pointers to immutable
  // heap objects otherwise. Roots are handles owned by RootScopes: a
  // collection updates the handle's slot, so it can never dangle.
  RootScope Scope(H);
  Ref<> List = Scope.root(Value::nil());
  for (int64_t I = 1; I <= 1000; ++I)
    List = cons(H, Value::fromInt(I), List);
  std::printf("built a 1000-cell list; sum = %lld (expected 500500)\n\n",
              static_cast<long long>(listSum(List)));

  // Minor collection: live nursery data moves to the old-data area.
  H.minorGC();
  std::printf("after minorGC the list lives in the young area: %s\n",
              H.local().inYoungData(List.value().asPtr()) ? "yes" : "no");
  printStats("after minor", World);

  // Major collection: old data moves to this vproc's global-heap chunk;
  // the young data (just copied, provably live) stays local.
  H.minorGC(); // age the list out of the young area
  H.majorGC();
  std::printf("after majorGC the list lives in the global heap: %s\n",
              World.chunks().activeChunksContain(List.value().asPtr())
                  ? "yes"
                  : "no");
  printStats("after major", World);

  // Promotion: sharing an object with other vprocs copies it to the
  // global heap explicitly; the promoted value comes back as a fresh
  // rooted handle.
  Ref<> Local = Scope.root(cons(H, Value::fromInt(7), Value::nil()));
  Ref<> Shared = promote(Scope, Local);
  std::printf("promoted cell head: %lld\n\n",
              static_cast<long long>(VecRef<>::getInt(Shared, 0)));

  // Global collection: stop-the-world, parallel across vprocs (one
  // here), per-node chunk lists, copying compaction.
  for (int I = 0; I < 40; ++I) {
    RootScope Junk(H);
    Ref<> Dead = Junk.root(Value::nil());
    for (int J = 0; J < 500; ++J)
      Dead = cons(H, Value::fromInt(J), Dead);
    promote(Junk, Dead); // global garbage
  }
  World.requestGlobalGC();
  H.safePoint();
  std::printf("list still intact after global GC: sum = %lld\n",
              static_cast<long long>(listSum(List)));
  printStats("after global", World);

  // The invariant checker walks everything reachable and verifies the
  // paper's two heap invariants.
  VerifyResult R = verifyHeap(H);
  std::printf("verifier: %llu local + %llu global reachable objects, "
              "invariants hold\n\n",
              static_cast<unsigned long long>(R.LocalObjects),
              static_cast<unsigned long long>(R.GlobalObjects));

  // Full collector report (the library's `+RTS -s`).
  printGCReport(stdout, World);
  return 0;
}
