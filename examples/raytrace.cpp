//===- examples/raytrace.cpp - render a scene to a PPM file ---------------===//
//
// Part of the manticore-gc project.
//
// The paper's Raytracer benchmark as an application: renders the sphere
// scene in parallel (rows built as rope segments, merged by parallel
// reduction) and writes out a PPM image.
//
//===----------------------------------------------------------------------===//

#include "workloads/Raytracer.h"

#include <cstdio>
#include <vector>

using namespace manti;
using namespace manti::workloads;

int main(int Argc, char **Argv) {
  int Size = Argc > 1 ? std::atoi(Argv[1]) : 256;
  const char *OutPath = Argc > 2 ? Argv[2] : "render.ppm";

  std::printf("manticore-gc raytracer example\n");
  std::printf("==============================\n\n");

  RuntimeConfig Cfg;
  Cfg.NumVProcs = 4;
  Cfg.GC.LocalHeapBytes = 512 * 1024;
  Cfg.PinThreads = false;
  Runtime RT(Cfg, Topology::uniform(2, 2));

  struct Args {
    RaytracerParams P;
    RaytracerResult Res;
    std::vector<uint32_t> Image;
  };
  static Args A;
  A.P.Width = Size;
  A.P.Height = Size;

  RT.run(
      [](Runtime &RT, VProc &VP, void *CtxP) {
        auto *A = static_cast<Args *>(CtxP);
        A->Res = runRaytracer(RT, VP, A->P, &A->Image);
      },
      &A);

  std::printf("rendered %dx%d (%lld pixels) in %.3f s, checksum %llu\n",
              Size, Size, static_cast<long long>(A.Res.Pixels),
              A.Res.Seconds,
              static_cast<unsigned long long>(A.Res.Checksum));

  if (std::FILE *F = std::fopen(OutPath, "wb")) {
    std::fprintf(F, "P6\n%d %d\n255\n", Size, Size);
    for (uint32_t Pix : A.Image) {
      unsigned char Rgb[3] = {static_cast<unsigned char>(Pix >> 16),
                              static_cast<unsigned char>(Pix >> 8),
                              static_cast<unsigned char>(Pix)};
      std::fwrite(Rgb, 1, 3, F);
    }
    std::fclose(F);
    std::printf("wrote %s\n", OutPath);
  } else {
    std::printf("could not open %s for writing\n", OutPath);
  }
  return 0;
}
