//===- runtime/Scheduler.cpp -----------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "numa/TrafficMatrix.h"
#include "runtime/Runtime.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace manti;

namespace {

/// Idle-ladder shape: the first rungs retry immediately (the caller's
/// poll loop is the spin), the next rungs yield, and everything beyond
/// parks on the node doorbell in bounded, exponentially growing waits.
constexpr unsigned SpinRounds = 16;
constexpr unsigned YieldRounds = 32;
constexpr unsigned MinParkMicros = 8;
/// Park backstop: with doorbells a ring ends the wait immediately, so
/// this bound only matters when a wake-up signal has no ring (e.g. a
/// join counter hitting zero) or in the ladder-baseline ablation. Small
/// enough that such a vproc still reaches its next safe point promptly.
constexpr unsigned MaxParkMicros = 256;

/// blockOn's poll+yield spin before the first doorbell park: long
/// enough that a fast channel partner is caught without a futex round
/// trip, short enough that a genuinely blocked vproc stops burning CPU.
constexpr unsigned BlockSpinRounds = 48;

/// noteSpawn escalates a wasted local ring to the nearest parked remote
/// node only once the spawner's queue has at least this many tasks (the
/// local vprocs are saturated and there is work to spare).
constexpr std::size_t RemoteRingDepth = 4;

/// Steal rounds per adaptive-patience window: long enough that one
/// unlucky probe cannot whipsaw the patience, short enough that a phase
/// change (a neighborhood going dry) is answered within a few dozen
/// rounds.
constexpr unsigned PatienceWindow = 32;

} // namespace

Scheduler::Scheduler(Runtime &RT)
    : RT(RT), Lot(RT.parkLot()),
      StealBatch(std::clamp(RT.config().StealBatch, 1u,
                            StealRequest::MaxBatch)),
      LocalStealFirst(RT.config().LocalStealFirst),
      UseDoorbells(RT.config().UseDoorbells),
      StealHalf(RT.config().StealHalf),
      RemotePatience(RT.config().RemoteStealPatience),
      // Patience 0 means "no remote throttle at all"; there is nothing
      // for the adaptive controller to scale, so it stays off.
      Adaptive(RT.config().AdaptivePatience &&
               RT.config().RemoteStealPatience != 0),
      PatienceMin(std::max(1u, RT.config().RemoteStealPatienceMin)),
      // Clamp against the already-sanitized lower bound (PatienceMin is
      // initialized first), so Min=Max=0 cannot produce a zero ceiling
      // that a patience raise would store and tierLimit divide by.
      PatienceMax(std::max(PatienceMin, RT.config().RemoteStealPatienceMax)),
      ShedThreshold(RT.config().ShedThreshold) {
  unsigned N = RT.numVProcs();
  Backoff.resize(N);
  // Seed the adaptive patience from the fixed value (deliberately
  // unclamped: the bounds govern where adaptation may *move* it, not
  // where an explicit configuration may start it).
  for (BackoffState &B : Backoff)
    B.Patience = RemotePatience;
  Proximity.resize(N);

  // Group the other vprocs by the node-distance tiers the topology
  // reports: tier 0 = same node, then increasing link-hop distance.
  const Topology &Topo = RT.world().topology();
  for (unsigned V = 0; V < N; ++V) {
    std::vector<std::vector<NodeId>> NodeTiers =
        Topo.nodesByDistance(RT.vproc(V).node());
    for (const std::vector<NodeId> &Tier : NodeTiers) {
      std::vector<unsigned> VTier;
      for (NodeId Node : Tier)
        for (unsigned U = 0; U < N; ++U)
          if (U != V && RT.vproc(U).node() == Node)
            VTier.push_back(U);
      if (!VTier.empty())
        Proximity[V].push_back(std::move(VTier));
    }
  }

  // Load-board aggregation lists: which vprocs' depth counters make up
  // each node's estimate.
  NodeVProcs.resize(Topo.numNodes());
  for (unsigned V = 0; V < N; ++V)
    NodeVProcs[RT.vproc(V).node()].push_back(V);

  // Ring-escalation order: from each vproc-hosting node, the *other*
  // nodes that host vprocs, nearest first.
  std::vector<bool> HasVProc(Topo.numNodes(), false);
  for (unsigned V = 0; V < N; ++V)
    HasVProc[RT.vproc(V).node()] = true;
  NodeOrder.resize(Topo.numNodes());
  for (NodeId From = 0; From < Topo.numNodes(); ++From) {
    for (const std::vector<NodeId> &Tier : Topo.nodesByDistance(From))
      for (NodeId To : Tier)
        if (To != From && HasVProc[To])
          NodeOrder[From].push_back(To);
  }
}

std::size_t Scheduler::tierLimit(const VProc &Thief) const {
  if (RemotePatience == 0)
    return Proximity[Thief.id()].size();
  const BackoffState &B = Backoff[Thief.id()];
  unsigned Patience = Adaptive ? B.Patience : RemotePatience;
  return 1 + static_cast<std::size_t>(B.FailedRounds / Patience);
}

void Scheduler::notePatienceSample(VProc &VP, bool Success) {
  if (!Adaptive)
    return;
  BackoffState &B = Backoff[VP.id()];
  ++B.WindowRounds;
  if (Success)
    ++B.WindowHits;
  if (B.WindowRounds < PatienceWindow)
    return;
  // Multiplicative window update: a nearly-dry window (< 25% hits)
  // halves the patience so farther tiers unlock sooner; a reliably fed
  // window (>= 75%) doubles it so this thief keeps feeding from its own
  // neighborhood. The dead band in between leaves the value alone.
  unsigned Old = B.Patience;
  if (B.WindowHits * 4 < B.WindowRounds)
    B.Patience = std::max(PatienceMin, B.Patience / 2);
  else if (B.WindowHits * 4 >= B.WindowRounds * 3)
    B.Patience = static_cast<unsigned>(std::min<uint64_t>(
        PatienceMax, static_cast<uint64_t>(B.Patience) * 2));
  if (B.Patience < Old)
    ++VP.SStats.PatienceDrops;
  else if (B.Patience > Old)
    ++VP.SStats.PatienceRaises;
  B.WindowRounds = 0;
  B.WindowHits = 0;
}

template <typename TryFnT>
VProc *Scheduler::walkTiers(VProc &Thief, std::size_t TierLimit,
                            TryFnT Try) {
  std::size_t TierIdx = 0;
  for (const std::vector<unsigned> &Tier : Proximity[Thief.id()]) {
    if (TierIdx++ >= TierLimit)
      break;
    unsigned Sz = static_cast<unsigned>(Tier.size());
    unsigned Start =
        Sz > 1 ? static_cast<unsigned>(Thief.Rng.nextBelow(Sz)) : 0;
    for (unsigned I = 0; I < Sz; ++I) {
      VProc &Cand = RT.vproc(Tier[(Start + I) % Sz]);
      if (Cand.queueDepth() == 0)
        continue;
      if (Try(Cand))
        return &Cand;
    }
  }
  return nullptr;
}

VProc *Scheduler::pickVictim(VProc &Thief) {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return nullptr;
  if (!LocalStealFirst) {
    // Ablation baseline: uniform over the other vprocs, load-blind.
    unsigned VictimId = static_cast<unsigned>(Thief.Rng.nextBelow(N - 1));
    if (VictimId >= Thief.id())
      ++VictimId;
    return &RT.vproc(VictimId);
  }
  return walkTiers(Thief, tierLimit(Thief), [](VProc &) { return true; });
}

bool Scheduler::stealAndRun(VProc &Thief) {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return false;

  BackoffState &B = Backoff[Thief.id()];
  if (!LocalStealFirst) {
    VProc *Victim = pickVictim(Thief);
    if (Victim && attemptSteal(Thief, *Victim)) {
      B.FailedRounds = 0;
      notePatienceSample(Thief, true);
      return true;
    }
    ++B.FailedRounds;
    ++Thief.SStats.FailedStealRounds;
    notePatienceSample(Thief, false);
    return false;
  }

  // One round: walk the proximity tiers nearest-first, probing each
  // tier's members in a randomized rotation so same-node thieves spread
  // over their victims. Only loaded victims are worth a handshake; a
  // failed attempt (mailbox contention, or the victim drained before
  // answering) falls through to the next candidate. Tier k is probed
  // only once the thief has gone k * RemotePatience rounds empty-handed:
  // steals reach farther out the longer the whole neighborhood stays
  // dry, so a freshly loaded queue feeds its own node first.
  if (walkTiers(Thief, tierLimit(Thief), [&](VProc &Cand) {
        return attemptSteal(Thief, Cand);
      })) {
    B.FailedRounds = 0;
    notePatienceSample(Thief, true);
    return true;
  }
  ++B.FailedRounds;
  ++Thief.SStats.FailedStealRounds;
  notePatienceSample(Thief, false);
  return false;
}

bool Scheduler::attemptSteal(VProc &Thief, VProc &Victim) {
  StealRequest &Req = Thief.MyRequest;
  // Plain stores, published by the CAS below (handshake step 1 in
  // VProc.h).
  Req.ThiefNode = Thief.node();
  Req.State.store(StealRequest::Posted, std::memory_order_relaxed);
  StealRequest *Expected = nullptr;
  if (!Victim.Mailbox.compare_exchange_strong(Expected, &Req,
                                              std::memory_order_acq_rel)) {
    Req.State.store(StealRequest::Idle, std::memory_order_relaxed);
    ++Thief.SStats.FailedStealAttempts;
    return false; // another thief got there first
  }
  // The victim answers mailboxes from its poll loop; if it is parked
  // (idle between polls, or blocked in a channel), ring its node so the
  // handshake is not stuck behind a park backstop.
  ringNode(Thief, Victim.node());

  // Wait for the victim's answer; keep answering our own mailbox and
  // joining pending collections so nothing deadlocks. With steal-half a
  // single handshake delivers several mailbox chunks: each Filled chunk
  // is consumed and acknowledged with Consumed (step 4 in VProc.h), and
  // the loop keeps spinning for the next one until a chunk arrives with
  // More == false.
  unsigned Total = 0, Chunks = 0;
  // Finishing stats, shared by the normal final chunk and the empty
  // terminator of a truncated transfer.
  auto FinishStats = [&] {
    Thief.SStats.TasksStolen += Total;
    ++Thief.SStats.StealBatches;
    Thief.SStats.StealChunks += Chunks;
    if (Victim.node() == Thief.node())
      ++Thief.SStats.NodeLocalBatches;
    else
      ++Thief.SStats.CrossNodeBatches;
    // Finishing a multi-task handshake leaves fresh work on this node's
    // queue: ring it so parked peers help with the batch.
    if (Total > 1)
      ringNode(Thief, Thief.node());
    MANTI_DEBUG("sched",
                "vp%u stole %u task(s) in %u chunk(s) from vp%u "
                "(%s-node)",
                Thief.id(), Total, Chunks, Victim.id(),
                Victim.node() == Thief.node() ? "same" : "cross");
  };
  for (;;) {
    int S = Req.State.load(std::memory_order_acquire);
    if (S == StealRequest::Filled) {
      // The acquire above pairs with the victim's release store of
      // Filled: the batch slots, Count, and More are visible (step 2).
      unsigned Count = Req.Count;
      bool More = Req.More;
      MANTI_CHECK(Count <= StealRequest::MaxBatch &&
                      (Count >= 1 || (!More && Total >= 1)),
                  "steal batch out of range");
      if (Count == 0) {
        // Empty terminator: the victim's queue drained between chunks.
        // Everything we netted is already on our own queue; run from
        // there (it may have been re-stolen meanwhile, in which case
        // this round simply reports no task run).
        Req.State.store(StealRequest::Idle, std::memory_order_release);
        FinishStats();
        return Thief.runOneLocal();
      }
      Total += Count;
      ++Chunks;
      if (More) {
        // Mid-transfer chunk: everything goes on the local queue (the
        // queue is scanned as roots, and this loop takes safe points
        // while waiting for the next chunk -- a task held in a local
        // here would go stale under a global collection). The release
        // store pairs with the victim's acquire, ordering our
        // consumption before its next chunk's writes. Straight-line
        // from the Filled load to here -- no safe point with an
        // unconsumed chunk in hand.
        for (unsigned I = 0; I < Count; ++I)
          Thief.enqueueStolen(Req.Stolen[I]);
        for (unsigned I = 0; I < Count; ++I)
          Req.Stolen[I] = Task();
        Req.Count = 0;
        Req.State.store(StealRequest::Consumed,
                        std::memory_order_release);
        continue;
      }
      // Final (or only) chunk: run its oldest task directly -- no safe
      // point between here and runTask's rooting -- and queue the rest
      // (oldest first, so the local LIFO end still prefers the newest
      // work).
      Task First = Req.Stolen[0];
      for (unsigned I = 1; I < Count; ++I)
        Thief.enqueueStolen(Req.Stolen[I]);
      for (unsigned I = 0; I < Count; ++I)
        Req.Stolen[I] = Task();
      Req.Count = 0;
      Req.State.store(StealRequest::Idle, std::memory_order_release);
      FinishStats();
      Thief.runTask(First);
      return true;
    }
    if (S == StealRequest::Failed) {
      Req.State.store(StealRequest::Idle, std::memory_order_release);
      ++Thief.SStats.FailedStealAttempts;
      return false;
    }
    serviceSteal(Thief);
    Thief.heap().safePoint();
    std::this_thread::yield();
  }
}

bool Scheduler::serviceSteal(VProc &Victim) {
  // An in-flight chunked transfer always goes first: the thief is
  // spinning for the next chunk, and nothing else may reuse the request
  // slots until it arrives.
  if (Victim.ActiveSteal)
    return continueSteal(Victim);
  StealRequest *Req = Victim.Mailbox.load(std::memory_order_acquire);
  if (!Req)
    return false;
  std::size_t K = Victim.ReadyQ.size();
  if (K == 0) {
    Victim.Mailbox.store(nullptr, std::memory_order_release);
    Req->State.store(StealRequest::Failed, std::memory_order_release);
    return true;
  }
  // Steal the oldest ceil(k/2) tasks: they are the largest units of
  // pending work, and handing over several at once amortizes the
  // handshake and the promotion pauses. With steal-half the whole
  // budget moves through the one handshake in StealBatch-sized chunks;
  // the fixed-batch baseline caps the budget at one chunk. The mailbox
  // is cleared up front (release-published before the first Filled):
  // during a long transfer other thieves may post fresh requests, which
  // this vproc answers once the transfer is done.
  std::size_t Budget = (K + 1) / 2;
  if (!StealHalf)
    Budget = std::min<std::size_t>(Budget, StealBatch);
  Victim.Mailbox.store(nullptr, std::memory_order_release);
  ++Victim.SStats.BatchesServiced;

  sendStealChunk(Victim, Req, Budget);
  if (Budget > 0) {
    // More chunks promised: park the transfer as a continuation. The
    // victim NEVER blocks waiting for the thief's Consumed ack -- in a
    // ring of mutual steals, every party blocked in a victim-side wait
    // would be waiting on a thief that is itself blocked in its own
    // victim-side wait, a permanent cycle. Instead the next chunk goes
    // out from a later poll (and the idle ladder refuses to park while
    // a transfer is open, so the ack turnaround stays tight).
    Victim.ActiveSteal = Req;
    Victim.ActiveStealBudget = Budget;
  }
  return true;
}

bool Scheduler::continueSteal(VProc &Victim) {
  StealRequest *Req = Victim.ActiveSteal;
  // The acquire pairs with the thief's Consumed release store: its
  // reads of the previous chunk happen-before our reuse of the slots.
  if (Req->State.load(std::memory_order_acquire) != StealRequest::Consumed)
    return false; // thief has not consumed the last chunk yet
  std::size_t Budget = Victim.ActiveStealBudget;
  sendStealChunk(Victim, Req, Budget);
  Victim.ActiveStealBudget = Budget;
  if (Budget == 0)
    Victim.ActiveSteal = nullptr;
  return true;
}

void Scheduler::sendStealChunk(VProc &Victim, StealRequest *Req,
                               std::size_t &Budget) {
  // The victim may have run -- or lost to other thieves -- part of its
  // queue since the budget was set: re-bound by what is actually there.
  unsigned Take = static_cast<unsigned>(std::min<std::size_t>(
      std::min<std::size_t>(Budget, StealBatch), Victim.ReadyQ.size()));
  if (Take == 0) {
    // Queue drained mid-transfer: close the handshake with an empty
    // terminator chunk (the first chunk of a handshake is never empty,
    // so the thief always nets at least one task).
    Req->Count = 0;
    Req->More = false;
    Budget = 0;
    Req->State.store(StealRequest::Filled, std::memory_order_release);
    return;
  }
  uint64_t PromotedBefore = Victim.Heap.Stats.PromoteBytes;
  // Tasks staged in Req->Stolen are rooted by nobody until the thief
  // sees Filled; this is safe because nothing between popForSteal() and
  // the Filled store below can collect -- promote() copies and at most
  // *requests* a global GC (which only runs at safe points, and the
  // victim takes none inside this function). Within the budget, tasks
  // hinted at the thief's node go first (popForSteal) so hinted work
  // chases its data.
  unsigned AffinityMatches = 0;
  Take = Victim.popForSteal(Req->ThiefNode, Take, Req->Stolen,
                            &AffinityMatches);
  for (unsigned I = 0; I < Take; ++I) {
    if (RT.lazyPromotion()) {
      // "a lazy promotion scheme for work stealing": only now -- when
      // the task provably leaves this vproc -- does its environment
      // move to the global heap, and only this vproc can legally copy
      // it out of its own local heap.
      Req->Stolen[I].Env = Victim.Heap.promote(Req->Stolen[I].Env);
    }
  }
  uint64_t EnvBytes = Victim.Heap.Stats.PromoteBytes - PromotedBefore;
  Budget -= Take;
  // Truncate the transfer when a global collection goes pending: every
  // chunk the victim still owes is one more spin-wait the thief must
  // clear before it can sit at the collection's barrier for long.
  bool More = Budget > 0 && !RT.world().rendezvousRequested();
  if (!More)
    Budget = 0;
  Req->Count = Take;
  Req->More = More;

  Victim.SStats.TasksServiced += Take;
  Victim.SStats.StolenEnvBytes += EnvBytes;
  Victim.SStats.AffinityHandoffs += AffinityMatches;
  if (EnvBytes > 0)
    RT.world().traffic().record(Victim.node(), Req->ThiefNode, EnvBytes);

  // Handshake step 2: plain writes above, then the release store.
  Req->State.store(StealRequest::Filled, std::memory_order_release);
}

std::size_t Scheduler::nodeDepth(NodeId Node) const {
  std::size_t Sum = 0;
  for (unsigned V : NodeVProcs[Node])
    Sum += RT.vproc(V).queueDepth();
  return Sum;
}

NodeId Scheduler::pickShedTarget(VProc &VP) {
  // A shed must make the imbalance better, not just move it: the target
  // must have an *idle-ladder* parker (somebody there is idle now AND
  // will claim the bay when rung -- a channel-blocked parker cannot run
  // arbitrary tasks, so it does not count), and its total load -- board
  // depth plus whatever already sits in its bay unclaimed -- must be
  // well below ours.
  std::size_t OwnDepth = VP.queueDepth();
  NodeId Best = NoShedTarget;
  std::size_t BestLoad = 0;
  for (NodeId N : NodeOrder[VP.node()]) {
    if (Lot.idleParkedOn(N) == 0)
      continue;
    std::size_t Load = nodeDepth(N) + Lot.shedDepth(N);
    if (Load * 2 >= OwnDepth)
      continue;
    if (Best == NoShedTarget || Load < BestLoad) {
      Best = N;
      BestLoad = Load;
    }
  }
  return Best;
}

bool Scheduler::maybeShed(VProc &VP) {
  if (ShedThreshold == 0 || VP.queueDepth() < ShedThreshold)
    return false;
  NodeId Target = pickShedTarget(VP);
  if (Target == NoShedTarget) {
    ++VP.SStats.ShedTargetMisses;
    return false;
  }
  unsigned Want = static_cast<unsigned>(std::min<std::size_t>(
      (VP.queueDepth() + 1) / 2, MaxShedBatch));
  Task Batch[MaxShedBatch];
  unsigned Got = VP.popForShed(Target, Want, Batch);
  if (Got == 0)
    return false;
  uint64_t PromotedBefore = VP.Heap.Stats.PromoteBytes;
  for (unsigned I = 0; I < Got; ++I) {
    if (RT.lazyPromotion()) {
      // Same rule as the steal handshake: the tasks provably leave this
      // vproc, so their environments leave its local heap now, copied
      // out by the only thread allowed to (the owner). No safe point
      // between the pop above and publishShed below, so the staged
      // batch cannot be collected out from under us.
      Batch[I].Env = VP.Heap.promote(Batch[I].Env);
    }
  }
  uint64_t EnvBytes = VP.Heap.Stats.PromoteBytes - PromotedBefore;

  // Push-side handshake: publish the batch in the target node's bay,
  // *then* ring its doorbell -- the bay lock publishes the data, the
  // ring only cuts a parked claimer's wait short (and the doorbell
  // protocol's fence pairing plus the park-side bay re-check make the
  // ring un-losable, same as every other ring site).
  Lot.publishShed(Target, Batch, Got);
  ringNode(VP, Target);

  VP.SStats.TasksShed += Got;
  ++VP.SStats.ShedBatches;
  VP.SStats.ShedEnvBytes += EnvBytes;
  if (EnvBytes > 0)
    RT.world().traffic().record(VP.node(), Target, EnvBytes);
  MANTI_DEBUG("sched", "vp%u shed %u task(s) to node %u", VP.id(), Got,
              Target);
  return true;
}

bool Scheduler::claimShedFrom(VProc &VP, NodeId Node) {
  if (Lot.shedDepth(Node) == 0)
    return false;
  Task Batch[StealRequest::MaxBatch];
  unsigned Got = Lot.claimShed(Node, Batch, StealRequest::MaxBatch);
  if (Got == 0)
    return false;
  // Queue the tail before running the head; no safe point between the
  // claim and these enqueues (the batch is unrooted until it lands in
  // the queue scan / runTask's scope).
  for (unsigned I = 1; I < Got; ++I)
    VP.enqueueStolen(Batch[I]);
  VP.SStats.ShedTasksClaimed += Got;
  ++VP.SStats.ShedClaims;
  // Leftover backlog belongs to the bay's node; a multi-task claim is
  // fresh work on this one. Ring so parked peers join in.
  if (Lot.shedDepth(Node) > 0)
    ringNode(VP, Node);
  if (Got > 1)
    ringNode(VP, VP.node());
  MANTI_DEBUG("sched", "vp%u claimed %u shed task(s) from node %u",
              VP.id(), Got, Node);
  VP.runTask(Batch[0]);
  return true;
}

bool Scheduler::claimShedAndRun(VProc &VP) {
  if (claimShedFrom(VP, VP.node()))
    return true;
  // Bay work conservation: a batch shed toward a node whose vprocs all
  // went busy (or blocked in channels) must not strand. Remote bays
  // open up on the same terms as remote victims -- after one patience
  // of empty-handed rounds -- so the bay's own node still gets first
  // claim on its batches.
  unsigned Patience =
      Adaptive ? Backoff[VP.id()].Patience : RemotePatience;
  if (Patience != 0 && Backoff[VP.id()].FailedRounds < Patience)
    return false;
  for (NodeId N : NodeOrder[VP.node()])
    if (claimShedFrom(VP, N))
      return true;
  return false;
}

unsigned Scheduler::parkMicrosFor(unsigned Step) {
  return std::min(MinParkMicros << std::min(Step, 5u), MaxParkMicros);
}

void Scheduler::doorbellPark(VProc &VP, unsigned Micros, bool RecordStats,
                             bool (*Pred)(void *), void *PredCtx,
                             bool Claimable) {
  if (!UseDoorbells) {
    // Ladder baseline: a blind bounded sleep nobody can cut short.
    auto Start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::microseconds(Micros));
    auto End = std::chrono::steady_clock::now();
    if (RecordStats) {
      ++VP.SStats.Parks;
      VP.SStats.ParkNanos += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
              .count());
      ++VP.SStats.ParkTimeouts;
    }
    return;
  }
  // Doorbell park: snapshot the epochs, re-check every standing wake
  // condition, then wait. Any ring that lands after the snapshot --
  // including the global-GC broadcast -- makes the wait return
  // immediately, so the conditions checked here can never be missed.
  // Only claimable parkers (idle ladder, joinWait) register as
  // shed-claim targets: targeting must not count a channel-blocked
  // parker, which cannot run arbitrary tasks.
  ParkLot::Token T = Lot.prepare(VP.node(), Claimable);
  // Fence pairing with tryRing: in the seq_cst fence order, either this
  // fence precedes the ringer's (so the ringer's waiter-count load sees
  // prepare's increment and rings) or the ringer's precedes this one
  // (so the re-checks below see the condition its ring site published).
  // Either way a condition set concurrently with this park cannot be
  // missed, which is what lets blockOn use long ring-driven parks.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // The shed-bay check applies only to claimable parks while a run is
  // live: a channel-blocked vproc cannot run arbitrary tasks, so waking
  // it for a bay batch would just burn its backstop, and the
  // between-runs drain loops never claim (a leftover fire-and-forget
  // batch waits for the next run, like leftover queue tasks do) so
  // keeping them awake for one would spin them.
  if ((Pred && Pred(PredCtx)) ||
      (Claimable && RT.schedulerActive() &&
       Lot.shedDepth(VP.node()) != 0) ||
      VP.Mailbox.load(std::memory_order_acquire) != nullptr ||
      VP.ActiveSteal != nullptr || RT.world().rendezvousRequested()) {
    Lot.cancel(VP.node(), T);
    std::this_thread::yield();
    return;
  }
  auto Start = std::chrono::steady_clock::now();
  uint64_t RingLatency = 0;
  bool Rung = Lot.park(VP.node(), T, std::chrono::microseconds(Micros),
                       &RingLatency);
  auto End = std::chrono::steady_clock::now();
  if (RecordStats) {
    ++VP.SStats.Parks;
    VP.SStats.ParkNanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count());
    if (Rung) {
      ++VP.SStats.RingWakeups;
      VP.SStats.RingWakeupNanos += RingLatency;
    } else {
      ++VP.SStats.ParkTimeouts;
    }
  }
}

void Scheduler::idleBackoff(VProc &VP, bool RecordStats, bool (*Pred)(void *),
                            void *PredCtx) {
  BackoffState &B = Backoff[VP.id()];
  unsigned R = ++B.IdleRounds;
  if (R <= SpinRounds)
    return; // spin rung: retry immediately, the caller's poll is the spin
  if (R <= SpinRounds + YieldRounds ||
      VP.Mailbox.load(std::memory_order_acquire) != nullptr ||
      VP.ActiveSteal != nullptr || RT.world().rendezvousRequested()) {
    // Yield rung -- also taken instead of parking whenever a thief, an
    // in-flight chunked transfer, or a pending collection needs a
    // prompt answer.
    std::this_thread::yield();
    return;
  }
  doorbellPark(VP, parkMicrosFor(R - SpinRounds - YieldRounds - 1),
               RecordStats, Pred, PredCtx, /*Claimable=*/true);
}

bool Scheduler::tryRing(VProc &Ringer, NodeId Node) {
  ++Ringer.SStats.RingsSent;
  // Skip the epoch bump and futex when nobody is parked: the common
  // busy-system case stays a fence plus one atomic load. The fence
  // pairs with doorbellPark's (see there): every ring site publishes
  // its condition before calling here, so a parker that this load
  // misses is one whose pre-park re-check sees the condition instead.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (Lot.parkedOn(Node) != 0 && Lot.ring(Node) != 0)
    return true;
  ++Ringer.SStats.RingsWasted;
  return false;
}

void Scheduler::ringNode(VProc &Ringer, NodeId Node) {
  if (!UseDoorbells)
    return;
  tryRing(Ringer, Node);
}

void Scheduler::noteSpawn(VProc &VP, const Task &T) {
  if (!UseDoorbells)
    return;
  // A hinted task rings its data's node first ("tasks chase their
  // data"); with no hint the spawner's own node is the target.
  if (T.Affinity != Task::NoAffinity && T.Affinity != VP.node() &&
      tryRing(VP, T.Affinity))
    return;
  // Hinted node saturated (or no hint): the task sits on *this* queue,
  // so parked local peers can steal it either way -- ring them rather
  // than leaving them to their backstops.
  if (tryRing(VP, VP.node()))
    return;
  // Local vprocs are all busy too. Once the queue runs deep enough that
  // this node cannot drain it alone, wake the nearest node with parked
  // vprocs -- the one remote ring a saturated node earns.
  if (VP.queueDepth() < RemoteRingDepth)
    return;
  for (NodeId Remote : NodeOrder[VP.node()]) {
    if (Lot.parkedOn(Remote) != 0) {
      tryRing(VP, Remote);
      return;
    }
  }
}

void Scheduler::blockOn(VProc &VP, bool (*Pred)(void *), void *Ctx,
                        bool RecordStats) {
  // Fast path: the partner is often mid-operation; a short poll+yield
  // spin catches it without a futex round trip.
  for (unsigned I = 0; I < BlockSpinRounds; ++I) {
    if (Pred(Ctx))
      return;
    VP.poll();
    std::this_thread::yield();
  }
  // Slow path: doorbell parks with the same growing bounded backstop as
  // the idle ladder. Every wake-up a channel block waits for has a ring
  // (hand-offs, Taken, steal requests, the GC broadcast) and the fence
  // pairing in doorbellPark/tryRing means none can be missed, so the
  // backstop is purely a safety net; it is kept short anyway because on
  // an oversubscribed host a shallow sleep resumes faster than a deep
  // futex wake. poll() between parks keeps this vproc answering steal
  // requests and joining pending collections while blocked.
  unsigned Round = 0;
  while (!Pred(Ctx)) {
    VP.poll();
    doorbellPark(VP, parkMicrosFor(Round++), RecordStats, Pred, Ctx,
                 /*Claimable=*/false);
  }
}

SchedStats Scheduler::aggregateStats() const {
  SchedStats Total;
  for (unsigned I = 0; I < RT.numVProcs(); ++I)
    Total.merge(RT.vproc(I).schedStats());
  return Total;
}
