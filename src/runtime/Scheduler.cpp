//===- runtime/Scheduler.cpp -----------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "numa/TrafficMatrix.h"
#include "runtime/Runtime.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace manti;

namespace {

/// Idle-ladder shape: the first rungs retry immediately (the caller's
/// poll loop is the spin), the next rungs yield, and everything beyond
/// parks in bounded, exponentially growing sleeps.
constexpr unsigned SpinRounds = 16;
constexpr unsigned YieldRounds = 32;
constexpr unsigned MinParkMicros = 8;
/// Park cap: small enough that a parked vproc reaches its next safe
/// point (and answers steal requests) promptly, keeping global-GC entry
/// latency bounded.
constexpr unsigned MaxParkMicros = 256;

} // namespace

Scheduler::Scheduler(Runtime &RT)
    : RT(RT), StealBatch(std::clamp(RT.config().StealBatch, 1u,
                                    StealRequest::MaxBatch)),
      LocalStealFirst(RT.config().LocalStealFirst),
      RemotePatience(RT.config().RemoteStealPatience) {
  unsigned N = RT.numVProcs();
  Backoff.resize(N);
  Proximity.resize(N);

  // Group the other vprocs by the node-distance tiers the topology
  // reports: tier 0 = same node, then increasing link-hop distance.
  const Topology &Topo = RT.world().topology();
  for (unsigned V = 0; V < N; ++V) {
    std::vector<std::vector<NodeId>> NodeTiers =
        Topo.nodesByDistance(RT.vproc(V).node());
    for (const std::vector<NodeId> &Tier : NodeTiers) {
      std::vector<unsigned> VTier;
      for (NodeId Node : Tier)
        for (unsigned U = 0; U < N; ++U)
          if (U != V && RT.vproc(U).node() == Node)
            VTier.push_back(U);
      if (!VTier.empty())
        Proximity[V].push_back(std::move(VTier));
    }
  }
}

std::size_t Scheduler::tierLimit(const VProc &Thief) const {
  if (RemotePatience == 0)
    return Proximity[Thief.id()].size();
  return 1 + static_cast<std::size_t>(Backoff[Thief.id()].FailedRounds /
                                      RemotePatience);
}

template <typename TryFnT>
VProc *Scheduler::walkTiers(VProc &Thief, std::size_t TierLimit,
                            TryFnT Try) {
  std::size_t TierIdx = 0;
  for (const std::vector<unsigned> &Tier : Proximity[Thief.id()]) {
    if (TierIdx++ >= TierLimit)
      break;
    unsigned Sz = static_cast<unsigned>(Tier.size());
    unsigned Start =
        Sz > 1 ? static_cast<unsigned>(Thief.Rng.nextBelow(Sz)) : 0;
    for (unsigned I = 0; I < Sz; ++I) {
      VProc &Cand = RT.vproc(Tier[(Start + I) % Sz]);
      if (Cand.queueDepth() == 0)
        continue;
      if (Try(Cand))
        return &Cand;
    }
  }
  return nullptr;
}

VProc *Scheduler::pickVictim(VProc &Thief) {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return nullptr;
  if (!LocalStealFirst) {
    // Ablation baseline: uniform over the other vprocs, load-blind.
    unsigned VictimId = static_cast<unsigned>(Thief.Rng.nextBelow(N - 1));
    if (VictimId >= Thief.id())
      ++VictimId;
    return &RT.vproc(VictimId);
  }
  return walkTiers(Thief, tierLimit(Thief), [](VProc &) { return true; });
}

bool Scheduler::stealAndRun(VProc &Thief) {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return false;

  BackoffState &B = Backoff[Thief.id()];
  if (!LocalStealFirst) {
    VProc *Victim = pickVictim(Thief);
    if (Victim && attemptSteal(Thief, *Victim)) {
      B.FailedRounds = 0;
      return true;
    }
    ++B.FailedRounds;
    ++Thief.SStats.FailedStealRounds;
    return false;
  }

  // One round: walk the proximity tiers nearest-first, probing each
  // tier's members in a randomized rotation so same-node thieves spread
  // over their victims. Only loaded victims are worth a handshake; a
  // failed attempt (mailbox contention, or the victim drained before
  // answering) falls through to the next candidate. Tier k is probed
  // only once the thief has gone k * RemotePatience rounds empty-handed:
  // steals reach farther out the longer the whole neighborhood stays
  // dry, so a freshly loaded queue feeds its own node first.
  if (walkTiers(Thief, tierLimit(Thief), [&](VProc &Cand) {
        return attemptSteal(Thief, Cand);
      })) {
    B.FailedRounds = 0;
    return true;
  }
  ++B.FailedRounds;
  ++Thief.SStats.FailedStealRounds;
  return false;
}

bool Scheduler::attemptSteal(VProc &Thief, VProc &Victim) {
  StealRequest &Req = Thief.MyRequest;
  // Plain stores, published by the CAS below (handshake step 1 in
  // VProc.h).
  Req.ThiefNode = Thief.node();
  Req.State.store(StealRequest::Posted, std::memory_order_relaxed);
  StealRequest *Expected = nullptr;
  if (!Victim.Mailbox.compare_exchange_strong(Expected, &Req,
                                              std::memory_order_acq_rel)) {
    Req.State.store(StealRequest::Idle, std::memory_order_relaxed);
    ++Thief.SStats.FailedStealAttempts;
    return false; // another thief got there first
  }

  // Wait for the victim's answer; keep answering our own mailbox and
  // joining pending collections so nothing deadlocks.
  for (;;) {
    int S = Req.State.load(std::memory_order_acquire);
    if (S == StealRequest::Filled) {
      // The acquire above pairs with the victim's release store of
      // Filled: the batch slots and Count are visible (step 2).
      unsigned Count = Req.Count;
      MANTI_CHECK(Count >= 1 && Count <= StealRequest::MaxBatch,
                  "steal batch out of range");
      Task First = Req.Stolen[0];
      // Queue the rest of the batch locally (oldest first, so the local
      // LIFO end still prefers the newest work). The queue is scanned as
      // roots, so the environments stay live.
      for (unsigned I = 1; I < Count; ++I)
        Thief.enqueueStolen(Req.Stolen[I]);
      for (unsigned I = 0; I < Count; ++I)
        Req.Stolen[I] = Task();
      Req.Count = 0;
      Req.State.store(StealRequest::Idle, std::memory_order_release);

      Thief.SStats.TasksStolen += Count;
      ++Thief.SStats.StealBatches;
      if (Victim.node() == Thief.node())
        ++Thief.SStats.NodeLocalBatches;
      else
        ++Thief.SStats.CrossNodeBatches;
      MANTI_DEBUG("sched", "vp%u stole %u task(s) from vp%u (%s-node)",
                  Thief.id(), Count, Victim.id(),
                  Victim.node() == Thief.node() ? "same" : "cross");
      Thief.runTask(First);
      return true;
    }
    if (S == StealRequest::Failed) {
      Req.State.store(StealRequest::Idle, std::memory_order_release);
      ++Thief.SStats.FailedStealAttempts;
      return false;
    }
    serviceSteal(Thief);
    Thief.heap().safePoint();
    std::this_thread::yield();
  }
}

bool Scheduler::serviceSteal(VProc &Victim) {
  StealRequest *Req = Victim.Mailbox.load(std::memory_order_acquire);
  if (!Req)
    return false;
  std::size_t K = Victim.ReadyQ.size();
  if (K == 0) {
    Victim.Mailbox.store(nullptr, std::memory_order_release);
    Req->State.store(StealRequest::Failed, std::memory_order_release);
    return true;
  }
  // Steal the oldest ceil(k/2) tasks (capped): they are the largest
  // units of pending work, and handing over several at once amortizes
  // the handshake and the promotion pauses.
  unsigned Take = static_cast<unsigned>(
      std::min<std::size_t>((K + 1) / 2, StealBatch));
  uint64_t PromotedBefore = Victim.Heap.Stats.PromoteBytes;
  for (unsigned I = 0; I < Take; ++I) {
    // Tasks staged in Req->Stolen are rooted by nobody until the thief
    // sees Filled; this is safe because nothing between popOldest() and
    // the Filled store below can collect -- promote() copies and at most
    // *requests* a global GC (which only runs at safe points, and the
    // victim takes none inside this loop).
    Task T = Victim.popOldest();
    if (RT.lazyPromotion()) {
      // "a lazy promotion scheme for work stealing": only now -- when
      // the task provably leaves this vproc -- does its environment move
      // to the global heap, and only this vproc can legally copy it out
      // of its own local heap.
      T.Env = Victim.Heap.promote(T.Env);
    }
    Req->Stolen[I] = T;
  }
  uint64_t EnvBytes = Victim.Heap.Stats.PromoteBytes - PromotedBefore;
  Req->Count = Take;

  Victim.SStats.TasksServiced += Take;
  ++Victim.SStats.BatchesServiced;
  Victim.SStats.StolenEnvBytes += EnvBytes;
  if (EnvBytes > 0)
    RT.world().traffic().record(Victim.node(), Req->ThiefNode, EnvBytes);

  // Handshake step 2: plain writes above, then the release pair.
  Victim.Mailbox.store(nullptr, std::memory_order_release);
  Req->State.store(StealRequest::Filled, std::memory_order_release);
  return true;
}

void Scheduler::idleBackoff(VProc &VP, bool RecordStats) {
  BackoffState &B = Backoff[VP.id()];
  unsigned R = ++B.IdleRounds;
  if (R <= SpinRounds)
    return; // spin rung: retry immediately, the caller's poll is the spin
  if (R <= SpinRounds + YieldRounds ||
      VP.Mailbox.load(std::memory_order_acquire) != nullptr ||
      RT.world().globalGCPending()) {
    // Yield rung -- also taken instead of parking whenever a thief or a
    // pending collection needs a prompt answer.
    std::this_thread::yield();
    return;
  }
  unsigned Step = std::min(R - SpinRounds - YieldRounds - 1, 5u);
  unsigned Micros = std::min(MinParkMicros << Step, MaxParkMicros);
  auto Start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::microseconds(Micros));
  auto End = std::chrono::steady_clock::now();
  if (RecordStats) {
    ++VP.SStats.Parks;
    VP.SStats.ParkNanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count());
  }
}

SchedStats Scheduler::aggregateStats() const {
  SchedStats Total;
  for (unsigned I = 0; I < RT.numVProcs(); ++I)
    Total.merge(RT.vproc(I).schedStats());
  return Total;
}
