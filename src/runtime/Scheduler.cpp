//===- runtime/Scheduler.cpp -----------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"

#include "numa/TrafficMatrix.h"
#include "runtime/Runtime.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace manti;

namespace {

/// Idle-ladder shape: the first rungs retry immediately (the caller's
/// poll loop is the spin), the next rungs yield, and everything beyond
/// parks on the node doorbell in bounded, exponentially growing waits.
constexpr unsigned SpinRounds = 16;
constexpr unsigned YieldRounds = 32;
constexpr unsigned MinParkMicros = 8;
/// Park backstop: with doorbells a ring ends the wait immediately, so
/// this bound only matters when a wake-up signal has no ring (e.g. a
/// join counter hitting zero) or in the ladder-baseline ablation. Small
/// enough that such a vproc still reaches its next safe point promptly.
constexpr unsigned MaxParkMicros = 256;

/// blockOn's poll+yield spin before the first doorbell park: long
/// enough that a fast channel partner is caught without a futex round
/// trip, short enough that a genuinely blocked vproc stops burning CPU.
constexpr unsigned BlockSpinRounds = 48;

/// noteSpawn escalates a wasted local ring to the nearest parked remote
/// node only once the spawner's queue has at least this many tasks (the
/// local vprocs are saturated and there is work to spare).
constexpr std::size_t RemoteRingDepth = 4;

} // namespace

Scheduler::Scheduler(Runtime &RT)
    : RT(RT), Lot(RT.parkLot()),
      StealBatch(std::clamp(RT.config().StealBatch, 1u,
                            StealRequest::MaxBatch)),
      LocalStealFirst(RT.config().LocalStealFirst),
      UseDoorbells(RT.config().UseDoorbells),
      RemotePatience(RT.config().RemoteStealPatience) {
  unsigned N = RT.numVProcs();
  Backoff.resize(N);
  Proximity.resize(N);

  // Group the other vprocs by the node-distance tiers the topology
  // reports: tier 0 = same node, then increasing link-hop distance.
  const Topology &Topo = RT.world().topology();
  for (unsigned V = 0; V < N; ++V) {
    std::vector<std::vector<NodeId>> NodeTiers =
        Topo.nodesByDistance(RT.vproc(V).node());
    for (const std::vector<NodeId> &Tier : NodeTiers) {
      std::vector<unsigned> VTier;
      for (NodeId Node : Tier)
        for (unsigned U = 0; U < N; ++U)
          if (U != V && RT.vproc(U).node() == Node)
            VTier.push_back(U);
      if (!VTier.empty())
        Proximity[V].push_back(std::move(VTier));
    }
  }

  // Ring-escalation order: from each vproc-hosting node, the *other*
  // nodes that host vprocs, nearest first.
  std::vector<bool> HasVProc(Topo.numNodes(), false);
  for (unsigned V = 0; V < N; ++V)
    HasVProc[RT.vproc(V).node()] = true;
  NodeOrder.resize(Topo.numNodes());
  for (NodeId From = 0; From < Topo.numNodes(); ++From) {
    for (const std::vector<NodeId> &Tier : Topo.nodesByDistance(From))
      for (NodeId To : Tier)
        if (To != From && HasVProc[To])
          NodeOrder[From].push_back(To);
  }
}

std::size_t Scheduler::tierLimit(const VProc &Thief) const {
  if (RemotePatience == 0)
    return Proximity[Thief.id()].size();
  return 1 + static_cast<std::size_t>(Backoff[Thief.id()].FailedRounds /
                                      RemotePatience);
}

template <typename TryFnT>
VProc *Scheduler::walkTiers(VProc &Thief, std::size_t TierLimit,
                            TryFnT Try) {
  std::size_t TierIdx = 0;
  for (const std::vector<unsigned> &Tier : Proximity[Thief.id()]) {
    if (TierIdx++ >= TierLimit)
      break;
    unsigned Sz = static_cast<unsigned>(Tier.size());
    unsigned Start =
        Sz > 1 ? static_cast<unsigned>(Thief.Rng.nextBelow(Sz)) : 0;
    for (unsigned I = 0; I < Sz; ++I) {
      VProc &Cand = RT.vproc(Tier[(Start + I) % Sz]);
      if (Cand.queueDepth() == 0)
        continue;
      if (Try(Cand))
        return &Cand;
    }
  }
  return nullptr;
}

VProc *Scheduler::pickVictim(VProc &Thief) {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return nullptr;
  if (!LocalStealFirst) {
    // Ablation baseline: uniform over the other vprocs, load-blind.
    unsigned VictimId = static_cast<unsigned>(Thief.Rng.nextBelow(N - 1));
    if (VictimId >= Thief.id())
      ++VictimId;
    return &RT.vproc(VictimId);
  }
  return walkTiers(Thief, tierLimit(Thief), [](VProc &) { return true; });
}

bool Scheduler::stealAndRun(VProc &Thief) {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return false;

  BackoffState &B = Backoff[Thief.id()];
  if (!LocalStealFirst) {
    VProc *Victim = pickVictim(Thief);
    if (Victim && attemptSteal(Thief, *Victim)) {
      B.FailedRounds = 0;
      return true;
    }
    ++B.FailedRounds;
    ++Thief.SStats.FailedStealRounds;
    return false;
  }

  // One round: walk the proximity tiers nearest-first, probing each
  // tier's members in a randomized rotation so same-node thieves spread
  // over their victims. Only loaded victims are worth a handshake; a
  // failed attempt (mailbox contention, or the victim drained before
  // answering) falls through to the next candidate. Tier k is probed
  // only once the thief has gone k * RemotePatience rounds empty-handed:
  // steals reach farther out the longer the whole neighborhood stays
  // dry, so a freshly loaded queue feeds its own node first.
  if (walkTiers(Thief, tierLimit(Thief), [&](VProc &Cand) {
        return attemptSteal(Thief, Cand);
      })) {
    B.FailedRounds = 0;
    return true;
  }
  ++B.FailedRounds;
  ++Thief.SStats.FailedStealRounds;
  return false;
}

bool Scheduler::attemptSteal(VProc &Thief, VProc &Victim) {
  StealRequest &Req = Thief.MyRequest;
  // Plain stores, published by the CAS below (handshake step 1 in
  // VProc.h).
  Req.ThiefNode = Thief.node();
  Req.State.store(StealRequest::Posted, std::memory_order_relaxed);
  StealRequest *Expected = nullptr;
  if (!Victim.Mailbox.compare_exchange_strong(Expected, &Req,
                                              std::memory_order_acq_rel)) {
    Req.State.store(StealRequest::Idle, std::memory_order_relaxed);
    ++Thief.SStats.FailedStealAttempts;
    return false; // another thief got there first
  }
  // The victim answers mailboxes from its poll loop; if it is parked
  // (idle between polls, or blocked in a channel), ring its node so the
  // handshake is not stuck behind a park backstop.
  ringNode(Thief, Victim.node());

  // Wait for the victim's answer; keep answering our own mailbox and
  // joining pending collections so nothing deadlocks.
  for (;;) {
    int S = Req.State.load(std::memory_order_acquire);
    if (S == StealRequest::Filled) {
      // The acquire above pairs with the victim's release store of
      // Filled: the batch slots and Count are visible (step 2).
      unsigned Count = Req.Count;
      MANTI_CHECK(Count >= 1 && Count <= StealRequest::MaxBatch,
                  "steal batch out of range");
      Task First = Req.Stolen[0];
      // Queue the rest of the batch locally (oldest first, so the local
      // LIFO end still prefers the newest work). The queue is scanned as
      // roots, so the environments stay live.
      for (unsigned I = 1; I < Count; ++I)
        Thief.enqueueStolen(Req.Stolen[I]);
      for (unsigned I = 0; I < Count; ++I)
        Req.Stolen[I] = Task();
      Req.Count = 0;
      Req.State.store(StealRequest::Idle, std::memory_order_release);

      Thief.SStats.TasksStolen += Count;
      ++Thief.SStats.StealBatches;
      if (Victim.node() == Thief.node())
        ++Thief.SStats.NodeLocalBatches;
      else
        ++Thief.SStats.CrossNodeBatches;
      // Finishing a multi-task handshake leaves fresh work on this
      // node's queue: ring it so parked peers help with the batch.
      if (Count > 1)
        ringNode(Thief, Thief.node());
      MANTI_DEBUG("sched", "vp%u stole %u task(s) from vp%u (%s-node)",
                  Thief.id(), Count, Victim.id(),
                  Victim.node() == Thief.node() ? "same" : "cross");
      Thief.runTask(First);
      return true;
    }
    if (S == StealRequest::Failed) {
      Req.State.store(StealRequest::Idle, std::memory_order_release);
      ++Thief.SStats.FailedStealAttempts;
      return false;
    }
    serviceSteal(Thief);
    Thief.heap().safePoint();
    std::this_thread::yield();
  }
}

bool Scheduler::serviceSteal(VProc &Victim) {
  StealRequest *Req = Victim.Mailbox.load(std::memory_order_acquire);
  if (!Req)
    return false;
  std::size_t K = Victim.ReadyQ.size();
  if (K == 0) {
    Victim.Mailbox.store(nullptr, std::memory_order_release);
    Req->State.store(StealRequest::Failed, std::memory_order_release);
    return true;
  }
  // Steal the oldest ceil(k/2) tasks (capped): they are the largest
  // units of pending work, and handing over several at once amortizes
  // the handshake and the promotion pauses. Within that budget, tasks
  // hinted at the thief's node go first (popForSteal) so hinted work
  // chases its data.
  unsigned Take = static_cast<unsigned>(
      std::min<std::size_t>((K + 1) / 2, StealBatch));
  uint64_t PromotedBefore = Victim.Heap.Stats.PromoteBytes;
  // Tasks staged in Req->Stolen are rooted by nobody until the thief
  // sees Filled; this is safe because nothing between popForSteal() and
  // the Filled store below can collect -- promote() copies and at most
  // *requests* a global GC (which only runs at safe points, and the
  // victim takes none inside this loop).
  unsigned AffinityMatches = 0;
  Take = Victim.popForSteal(Req->ThiefNode, Take, Req->Stolen,
                            &AffinityMatches);
  for (unsigned I = 0; I < Take; ++I) {
    if (RT.lazyPromotion()) {
      // "a lazy promotion scheme for work stealing": only now -- when
      // the task provably leaves this vproc -- does its environment move
      // to the global heap, and only this vproc can legally copy it out
      // of its own local heap.
      Req->Stolen[I].Env = Victim.Heap.promote(Req->Stolen[I].Env);
    }
  }
  uint64_t EnvBytes = Victim.Heap.Stats.PromoteBytes - PromotedBefore;
  Req->Count = Take;

  Victim.SStats.TasksServiced += Take;
  ++Victim.SStats.BatchesServiced;
  Victim.SStats.StolenEnvBytes += EnvBytes;
  Victim.SStats.AffinityHandoffs += AffinityMatches;
  if (EnvBytes > 0)
    RT.world().traffic().record(Victim.node(), Req->ThiefNode, EnvBytes);

  // Handshake step 2: plain writes above, then the release pair.
  Victim.Mailbox.store(nullptr, std::memory_order_release);
  Req->State.store(StealRequest::Filled, std::memory_order_release);
  return true;
}

unsigned Scheduler::parkMicrosFor(unsigned Step) {
  return std::min(MinParkMicros << std::min(Step, 5u), MaxParkMicros);
}

void Scheduler::doorbellPark(VProc &VP, unsigned Micros, bool RecordStats,
                             bool (*Pred)(void *), void *PredCtx) {
  if (!UseDoorbells) {
    // Ladder baseline: a blind bounded sleep nobody can cut short.
    auto Start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::microseconds(Micros));
    auto End = std::chrono::steady_clock::now();
    if (RecordStats) {
      ++VP.SStats.Parks;
      VP.SStats.ParkNanos += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
              .count());
      ++VP.SStats.ParkTimeouts;
    }
    return;
  }
  // Doorbell park: snapshot the epochs, re-check every standing wake
  // condition, then wait. Any ring that lands after the snapshot --
  // including the global-GC broadcast -- makes the wait return
  // immediately, so the conditions checked here can never be missed.
  ParkLot::Token T = Lot.prepare(VP.node());
  // Fence pairing with tryRing: in the seq_cst fence order, either this
  // fence precedes the ringer's (so the ringer's waiter-count load sees
  // prepare's increment and rings) or the ringer's precedes this one
  // (so the re-checks below see the condition its ring site published).
  // Either way a condition set concurrently with this park cannot be
  // missed, which is what lets blockOn use long ring-driven parks.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if ((Pred && Pred(PredCtx)) ||
      VP.Mailbox.load(std::memory_order_acquire) != nullptr ||
      RT.world().globalGCPending()) {
    Lot.cancel(VP.node());
    std::this_thread::yield();
    return;
  }
  auto Start = std::chrono::steady_clock::now();
  uint64_t RingLatency = 0;
  bool Rung = Lot.park(VP.node(), T, std::chrono::microseconds(Micros),
                       &RingLatency);
  auto End = std::chrono::steady_clock::now();
  if (RecordStats) {
    ++VP.SStats.Parks;
    VP.SStats.ParkNanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count());
    if (Rung) {
      ++VP.SStats.RingWakeups;
      VP.SStats.RingWakeupNanos += RingLatency;
    } else {
      ++VP.SStats.ParkTimeouts;
    }
  }
}

void Scheduler::idleBackoff(VProc &VP, bool RecordStats) {
  BackoffState &B = Backoff[VP.id()];
  unsigned R = ++B.IdleRounds;
  if (R <= SpinRounds)
    return; // spin rung: retry immediately, the caller's poll is the spin
  if (R <= SpinRounds + YieldRounds ||
      VP.Mailbox.load(std::memory_order_acquire) != nullptr ||
      RT.world().globalGCPending()) {
    // Yield rung -- also taken instead of parking whenever a thief or a
    // pending collection needs a prompt answer.
    std::this_thread::yield();
    return;
  }
  doorbellPark(VP, parkMicrosFor(R - SpinRounds - YieldRounds - 1),
               RecordStats, /*Pred=*/nullptr, /*PredCtx=*/nullptr);
}

bool Scheduler::tryRing(VProc &Ringer, NodeId Node) {
  ++Ringer.SStats.RingsSent;
  // Skip the epoch bump and futex when nobody is parked: the common
  // busy-system case stays a fence plus one atomic load. The fence
  // pairs with doorbellPark's (see there): every ring site publishes
  // its condition before calling here, so a parker that this load
  // misses is one whose pre-park re-check sees the condition instead.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (Lot.parkedOn(Node) != 0 && Lot.ring(Node) != 0)
    return true;
  ++Ringer.SStats.RingsWasted;
  return false;
}

void Scheduler::ringNode(VProc &Ringer, NodeId Node) {
  if (!UseDoorbells)
    return;
  tryRing(Ringer, Node);
}

void Scheduler::noteSpawn(VProc &VP, const Task &T) {
  if (!UseDoorbells)
    return;
  // A hinted task rings its data's node first ("tasks chase their
  // data"); with no hint the spawner's own node is the target.
  if (T.Affinity != Task::NoAffinity && T.Affinity != VP.node() &&
      tryRing(VP, T.Affinity))
    return;
  // Hinted node saturated (or no hint): the task sits on *this* queue,
  // so parked local peers can steal it either way -- ring them rather
  // than leaving them to their backstops.
  if (tryRing(VP, VP.node()))
    return;
  // Local vprocs are all busy too. Once the queue runs deep enough that
  // this node cannot drain it alone, wake the nearest node with parked
  // vprocs -- the one remote ring a saturated node earns.
  if (VP.queueDepth() < RemoteRingDepth)
    return;
  for (NodeId Remote : NodeOrder[VP.node()]) {
    if (Lot.parkedOn(Remote) != 0) {
      tryRing(VP, Remote);
      return;
    }
  }
}

void Scheduler::blockOn(VProc &VP, bool (*Pred)(void *), void *Ctx,
                        bool RecordStats) {
  // Fast path: the partner is often mid-operation; a short poll+yield
  // spin catches it without a futex round trip.
  for (unsigned I = 0; I < BlockSpinRounds; ++I) {
    if (Pred(Ctx))
      return;
    VP.poll();
    std::this_thread::yield();
  }
  // Slow path: doorbell parks with the same growing bounded backstop as
  // the idle ladder. Every wake-up a channel block waits for has a ring
  // (hand-offs, Taken, steal requests, the GC broadcast) and the fence
  // pairing in doorbellPark/tryRing means none can be missed, so the
  // backstop is purely a safety net; it is kept short anyway because on
  // an oversubscribed host a shallow sleep resumes faster than a deep
  // futex wake. poll() between parks keeps this vproc answering steal
  // requests and joining pending collections while blocked.
  unsigned Round = 0;
  while (!Pred(Ctx)) {
    VP.poll();
    doorbellPark(VP, parkMicrosFor(Round++), RecordStats, Pred, Ctx);
  }
}

SchedStats Scheduler::aggregateStats() const {
  SchedStats Total;
  for (unsigned I = 0; I < RT.numVProcs(); ++I)
    Total.merge(RT.vproc(I).schedStats());
  return Total;
}
