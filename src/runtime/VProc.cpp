//===- runtime/VProc.cpp ---------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/VProc.h"

#include "gc/Handles.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"
#include "support/Assert.h"
#include "support/Logging.h"

using namespace manti;

VProc::VProc(Runtime &RT, VProcHeap &Heap)
    : RT(RT), Heap(Heap), Rng(0x5eedULL + Heap.id() * 0x9E3779B9ULL) {}

void VProc::spawn(Task T) {
  ++SStats.Spawns;
  if (!RT.lazyPromotion()) {
    // Eager promotion: pay the cost on every spawn whether or not the
    // task is ever stolen (the ablation baseline).
    T.Env = Heap.promote(T.Env);
  }
  ReadyQ.push_back(T);
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
}

bool VProc::runOneLocal() {
  if (ReadyQ.empty())
    return false;
  Task T = ReadyQ.back();
  ReadyQ.pop_back();
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  runTask(T);
  return true;
}

Task VProc::popOldest() {
  MANTI_CHECK(!ReadyQ.empty(), "popOldest on an empty queue");
  // The oldest task is the largest unit of pending work.
  Task T = ReadyQ.front();
  ReadyQ.pop_front();
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  return T;
}

void VProc::enqueueStolen(Task T) {
  ReadyQ.push_back(T);
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
}

void VProc::runTask(Task T) {
  RootScope Scope(Heap);
  Scope.rootExternal(T.Env); // keep the environment rooted while it runs
  T.Fn(RT, *this, T);
}

bool VProc::serviceSteal() { return RT.scheduler().serviceSteal(*this); }

void VProc::poll() {
  serviceSteal();
  Heap.safePoint();
}

bool VProc::stealAndRun() { return RT.scheduler().stealAndRun(*this); }

void VProc::joinWait(JoinCounter &Join) {
  Scheduler &Sched = RT.scheduler();
  while (!Join.done()) {
    if (runOneLocal()) {
      Sched.noteProgress(*this);
      continue;
    }
    poll();
    if (Join.done())
      break;
    if (stealAndRun()) {
      Sched.noteProgress(*this);
      continue;
    }
    Sched.idleBackoff(*this);
  }
  Sched.noteProgress(*this);
}

//===----------------------------------------------------------------------===//
// ResultCell
//===----------------------------------------------------------------------===//

ResultCell::ResultCell(VProc &Owner) : Owner(Owner) {
  Owner.Cells.push_back(this);
}

ResultCell::~ResultCell() {
  // LIFO discipline in practice, but tolerate arbitrary order.
  auto &Cells = Owner.Cells;
  for (std::size_t I = Cells.size(); I-- > 0;) {
    if (Cells[I] == this) {
      Cells[I] = Cells.back();
      Cells.pop_back();
      return;
    }
  }
  MANTI_UNREACHABLE("result cell was not registered with its owner");
}

void ResultCell::fill(VProc &Producer, Value V) {
  if (&Producer != &Owner) {
    // Cross-vproc result: the value must leave the producer's local heap
    // before the owner may see it.
    V = Producer.heap().promote(V);
  }
  Bits = V.bits();
  Filled.store(true, std::memory_order_release);
}
