//===- runtime/VProc.cpp ---------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/VProc.h"

#include "runtime/Runtime.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <thread>

using namespace manti;

VProc::VProc(Runtime &RT, VProcHeap &Heap)
    : RT(RT), Heap(Heap), Rng(0x5eedULL + Heap.id() * 0x9E3779B9ULL) {}

void VProc::spawn(Task T) {
  ++NumSpawns;
  if (!RT.lazyPromotion()) {
    // Eager promotion: pay the cost on every spawn whether or not the
    // task is ever stolen (the ablation baseline).
    T.Env = Heap.promote(T.Env);
  }
  ReadyQ.push_back(T);
}

bool VProc::runOneLocal() {
  if (ReadyQ.empty())
    return false;
  Task T = ReadyQ.back();
  ReadyQ.pop_back();
  runTask(T);
  return true;
}

void VProc::runTask(Task T) {
  GcFrame Frame(Heap);
  Frame.root(T.Env); // keep the environment rooted while the task runs
  T.Fn(RT, *this, T);
}

bool VProc::serviceSteal() {
  StealRequest *Req = Mailbox.load(std::memory_order_acquire);
  if (!Req)
    return false;
  if (ReadyQ.empty()) {
    Mailbox.store(nullptr, std::memory_order_release);
    Req->State.store(StealRequest::Failed, std::memory_order_release);
    return true;
  }
  // Steal the oldest task: it is the largest unit of pending work.
  Task T = ReadyQ.front();
  ReadyQ.pop_front();
  if (RT.lazyPromotion()) {
    // "a lazy promotion scheme for work stealing": only now -- when the
    // task provably leaves this vproc -- does its environment move to
    // the global heap, and only this vproc can legally copy it out of
    // its own local heap.
    T.Env = Heap.promote(T.Env);
  }
  ++NumServiced;
  Req->Stolen = T;
  Mailbox.store(nullptr, std::memory_order_release);
  Req->State.store(StealRequest::Filled, std::memory_order_release);
  return true;
}

void VProc::poll() {
  serviceSteal();
  Heap.safePoint();
}

bool VProc::stealAndRun() {
  unsigned N = RT.numVProcs();
  if (N <= 1)
    return false;
  unsigned VictimId = static_cast<unsigned>(Rng.nextBelow(N - 1));
  if (VictimId >= id())
    ++VictimId; // uniform over the other vprocs
  VProc &Victim = RT.vproc(VictimId);

  MyRequest.State.store(StealRequest::Posted, std::memory_order_relaxed);
  StealRequest *Expected = nullptr;
  if (!Victim.Mailbox.compare_exchange_strong(Expected, &MyRequest,
                                              std::memory_order_acq_rel)) {
    MyRequest.State.store(StealRequest::Idle, std::memory_order_relaxed);
    ++NumFailedSteals;
    return false; // another thief got there first
  }

  // Wait for the victim's answer; keep answering our own mailbox and
  // joining pending collections so nothing deadlocks.
  for (;;) {
    int S = MyRequest.State.load(std::memory_order_acquire);
    if (S == StealRequest::Filled) {
      Task T = MyRequest.Stolen;
      MyRequest.Stolen = Task();
      MyRequest.State.store(StealRequest::Idle, std::memory_order_release);
      ++NumStealsOut;
      MANTI_DEBUG("sched", "vp%u stole from vp%u", id(), VictimId);
      runTask(T);
      return true;
    }
    if (S == StealRequest::Failed) {
      MyRequest.State.store(StealRequest::Idle, std::memory_order_release);
      ++NumFailedSteals;
      return false;
    }
    serviceSteal();
    Heap.safePoint();
    std::this_thread::yield();
  }
}

void VProc::joinWait(JoinCounter &Join) {
  while (!Join.done()) {
    if (runOneLocal())
      continue;
    poll();
    if (Join.done())
      break;
    if (stealAndRun())
      continue;
    std::this_thread::yield();
  }
}

//===----------------------------------------------------------------------===//
// ResultCell
//===----------------------------------------------------------------------===//

ResultCell::ResultCell(VProc &Owner) : Owner(Owner) {
  Owner.Cells.push_back(this);
}

ResultCell::~ResultCell() {
  // LIFO discipline in practice, but tolerate arbitrary order.
  auto &Cells = Owner.Cells;
  for (std::size_t I = Cells.size(); I-- > 0;) {
    if (Cells[I] == this) {
      Cells[I] = Cells.back();
      Cells.pop_back();
      return;
    }
  }
  MANTI_UNREACHABLE("result cell was not registered with its owner");
}

void ResultCell::fill(VProc &Producer, Value V) {
  if (&Producer != &Owner) {
    // Cross-vproc result: the value must leave the producer's local heap
    // before the owner may see it.
    V = Producer.heap().promote(V);
  }
  Bits = V.bits();
  Filled.store(true, std::memory_order_release);
}
