//===- runtime/VProc.cpp ---------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/VProc.h"

#include "gc/Handles.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <algorithm>

using namespace manti;

VProc::VProc(Runtime &RT, VProcHeap &Heap)
    : RT(RT), Heap(Heap), Rng(0x5eedULL + Heap.id() * 0x9E3779B9ULL) {}

void VProc::spawn(Task T) {
  ++SStats.Spawns;
  if (!RT.lazyPromotion()) {
    // Eager promotion: pay the cost on every spawn whether or not the
    // task is ever stolen (the ablation baseline).
    T.Env = Heap.promote(T.Env);
  }
  ReadyQ.push_back(T);
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  // New work is a wake-up event: ring the hinted node (or this one) so
  // parked vprocs come and steal instead of running out their backstop.
  RT.scheduler().noteSpawn(*this, T);
}

bool VProc::runOneLocal() {
  if (ReadyQ.empty())
    return false;
  Task T = ReadyQ.back();
  ReadyQ.pop_back();
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  runTask(T);
  return true;
}

void VProc::enqueueStolen(Task T) {
  ReadyQ.push_back(T);
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
}

unsigned VProc::popForSteal(NodeId ThiefNode, unsigned Max, Task *Out,
                            unsigned *AffinityMatches) {
  std::size_t K = ReadyQ.size();
  MANTI_CHECK(K > 0 && Max > 0 && Max <= StealRequest::MaxBatch,
              "popForSteal needs a non-empty queue and a batch-sized Max");
  unsigned Take = static_cast<unsigned>(std::min<std::size_t>(Max, K));

  // Rank the oldest `Window` tasks: hinted-at-the-thief first, then
  // unhinted, then hinted-elsewhere (those would rather stay, but a
  // starved thief still gets them). Indices within a class stay
  // ascending, preserving oldest-first inside each preference class.
  constexpr std::size_t ScanWindow = 4 * StealRequest::MaxBatch;
  std::size_t Window = std::min<std::size_t>(K, ScanWindow);
  std::size_t Picked[StealRequest::MaxBatch];
  unsigned N = 0;
  unsigned Matches = 0;
  for (int Class = 0; Class < 3 && N < Take; ++Class) {
    for (std::size_t I = 0; I < Window && N < Take; ++I) {
      NodeId Hint = ReadyQ[I].Affinity;
      int C = Hint == ThiefNode ? 0 : (Hint == Task::NoAffinity ? 1 : 2);
      if (C != Class)
        continue; // each index belongs to exactly one class
      Picked[N++] = I;
      if (Class == 0)
        ++Matches;
    }
  }
  // Copy out in pick order, then erase highest-index-first so the
  // remaining indices stay valid. All indices are near the front, so
  // each erase shifts at most the scan window.
  for (unsigned I = 0; I < N; ++I)
    Out[I] = ReadyQ[Picked[I]];
  std::size_t Sorted[StealRequest::MaxBatch];
  std::copy(Picked, Picked + N, Sorted);
  std::sort(Sorted, Sorted + N);
  for (unsigned I = N; I-- > 0;)
    ReadyQ.erase(ReadyQ.begin() + static_cast<std::ptrdiff_t>(Sorted[I]));
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  if (AffinityMatches)
    *AffinityMatches = Matches;
  return N;
}

void VProc::runTask(Task T) {
  RootScope Scope(Heap);
  Scope.rootExternal(T.Env); // keep the environment rooted while it runs
  T.Fn(RT, *this, T);
}

bool VProc::serviceSteal() { return RT.scheduler().serviceSteal(*this); }

void VProc::poll() {
  serviceSteal();
  Heap.safePoint();
}

bool VProc::stealAndRun() { return RT.scheduler().stealAndRun(*this); }

void VProc::joinWait(JoinCounter &Join) {
  Scheduler &Sched = RT.scheduler();
  while (!Join.done()) {
    if (runOneLocal()) {
      Sched.noteProgress(*this);
      continue;
    }
    poll();
    if (Join.done())
      break;
    if (stealAndRun()) {
      Sched.noteProgress(*this);
      continue;
    }
    Sched.idleBackoff(*this);
  }
  Sched.noteProgress(*this);
}

//===----------------------------------------------------------------------===//
// ResultCell
//===----------------------------------------------------------------------===//

ResultCell::ResultCell(VProc &Owner) : Owner(Owner) {
  Owner.Cells.push_back(this);
}

ResultCell::~ResultCell() {
  // LIFO discipline in practice, but tolerate arbitrary order.
  auto &Cells = Owner.Cells;
  for (std::size_t I = Cells.size(); I-- > 0;) {
    if (Cells[I] == this) {
      Cells[I] = Cells.back();
      Cells.pop_back();
      return;
    }
  }
  MANTI_UNREACHABLE("result cell was not registered with its owner");
}

void ResultCell::fill(VProc &Producer, Value V) {
  if (&Producer != &Owner) {
    // Cross-vproc result: the value must leave the producer's local heap
    // before the owner may see it.
    V = Producer.heap().promote(V);
  }
  Bits = V.bits();
  Filled.store(true, std::memory_order_release);
}
