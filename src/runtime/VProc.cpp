//===- runtime/VProc.cpp ---------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/VProc.h"

#include "gc/Handles.h"
#include "runtime/Runtime.h"
#include "runtime/Scheduler.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <algorithm>

using namespace manti;

VProc::VProc(Runtime &RT, VProcHeap &Heap)
    : RT(RT), Heap(Heap), Rng(0x5eedULL + Heap.id() * 0x9E3779B9ULL) {}

void VProc::spawn(Task T) {
  ++SStats.Spawns;
  if (!RT.lazyPromotion()) {
    // Eager promotion: pay the cost on every spawn whether or not the
    // task is ever stolen (the ablation baseline).
    T.Env = Heap.promote(T.Env);
  }
  ReadyQ.push_back(T);
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  // New work is a wake-up event: ring the hinted node (or this one) so
  // parked vprocs come and steal instead of running out their backstop.
  RT.scheduler().noteSpawn(*this, T);
  // Deep queue + a starved node = push work instead of waiting for
  // remote-steal patience to expire (no-op while ShedThreshold = 0 or
  // nobody remote is parked).
  RT.scheduler().maybeShed(*this);
}

bool VProc::runOneLocal() {
  if (ReadyQ.empty())
    return false;
  Task T = ReadyQ.back();
  ReadyQ.pop_back();
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
  runTask(T);
  return true;
}

void VProc::enqueueStolen(Task T) {
  ReadyQ.push_back(T);
  Depth.store(ReadyQ.size(), std::memory_order_relaxed);
}

namespace {

/// Shared owner-thread pop machinery for the two migration channels
/// (steal handshake and shed batch): ranks the oldest `4 * MaxN` tasks
/// of \p Q into preference classes (0 = most preferred; \p ClassOf maps
/// an affinity hint to [0, NumClasses)), pops up to \p Take of them in
/// class-then-age order into \p Out, and refreshes the cross-thread
/// depth counter. Indices within a class stay ascending, preserving
/// oldest-first inside each preference class; erasure runs
/// highest-index-first so the remaining indices stay valid, and all
/// indices are near the front, so each erase shifts at most the scan
/// window. \returns the task count; \p Class0Picks (when non-null)
/// receives how many came from class 0.
template <unsigned MaxN, int NumClasses, typename ClassFnT>
unsigned popRanked(std::deque<Task> &Q, std::atomic<std::size_t> &Depth,
                   unsigned Take, Task *Out, ClassFnT ClassOf,
                   unsigned *Class0Picks = nullptr) {
  constexpr std::size_t ScanWindow = 4 * MaxN;
  std::size_t Window = std::min<std::size_t>(Q.size(), ScanWindow);
  std::size_t Picked[MaxN];
  unsigned N = 0;
  unsigned Matches = 0;
  for (int Class = 0; Class < NumClasses && N < Take; ++Class) {
    for (std::size_t I = 0; I < Window && N < Take; ++I) {
      if (ClassOf(Q[I].Affinity) != Class)
        continue; // each index belongs to exactly one class
      Picked[N++] = I;
      if (Class == 0)
        ++Matches;
    }
  }
  for (unsigned I = 0; I < N; ++I)
    Out[I] = Q[Picked[I]];
  std::size_t Sorted[MaxN];
  std::copy(Picked, Picked + N, Sorted);
  std::sort(Sorted, Sorted + N);
  for (unsigned I = N; I-- > 0;)
    Q.erase(Q.begin() + static_cast<std::ptrdiff_t>(Sorted[I]));
  Depth.store(Q.size(), std::memory_order_relaxed);
  if (Class0Picks)
    *Class0Picks = Matches;
  return N;
}

} // namespace

unsigned VProc::popForSteal(NodeId ThiefNode, unsigned Max, Task *Out,
                            unsigned *AffinityMatches) {
  std::size_t K = ReadyQ.size();
  MANTI_CHECK(K > 0 && Max > 0 && Max <= StealRequest::MaxBatch,
              "popForSteal needs a non-empty queue and a batch-sized Max");
  unsigned Take = static_cast<unsigned>(std::min<std::size_t>(Max, K));
  // Hinted-at-the-thief first, then unhinted, then hinted-elsewhere
  // (those would rather stay, but a starved thief still gets them).
  return popRanked<StealRequest::MaxBatch, 3>(
      ReadyQ, Depth, Take, Out,
      [ThiefNode](NodeId Hint) {
        return Hint == ThiefNode ? 0 : (Hint == Task::NoAffinity ? 1 : 2);
      },
      AffinityMatches);
}

unsigned VProc::popForShed(NodeId TargetNode, unsigned Max, Task *Out) {
  std::size_t K = ReadyQ.size();
  MANTI_CHECK(K > 0 && Max > 0 && Max <= MaxShedBatch,
              "popForShed needs a non-empty queue and a shed-sized Max");
  unsigned Take = static_cast<unsigned>(std::min<std::size_t>(Max, K));
  const NodeId Local = node();
  // Hinted at the target (they *want* to move there), un-hinted, hinted
  // at some other remote node, and -- only when nothing else is
  // available -- tasks hinted at this very node: shedding a
  // locally-hinted task while an un-hinted one sits in the queue would
  // ship data-chasing work away from its data, so the class order
  // forbids it.
  return popRanked<MaxShedBatch, 4>(
      ReadyQ, Depth, Take, Out, [TargetNode, Local](NodeId Hint) {
        return Hint == TargetNode         ? 0
               : Hint == Task::NoAffinity ? 1
               : Hint == Local            ? 3
                                          : 2;
      });
}

void VProc::runTask(Task T) {
  RootScope Scope(Heap);
  Scope.rootExternal(T.Env); // keep the environment rooted while it runs
  T.Fn(RT, *this, T);
}

bool VProc::serviceSteal() { return RT.scheduler().serviceSteal(*this); }

void VProc::poll() {
  serviceSteal();
  Heap.safePoint();
}

bool VProc::stealAndRun() { return RT.scheduler().stealAndRun(*this); }

void JoinCounter::sub(int64_t N) {
  // Counters are stack-allocated in the joiner's frame: the decrement
  // that completes the region releases the joiner, which may return and
  // destroy the counter at any point after it. So the waiter is loaded
  // first, and nothing on this object is touched after the fetch_sub.
  VProc *W = Waiter.load(std::memory_order_acquire);
  if (Pending.fetch_sub(N, std::memory_order_acq_rel) - N > 0)
    return;
  if (!W)
    return;
  Scheduler &Sched = W->runtime().scheduler();
  if (!Sched.doorbells())
    return;
  // Ring-site fence discipline (pairs with doorbellPark's fence, see
  // tryRing): the completion was published by the fetch_sub above; the
  // fence orders it before the waiter-count load, so a joiner parking
  // concurrently either sees done() in its pre-park re-check or its
  // prepare() is visible here and the ring lands. No stats bump: the
  // SchedStats ring counters are owner-thread-only, and sub() runs on
  // whichever vproc finished the subtask.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  ParkLot &Lot = Sched.parkLot();
  if (Lot.parkedOn(W->node()) != 0)
    Lot.ring(W->node());
}

void VProc::joinWait(JoinCounter &Join) {
  Scheduler &Sched = RT.scheduler();
  // Targeted wake-up routing: the completing sub() rings this node, so
  // the idle-ladder parks below can use their full bounded backstop
  // instead of busy-polling the counter.
  Join.setWaiter(this);
  while (!Join.done()) {
    if (runOneLocal()) {
      Sched.noteProgress(*this);
      continue;
    }
    poll();
    if (Join.done())
      break;
    // Shed batches parked in this node's bay are nearer than anything a
    // steal could fetch; claim them before probing victims.
    if (Sched.claimShedAndRun(*this)) {
      Sched.noteProgress(*this);
      continue;
    }
    if (stealAndRun()) {
      Sched.noteProgress(*this);
      continue;
    }
    Sched.idleBackoff(
        *this, /*RecordStats=*/true,
        [](void *C) { return static_cast<JoinCounter *>(C)->done(); }, &Join);
  }
  // Drop the registration: the counter may be reused for a later region
  // whose completing sub() must not ring on a stale waiter.
  Join.setWaiter(nullptr);
  Sched.noteProgress(*this);
}

//===----------------------------------------------------------------------===//
// ResultCell
//===----------------------------------------------------------------------===//

ResultCell::ResultCell(VProc &Owner) : Owner(Owner) {
  Owner.Cells.push_back(this);
}

ResultCell::~ResultCell() {
  // LIFO discipline in practice, but tolerate arbitrary order.
  auto &Cells = Owner.Cells;
  for (std::size_t I = Cells.size(); I-- > 0;) {
    if (Cells[I] == this) {
      Cells[I] = Cells.back();
      Cells.pop_back();
      return;
    }
  }
  MANTI_UNREACHABLE("result cell was not registered with its owner");
}

void ResultCell::fill(VProc &Producer, Value V) {
  if (&Producer != &Owner) {
    // Cross-vproc result: the value must leave the producer's local heap
    // before the owner may see it.
    V = Producer.heap().promote(V);
  }
  Bits = V.bits();
  Filled.store(true, std::memory_order_release);
}
