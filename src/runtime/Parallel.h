//===- runtime/Parallel.h - implicitly-threaded combinators ---------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library face of PML's implicitly-threaded parallelism (Section
/// 2.1): fork-join range parallelism and parallel reduction. Work is
/// expressed as plain functions over [lo, hi) ranges; the combinators
/// split ranges in half, pushing the right halves onto the calling
/// vproc's queue where idle vprocs steal them ("this strategy is
/// designed to keep memory and computation local to the thread that
/// began the work whenever possible").
///
/// Reductions that produce heap Values route results through
/// ResultCells, which promote automatically when a task ran on a
/// different vproc than its spawner.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_PARALLEL_H
#define MANTI_RUNTIME_PARALLEL_H

#include "gc/Handles.h"
#include "runtime/Runtime.h"

#include <cstdint>

namespace manti {

/// Executes a half-open index range.
using RangeFn = void (*)(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                         void *Ctx);

/// Produces a Value from a leaf range.
using LeafFn = Value (*)(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                         void *Ctx);

/// Combines two subtree Values. Arguments are rooted by the caller.
using CombineFn = Value (*)(Runtime &RT, VProc &VP, Value Left, Value Right,
                            void *Ctx);

/// Produces a double from a leaf range (for numeric reductions).
using LeafDoubleFn = double (*)(Runtime &RT, VProc &VP, int64_t Lo,
                                int64_t Hi, void *Ctx);

/// Produces an int64 from a leaf range.
using LeafInt64Fn = int64_t (*)(Runtime &RT, VProc &VP, int64_t Lo,
                                int64_t Hi, void *Ctx);

/// Node affinity hint for a [Lo, Hi) range: the NUMA node holding the
/// data the range will traverse (Task::NoAffinity for none). Evaluated
/// at spawn time for each spawned right half.
using RangeAffinityFn = NodeId (*)(int64_t Lo, int64_t Hi, void *Ctx);

/// Runs \p Body over [Lo, Hi) in parallel, splitting down to \p Grain.
void parallelFor(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                 int64_t Grain, RangeFn Body, void *Ctx);

/// parallelFor with an affinity hint: every spawned subrange task is
/// tagged with \p Affinity(Lo, Hi, Ctx), so victim selection routes it
/// toward the node owning its data and spawn rings that node's
/// doorbell. Null \p Affinity behaves like the plain overload.
void parallelFor(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                 int64_t Grain, RangeFn Body, void *Ctx,
                 RangeAffinityFn Affinity);

/// Parallel tree reduction producing a heap Value.
Value parallelReduce(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                     int64_t Grain, LeafFn Leaf, CombineFn Combine,
                     void *Ctx);

//===----------------------------------------------------------------------===//
// Handle-aware reduction
//===----------------------------------------------------------------------===//

/// Handle-aware leaf: produces a handle rooted in the scope the
/// combinator opens around the call.
using HandleLeafFn = Ref<Object> (*)(Runtime &RT, VProc &VP, RootScope &S,
                                     int64_t Lo, int64_t Hi, void *Ctx);

/// Handle-aware combine: both inputs arrive as rooted handles, so the
/// combiner may allocate freely without any manual rooting.
using HandleCombineFn = Ref<Object> (*)(Runtime &RT, VProc &VP, RootScope &S,
                                        const Ref<> &Left,
                                        const Ref<> &Right, void *Ctx);

/// Handle face of parallelReduce: results still route through the
/// ResultCell machinery (cross-vproc results are promoted by the
/// producer), and the final value comes back rooted in \p S.
Ref<Object> parallelReduce(RootScope &S, Runtime &RT, VProc &VP, int64_t Lo,
                           int64_t Hi, int64_t Grain, HandleLeafFn Leaf,
                           HandleCombineFn Combine, void *Ctx);

/// Parallel sum of per-range doubles (associative reduction; the
/// combination order is the split tree's, so results are deterministic
/// for a fixed range and grain).
double parallelSumDouble(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                         int64_t Grain, LeafDoubleFn Leaf, void *Ctx);

/// Parallel sum of per-range int64s.
int64_t parallelSumInt64(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                         int64_t Grain, LeafInt64Fn Leaf, void *Ctx);

} // namespace manti

#endif // MANTI_RUNTIME_PARALLEL_H
