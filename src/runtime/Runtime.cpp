//===- runtime/Runtime.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

#include "numa/NumaOS.h"
#include "runtime/Channel.h"
#include "runtime/ParkLot.h"
#include "runtime/Rope.h"
#include "runtime/Scheduler.h"
#include "support/Assert.h"
#include "support/Logging.h"

#include <mutex>

#include <pthread.h>
#include <sched.h>

using namespace manti;

namespace {

/// Body of a concurrent-marking task. One is spawned per NUMA node when a
/// cycle flips to ConcMark; the affinity hint steers each toward chunks
/// homed on its node. The task traces in bounded slices, polling between
/// them so it keeps answering steal requests and joins the terminal
/// rendezvous (inside poll) when the gray stack drains. A stale task from
/// an already-finished cycle no-ops on the phase check inside
/// concurrentMarkSome.
void markerTaskMain(Runtime &RT, VProc &VP, Task) {
  (void)RT;
  while (concurrentMarkSome(VP.heap(), /*Budget=*/1024))
    VP.poll();
  VP.poll();
}

} // namespace

Runtime::Runtime(const RuntimeConfig &Config, const Topology &Topo)
    : Config(Config), World(Config.GC, Topo, Config.NumVProcs) {
  registerRopeDescriptors(World);
  VProcs.reserve(Config.NumVProcs);
  for (unsigned I = 0; I < Config.NumVProcs; ++I)
    VProcs.push_back(std::make_unique<VProc>(*this, World.heap(I)));
  Lot = std::make_unique<ParkLot>(World.topology().numNodes());
  Sched = std::make_unique<Scheduler>(*this);

  World.setVProcRootEnumerator(&Runtime::enumerateVProcRootsThunk, this);
  World.setGlobalRootEnumerator(&Runtime::enumerateGlobalRootsThunk, this);
  if (Config.UseDoorbells) {
    // The global-GC trigger (and completion) rings the broadcast
    // doorbell: every parked vproc reaches its safe point immediately
    // instead of waiting out a park interval.
    World.setWakeupHook(
        [](void *LotPtr) { static_cast<ParkLot *>(LotPtr)->ringBroadcast(); },
        Lot.get());
  }
  // Concurrent marking is driven by ordinary tasks: when a cycle's init
  // rendezvous flips to ConcMark, the leader (world still stopped at the
  // pre-release barrier, so owner-only spawn onto its own queue is safe)
  // seeds one marker per node. Wired unconditionally -- markers are part
  // of the collector, not the doorbell policy.
  World.setConcurrentMarkHook(
      [](void *RTPtr, unsigned LeaderVProc) {
        Runtime *RT = static_cast<Runtime *>(RTPtr);
        VProc &Leader = RT->vproc(LeaderVProc);
        unsigned Nodes = RT->world().topology().numNodes();
        for (unsigned N = 0; N < Nodes; ++N) {
          Task T;
          T.Fn = &markerTaskMain;
          T.Affinity = static_cast<NodeId>(N);
          Leader.spawn(T);
        }
      },
      this);

  // Initially "between runs": workers idle in the drained state.
  ShuttingDown.store(true, std::memory_order_release);
  for (unsigned I = 1; I < Config.NumVProcs; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  if (Config.PinThreads) {
    // vproc 0 runs on the caller's thread: remember the caller's
    // affinity so the destructor can hand the thread back unpinned.
    CallerAffinitySaved =
        pthread_getaffinity_np(pthread_self(), sizeof(CallerAffinity),
                               &CallerAffinity) == 0;
    pinThread(World.heap(0).core());
  }
}

Runtime::~Runtime() {
  Terminating.store(true, std::memory_order_release);
  Lot->ringBroadcast(); // wake drain-parked workers to observe the flag
  for (std::thread &W : Workers)
    W.join();
  if (CallerAffinitySaved)
    (void)pthread_setaffinity_np(pthread_self(), sizeof(CallerAffinity),
                                 &CallerAffinity);
  MANTI_CHECK(RootProviders.empty(),
              "global-root providers (channels, stores) must be destroyed "
              "before the runtime");
}

void Runtime::pinThread(CoreId Core) {
  // Host topologies carry the probe's core -> OS-cpu map, so the vproc
  // lands on a cpu that really belongs to its node; recorded topologies
  // fold onto whatever the host has. Best effort either way: pinning
  // fails in restricted containers, which is fine.
  if (World.topology().hasCpuMap()) {
    (void)numaos::pinThisThread(World.topology().osCpuOfCore(Core));
    return;
  }
  unsigned HostCores = std::thread::hardware_concurrency();
  if (HostCores == 0)
    return;
  (void)numaos::pinThisThread(Core % HostCores);
}

void Runtime::workerLoop(unsigned Id) {
  if (Config.PinThreads)
    pinThread(World.heap(Id).core());
  VProc &VP = vproc(Id);

  uint64_t SeenEpoch = 0;
  bool Counted = true; // nothing to drain before the first run
  while (!Terminating.load(std::memory_order_acquire)) {
    uint64_t E = RunEpoch.load(std::memory_order_acquire);
    if (E != SeenEpoch) {
      SeenEpoch = E;
      Counted = false;
    }
    if (!ShuttingDown.load(std::memory_order_acquire)) {
      VP.poll();
      if (VP.runOneLocal()) {
        Sched->noteProgress(VP);
        continue;
      }
      // Rebalanced work parked in this node's shed bay is nearer than
      // anything a steal could fetch: claim it before probing victims.
      if (Sched->claimShedAndRun(VP)) {
        Sched->noteProgress(VP);
        continue;
      }
      if (VP.stealAndRun()) {
        Sched->noteProgress(VP);
        continue;
      }
      Sched->idleBackoff(VP);
      continue;
    }
    // Drain phase: count ourselves once, then keep polling so pending
    // collections (which need every vproc) can finish. The idle ladder's
    // bounded parks keep the polling cheap without delaying a pending
    // collection by more than one park interval.
    if (!Counted) {
      Counted = true;
      Sched->noteProgress(VP);
      Drained.fetch_add(1, std::memory_order_acq_rel);
      // run() waits for the last check-in parked on vproc 0's doorbell.
      Lot->ring(VProcs[0]->node());
    }
    VP.poll();
    Sched->idleBackoff(VP, /*RecordStats=*/false);
  }
}

void Runtime::run(MainFn Main, void *Ctx) {
  MANTI_CHECK(ShuttingDown.load(std::memory_order_acquire),
              "run() is not reentrant");
  Drained.store(0, std::memory_order_release);
  // Order matters: the active flag is published *before* the epoch
  // bump. A worker that acquires the new epoch therefore also sees
  // ShuttingDown == false; reading true afterwards can only mean the
  // run already ended, so its drain check-in is genuine. (The reverse
  // order let a worker see the new epoch with the stale true, check in
  // as "drained", and then keep scheduling -- racing the post-run stats
  // aggregation.)
  ShuttingDown.store(false, std::memory_order_release);
  RunEpoch.fetch_add(1, std::memory_order_acq_rel);
  // Run-epoch turnover: wake workers parked in the drain loop so the new
  // run starts scheduling immediately.
  Lot->ringBroadcast();

  VProc &VP0 = vproc(0);
  Main(*this, VP0, Ctx);

  // Main returned: all fork-join regions it created are complete. Drain:
  // every vproc checks in, and nobody leaves while a collection is
  // pending (a collection needs all vprocs at its barriers). blockOn
  // (not a bare park): each worker's check-in rings vproc 0's node, and
  // the predicate re-check inside the park protocol means the last
  // check-in cannot slip between our load and the wait and cost a full
  // backstop interval.
  ShuttingDown.store(true, std::memory_order_release);
  Drained.fetch_add(1, std::memory_order_acq_rel);
  Sched->noteProgress(VP0);
  Sched->blockOn(
      VP0,
      [](void *Ctx) {
        Runtime *RT = static_cast<Runtime *>(Ctx);
        return RT->Drained.load(std::memory_order_acquire) >=
                   RT->numVProcs() &&
               !RT->World.collectionInProgress();
      },
      this, /*RecordStats=*/false);
  Sched->noteProgress(VP0);
}

SchedStats Runtime::aggregateSchedStats() const {
  return Sched->aggregateStats();
}

void Runtime::registerGlobalRoots(GlobalRootProvider *P) {
  std::lock_guard<SpinLock> Guard(RootProviderLock);
  RootProviders.push_back(P);
}

void Runtime::unregisterGlobalRoots(GlobalRootProvider *P) {
  std::lock_guard<SpinLock> Guard(RootProviderLock);
  for (std::size_t I = RootProviders.size(); I-- > 0;) {
    if (RootProviders[I] == P) {
      RootProviders[I] = RootProviders.back();
      RootProviders.pop_back();
      return;
    }
  }
  MANTI_UNREACHABLE("global-root provider was not registered");
}

void Runtime::enumerateVProcRootsThunk(unsigned VProcId, RootSlotVisitor V,
                                       void *VisitorCtx, void *EnumCtx) {
  Runtime *RT = static_cast<Runtime *>(EnumCtx);
  RT->vproc(VProcId).forEachSchedulerRoot(
      [&](Word *Slot) { V(Slot, VisitorCtx); });
}

void Runtime::enumerateGlobalRootsThunk(RootSlotVisitor V, void *VisitorCtx,
                                        void *EnumCtx) {
  Runtime *RT = static_cast<Runtime *>(EnumCtx);
  {
    std::lock_guard<SpinLock> Guard(RT->RootProviderLock);
    for (GlobalRootProvider *P : RT->RootProviders)
      P->enumerateGlobalRoots(V, VisitorCtx);
  }
  // Shed-bay residents: published rebalance batches whose environments
  // live in the global heap (promoted before publication) but are
  // reachable from no queue until a claimer picks them up.
  RT->Lot->forEachShedRoot([&](Word *Slot) { V(Slot, VisitorCtx); });
}
