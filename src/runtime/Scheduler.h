//===- runtime/Scheduler.h - topology-aware work-stealing scheduler ------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling policy layer, extracted from VProc/Runtime so every
/// policy decision lives in one place:
///
///   * Victim selection walks a per-vproc *proximity order* precomputed
///     from the Topology: same-node vprocs form tier 0, then tiers of
///     increasing link-hop distance. Within a tier the probe order is
///     randomized per round (so same-node thieves don't convoy on one
///     victim), and the first tier containing a loaded victim wins.
///     Keeping steals on-node keeps the stolen environment -- and every
///     promotion the stolen task performs later -- off the interconnect,
///     which is the paper's Section 2.1 locality argument applied to the
///     computation side. Farther tiers are *throttled*: a thief probes
///     tier 0 every round, but tier k unlocks only after
///     k * RuntimeConfig::RemoteStealPatience consecutive failed rounds,
///     so when new work appears on a node that node's own vprocs claim
///     it before the (far more numerous) remote thieves converge on it.
///     RuntimeConfig::LocalStealFirst=false restores the uniform-random
///     victim of the ablation baseline.
///
///   * Steals are *batched*: the victim hands over the oldest ceil(k/2)
///     tasks and promotes all of their environments in one handshake, so
///     one mailbox round trip amortizes several promotions. Under
///     RuntimeConfig::StealHalf (the default) the ceil(k/2) transfer is
///     unbounded -- the handshake moves it in mailbox-sized chunks
///     (StealBatch tasks each), so one handshake can drain half of an
///     arbitrarily deep queue; StealHalf=false restores the fixed
///     per-handshake StealBatch cap as the ablation baseline.
///
///   * Load balancing is *two-sided*. Stealing is the pull side; the
///     push side is victim-initiated shedding: a vproc whose queue depth
///     crosses RuntimeConfig::ShedThreshold at spawn time consults the
///     *load board* (per-node depth estimates aggregated from the
///     vprocs' atomic queue-depth counters), picks the most-starved node
///     that has parked vprocs, promotes a batch of up to ceil(depth/2)
///     tasks (affinity-respecting: a task hinted at the local node is
///     never shed while an un-hinted one exists), publishes it in the
///     target node's ParkLot shed bay, and rings that node's doorbell.
///     A woken (or otherwise idle) vproc claims the batch from its own
///     node's bay before it tries to steal. ShedThreshold=0 disables the
///     push side entirely (the ablation baseline): a skewed producer
///     then rebalances only at remote-steal patience, exactly the gap
///     shedding closes.
///
///   * The remote-steal patience itself is *adaptive* (default;
///     RuntimeConfig::AdaptivePatience=false restores the fixed
///     threshold): each thief keeps a per-vproc patience value, seeded
///     from RemoteStealPatience, and over windows of steal rounds halves
///     it when almost every round comes back empty (reach farther,
///     sooner) or doubles it when steals are reliably succeeding (stay
///     near home), clamped to [RemoteStealPatienceMin, Max].
///
///   * Idle vprocs descend a spin -> yield -> park ladder instead of
///     hammering victim mailboxes. The park rung is a *doorbell wait* in
///     the ParkLot: the vproc parks on its node's doorbell and is rung
///     awake by whoever produces work for it -- a spawner (on the
///     spawner's or the task's hinted node), a thief posting a steal
///     request, a channel peer, or the global-GC trigger's broadcast.
///     The bounded sleep (<= 256 us) remains only as a backstop, so a
///     missed ring can never strand a vproc.
///
///   * Spawns may carry a Task::Affinity node hint. noteSpawn rings the
///     hinted node (work chases its data), and steal handshakes hand
///     hinted tasks to thieves on their hinted node first
///     (VProc::popForSteal) -- a soft preference; a starved thief is
///     never refused work.
///
///   * Every *other* blocking loop in the runtime (channel send/recv,
///     selectRecv) funnels through blockOn, which keeps polling for
///     steal requests and pending collections between doorbell parks.
///
/// Per-vproc SchedStats record node-local vs cross-node steals, batch
/// sizes, failed rounds, park time, and doorbell traffic (rings sent /
/// wasted, ring-to-wake latency); stolen-environment bytes are charged
/// to the TrafficMatrix under (victim node -> thief node).
/// RuntimeConfig::UseDoorbells = false restores the blind bounded-sleep
/// ladder everywhere (the parking ablation baseline).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_SCHEDULER_H
#define MANTI_RUNTIME_SCHEDULER_H

#include "runtime/ParkLot.h"
#include "runtime/SchedStats.h"
#include "runtime/VProc.h"
#include "support/Compiler.h"

#include <cstdint>
#include <vector>

namespace manti {

class Runtime;
class Topology;

class Scheduler {
public:
  /// Builds the per-vproc proximity orders for \p RT's topology and
  /// vproc-to-node assignment.
  explicit Scheduler(Runtime &RT);

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Effective chunk size (config clamped to [1, StealRequest::MaxBatch]);
  /// with StealHalf off it is also the whole-handshake cap.
  unsigned stealBatchLimit() const { return StealBatch; }
  bool localStealFirst() const { return LocalStealFirst; }
  /// True when blocking sites use ParkLot doorbells (false = the blind
  /// bounded-sleep ablation baseline).
  bool doorbells() const { return UseDoorbells; }
  /// True when one handshake may move ceil(k/2) tasks in chunks (false =
  /// the fixed per-handshake StealBatch cap, the ablation baseline).
  bool stealHalf() const { return StealHalf; }
  /// Queue depth at which a spawning vproc tries to shed (0 = the push
  /// side is disabled, the ablation baseline).
  unsigned shedThreshold() const { return ShedThreshold; }
  /// True when the remote-steal patience adapts to the observed steal
  /// success rate.
  bool adaptivePatience() const { return Adaptive; }
  /// \p VProcId's current remote-steal patience (the fixed config value
  /// unless AdaptivePatience moved it). Like the rest of the backoff
  /// state this is owner-thread data: call it from the thread driving
  /// that vproc (tests) or while the vprocs are quiescent.
  unsigned patienceOf(unsigned VProcId) const {
    return Adaptive ? Backoff[VProcId].Patience : RemotePatience;
  }

  /// \p Thief's victim probe order: tiers of vproc ids, tier 0 holding
  /// the same-node vprocs, later tiers sorted by increasing node
  /// distance. Never contains the thief itself.
  const std::vector<std::vector<unsigned>> &
  proximityOrder(unsigned VProcId) const {
    return Proximity[VProcId];
  }

  /// Picks the victim a steal round would probe first: the first loaded
  /// vproc in proximity order, subject to the thief's current
  /// remote-steal tier limit (nullptr when nothing reachable is loaded),
  /// or a uniform-random other vproc when LocalStealFirst is off.
  /// Exposed for tests; stealAndRun walks the same tiers under the same
  /// limit (it merely keeps probing past a contended victim).
  VProc *pickVictim(VProc &Thief);

  /// Thief side: posts a steal request along the proximity order and
  /// runs the first stolen task (queueing the rest of the batch
  /// locally). \returns true if a task was executed.
  bool stealAndRun(VProc &Thief);

  /// Victim side: continues an in-flight chunked transfer (sending the
  /// next chunk once the thief has acked the last) or answers \p
  /// Victim's pending steal request, popping and promoting a batch --
  /// the first chunk of up to ceil(k/2) tasks under steal-half, with
  /// the rest parked as an ActiveSteal continuation for later polls
  /// (the victim never blocks mid-transfer). Runs on the victim's own
  /// thread (a local heap may only be copied from by its owner).
  /// \returns true if progress was made (a chunk sent, or a request
  /// answered -- successfully or not).
  bool serviceSteal(VProc &Victim);

  /// One step of the idle ladder for \p VP: spin, then yield, then park
  /// for a bounded, exponentially growing interval. Never parks when a
  /// steal request or a global collection is pending. Pass
  /// \p RecordStats = false from the between-runs drain loops: those
  /// keep idling after run() returns, and the stats must be quiescent
  /// for aggregateStats() readers by then. A non-null \p Pred is an
  /// extra wake condition re-checked after the park's epoch snapshot
  /// (joinWait passes its counter's done()), so a targeted ring for it
  /// can never be lost; the park stays claimable either way, since
  /// idle-ladder callers can all run arbitrary tasks.
  void idleBackoff(VProc &VP, bool RecordStats = true,
                   bool (*Pred)(void *) = nullptr, void *PredCtx = nullptr);

  /// Resets \p VP's ladder and remote-steal throttle; call whenever the
  /// vproc made progress.
  void noteProgress(VProc &VP) {
    Backoff[VP.id()].IdleRounds = 0;
    Backoff[VP.id()].FailedRounds = 0;
  }

  /// Wake-up policy for a freshly spawned task: rings \p T's hinted node
  /// when it has one, otherwise \p VP's own node; when the local ring
  /// finds no parked vproc and \p VP's queue has run deep, escalates to
  /// the nearest node with parked vprocs (remote rings only when the
  /// local vprocs are saturated). Called by VProc::spawn.
  void noteSpawn(VProc &VP, const Task &T);

  /// Blocks \p VP until \p Pred(Ctx) holds: a short poll+yield spin,
  /// then doorbell parks on \p VP's node with the bounded backstop.
  /// Keeps answering steal requests and joining pending collections
  /// between parks, so channel blocking can never deadlock a collection.
  /// \p Pred must be safe to evaluate concurrently with its producer
  /// (read atomics). Pass \p RecordStats = false from between-runs
  /// waits, whose idling must not leak into the per-run statistics.
  void blockOn(VProc &VP, bool (*Pred)(void *), void *Ctx,
               bool RecordStats = true);

  /// Rings \p Node's doorbell on \p Ringer's behalf (stats accounting),
  /// skipping the futex when nobody is parked there. No-op in the
  /// ladder-baseline mode.
  void ringNode(VProc &Ringer, NodeId Node);

  //===--------------------------------------------------------------------===//
  // Load board and victim-initiated shedding
  //===--------------------------------------------------------------------===//

  /// Returned by pickShedTarget when no node qualifies.
  static constexpr NodeId NoShedTarget = ~0u;

  /// Load-board read: the summed queue-depth estimate of \p Node's
  /// vprocs (each vproc's atomic depth counter, so this is safe from any
  /// thread while the Runtime is alive -- see VProc::queueDepth for the
  /// teardown protocol). A racy snapshot by construction; shed targeting
  /// treats it as a heuristic.
  std::size_t nodeDepth(NodeId Node) const;

  /// Picks the node a shed from \p VP would target: among the *other*
  /// vproc-hosting nodes that currently have parked vprocs, the one with
  /// the smallest load (board depth + bay backlog), nearest first on
  /// ties, and only if that load is genuinely starved relative to \p
  /// VP's own queue (less than half of it). \returns NoShedTarget when
  /// no node qualifies. Exposed for tests; maybeShed uses it.
  NodeId pickShedTarget(VProc &VP);

  /// Victim-initiated shedding, called by VProc::spawn after every push:
  /// when \p VP's queue depth has reached ShedThreshold and a starved
  /// parked node exists, pops up to min(ceil(depth/2), MaxShedBatch)
  /// tasks (affinity-respecting, see VProc::popForShed), promotes their
  /// environments, publishes them in the target's shed bay, and rings
  /// the target's doorbell -- publish before ring, like every other ring
  /// site. \returns true when a batch was shed.
  bool maybeShed(VProc &VP);

  /// Claim side: pops a batch from \p VP's own node's shed bay, queues
  /// the tail locally, re-rings when backlog remains, and runs the
  /// first task. Work conservation across bays: when the own bay is
  /// empty and \p VP's failed steal rounds have already unlocked remote
  /// stealing (one patience), unclaimed *remote* bays are claimed too,
  /// nearest first, so a batch shed toward a node whose vprocs all went
  /// busy or blocked can never strand. Called from the idle paths
  /// (worker loop, joinWait) ahead of stealing; never from
  /// blocked-channel waits, which must not run arbitrary tasks.
  /// \returns true if a task was executed.
  bool claimShedAndRun(VProc &VP);

  /// The doorbells (exposed so Runtime can broadcast run-epoch and
  /// termination turnovers).
  ParkLot &parkLot() { return Lot; }

  /// Sum of every vproc's SchedStats (call while vprocs are quiescent).
  SchedStats aggregateStats() const;

private:
  /// Posts Thief's request on Victim's mailbox and waits for the answer.
  /// \returns true if a batch arrived and its first task was run.
  bool attemptSteal(VProc &Thief, VProc &Victim);

  /// Sends the next chunk of \p Victim's ActiveSteal transfer if the
  /// thief has acked the previous one. \returns true when a chunk went
  /// out.
  bool continueSteal(VProc &Victim);

  /// Pops, promotes, and publishes one mailbox chunk of at most
  /// min(\p Budget, StealBatch, queue depth) tasks on \p Req,
  /// decrementing \p Budget (forced to 0 -- with an empty terminator
  /// chunk if needed -- when the transfer must end).
  void sendStealChunk(VProc &Victim, StealRequest *Req,
                      std::size_t &Budget);

  /// Claims from node \p Node's bay on \p VP's behalf (\p VP runs the
  /// first task). \returns true if a task was executed.
  bool claimShedFrom(VProc &VP, NodeId Node);

  /// Highest proximity tier (exclusive) the thief may currently probe:
  /// tier k unlocks after k * RemotePatience consecutive failed rounds.
  std::size_t tierLimit(const VProc &Thief) const;

  /// Walks \p Thief's proximity tiers up to \p TierLimit, probing each
  /// tier in a randomized rotation, and calls \p Try on every loaded
  /// candidate until it returns true. \returns that candidate, or
  /// nullptr when the walk is exhausted.
  template <typename TryFnT>
  VProc *walkTiers(VProc &Thief, std::size_t TierLimit, TryFnT Try);

  /// One doorbell park for \p VP: prepare, re-check the standing wake
  /// conditions (mailbox, pending collection) plus \p Pred (when
  /// non-null) *after* the epoch snapshot -- the re-check-after-prepare
  /// is what makes a racing ring unable to be lost -- then wait for at
  /// most \p Micros. Records park statistics on \p VP when
  /// \p RecordStats. \p Claimable distinguishes parkers that can run
  /// arbitrary tasks (the idle ladder, joinWait) from channel blocks:
  /// only the former register as shed-claim targets and wake for bay
  /// backlog.
  void doorbellPark(VProc &VP, unsigned Micros, bool RecordStats,
                    bool (*Pred)(void *), void *PredCtx, bool Claimable);

  /// Exponential park bound for ladder position \p Step.
  static unsigned parkMicrosFor(unsigned Step);

  /// Stats-counted ring of \p Node: skips the futex when nobody is
  /// parked there. \returns true when a waiter was present.
  bool tryRing(VProc &Ringer, NodeId Node);

  /// One adaptive-patience sample (owner thread): account the round,
  /// and at each window boundary halve or double the patience from the
  /// window's steal success rate, clamped to [PatienceMin, PatienceMax].
  void notePatienceSample(VProc &VP, bool Success);

  /// Each vproc's owner thread updates its own entry every idle round;
  /// pad to a cache line so idle vprocs on different nodes don't
  /// ping-pong a shared line (the very traffic this scheduler avoids).
  struct alignas(CacheLineSize) BackoffState {
    unsigned IdleRounds = 0;   ///< ladder position (spin/yield/park)
    unsigned FailedRounds = 0; ///< consecutive empty rounds (tier unlock)
    unsigned Patience = 0;     ///< adaptive remote-steal patience
    unsigned WindowRounds = 0; ///< steal rounds in the current window
    unsigned WindowHits = 0;   ///< ... that brought work home
  };

  Runtime &RT;
  ParkLot &Lot;
  unsigned StealBatch;
  bool LocalStealFirst;
  bool UseDoorbells;
  bool StealHalf;
  unsigned RemotePatience;
  bool Adaptive;
  unsigned PatienceMin;
  unsigned PatienceMax;
  unsigned ShedThreshold;
  /// Proximity[v][tier] = vproc ids at that distance from vproc v.
  std::vector<std::vector<std::vector<unsigned>>> Proximity;
  /// NodeOrder[n] = the other nodes hosting vprocs, nearest first (ring
  /// escalation order).
  std::vector<std::vector<NodeId>> NodeOrder;
  /// NodeVProcs[n] = the vproc ids hosted on node n (the load board's
  /// aggregation lists).
  std::vector<std::vector<unsigned>> NodeVProcs;
  /// Owner-thread-only ladder state, indexed by vproc id.
  std::vector<BackoffState> Backoff;
};

} // namespace manti

#endif // MANTI_RUNTIME_SCHEDULER_H
