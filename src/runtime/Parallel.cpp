//===- runtime/Parallel.cpp ------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Parallel.h"

#include "support/Assert.h"

using namespace manti;

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

namespace {

/// Spawner-stack state shared by all tasks of one parallelFor.
struct ForJob {
  RangeFn Body;
  void *Ctx;
  int64_t Grain;
  RangeAffinityFn Affinity;
  JoinCounter Join;
};

void forRange(Runtime &RT, VProc &VP, ForJob &Job, int64_t Lo, int64_t Hi);

void forTask(Runtime &RT, VProc &VP, Task T) {
  auto &Job = *static_cast<ForJob *>(T.Ctx);
  forRange(RT, VP, Job, T.A, T.B);
  Job.Join.sub();
}

void forRange(Runtime &RT, VProc &VP, ForJob &Job, int64_t Lo, int64_t Hi) {
  while (Hi - Lo > Job.Grain) {
    int64_t Mid = Lo + (Hi - Lo) / 2;
    Job.Join.add();
    Task T{forTask, &Job, Value::nil(), Mid, Hi};
    if (Job.Affinity)
      T.Affinity = Job.Affinity(Mid, Hi, Job.Ctx);
    VP.spawn(T);
    Hi = Mid;
  }
  if (Lo < Hi)
    Job.Body(RT, VP, Lo, Hi, Job.Ctx);
}

} // namespace

void manti::parallelFor(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                        int64_t Grain, RangeFn Body, void *Ctx) {
  parallelFor(RT, VP, Lo, Hi, Grain, Body, Ctx, nullptr);
}

void manti::parallelFor(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                        int64_t Grain, RangeFn Body, void *Ctx,
                        RangeAffinityFn Affinity) {
  MANTI_CHECK(Grain > 0, "parallelFor grain must be positive");
  if (Lo >= Hi)
    return;
  ForJob Job{Body, Ctx, Grain, Affinity, JoinCounter(0)};
  forRange(RT, VP, Job, Lo, Hi);
  VP.joinWait(Job.Join);
}

//===----------------------------------------------------------------------===//
// parallelReduce (Value results)
//===----------------------------------------------------------------------===//

namespace {

struct ReduceJob {
  LeafFn Leaf;
  CombineFn Combine;
  void *Ctx;
  int64_t Grain;
};

Value reduceRange(Runtime &RT, VProc &VP, ReduceJob &Job, int64_t Lo,
                  int64_t Hi);

/// Per-split state for the spawned right half.
struct ReduceSplit {
  ReduceJob *Job;
  ResultCell *Cell;
  JoinCounter Join{1};
};

void reduceTask(Runtime &RT, VProc &VP, Task T) {
  auto &Split = *static_cast<ReduceSplit *>(T.Ctx);
  Value Result = reduceRange(RT, VP, *Split.Job, T.A, T.B);
  Split.Cell->fill(VP, Result); // promotes when VP is not the owner
  Split.Join.sub();
}

Value reduceRange(Runtime &RT, VProc &VP, ReduceJob &Job, int64_t Lo,
                  int64_t Hi) {
  if (Hi - Lo <= Job.Grain)
    return Job.Leaf(RT, VP, Lo, Hi, Job.Ctx);

  int64_t Mid = Lo + (Hi - Lo) / 2;
  ResultCell Cell(VP);
  ReduceSplit Split{&Job, &Cell};
  VP.spawn({reduceTask, &Split, Value::nil(), Mid, Hi});

  RootScope Scope(VP.heap());
  Value &Left = Scope.slot(reduceRange(RT, VP, Job, Lo, Mid));
  VP.joinWait(Split.Join);
  Value &Right = Scope.slot(Cell.take());
  return Job.Combine(RT, VP, Left, Right, Job.Ctx);
}

//===----------------------------------------------------------------------===//
// Handle-aware adaptor: opens a RootScope around every leaf and combine
// call so user code only ever touches rooted handles.
//===----------------------------------------------------------------------===//

struct HandleReduceJob {
  HandleLeafFn Leaf;
  HandleCombineFn Combine;
  void *Ctx;
};

Value handleLeafThunk(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                      void *CtxP) {
  auto *Job = static_cast<HandleReduceJob *>(CtxP);
  RootScope S(VP.heap());
  Ref<> Result = Job->Leaf(RT, VP, S, Lo, Hi, Job->Ctx);
  // The value escapes the scope here, but the caller (the reduce
  // plumbing) roots it again before the next safe point.
  return Result.value();
}

Value handleCombineThunk(Runtime &RT, VProc &VP, Value Left, Value Right,
                         void *CtxP) {
  auto *Job = static_cast<HandleReduceJob *>(CtxP);
  RootScope S(VP.heap());
  Ref<> L = S.root(Left);
  Ref<> R = S.root(Right);
  Ref<> Result = Job->Combine(RT, VP, S, L, R, Job->Ctx);
  return Result.value();
}

} // namespace

Value manti::parallelReduce(Runtime &RT, VProc &VP, int64_t Lo, int64_t Hi,
                            int64_t Grain, LeafFn Leaf, CombineFn Combine,
                            void *Ctx) {
  MANTI_CHECK(Grain > 0, "parallelReduce grain must be positive");
  ReduceJob Job{Leaf, Combine, Ctx, Grain};
  return reduceRange(RT, VP, Job, Lo, Hi);
}

Ref<Object> manti::parallelReduce(RootScope &S, Runtime &RT, VProc &VP,
                                  int64_t Lo, int64_t Hi, int64_t Grain,
                                  HandleLeafFn Leaf, HandleCombineFn Combine,
                                  void *Ctx) {
  HandleReduceJob Job{Leaf, Combine, Ctx};
  return S.root(parallelReduce(RT, VP, Lo, Hi, Grain, handleLeafThunk,
                               handleCombineThunk, &Job));
}

//===----------------------------------------------------------------------===//
// Numeric reductions (plain C++ accumulation through atomic cells)
//===----------------------------------------------------------------------===//

namespace {

struct SumDoubleJob {
  LeafDoubleFn Leaf;
  void *Ctx;
  int64_t Grain;
};

double sumDoubleRange(Runtime &RT, VProc &VP, SumDoubleJob &Job, int64_t Lo,
                      int64_t Hi);

struct SumDoubleSplit {
  SumDoubleJob *Job;
  double Result = 0.0;
  JoinCounter Join{1};
};

void sumDoubleTask(Runtime &RT, VProc &VP, Task T) {
  auto &Split = *static_cast<SumDoubleSplit *>(T.Ctx);
  Split.Result = sumDoubleRange(RT, VP, *Split.Job, T.A, T.B);
  Split.Join.sub(); // release: publishes Result to the joiner
}

double sumDoubleRange(Runtime &RT, VProc &VP, SumDoubleJob &Job, int64_t Lo,
                      int64_t Hi) {
  if (Hi - Lo <= Job.Grain)
    return Job.Leaf(RT, VP, Lo, Hi, Job.Ctx);
  int64_t Mid = Lo + (Hi - Lo) / 2;
  SumDoubleSplit Split{&Job};
  VP.spawn({sumDoubleTask, &Split, Value::nil(), Mid, Hi});
  double Left = sumDoubleRange(RT, VP, Job, Lo, Mid);
  VP.joinWait(Split.Join);
  return Left + Split.Result;
}

struct SumInt64Job {
  LeafInt64Fn Leaf;
  void *Ctx;
  int64_t Grain;
};

int64_t sumInt64Range(Runtime &RT, VProc &VP, SumInt64Job &Job, int64_t Lo,
                      int64_t Hi);

struct SumInt64Split {
  SumInt64Job *Job;
  int64_t Result = 0;
  JoinCounter Join{1};
};

void sumInt64Task(Runtime &RT, VProc &VP, Task T) {
  auto &Split = *static_cast<SumInt64Split *>(T.Ctx);
  Split.Result = sumInt64Range(RT, VP, *Split.Job, T.A, T.B);
  Split.Join.sub();
}

int64_t sumInt64Range(Runtime &RT, VProc &VP, SumInt64Job &Job, int64_t Lo,
                      int64_t Hi) {
  if (Hi - Lo <= Job.Grain)
    return Job.Leaf(RT, VP, Lo, Hi, Job.Ctx);
  int64_t Mid = Lo + (Hi - Lo) / 2;
  SumInt64Split Split{&Job};
  VP.spawn({sumInt64Task, &Split, Value::nil(), Mid, Hi});
  int64_t Left = sumInt64Range(RT, VP, Job, Lo, Mid);
  VP.joinWait(Split.Join);
  return Left + Split.Result;
}

} // namespace

double manti::parallelSumDouble(Runtime &RT, VProc &VP, int64_t Lo,
                                int64_t Hi, int64_t Grain, LeafDoubleFn Leaf,
                                void *Ctx) {
  MANTI_CHECK(Grain > 0, "parallelSumDouble grain must be positive");
  if (Lo >= Hi)
    return 0.0;
  SumDoubleJob Job{Leaf, Ctx, Grain};
  return sumDoubleRange(RT, VP, Job, Lo, Hi);
}

int64_t manti::parallelSumInt64(Runtime &RT, VProc &VP, int64_t Lo,
                                int64_t Hi, int64_t Grain, LeafInt64Fn Leaf,
                                void *Ctx) {
  MANTI_CHECK(Grain > 0, "parallelSumInt64 grain must be positive");
  if (Lo >= Hi)
    return 0;
  SumInt64Job Job{Leaf, Ctx, Grain};
  return sumInt64Range(RT, VP, Job, Lo, Hi);
}
