//===- runtime/Channel.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"

#include "gc/Proxy.h"
#include "support/Assert.h"

#include <mutex>
#include <thread>

using namespace manti;

Channel::Channel(Runtime &RT) : RT(RT) { RT.registerChannel(this); }

Channel::~Channel() { RT.unregisterChannel(this); }

void Channel::send(VProc &VP, Value V) {
  // Messages are shared with other vprocs: promote before publishing.
  V = VP.heap().promote(V);

  SendItem Item{V.bits(), {}};
  {
    std::lock_guard<SpinLock> Guard(Lock);
    // Hand off to the oldest *unfilled* waiter. The waiter stays in the
    // queue until the receiver consumes the message, so the channel's
    // root enumeration keeps the handed-off value alive across a global
    // collection that lands between hand-off and wake-up.
    for (Waiter *W : Receivers) {
      if (W->Ready.load(std::memory_order_relaxed))
        continue;
      W->CellBits = V.bits();
      W->Ready.store(true, std::memory_order_release);
      return;
    }
    Senders.push_back(&Item);
  }
  // Synchronous send: block until a receiver takes the message. Keep
  // polling so steals are answered and collections can proceed.
  while (!Item.Taken.load(std::memory_order_acquire)) {
    VP.poll();
    std::this_thread::yield();
  }
}

bool Channel::tryRecv(VProc &VP, Value &Out) {
  std::lock_guard<SpinLock> Guard(Lock);
  (void)VP;
  if (Senders.empty())
    return false;
  SendItem *Item = Senders.front();
  Senders.pop_front();
  Out = Value::fromBits(Item->Bits);
  Item->Taken.store(true, std::memory_order_release);
  return true;
}

Value Channel::recv(VProc &VP, Value ContData, Value *ContOut) {
  {
    Value Direct;
    if (tryRecv(VP, Direct)) {
      if (ContOut)
        *ContOut = ContData;
      return Direct;
    }
  }

  // Block: park a proxy-wrapped continuation record. The record lives in
  // this vproc's local heap; the proxy is the sanctioned global-to-local
  // reference that keeps it alive and tracked while we are parked.
  RootScope Scope(VP.heap());
  Value &Proxy = Scope.slot(createProxy(VP.heap(), ContData));

  Waiter W;
  W.ProxyBits = Proxy.bits();
  bool Enqueued = false;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    // Re-check under the lock: a sender may have arrived meanwhile.
    if (!Senders.empty()) {
      SendItem *Item = Senders.front();
      Senders.pop_front();
      W.CellBits = Item->Bits;
      W.Ready.store(true, std::memory_order_relaxed);
      Item->Taken.store(true, std::memory_order_release);
    } else {
      Receivers.push_back(&W);
      Enqueued = true;
    }
  }
  while (!W.Ready.load(std::memory_order_acquire)) {
    VP.poll();
    std::this_thread::yield();
  }

  // Root the message before leaving the waiter queue; there is no safe
  // point between observing Ready and this line, so the value cannot
  // have moved since the channel roots last covered it.
  Value &Msg = Scope.slot(Value::fromBits(W.CellBits));
  if (Enqueued) {
    std::lock_guard<SpinLock> Guard(Lock);
    for (std::size_t I = 0; I < Receivers.size(); ++I) {
      if (Receivers[I] == &W) {
        Receivers.erase(Receivers.begin() +
                        static_cast<std::ptrdiff_t>(I));
        break;
      }
    }
  }

  // Wake-up: collections may have moved both the proxy and the record.
  // Resolve through the rooted proxy slot to recover the continuation.
  Value Cont = resolveProxy(VP.heap(), Proxy);
  if (ContOut)
    *ContOut = Cont;
  return Msg;
}

Value Channel::selectRecv(VProc &VP, Channel *const *Chans, unsigned N,
                          unsigned *WhichOut) {
  MANTI_CHECK(N > 0, "selectRecv needs at least one channel");
  for (;;) {
    for (unsigned I = 0; I < N; ++I) {
      Value Out;
      if (Chans[I]->tryRecv(VP, Out)) {
        if (WhichOut)
          *WhichOut = I;
        return Out;
      }
    }
    VP.poll();
    std::this_thread::yield();
  }
}

std::size_t Channel::pendingSends() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Senders.size();
}

std::size_t Channel::pendingRecvs() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Receivers.size();
}

void Channel::enumerateRoots(RootSlotVisitor Visit, void *Ctx) {
  std::lock_guard<SpinLock> Guard(Lock);
  for (SendItem *Item : Senders)
    Visit(&Item->Bits, Ctx);
  for (Waiter *W : Receivers) {
    Visit(&W->ProxyBits, Ctx);
    if (W->Ready.load(std::memory_order_acquire))
      Visit(&W->CellBits, Ctx);
  }
}
