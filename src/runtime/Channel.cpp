//===- runtime/Channel.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"

#include "gc/Proxy.h"
#include "runtime/Scheduler.h"
#include "support/Assert.h"

#include <mutex>

using namespace manti;

Channel::Channel(Runtime &RT) : RT(RT) { RT.registerGlobalRoots(this); }

Channel::~Channel() { RT.unregisterGlobalRoots(this); }

Channel::Waiter *Channel::claimReceiverLocked() {
  for (Waiter *W : Receivers) {
    bool Expected = false;
    // CAS, not a load/store: a selectRecv waiter is registered on
    // several channels whose senders hold *different* locks, and the
    // waiter itself may self-claim a queued item. Exactly one claimant
    // may fill the cell.
    if (W->Claimed.compare_exchange_strong(Expected, true,
                                           std::memory_order_acq_rel))
      return W;
  }
  return nullptr;
}

void Channel::finishTake(VProc &VP, SendItem *Item) {
  NodeId SenderNode = Item->Node;
  // The release store is the completion flag: the parked sender may
  // return (and destroy the item) the moment it observes Taken, so
  // nothing may touch *Item afterwards.
  Item->Taken.store(true, std::memory_order_release);
  RT.scheduler().ringNode(VP, SenderNode);
}

void Channel::send(VProc &VP, Value V) {
  // Messages are shared with other vprocs: promote before publishing.
  V = VP.heap().promote(V);

  SendItem Item{V.bits(), VP.node(), {}};
  Waiter *Handoff = nullptr;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    Handoff = claimReceiverLocked();
    if (!Handoff)
      Senders.push_back(&Item);
  }
  if (Handoff) {
    // Fill outside the lock (the ring below may enter the kernel). No
    // safe point separates the promote above from the Ready store, so
    // the cell cannot go stale before the waiter's roots cover it; the
    // waiter stays in the Receivers queue until the receiver consumed
    // the message, so the channel's root enumeration keeps the value
    // alive across a global collection between hand-off and wake-up.
    Handoff->CellBits = V.bits();
    Handoff->FilledBy = this;
    NodeId ReceiverNode = Handoff->Node;
    Handoff->Ready.store(true, std::memory_order_release);
    RT.scheduler().ringNode(VP, ReceiverNode);
    return;
  }
  // Synchronous send: park until a receiver takes the message. blockOn
  // keeps polling, so steals are answered and collections can proceed.
  RT.scheduler().blockOn(
      VP,
      [](void *P) {
        return static_cast<SendItem *>(P)->Taken.load(
            std::memory_order_acquire);
      },
      &Item);
}

bool Channel::tryRecv(VProc &VP, Value &Out) {
  SendItem *Item;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    // A hand-off in flight to a parked receiver (claimed waiter, Ready
    // pending) is invisible here by design: its message was never
    // queued. tryRecv reports "empty" instead of waiting on someone
    // else's handshake to settle.
    if (Senders.empty())
      return false;
    Item = Senders.front();
    Senders.pop_front(); // unlinking under the lock is the claim
  }
  Out = Value::fromBits(Item->Bits);
  finishTake(VP, Item);
  return true;
}

Value Channel::recv(VProc &VP, Value ContData, Value *ContOut) {
  {
    Value Direct;
    if (tryRecv(VP, Direct)) {
      if (ContOut)
        *ContOut = ContData;
      return Direct;
    }
  }

  // Block: park a proxy-wrapped continuation record. The record lives in
  // this vproc's local heap; the proxy is the sanctioned global-to-local
  // reference that keeps it alive and tracked while we are parked.
  RootScope Scope(VP.heap());
  Value &Proxy = Scope.slot(createProxy(VP.heap(), ContData));

  Waiter W;
  W.ProxyBits = Proxy.bits();
  W.Node = VP.node();
  SendItem *Direct = nullptr;
  bool Enqueued = false;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    // Re-check under the lock: a sender may have arrived meanwhile. The
    // register-or-take decision is atomic under this lock, so no sender
    // can slip between the check and the registration.
    if (!Senders.empty()) {
      Direct = Senders.front();
      Senders.pop_front();
      W.CellBits = Direct->Bits;
      W.Claimed.store(true, std::memory_order_relaxed);
      W.Ready.store(true, std::memory_order_relaxed);
    } else {
      Receivers.push_back(&W);
      Enqueued = true;
    }
  }
  if (Direct)
    finishTake(VP, Direct);
  else
    RT.scheduler().blockOn(
        VP,
        [](void *P) {
          return static_cast<Waiter *>(P)->Ready.load(
              std::memory_order_acquire);
        },
        &W);

  // Root the message before leaving the waiter queue; there is no safe
  // point between observing Ready and this line, so the value cannot
  // have moved since the channel roots last covered it.
  Value &Msg = Scope.slot(Value::fromBits(W.CellBits));
  if (Enqueued) {
    std::lock_guard<SpinLock> Guard(Lock);
    for (std::size_t I = 0; I < Receivers.size(); ++I) {
      if (Receivers[I] == &W) {
        Receivers.erase(Receivers.begin() +
                        static_cast<std::ptrdiff_t>(I));
        break;
      }
    }
  }

  // Wake-up: collections may have moved both the proxy and the record.
  // Resolve through the rooted proxy slot to recover the continuation.
  Value Cont = resolveProxy(VP.heap(), Proxy);
  if (ContOut)
    *ContOut = Cont;
  return Msg;
}

Value Channel::selectRecv(VProc &VP, Channel *const *Chans, unsigned N,
                          unsigned *WhichOut) {
  MANTI_CHECK(N > 0, "selectRecv needs at least one channel");

  // Fast path: one polling sweep.
  for (unsigned I = 0; I < N; ++I) {
    Value Out;
    if (Chans[I]->tryRecv(VP, Out)) {
      if (WhichOut)
        *WhichOut = I;
      return Out;
    }
  }

  // Blocking path: register ONE waiter on every channel, then re-sweep
  // for senders that were queued before the registrations landed. The
  // waiter's Claimed flag arbitrates everything: the first sender to
  // claim it fills it, and the re-sweep claims it *ourselves* before
  // taking a queued item, so exactly one message is ever committed.
  RootScope Scope(VP.heap());
  Waiter W;
  W.Node = VP.node();
  for (unsigned I = 0; I < N; ++I) {
    std::lock_guard<SpinLock> Guard(Chans[I]->Lock);
    Chans[I]->Receivers.push_back(&W);
  }

  unsigned Which = N;
  bool SelfClaimed = false;
  for (unsigned I = 0; I < N && !SelfClaimed; ++I) {
    Channel &C = *Chans[I];
    SendItem *Item = nullptr;
    {
      std::lock_guard<SpinLock> Guard(C.Lock);
      if (!C.Senders.empty()) {
        bool Expected = false;
        if (!W.Claimed.compare_exchange_strong(Expected, true,
                                               std::memory_order_acq_rel))
          break; // a sender is filling our waiter; wait for Ready
        Item = C.Senders.front();
        C.Senders.pop_front();
        W.CellBits = Item->Bits;
        W.Ready.store(true, std::memory_order_relaxed);
        Which = I;
        SelfClaimed = true;
      }
    }
    if (Item)
      C.finishTake(VP, Item);
  }
  if (!SelfClaimed)
    VP.runtime().scheduler().blockOn(
        VP,
        [](void *P) {
          return static_cast<Waiter *>(P)->Ready.load(
              std::memory_order_acquire);
        },
        &W);

  // Root the message before deregistering (the waiter queue's roots are
  // what kept it alive while we were parked).
  Value &Msg = Scope.slot(Value::fromBits(W.CellBits));
  for (unsigned I = 0; I < N; ++I) {
    Channel &C = *Chans[I];
    std::lock_guard<SpinLock> Guard(C.Lock);
    for (std::size_t J = 0; J < C.Receivers.size(); ++J) {
      if (C.Receivers[J] == &W) {
        C.Receivers.erase(C.Receivers.begin() +
                          static_cast<std::ptrdiff_t>(J));
        break;
      }
    }
    if (Which == N && W.FilledBy == &C)
      Which = I;
  }
  MANTI_CHECK(Which < N, "selectRecv got a message from an unknown channel");
  if (WhichOut)
    *WhichOut = Which;
  return Msg;
}

std::size_t Channel::pendingSends() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Senders.size();
}

std::size_t Channel::pendingRecvs() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Receivers.size();
}

void Channel::enumerateGlobalRoots(RootSlotVisitor Visit, void *Ctx) {
  std::lock_guard<SpinLock> Guard(Lock);
  for (SendItem *Item : Senders)
    Visit(&Item->Bits, Ctx);
  for (Waiter *W : Receivers) {
    Visit(&W->ProxyBits, Ctx);
    if (W->Ready.load(std::memory_order_acquire))
      Visit(&W->CellBits, Ctx);
  }
}
