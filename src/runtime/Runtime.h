//===- runtime/Runtime.h - the Manticore-style runtime system -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware-abstraction level of Section 2.2: hosts one vproc per
/// pthread, pins threads (best effort) to the cores the topology's
/// sparse assignment chose, wires the scheduler's roots into the
/// collector, and owns process-wide structures (channel registry).
///
/// Usage:
/// \code
///   RuntimeConfig Cfg;
///   Cfg.NumVProcs = 4;
///   Runtime RT(Cfg, Topology::intelXeon32());
///   RT.run([](Runtime &RT, VProc &VP, void *) {
///     // parallel program, running as vproc 0
///   }, nullptr);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_RUNTIME_H
#define MANTI_RUNTIME_RUNTIME_H

#include "gc/Heap.h"
#include "numa/Topology.h"
#include "runtime/VProc.h"
#include "support/SpinLock.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <sched.h> // cpu_set_t: the caller's affinity is restored on teardown

namespace manti {

class Channel;
class ParkLot;
class Scheduler;

/// Runtime-owned (C++) state that holds global-heap references -- a
/// channel's parked senders, a KV store's entry table -- implements
/// this and registers with Runtime::registerGlobalRoots. The global
/// collector's leader enumerates every provider while the world is
/// stopped at the GC barriers.
class GlobalRootProvider {
public:
  virtual ~GlobalRootProvider() = default;

  /// Calls \p Visit once per root slot. The visitor may rewrite the
  /// slot's word (forwarding). Runs with every vproc stopped, so no
  /// synchronization against mutators is needed.
  virtual void enumerateGlobalRoots(RootSlotVisitor Visit,
                                    void *VisitorCtx) = 0;
};

struct RuntimeConfig {
  GCConfig GC;
  unsigned NumVProcs = 2;
  /// Promote stolen environments at steal time (true, Manticore's lazy
  /// scheme) or at spawn time (false; ablation).
  bool LazyPromotion = true;
  /// Pin vproc threads to their assigned cores. With a host topology
  /// (Topology::host()) each vproc is pinned to the *probed OS cpu* of
  /// its core, so threads really sit on their node's silicon; recorded
  /// topologies fold core ids onto whatever cpus the host has. Best
  /// effort either way, and the constructing thread's original affinity
  /// is restored when the runtime is destroyed.
  bool PinThreads = true;
  /// Mailbox chunk size for steal handshakes (clamped to
  /// [1, StealRequest::MaxBatch]). With StealHalf=false it is also the
  /// per-handshake cap, and 1 restores single-task steals.
  unsigned StealBatch = 4;
  /// Steal-half: one handshake moves the oldest ceil(k/2) tasks of a
  /// deep queue, chunked StealBatch at a time through the same mailbox
  /// (each chunk's environments promoted together). false restores the
  /// fixed per-handshake StealBatch cap (ablation baseline), under which
  /// draining a deep queue costs one full handshake per StealBatch
  /// tasks.
  bool StealHalf = true;
  /// Walk the topology's proximity tiers when choosing steal victims
  /// (same-node first, then by node distance). false restores the
  /// uniform-random victim selection (ablation control).
  bool LocalStealFirst = true;
  /// Remote-steal throttle (only with LocalStealFirst): a thief probes
  /// its own node every round, but each farther proximity tier unlocks
  /// only after this many consecutive failed rounds, so a node's own
  /// vprocs get first claim on new work before remote thieves converge
  /// on it. 0 unlocks every tier immediately (and disables
  /// AdaptivePatience: there is no throttle to adapt).
  unsigned RemoteStealPatience = 64;
  /// Adapt each thief's patience to its observed steal success rate:
  /// over windows of steal rounds, nearly-always-empty rounds halve the
  /// patience (reach remote tiers sooner -- the neighborhood is dry) and
  /// reliably successful rounds double it (work is near; stay home),
  /// clamped to [RemoteStealPatienceMin, RemoteStealPatienceMax] and
  /// seeded from RemoteStealPatience. false freezes the fixed
  /// RemoteStealPatience threshold (ablation baseline).
  bool AdaptivePatience = true;
  /// Lower clamp for the adaptive patience (never reach remote tiers
  /// with less delay than this).
  unsigned RemoteStealPatienceMin = 8;
  /// Upper clamp for the adaptive patience (never throttle remote tiers
  /// harder than this).
  unsigned RemoteStealPatienceMax = 512;
  /// Victim-initiated shedding: when a vproc's queue depth reaches this
  /// at spawn time and some other node sits starved with parked vprocs,
  /// the spawner pushes a promoted, affinity-respecting batch of up to
  /// min(ceil(depth/2), MaxShedBatch) tasks into that node's ParkLot
  /// shed bay and rings its doorbell, instead of leaving the imbalance
  /// to remote-steal patience. 0 disables the push side (ablation
  /// baseline).
  unsigned ShedThreshold = 32;
  /// Route every blocking site through the ParkLot's per-node doorbells:
  /// idle and channel-blocked vprocs park on their node's doorbell and
  /// are rung awake by spawns, steal requests, channel peers, and the
  /// global-GC broadcast. false restores the blind bounded-sleep ladder
  /// (the parking ablation baseline; correct but latency-blind).
  bool UseDoorbells = true;
};

using MainFn = void (*)(Runtime &RT, VProc &VP, void *Ctx);

class Runtime {
public:
  Runtime(const RuntimeConfig &Config, const Topology &Topo);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  const RuntimeConfig &config() const { return Config; }
  GCWorld &world() { return World; }
  unsigned numVProcs() const { return static_cast<unsigned>(VProcs.size()); }
  VProc &vproc(unsigned Id) { return *VProcs[Id]; }

  /// The work-stealing policy layer (victim selection, batching, idle
  /// back-off).
  Scheduler &scheduler() { return *Sched; }

  /// The per-node doorbells every blocking site parks on.
  ParkLot &parkLot() { return *Lot; }

  /// Sum of every vproc's scheduler statistics (call while quiescent).
  SchedStats aggregateSchedStats() const;

  /// Executes \p Main as vproc 0 on the calling thread, with the worker
  /// threads scheduling in parallel, and returns once \p Main has
  /// returned, all vprocs have drained, and no collection is pending.
  /// May be called repeatedly (sequentially).
  void run(MainFn Main, void *Ctx);

  /// True while run() wants workers to keep scheduling.
  bool schedulerActive() const {
    return !ShuttingDown.load(std::memory_order_acquire);
  }

  bool lazyPromotion() const { return Config.LazyPromotion; }

  /// Global-root provider registry (channels, service-layer stores).
  /// Providers must unregister before the runtime is destroyed.
  void registerGlobalRoots(GlobalRootProvider *P);
  void unregisterGlobalRoots(GlobalRootProvider *P);

private:
  static void enumerateVProcRootsThunk(unsigned VProcId, RootSlotVisitor V,
                                       void *VisitorCtx, void *EnumCtx);
  static void enumerateGlobalRootsThunk(RootSlotVisitor V, void *VisitorCtx,
                                        void *EnumCtx);
  void workerLoop(unsigned Id);
  void pinThread(CoreId Core);

  RuntimeConfig Config;
  GCWorld World;
  std::vector<std::unique_ptr<VProc>> VProcs;
  std::unique_ptr<ParkLot> Lot; ///< before Sched: the Scheduler binds it
  std::unique_ptr<Scheduler> Sched;
  std::vector<std::thread> Workers;

  /// The constructing thread's affinity before PinThreads pinned it to
  /// vproc 0's core; the destructor restores it (the caller's thread
  /// outlives the runtime, the pin should not).
  cpu_set_t CallerAffinity{};
  bool CallerAffinitySaved = false;

  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Terminating{false};
  std::atomic<unsigned> Drained{0};
  std::atomic<uint64_t> RunEpoch{0};

  SpinLock RootProviderLock;
  std::vector<GlobalRootProvider *> RootProviders;
};

} // namespace manti

#endif // MANTI_RUNTIME_RUNTIME_H
