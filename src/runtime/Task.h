//===- runtime/Task.h - units of parallel work ----------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The implicitly-threaded layer pushes units of parallel work onto a
/// vproc-local queue (paper Section 2.3). A Task pairs a function with
/// three kinds of state:
///
///   * Env  -- a GC-managed value. This is the "data captured in a
///             closure": when another vproc steals the task, Env must be
///             promoted to the global heap first (the paper's one of two
///             points where data leaves a local heap).
///   * Ctx  -- a plain C++ pointer to spawner-owned control state (join
///             counters, loop bodies); never garbage collected and never
///             containing heap values.
///   * A, B -- two immediate integers (typically a [lo, hi) range), so
///             data-parallel loops need no heap allocation per spawn.
///
/// JoinCounter and ResultCell implement fork-join synchronization and
/// cross-vproc result passing; a result written by a different vproc
/// than the one that will read it is promoted by the producer, keeping
/// the heap invariants intact.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_TASK_H
#define MANTI_RUNTIME_TASK_H

#include "gc/ObjectModel.h"
#include "numa/Topology.h"

#include <atomic>
#include <cstdint>

namespace manti {

class Runtime;
class VProc;
struct Task;

using TaskFn = void (*)(Runtime &RT, VProc &VP, Task T);

struct Task {
  /// Affinity value meaning "run anywhere" (the default).
  static constexpr NodeId NoAffinity = ~0u;

  TaskFn Fn = nullptr;
  void *Ctx = nullptr;
  Value Env;
  int64_t A = 0;
  int64_t B = 0;
  /// Optional hint: the NUMA node holding the data this task will
  /// traverse. Victim selection hands hinted tasks to thieves on that
  /// node first (a soft preference -- work conservation always wins),
  /// spawn rings the hinted node's doorbell so its parked vprocs come
  /// and claim the task, and the hint rides along through every
  /// migration: a shed batch prefers tasks hinted at its target and a
  /// task hinted at its current node is never shed away while an
  /// un-hinted one could go instead (VProc::popForShed). NoAffinity
  /// leaves all of these decisions to the default locality policy.
  NodeId Affinity = NoAffinity;
};

/// Counts outstanding subtasks of a fork-join region. The spawner waits
/// in VProc::joinWait, running other work meanwhile ("help-first").
class JoinCounter {
public:
  explicit JoinCounter(int64_t Initial = 0) : Pending(Initial) {}

  void add(int64_t N = 1) { Pending.fetch_add(N, std::memory_order_relaxed); }
  /// Decrements the count. The decrement that completes the region
  /// (count reaching <= 0) also rings the registered waiter's node
  /// doorbell, so a joiner sleeping in the idle ladder resumes on the
  /// ring instead of its park backstop. Out of line: the ring needs the
  /// scheduler (defined in VProc.cpp).
  void sub(int64_t N = 1);
  bool done() const { return Pending.load(std::memory_order_acquire) <= 0; }

  /// Registers the vproc that will wait on this counter as the target
  /// of completion rings; joinWait calls it on entry. Call only from
  /// the joiner's own thread.
  void setWaiter(VProc *W) { Waiter.store(W, std::memory_order_release); }

private:
  std::atomic<int64_t> Pending;
  /// The joiner registered by joinWait (null when nobody waits): the
  /// ring target of the completing sub().
  std::atomic<VProc *> Waiter{nullptr};
};

/// A single-assignment result slot owned by the spawning vproc.
///
/// The producing task calls fill() exactly once; if the producer is a
/// different vproc the value is promoted first, so the owner only ever
/// sees values that are legal in its root set (its own local heap or the
/// global heap). The owner's root enumeration visits filled cells, which
/// is what keeps results alive across collections while the owner is
/// still joining. Construction and destruction must happen on the
/// owner's thread.
class ResultCell {
public:
  explicit ResultCell(VProc &Owner);
  ~ResultCell();

  ResultCell(const ResultCell &) = delete;
  ResultCell &operator=(const ResultCell &) = delete;

  /// Called by the producing task (any vproc, exactly once).
  void fill(VProc &Producer, Value V);

  /// Read by the owner after the corresponding join completes.
  Value take() const { return Value::fromBits(Bits); }

  /// Root-enumeration hooks (owner thread only).
  bool filled() const { return Filled.load(std::memory_order_acquire); }
  Word *slot() { return &Bits; }

private:
  VProc &Owner;
  std::atomic<bool> Filled{false};
  Word Bits = Value::nil().bits();
};

} // namespace manti

#endif // MANTI_RUNTIME_TASK_H
