//===- runtime/SchedStats.h - per-vproc scheduler statistics -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for the work-stealing scheduler. Each vproc owns one
/// SchedStats and mutates only its own (thief-side counters on the
/// thief's copy, victim-side counters on the victim's copy), so no
/// synchronization is needed; reports aggregate them after the vprocs
/// have quiesced. Kept dependency-free so the reporting layer
/// (gc/GCReport) can render scheduler statistics without pulling in the
/// runtime headers.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_SCHEDSTATS_H
#define MANTI_RUNTIME_SCHEDSTATS_H

#include <cstdint>

namespace manti {

struct SchedStats {
  /// Tasks pushed on the local ready queue.
  uint64_t Spawns = 0;

  // Thief side: successful steal handshakes, classified by whether the
  // victim ran on the thief's NUMA node (Section 2.1: a cross-node steal
  // drags an environment -- and its subsequent promotions -- across the
  // interconnect). With RuntimeConfig::StealHalf a single handshake may
  // carry several mailbox-sized chunks; StealChunks counts them (equal to
  // StealBatches in the fixed-batch baseline).
  uint64_t TasksStolen = 0;      ///< tasks received via steals
  uint64_t StealBatches = 0;     ///< successful handshakes
  uint64_t StealChunks = 0;      ///< mailbox chunks across those handshakes
  uint64_t NodeLocalBatches = 0; ///< ... with a same-node victim
  uint64_t CrossNodeBatches = 0; ///< ... with a remote victim

  // Victim side.
  uint64_t TasksServiced = 0;   ///< tasks handed to thieves
  uint64_t BatchesServiced = 0; ///< steal requests answered with work
  uint64_t StolenEnvBytes = 0;  ///< environment bytes promoted for thieves

  // Failures and idleness.
  uint64_t FailedStealAttempts = 0; ///< handshakes that yielded no task
  uint64_t FailedStealRounds = 0;   ///< full victim sweeps with no task
  uint64_t Parks = 0;               ///< park episodes (idle ladder + channels)
  uint64_t ParkNanos = 0;           ///< total time spent parked

  // Doorbell traffic (ParkLot). Ringer-side counters are charged to the
  // vproc that rang; parker-side wake-up counters to the vproc that
  // parked.
  uint64_t RingsSent = 0;        ///< doorbell rings attempted
  uint64_t RingsWasted = 0;      ///< ... that found no parked waiter
  uint64_t RingWakeups = 0;      ///< parks ended by a ring (not timeout)
  uint64_t ParkTimeouts = 0;     ///< parks that ran out the backstop
  uint64_t RingWakeupNanos = 0;  ///< total ring-to-wake latency
  uint64_t AffinityHandoffs = 0; ///< steal-batch tasks handed to their
                                 ///< hinted node's thief

  // Victim-initiated shedding (the push side of rebalancing). Shedder
  // counters are charged to the vproc whose deep queue shed; claim
  // counters to the vproc that picked the batch up from its node's bay.
  uint64_t TasksShed = 0;        ///< tasks pushed to a starved node's bay
  uint64_t ShedBatches = 0;      ///< shed handshakes (publish + ring)
  uint64_t ShedEnvBytes = 0;     ///< environment bytes promoted for sheds
  uint64_t ShedTargetMisses = 0; ///< deep queue, but no parked starved node
  uint64_t ShedClaims = 0;       ///< bay pickups by this vproc
  uint64_t ShedTasksClaimed = 0; ///< tasks received through those pickups

  // Adaptive remote-steal patience (per-vproc multiplicative updates,
  // bounded by RuntimeConfig::RemoteStealPatience{Min,Max}).
  uint64_t PatienceRaises = 0; ///< windows that doubled the patience
  uint64_t PatienceDrops = 0;  ///< windows that halved it

  /// Fraction of successful steal handshakes whose victim was on the
  /// thief's own node (1.0 when no steals happened).
  double nodeLocalFraction() const {
    uint64_t Total = NodeLocalBatches + CrossNodeBatches;
    return Total ? static_cast<double>(NodeLocalBatches) /
                       static_cast<double>(Total)
                 : 1.0;
  }

  /// Mean tasks per successful steal handshake.
  double meanStealBatch() const {
    return StealBatches ? static_cast<double>(TasksStolen) /
                              static_cast<double>(StealBatches)
                        : 0.0;
  }

  /// Mean mailbox chunks per successful steal handshake (1.0 in the
  /// fixed-batch baseline; > 1 means steal-half drained deep queues).
  double meanStealChunks() const {
    return StealBatches ? static_cast<double>(StealChunks) /
                              static_cast<double>(StealBatches)
                        : 0.0;
  }

  /// Mean ring-to-wake latency in microseconds (0 when nothing was ever
  /// woken by a ring).
  double meanRingWakeupMicros() const {
    return RingWakeups ? static_cast<double>(RingWakeupNanos) /
                             (1e3 * static_cast<double>(RingWakeups))
                       : 0.0;
  }

  /// Merges another vproc's stats into this one (for reporting).
  void merge(const SchedStats &O) {
    Spawns += O.Spawns;
    TasksStolen += O.TasksStolen;
    StealBatches += O.StealBatches;
    StealChunks += O.StealChunks;
    NodeLocalBatches += O.NodeLocalBatches;
    CrossNodeBatches += O.CrossNodeBatches;
    TasksServiced += O.TasksServiced;
    BatchesServiced += O.BatchesServiced;
    StolenEnvBytes += O.StolenEnvBytes;
    FailedStealAttempts += O.FailedStealAttempts;
    FailedStealRounds += O.FailedStealRounds;
    Parks += O.Parks;
    ParkNanos += O.ParkNanos;
    RingsSent += O.RingsSent;
    RingsWasted += O.RingsWasted;
    RingWakeups += O.RingWakeups;
    ParkTimeouts += O.ParkTimeouts;
    RingWakeupNanos += O.RingWakeupNanos;
    AffinityHandoffs += O.AffinityHandoffs;
    TasksShed += O.TasksShed;
    ShedBatches += O.ShedBatches;
    ShedEnvBytes += O.ShedEnvBytes;
    ShedTargetMisses += O.ShedTargetMisses;
    ShedClaims += O.ShedClaims;
    ShedTasksClaimed += O.ShedTasksClaimed;
    PatienceRaises += O.PatienceRaises;
    PatienceDrops += O.PatienceDrops;
  }
};

} // namespace manti

#endif // MANTI_RUNTIME_SCHEDSTATS_H
