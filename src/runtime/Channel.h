//===- runtime/Channel.h - CML-style synchronous channels -----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicitly-threaded layer: synchronous message passing in the
/// style of Concurrent ML (paper Section 2.1, [RRX09]). A send blocks
/// until a receiver takes the message and vice versa.
///
/// Messages cross vprocs, so a sent value is promoted to the global heap
/// before it is enqueued -- the second of the paper's two points where
/// data leaves a local heap (Section 2.3).
///
/// A blocked receiver parks a *continuation record* in its own local
/// heap and hands the channel an object proxy wrapping it (Section 3.1,
/// footnote 1: proxies "allow references from the global heap back into
/// the local heap. We use them in the implementation of our explicit
/// concurrency constructs"). The proxy keeps the local record alive and
/// trackable across the receiver's local collections and across global
/// collections while the receiver is blocked; on wake-up the receiver
/// resolves the proxy and resumes with its continuation data.
///
/// Blocking goes through the scheduler's ParkLot: a blocked receiver
/// registers a Waiter carrying its home node and parks on its node's
/// doorbell; send() claims the waiter (a CAS -- selectRecv registers one
/// waiter on several channels, whose senders hold different locks),
/// fills it, marks it Ready, and *rings the receiver's node*. Blocked
/// senders symmetrically park until a consumer sets their item's Taken
/// completion flag and rings the sender's node. The two-flag handoff
/// (Claimed to pick a unique filler, Ready/Taken to publish completion)
/// is also what keeps tryRecv non-blocking: a consumer claims a queued
/// item by unlinking it under the lock, so a concurrent tryRecv sees
/// either an available item or an empty queue -- never a mid-handoff
/// item it would have to wait on.
///
/// The channel object itself is runtime (C++) state registered as a
/// global GC root provider; everything it references in the heap is
/// global or proxy-mediated.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_CHANNEL_H
#define MANTI_RUNTIME_CHANNEL_H

#include "gc/Handles.h"
#include "gc/Heap.h"
#include "runtime/Runtime.h"
#include "support/SpinLock.h"

#include <deque>

namespace manti {

class Channel : public GlobalRootProvider {
public:
  explicit Channel(Runtime &RT);
  ~Channel();

  Channel(const Channel &) = delete;
  Channel &operator=(const Channel &) = delete;

  /// Sends \p V, blocking until a receiver takes it. \p V is promoted.
  void send(VProc &VP, Value V);

  /// Handle face: sends the handle's current value.
  void send(VProc &VP, const Ref<> &V) { send(VP, V.value()); }

  /// Receives a value, blocking until a sender provides one.
  /// \p ContData, when non-nil, is local continuation data the receiver
  /// wants back on wake-up; it rides in a proxy while blocked. \returns
  /// the (global) message; *ContOut, when non-null, receives the
  /// continuation data back.
  Value recv(VProc &VP, Value ContData = Value::nil(),
             Value *ContOut = nullptr);

  /// Handle face: the received message comes back rooted in \p S.
  Ref<Object> recv(RootScope &S, VProc &VP) { return S.root(recv(VP)); }

  /// Handle face with continuation data: \p ContOut (when non-null) has
  /// its rooted slot overwritten with the recovered continuation.
  Ref<Object> recv(RootScope &S, VProc &VP, Value ContData,
                   Ref<> *ContOut) {
    Value Cont;
    Ref<Object> Msg = S.root(recv(VP, ContData, &Cont));
    if (ContOut)
      *ContOut = Cont;
    return Msg;
  }

  /// Non-blocking receive; \returns true and stores into \p Out if a
  /// sender was waiting.
  bool tryRecv(VProc &VP, Value &Out);

  /// Handle face: on success \p Out's rooted slot holds the message.
  bool tryRecv(VProc &VP, Ref<> &Out) {
    Value V;
    if (!tryRecv(VP, V))
      return false;
    Out = V;
    return true;
  }

  /// CML-style choice over several channels: blocks until one of
  /// \p Chans has a message, receives it, and \returns it; *WhichOut
  /// (when non-null) gets the index of the chosen channel. One Waiter is
  /// registered on every channel and parked in the ParkLot; the first
  /// sender to *claim* it wins, and losers are never committed, matching
  /// CML's choose semantics for recv events.
  static Value selectRecv(VProc &VP, Channel *const *Chans, unsigned N,
                          unsigned *WhichOut = nullptr);

  /// Handle face of selectRecv.
  static Ref<Object> selectRecv(RootScope &S, VProc &VP,
                                Channel *const *Chans, unsigned N,
                                unsigned *WhichOut = nullptr) {
    return S.root(selectRecv(VP, Chans, N, WhichOut));
  }

  /// Number of blocked senders / receivers (racy; for tests and stats).
  std::size_t pendingSends() const;
  std::size_t pendingRecvs() const;

  /// Global-root enumeration (called by the global collector's leader
  /// while the world is stopped).
  void enumerateGlobalRoots(RootSlotVisitor Visit, void *Ctx) override;

private:
  /// A blocked sender's queue entry (stack-allocated in send()). A
  /// consumer unlinks it under the channel lock -- claiming it -- then
  /// stores the Taken *completion flag* outside the lock; the sender
  /// parks until Taken and must touch nothing after setting it free.
  struct SendItem {
    Word Bits;
    NodeId Node; ///< sender's node: rung when the item is taken
    std::atomic<bool> Taken{false};
  };
  /// A blocked receiver (or selectRecv) registration. Claimed picks the
  /// unique filler (CAS; selectRecv shares one waiter across channels),
  /// Ready publishes the filled cell. The waiter stays registered until
  /// the receiver removes it, so the channel's root enumeration keeps
  /// the handed-off value alive across a global collection that lands
  /// between hand-off and wake-up.
  struct Waiter {
    Word CellBits = 0;
    Word ProxyBits = 0;
    NodeId Node = 0;              ///< receiver's node: rung on hand-off
    Channel *FilledBy = nullptr;  ///< written by the claimant before Ready
    std::atomic<bool> Claimed{false};
    std::atomic<bool> Ready{false};
  };

  /// Claims the oldest unclaimed parked receiver, \returns it (the
  /// caller fills and rings it) or null. Caller holds Lock.
  Waiter *claimReceiverLocked();

  /// Completes a queued item popped from Senders: publishes Taken and
  /// rings the sender's node. Call *without* the lock held.
  void finishTake(VProc &VP, SendItem *Item);

  Runtime &RT;
  mutable SpinLock Lock;
  std::deque<SendItem *> Senders;
  std::deque<Waiter *> Receivers;
};

} // namespace manti

#endif // MANTI_RUNTIME_CHANNEL_H
