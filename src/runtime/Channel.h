//===- runtime/Channel.h - CML-style synchronous channels -----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicitly-threaded layer: synchronous message passing in the
/// style of Concurrent ML (paper Section 2.1, [RRX09]). A send blocks
/// until a receiver takes the message and vice versa.
///
/// Messages cross vprocs, so a sent value is promoted to the global heap
/// before it is enqueued -- the second of the paper's two points where
/// data leaves a local heap (Section 2.3).
///
/// A blocked receiver parks a *continuation record* in its own local
/// heap and hands the channel an object proxy wrapping it (Section 3.1,
/// footnote 1: proxies "allow references from the global heap back into
/// the local heap. We use them in the implementation of our explicit
/// concurrency constructs"). The proxy keeps the local record alive and
/// trackable across the receiver's local collections and across global
/// collections while the receiver is blocked; on wake-up the receiver
/// resolves the proxy and resumes with its continuation data.
///
/// The channel object itself is runtime (C++) state registered as a
/// global GC root provider; everything it references in the heap is
/// global or proxy-mediated.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_CHANNEL_H
#define MANTI_RUNTIME_CHANNEL_H

#include "gc/Handles.h"
#include "gc/Heap.h"
#include "runtime/Runtime.h"
#include "support/SpinLock.h"

#include <deque>

namespace manti {

class Channel {
public:
  explicit Channel(Runtime &RT);
  ~Channel();

  Channel(const Channel &) = delete;
  Channel &operator=(const Channel &) = delete;

  /// Sends \p V, blocking until a receiver takes it. \p V is promoted.
  void send(VProc &VP, Value V);

  /// Handle face: sends the handle's current value.
  void send(VProc &VP, const Ref<> &V) { send(VP, V.value()); }

  /// Receives a value, blocking until a sender provides one.
  /// \p ContData, when non-nil, is local continuation data the receiver
  /// wants back on wake-up; it rides in a proxy while blocked. \returns
  /// the (global) message; *ContOut, when non-null, receives the
  /// continuation data back.
  Value recv(VProc &VP, Value ContData = Value::nil(),
             Value *ContOut = nullptr);

  /// Handle face: the received message comes back rooted in \p S.
  Ref<Object> recv(RootScope &S, VProc &VP) { return S.root(recv(VP)); }

  /// Handle face with continuation data: \p ContOut (when non-null) has
  /// its rooted slot overwritten with the recovered continuation.
  Ref<Object> recv(RootScope &S, VProc &VP, Value ContData,
                   Ref<> *ContOut) {
    Value Cont;
    Ref<Object> Msg = S.root(recv(VP, ContData, &Cont));
    if (ContOut)
      *ContOut = Cont;
    return Msg;
  }

  /// Non-blocking receive; \returns true and stores into \p Out if a
  /// sender was waiting.
  bool tryRecv(VProc &VP, Value &Out);

  /// Handle face: on success \p Out's rooted slot holds the message.
  bool tryRecv(VProc &VP, Ref<> &Out) {
    Value V;
    if (!tryRecv(VP, V))
      return false;
    Out = V;
    return true;
  }

  /// CML-style choice over several channels: blocks until one of
  /// \p Chans has a message, receives it, and \returns it; *WhichOut
  /// (when non-null) gets the index of the chosen channel. Implemented
  /// by polling with safe points (losers are never committed, matching
  /// CML's choose semantics for recv events).
  static Value selectRecv(VProc &VP, Channel *const *Chans, unsigned N,
                          unsigned *WhichOut = nullptr);

  /// Handle face of selectRecv.
  static Ref<Object> selectRecv(RootScope &S, VProc &VP,
                                Channel *const *Chans, unsigned N,
                                unsigned *WhichOut = nullptr) {
    return S.root(selectRecv(VP, Chans, N, WhichOut));
  }

  /// Number of blocked senders / receivers (racy; for tests and stats).
  std::size_t pendingSends() const;
  std::size_t pendingRecvs() const;

  /// Global-root enumeration (called by the global collector's leader
  /// while the world is stopped).
  void enumerateRoots(RootSlotVisitor Visit, void *Ctx);

private:
  struct SendItem {
    Word Bits;
    std::atomic<bool> Taken{false};
  };
  struct Waiter {
    Word CellBits = 0;
    Word ProxyBits = 0;
    std::atomic<bool> Ready{false};
  };

  Runtime &RT;
  mutable SpinLock Lock;
  std::deque<SendItem *> Senders;
  std::deque<Waiter *> Receivers;
};

} // namespace manti

#endif // MANTI_RUNTIME_CHANNEL_H
