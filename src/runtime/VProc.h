//===- runtime/VProc.h - virtual processors and work stealing -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vproc is "an abstraction of a computational resource ... hosted by
/// its own pthread, which is pinned to a physical node" (Section 2.2).
/// Each vproc owns a ready queue of tasks; new work is pushed and popped
/// at the bottom (LIFO) by the owner, and stolen from the top (FIFO).
///
/// Stealing is a two-party handshake through a mailbox rather than a
/// concurrent deque: the thief posts a StealRequest on the victim's
/// mailbox and the victim answers at its next poll point. This mirrors
/// Manticore's message-based steals and, crucially, lets the *victim*
/// promote the stolen task's environment out of its own local heap --
/// only the owner of a local heap may copy from it. With lazy promotion
/// (the default, after Rainey 2010) that cost is paid only when a task
/// is actually stolen; the eager alternative promotes at spawn time and
/// is kept as an ablation knob.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_VPROC_H
#define MANTI_RUNTIME_VPROC_H

#include "gc/Heap.h"
#include "runtime/Task.h"
#include "support/XorShift.h"

#include <atomic>
#include <deque>
#include <vector>

namespace manti {

class Runtime;

/// One steal-handshake mailbox message. Each vproc owns exactly one
/// request object for the steals *it* initiates.
struct StealRequest {
  enum StateKind : int { Idle, Posted, Filled, Failed };
  std::atomic<int> State{Idle};
  Task Stolen; ///< valid when State == Filled; Env already promoted
};

class VProc {
public:
  VProc(Runtime &RT, VProcHeap &Heap);

  VProc(const VProc &) = delete;
  VProc &operator=(const VProc &) = delete;

  Runtime &runtime() { return RT; }
  VProcHeap &heap() { return Heap; }
  unsigned id() const { return Heap.id(); }
  NodeId node() const { return Heap.node(); }

  //===--------------------------------------------------------------------===//
  // Owner-thread scheduler operations
  //===--------------------------------------------------------------------===//

  /// Pushes a task on the bottom of the ready queue. Under eager
  /// promotion the environment is promoted here.
  void spawn(Task T);

  /// Pops and runs the newest local task. \returns false if empty.
  bool runOneLocal();

  /// Answers a pending steal request, if any. \returns true if one was
  /// serviced (successfully or not).
  bool serviceSteal();

  /// Safe point: answers steal requests and joins any pending global
  /// collection. Call this from every loop that can block.
  void poll();

  /// Attempts to steal (and run) one task from a random victim.
  /// \returns true if a task was executed.
  bool stealAndRun();

  /// Runs local and stolen work until \p Join completes.
  void joinWait(JoinCounter &Join);

  /// Runs \p T with its environment rooted.
  void runTask(Task T);

  /// Number of tasks currently in the local queue.
  std::size_t queueDepth() const { return ReadyQ.size(); }

  //===--------------------------------------------------------------------===//
  // Scheduler statistics
  //===--------------------------------------------------------------------===//

  uint64_t spawns() const { return NumSpawns; }
  uint64_t stealsOut() const { return NumStealsOut; }     ///< tasks we stole
  uint64_t stealsServiced() const { return NumServiced; } ///< tasks taken from us
  uint64_t failedSteals() const { return NumFailedSteals; }

  //===--------------------------------------------------------------------===//
  // Root enumeration (GC callbacks; run on this vproc's thread)
  //===--------------------------------------------------------------------===//

  template <typename FnT> void forEachSchedulerRoot(FnT Fn) {
    for (Task &T : ReadyQ)
      Fn(reinterpret_cast<Word *>(&T.Env));
    if (MyRequest.State.load(std::memory_order_acquire) ==
        StealRequest::Filled)
      Fn(reinterpret_cast<Word *>(&MyRequest.Stolen.Env));
    for (ResultCell *Cell : Cells) {
      if (Cell->filled())
        Fn(Cell->slot());
    }
  }

private:
  friend class ResultCell;

  Runtime &RT;
  VProcHeap &Heap;

  std::deque<Task> ReadyQ;             ///< owner-only
  std::atomic<StealRequest *> Mailbox{nullptr}; ///< posted by thieves
  StealRequest MyRequest;              ///< used when this vproc steals
  std::vector<ResultCell *> Cells;     ///< live result cells we own
  XorShift64 Rng;

  uint64_t NumSpawns = 0;
  uint64_t NumStealsOut = 0;
  uint64_t NumServiced = 0;
  uint64_t NumFailedSteals = 0;
};

} // namespace manti

#endif // MANTI_RUNTIME_VPROC_H
