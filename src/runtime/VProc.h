//===- runtime/VProc.h - virtual processors and work stealing -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vproc is "an abstraction of a computational resource ... hosted by
/// its own pthread, which is pinned to a physical node" (Section 2.2).
/// Each vproc owns a ready queue of tasks; new work is pushed and popped
/// at the bottom (LIFO) by the owner, and stolen from the top (FIFO).
///
/// Stealing is a two-party handshake through a mailbox rather than a
/// concurrent deque: the thief posts a StealRequest on the victim's
/// mailbox and the victim answers at its next poll point. This mirrors
/// Manticore's message-based steals and, crucially, lets the *victim*
/// promote the stolen tasks' environments out of its own local heap --
/// only the owner of a local heap may copy from it. With lazy promotion
/// (the default, after Rainey 2010) that cost is paid only when a task
/// is actually stolen; the eager alternative promotes at spawn time and
/// is kept as an ablation knob.
///
/// Victim selection, steal batching, and the idle back-off ladder live
/// in the Scheduler subsystem (runtime/Scheduler.h); the VProc keeps the
/// owner-thread queue operations and the mailbox the handshake runs on.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_VPROC_H
#define MANTI_RUNTIME_VPROC_H

#include "gc/Heap.h"
#include "runtime/SchedStats.h"
#include "runtime/Task.h"
#include "support/XorShift.h"

#include <atomic>
#include <deque>
#include <vector>

namespace manti {

class Runtime;
class Scheduler;

/// One steal-handshake mailbox message. Each vproc owns exactly one
/// request object for the steals *it* initiates, so a request carries a
/// whole batch: the victim hands over the oldest ceil(k/2) tasks (capped
/// by RuntimeConfig::StealBatch) and promotes their environments in one
/// go, amortizing the handshake and the promotion pauses.
///
/// Memory ordering of the handshake (the full release/acquire story; the
/// regression test SchedulerTest.HandshakeHammer exercises it under
/// TSan):
///
///  1. The thief writes ThiefNode and State=Posted (plain/relaxed), then
///     publishes the request with a CAS on the victim's Mailbox
///     (acq_rel). The victim's Mailbox load(acquire) therefore sees both
///     fields.
///  2. The victim writes Stolen[0..Count) and Count as plain stores,
///     clears the mailbox, and only then stores State=Filled (release).
///     The thief spins on State with load(acquire); observing Filled
///     forms a release/acquire edge, so every Stolen/Count write
///     happens-before the thief's reads. No additional fence is needed:
///     the State pair is the fence.
///  3. The thief consumes the batch and stores State=Idle (release) so
///     its plain clears of Stolen[] happen-before the *next* victim's
///     reads, which are ordered after the next Mailbox CAS (step 1).
struct StealRequest {
  /// Hard cap on tasks per handshake (RuntimeConfig::StealBatch is
  /// clamped to this).
  static constexpr unsigned MaxBatch = 8;

  enum StateKind : int { Idle, Posted, Filled, Failed };
  std::atomic<int> State{Idle};
  NodeId ThiefNode = 0;      ///< written by the thief before posting
  unsigned Count = 0;        ///< valid when State == Filled
  Task Stolen[MaxBatch];     ///< valid when State == Filled; Envs promoted
};

class VProc {
public:
  VProc(Runtime &RT, VProcHeap &Heap);

  VProc(const VProc &) = delete;
  VProc &operator=(const VProc &) = delete;

  Runtime &runtime() { return RT; }
  VProcHeap &heap() { return Heap; }
  unsigned id() const { return Heap.id(); }
  NodeId node() const { return Heap.node(); }

  //===--------------------------------------------------------------------===//
  // Owner-thread scheduler operations
  //===--------------------------------------------------------------------===//

  /// Pushes a task on the bottom of the ready queue. Under eager
  /// promotion the environment is promoted here.
  void spawn(Task T);

  /// Pops and runs the newest local task. \returns false if empty.
  bool runOneLocal();

  /// Answers a pending steal request, if any (delegates to the
  /// Scheduler). \returns true if one was serviced.
  bool serviceSteal();

  /// Safe point: answers steal requests and joins any pending global
  /// collection. Call this from every loop that can block.
  void poll();

  /// Attempts to steal (and run) work from another vproc, walking the
  /// Scheduler's proximity order. \returns true if a task was executed.
  bool stealAndRun();

  /// Runs local and stolen work until \p Join completes, backing off
  /// through the Scheduler's idle ladder when no work is found.
  void joinWait(JoinCounter &Join);

  /// Runs \p T with its environment rooted.
  void runTask(Task T);

  /// Owner-thread pop of up to \p Max tasks from the steal (oldest) end
  /// for a thief on \p ThiefNode, written to \p Out. Tasks hinted at the
  /// thief's node go first, then unhinted tasks, then -- so work
  /// conservation always wins over affinity -- tasks hinted elsewhere;
  /// oldest-first within each class. Scans a bounded window of the
  /// oldest tasks so a deep queue never makes a handshake O(queue).
  /// \p AffinityMatches, when non-null, receives how many handed-over
  /// tasks were hinted at the thief's node. \returns the task count
  /// (min(Max, queue depth)).
  unsigned popForSteal(NodeId ThiefNode, unsigned Max, Task *Out,
                       unsigned *AffinityMatches = nullptr);

  /// Number of tasks currently in the local queue. Safe to call from any
  /// thread: reads a depth counter the owner maintains at push/pop
  /// instead of touching the deque (which only the owner may do). The
  /// value is a snapshot -- victim selection treats it as a load
  /// heuristic, nothing more.
  std::size_t queueDepth() const {
    return Depth.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===//
  // Scheduler statistics
  //===--------------------------------------------------------------------===//

  const SchedStats &schedStats() const { return SStats; }
  uint64_t spawns() const { return SStats.Spawns; }
  /// Tasks this vproc received through steals.
  uint64_t stealsOut() const { return SStats.TasksStolen; }
  /// Tasks other vprocs took from this one.
  uint64_t stealsServiced() const { return SStats.TasksServiced; }
  uint64_t failedSteals() const { return SStats.FailedStealAttempts; }

  //===--------------------------------------------------------------------===//
  // Root enumeration (GC callbacks; run on this vproc's thread)
  //===--------------------------------------------------------------------===//

  template <typename FnT> void forEachSchedulerRoot(FnT Fn) {
    for (Task &T : ReadyQ)
      Fn(reinterpret_cast<Word *>(&T.Env));
    if (MyRequest.State.load(std::memory_order_acquire) ==
        StealRequest::Filled) {
      // The acquire above pairs with the victim's release store of
      // Filled, so Count and the batch slots are visible.
      for (unsigned I = 0; I < MyRequest.Count; ++I)
        Fn(reinterpret_cast<Word *>(&MyRequest.Stolen[I].Env));
    }
    for (ResultCell *Cell : Cells) {
      if (Cell->filled())
        Fn(Cell->slot());
    }
  }

private:
  friend class ResultCell;
  friend class Scheduler;

  /// Owner-thread push of an already-promoted stolen task (no spawn
  /// accounting, no eager promotion -- the victim promoted it already).
  void enqueueStolen(Task T);

  Runtime &RT;
  VProcHeap &Heap;

  std::deque<Task> ReadyQ;             ///< owner-only
  std::atomic<std::size_t> Depth{0};   ///< ReadyQ.size(), cross-thread view
  std::atomic<StealRequest *> Mailbox{nullptr}; ///< posted by thieves
  StealRequest MyRequest;              ///< used when this vproc steals
  std::vector<ResultCell *> Cells;     ///< live result cells we own
  XorShift64 Rng;

  SchedStats SStats;
};

} // namespace manti

#endif // MANTI_RUNTIME_VPROC_H
