//===- runtime/VProc.h - virtual processors and work stealing -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vproc is "an abstraction of a computational resource ... hosted by
/// its own pthread, which is pinned to a physical node" (Section 2.2).
/// Each vproc owns a ready queue of tasks; new work is pushed and popped
/// at the bottom (LIFO) by the owner, and stolen from the top (FIFO).
///
/// Stealing is a two-party handshake through a mailbox rather than a
/// concurrent deque: the thief posts a StealRequest on the victim's
/// mailbox and the victim answers at its next poll point. This mirrors
/// Manticore's message-based steals and, crucially, lets the *victim*
/// promote the stolen tasks' environments out of its own local heap --
/// only the owner of a local heap may copy from it. With lazy promotion
/// (the default, after Rainey 2010) that cost is paid only when a task
/// is actually stolen; the eager alternative promotes at spawn time and
/// is kept as an ablation knob.
///
/// Victim selection, steal batching, and the idle back-off ladder live
/// in the Scheduler subsystem (runtime/Scheduler.h); the VProc keeps the
/// owner-thread queue operations and the mailbox the handshake runs on.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_VPROC_H
#define MANTI_RUNTIME_VPROC_H

#include "gc/Heap.h"
#include "runtime/SchedStats.h"
#include "runtime/Task.h"
#include "support/XorShift.h"

#include <atomic>
#include <deque>
#include <vector>

namespace manti {

class Runtime;
class Scheduler;

/// One steal-handshake mailbox message. Each vproc owns exactly one
/// request object for the steals *it* initiates, so a request carries a
/// whole batch: the victim hands over the oldest ceil(k/2) tasks and
/// promotes their environments in one go, amortizing the handshake and
/// the promotion pauses. Under RuntimeConfig::StealHalf the ceil(k/2)
/// transfer is *unbounded*: one handshake moves it in mailbox-sized
/// chunks (see step 4); the fixed-batch baseline caps the whole transfer
/// at RuntimeConfig::StealBatch in a single chunk.
///
/// Memory ordering of the handshake (the full release/acquire story; the
/// regression test SchedulerTest.HandshakeHammer exercises it under
/// TSan):
///
///  1. The thief writes ThiefNode and State=Posted (plain/relaxed), then
///     publishes the request with a CAS on the victim's Mailbox
///     (acq_rel). The victim's Mailbox load(acquire) therefore sees both
///     fields.
///  2. The victim writes Stolen[0..Count), Count, and More as plain
///     stores, clears the mailbox, and only then stores State=Filled
///     (release). The thief spins on State with load(acquire); observing
///     Filled forms a release/acquire edge, so every Stolen/Count/More
///     write happens-before the thief's reads. No additional fence is
///     needed: the State pair is the fence.
///  3. The thief consumes the batch. If More is false the transfer is
///     over: it stores State=Idle (release) so its plain clears of
///     Stolen[] happen-before the *next* victim's reads, which are
///     ordered after the next Mailbox CAS (step 1).
///  4. If More is true (steal-half, mid-transfer) the thief instead
///     stores State=Consumed (release). The victim NEVER blocks waiting
///     for that ack -- it parks the transfer in its ActiveSteal
///     continuation and sends the next chunk from a later poll, once its
///     load(acquire) of Consumed orders the thief's consumption before
///     the next chunk's plain Stolen[] writes; the protocol then repeats
///     from step 2. (A blocking wait here could cycle: in a ring of
///     mutual steals every party would be a victim waiting on a thief
///     that is itself stuck in its own victim wait.) The thief keeps
///     taking safe points between chunks, so a global collection
///     requested mid-transfer cannot deadlock: the in-flight chunk is
///     rooted by the thief's root enumeration (which scans
///     Stolen[0..Count) whenever State == Filled), the not-yet-popped
///     remainder by the victim's queue scan, and the victim truncates
///     the transfer when a collection goes pending. Because the victim
///     may run (or lose to other thieves) its own queue between chunks,
///     a transfer can close with an *empty terminator* chunk
///     (Count == 0, More == false) after a More == true promise; the
///     first chunk of a handshake is never empty.
struct StealRequest {
  /// Hard cap on tasks per mailbox chunk (RuntimeConfig::StealBatch is
  /// clamped to this).
  static constexpr unsigned MaxBatch = 8;

  enum StateKind : int { Idle, Posted, Filled, Failed, Consumed };
  std::atomic<int> State{Idle};
  NodeId ThiefNode = 0;      ///< written by the thief before posting
  unsigned Count = 0;        ///< valid when State == Filled
  bool More = false;         ///< valid when State == Filled: another chunk
                             ///< follows after the thief stores Consumed
  Task Stolen[MaxBatch];     ///< valid when State == Filled; Envs promoted
};

/// Hard cap on tasks per shed publication (the push-side analogue of
/// StealRequest::MaxBatch; sized so one shed can rebalance half of a
/// queue twice the default RuntimeConfig::ShedThreshold).
inline constexpr unsigned MaxShedBatch = 16;

class VProc {
public:
  VProc(Runtime &RT, VProcHeap &Heap);

  VProc(const VProc &) = delete;
  VProc &operator=(const VProc &) = delete;

  Runtime &runtime() { return RT; }
  VProcHeap &heap() { return Heap; }
  unsigned id() const { return Heap.id(); }
  NodeId node() const { return Heap.node(); }

  //===--------------------------------------------------------------------===//
  // Owner-thread scheduler operations
  //===--------------------------------------------------------------------===//

  /// Pushes a task on the bottom of the ready queue. Under eager
  /// promotion the environment is promoted here.
  void spawn(Task T);

  /// Pops and runs the newest local task. \returns false if empty.
  bool runOneLocal();

  /// Answers a pending steal request, if any (delegates to the
  /// Scheduler). \returns true if one was serviced.
  bool serviceSteal();

  /// Safe point: answers steal requests and joins any pending global
  /// collection. Call this from every loop that can block.
  void poll();

  /// Attempts to steal (and run) work from another vproc, walking the
  /// Scheduler's proximity order. \returns true if a task was executed.
  bool stealAndRun();

  /// Runs local and stolen work until \p Join completes, backing off
  /// through the Scheduler's idle ladder when no work is found.
  void joinWait(JoinCounter &Join);

  /// Runs \p T with its environment rooted.
  void runTask(Task T);

  /// Owner-thread pop of up to \p Max tasks from the steal (oldest) end
  /// for a thief on \p ThiefNode, written to \p Out. Tasks hinted at the
  /// thief's node go first, then unhinted tasks, then -- so work
  /// conservation always wins over affinity -- tasks hinted elsewhere;
  /// oldest-first within each class. Scans a bounded window of the
  /// oldest tasks so a deep queue never makes a handshake O(queue).
  /// \p AffinityMatches, when non-null, receives how many handed-over
  /// tasks were hinted at the thief's node. \returns the task count
  /// (min(Max, queue depth)).
  unsigned popForSteal(NodeId ThiefNode, unsigned Max, Task *Out,
                       unsigned *AffinityMatches = nullptr);

  /// Owner-thread pop of up to \p Max tasks from the steal (oldest) end
  /// for a *shed* to \p TargetNode, written to \p Out. Affinity ranking
  /// differs from popForSteal in one way that matters: tasks hinted at
  /// THIS vproc's node are shed last -- never while an un-hinted task
  /// exists -- because shedding a task away from its data defeats the
  /// point of the hint. Order: hinted-at-target, un-hinted, hinted at
  /// some other remote node, hinted-local; oldest first within each
  /// class. \returns the task count.
  unsigned popForShed(NodeId TargetNode, unsigned Max, Task *Out);

  /// Number of tasks currently in the local queue. Safe to call from any
  /// thread: reads a depth counter the owner maintains at push/pop
  /// instead of touching the deque (which only the owner may do). The
  /// value is a snapshot -- victim selection and the scheduler's load
  /// board treat it as a load heuristic, nothing more.
  ///
  /// Lifetime protocol for cross-thread readers (the load board, shed
  /// targeting, tests): a VProc may be read for exactly as long as its
  /// Runtime is alive. ~Runtime joins every worker thread *before* any
  /// VProc is destroyed, so scheduler-internal readers (including the
  /// drain loops between runs) can never touch a dead vproc; external
  /// readers must not outlive the Runtime object, same as any other
  /// accessor on it. SchedulerTest.LoadBoardTeardownHammer runs this
  /// protocol under TSan across run()/drain boundaries.
  std::size_t queueDepth() const {
    return Depth.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===//
  // Scheduler statistics
  //===--------------------------------------------------------------------===//

  const SchedStats &schedStats() const { return SStats; }
  uint64_t spawns() const { return SStats.Spawns; }
  /// Tasks this vproc received through steals.
  uint64_t stealsOut() const { return SStats.TasksStolen; }
  /// Tasks other vprocs took from this one.
  uint64_t stealsServiced() const { return SStats.TasksServiced; }
  uint64_t failedSteals() const { return SStats.FailedStealAttempts; }

  //===--------------------------------------------------------------------===//
  // Root enumeration (GC callbacks; run on this vproc's thread)
  //===--------------------------------------------------------------------===//

  template <typename FnT> void forEachSchedulerRoot(FnT Fn) {
    for (Task &T : ReadyQ)
      Fn(reinterpret_cast<Word *>(&T.Env));
    if (MyRequest.State.load(std::memory_order_acquire) ==
        StealRequest::Filled) {
      // The acquire above pairs with the victim's release store of
      // Filled, so Count and the batch slots are visible.
      for (unsigned I = 0; I < MyRequest.Count; ++I)
        Fn(reinterpret_cast<Word *>(&MyRequest.Stolen[I].Env));
    }
    for (ResultCell *Cell : Cells) {
      if (Cell->filled())
        Fn(Cell->slot());
    }
  }

private:
  friend class ResultCell;
  friend class Scheduler;

  /// Owner-thread push of an already-promoted stolen task (no spawn
  /// accounting, no eager promotion -- the victim promoted it already).
  void enqueueStolen(Task T);

  Runtime &RT;
  VProcHeap &Heap;

  std::deque<Task> ReadyQ;             ///< owner-only
  std::atomic<std::size_t> Depth{0};   ///< ReadyQ.size(), cross-thread view
  std::atomic<StealRequest *> Mailbox{nullptr}; ///< posted by thieves
  StealRequest MyRequest;              ///< used when this vproc steals
  /// Owner-only continuation of an in-flight chunked (steal-half)
  /// transfer this vproc is servicing as the victim: the request whose
  /// thief owes a Consumed ack, and the tasks still promised. The next
  /// chunk goes out from serviceSteal at a later poll; the idle ladder
  /// yields instead of parking while a transfer is open so the thief is
  /// never left waiting on a park backstop.
  StealRequest *ActiveSteal = nullptr;
  std::size_t ActiveStealBudget = 0;
  std::vector<ResultCell *> Cells;     ///< live result cells we own
  XorShift64 Rng;

  SchedStats SStats;
};

} // namespace manti

#endif // MANTI_RUNTIME_VPROC_H
