//===- runtime/Rope.cpp ----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Rope.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <vector>

using namespace manti;
using namespace manti::rope;

// Rope node layout (mixed object, 4 words):
//   word 0: left subrope (pointer)
//   word 1: right subrope (pointer)
//   word 2: total scalar count (raw)
//   word 3: depth (raw; leaves are 0)
namespace {
constexpr unsigned NodeLeft = 0;
constexpr unsigned NodeRight = 1;
constexpr unsigned NodeLen = 2;
constexpr unsigned NodeDepth = 3;

bool isLeaf(Value Rope) { return objectId(Rope) == IdRaw; }

int64_t leafLen(Value Leaf) {
  return static_cast<int64_t>(objectLenWords(Leaf));
}

Value makeNode(VProcHeap &H, Value Left, Value Right) {
  GcFrame Frame(H);
  Frame.root(Left);
  Frame.root(Right);
  uint16_t Id = H.world().RopeNodeId;
  MANTI_CHECK(Id != 0, "rope descriptors not registered with this world");
  Word Fields[4];
  Fields[NodeLeft] = Left.bits();
  Fields[NodeRight] = Right.bits();
  Fields[NodeLen] = static_cast<Word>(length(Left) + length(Right));
  Fields[NodeDepth] =
      static_cast<Word>(std::max(depth(Left), depth(Right)) + 1);
  Value *Slots[2] = {&Left, &Right};
  return H.allocMixedRooted(Id, Fields, Slots);
}

/// Builds a balanced rope over Gen for [Lo, Hi).
Value buildBalanced(VProcHeap &H, int64_t Lo, int64_t Hi,
                    uint64_t (*Gen)(int64_t, void *), void *Ctx) {
  int64_t N = Hi - Lo;
  if (N <= LeafElems) {
    Value Leaf = H.allocRaw(nullptr, static_cast<std::size_t>(N) * 8);
    uint64_t *Data = static_cast<uint64_t *>(rawData(Leaf));
    for (int64_t I = 0; I < N; ++I)
      Data[I] = Gen(Lo + I, Ctx);
    return Leaf;
  }
  // Split on a leaf-aligned midpoint for a balanced tree.
  int64_t Leaves = divideCeil(static_cast<uint64_t>(N), LeafElems);
  int64_t Mid = Lo + (Leaves / 2) * LeafElems;
  GcFrame Frame(H);
  Value &Left = Frame.root(buildBalanced(H, Lo, Mid, Gen, Ctx));
  Value &Right = Frame.root(buildBalanced(H, Mid, Hi, Gen, Ctx));
  return makeNode(H, Left, Right);
}

} // namespace

void manti::registerRopeDescriptors(GCWorld &World) {
  MANTI_CHECK(World.RopeNodeId == 0, "rope descriptors already registered");
  World.RopeNodeId = World.descriptors().registerMixed(
      "rope-node", 4, {NodeLeft, NodeRight});
}

int64_t manti::rope::length(Value Rope) {
  if (Rope.isNil())
    return 0;
  if (isLeaf(Rope))
    return leafLen(Rope);
  return static_cast<int64_t>(Rope.asPtr()[NodeLen]);
}

int64_t manti::rope::depth(Value Rope) {
  if (Rope.isNil() || isLeaf(Rope))
    return 0;
  return static_cast<int64_t>(Rope.asPtr()[NodeDepth]);
}

Value manti::rope::fromFunction(VProcHeap &H, int64_t N,
                                uint64_t (*Gen)(int64_t, void *), void *Ctx) {
  if (N <= 0)
    return Value::nil();
  return buildBalanced(H, 0, N, Gen, Ctx);
}

Value manti::rope::fromArray(VProcHeap &H, const uint64_t *Data, int64_t N) {
  struct Ctx {
    const uint64_t *Data;
  } C{Data};
  return fromFunction(
      H, N,
      [](int64_t I, void *CtxP) {
        return static_cast<Ctx *>(CtxP)->Data[I];
      },
      &C);
}

uint64_t manti::rope::get(Value Rope, int64_t Index) {
  assert(Index >= 0 && Index < length(Rope) && "rope index out of range");
  while (!isLeaf(Rope)) {
    Value Left = Value::fromBits(Rope.asPtr()[NodeLeft]);
    int64_t LeftLen = length(Left);
    if (Index < LeftLen) {
      Rope = Left;
    } else {
      Index -= LeftLen;
      Rope = Value::fromBits(Rope.asPtr()[NodeRight]);
    }
  }
  return static_cast<uint64_t *>(rawData(Rope))[Index];
}

int64_t manti::rope::getInt(Value Rope, int64_t Index) {
  return static_cast<int64_t>(get(Rope, Index));
}

double manti::rope::getDouble(Value Rope, int64_t Index) {
  return unpackDouble(get(Rope, Index));
}

void manti::rope::toArray(Value Rope, uint64_t *Out) {
  if (Rope.isNil())
    return;
  // Iterative traversal: explicit stack avoids deep recursion on skewed
  // ropes.
  std::vector<Value> Stack{Rope};
  int64_t Pos = 0;
  // Depth-first, left to right. Pop order: process node by pushing
  // right then left.
  while (!Stack.empty()) {
    Value Cur = Stack.back();
    Stack.pop_back();
    if (isLeaf(Cur)) {
      int64_t N = leafLen(Cur);
      const uint64_t *Data = static_cast<const uint64_t *>(rawData(Cur));
      std::copy(Data, Data + N, Out + Pos);
      Pos += N;
      continue;
    }
    Stack.push_back(Value::fromBits(Cur.asPtr()[NodeRight]));
    Stack.push_back(Value::fromBits(Cur.asPtr()[NodeLeft]));
  }
}

Value manti::rope::concat(VProcHeap &H, Value Left, Value Right) {
  if (Left.isNil())
    return Right;
  if (Right.isNil())
    return Left;
  GcFrame Frame(H);
  Frame.root(Left);
  Frame.root(Right);
  Value &Node = Frame.root(makeNode(H, Left, Right));

  // Keep depth logarithmic: when the spine grows far beyond what a
  // balanced tree of this size needs, rebuild. Rebuilding is O(n) but
  // amortizes across the O(n) concats that caused the skew.
  int64_t Len = length(Node);
  int64_t Leaves = std::max<int64_t>(
      1, static_cast<int64_t>(divideCeil(static_cast<uint64_t>(Len),
                                         LeafElems)));
  int64_t Budget = 2 * static_cast<int64_t>(log2Floor(
                           nextPowerOf2(static_cast<uint64_t>(Leaves)))) +
                   8;
  if (depth(Node) <= Budget)
    return Node;
  std::vector<uint64_t> Tmp(static_cast<std::size_t>(Len));
  toArray(Node, Tmp.data());
  return fromArray(H, Tmp.data(), Len);
}

Value manti::rope::slice(VProcHeap &H, Value Rope, int64_t Lo, int64_t Hi) {
  MANTI_CHECK(Lo >= 0 && Lo <= Hi && Hi <= length(Rope),
              "rope slice out of range");
  int64_t N = Hi - Lo;
  if (N == 0)
    return Value::nil();
  GcFrame Frame(H);
  Frame.root(Rope);
  // Materialize then rebuild balanced; simple and O(n) like any copy.
  std::vector<uint64_t> Tmp(static_cast<std::size_t>(length(Rope)));
  toArray(Rope, Tmp.data());
  return fromArray(H, Tmp.data() + Lo, N);
}

bool manti::rope::isRope(GCWorld &W, Value V) {
  if (V.isNil())
    return true;
  if (!V.isPtr())
    return false;
  uint16_t Id = objectId(V);
  return Id == IdRaw || (W.RopeNodeId != 0 && Id == W.RopeNodeId);
}
