//===- runtime/Rope.cpp ----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Rope.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <vector>

using namespace manti;
using namespace manti::rope;

// Rope nodes are the typed RopeNode layout (Rope.h): two scanned
// subrope fields plus raw length and depth, registered through
// ObjectType<RopeNode>.
namespace {

using Node = ObjectType<RopeNode>;

bool isLeaf(Value Rope) { return objectId(Rope) == IdRaw; }

int64_t leafLen(Value Leaf) {
  return static_cast<int64_t>(objectLenWords(Leaf));
}

Value makeNode(VProcHeap &H, Value Left, Value Right) {
  MANTI_CHECK(H.world().RopeNodeId != 0,
              "rope descriptors not registered with this world");
  RootScope S(H);
  Ref<RopeNode> N = alloc<RopeNode>(
      S, RopeNode{Left, Right, length(Left) + length(Right),
                  std::max(depth(Left), depth(Right)) + 1});
  return N.value();
}

/// Builds a balanced rope over Gen for [Lo, Hi).
Value buildBalanced(VProcHeap &H, int64_t Lo, int64_t Hi,
                    uint64_t (*Gen)(int64_t, void *), void *Ctx) {
  int64_t N = Hi - Lo;
  if (N <= LeafElems) {
    Value Leaf = H.allocRaw(nullptr, static_cast<std::size_t>(N) * 8);
    uint64_t *Data = static_cast<uint64_t *>(rawData(Leaf));
    for (int64_t I = 0; I < N; ++I)
      Data[I] = Gen(Lo + I, Ctx);
    return Leaf;
  }
  // Split on a leaf-aligned midpoint for a balanced tree.
  int64_t Leaves = divideCeil(static_cast<uint64_t>(N), LeafElems);
  int64_t Mid = Lo + (Leaves / 2) * LeafElems;
  RootScope S(H);
  Ref<> Left = S.root(buildBalanced(H, Lo, Mid, Gen, Ctx));
  Ref<> Right = S.root(buildBalanced(H, Mid, Hi, Gen, Ctx));
  return makeNode(H, Left, Right);
}

} // namespace

void manti::registerRopeDescriptors(GCWorld &World) {
  MANTI_CHECK(World.RopeNodeId == 0, "rope descriptors already registered");
  World.RopeNodeId = Node::registerWith(World);
}

int64_t manti::rope::length(Value Rope) {
  if (Rope.isNil())
    return 0;
  if (isLeaf(Rope))
    return leafLen(Rope);
  return Node::get<&RopeNode::Len>(Rope);
}

int64_t manti::rope::depth(Value Rope) {
  if (Rope.isNil() || isLeaf(Rope))
    return 0;
  return Node::get<&RopeNode::Depth>(Rope);
}

Value manti::rope::fromFunction(VProcHeap &H, int64_t N,
                                uint64_t (*Gen)(int64_t, void *), void *Ctx) {
  if (N <= 0)
    return Value::nil();
  return buildBalanced(H, 0, N, Gen, Ctx);
}

Value manti::rope::fromArray(VProcHeap &H, const uint64_t *Data, int64_t N) {
  struct Ctx {
    const uint64_t *Data;
  } C{Data};
  return fromFunction(
      H, N,
      [](int64_t I, void *CtxP) {
        return static_cast<Ctx *>(CtxP)->Data[I];
      },
      &C);
}

uint64_t manti::rope::get(Value Rope, int64_t Index) {
  assert(Index >= 0 && Index < length(Rope) && "rope index out of range");
  while (!isLeaf(Rope)) {
    Value Left = Node::get<&RopeNode::Left>(Rope);
    int64_t LeftLen = length(Left);
    if (Index < LeftLen) {
      Rope = Left;
    } else {
      Index -= LeftLen;
      Rope = Node::get<&RopeNode::Right>(Rope);
    }
  }
  return static_cast<uint64_t *>(rawData(Rope))[Index];
}

int64_t manti::rope::getInt(Value Rope, int64_t Index) {
  return static_cast<int64_t>(get(Rope, Index));
}

double manti::rope::getDouble(Value Rope, int64_t Index) {
  return unpackDouble(get(Rope, Index));
}

void manti::rope::toArray(Value Rope, uint64_t *Out) {
  if (Rope.isNil())
    return;
  // Iterative traversal: explicit stack avoids deep recursion on skewed
  // ropes.
  std::vector<Value> Stack{Rope};
  int64_t Pos = 0;
  // Depth-first, left to right. Pop order: process node by pushing
  // right then left.
  while (!Stack.empty()) {
    Value Cur = Stack.back();
    Stack.pop_back();
    if (isLeaf(Cur)) {
      int64_t N = leafLen(Cur);
      const uint64_t *Data = static_cast<const uint64_t *>(rawData(Cur));
      std::copy(Data, Data + N, Out + Pos);
      Pos += N;
      continue;
    }
    Stack.push_back(Node::get<&RopeNode::Right>(Cur));
    Stack.push_back(Node::get<&RopeNode::Left>(Cur));
  }
}

Value manti::rope::concat(VProcHeap &H, Value Left, Value Right) {
  if (Left.isNil())
    return Right;
  if (Right.isNil())
    return Left;
  RootScope S(H);
  Ref<> Joined = S.root(makeNode(H, Left, Right));

  // Keep depth logarithmic: when the spine grows far beyond what a
  // balanced tree of this size needs, rebuild. Rebuilding is O(n) but
  // amortizes across the O(n) concats that caused the skew.
  int64_t Len = length(Joined);
  int64_t Leaves = std::max<int64_t>(
      1, static_cast<int64_t>(divideCeil(static_cast<uint64_t>(Len),
                                         LeafElems)));
  int64_t Budget = 2 * static_cast<int64_t>(log2Floor(
                           nextPowerOf2(static_cast<uint64_t>(Leaves)))) +
                   8;
  if (depth(Joined) <= Budget)
    return Joined.value();
  std::vector<uint64_t> Tmp(static_cast<std::size_t>(Len));
  toArray(Joined, Tmp.data());
  return fromArray(H, Tmp.data(), Len);
}

Value manti::rope::slice(VProcHeap &H, Value Rope, int64_t Lo, int64_t Hi) {
  MANTI_CHECK(Lo >= 0 && Lo <= Hi && Hi <= length(Rope),
              "rope slice out of range");
  int64_t N = Hi - Lo;
  if (N == 0)
    return Value::nil();
  RootScope S(H);
  Ref<> Keep = S.root(Rope);
  (void)Keep;
  // Materialize then rebuild balanced; simple and O(n) like any copy.
  std::vector<uint64_t> Tmp(static_cast<std::size_t>(length(Rope)));
  toArray(Rope, Tmp.data());
  return fromArray(H, Tmp.data() + Lo, N);
}

bool manti::rope::isRope(GCWorld &W, Value V) {
  if (V.isNil())
    return true;
  if (!V.isPtr())
    return false;
  uint16_t Id = objectId(V);
  return Id == IdRaw || (W.RopeNodeId != 0 && Id == W.RopeNodeId);
}
