//===- runtime/Rope.h - immutable segmented sequences ---------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ropes: immutable sequences represented as balanced concatenation
/// trees over fixed-size leaves, the standard bulk-data representation
/// for parallel functional languages (Manticore's parallel arrays use
/// the same idea). Leaves are raw objects holding packed 64-bit scalars
/// (int64 or double bit patterns), so leaves are never scanned; interior
/// nodes are mixed objects with two pointer fields and two raw fields
/// (length, depth) dispatched through the object-descriptor table.
///
/// Leaves are sized to stay well under a local heap's large-object
/// bound, keeping rope construction in the nurseries where allocation is
/// a bump -- exactly the allocation profile the paper's collector is
/// designed around.
///
/// All operations are pure: building, concatenating, mapping, and
/// updating produce new ropes.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_ROPE_H
#define MANTI_RUNTIME_ROPE_H

#include "gc/Handles.h"
#include "gc/Heap.h"

#include <cstdint>

namespace manti {

class Runtime;
class VProc;

/// Interior rope node: two scanned subrope fields plus the cached scalar
/// count and depth. Registered through the typed-handle layer
/// (ObjectType<RopeNode>); exposed so clients can use typed accessors on
/// rope values they know are interior nodes.
struct RopeNode {
  Value Left;
  Value Right;
  int64_t Len;
  int64_t Depth;
  static constexpr const char *GcName = "rope-node";
  static constexpr auto GcPtrFields =
      ptrFields(&RopeNode::Left, &RopeNode::Right);
};

/// Registers the rope node descriptor with \p World. Runtime's
/// constructor calls this; standalone GCWorld users (tests) call it
/// directly. Idempotent per world is NOT required -- call once.
void registerRopeDescriptors(GCWorld &World);

namespace rope {

/// Maximum scalars per leaf.
inline constexpr int64_t LeafElems = 1024;

/// Builds a rope of \p N scalars where element i is Gen(i, Ctx).
Value fromFunction(VProcHeap &H, int64_t N, uint64_t (*Gen)(int64_t I, void *Ctx),
                   void *Ctx);

/// Builds a rope from \p N packed scalars.
Value fromArray(VProcHeap &H, const uint64_t *Data, int64_t N);

/// Number of scalars in the rope.
int64_t length(Value Rope);

/// Tree depth (leaves have depth 0).
int64_t depth(Value Rope);

/// Element access (O(depth)).
uint64_t get(Value Rope, int64_t Index);

/// Convenience accessors for typed ropes.
int64_t getInt(Value Rope, int64_t Index);
double getDouble(Value Rope, int64_t Index);

/// Concatenates two ropes (O(1) plus rebalancing of shallow spines).
Value concat(VProcHeap &H, Value Left, Value Right);

/// Extracts [Lo, Hi) as a new rope.
Value slice(VProcHeap &H, Value Rope, int64_t Lo, int64_t Hi);

/// Copies the rope's scalars into \p Out (length() elements).
void toArray(Value Rope, uint64_t *Out);

/// \returns true if \p V is a rope leaf or node.
bool isRope(GCWorld &W, Value V);

//===----------------------------------------------------------------------===//
// Handle-aware faces: same operations, but results come back rooted in
// the caller's RootScope. These are the entry points workloads use; the
// Value-level functions above remain for allocation-free traversal
// (length, get, toArray) where no rooting is needed.
//===----------------------------------------------------------------------===//

inline Ref<Object> fromFunction(RootScope &S, int64_t N,
                                uint64_t (*Gen)(int64_t I, void *Ctx),
                                void *Ctx) {
  return S.root(fromFunction(S.heap(), N, Gen, Ctx));
}

inline Ref<Object> fromArray(RootScope &S, const uint64_t *Data, int64_t N) {
  return S.root(fromArray(S.heap(), Data, N));
}

inline Ref<Object> concat(RootScope &S, const Ref<> &Left,
                          const Ref<> &Right) {
  return S.root(concat(S.heap(), Left.value(), Right.value()));
}

inline Ref<Object> slice(RootScope &S, const Ref<> &Rope, int64_t Lo,
                         int64_t Hi) {
  return S.root(slice(S.heap(), Rope.value(), Lo, Hi));
}

/// Packing helpers for double-valued ropes.
inline uint64_t packDouble(double D) {
  uint64_t Bits;
  __builtin_memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}
inline double unpackDouble(uint64_t Bits) {
  double D;
  __builtin_memcpy(&D, &Bits, sizeof(D));
  return D;
}

} // namespace rope
} // namespace manti

#endif // MANTI_RUNTIME_ROPE_H
