//===- runtime/ParkLot.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "runtime/ParkLot.h"

#include "support/Assert.h"

#include <algorithm>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

using namespace manti;

namespace {

uint64_t steadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// How a futexWait ended, for wake classification: a parker that ran
/// out its timeout is a Timeout even when a (wake-one) ring it was not
/// the target of moved the epoch meanwhile.
enum class WaitEnd { Woken, ValueChanged, Timeout };

#if defined(__linux__)

/// Sleeps on \p Word while it still holds \p Expected, for at most
/// \p MaxWait. The kernel re-checks the word under its own lock, so a
/// ring's epoch bump between our caller's re-check and this wait makes
/// the syscall return immediately (EAGAIN) instead of sleeping.
WaitEnd futexWait(std::atomic<uint32_t> &Word, uint32_t Expected,
                  std::chrono::microseconds MaxWait) {
  static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
                "futex word must be exactly 32 bits");
  struct timespec Ts;
  Ts.tv_sec = static_cast<time_t>(MaxWait.count() / 1000000);
  Ts.tv_nsec = static_cast<long>((MaxWait.count() % 1000000) * 1000);
  long Rc = syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word),
                    FUTEX_WAIT_PRIVATE, Expected, &Ts, nullptr, 0);
  if (Rc == 0)
    return WaitEnd::Woken;
  if (errno == EAGAIN)
    return WaitEnd::ValueChanged;
  // ETIMEDOUT and (rare) EINTR: treat both as a timeout; the caller's
  // condition re-check is what matters either way.
  return WaitEnd::Timeout;
}

void futexWake(std::atomic<uint32_t> &Word, int Count) {
  syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word),
          FUTEX_WAKE_PRIVATE, Count, nullptr, nullptr, 0);
}

#else

/// Portable fallback: poll the word in short sleeps. Latency is worse
/// than a real futex (and wake-one degrades to wake-all), but the
/// protocol and the bounded backstop are identical.
WaitEnd futexWait(std::atomic<uint32_t> &Word, uint32_t Expected,
                  std::chrono::microseconds MaxWait) {
  auto Deadline = std::chrono::steady_clock::now() + MaxWait;
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Word.load(std::memory_order_seq_cst) != Expected)
      return WaitEnd::ValueChanged;
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  return WaitEnd::Timeout;
}

void futexWake(std::atomic<uint32_t> &, int) {}

#endif

} // namespace

ParkLot::ParkLot(unsigned NumNodes)
    : NumNodes(NumNodes), Bells(new Doorbell[NumNodes]),
      Bays(new ShedBay[NumNodes]) {
  MANTI_CHECK(NumNodes >= 1, "a ParkLot needs at least one node");
}

void ParkLot::publishShed(NodeId N, const Task *Tasks, unsigned Count) {
  ShedBay &Bay = Bays[N];
  std::lock_guard<SpinLock> Guard(Bay.Lock);
  for (unsigned I = 0; I < Count; ++I)
    Bay.Tasks.push_back(Tasks[I]);
  Bay.Depth.store(Bay.Tasks.size(), std::memory_order_relaxed);
}

unsigned ParkLot::claimShed(NodeId N, Task *Out, unsigned Max) {
  ShedBay &Bay = Bays[N];
  std::lock_guard<SpinLock> Guard(Bay.Lock);
  unsigned Got = static_cast<unsigned>(
      std::min<std::size_t>(Max, Bay.Tasks.size()));
  for (unsigned I = 0; I < Got; ++I) {
    Out[I] = Bay.Tasks.front();
    Bay.Tasks.pop_front();
  }
  Bay.Depth.store(Bay.Tasks.size(), std::memory_order_relaxed);
  return Got;
}

ParkLot::Token ParkLot::prepare(NodeId N, bool Claimable) {
  Doorbell &B = Bells[N];
  // Waiter registration must be seq_cst-ordered *before* the epoch
  // snapshot: a ringer bumps the epoch and then loads the waiter count,
  // so one side of every race is always observed (see the file comment
  // in ParkLot.h).
  B.Waiters.fetch_add(1, std::memory_order_seq_cst);
  if (Claimable)
    B.IdleWaiters.fetch_add(1, std::memory_order_seq_cst);
  Token T;
  T.NodeEpoch = B.Epoch.load(std::memory_order_seq_cst);
  T.BroadcastEpoch = Broadcast.Epoch.load(std::memory_order_seq_cst);
  T.Claimable = Claimable;
  return T;
}

void ParkLot::cancel(NodeId N, Token T) {
  Bells[N].Waiters.fetch_sub(1, std::memory_order_seq_cst);
  if (T.Claimable)
    Bells[N].IdleWaiters.fetch_sub(1, std::memory_order_seq_cst);
}

bool ParkLot::park(NodeId N, Token T, std::chrono::microseconds MaxWait,
                   uint64_t *RingLatencyNanos) {
  Doorbell &B = Bells[N];
  auto EpochMoved = [&] {
    return B.Epoch.load(std::memory_order_seq_cst) != T.NodeEpoch ||
           Broadcast.Epoch.load(std::memory_order_seq_cst) !=
               T.BroadcastEpoch;
  };
  WaitEnd End = WaitEnd::ValueChanged; // pre-wait epoch movement = rung
  if (!EpochMoved())
    End = futexWait(B.Epoch, T.NodeEpoch, MaxWait);
  // A parker that ran out its backstop reports a timeout even when a
  // wake-one ring aimed at a *different* waiter moved the epoch while
  // it slept; Woken and ValueChanged are the real ring deliveries.
  bool Rung = End != WaitEnd::Timeout && EpochMoved();
  B.Waiters.fetch_sub(1, std::memory_order_seq_cst);
  if (T.Claimable)
    B.IdleWaiters.fetch_sub(1, std::memory_order_seq_cst);
  if (Rung && RingLatencyNanos) {
    uint64_t Now = steadyNanos();
    uint64_t RingAt =
        std::max(B.LastRingNanos.load(std::memory_order_relaxed),
                 Broadcast.LastRingNanos.load(std::memory_order_relaxed));
    *RingLatencyNanos = Now > RingAt ? Now - RingAt : 0;
  }
  return Rung;
}

unsigned ParkLot::ring(NodeId N) {
  Doorbell &B = Bells[N];
  B.LastRingNanos.store(steadyNanos(), std::memory_order_relaxed);
  // Always bump, even with no visible waiter: a parker between its
  // waiter registration and its epoch snapshot is invisible to our
  // waiter-count load, but its snapshot then sees this bump.
  B.Epoch.fetch_add(1, std::memory_order_seq_cst);
  unsigned W = B.Waiters.load(std::memory_order_seq_cst);
  if (W > 0) {
    // Wake ONE waiter (parking-lot style): one unit of work wants one
    // worker, and the woken vproc re-rings if it finds more (batch
    // steals ring their own node). Waking the whole node on every spawn
    // stampedes an oversubscribed host.
    futexWake(B.Epoch, 1);
  }
  return W;
}

void ParkLot::ringBroadcast() {
  Broadcast.LastRingNanos.store(steadyNanos(), std::memory_order_relaxed);
  Broadcast.Epoch.fetch_add(1, std::memory_order_seq_cst);
  for (unsigned N = 0; N < NumNodes; ++N) {
    Doorbell &B = Bells[N];
    B.LastRingNanos.store(steadyNanos(), std::memory_order_relaxed);
    B.Epoch.fetch_add(1, std::memory_order_seq_cst);
    // A broadcast is a rendezvous (GC entry, epoch turnover): every
    // parked vproc must wake, so this is the one wake-all path.
    if (B.Waiters.load(std::memory_order_seq_cst) > 0)
      futexWake(B.Epoch, INT32_MAX);
  }
}
