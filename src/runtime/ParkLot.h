//===- runtime/ParkLot.h - per-node doorbells for parked vprocs ----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one signaling path every blocking site in the runtime goes
/// through. A ParkLot owns one *doorbell* per NUMA node -- a futex-style
/// atomic epoch word plus a waiter count -- and a global *broadcast*
/// word for whole-machine rendezvous (global-GC entry, run-epoch
/// turnover). Idle vprocs, blocked channel senders/receivers, and
/// selectRecv waiters park on their node's doorbell; whoever makes their
/// condition true rings that node (or broadcasts) instead of letting the
/// sleeper run out a blind timeout.
///
/// Parking protocol (lost-wakeup-free):
///
///   1. prepare(N) increments the node's waiter count (seq_cst) and then
///      snapshots the node and broadcast epochs.
///   2. The caller re-checks its wake condition. If it already holds, it
///      cancel()s; otherwise it park()s with the token.
///   3. park() re-reads both epochs and sleeps on the node word only if
///      neither moved since the snapshot, with a bounded timeout as a
///      backstop.
///
/// ring(N) always bumps the node epoch (seq_cst) *after* the caller
/// published whatever made the condition true, then wakes the futex when
/// waiters are present. The seq_cst pairing makes the race two-sided: a
/// ringer either observes the waiter count (and wakes the futex), or the
/// parker observes the bumped epoch (and never sleeps). A ring that
/// lands between the parker's condition re-check and its futex wait
/// fails the futex's value comparison, so no interleaving sleeps through
/// a ring.
///
/// The doorbell carries no data: every happens-before edge for the
/// *condition* (queue depths, mailbox state, channel Ready flags, the
/// global-GC pending flag) still comes from that state's own atomics.
/// The ParkLot only decides who sleeps and who is woken, which is why
/// disabling it (RuntimeConfig::UseDoorbells = false, the ablation
/// baseline) degrades latency but never correctness.
///
/// One structure here *does* carry data: the per-node **shed bay**, the
/// push side of victim-initiated rebalancing. A vproc whose queue runs
/// deep publishes a batch of already-promoted tasks into a starved
/// node's bay and then rings that node's doorbell (publish *before*
/// ring, the same order every ring site follows); a woken vproc claims
/// the batch from its own node's bay at its next idle step. The bay is
/// the node-granular complement of the steal mailbox: steals are
/// thief-initiated and vproc-to-vproc, sheds are victim-initiated and
/// addressed to whichever of the node's vprocs wakes first. Bay slots
/// hold GC-managed environments, so the Runtime enumerates every bay as
/// a global root (the tasks were promoted before publication, so minor
/// collections never move them; the global collector updates the slots
/// in place).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_PARKLOT_H
#define MANTI_RUNTIME_PARKLOT_H

#include "numa/Topology.h"
#include "runtime/Task.h"
#include "support/Compiler.h"
#include "support/SpinLock.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

namespace manti {

class ParkLot {
public:
  explicit ParkLot(unsigned NumNodes);

  ParkLot(const ParkLot &) = delete;
  ParkLot &operator=(const ParkLot &) = delete;

  /// Epoch snapshot taken by prepare(); consumed by cancel()/park().
  struct Token {
    uint32_t NodeEpoch;
    uint32_t BroadcastEpoch;
    bool Claimable;
  };

  /// Parker side, step 1: registers the caller as a waiter on node \p N
  /// and snapshots the epochs. Must be followed by exactly one cancel()
  /// or park() on the same node with the returned token. \p Claimable
  /// marks an *idle-ladder* parker -- one that will claim the node's
  /// shed bay when woken. Channel-blocked parkers pass false: they
  /// cannot run arbitrary tasks, so shed targeting must not count them
  /// (a batch shed at a node whose only waiters are channel-blocked
  /// would strand until some other vproc went idle).
  Token prepare(NodeId N, bool Claimable = true);

  /// Parker side, step 2a: the wake condition already holds; deregister
  /// without sleeping.
  void cancel(NodeId N, Token T);

  /// Parker side, step 2b: sleeps until the node is rung, a broadcast
  /// lands, or \p MaxWait elapses (the bounded backstop). \returns true
  /// when ended by a ring, false on a clean timeout. When woken by a
  /// ring and \p RingLatencyNanos is non-null, it receives the elapsed
  /// time since that ring was sent (a wake-up-latency sample).
  bool park(NodeId N, Token T, std::chrono::microseconds MaxWait,
            uint64_t *RingLatencyNanos = nullptr);

  /// Ringer side: wakes ONE vproc parked on node \p N (one unit of work
  /// wants one worker; the woken vproc re-rings when it finds more, and
  /// waking a whole node per spawn would stampede an oversubscribed
  /// host). Call *after* publishing whatever made the condition true.
  /// \returns the number of waiters registered at ring time (0 = the
  /// ring was wasted).
  unsigned ring(NodeId N);

  /// Rings the broadcast word and every node doorbell: the global-GC
  /// rendezvous path (every parked vproc must reach its safe point now).
  void ringBroadcast();

  /// Waiters currently registered on node \p N (racy snapshot; ring
  /// policy uses it to skip futex syscalls for empty nodes).
  unsigned parkedOn(NodeId N) const {
    return Bells[N].Waiters.load(std::memory_order_seq_cst);
  }

  /// The subset of parkedOn(N) that are idle-ladder (bay-claiming)
  /// parkers; shed targeting reads this, so work is only pushed where
  /// somebody will pick it up.
  unsigned idleParkedOn(NodeId N) const {
    return Bells[N].IdleWaiters.load(std::memory_order_seq_cst);
  }

  unsigned numNodes() const { return NumNodes; }

  //===--------------------------------------------------------------------===//
  // Shed bay: the push-side rebalance handshake
  //===--------------------------------------------------------------------===//

  /// Shedder side, step 1: appends \p Count tasks to node \p N's bay.
  /// Every task's environment must already live in the global heap (the
  /// shedder promoted it out of its local heap -- only the owner may
  /// copy from one). Follow with ring(N) so a parked vproc comes to
  /// claim; the bay's own lock publishes the tasks, the ring only cuts
  /// the wait short.
  void publishShed(NodeId N, const Task *Tasks, unsigned Count);

  /// Claimer side: pops up to \p Max of the oldest tasks from node
  /// \p N's bay into \p Out and returns the count (0 when the bay is
  /// empty or another claimer won the race). The caller must enqueue or
  /// run the tasks without an intervening safe point: between this copy
  /// and re-registration in a ready queue nothing roots them.
  unsigned claimShed(NodeId N, Task *Out, unsigned Max);

  /// Tasks currently parked in node \p N's bay (racy snapshot; shed
  /// targeting and the idle-park re-check read it without the lock).
  std::size_t shedDepth(NodeId N) const {
    return Bays[N].Depth.load(std::memory_order_relaxed);
  }

  /// Visits every bay-resident task's environment slot (global-GC root
  /// enumeration). Takes each bay's lock; callers run at a stop-the-world
  /// point, and no publisher or claimer holds a bay lock across a safe
  /// point, so this cannot deadlock against a parked mutator.
  template <typename FnT> void forEachShedRoot(FnT Fn) {
    for (unsigned N = 0; N < NumNodes; ++N) {
      std::lock_guard<SpinLock> Guard(Bays[N].Lock);
      for (Task &T : Bays[N].Tasks)
        Fn(reinterpret_cast<Word *>(&T.Env));
    }
  }

private:
  /// One doorbell: padded to a cache line so parkers on different nodes
  /// never ping-pong a shared line.
  struct alignas(CacheLineSize) Doorbell {
    std::atomic<uint32_t> Epoch{0};   ///< bumped by every ring
    std::atomic<uint32_t> Waiters{0}; ///< vprocs between prepare and wake
    std::atomic<uint32_t> IdleWaiters{0}; ///< ... that would claim the bay
    std::atomic<uint64_t> LastRingNanos{0}; ///< steady-clock ring stamp
  };

  /// One shed bay: a lock-protected FIFO of rebalanced tasks plus a
  /// lock-free depth estimate, padded like the doorbells so bays on
  /// different nodes never share a line.
  struct alignas(CacheLineSize) ShedBay {
    SpinLock Lock;
    std::deque<Task> Tasks;              ///< oldest first
    std::atomic<std::size_t> Depth{0};   ///< Tasks.size(), lock-free view
  };

  unsigned NumNodes;
  std::unique_ptr<Doorbell[]> Bells;
  std::unique_ptr<ShedBay[]> Bays;
  Doorbell Broadcast;
};

} // namespace manti

#endif // MANTI_RUNTIME_PARKLOT_H
