//===- runtime/ParkLot.h - per-node doorbells for parked vprocs ----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one signaling path every blocking site in the runtime goes
/// through. A ParkLot owns one *doorbell* per NUMA node -- a futex-style
/// atomic epoch word plus a waiter count -- and a global *broadcast*
/// word for whole-machine rendezvous (global-GC entry, run-epoch
/// turnover). Idle vprocs, blocked channel senders/receivers, and
/// selectRecv waiters park on their node's doorbell; whoever makes their
/// condition true rings that node (or broadcasts) instead of letting the
/// sleeper run out a blind timeout.
///
/// Parking protocol (lost-wakeup-free):
///
///   1. prepare(N) increments the node's waiter count (seq_cst) and then
///      snapshots the node and broadcast epochs.
///   2. The caller re-checks its wake condition. If it already holds, it
///      cancel()s; otherwise it park()s with the token.
///   3. park() re-reads both epochs and sleeps on the node word only if
///      neither moved since the snapshot, with a bounded timeout as a
///      backstop.
///
/// ring(N) always bumps the node epoch (seq_cst) *after* the caller
/// published whatever made the condition true, then wakes the futex when
/// waiters are present. The seq_cst pairing makes the race two-sided: a
/// ringer either observes the waiter count (and wakes the futex), or the
/// parker observes the bumped epoch (and never sleeps). A ring that
/// lands between the parker's condition re-check and its futex wait
/// fails the futex's value comparison, so no interleaving sleeps through
/// a ring.
///
/// The doorbell carries no data: every happens-before edge for the
/// *condition* (queue depths, mailbox state, channel Ready flags, the
/// global-GC pending flag) still comes from that state's own atomics.
/// The ParkLot only decides who sleeps and who is woken, which is why
/// disabling it (RuntimeConfig::UseDoorbells = false, the ablation
/// baseline) degrades latency but never correctness.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_RUNTIME_PARKLOT_H
#define MANTI_RUNTIME_PARKLOT_H

#include "numa/Topology.h"
#include "support/Compiler.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace manti {

class ParkLot {
public:
  explicit ParkLot(unsigned NumNodes);

  ParkLot(const ParkLot &) = delete;
  ParkLot &operator=(const ParkLot &) = delete;

  /// Epoch snapshot taken by prepare(); consumed by park().
  struct Token {
    uint32_t NodeEpoch;
    uint32_t BroadcastEpoch;
  };

  /// Parker side, step 1: registers the caller as a waiter on node \p N
  /// and snapshots the epochs. Must be followed by exactly one cancel()
  /// or park() on the same node.
  Token prepare(NodeId N);

  /// Parker side, step 2a: the wake condition already holds; deregister
  /// without sleeping.
  void cancel(NodeId N);

  /// Parker side, step 2b: sleeps until the node is rung, a broadcast
  /// lands, or \p MaxWait elapses (the bounded backstop). \returns true
  /// when ended by a ring, false on a clean timeout. When woken by a
  /// ring and \p RingLatencyNanos is non-null, it receives the elapsed
  /// time since that ring was sent (a wake-up-latency sample).
  bool park(NodeId N, Token T, std::chrono::microseconds MaxWait,
            uint64_t *RingLatencyNanos = nullptr);

  /// Ringer side: wakes ONE vproc parked on node \p N (one unit of work
  /// wants one worker; the woken vproc re-rings when it finds more, and
  /// waking a whole node per spawn would stampede an oversubscribed
  /// host). Call *after* publishing whatever made the condition true.
  /// \returns the number of waiters registered at ring time (0 = the
  /// ring was wasted).
  unsigned ring(NodeId N);

  /// Rings the broadcast word and every node doorbell: the global-GC
  /// rendezvous path (every parked vproc must reach its safe point now).
  void ringBroadcast();

  /// Waiters currently registered on node \p N (racy snapshot; ring
  /// policy uses it to skip futex syscalls for empty nodes).
  unsigned parkedOn(NodeId N) const {
    return Bells[N].Waiters.load(std::memory_order_seq_cst);
  }

  unsigned numNodes() const { return NumNodes; }

private:
  /// One doorbell: padded to a cache line so parkers on different nodes
  /// never ping-pong a shared line.
  struct alignas(CacheLineSize) Doorbell {
    std::atomic<uint32_t> Epoch{0};   ///< bumped by every ring
    std::atomic<uint32_t> Waiters{0}; ///< vprocs between prepare and wake
    std::atomic<uint64_t> LastRingNanos{0}; ///< steady-clock ring stamp
  };

  unsigned NumNodes;
  std::unique_ptr<Doorbell[]> Bells;
  Doorbell Broadcast;
};

} // namespace manti

#endif // MANTI_RUNTIME_PARKLOT_H
