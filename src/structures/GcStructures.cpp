//===- structures/GcStructures.cpp - GC-backed lock-free ordered sets -----===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "structures/GcStructures.h"

#include "support/Assert.h"

#include <algorithm>
#include <climits>

namespace manti::structures {

namespace {

/// Word offsets of the CASed fields (static-probe measured once).
unsigned nextOff() {
  static const unsigned Off =
      detail::wordOffsetOf<GcSetNode, Value>(&GcSetNode::Next);
  return Off;
}
unsigned rightOff() {
  static const unsigned Off =
      detail::wordOffsetOf<GcIndexNode, Value>(&GcIndexNode::Right);
  return Off;
}

/// Atomic field accessors over heap words. Heap objects are 8-byte
/// aligned, so atomic_ref<Word> is always lock-free here.
Value loadField(Value Obj, unsigned WordOff) {
  return Value::fromBits(std::atomic_ref<Word>(Obj.asPtr()[WordOff])
                             .load(std::memory_order_acquire));
}
bool casField(Value Obj, unsigned WordOff, Value Expected, Value Desired) {
  Word Exp = Expected.bits();
  return std::atomic_ref<Word>(Obj.asPtr()[WordOff])
      .compare_exchange_strong(Exp, Desired.bits(), std::memory_order_acq_rel,
                               std::memory_order_acquire);
}
void storeField(Value Obj, unsigned WordOff, Value V) {
  std::atomic_ref<Word>(Obj.asPtr()[WordOff])
      .store(V.bits(), std::memory_order_release);
}

Value loadNext(Value Node) { return loadField(Node, nextOff()); }
bool casNext(Value Node, Value Expected, Value Desired) {
  return casField(Node, nextOff(), Expected, Desired);
}

/// Key/Marker are immutable after publication: plain typed reads.
int64_t keyOf(Value Node) {
  return ObjectType<GcSetNode>::get<&GcSetNode::Key>(Node);
}
bool isMarker(Value Node) {
  return ObjectType<GcSetNode>::get<&GcSetNode::Marker>(Node) != 0;
}
/// \returns true if \p Node is logically deleted (successor is a marker).
bool isDeleted(Value Node) {
  Value Succ = loadNext(Node);
  return !Succ.isNil() && isMarker(Succ);
}

/// A node plus its marker: what one successful unlink CAS retires.
constexpr std::size_t NodePairBytes = 2 * (sizeof(GcSetNode) + sizeof(Word));
constexpr std::size_t IndexNodeBytes = sizeof(GcIndexNode) + sizeof(Word);

/// Core traversal: from \p Start (a node with key < Key), position
/// \p Pred (key < Key) and \p Curr (Pred's successor: nil or the first
/// non-deleted node with key >= Key), physically unlinking any
/// {deleted node, marker} pair encountered. \returns false if a helping
/// CAS lost a race -- the caller restarts from its own entry point.
bool searchFrom(VProcHeap &H, GcReclaimer &R, Value Start, int64_t Key,
                Ref<GcSetNode> &Pred, Ref<GcSetNode> &Curr) {
  Pred = Start;
  Curr = loadNext(Start);
  // Start may die between the caller choosing it and this load (the
  // skiplist index checks target liveness, but cannot re-check at
  // hand-off). A deleted node's Next is its marker, and treating that
  // marker as a plain node would let Pred land on it -- and unlike a
  // real deleted node, a marker's Next has no marker of its own to
  // make stale CASes fail, so an insert could link a new node into an
  // already-detached chain and silently lose the key. Bounce back to
  // the caller for a fresh entry point instead.
  if (!Curr.isNil() && isMarker(Curr.value()))
    return false;
  for (;;) {
    if (Curr.isNil())
      return true;
    Value C = Curr.value();
    Value Succ = loadNext(C);
    if (!Succ.isNil() && isMarker(Succ)) {
      // C is logically deleted: swing Pred past C *and* its marker in
      // one CAS (the marker's Next is immutable).
      Value After = loadNext(Succ);
      if (!casNext(Pred.value(), C, After))
        return false;
      // The unlink dropped the only spine edge into C; feed it to the
      // deletion barrier so an in-flight snapshot cycle still traces
      // it (marking C covers the marker through C's Next).
      H.satbRecord(C);
      R.retire(H.id(), nullptr, NodePairBytes, nullptr);
      Curr = After;
      continue;
    }
    if (keyOf(C) >= Key)
      return true;
    Pred = C;
    Curr = Succ;
  }
}

/// Read-only membership walk from \p Start. Skips deleted nodes
/// logically; never CASes, never allocates, so no rooting is needed.
///
/// Unlike searchFrom, a deleted Start is tolerated: the walk then
/// begins at Start's marker, whose key is strictly below \p Key (the
/// index only hands out targets with smaller keys) and whose frozen
/// Next leads back into the at-deletion suffix, so the walk still
/// reaches every node that is present for the whole call -- any key it
/// misses was inserted after a detach inside the call window, which is
/// a valid linearization point for "absent".
bool containsFrom(Value Start, int64_t Key) {
  Value Curr = loadNext(Start);
  while (!Curr.isNil()) {
    Value Succ = loadNext(Curr);
    bool Deleted = !Succ.isNil() && isMarker(Succ);
    int64_t CK = keyOf(Curr);
    if (CK > Key)
      return false;
    if (CK == Key)
      return !Deleted;
    Curr = Deleted ? loadNext(Succ) : Succ;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// GcList
//===----------------------------------------------------------------------===//

GcList::GcList(VProcHeap &H, GcReclaimer &R) : Home(H), R(R) {
  GCWorld &W = H.world();
  if (!ObjectType<GcSetNode>::registeredIn(W))
    ObjectType<GcSetNode>::registerWith(W);
  {
    RootScope S(H);
    Ref<GcSetNode> HeadNode =
        alloc<GcSetNode>(S, GcSetNode{Value::nil(), INT64_MIN, 0});
    promoteInPlace(S, HeadNode);
    Head = HeadNode.value();
  }
  // Root the head slot for the structure's lifetime. Registered only
  // after the scope above popped its slots: a LIFO pop after this push
  // would deregister the wrong slot.
  Home.ShadowStack.push_back(&Head);
}

GcList::~GcList() {
  auto It = std::find(Home.ShadowStack.begin(), Home.ShadowStack.end(), &Head);
  MANTI_CHECK(It != Home.ShadowStack.end(),
              "structure head root vanished from the shadow stack");
  // Order-preserving erase: RootScope teardown assumes it owns the
  // current stack suffix.
  Home.ShadowStack.erase(It);
}

bool GcList::insert(VProcHeap &H, int64_t Key) {
  RootScope S(H);
  Ref<GcSetNode> Pred = S.rootAs<GcSetNode>(Value::nil());
  Ref<GcSetNode> Curr = S.rootAs<GcSetNode>(Value::nil());
  for (;;) {
    H.safePoint();
    if (!searchFrom(H, R, Head, Key, Pred, Curr))
      continue;
    if (!Curr.isNil() && keyOf(Curr.value()) == Key)
      return false;
    // Allocate and promote *before* linking: the global heap may not
    // point into a local nursery. Pred/Curr sit in rooted slots, so
    // any collection the allocation triggers rewrites them and the new
    // node's Next consistently; the CAS below always compares
    // like-with-like.
    Ref<GcSetNode> Node =
        alloc<GcSetNode>(S, GcSetNode{Curr.value(), Key, 0});
    promoteInPlace(S, Node);
    if (casNext(Pred.value(), Curr.value(), Node.value()))
      return true;
  }
}

bool GcList::erase(VProcHeap &H, int64_t Key) {
  RootScope S(H);
  Ref<GcSetNode> Pred = S.rootAs<GcSetNode>(Value::nil());
  Ref<GcSetNode> Curr = S.rootAs<GcSetNode>(Value::nil());
  Ref<GcSetNode> Succ = S.rootAs<GcSetNode>(Value::nil());
  for (;;) {
    H.safePoint();
    if (!searchFrom(H, R, Head, Key, Pred, Curr))
      continue;
    if (Curr.isNil() || keyOf(Curr.value()) != Key)
      return false;
    Succ = loadNext(Curr.value());
    if (!Succ.isNil() && isMarker(Succ.value()))
      continue; // concurrently deleted; re-search reports absence
    // Logical delete: interpose a marker after Curr. Once Curr's Next
    // is a marker, every stale-successor CAS on Curr fails, which is
    // the whole point of the marker scheme.
    Ref<GcSetNode> Marker =
        alloc<GcSetNode>(S, GcSetNode{Succ.value(), Key, 1});
    promoteInPlace(S, Marker);
    if (!casNext(Curr.value(), Succ.value(), Marker.value()))
      continue; // successor changed or Curr got deleted first
    // Best-effort physical unlink; losers leave it to the next search.
    if (casNext(Pred.value(), Curr.value(), Succ.value())) {
      H.satbRecord(Curr.value());
      R.retire(H.id(), nullptr, NodePairBytes, nullptr);
    }
    return true;
  }
}

bool GcList::contains(VProcHeap &H, int64_t Key) const {
  H.safePoint();
  return containsFrom(Head, Key);
}

std::vector<int64_t> GcList::keys() const {
  std::vector<int64_t> Out;
  Value Curr = loadNext(Head);
  while (!Curr.isNil()) {
    Value Succ = loadNext(Curr);
    bool Deleted = !Succ.isNil() && isMarker(Succ);
    if (!Deleted) {
      Out.push_back(keyOf(Curr));
      Curr = Succ;
    } else {
      Curr = loadNext(Succ);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// GcSkipList
//===----------------------------------------------------------------------===//

GcSkipList::GcSkipList(VProcHeap &H, GcReclaimer &R)
    : Home(H), R(R), Base(H, R) {
  GCWorld &W = H.world();
  if (!ObjectType<GcIndexNode>::registeredIn(W))
    ObjectType<GcIndexNode>::registerWith(W);
  {
    // Head tower: one index node per level, chained by Down, all
    // targeting the base sentinel. Built locally then promoted in one
    // graph; only the top needs a long-lived root.
    RootScope S(H);
    Ref<GcSetNode> BaseHead = S.rootAs<GcSetNode>(Base.Head);
    Ref<GcIndexNode> Tower = S.rootAs<GcIndexNode>(Value::nil());
    for (int64_t Level = 1; Level <= MaxIndexLevels; ++Level) {
      Ref<GcIndexNode> Idx = alloc<GcIndexNode>(
          S, GcIndexNode{Value::nil(), Tower.value(), BaseHead.value(), Level});
      Tower = Idx.value();
    }
    promoteInPlace(S, Tower);
    IndexHead = Tower.value();
  }
  Home.ShadowStack.push_back(&IndexHead);
}

GcSkipList::~GcSkipList() {
  auto It =
      std::find(Home.ShadowStack.begin(), Home.ShadowStack.end(), &IndexHead);
  MANTI_CHECK(It != Home.ShadowStack.end(),
              "skiplist index root vanished from the shadow stack");
  Home.ShadowStack.erase(It);
}

Value GcSkipList::indexSearch(VProcHeap &H, int64_t Key) const {
restart:
  Value Q = IndexHead;
  for (;;) {
    Value Right = loadField(Q, rightOff());
    if (!Right.isNil()) {
      Value Target = ObjectType<GcIndexNode>::get<&GcIndexNode::Target>(Right);
      if (isDeleted(Target)) {
        // Dead tower cell: unlink it so the index converges back to
        // the live key set.
        if (!casField(Q, rightOff(), Right, loadField(Right, rightOff())))
          goto restart;
        H.satbRecord(Right);
        R.retire(H.id(), nullptr, IndexNodeBytes, nullptr);
        continue;
      }
      if (keyOf(Target) < Key) {
        Q = Right;
        continue;
      }
    }
    Value Down = ObjectType<GcIndexNode>::get<&GcIndexNode::Down>(Q);
    if (Down.isNil())
      return ObjectType<GcIndexNode>::get<&GcIndexNode::Target>(Q);
    Q = Down;
  }
}

void GcSkipList::findSpliceSpot(VProcHeap &H, int64_t Key, int64_t Level,
                                Value &OutQ, Value &OutR) const {
restart:
  Value Q = IndexHead;
  while (ObjectType<GcIndexNode>::get<&GcIndexNode::Level>(Q) > Level)
    Q = ObjectType<GcIndexNode>::get<&GcIndexNode::Down>(Q);
  for (;;) {
    Value Right = loadField(Q, rightOff());
    if (!Right.isNil()) {
      Value Target = ObjectType<GcIndexNode>::get<&GcIndexNode::Target>(Right);
      if (isDeleted(Target)) {
        if (!casField(Q, rightOff(), Right, loadField(Right, rightOff())))
          goto restart;
        H.satbRecord(Right);
        R.retire(H.id(), nullptr, IndexNodeBytes, nullptr);
        continue;
      }
      if (keyOf(Target) < Key) {
        Q = Right;
        continue;
      }
    }
    OutQ = Q;
    OutR = Right;
    return;
  }
}

int GcSkipList::randomLevels() {
  // splitmix64 over a shared counter: wait-free and thread-safe draws.
  uint64_t Z = Rng.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
  Z ^= Z >> 30;
  Z *= 0xBF58476D1CE4E5B9ull;
  Z ^= Z >> 27;
  Z *= 0x94D049BB133111EBull;
  Z ^= Z >> 31;
  int Levels = 0;
  while ((Z & 1) && Levels < MaxIndexLevels) {
    ++Levels;
    Z >>= 1;
  }
  return Levels;
}

void GcSkipList::buildIndex(VProcHeap &H, RootScope &S,
                            Ref<GcSetNode> &BaseNode, int64_t Key) {
  int Levels = randomLevels();
  if (Levels == 0)
    return;
  // Build the tower bottom-up as one local graph, promote once.
  Ref<GcIndexNode> Tower = S.rootAs<GcIndexNode>(Value::nil());
  for (int64_t Level = 1; Level <= Levels; ++Level) {
    Ref<GcIndexNode> Idx = alloc<GcIndexNode>(
        S, GcIndexNode{Value::nil(), Tower.value(), BaseNode.value(), Level});
    Tower = Idx.value();
  }
  promoteInPlace(S, Tower);
  // From here on: raw traversal only, no allocation, so the collected
  // per-level addresses stay valid (global objects move only while the
  // world is stopped, and this thread does not safe-point below).
  Value PerLevel[MaxIndexLevels];
  Value Walk = Tower.value();
  for (int Level = Levels; Level >= 1; --Level) {
    PerLevel[Level - 1] = Walk;
    Walk = ObjectType<GcIndexNode>::get<&GcIndexNode::Down>(Walk);
  }
  // Splice bottom-up; abandon if the base node dies (its spliced
  // levels are unlinked lazily like any dead tower).
  for (int64_t Level = 1; Level <= Levels; ++Level) {
    Value Idx = PerLevel[Level - 1];
    for (;;) {
      if (isDeleted(BaseNode.value()))
        return;
      Value Q, Right;
      findSpliceSpot(H, Key, Level, Q, Right);
      storeField(Idx, rightOff(), Right); // pre-publish at this level
      if (casField(Q, rightOff(), Right, Idx))
        break;
    }
  }
}

bool GcSkipList::insert(VProcHeap &H, int64_t Key) {
  RootScope S(H);
  Ref<GcSetNode> Pred = S.rootAs<GcSetNode>(Value::nil());
  Ref<GcSetNode> Curr = S.rootAs<GcSetNode>(Value::nil());
  for (;;) {
    H.safePoint();
    if (!searchFrom(H, R, indexSearch(H, Key), Key, Pred, Curr))
      continue;
    if (!Curr.isNil() && keyOf(Curr.value()) == Key)
      return false;
    Ref<GcSetNode> Node =
        alloc<GcSetNode>(S, GcSetNode{Curr.value(), Key, 0});
    promoteInPlace(S, Node);
    if (casNext(Pred.value(), Curr.value(), Node.value())) {
      buildIndex(H, S, Node, Key);
      return true;
    }
  }
}

bool GcSkipList::erase(VProcHeap &H, int64_t Key) {
  RootScope S(H);
  Ref<GcSetNode> Pred = S.rootAs<GcSetNode>(Value::nil());
  Ref<GcSetNode> Curr = S.rootAs<GcSetNode>(Value::nil());
  Ref<GcSetNode> Succ = S.rootAs<GcSetNode>(Value::nil());
  for (;;) {
    H.safePoint();
    if (!searchFrom(H, R, indexSearch(H, Key), Key, Pred, Curr))
      continue;
    if (Curr.isNil() || keyOf(Curr.value()) != Key)
      return false;
    Succ = loadNext(Curr.value());
    if (!Succ.isNil() && isMarker(Succ.value()))
      continue;
    Ref<GcSetNode> Marker =
        alloc<GcSetNode>(S, GcSetNode{Succ.value(), Key, 1});
    promoteInPlace(S, Marker);
    if (!casNext(Curr.value(), Succ.value(), Marker.value()))
      continue;
    if (casNext(Pred.value(), Curr.value(), Succ.value())) {
      H.satbRecord(Curr.value());
      R.retire(H.id(), nullptr, NodePairBytes, nullptr);
    }
    // Sweep the dead tower's index cells out of the way now rather
    // than leaving them all to later traversals.
    indexSearch(H, Key);
    return true;
  }
}

bool GcSkipList::contains(VProcHeap &H, int64_t Key) const {
  H.safePoint();
  return containsFrom(indexSearch(H, Key), Key);
}

} // namespace manti::structures
