//===- structures/EpochStructures.h - EBR lock-free ordered sets ----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The manual-reclamation twins of GcStructures.h: the same ordered-set
/// API over malloc'd nodes with bit-0 marked pointers (the classic
/// Harris/Michael representation -- legal here because nothing scans
/// these nodes, so the tag steals a real pointer bit) and
/// EpochReclaimer grace periods instead of the collector.
///
///  * EpochList -- Michael's lock-free list: search unlinks marked
///    nodes it passes, and whichever CAS wins a physical unlink retires
///    the node exactly once.
///
///  * EpochSkipList -- Herlihy-Shavit tower-based skiplist. Deletion
///    marks the victim's level pointers top-down, level 0 last; the
///    thread whose level-0 mark wins re-runs find() (which snips the
///    victim at every level on its path) and is the unique retirer.
///    Insertion re-checks the level-0 mark after every upper-level
///    link and runs a cleanup find() if the node died mid-splice, so
///    no link to a retired node survives the inserter's pinned epoch.
///
/// Ops take the calling vproc's heap only for thread identity and to
/// honor safe points (a thread spinning in a structure must not stall
/// a global-GC rendezvous); node memory never touches the GC heaps.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_STRUCTURES_EPOCHSTRUCTURES_H
#define MANTI_STRUCTURES_EPOCHSTRUCTURES_H

#include "gc/Heap.h"
#include "structures/Reclaimer.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace manti::structures {

/// Harris/Michael lock-free sorted linked-list set with epoch-based
/// reclamation.
class EpochList {
public:
  explicit EpochList(EpochReclaimer &R);
  ~EpochList();

  EpochList(const EpochList &) = delete;
  EpochList &operator=(const EpochList &) = delete;

  bool insert(VProcHeap &H, int64_t Key);
  bool erase(VProcHeap &H, int64_t Key);
  bool contains(VProcHeap &H, int64_t Key);

  /// Quiescent-only ordered key snapshot.
  std::vector<int64_t> keys() const;

  EpochReclaimer &reclaimer() { return R; }

private:
  struct Node {
    int64_t Key;
    std::atomic<Node *> Next{nullptr};
  };

  static void freeNode(void *P) { delete static_cast<Node *>(P); }
  /// Positions Pred (key < Key) and Curr (nil or first unmarked node
  /// with key >= Key), unlinking and retiring marked nodes on the way.
  void search(unsigned Tid, int64_t Key, Node *&Pred, Node *&Curr);

  Node *Head;
  EpochReclaimer &R;
};

/// Herlihy-Shavit lock-free skiplist set with epoch-based reclamation.
class EpochSkipList {
public:
  explicit EpochSkipList(EpochReclaimer &R);
  ~EpochSkipList();

  EpochSkipList(const EpochSkipList &) = delete;
  EpochSkipList &operator=(const EpochSkipList &) = delete;

  bool insert(VProcHeap &H, int64_t Key);
  bool erase(VProcHeap &H, int64_t Key);
  bool contains(VProcHeap &H, int64_t Key);

  std::vector<int64_t> keys() const;

  EpochReclaimer &reclaimer() { return R; }

  /// Levels 0..MaxLevels-1; level 0 is the full list.
  static constexpr int MaxLevels = 12;

private:
  struct Node {
    int64_t Key = 0;
    int Top = 0; // highest linked level index
    std::atomic<Node *> Next[MaxLevels];
  };

  static void freeNode(void *P) { delete static_cast<Node *>(P); }
  /// \returns true if an unmarked node with \p Key is present; fills
  /// Preds/Succs at every level, snipping marked nodes on the path
  /// (without retiring -- the deleter owns the victim's retirement).
  bool find(int64_t Key, Node **Preds, Node **Succs);
  int randomTop();

  Node *Head;
  EpochReclaimer &R;
  std::atomic<uint64_t> Rng{0xD1B54A32D192ED03ull};
};

} // namespace manti::structures

#endif // MANTI_STRUCTURES_EPOCHSTRUCTURES_H
