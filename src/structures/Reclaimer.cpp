//===- structures/Reclaimer.cpp - GC and epoch reclamation backends -------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "structures/Reclaimer.h"

#include "support/Assert.h"

namespace manti::structures {

//===----------------------------------------------------------------------===//
// GcReclaimer
//===----------------------------------------------------------------------===//

GcReclaimer::GcReclaimer(unsigned NumThreads)
    : NumThreads(NumThreads), Slots(new Slot[NumThreads]) {}

void GcReclaimer::retire(unsigned Tid, void *Node, std::size_t Bytes,
                         void (*Free)(void *)) {
  MANTI_CHECK(Node == nullptr && Free == nullptr,
              "GC-managed nodes are never freed manually");
  MANTI_CHECK(Tid < NumThreads, "retire from unknown thread");
  Slot &S = Slots[Tid];
  S.RetiredObjects.fetch_add(1, std::memory_order_relaxed);
  S.RetiredBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

ReclaimerStats GcReclaimer::stats() const {
  ReclaimerStats Out;
  for (unsigned I = 0; I < NumThreads; ++I) {
    Out.RetiredObjects += Slots[I].RetiredObjects.load(std::memory_order_relaxed);
    Out.RetiredBytes += Slots[I].RetiredBytes.load(std::memory_order_relaxed);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// EpochReclaimer
//===----------------------------------------------------------------------===//

EpochReclaimer::EpochReclaimer(unsigned NumThreads)
    : NumThreads(NumThreads), Slots(new Slot[NumThreads]) {}

EpochReclaimer::~EpochReclaimer() { drain(); }

void EpochReclaimer::opBegin(unsigned Tid) {
  MANTI_CHECK(Tid < NumThreads, "opBegin from unknown thread");
  uint64_t E = GlobalEpoch.load(std::memory_order_relaxed);
  // seq_cst: the pin must be globally visible before this thread reads
  // any structure pointers, so an advance scan cannot miss an active
  // thread and free a node it is about to dereference.
  Slots[Tid].State.store((E << 1) | 1, std::memory_order_seq_cst);
}

void EpochReclaimer::opEnd(unsigned Tid) {
  Slot &S = Slots[Tid];
  uint64_t St = S.State.load(std::memory_order_relaxed);
  S.State.store(St & ~uint64_t(1), std::memory_order_release);
  if (++S.OpsSinceScan >= ScanInterval) {
    S.OpsSinceScan = 0;
    tryAdvance();
    // Expiry check even on read-only workloads: other threads' retires
    // advance the epoch, and our old buckets must not wait for our next
    // retire to be freed.
    collectExpired(S, GlobalEpoch.load(std::memory_order_acquire));
  }
}

void EpochReclaimer::retire(unsigned Tid, void *Node, std::size_t Bytes,
                            void (*Free)(void *)) {
  MANTI_CHECK(Node != nullptr && Free != nullptr,
              "epoch reclamation needs the node and its deleter");
  Slot &S = Slots[Tid];
  uint64_t G = GlobalEpoch.load(std::memory_order_acquire);
  Bucket &B = S.Buckets[G % 3];
  if (B.Epoch != G) {
    // The bucket last served epoch <= G - 3: every thread has repinned
    // since, so its contents are unreachable from any live traversal.
    freeBucket(S, B);
    B.Epoch = G;
  }
  B.Items.push_back({Node, Bytes, Free});
  S.RetiredObjects.fetch_add(1, std::memory_order_relaxed);
  S.RetiredBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void EpochReclaimer::freeBucket(Slot &S, Bucket &B) {
  if (B.Items.empty())
    return;
  uint64_t Objects = 0, Bytes = 0;
  for (const Retired &R : B.Items) {
    ++Objects;
    Bytes += R.Bytes;
    R.Free(R.Node);
  }
  B.Items.clear();
  S.ReclaimedObjects.fetch_add(Objects, std::memory_order_relaxed);
  S.ReclaimedBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void EpochReclaimer::collectExpired(Slot &S, uint64_t Global) {
  for (Bucket &B : S.Buckets)
    if (!B.Items.empty() && Global >= B.Epoch + 3)
      freeBucket(S, B);
}

void EpochReclaimer::tryAdvance() {
  uint64_t G = GlobalEpoch.load(std::memory_order_acquire);
  for (unsigned I = 0; I < NumThreads; ++I) {
    uint64_t St = Slots[I].State.load(std::memory_order_acquire);
    if ((St & 1) && (St >> 1) != G)
      return; // an active thread has not observed epoch G yet
  }
  if (GlobalEpoch.compare_exchange_strong(G, G + 1,
                                          std::memory_order_acq_rel))
    Advances.fetch_add(1, std::memory_order_relaxed);
}

void EpochReclaimer::drain() {
  for (unsigned I = 0; I < NumThreads; ++I)
    for (Bucket &B : Slots[I].Buckets)
      freeBucket(Slots[I], B);
}

ReclaimerStats EpochReclaimer::stats() const {
  ReclaimerStats Out;
  for (unsigned I = 0; I < NumThreads; ++I) {
    const Slot &S = Slots[I];
    Out.RetiredObjects += S.RetiredObjects.load(std::memory_order_relaxed);
    Out.RetiredBytes += S.RetiredBytes.load(std::memory_order_relaxed);
    Out.ReclaimedObjects += S.ReclaimedObjects.load(std::memory_order_relaxed);
    Out.ReclaimedBytes += S.ReclaimedBytes.load(std::memory_order_relaxed);
  }
  Out.EpochAdvances = Advances.load(std::memory_order_relaxed);
  return Out;
}

} // namespace manti::structures
