//===- structures/EpochStructures.cpp - EBR lock-free ordered sets --------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "structures/EpochStructures.h"

#include <climits>
#include <cstdint>

namespace manti::structures {

namespace {

/// Bit-0 mark on a node pointer: the node that *holds* a marked Next is
/// logically deleted.
template <typename N> bool marked(N *P) {
  return (reinterpret_cast<uintptr_t>(P) & 1) != 0;
}
template <typename N> N *unmark(N *P) {
  return reinterpret_cast<N *>(reinterpret_cast<uintptr_t>(P) & ~uintptr_t(1));
}
template <typename N> N *mark(N *P) {
  return reinterpret_cast<N *>(reinterpret_cast<uintptr_t>(P) | 1);
}

uint64_t splitmix64(uint64_t Z) {
  Z ^= Z >> 30;
  Z *= 0xBF58476D1CE4E5B9ull;
  Z ^= Z >> 27;
  Z *= 0x94D049BB133111EBull;
  Z ^= Z >> 31;
  return Z;
}

} // namespace

//===----------------------------------------------------------------------===//
// EpochList
//===----------------------------------------------------------------------===//

EpochList::EpochList(EpochReclaimer &R) : R(R) {
  Head = new Node{INT64_MIN, {}};
}

EpochList::~EpochList() {
  // Retired nodes live in the reclaimer's buckets, never in the chain,
  // so walking the chain frees exactly the non-retired remainder.
  Node *Curr = Head;
  while (Curr) {
    Node *Next = unmark(Curr->Next.load(std::memory_order_relaxed));
    delete Curr;
    Curr = Next;
  }
}

void EpochList::search(unsigned Tid, int64_t Key, Node *&Pred, Node *&Curr) {
retry:
  Pred = Head;
  Curr = unmark(Pred->Next.load(std::memory_order_acquire));
  for (;;) {
    if (!Curr)
      return;
    Node *Succ = Curr->Next.load(std::memory_order_acquire);
    if (marked(Succ)) {
      Node *Expected = Curr;
      if (!Pred->Next.compare_exchange_strong(Expected, unmark(Succ),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire))
        goto retry;
      // This CAS removed the node's only predecessor edge; once
      // unlinked a node can never be re-linked (every insert CAS would
      // expect it unmarked), so the winner is the unique retirer.
      R.retire(Tid, Curr, sizeof(Node), freeNode);
      Curr = unmark(Succ);
      continue;
    }
    if (Curr->Key >= Key)
      return;
    Pred = Curr;
    Curr = Succ;
  }
}

bool EpochList::insert(VProcHeap &H, int64_t Key) {
  H.safePoint();
  unsigned Tid = H.id();
  R.opBegin(Tid);
  Node *Pred, *Curr;
  Node *Fresh = nullptr;
  bool Inserted = false;
  for (;;) {
    search(Tid, Key, Pred, Curr);
    if (Curr && Curr->Key == Key)
      break;
    if (!Fresh)
      Fresh = new Node{Key, {}};
    Fresh->Next.store(Curr, std::memory_order_relaxed);
    Node *Expected = Curr;
    if (Pred->Next.compare_exchange_strong(Expected, Fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      Inserted = true;
      break;
    }
  }
  if (!Inserted && Fresh)
    delete Fresh;
  R.opEnd(Tid);
  return Inserted;
}

bool EpochList::erase(VProcHeap &H, int64_t Key) {
  H.safePoint();
  unsigned Tid = H.id();
  R.opBegin(Tid);
  bool Erased = false;
  Node *Pred, *Curr;
  for (;;) {
    search(Tid, Key, Pred, Curr);
    if (!Curr || Curr->Key != Key)
      break;
    Node *Succ = Curr->Next.load(std::memory_order_acquire);
    if (marked(Succ))
      continue; // someone else is deleting it; re-search reports absence
    // Logical delete: tag Curr's own Next.
    if (!Curr->Next.compare_exchange_strong(Succ, mark(Succ),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
      continue;
    // Best-effort physical unlink; the winner (us or a later search)
    // retires.
    Node *Expected = Curr;
    if (Pred->Next.compare_exchange_strong(Expected, Succ,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
      R.retire(Tid, Curr, sizeof(Node), freeNode);
    Erased = true;
    break;
  }
  R.opEnd(Tid);
  return Erased;
}

bool EpochList::contains(VProcHeap &H, int64_t Key) {
  H.safePoint();
  unsigned Tid = H.id();
  R.opBegin(Tid);
  bool Found = false;
  Node *Curr = unmark(Head->Next.load(std::memory_order_acquire));
  while (Curr) {
    Node *Succ = Curr->Next.load(std::memory_order_acquire);
    if (Curr->Key > Key)
      break;
    if (Curr->Key == Key) {
      Found = !marked(Succ);
      break;
    }
    Curr = unmark(Succ);
  }
  R.opEnd(Tid);
  return Found;
}

std::vector<int64_t> EpochList::keys() const {
  std::vector<int64_t> Out;
  Node *Curr = unmark(Head->Next.load(std::memory_order_acquire));
  while (Curr) {
    Node *Succ = Curr->Next.load(std::memory_order_acquire);
    if (!marked(Succ))
      Out.push_back(Curr->Key);
    Curr = unmark(Succ);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// EpochSkipList
//===----------------------------------------------------------------------===//

EpochSkipList::EpochSkipList(EpochReclaimer &R) : R(R) {
  Head = new Node;
  Head->Key = INT64_MIN;
  Head->Top = MaxLevels - 1;
}

EpochSkipList::~EpochSkipList() {
  Node *Curr = Head;
  while (Curr) {
    Node *Next = unmark(Curr->Next[0].load(std::memory_order_relaxed));
    delete Curr;
    Curr = Next;
  }
}

int EpochSkipList::randomTop() {
  uint64_t Z = splitmix64(
      Rng.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed));
  int Top = 0;
  while ((Z & 1) && Top < MaxLevels - 1) {
    ++Top;
    Z >>= 1;
  }
  return Top;
}

bool EpochSkipList::find(int64_t Key, Node **Preds, Node **Succs) {
retry:
  Node *Pred = Head;
  for (int Level = MaxLevels - 1; Level >= 0; --Level) {
    Node *Curr = unmark(Pred->Next[Level].load(std::memory_order_acquire));
    for (;;) {
      if (!Curr)
        break;
      Node *Succ = Curr->Next[Level].load(std::memory_order_acquire);
      while (marked(Succ)) {
        // Snip the marked node at this level. No retire here: only the
        // deleter (level-0 mark winner) retires, after its own find()
        // has walked every level.
        Node *Expected = Curr;
        if (!Pred->Next[Level].compare_exchange_strong(
                Expected, unmark(Succ), std::memory_order_acq_rel,
                std::memory_order_acquire))
          goto retry;
        Curr = unmark(Succ);
        if (!Curr)
          break;
        Succ = Curr->Next[Level].load(std::memory_order_acquire);
      }
      if (!Curr || Curr->Key >= Key)
        break;
      Pred = Curr;
      Curr = unmark(Succ);
    }
    Preds[Level] = Pred;
    Succs[Level] = Curr;
  }
  return Succs[0] && Succs[0]->Key == Key;
}

bool EpochSkipList::insert(VProcHeap &H, int64_t Key) {
  H.safePoint();
  unsigned Tid = H.id();
  R.opBegin(Tid);
  Node *Preds[MaxLevels], *Succs[MaxLevels];
  Node *Fresh = nullptr;
  for (;;) {
    if (find(Key, Preds, Succs)) {
      delete Fresh;
      R.opEnd(Tid);
      return false;
    }
    if (!Fresh) {
      Fresh = new Node;
      Fresh->Key = Key;
      Fresh->Top = randomTop();
    }
    // Still private: plain-store the level pointers.
    for (int Level = 0; Level <= Fresh->Top; ++Level)
      Fresh->Next[Level].store(Succs[Level], std::memory_order_relaxed);
    Node *Expected = Succs[0];
    if (!Preds[0]->Next[0].compare_exchange_strong(Expected, Fresh,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_acquire))
      continue; // level 0 lost; re-find and retry with the same node
    // Linked: splice the upper levels. If a concurrent erase marks the
    // node mid-splice, stop and run a cleanup find() before unpinning
    // so no level link to the (about to be retired) node outlives this
    // epoch-pinned operation.
    for (int Level = 1; Level <= Fresh->Top; ++Level) {
      for (;;) {
        if (marked(Fresh->Next[0].load(std::memory_order_acquire))) {
          find(Key, Preds, Succs);
          R.opEnd(Tid);
          return true;
        }
        Node *Cur = Fresh->Next[Level].load(std::memory_order_acquire);
        if (marked(Cur)) {
          find(Key, Preds, Succs);
          R.opEnd(Tid);
          return true;
        }
        if (Cur != Succs[Level] &&
            !Fresh->Next[Level].compare_exchange_strong(
                Cur, Succs[Level], std::memory_order_acq_rel,
                std::memory_order_acquire))
          continue; // re-inspect: either marked now or a stale Cur
        Node *PredExpected = Succs[Level];
        if (Preds[Level]->Next[Level].compare_exchange_strong(
                PredExpected, Fresh, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          // Post-link check: the deleter marks top-down then level 0,
          // so a marked level 0 here means its cleanup find() may have
          // missed this fresh link -- snip it ourselves.
          if (marked(Fresh->Next[0].load(std::memory_order_acquire))) {
            find(Key, Preds, Succs);
            R.opEnd(Tid);
            return true;
          }
          break;
        }
        find(Key, Preds, Succs); // refresh this level's splice point
      }
    }
    R.opEnd(Tid);
    return true;
  }
}

bool EpochSkipList::erase(VProcHeap &H, int64_t Key) {
  H.safePoint();
  unsigned Tid = H.id();
  R.opBegin(Tid);
  Node *Preds[MaxLevels], *Succs[MaxLevels];
  bool Erased = false;
  if (find(Key, Preds, Succs)) {
    Node *Victim = Succs[0];
    // Mark the upper levels top-down; level 0 decides the race.
    for (int Level = Victim->Top; Level >= 1; --Level) {
      Node *Succ = Victim->Next[Level].load(std::memory_order_acquire);
      while (!marked(Succ))
        Victim->Next[Level].compare_exchange_weak(Succ, mark(Succ),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
    }
    Node *Succ = Victim->Next[0].load(std::memory_order_acquire);
    while (!marked(Succ)) {
      if (Victim->Next[0].compare_exchange_strong(Succ, mark(Succ),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        // We own the deletion: physically unlink at every level, then
        // retire. find() retries until a clean pass, after which no
        // level link to Victim remains (re-link CASes expect an
        // unmarked victim and fail).
        find(Key, Preds, Succs);
        R.retire(Tid, Victim, sizeof(Node), freeNode);
        Erased = true;
        break;
      }
    }
    // marked(Succ) without winning: another deleter owns it.
  }
  R.opEnd(Tid);
  return Erased;
}

bool EpochSkipList::contains(VProcHeap &H, int64_t Key) {
  H.safePoint();
  unsigned Tid = H.id();
  R.opBegin(Tid);
  // Wait-free read-only descent: skip marked nodes logically.
  Node *Pred = Head;
  Node *Found = nullptr;
  for (int Level = MaxLevels - 1; Level >= 0; --Level) {
    Node *Curr = unmark(Pred->Next[Level].load(std::memory_order_acquire));
    for (;;) {
      if (!Curr)
        break;
      Node *Succ = Curr->Next[Level].load(std::memory_order_acquire);
      if (Curr->Key > Key)
        break;
      if (Curr->Key == Key) {
        Found = marked(Succ) ? nullptr : Curr;
        break;
      }
      if (marked(Succ)) {
        Curr = unmark(Succ);
        continue;
      }
      Pred = Curr;
      Curr = unmark(Succ);
    }
    if (Found)
      break;
  }
  R.opEnd(Tid);
  return Found != nullptr;
}

std::vector<int64_t> EpochSkipList::keys() const {
  std::vector<int64_t> Out;
  Node *Curr = unmark(Head->Next[0].load(std::memory_order_acquire));
  while (Curr) {
    Node *Succ = Curr->Next[0].load(std::memory_order_acquire);
    if (!marked(Succ))
      Out.push_back(Curr->Key);
    Curr = unmark(Succ);
  }
  return Out;
}

} // namespace manti::structures
