//===- structures/Reclaimer.h - node reclamation for lock-free structures -===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reclamation seam of the lock-free structure ablation. A lock-free
/// set unlinks nodes while other threads may still be traversing them;
/// *something* must keep the memory alive until every such traversal is
/// done. The two implementations here are the two sides of the paper's
/// argument:
///
///  * GcReclaimer -- the runtime collector is the reclaimer. Unlinked
///    nodes are ordinary unreachable heap objects; "retire" is pure
///    accounting so the bench can compare retired bytes against what the
///    collector actually swept.
///
///  * EpochReclaimer -- the manual baseline (synchrobench's per-thread
///    deferred-free lists, hardened into classic epoch-based
///    reclamation). Threads pin the global epoch for the duration of
///    each structure operation; a retired node is freed only after the
///    epoch has advanced far enough that no pinned thread can still hold
///    a pointer to it.
///
/// Both count through the same ReclaimerStats so ablation rows line up.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_STRUCTURES_RECLAIMER_H
#define MANTI_STRUCTURES_RECLAIMER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace manti::structures {

/// Counters every reclaimer keeps, summed over threads. For the GC
/// variant ReclaimedBytes stays zero (the collector's own sweep stats
/// are the other side of that ledger); for the epoch variant retired
/// and reclaimed converge once grace periods expire.
struct ReclaimerStats {
  uint64_t RetiredObjects = 0;
  uint64_t RetiredBytes = 0;
  uint64_t ReclaimedObjects = 0;
  uint64_t ReclaimedBytes = 0;
  uint64_t EpochAdvances = 0;
};

/// Abstract reclamation interface the structures are written against.
/// Thread identity is the vproc id; callers bracket every structure
/// operation with opBegin/opEnd and hand over each physically unlinked
/// node through retire exactly once.
class Reclaimer {
public:
  virtual ~Reclaimer() = default;

  virtual const char *name() const = 0;

  /// Enter/leave one structure operation on thread \p Tid.
  virtual void opBegin(unsigned Tid) = 0;
  virtual void opEnd(unsigned Tid) = 0;

  /// Hands over one unlinked node. \p Node / \p Free are null for the
  /// GC variant (the collector finds the garbage itself); the epoch
  /// variant defers Free(Node) until a grace period has passed.
  virtual void retire(unsigned Tid, void *Node, std::size_t Bytes,
                      void (*Free)(void *)) = 0;

  virtual ReclaimerStats stats() const = 0;
};

/// GC-backed "reclaimer": unlinking a node from a structure already made
/// it unreachable, so reclamation is the collector's problem. retire()
/// only keeps the retired-bytes ledger the ablation compares against the
/// collector's sweep counters.
class GcReclaimer final : public Reclaimer {
public:
  explicit GcReclaimer(unsigned NumThreads);

  const char *name() const override { return "runtime-gc"; }
  void opBegin(unsigned) override {}
  void opEnd(unsigned) override {}
  void retire(unsigned Tid, void *Node, std::size_t Bytes,
              void (*Free)(void *)) override;
  ReclaimerStats stats() const override;

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> RetiredObjects{0};
    std::atomic<uint64_t> RetiredBytes{0};
  };
  unsigned NumThreads;
  std::unique_ptr<Slot[]> Slots;
};

/// Classic epoch-based reclamation. A global epoch counter advances only
/// when every in-operation thread has been observed pinned at the
/// current epoch; each thread batches retired nodes into per-epoch
/// buckets and frees a bucket once the global epoch is at least three
/// ahead of the bucket's (strictly more conservative than the textbook
/// two-epoch grace period).
class EpochReclaimer final : public Reclaimer {
public:
  explicit EpochReclaimer(unsigned NumThreads);
  ~EpochReclaimer() override;

  const char *name() const override { return "epoch"; }
  void opBegin(unsigned Tid) override;
  void opEnd(unsigned Tid) override;
  void retire(unsigned Tid, void *Node, std::size_t Bytes,
              void (*Free)(void *)) override;
  ReclaimerStats stats() const override;

  /// Frees every outstanding retired node regardless of epoch. Only
  /// legal once no thread is inside an operation (quiescence is the
  /// caller's problem); the destructor calls it.
  void drain();

private:
  struct Retired {
    void *Node;
    std::size_t Bytes;
    void (*Free)(void *);
  };
  /// One epoch's worth of one thread's retired nodes. Three buckets
  /// cycle: reusing a bucket stamped with an older epoch (necessarily
  /// <= current - 3) frees its contents first.
  struct Bucket {
    uint64_t Epoch = 0;
    std::vector<Retired> Items;
  };
  struct alignas(64) Slot {
    /// (epoch << 1) | active. A single word so opBegin is one seq_cst
    /// store and the advance scan is one load per thread.
    std::atomic<uint64_t> State{0};
    Bucket Buckets[3];
    unsigned OpsSinceScan = 0;
    std::atomic<uint64_t> RetiredObjects{0};
    std::atomic<uint64_t> RetiredBytes{0};
    std::atomic<uint64_t> ReclaimedObjects{0};
    std::atomic<uint64_t> ReclaimedBytes{0};
  };

  void freeBucket(Slot &S, Bucket &B);
  void tryAdvance();
  /// Frees any of \p S's buckets whose grace period has expired.
  void collectExpired(Slot &S, uint64_t Global);

  unsigned NumThreads;
  std::unique_ptr<Slot[]> Slots;
  std::atomic<uint64_t> GlobalEpoch{1};
  std::atomic<uint64_t> Advances{0};

  /// Ops between advance attempts: frequent enough that quick tests
  /// observe reclamation, cheap enough (one load per thread) to vanish
  /// in bench noise.
  static constexpr unsigned ScanInterval = 64;
};

} // namespace manti::structures

#endif // MANTI_STRUCTURES_RECLAIMER_H
