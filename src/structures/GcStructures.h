//===- structures/GcStructures.h - GC-backed lock-free ordered sets -------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free ordered integer sets whose nodes are runtime heap objects:
/// a Harris-style linked list and a ConcurrentSkipListMap-style skiplist
/// layered on it. These are the collector's adversarial mutators --
/// genuinely shared, contended object graphs rewired by CAS while
/// concurrent marking, promotion, and copying collections run.
///
/// Design notes:
///
///  * Logical deletion uses *marker nodes*, not pointer tag bits: the
///    value representation steals bit 0 for tagged ints, so a tagged
///    field in a scanned object would be misread by the collector. A
///    node is deleted iff its Next points at a node with Marker == 1
///    (Java's ConcurrentSkipListMap plays the same trick for the same
///    "no spare bits" reason). The marker's own Next is the deleted
///    node's old successor and is immutable, so unlinking is a single
///    CAS of the predecessor's Next past both.
///
///  * Node fields are read/CASed through std::atomic_ref on the
///    underlying heap words. Nodes are promoted to the global heap
///    *before* they are linked (the heap invariant forbids global ->
///    local edges), and global objects only move while the world is
///    stopped, so a CAS expected-value read from a rooted handle slot
///    can never be silently invalidated mid-operation.
///
///  * Every successful CAS that drops a node from the reachable spine
///    reports the dropped value to the SATB deletion barrier
///    (VProcHeap::satbRecord), keeping snapshot-at-the-beginning
///    concurrent cycles sound under concurrent unlinking.
///
///  * The structure head slots are registered on the constructing
///    vproc's shadow stack for the structure's lifetime, so collections
///    treat the whole set as rooted. Construct and destroy on that
///    vproc's thread while it is quiescent.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_STRUCTURES_GCSTRUCTURES_H
#define MANTI_STRUCTURES_GCSTRUCTURES_H

#include "gc/Handles.h"
#include "structures/Reclaimer.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace manti::structures {

/// One list cell: an ordinary typed heap object. Marker == 1 flags the
/// marker nodes interposed by deletion; Key on a marker is the deleted
/// node's key (debugging aid only).
struct GcSetNode {
  Value Next;
  int64_t Key;
  int64_t Marker;
  static constexpr const char *GcName = "lf-set-node";
  static constexpr auto GcPtrFields = ptrFields(&GcSetNode::Next);
};

/// Skiplist index cell: Right chains an index level, Down descends one
/// level (nil at level 1), Target is the base-list node the tower
/// belongs to.
struct GcIndexNode {
  Value Right;
  Value Down;
  Value Target;
  int64_t Level;
  static constexpr const char *GcName = "lf-skip-index";
  static constexpr auto GcPtrFields =
      ptrFields(&GcIndexNode::Right, &GcIndexNode::Down, &GcIndexNode::Target);
};

/// Harris-style lock-free sorted linked-list set over int64 keys.
class GcList {
public:
  /// Registers the node type with \p H's world if needed, allocates the
  /// head sentinel in the global heap, and roots it on \p H's shadow
  /// stack. Run on \p H's vproc thread before concurrent use.
  GcList(VProcHeap &H, GcReclaimer &R);
  ~GcList();

  GcList(const GcList &) = delete;
  GcList &operator=(const GcList &) = delete;

  /// \returns true if \p Key was absent and is now present. Callable
  /// from any vproc thread, concurrently.
  bool insert(VProcHeap &H, int64_t Key);
  /// \returns true if \p Key was present and is now absent.
  bool erase(VProcHeap &H, int64_t Key);
  /// Read-only, allocation-free membership test.
  bool contains(VProcHeap &H, int64_t Key) const;

  /// Snapshot of the live keys in order. Only meaningful while no other
  /// thread is mutating (tests and teardown).
  std::vector<int64_t> keys() const;

  GcReclaimer &reclaimer() { return R; }

private:
  friend class GcSkipList;

  VProcHeap &Home;
  GcReclaimer &R;
  /// Rooted head-sentinel slot. Ops read it plainly: it is written only
  /// at construction and by world-stopped collections.
  Value Head = Value::nil();
};

/// Lock-free skiplist set: a GcList base level plus a lazily-repaired
/// index built from GcIndexNode towers (the ConcurrentSkipListMap
/// shape). The index is an accelerator only -- correctness lives
/// entirely in the base list, and index nodes whose base node has been
/// deleted are unlinked by whichever traversal next walks past them.
class GcSkipList {
public:
  GcSkipList(VProcHeap &H, GcReclaimer &R);
  ~GcSkipList();

  GcSkipList(const GcSkipList &) = delete;
  GcSkipList &operator=(const GcSkipList &) = delete;

  bool insert(VProcHeap &H, int64_t Key);
  bool erase(VProcHeap &H, int64_t Key);
  bool contains(VProcHeap &H, int64_t Key) const;

  /// Quiescent-only ordered key snapshot (base-level walk).
  std::vector<int64_t> keys() const { return Base.keys(); }

  GcReclaimer &reclaimer() { return R; }

  /// Index height is fixed at construction: growing the head tower
  /// concurrently would mean CASing a rooted slot, which the copying
  /// collector may rewrite. 2^10 expected keys per index level is ample
  /// for the bench's key ranges.
  static constexpr int MaxIndexLevels = 10;

private:
  /// Descends the index helping unlink dead index nodes; \returns the
  /// base-list node (key < Key) to start the base search from.
  /// Allocation-free.
  Value indexSearch(VProcHeap &H, int64_t Key) const;
  /// Positions the level-\p Level splice point for \p Key: \p OutQ is
  /// the index node to link after, \p OutR its current Right.
  void findSpliceSpot(VProcHeap &H, int64_t Key, int64_t Level, Value &OutQ,
                      Value &OutR) const;
  /// Builds and splices an index tower over freshly inserted \p BaseNode.
  void buildIndex(VProcHeap &H, RootScope &S, Ref<GcSetNode> &BaseNode,
                  int64_t Key);
  int randomLevels();

  VProcHeap &Home;
  GcReclaimer &R;
  GcList Base;
  /// Rooted slot for the top-level head index node; the rest of the
  /// head tower hangs off its Down chain.
  Value IndexHead = Value::nil();
  mutable std::atomic<uint64_t> Rng{0x9E3779B97F4A7C15ull};
};

} // namespace manti::structures

#endif // MANTI_STRUCTURES_GCSTRUCTURES_H
