//===- sim/Engine.cpp ------------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "sim/Engine.h"

#include "support/Assert.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace manti;
using namespace manti::sim;

namespace {

constexpr double GB = 1e9;
constexpr double Eps = 1e-9;

/// One memory stream of a leaf: Bytes moving between the core's node and
/// a DRAM node (Write = core -> dram, read = dram -> core).
struct Stream {
  unsigned DramNode;
  bool Write;
  double Bytes;
  // Filled during rate allocation:
  double Rate = 0;
  double Cap = 0;
  bool Fixed = false;
  std::vector<unsigned> Resources;
};

struct Leaf {
  bool Active = false;
  double CpuRemaining = 0;
  std::vector<Stream> Streams;
};

/// Half-open remaining range of a vproc within the current phase.
struct Range {
  int64_t Lo = 0;
  int64_t Hi = 0;
  int64_t size() const { return Hi - Lo; }
};

class Engine {
public:
  Engine(const SimMachine &M, const WorkloadProfile &W, const SimParams &P)
      : M(M), W(W), P(P), Hz(M.CoreGHz * 1e9) {
    Cores = M.Topo.assignVProcsSparsely(P.Threads);
    CoreNode.reserve(Cores.size());
    for (CoreId C : Cores)
      CoreNode.push_back(M.Topo.nodeOfCore(C));
    NumNodes = M.Topo.numNodes();
    Result.NodeDramBytes.assign(NumNodes, 0.0);
    Result.LinkBytes.assign(M.Topo.numLinks(), 0.0);
    // Resources: [0, NumNodes) memory controllers;
    // [NumNodes, NumNodes + 2*Links) directed links;
    // [.., + Threads) per-core ceilings.
    ResCap.assign(NumNodes + 2 * M.Topo.numLinks() + P.Threads, 0.0);
    for (unsigned N = 0; N < NumNodes; ++N)
      ResCap[N] = M.Topo.localMemoryGBps() * GB;
    for (unsigned L = 0; L < M.Topo.numLinks(); ++L) {
      ResCap[NumNodes + 2 * L] = M.Topo.link(L).GBps * GB;
      ResCap[NumNodes + 2 * L + 1] = M.Topo.link(L).GBps * GB;
    }
    for (unsigned V = 0; V < P.Threads; ++V)
      ResCap[NumNodes + 2 * M.Topo.numLinks() + V] = M.PerCoreGBps * GB;
  }

  SimResult run() {
    double Total = 0;
    for (unsigned R = 0; R < 1; ++R) { // phases repeat identically
      for (const PhaseSpec &Ph : W.Phases)
        Total += runPhase(Ph);
    }
    Total *= W.Repeats;
    for (double &B : Result.NodeDramBytes)
      B *= W.Repeats;
    for (double &B : Result.LinkBytes)
      B *= W.Repeats;
    Result.Seconds = Total;
    Result.CpuBusyFraction =
        Total > 0 ? BusySeconds * W.Repeats / (Total * P.Threads) : 0;
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Placement and residency
  //===--------------------------------------------------------------------===//

  /// Fraction of a region's pages on each node, as seen from \p VProc.
  void regionDist(const RegionSpec &R, unsigned VProc, double *Dist) {
    std::fill(Dist, Dist + NumNodes, 0.0);
    switch (P.Policy) {
    case AllocPolicyKind::SingleNode:
      Dist[0] = 1.0;
      return;
    case AllocPolicyKind::Interleaved:
      for (unsigned N = 0; N < NumNodes; ++N)
        Dist[N] = 1.0 / NumNodes;
      return;
    case AllocPolicyKind::Local:
      if (R.Placement == PlacementKind::SharedByVProc0)
        Dist[CoreNode[0]] = 1.0; // allocated once by the main vproc
      else
        Dist[CoreNode[VProc]] = 1.0; // first-touched by its computer
      return;
    }
  }

  /// Local-heap page distribution for \p VProc (nursery / chunk pages).
  void localHeapDist(unsigned VProc, double *Dist) {
    std::fill(Dist, Dist + NumNodes, 0.0);
    switch (P.Policy) {
    case AllocPolicyKind::SingleNode:
      Dist[0] = 1.0;
      return;
    case AllocPolicyKind::Interleaved:
      for (unsigned N = 0; N < NumNodes; ++N)
        Dist[N] = 1.0 / NumNodes;
      return;
    case AllocPolicyKind::Local:
      Dist[CoreNode[VProc]] = 1.0;
      return;
    }
  }

  /// DRAM fraction of demanded bytes after cache filtering.
  double missFactor(const RegionSpec &R) const {
    double Footprint = R.Bytes;
    if (R.Placement == PlacementKind::PartitionedFirstTouch)
      Footprint /= static_cast<double>(P.Threads);
    return Footprint <= M.L3UsableBytes ? P.ColdMissFactor : 1.0;
  }

  //===--------------------------------------------------------------------===//
  // Leaf construction
  //===--------------------------------------------------------------------===//

  void addStream(Leaf &L, unsigned VProc, const double *Dist, double Bytes,
                 bool Write) {
    if (Bytes <= Eps)
      return;
    for (unsigned N = 0; N < NumNodes; ++N) {
      double Part = Bytes * Dist[N];
      if (Part <= Eps)
        continue;
      // Merge with an existing stream of the same node/direction.
      bool Merged = false;
      for (Stream &S : L.Streams) {
        if (S.DramNode == N && S.Write == Write) {
          S.Bytes += Part;
          Merged = true;
          break;
        }
      }
      if (!Merged) {
        Stream S;
        S.DramNode = N;
        S.Write = Write;
        S.Bytes = Part;
        S.Resources = resourcesFor(VProc, N, Write);
        L.Streams.push_back(S);
      }
    }
  }

  std::vector<unsigned> resourcesFor(unsigned VProc, unsigned DramNode,
                                     bool Write) {
    std::vector<unsigned> Res;
    Res.push_back(DramNode); // memory controller
    Res.push_back(NumNodes + 2 * M.Topo.numLinks() + VProc); // core ceiling
    NodeId From = Write ? CoreNode[VProc] : DramNode;
    NodeId To = Write ? DramNode : CoreNode[VProc];
    NodeId Cur = From;
    for (LinkId L : M.Topo.route(From, To)) {
      const Link &Lk = M.Topo.link(L);
      unsigned Dir = (Cur == Lk.NodeA) ? 0 : 1;
      Res.push_back(NumNodes + 2 * L + Dir);
      Cur = (Cur == Lk.NodeA) ? Lk.NodeB : Lk.NodeA;
    }
    return Res;
  }

  Leaf makeLeaf(const PhaseSpec &Ph, unsigned VProc, int64_t Elems,
                bool Stolen) {
    Leaf L;
    L.Active = true;
    double E = static_cast<double>(Elems);
    L.CpuRemaining = E * Ph.CpuCyclesPerElem + P.SpawnCycles +
                     E * Ph.AllocBytesPerElem * P.GcCpuPerAllocByte +
                     (Stolen ? P.StealCycles : 0);
    double Dist[16];
    MANTI_CHECK(NumNodes <= 16, "engine supports at most 16 nodes");
    for (const AccessSpec &A : Ph.Reads) {
      const RegionSpec &R = W.Regions[A.Region];
      regionDist(R, VProc, Dist);
      double RemoteFrac = 1.0 - Dist[CoreNode[VProc]];
      double Miss = missFactor(R);
      addStream(L, VProc, Dist, E * A.BytesPerElem * Miss,
                /*Write=*/false);
      // Cache-resident shared data gathered from another node still
      // pays cache-to-cache probe latency per access.
      if (A.Gather && Miss < 1.0)
        L.CpuRemaining +=
            E * A.BytesPerElem * RemoteFrac * P.GatherStallCyclesPerByte;
    }
    for (const AccessSpec &A : Ph.Writes) {
      const RegionSpec &R = W.Regions[A.Region];
      regionDist(R, VProc, Dist);
      double RemoteFrac = 1.0 - Dist[CoreNode[VProc]];
      addStream(L, VProc, Dist, E * A.BytesPerElem, /*Write=*/true);
      L.CpuRemaining +=
          E * A.BytesPerElem * RemoteFrac * P.WriteStallCyclesPerByte;
    }
    if (Ph.AllocBytesPerElem > 0) {
      localHeapDist(VProc, Dist);
      double RemoteFrac = 1.0 - Dist[CoreNode[VProc]];
      addStream(L, VProc, Dist,
                E * Ph.AllocBytesPerElem * P.GcMemPerAllocByte,
                /*Write=*/true);
      // Allocating into remote-homed nursery pages costs the mutator.
      L.CpuRemaining += E * Ph.AllocBytesPerElem * RemoteFrac *
                        P.WriteStallCyclesPerByte;
    }
    return L;
  }

  //===--------------------------------------------------------------------===//
  // Rate allocation (max-min fair with per-stream caps)
  //===--------------------------------------------------------------------===//

  void allocateRates(std::vector<Leaf> &Leaves) {
    std::vector<Stream *> Streams;
    for (Leaf &L : Leaves) {
      if (!L.Active)
        continue;
      double CpuSec = std::max(L.CpuRemaining / Hz, 1e-12);
      for (Stream &S : L.Streams) {
        if (S.Bytes <= Eps) {
          S.Rate = 0;
          S.Fixed = true;
          continue;
        }
        S.Fixed = false;
        S.Rate = 0;
        // No point demanding more than what finishes with the CPU work.
        S.Cap = S.Bytes / CpuSec;
        Streams.push_back(&S);
      }
    }
    if (Streams.empty())
      return;

    std::vector<double> Slack = ResCap;
    unsigned Unfixed = static_cast<unsigned>(Streams.size());
    while (Unfixed > 0) {
      // Count unfixed streams per resource.
      std::vector<unsigned> Count(ResCap.size(), 0);
      for (Stream *S : Streams)
        if (!S->Fixed)
          for (unsigned R : S->Resources)
            ++Count[R];
      double Fair = std::numeric_limits<double>::infinity();
      for (unsigned R = 0; R < ResCap.size(); ++R)
        if (Count[R] > 0)
          Fair = std::min(Fair, std::max(0.0, Slack[R]) / Count[R]);

      // Cap-limited streams first: anything whose cap fits under the
      // fair share can take its cap without hurting the others.
      bool FixedAny = false;
      for (Stream *S : Streams) {
        if (S->Fixed || S->Cap > Fair)
          continue;
        S->Rate = S->Cap;
        S->Fixed = true;
        --Unfixed;
        FixedAny = true;
        for (unsigned R : S->Resources)
          Slack[R] -= S->Rate;
      }
      if (FixedAny)
        continue;

      // Otherwise saturate the bottleneck resource at the fair share.
      unsigned Bottleneck = 0;
      double Best = std::numeric_limits<double>::infinity();
      for (unsigned R = 0; R < ResCap.size(); ++R) {
        if (Count[R] == 0)
          continue;
        double F = std::max(0.0, Slack[R]) / Count[R];
        if (F < Best) {
          Best = F;
          Bottleneck = R;
        }
      }
      for (Stream *S : Streams) {
        if (S->Fixed)
          continue;
        bool OnBottleneck = false;
        for (unsigned R : S->Resources)
          OnBottleneck |= (R == Bottleneck);
        if (!OnBottleneck)
          continue;
        S->Rate = Best;
        S->Fixed = true;
        --Unfixed;
        for (unsigned R : S->Resources)
          Slack[R] -= S->Rate;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase execution
  //===--------------------------------------------------------------------===//

  double runPhase(const PhaseSpec &Ph) {
    unsigned T = P.Threads;
    std::vector<Range> Ranges(T);
    int64_t N = Ph.NumElems;
    // Sequential setup (scan combines, fork/join bookkeeping) on vproc 0.
    double Elapsed = Ph.SeqSetupCycles / Hz;
    BusySeconds += Elapsed;
    if (Ph.Sequential || T == 1) {
      Ranges[0] = {0, N};
    } else {
      // Even initial split; stealing rebalances the tail.
      int64_t Per = N / T, Extra = N % T;
      int64_t Cur = 0;
      for (unsigned V = 0; V < T; ++V) {
        int64_t Len = Per + (V < static_cast<unsigned>(Extra) ? 1 : 0);
        Ranges[V] = {Cur, Cur + Len};
        Cur += Len;
      }
    }
    int64_t Grain =
        std::max<int64_t>(Ph.MinGrain,
                          N / std::max<int64_t>(1, int64_t(T) *
                                                       P.LeavesPerCore));

    std::vector<Leaf> Leaves(T);
    for (;;) {
      // Hand work to idle vprocs.
      for (unsigned V = 0; V < T; ++V) {
        if (Leaves[V].Active)
          continue;
        bool Stolen = false;
        if (Ranges[V].size() == 0 && !Ph.Sequential) {
          // Steal half of the largest remaining range.
          unsigned Victim = V;
          int64_t BestSize = 0;
          for (unsigned U = 0; U < T; ++U) {
            if (U != V && Ranges[U].size() > BestSize) {
              BestSize = Ranges[U].size();
              Victim = U;
            }
          }
          if (BestSize > Grain) {
            int64_t Mid = Ranges[Victim].Lo + BestSize / 2;
            Ranges[V] = {Mid, Ranges[Victim].Hi};
            Ranges[Victim].Hi = Mid;
            Stolen = true;
          }
        }
        if (Ranges[V].size() > 0) {
          int64_t Take = std::min(Grain, Ranges[V].size());
          Leaves[V] = makeLeaf(Ph, V, Take, Stolen);
          Ranges[V].Lo += Take;
        }
      }

      // Collect active leaves; finished phase when none.
      bool AnyActive = false;
      for (Leaf &L : Leaves)
        AnyActive |= L.Active;
      if (!AnyActive)
        break;

      allocateRates(Leaves);

      // Earliest completion among active leaves.
      double Dt = std::numeric_limits<double>::infinity();
      for (Leaf &L : Leaves) {
        if (!L.Active)
          continue;
        double TLeaf = L.CpuRemaining / Hz;
        for (const Stream &S : L.Streams)
          if (S.Bytes > Eps)
            TLeaf = std::max(TLeaf,
                             S.Rate > Eps
                                 ? S.Bytes / S.Rate
                                 : std::numeric_limits<double>::infinity());
        Dt = std::min(Dt, TLeaf);
      }
      MANTI_CHECK(std::isfinite(Dt) && Dt >= 0, "simulator stalled");
      Dt = std::max(Dt, 1e-12);

      // Advance the fluid state by Dt.
      for (unsigned V = 0; V < T; ++V) {
        Leaf &L = Leaves[V];
        if (!L.Active)
          continue;
        BusySeconds += Dt;
        L.CpuRemaining = std::max(0.0, L.CpuRemaining - Dt * Hz);
        bool MemDone = true;
        for (Stream &S : L.Streams) {
          double Served = std::min(S.Bytes, S.Rate * Dt);
          S.Bytes -= Served;
          Result.NodeDramBytes[S.DramNode] += Served;
          // Link accounting (per physical link, both directions merged).
          for (unsigned R : S.Resources) {
            if (R >= NumNodes && R < NumNodes + 2 * M.Topo.numLinks())
              Result.LinkBytes[(R - NumNodes) / 2] += Served;
          }
          MemDone &= (S.Bytes <= Eps);
        }
        if (L.CpuRemaining <= Eps && MemDone) {
          L.Active = false;
          L.Streams.clear();
        }
      }
      Elapsed += Dt;
    }
    return Elapsed;
  }

  const SimMachine &M;
  const WorkloadProfile &W;
  SimParams P;
  double Hz;
  unsigned NumNodes = 0;
  std::vector<CoreId> Cores;
  std::vector<NodeId> CoreNode;
  std::vector<double> ResCap;
  double BusySeconds = 0;
  SimResult Result;
};

} // namespace

SimResult manti::sim::simulate(const SimMachine &M, const WorkloadProfile &W,
                               const SimParams &P) {
  MANTI_CHECK(P.Threads >= 1 && P.Threads <= M.Topo.numCores(),
              "thread count must fit the simulated machine");
  Engine E(M, W, P);
  return E.run();
}
