//===- sim/Workload.cpp ----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Benchmark profiles. Constants follow from the benchmark structure:
/// arithmetic per element from the algorithm, bytes per element from the
/// data layout, and -- crucially for a functional language -- allocation
/// per element from how a pure program materializes results (fresh
/// tuples, fold accumulators, rope segments; no in-place update). The
/// allocation term is what the paper's design is about: under the local
/// policy its memory traffic stays on each vproc's node; under the
/// single-node policy it all lands on node zero, which is why *every*
/// benchmark collapses past ~12 cores in Figure 7.
///
//===----------------------------------------------------------------------===//

#include "sim/Workload.h"

#include <cmath>

using namespace manti;
using namespace manti::sim;

WorkloadProfile manti::sim::profileDmm() {
  // C = A * B, 600 x 600 doubles, parallel over rows of C.
  const double N = 600;
  WorkloadProfile P;
  P.Name = "Dense-Matrix-Multiply";
  P.Regions = {
      {"A", N * N * 8, PlacementKind::SharedByVProc0},
      {"B", N * N * 8, PlacementKind::SharedByVProc0},
      {"C", N * N * 8, PlacementKind::PartitionedFirstTouch},
  };
  PhaseSpec Rows;
  Rows.Name = "rows";
  Rows.NumElems = 600;
  Rows.MinGrain = 1;
  // Per output row: N*N multiply-adds.
  Rows.CpuCyclesPerElem = 2.0 * N * N;
  Rows.Reads = {{0, N * 8, false},      // one row of A
                {1, N * N * 8, false}}; // a pass over B (cache-filtered)
  Rows.Writes = {{2, N * 8, false}};    // one row of C
  // Pure-functional inner products: fresh float boxes and fold tuples
  // per element (~3.3 KB/element of nursery churn).
  Rows.AllocBytesPerElem = 2.0e6;
  P.Phases = {Rows};
  P.Repeats = 4;
  return P;
}

WorkloadProfile manti::sim::profileRaytracer() {
  // 512 x 512 pixels, parallel over rows; the scene is tiny and
  // cache-resident, so this is compute plus allocation churn (the ID
  // original allocates vectors for every intersection test).
  WorkloadProfile P;
  P.Name = "Raytracer";
  P.Regions = {
      {"scene", 64.0 * 1024, PlacementKind::SharedByVProc0},
      {"image", 512.0 * 512 * 8, PlacementKind::PartitionedFirstTouch},
  };
  PhaseSpec Rows;
  Rows.Name = "rows";
  Rows.NumElems = 512;
  Rows.MinGrain = 1;
  Rows.CpuCyclesPerElem = 512 * 3000.0; // ~3k cycles per pixel
  Rows.Reads = {{0, 512 * 200.0, true}}; // scene probes per pixel
  Rows.Writes = {{1, 512 * 8.0, false}};
  Rows.AllocBytesPerElem = 512 * 12.0e3; // ray/color vectors per pixel
  P.Phases = {Rows};
  P.Repeats = 2;
  return P;
}

WorkloadProfile manti::sim::profileQuicksort() {
  // NESL quicksort of 10M integers: each level partitions in parallel
  // (flattened filters), with a sequential scan-combine per level; the
  // leaf sorts are fully parallel. The per-level barriers plus the
  // streaming volume are what cap this benchmark.
  const double N = 10e6;
  const int Levels = 9; // down to ~39k-element subproblems
  WorkloadProfile P;
  P.Name = "Quicksort";
  P.Regions = {
      {"ropes", N * 8, PlacementKind::PartitionedFirstTouch},
  };
  for (int L = 0; L < Levels; ++L) {
    PhaseSpec Part;
    Part.Name = "partition-level-" + std::to_string(L);
    Part.NumElems = static_cast<int64_t>(N);
    Part.MinGrain = 8192;
    Part.SeqSetupCycles = 3.0e6; // pivot broadcast + scan combine
    Part.CpuCyclesPerElem = 10.0;
    // Boxed sequence elements: each partition level streams the rope
    // spine plus element boxes both ways.
    Part.Reads = {{0, 10.0, false}};
    Part.Writes = {{0, 10.0, false}};
    Part.AllocBytesPerElem = 14.0; // fresh partition ropes
    P.Phases.push_back(Part);
  }
  PhaseSpec Leaf;
  Leaf.Name = "leaf-sorts";
  Leaf.NumElems = 256;
  Leaf.MinGrain = 1;
  double LeafElems = N / 256.0;
  Leaf.CpuCyclesPerElem = LeafElems * std::log2(LeafElems) * 4.0;
  Leaf.Reads = {{0, LeafElems * 10, false}};
  Leaf.Writes = {{0, LeafElems * 10, false}};
  Leaf.AllocBytesPerElem = LeafElems * 14.0;
  P.Phases.push_back(Leaf);
  return P;
}

WorkloadProfile manti::sim::profileBarnesHut() {
  // 400k bodies. Tree build is the sequential portion the paper blames
  // for the scaling knee; the force phase is parallel but allocates
  // heavily (accumulator tuples along every traversal).
  const double N = 400e3;
  WorkloadProfile P;
  P.Name = "Barnes-Hut";
  P.Regions = {
      {"tree", N * 90.0, PlacementKind::SharedByVProc0},   // ~36 MB
      {"bodies", N * 40.0, PlacementKind::PartitionedFirstTouch},
  };
  PhaseSpec Build;
  Build.Name = "tree-build";
  Build.Sequential = true;
  Build.NumElems = 1;
  Build.CpuCyclesPerElem = N * 110.0;
  Build.Reads = {{1, N * 40.0, true}};
  Build.Writes = {{0, N * 90.0, false}};
  Build.AllocBytesPerElem = N * 90.0; // the tree itself
  P.Phases.push_back(Build);

  PhaseSpec Force;
  Force.Name = "force";
  Force.NumElems = 400000;
  Force.MinGrain = 256;
  Force.CpuCyclesPerElem = 11000.0;
  // Hot tree levels cache; the cold tail streams from the tree's home.
  Force.Reads = {{0, 1400.0, true}, {1, 40.0, false}};
  Force.Writes = {{1, 16.0, false}};
  Force.AllocBytesPerElem = 16.0e3; // accumulator tuples per traversal
  P.Phases.push_back(Force);

  PhaseSpec Advance;
  Advance.Name = "advance";
  Advance.NumElems = 400000;
  Advance.MinGrain = 4096;
  Advance.CpuCyclesPerElem = 24.0;
  Advance.Reads = {{1, 40.0, false}};
  Advance.Writes = {{1, 32.0, false}};
  Advance.AllocBytesPerElem = 48.0;
  P.Phases.push_back(Advance);

  P.Repeats = 4; // representative slice of the 20 iterations
  return P;
}

WorkloadProfile manti::sim::profileSmvm() {
  // y = A*x with 1,091,362 non-zeros over 16,614 rows (~65.7 nnz/row).
  // The CSR arrays are ~17.5 MB of shared data: they stream from their
  // home node(s) on the AMD machine (5 MB usable L3) but stay resident
  // on the Intel machine (21 MB), where remote cache probes for the
  // gathered vector become the limiter instead -- the paper's account of
  // why the Intel machine handles SMVM so much better and why the
  // interleaved policy wins past 24 AMD cores.
  const double Rows = 16614;
  const double Nnz = 1091362;
  const double NnzPerRow = Nnz / Rows;
  WorkloadProfile P;
  P.Name = "SMVM";
  P.Regions = {
      {"matrix", Nnz * 16.0, PlacementKind::SharedByVProc0}, // vals+colidx
      {"x", Rows * 8.0, PlacementKind::SharedByVProc0},
      {"y", Rows * 8.0, PlacementKind::PartitionedFirstTouch},
  };
  PhaseSpec Mult;
  Mult.Name = "multiply";
  Mult.NumElems = 16614;
  Mult.MinGrain = 32;
  Mult.CpuCyclesPerElem = NnzPerRow * 20.0; // boxed CSR traversal
  Mult.Reads = {{0, NnzPerRow * 16.0, true}, {1, NnzPerRow * 8.0, true}};
  Mult.Writes = {{2, 8.0, false}};
  Mult.AllocBytesPerElem = 300.0; // result segments, cursor tuples
  P.Phases = {Mult};
  P.Repeats = 40; // iterative-solver usage: many multiplies
  return P;
}

std::vector<WorkloadProfile> manti::sim::allProfiles() {
  return {profileDmm(), profileRaytracer(), profileQuicksort(),
          profileBarnesHut(), profileSmvm()};
}
