//===- sim/Speedup.h - speedup sweeps for the paper's figures -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the machine model across thread counts and reports speedups the
/// way the paper plots them: Figures 4 and 5 are relative to each
/// configuration's own single-thread run; Figures 6 and 7 (alternative
/// allocation policies) are "plotted relative to the single-processor
/// performance for the AMD machine in Figure 5", i.e. the *local*
/// policy's one-thread time.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SIM_SPEEDUP_H
#define MANTI_SIM_SPEEDUP_H

#include "sim/Engine.h"

#include <cstdio>
#include <string>
#include <vector>

namespace manti::sim {

struct SpeedupSeries {
  std::string Benchmark;
  std::vector<unsigned> Threads;
  std::vector<double> Speedup;
  std::vector<double> Seconds;
};

/// Sweeps all five benchmarks over \p Threads under \p Policy.
/// Speedups are computed against the one-thread run under
/// \p BaselinePolicy (pass the same policy for Figs. 4/5 behaviour).
std::vector<SpeedupSeries> speedupSweep(const SimMachine &M,
                                        AllocPolicyKind Policy,
                                        AllocPolicyKind BaselinePolicy,
                                        const std::vector<unsigned> &Threads);

/// Prints a figure-style table: one row per thread count, one column per
/// benchmark, plus the ideal-speedup column.
void printSpeedupTable(std::FILE *Out, const char *Title,
                       const std::vector<SpeedupSeries> &Series);

/// Thread axes used by the paper's plots.
std::vector<unsigned> intelThreadAxis(); ///< 1,2,4,8,12,16,24,32
std::vector<unsigned> amdThreadAxis();   ///< 1,2,4,8,12,24,36,48

} // namespace manti::sim

#endif // MANTI_SIM_SPEEDUP_H
