//===- sim/Speedup.cpp -----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "sim/Speedup.h"

using namespace manti;
using namespace manti::sim;

std::vector<SpeedupSeries>
manti::sim::speedupSweep(const SimMachine &M, AllocPolicyKind Policy,
                         AllocPolicyKind BaselinePolicy,
                         const std::vector<unsigned> &Threads) {
  std::vector<SpeedupSeries> Out;
  for (const WorkloadProfile &W : allProfiles()) {
    SpeedupSeries S;
    S.Benchmark = W.Name;
    S.Threads = Threads;

    SimParams Base;
    Base.Policy = BaselinePolicy;
    Base.Threads = 1;
    double T1 = simulate(M, W, Base).Seconds;

    for (unsigned T : Threads) {
      SimParams P;
      P.Policy = Policy;
      P.Threads = T;
      double Secs = simulate(M, W, P).Seconds;
      S.Seconds.push_back(Secs);
      S.Speedup.push_back(T1 / Secs);
    }
    Out.push_back(std::move(S));
  }
  return Out;
}

void manti::sim::printSpeedupTable(std::FILE *Out, const char *Title,
                                   const std::vector<SpeedupSeries> &Series) {
  std::fprintf(Out, "%s\n", Title);
  std::fprintf(Out, "%-8s %-8s", "Threads", "Ideal");
  for (const SpeedupSeries &S : Series)
    std::fprintf(Out, " %-22s", S.Benchmark.c_str());
  std::fprintf(Out, "\n");
  if (Series.empty())
    return;
  for (std::size_t I = 0; I < Series[0].Threads.size(); ++I) {
    std::fprintf(Out, "%-8u %-8u", Series[0].Threads[I],
                 Series[0].Threads[I]);
    for (const SpeedupSeries &S : Series)
      std::fprintf(Out, " %-22.2f", S.Speedup[I]);
    std::fprintf(Out, "\n");
  }
}

std::vector<unsigned> manti::sim::intelThreadAxis() {
  return {1, 2, 4, 8, 12, 16, 24, 32};
}

std::vector<unsigned> manti::sim::amdThreadAxis() {
  return {1, 2, 4, 8, 12, 24, 36, 48};
}
