//===- sim/Workload.h - workload profiles for the machine model -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A workload profile describes one of the paper's benchmarks as a
/// sequence of phases over named data regions. A parallel phase is a
/// range of elements processed fork-join style with work stealing; each
/// element costs CPU cycles, streams bytes from data regions, and
/// allocates in the executing vproc's local heap (which charges GC
/// copying work and local-heap memory traffic whose placement depends on
/// the page-allocation policy -- the Section 4.3 experiment).
///
/// Region placement kinds:
///  * SharedByVProc0 -- allocated once by the main vproc (SMVM's matrix
///    and vector, the Barnes-Hut tree, DMM's inputs). Under the *local*
///    policy all its pages land on vproc 0's node, which is exactly why
///    shared-data benchmarks saturate one node's links at scale; under
///    *interleaved* they spread; under *single-node* they sit on node 0.
///  * PartitionedFirstTouch -- touched first by whichever vproc computes
///    that part (body arrays, output image, quicksort's ropes). Under
///    the local policy these pages distribute with the computation.
///
/// The profiles' constants (cycles and bytes per element) are
/// calibrated, not measured from the paper's testbed; EXPERIMENTS.md
/// records the calibration and the resulting shapes.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SIM_WORKLOAD_H
#define MANTI_SIM_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace manti::sim {

enum class PlacementKind {
  SharedByVProc0,
  PartitionedFirstTouch,
};

struct RegionSpec {
  std::string Name;
  double Bytes;
  PlacementKind Placement;
};

/// One stream of reads from a region during a phase.
struct AccessSpec {
  unsigned Region;        ///< index into WorkloadProfile::Regions
  double BytesPerElem;    ///< demanded bytes before cache filtering
  /// Gather (pointer-chasing / random) access: cache-resident shared
  /// data still pays remote cache-probe stalls when read from another
  /// node (SMVM's vector, the Intel-resident CSR arrays).
  bool Gather = false;
};

struct PhaseSpec {
  std::string Name;
  int64_t NumElems = 1;
  /// Minimum elements per leaf; the engine also caps leaf counts.
  int64_t MinGrain = 1;
  /// Fixed sequential cycles on vproc 0 before the parallel part (scan
  /// combines, fork-tree setup, join teardown).
  double SeqSetupCycles = 0;
  double CpuCyclesPerElem = 0;
  std::vector<AccessSpec> Reads;
  /// Output bytes written per element (to the region named, charged as
  /// core-to-home traffic).
  std::vector<AccessSpec> Writes;
  /// Heap allocation per element (drives GC cpu + local-heap traffic).
  double AllocBytesPerElem = 0;
  /// True when the phase runs on a single core (the paper's sequential
  /// portions, e.g. Barnes-Hut tree building).
  bool Sequential = false;
};

struct WorkloadProfile {
  std::string Name;
  std::vector<RegionSpec> Regions;
  std::vector<PhaseSpec> Phases;
  unsigned Repeats = 1; ///< whole phase list repeats (e.g. BH iterations)
};

/// The five benchmarks of Section 4.1 at the paper's input sizes.
WorkloadProfile profileDmm();        ///< 600 x 600 dense multiply
WorkloadProfile profileRaytracer();  ///< 512 x 512 image
WorkloadProfile profileQuicksort();  ///< 10,000,000 integers
WorkloadProfile profileBarnesHut();  ///< 400,000 bodies, 20 iterations
WorkloadProfile profileSmvm();       ///< 1,091,362 nnz / 16,614 vector

/// All five, in the order the paper's figures list them.
std::vector<WorkloadProfile> allProfiles();

} // namespace manti::sim

#endif // MANTI_SIM_WORKLOAD_H
