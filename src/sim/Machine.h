//===- sim/Machine.h - simulated machine parameters -----------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model used to regenerate the paper's speedup figures.
/// This reproduction runs on a single-core container, so the 48-core AMD
/// and 32-core Intel servers of Appendix A are modeled: a SimMachine is
/// a Topology (nodes, cores, link graph with Table 1 bandwidths) plus
/// core frequency and the per-node last-level cache capacity that
/// decides whether a shared data structure streams from DRAM or stays
/// cache-resident -- the distinction behind DMM/raytracer scaling
/// perfectly while SMVM and Barnes-Hut saturate their home node's
/// memory links.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SIM_MACHINE_H
#define MANTI_SIM_MACHINE_H

#include "numa/Topology.h"

namespace manti::sim {

struct SimMachine {
  Topology Topo;
  double CoreGHz;          ///< cycles per nanosecond
  double L3UsableBytes;    ///< usable per-node LLC capacity
  double PerCoreGBps;      ///< per-core demand ceiling (load/store units)

  /// Appendix A.1: 2.1 GHz Opteron 6172, 6 MB L3 per die with 1 MB
  /// reserved for cross-node probes.
  static SimMachine amd48() {
    return {Topology::amdMagnyCours48(), 2.1, 5.0 * 1024 * 1024, 6.0};
  }

  /// Appendix A.2: 2.266 GHz Xeon X7560, 24 MB L3 with 3 MB reserved.
  static SimMachine intel32() {
    return {Topology::intelXeon32(), 2.266, 21.0 * 1024 * 1024, 8.0};
  }
};

} // namespace manti::sim

#endif // MANTI_SIM_MACHINE_H
