//===- sim/Engine.h - fluid bandwidth-contention simulator ----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fluid model of a NUMA machine executing a workload
/// profile:
///
///  * The requested number of vprocs is placed on cores sparsely across
///    the nodes (the runtime's real assignment policy).
///  * Each parallel phase is a range split across the vprocs; finished
///    vprocs steal half of the largest remaining range (Cilk-style),
///    paying a steal penalty.
///  * A running leaf has residual CPU cycles and residual memory-stream
///    bytes between its core's node and the data's home node(s). Stream
///    rates come from max-min fair sharing of three resource kinds: the
///    per-node memory controllers, the directed inter-node links (HT3 /
///    QPI capacities from Table 1), and a per-core demand ceiling.
///    Streams are additionally capped so a leaf never demands more
///    bandwidth than finishing alongside its CPU work requires.
///  * Completion of a leaf is an event; rates are recomputed between
///    events, making the model exact for piecewise-constant demands.
///  * Allocation charges GC work: copying cycles on the core plus
///    local-heap traffic whose home follows the page-allocation policy.
///    This term is why the single-node policy collapses even perfectly
///    partitioned benchmarks past ~12 cores (every nursery page lives on
///    node 0) and why interleaving costs a little everywhere (Fig. 6/7).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SIM_ENGINE_H
#define MANTI_SIM_ENGINE_H

#include "numa/AllocPolicy.h"
#include "sim/Machine.h"
#include "sim/Workload.h"

#include <vector>

namespace manti::sim {

struct SimParams {
  AllocPolicyKind Policy = AllocPolicyKind::Local;
  unsigned Threads = 1;

  // Model constants (see EXPERIMENTS.md for calibration notes).
  double GcCpuPerAllocByte = 0.2;  ///< copying-collector cycles per byte
  double GcMemPerAllocByte = 0.3;  ///< local-heap DRAM bytes per byte
                                   ///< (nursery mostly stays in L3)
  double SpawnCycles = 300;
  double StealCycles = 4000;
  double ColdMissFactor = 0.03;    ///< DRAM share for cache-resident data
  /// Remote cache-probe stall for gather reads of resident shared data.
  double GatherStallCyclesPerByte = 0.25;
  /// Posted-write stall for remote-homed writes and allocation traffic.
  double WriteStallCyclesPerByte = 0.05;
  int64_t LeavesPerCore = 16;      ///< target leaf granularity
};

struct SimResult {
  double Seconds = 0;
  double CpuBusyFraction = 0;
  std::vector<double> NodeDramBytes; ///< DRAM bytes served per node
  std::vector<double> LinkBytes;     ///< bytes crossing each link (both dirs)
};

/// Simulates \p W on \p M under \p P. Deterministic.
SimResult simulate(const SimMachine &M, const WorkloadProfile &W,
                   const SimParams &P);

} // namespace manti::sim

#endif // MANTI_SIM_ENGINE_H
