//===- workloads/Smvm.h - sparse matrix / dense vector product ------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's SMVM benchmark: "a sparse-matrix by dense-vector
/// multiplication. The matrix contains 1,091,362 elements and the vector
/// 16,614." The matrix (CSR) and the vector are immutable shared inputs,
/// so they live in the *global* heap as raw objects; every vproc reads
/// them during the row loop -- exactly the small-shared-data access
/// pattern that makes this benchmark the least scalable one on the AMD
/// machine (Section 4.2) and the one benchmark where interleaved
/// allocation wins at high thread counts (Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_WORKLOADS_SMVM_H
#define MANTI_WORKLOADS_SMVM_H

#include "runtime/Runtime.h"

#include <cstdint>
#include <vector>

namespace manti::workloads {

struct SmvmParams {
  int64_t NumRows = 16614;   ///< paper's vector length
  int64_t NumNonZeros = 1091362; ///< paper's element count
  uint64_t Seed = 13;
};

struct SmvmResult {
  double ResultNorm1 = 0.0; ///< sum |y_i| for verification
  double Seconds = 0.0;
  int64_t Rows = 0;
};

/// The CSR matrix and the dense vector, resident in the global heap.
/// Values are rooted by the holder.
struct SmvmProblem {
  Value RowPtr; ///< global raw, (NumRows+1) int64
  Value ColIdx; ///< global raw, Nnz int64
  Value Vals;   ///< global raw, Nnz double
  Value X;      ///< global raw, NumRows double
  int64_t NumRows = 0;
  int64_t Nnz = 0;
};

/// Builds a random problem directly in the global heap. The caller must
/// root the four Values (e.g. RootScope::rootExternal on each member).
SmvmProblem makeProblem(VProcHeap &H, const SmvmParams &P);

/// y = A * x in parallel over rows; writes into \p Y (size NumRows).
void smvm(Runtime &RT, VProc &VP, const SmvmProblem &Prob, double *Y);

/// Serial reference.
void smvmSerial(const SmvmProblem &Prob, double *Y);

/// Full benchmark: build, multiply, verify against serial, report.
SmvmResult runSmvm(Runtime &RT, VProc &VP, const SmvmParams &P);

} // namespace manti::workloads

#endif // MANTI_WORKLOADS_SMVM_H
