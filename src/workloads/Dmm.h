//===- workloads/Dmm.h - dense matrix multiplication ----------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's DMM benchmark: "a dense-matrix by dense-matrix
/// multiplication in which each matrix is 600 x 600". The inputs are
/// shared immutable global-heap arrays; the output rows are computed in
/// parallel. High arithmetic intensity and perfect partitioning make
/// this the paper's best-scaling benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_WORKLOADS_DMM_H
#define MANTI_WORKLOADS_DMM_H

#include "runtime/Runtime.h"

#include <cstdint>
#include <vector>

namespace manti::workloads {

struct DmmParams {
  int64_t N = 600; ///< square matrix dimension
  uint64_t Seed = 17;
};

struct DmmResult {
  double FrobeniusNorm = 0.0;
  double Seconds = 0.0;
  int64_t N = 0;
};

/// C = A * B over row blocks; A and B are global raw double arrays
/// (row-major), C is caller storage.
void dmm(Runtime &RT, VProc &VP, Value A, Value B, int64_t N, double *C);

/// Serial reference.
void dmmSerial(const double *A, const double *B, int64_t N, double *C);

/// Full benchmark with verification against the serial reference.
DmmResult runDmm(Runtime &RT, VProc &VP, const DmmParams &P);

} // namespace manti::workloads

#endif // MANTI_WORKLOADS_DMM_H
