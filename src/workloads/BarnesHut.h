//===- workloads/BarnesHut.h - hierarchical N-body solver -----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Barnes-Hut benchmark [BH86]: "Each iteration has two
/// phases. In the first phase, a quadtree is constructed from a sequence
/// of mass points. The second phase then uses this tree to accelerate
/// the computation of the gravitational force on the bodies ... 20
/// iterations over 400,000 particles generated in a random Plummer
/// distribution."
///
/// This reproduction works in 2D (quadtree, like the Haskell/ndp version
/// the paper ports). The tree is built on one vproc -- the sequential
/// portion the paper blames for the benchmark's scaling knee -- then the
/// root is promoted so every vproc can traverse it during the fully
/// parallel force phase.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_WORKLOADS_BARNESHUT_H
#define MANTI_WORKLOADS_BARNESHUT_H

#include "gc/Handles.h"
#include "runtime/Runtime.h"

#include <cstdint>
#include <vector>

namespace manti::workloads {

/// Quadtree interior node (typed layout; leaves are raw objects of
/// three doubles x, y, mass). Registered through ObjectType<BhNode>.
struct BhNode {
  Value NW, NE, SW, SE; ///< children (pointer or nil), scanned
  double Mass;          ///< total mass
  double CmX, CmY;      ///< center of mass
  int64_t Count;        ///< body count
  double Half;          ///< cell half-width
  static constexpr const char *GcName = "bh-quadtree-node";
  static constexpr auto GcPtrFields =
      ptrFields(&BhNode::NW, &BhNode::NE, &BhNode::SW, &BhNode::SE);
};

/// The four child members in quadrant order ((x>=cx) | (y>=cy)<<1).
inline constexpr Value BhNode::*BhChildren[4] = {&BhNode::NW, &BhNode::NE,
                                                 &BhNode::SW, &BhNode::SE};

struct BarnesHutParams {
  int64_t NumBodies = 10000;
  unsigned Iterations = 1;
  uint64_t Seed = 7;
  double Theta = 0.5; ///< opening angle
  double Dt = 0.025;  ///< integration step
};

struct BarnesHutResult {
  double CenterOfMassX = 0.0;
  double CenterOfMassY = 0.0;
  double KineticEnergy = 0.0;
  double Seconds = 0.0;
};

/// Plain-old-data body state (C++ side; the tree lives in the GC heap).
struct Bodies {
  std::vector<double> X, Y, Mass, Vx, Vy;
  int64_t size() const { return static_cast<int64_t>(X.size()); }
};

/// Samples \p N bodies from a Plummer distribution.
Bodies plummerDistribution(int64_t N, uint64_t Seed);

/// Runs the full benchmark on the runtime.
BarnesHutResult runBarnesHut(Runtime &RT, VProc &VP,
                             const BarnesHutParams &P);

/// Registers the quadtree node descriptor. Runtime users need not call
/// this (runBarnesHut does, once per world).
void registerBarnesHutDescriptors(GCWorld &World);

/// Builds the quadtree for \p B in \p H's heap; \returns the root.
Value buildQuadtree(VProcHeap &H, const Bodies &B);

/// Computes the approximate force on body \p I via tree traversal.
void treeForce(Value Root, const Bodies &B, int64_t I, double Theta,
               double *AxOut, double *AyOut);

/// Exact O(n^2) force for verification.
void directForce(const Bodies &B, int64_t I, double *AxOut, double *AyOut);

} // namespace manti::workloads

#endif // MANTI_WORKLOADS_BARNESHUT_H
