//===- workloads/BarnesHut.cpp ---------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/BarnesHut.h"

#include "runtime/Parallel.h"
#include "support/Assert.h"
#include "support/XorShift.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

using namespace manti;
using namespace manti::workloads;

// Interior nodes use the typed BhNode layout (BarnesHut.h); a leaf is a
// raw object of 3 doubles: x, y, mass.
namespace {

using Node = ObjectType<BhNode>;

constexpr double Softening = 1e-9;

uint64_t packD(double D) {
  uint64_t Bits;
  __builtin_memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}
double unpackD(uint64_t Bits) {
  double D;
  __builtin_memcpy(&D, &Bits, sizeof(D));
  return D;
}

Value makeLeaf(VProcHeap &H, double X, double Y, double M) {
  uint64_t Data[3] = {packD(X), packD(Y), packD(M)};
  return H.allocRaw(Data, sizeof(Data));
}

struct BuildScratch {
  const Bodies *B;
  std::vector<int64_t> Quadrant[4]; // reused per level? no: per call
};

/// Recursively builds the tree over the body indices in \p Idx, covering
/// the square cell centered at (Cx, Cy) with half-width Half.
Value buildRec(VProcHeap &H, const Bodies &B, std::vector<int64_t> &Idx,
               double Cx, double Cy, double Half, unsigned Depth) {
  if (Idx.empty())
    return Value::nil();
  if (Idx.size() == 1) {
    int64_t I = Idx[0];
    return makeLeaf(H, B.X[static_cast<std::size_t>(I)],
                    B.Y[static_cast<std::size_t>(I)],
                    B.Mass[static_cast<std::size_t>(I)]);
  }
  if (Depth > 64) {
    // Pathologically coincident points: aggregate into one pseudo-body.
    double M = 0, Mx = 0, My = 0;
    for (int64_t I : Idx) {
      auto S = static_cast<std::size_t>(I);
      M += B.Mass[S];
      Mx += B.Mass[S] * B.X[S];
      My += B.Mass[S] * B.Y[S];
    }
    return makeLeaf(H, Mx / M, My / M, M);
  }

  std::vector<int64_t> Quads[4];
  for (int64_t I : Idx) {
    auto S = static_cast<std::size_t>(I);
    unsigned Q = (B.X[S] >= Cx ? 1u : 0u) | (B.Y[S] >= Cy ? 2u : 0u);
    Quads[Q].push_back(I);
  }
  Idx.clear();
  Idx.shrink_to_fit();

  RootScope S(H);
  Ref<> Children[4] = {S.root(Value::nil()), S.root(Value::nil()),
                       S.root(Value::nil()), S.root(Value::nil())};
  double H2 = Half / 2;
  const double QCx[4] = {Cx - H2, Cx + H2, Cx - H2, Cx + H2};
  const double QCy[4] = {Cy - H2, Cy - H2, Cy + H2, Cy + H2};
  for (unsigned Q = 0; Q < 4; ++Q)
    Children[Q] = buildRec(H, B, Quads[Q], QCx[Q], QCy[Q], H2, Depth + 1);

  // Aggregate mass and center of mass from the children.
  double M = 0, Mx = 0, My = 0;
  int64_t Count = 0;
  for (const Ref<> &C : Children) {
    if (C.isNil())
      continue;
    if (objectId(C) == IdRaw) {
      const uint64_t *L = static_cast<const uint64_t *>(rawData(C));
      double Lm = unpackD(L[2]);
      M += Lm;
      Mx += Lm * unpackD(L[0]);
      My += Lm * unpackD(L[1]);
      ++Count;
    } else {
      double Nm = Node::get<&BhNode::Mass>(C);
      M += Nm;
      Mx += Nm * Node::get<&BhNode::CmX>(C);
      My += Nm * Node::get<&BhNode::CmY>(C);
      Count += Node::get<&BhNode::Count>(C);
    }
  }

  Ref<BhNode> Cell = alloc<BhNode>(
      S, BhNode{Children[0], Children[1], Children[2], Children[3], M,
                M > 0 ? Mx / M : Cx, M > 0 ? My / M : Cy, Count, Half});
  return Cell.value();
}

} // namespace

void manti::workloads::registerBarnesHutDescriptors(GCWorld &World) {
  MANTI_CHECK(World.BhNodeId == 0, "Barnes-Hut descriptors already registered");
  World.BhNodeId = Node::registerWith(World);
}

Bodies manti::workloads::plummerDistribution(int64_t N, uint64_t Seed) {
  Bodies B;
  B.X.resize(static_cast<std::size_t>(N));
  B.Y.resize(static_cast<std::size_t>(N));
  B.Mass.resize(static_cast<std::size_t>(N));
  B.Vx.assign(static_cast<std::size_t>(N), 0.0);
  B.Vy.assign(static_cast<std::size_t>(N), 0.0);
  XorShift64 Rng(Seed);
  for (int64_t I = 0; I < N; ++I) {
    auto S = static_cast<std::size_t>(I);
    // Plummer radial profile: r = (u^{-2/3} - 1)^{-1/2}.
    double U = std::max(1e-12, Rng.nextDouble());
    double R = 1.0 / std::sqrt(std::pow(U, -2.0 / 3.0) - 1.0);
    R = std::min(R, 10.0); // clip the rare far tail
    double Phi = 2.0 * M_PI * Rng.nextDouble();
    B.X[S] = R * std::cos(Phi);
    B.Y[S] = R * std::sin(Phi);
    B.Mass[S] = 1.0 / static_cast<double>(N);
  }
  return B;
}

Value manti::workloads::buildQuadtree(VProcHeap &H, const Bodies &B) {
  double MaxAbs = 1.0;
  for (int64_t I = 0; I < B.size(); ++I) {
    auto S = static_cast<std::size_t>(I);
    MaxAbs = std::max({MaxAbs, std::fabs(B.X[S]), std::fabs(B.Y[S])});
  }
  std::vector<int64_t> Idx(static_cast<std::size_t>(B.size()));
  for (int64_t I = 0; I < B.size(); ++I)
    Idx[static_cast<std::size_t>(I)] = I;
  return buildRec(H, B, Idx, 0.0, 0.0, MaxAbs * 1.001, 0);
}

void manti::workloads::treeForce(Value Root, const Bodies &B, int64_t I,
                                 double Theta, double *AxOut, double *AyOut) {
  auto S = static_cast<std::size_t>(I);
  double Px = B.X[S], Py = B.Y[S];
  double Ax = 0, Ay = 0;

  Value Stack[128];
  unsigned Top = 0;
  if (!Root.isNil())
    Stack[Top++] = Root;
  auto Accumulate = [&](double Qx, double Qy, double Qm) {
    double Dx = Qx - Px, Dy = Qy - Py;
    double D2 = Dx * Dx + Dy * Dy + Softening;
    if (D2 < 1e-18)
      return; // self
    double Inv = 1.0 / std::sqrt(D2);
    double F = Qm * Inv * Inv * Inv;
    Ax += F * Dx;
    Ay += F * Dy;
  };

  while (Top > 0) {
    Value Cur = Stack[--Top];
    if (objectId(Cur) == IdRaw) {
      const uint64_t *L = static_cast<const uint64_t *>(rawData(Cur));
      Accumulate(unpackD(L[0]), unpackD(L[1]), unpackD(L[2]));
      continue;
    }
    double Cmx = Node::get<&BhNode::CmX>(Cur);
    double Cmy = Node::get<&BhNode::CmY>(Cur);
    double Dx = Cmx - Px, Dy = Cmy - Py;
    double Dist = std::sqrt(Dx * Dx + Dy * Dy + Softening);
    double Width = 2.0 * Node::get<&BhNode::Half>(Cur);
    if (Width / Dist < Theta) {
      Accumulate(Cmx, Cmy, Node::get<&BhNode::Mass>(Cur));
      continue;
    }
    for (unsigned Q = 0; Q < 4; ++Q) {
      Value Kid = Node::get(Cur, BhChildren[Q]);
      if (Kid.isPtr()) {
        MANTI_CHECK(Top < 128, "quadtree deeper than traversal stack");
        Stack[Top++] = Kid;
      }
    }
  }
  *AxOut = Ax;
  *AyOut = Ay;
}

void manti::workloads::directForce(const Bodies &B, int64_t I, double *AxOut,
                                   double *AyOut) {
  auto S = static_cast<std::size_t>(I);
  double Px = B.X[S], Py = B.Y[S];
  double Ax = 0, Ay = 0;
  for (int64_t J = 0; J < B.size(); ++J) {
    if (J == I)
      continue;
    auto T = static_cast<std::size_t>(J);
    double Dx = B.X[T] - Px, Dy = B.Y[T] - Py;
    double D2 = Dx * Dx + Dy * Dy + Softening;
    double Inv = 1.0 / std::sqrt(D2);
    double F = B.Mass[T] * Inv * Inv * Inv;
    Ax += F * Dx;
    Ay += F * Dy;
  }
  *AxOut = Ax;
  *AyOut = Ay;
}

namespace {

struct ForceCtx {
  const Value *RootSlot; ///< rooted by vproc 0's frame; re-read per grain
  Bodies *B;
  double Theta;
  double Dt;
  /// Home node of the promoted tree's backing chunk: force tasks are
  /// tagged with it so traversals chase the tree instead of dragging it
  /// across the interconnect.
  NodeId TreeHome = Task::NoAffinity;
};

NodeId forceAffinity(int64_t, int64_t, void *CtxP) {
  return static_cast<ForceCtx *>(CtxP)->TreeHome;
}

void forceRange(Runtime &, VProc &, int64_t Lo, int64_t Hi, void *CtxP) {
  auto *Ctx = static_cast<ForceCtx *>(CtxP);
  // Re-read the root through the rooted slot: a collection at any safe
  // point between grains may have moved the tree.
  Value Root = *Ctx->RootSlot;
  Bodies &B = *Ctx->B;
  for (int64_t I = Lo; I < Hi; ++I) {
    double Ax, Ay;
    treeForce(Root, B, I, Ctx->Theta, &Ax, &Ay);
    auto S = static_cast<std::size_t>(I);
    B.Vx[S] += Ax * Ctx->Dt;
    B.Vy[S] += Ay * Ctx->Dt;
  }
}

void advanceRange(Runtime &, VProc &, int64_t Lo, int64_t Hi, void *CtxP) {
  auto *Ctx = static_cast<ForceCtx *>(CtxP);
  Bodies &B = *Ctx->B;
  for (int64_t I = Lo; I < Hi; ++I) {
    auto S = static_cast<std::size_t>(I);
    B.X[S] += B.Vx[S] * Ctx->Dt;
    B.Y[S] += B.Vy[S] * Ctx->Dt;
  }
}

} // namespace

BarnesHutResult manti::workloads::runBarnesHut(Runtime &RT, VProc &VP,
                                               const BarnesHutParams &P) {
  if (RT.world().BhNodeId == 0)
    registerBarnesHutDescriptors(RT.world());

  Bodies B = plummerDistribution(P.NumBodies, P.Seed);
  auto Start = std::chrono::steady_clock::now();

  RootScope S(VP.heap());
  Ref<> Root = S.root(Value::nil());
  for (unsigned Iter = 0; Iter < P.Iterations; ++Iter) {
    // Phase 1 (sequential, as in the paper's analysis): build the tree,
    // then promote it so every vproc may traverse it.
    Root = buildQuadtree(VP.heap(), B);
    promoteInPlace(S, Root);

    // Phase 2 (parallel): forces, then positions. Force tasks carry the
    // tree's home node as their affinity hint (computed once per
    // iteration -- the root's chunk stands in for the tree).
    ForceCtx Ctx{Root.slotAddr(), &B, P.Theta, P.Dt,
                 RT.world().homeNodeOf(Root.value(), Task::NoAffinity)};
    int64_t Grain = std::max<int64_t>(64, P.NumBodies / 256);
    parallelFor(RT, VP, 0, P.NumBodies, Grain, forceRange, &Ctx,
                forceAffinity);
    parallelFor(RT, VP, 0, P.NumBodies, 1024, advanceRange, &Ctx);
  }

  auto End = std::chrono::steady_clock::now();
  BarnesHutResult Res;
  Res.Seconds = std::chrono::duration<double>(End - Start).count();
  double M = 0;
  for (int64_t I = 0; I < B.size(); ++I) {
    auto S = static_cast<std::size_t>(I);
    Res.CenterOfMassX += B.Mass[S] * B.X[S];
    Res.CenterOfMassY += B.Mass[S] * B.Y[S];
    Res.KineticEnergy +=
        0.5 * B.Mass[S] * (B.Vx[S] * B.Vx[S] + B.Vy[S] * B.Vy[S]);
    M += B.Mass[S];
  }
  Res.CenterOfMassX /= M;
  Res.CenterOfMassY /= M;
  return Res;
}
