//===- workloads/Quicksort.h - NESL-style parallel quicksort --------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Quicksort benchmark: "sorts a sequence of 10,000,000
/// integers in parallel. This code is based on the NESL version of the
/// algorithm" -- three-way partition into (less, equal, greater)
/// sequences, recursive parallel sorts of the outer two, then
/// concatenation. Sequences are ropes; the recursive sub-sort for the
/// greater partition is spawned as a task whose environment *is* the
/// rope, so a steal promotes the partition to the global heap -- the
/// lazy-promotion path the runtime is designed around.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_WORKLOADS_QUICKSORT_H
#define MANTI_WORKLOADS_QUICKSORT_H

#include "runtime/Runtime.h"

#include <cstdint>

namespace manti::workloads {

struct QuicksortParams {
  int64_t NumElements = 100000;
  uint64_t Seed = 42;
  /// Below this size, sort sequentially.
  int64_t Cutoff = 4096;
};

struct QuicksortResult {
  bool Sorted = false;          ///< output verified non-decreasing
  uint64_t Checksum = 0;        ///< order-independent sum (must be preserved)
  int64_t Length = 0;
  double Seconds = 0.0;
};

/// Generates the input rope, sorts it in parallel, verifies, and reports.
/// Runs on \p VP (call from inside Runtime::run).
QuicksortResult runQuicksort(Runtime &RT, VProc &VP,
                             const QuicksortParams &P);

/// Sorts rope \p R of tagged int64 scalars; \returns the sorted rope.
Value quicksort(Runtime &RT, VProc &VP, Value R, int64_t Cutoff);

} // namespace manti::workloads

#endif // MANTI_WORKLOADS_QUICKSORT_H
