//===- workloads/Quicksort.cpp ---------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Quicksort.h"

#include "gc/Handles.h"
#include "runtime/Rope.h"
#include "support/XorShift.h"

#include <algorithm>
#include <chrono>
#include <vector>

using namespace manti;
using namespace manti::workloads;

namespace {

/// Shared state for one spawned sub-sort.
struct SortSplit {
  Runtime *RT;
  int64_t Cutoff;
  ResultCell *Cell;
  JoinCounter Join{1};
};

void sortTask(Runtime &RT, VProc &VP, Task T) {
  auto &Split = *static_cast<SortSplit *>(T.Ctx);
  RootScope S(VP.heap());
  Ref<> Env = S.root(T.Env);
  Value Sorted = quicksort(RT, VP, Env, Split.Cutoff);
  Split.Cell->fill(VP, Sorted);
  Split.Join.sub();
}

/// Sequential base case: materialize, std::sort, rebuild.
Value sortLeaf(VProc &VP, Value R) {
  int64_t N = rope::length(R);
  std::vector<uint64_t> Buf(static_cast<std::size_t>(N));
  rope::toArray(R, Buf.data());
  std::sort(Buf.begin(), Buf.end(), [](uint64_t A, uint64_t B) {
    return static_cast<int64_t>(A) < static_cast<int64_t>(B);
  });
  return rope::fromArray(VP.heap(), Buf.data(), N);
}

} // namespace

Value manti::workloads::quicksort(Runtime &RT, VProc &VP, Value R,
                                  int64_t Cutoff) {
  int64_t N = rope::length(R);
  if (N <= Cutoff)
    return sortLeaf(VP, R);

  RootScope S(VP.heap());
  S.rootExternal(R); // R is this frame's parameter; keep it current

  // NESL-style three-way partition on a median-of-three pivot.
  std::vector<uint64_t> Buf(static_cast<std::size_t>(N));
  rope::toArray(R, Buf.data());
  auto AsInt = [](uint64_t W) { return static_cast<int64_t>(W); };
  int64_t A = AsInt(Buf.front());
  int64_t B = AsInt(Buf[static_cast<std::size_t>(N / 2)]);
  int64_t C = AsInt(Buf.back());
  int64_t Pivot = std::max(std::min(A, B), std::min(std::max(A, B), C));

  std::vector<uint64_t> Less, Equal, Greater;
  Less.reserve(Buf.size() / 2);
  Greater.reserve(Buf.size() / 2);
  for (uint64_t W : Buf) {
    int64_t V = AsInt(W);
    if (V < Pivot)
      Less.push_back(W);
    else if (V > Pivot)
      Greater.push_back(W);
    else
      Equal.push_back(W);
  }

  Ref<> LessRope =
      rope::fromArray(S, Less.data(), static_cast<int64_t>(Less.size()));
  Ref<> EqualRope =
      rope::fromArray(S, Equal.data(), static_cast<int64_t>(Equal.size()));
  Ref<> GreaterRope =
      rope::fromArray(S, Greater.data(), static_cast<int64_t>(Greater.size()));

  // Fork: sort the greater partition as a stealable task whose
  // environment is the rope itself; sort the lesser partition here.
  ResultCell Cell(VP);
  SortSplit Split{&RT, Cutoff, &Cell};
  VP.spawn({sortTask, &Split, GreaterRope, 0, 0});

  Ref<> SortedLess = S.root(quicksort(RT, VP, LessRope, Cutoff));
  VP.joinWait(Split.Join);
  Ref<> SortedGreater = S.root(Cell.take());

  Ref<> Front = rope::concat(S, SortedLess, EqualRope);
  return rope::concat(VP.heap(), Front, SortedGreater);
}

QuicksortResult manti::workloads::runQuicksort(Runtime &RT, VProc &VP,
                                               const QuicksortParams &P) {
  RootScope S(VP.heap());
  XorShift64 Rng(P.Seed);
  uint64_t CheckIn = 0;
  std::vector<uint64_t> Input(static_cast<std::size_t>(P.NumElements));
  for (auto &W : Input) {
    W = Rng.next() >> 8; // keep values positive as int64
    CheckIn += W;
  }
  Ref<> R = rope::fromArray(S, Input.data(),
                            static_cast<int64_t>(Input.size()));

  auto Start = std::chrono::steady_clock::now();
  Ref<> Sorted = S.root(quicksort(RT, VP, R, P.Cutoff));
  auto End = std::chrono::steady_clock::now();

  QuicksortResult Res;
  Res.Length = rope::length(Sorted);
  Res.Seconds = std::chrono::duration<double>(End - Start).count();
  std::vector<uint64_t> Out(static_cast<std::size_t>(Res.Length));
  rope::toArray(Sorted, Out.data());
  Res.Sorted = std::is_sorted(Out.begin(), Out.end(),
                              [](uint64_t A, uint64_t B) {
                                return static_cast<int64_t>(A) <
                                       static_cast<int64_t>(B);
                              });
  for (uint64_t W : Out)
    Res.Checksum += W;
  Res.Sorted = Res.Sorted && Res.Checksum == CheckIn &&
               Res.Length == P.NumElements;
  return Res;
}
