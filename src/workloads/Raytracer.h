//===- workloads/Raytracer.h - simple parallel ray tracer -----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Raytracer benchmark: "renders a 512 x 512 image in
/// parallel as a two-dimensional sequence ... a simple ray tracer that
/// does not use any acceleration data structures" (originally in ID
/// [Nik91]). Spheres with Lambertian shading, one point light, hard
/// shadows, and mirror reflection up to a small depth. The image is
/// produced as a rope of packed RGB words built by a parallel reduction
/// over rows, so rendering allocates in the nurseries and the row
/// results flow through the promotion machinery when stolen.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_WORKLOADS_RAYTRACER_H
#define MANTI_WORKLOADS_RAYTRACER_H

#include "runtime/Runtime.h"

#include <cstdint>
#include <vector>

namespace manti::workloads {

struct Sphere {
  double Cx, Cy, Cz;
  double Radius;
  double R, G, B;      ///< surface color in [0,1]
  double Reflectivity; ///< 0 = matte, 1 = mirror
};

struct RaytracerParams {
  int Width = 512;
  int Height = 512;
  unsigned MaxDepth = 3;
  uint64_t Seed = 11; ///< scene generation seed
  int NumSpheres = 12;
};

struct RaytracerResult {
  uint64_t Checksum = 0; ///< sum of packed pixels (deterministic)
  int64_t Pixels = 0;
  double Seconds = 0.0;
};

/// Builds a deterministic random scene.
std::vector<Sphere> makeScene(const RaytracerParams &P);

/// Traces one pixel; \returns packed 0x00RRGGBB.
uint32_t tracePixel(const std::vector<Sphere> &Scene, int X, int Y,
                    const RaytracerParams &P);

/// Renders the image in parallel; the result rope (one packed word per
/// pixel, row-major) is written to *ImageOut when non-null.
RaytracerResult runRaytracer(Runtime &RT, VProc &VP,
                             const RaytracerParams &P,
                             std::vector<uint32_t> *ImageOut = nullptr);

} // namespace manti::workloads

#endif // MANTI_WORKLOADS_RAYTRACER_H
