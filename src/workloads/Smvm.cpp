//===- workloads/Smvm.cpp --------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Smvm.h"

#include "gc/Handles.h"
#include "runtime/Parallel.h"
#include "support/Assert.h"
#include "support/XorShift.h"

#include <chrono>
#include <cmath>

using namespace manti;
using namespace manti::workloads;

SmvmProblem manti::workloads::makeProblem(VProcHeap &H, const SmvmParams &P) {
  XorShift64 Rng(P.Seed);
  int64_t N = P.NumRows;
  int64_t Nnz = P.NumNonZeros;

  // Distribute non-zeros across rows: a base share per row plus a
  // remainder spread over the first rows, columns uniform at random.
  std::vector<int64_t> RowPtr(static_cast<std::size_t>(N + 1));
  int64_t Base = Nnz / N;
  int64_t Extra = Nnz % N;
  RowPtr[0] = 0;
  for (int64_t R = 0; R < N; ++R)
    RowPtr[static_cast<std::size_t>(R + 1)] =
        RowPtr[static_cast<std::size_t>(R)] + Base + (R < Extra ? 1 : 0);
  MANTI_CHECK(RowPtr.back() == Nnz, "row distribution must cover all nnz");

  std::vector<int64_t> ColIdx(static_cast<std::size_t>(Nnz));
  std::vector<double> Vals(static_cast<std::size_t>(Nnz));
  for (int64_t I = 0; I < Nnz; ++I) {
    ColIdx[static_cast<std::size_t>(I)] =
        static_cast<int64_t>(Rng.nextBelow(static_cast<uint64_t>(N)));
    Vals[static_cast<std::size_t>(I)] = Rng.nextDouble(-1.0, 1.0);
  }
  std::vector<double> X(static_cast<std::size_t>(N));
  for (auto &V : X)
    V = Rng.nextDouble(-1.0, 1.0);

  SmvmProblem Prob;
  Prob.NumRows = N;
  Prob.Nnz = Nnz;
  // Shared immutable inputs go straight to the global heap.
  Prob.RowPtr = H.allocGlobalRaw(RowPtr.data(), RowPtr.size() * 8);
  Prob.ColIdx = H.allocGlobalRaw(ColIdx.data(), ColIdx.size() * 8);
  Prob.Vals = H.allocGlobalRaw(Vals.data(), Vals.size() * 8);
  Prob.X = H.allocGlobalRaw(X.data(), X.size() * 8);
  return Prob;
}

namespace {

struct SmvmCtx {
  const SmvmProblem *Prob;
  double *Y;
  /// Home node of the chunk backing the non-zero values: row-range
  /// tasks are tagged with it so the traversal lands where the matrix
  /// lives.
  NodeId DataHome = Task::NoAffinity;
};

NodeId rowAffinity(int64_t, int64_t, void *CtxP) {
  return static_cast<SmvmCtx *>(CtxP)->DataHome;
}

void rowRange(Runtime &, VProc &, int64_t Lo, int64_t Hi, void *CtxP) {
  auto *Ctx = static_cast<SmvmCtx *>(CtxP);
  const SmvmProblem &Prob = *Ctx->Prob;
  const auto *RowPtr = static_cast<const int64_t *>(rawData(Prob.RowPtr));
  const auto *ColIdx = static_cast<const int64_t *>(rawData(Prob.ColIdx));
  const auto *Vals = static_cast<const double *>(rawData(Prob.Vals));
  const auto *X = static_cast<const double *>(rawData(Prob.X));
  for (int64_t R = Lo; R < Hi; ++R) {
    double Sum = 0;
    for (int64_t I = RowPtr[R]; I < RowPtr[R + 1]; ++I)
      Sum += Vals[I] * X[ColIdx[I]];
    Ctx->Y[R] = Sum;
  }
}

} // namespace

void manti::workloads::smvm(Runtime &RT, VProc &VP, const SmvmProblem &Prob,
                            double *Y) {
  SmvmCtx Ctx{&Prob, Y,
              RT.world().homeNodeOf(Prob.Vals, Task::NoAffinity)};
  int64_t Grain = std::max<int64_t>(16, Prob.NumRows / 512);
  parallelFor(RT, VP, 0, Prob.NumRows, Grain, rowRange, &Ctx, rowAffinity);
}

void manti::workloads::smvmSerial(const SmvmProblem &Prob, double *Y) {
  const auto *RowPtr = static_cast<const int64_t *>(rawData(Prob.RowPtr));
  const auto *ColIdx = static_cast<const int64_t *>(rawData(Prob.ColIdx));
  const auto *Vals = static_cast<const double *>(rawData(Prob.Vals));
  const auto *X = static_cast<const double *>(rawData(Prob.X));
  for (int64_t R = 0; R < Prob.NumRows; ++R) {
    double Sum = 0;
    for (int64_t I = RowPtr[R]; I < RowPtr[R + 1]; ++I)
      Sum += Vals[I] * X[ColIdx[I]];
    Y[R] = Sum;
  }
}

SmvmResult manti::workloads::runSmvm(Runtime &RT, VProc &VP,
                                     const SmvmParams &P) {
  RootScope S(VP.heap());
  SmvmProblem Prob = makeProblem(VP.heap(), P);
  S.rootExternal(Prob.RowPtr);
  S.rootExternal(Prob.ColIdx);
  S.rootExternal(Prob.Vals);
  S.rootExternal(Prob.X);

  std::vector<double> Y(static_cast<std::size_t>(P.NumRows));
  auto Start = std::chrono::steady_clock::now();
  smvm(RT, VP, Prob, Y.data());
  auto End = std::chrono::steady_clock::now();

  std::vector<double> Ref(static_cast<std::size_t>(P.NumRows));
  smvmSerial(Prob, Ref.data());

  SmvmResult Res;
  Res.Rows = P.NumRows;
  Res.Seconds = std::chrono::duration<double>(End - Start).count();
  for (int64_t R = 0; R < P.NumRows; ++R) {
    MANTI_CHECK(std::fabs(Y[static_cast<std::size_t>(R)] -
                          Ref[static_cast<std::size_t>(R)]) < 1e-9,
                "parallel SMVM result diverges from serial reference");
    Res.ResultNorm1 += std::fabs(Y[static_cast<std::size_t>(R)]);
  }
  return Res;
}
