//===- workloads/Raytracer.cpp ---------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Raytracer.h"

#include "runtime/Parallel.h"
#include "runtime/Rope.h"
#include "support/XorShift.h"

#include <chrono>
#include <cmath>

using namespace manti;
using namespace manti::workloads;

namespace {

struct Vec3 {
  double X, Y, Z;
};

Vec3 operator+(Vec3 A, Vec3 B) { return {A.X + B.X, A.Y + B.Y, A.Z + B.Z}; }
Vec3 operator-(Vec3 A, Vec3 B) { return {A.X - B.X, A.Y - B.Y, A.Z - B.Z}; }
Vec3 operator*(Vec3 A, double S) { return {A.X * S, A.Y * S, A.Z * S}; }
double dot(Vec3 A, Vec3 B) { return A.X * B.X + A.Y * B.Y + A.Z * B.Z; }
Vec3 normalize(Vec3 A) {
  double L = std::sqrt(dot(A, A));
  return L > 0 ? A * (1.0 / L) : A;
}

constexpr double Inf = 1e30;
const Vec3 LightPos = {-4.0, 6.0, -2.0};

/// Ray-sphere intersection; \returns distance or Inf.
double hitSphere(const Sphere &S, Vec3 Origin, Vec3 Dir) {
  Vec3 Oc = Origin - Vec3{S.Cx, S.Cy, S.Cz};
  double B = 2.0 * dot(Oc, Dir);
  double C = dot(Oc, Oc) - S.Radius * S.Radius;
  double Disc = B * B - 4 * C;
  if (Disc < 0)
    return Inf;
  double Sq = std::sqrt(Disc);
  double T0 = (-B - Sq) / 2.0;
  if (T0 > 1e-6)
    return T0;
  double T1 = (-B + Sq) / 2.0;
  if (T1 > 1e-6)
    return T1;
  return Inf;
}

struct Hit {
  double T = Inf;
  const Sphere *S = nullptr;
};

Hit closestHit(const std::vector<Sphere> &Scene, Vec3 Origin, Vec3 Dir) {
  Hit Best;
  for (const Sphere &S : Scene) {
    double T = hitSphere(S, Origin, Dir);
    if (T < Best.T) {
      Best.T = T;
      Best.S = &S;
    }
  }
  return Best;
}

Vec3 shade(const std::vector<Sphere> &Scene, Vec3 Origin, Vec3 Dir,
           unsigned Depth) {
  Hit H = closestHit(Scene, Origin, Dir);
  if (!H.S) {
    // Sky gradient.
    double T = 0.5 * (Dir.Y + 1.0);
    return Vec3{0.4, 0.55, 0.8} * T + Vec3{0.05, 0.05, 0.08} * (1.0 - T);
  }
  const Sphere &S = *H.S;
  Vec3 P = Origin + Dir * H.T;
  Vec3 N = normalize(P - Vec3{S.Cx, S.Cy, S.Cz});
  Vec3 ToLight = normalize(LightPos - P);

  // Hard shadow.
  double LightDist = std::sqrt(dot(LightPos - P, LightPos - P));
  Hit Sh = closestHit(Scene, P + N * 1e-6, ToLight);
  bool Shadowed = Sh.T < LightDist;

  double Diffuse = Shadowed ? 0.0 : std::max(0.0, dot(N, ToLight));
  double Ambient = 0.12;
  Vec3 Base = Vec3{S.R, S.G, S.B} * (Ambient + 0.88 * Diffuse);

  if (S.Reflectivity > 0 && Depth > 0) {
    Vec3 Refl = Dir - N * (2.0 * dot(Dir, N));
    Vec3 Mirror = shade(Scene, P + N * 1e-6, normalize(Refl), Depth - 1);
    Base = Base * (1.0 - S.Reflectivity) + Mirror * S.Reflectivity;
  }
  return Base;
}

uint32_t packColor(Vec3 C) {
  auto Chan = [](double V) {
    return static_cast<uint32_t>(
        std::min(255.0, std::max(0.0, V * 255.0 + 0.5)));
  };
  return (Chan(C.X) << 16) | (Chan(C.Y) << 8) | Chan(C.Z);
}

} // namespace

std::vector<Sphere> manti::workloads::makeScene(const RaytracerParams &P) {
  std::vector<Sphere> Scene;
  // A large "ground" sphere plus NumSpheres random ones.
  Scene.push_back({0.0, -1001.0, 5.0, 1000.0, 0.45, 0.45, 0.45, 0.1});
  XorShift64 Rng(P.Seed);
  for (int I = 0; I < P.NumSpheres; ++I) {
    Sphere S;
    S.Cx = Rng.nextDouble(-4.0, 4.0);
    S.Cy = Rng.nextDouble(-0.5, 2.5);
    S.Cz = Rng.nextDouble(3.0, 9.0);
    S.Radius = Rng.nextDouble(0.3, 1.0);
    S.R = Rng.nextDouble(0.2, 1.0);
    S.G = Rng.nextDouble(0.2, 1.0);
    S.B = Rng.nextDouble(0.2, 1.0);
    S.Reflectivity = Rng.nextDouble() < 0.4 ? Rng.nextDouble(0.2, 0.7) : 0.0;
    Scene.push_back(S);
  }
  return Scene;
}

uint32_t manti::workloads::tracePixel(const std::vector<Sphere> &Scene, int X,
                                      int Y, const RaytracerParams &P) {
  double U = (2.0 * (X + 0.5) / P.Width - 1.0);
  double V = (1.0 - 2.0 * (Y + 0.5) / P.Height);
  Vec3 Dir = normalize({U, V, 1.6});
  return packColor(shade(Scene, {0, 0.5, -1.0}, Dir, P.MaxDepth));
}

namespace {

struct RenderCtx {
  const std::vector<Sphere> *Scene;
  const RaytracerParams *P;
};

/// Leaf: render rows [Lo, Hi) into a rope of packed pixels.
Ref<> renderRows(Runtime &, VProc &, RootScope &S, int64_t Lo, int64_t Hi,
                 void *CtxP) {
  auto *Ctx = static_cast<RenderCtx *>(CtxP);
  const RaytracerParams &P = *Ctx->P;
  std::vector<uint64_t> Row(static_cast<std::size_t>(P.Width) *
                            static_cast<std::size_t>(Hi - Lo));
  std::size_t Out = 0;
  for (int64_t Y = Lo; Y < Hi; ++Y)
    for (int X = 0; X < P.Width; ++X)
      Row[Out++] = tracePixel(*Ctx->Scene, X, static_cast<int>(Y), P);
  return rope::fromArray(S, Row.data(), static_cast<int64_t>(Out));
}

Ref<> concatRows(Runtime &, VProc &, RootScope &S, const Ref<> &A,
                 const Ref<> &B, void *) {
  return rope::concat(S, A, B);
}

} // namespace

RaytracerResult manti::workloads::runRaytracer(Runtime &RT, VProc &VP,
                                               const RaytracerParams &P,
                                               std::vector<uint32_t> *ImageOut) {
  std::vector<Sphere> Scene = makeScene(P);
  RenderCtx Ctx{&Scene, &P};

  auto Start = std::chrono::steady_clock::now();
  RootScope S(VP.heap());
  Ref<> Image = parallelReduce(S, RT, VP, 0, P.Height, /*Grain=*/4,
                               renderRows, concatRows, &Ctx);
  auto End = std::chrono::steady_clock::now();

  RaytracerResult Res;
  Res.Pixels = rope::length(Image);
  Res.Seconds = std::chrono::duration<double>(End - Start).count();
  std::vector<uint64_t> Pixels(static_cast<std::size_t>(Res.Pixels));
  rope::toArray(Image, Pixels.data());
  for (uint64_t W : Pixels)
    Res.Checksum += W;
  if (ImageOut) {
    ImageOut->resize(Pixels.size());
    for (std::size_t I = 0; I < Pixels.size(); ++I)
      (*ImageOut)[I] = static_cast<uint32_t>(Pixels[I]);
  }
  return Res;
}
