//===- workloads/Dmm.cpp ---------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Dmm.h"

#include "gc/Handles.h"

#include "runtime/Parallel.h"
#include "support/Assert.h"
#include "support/XorShift.h"

#include <chrono>
#include <cmath>

using namespace manti;
using namespace manti::workloads;

namespace {

struct DmmCtx {
  const double *A;
  const double *B;
  double *C;
  int64_t N;
};

void rowBlock(Runtime &, VProc &, int64_t Lo, int64_t Hi, void *CtxP) {
  auto *Ctx = static_cast<DmmCtx *>(CtxP);
  int64_t N = Ctx->N;
  // i-k-j loop order: streams B rows, vectorizes the inner loop.
  for (int64_t I = Lo; I < Hi; ++I) {
    double *CRow = Ctx->C + I * N;
    for (int64_t J = 0; J < N; ++J)
      CRow[J] = 0.0;
    const double *ARow = Ctx->A + I * N;
    for (int64_t K = 0; K < N; ++K) {
      double Aik = ARow[K];
      const double *BRow = Ctx->B + K * N;
      for (int64_t J = 0; J < N; ++J)
        CRow[J] += Aik * BRow[J];
    }
  }
}

} // namespace

void manti::workloads::dmm(Runtime &RT, VProc &VP, Value A, Value B,
                           int64_t N, double *C) {
  DmmCtx Ctx{static_cast<const double *>(rawData(A)),
             static_cast<const double *>(rawData(B)), C, N};
  int64_t Grain = std::max<int64_t>(1, N / 128);
  parallelFor(RT, VP, 0, N, Grain, rowBlock, &Ctx);
}

void manti::workloads::dmmSerial(const double *A, const double *B, int64_t N,
                                 double *C) {
  for (int64_t I = 0; I < N; ++I) {
    for (int64_t J = 0; J < N; ++J)
      C[I * N + J] = 0.0;
    for (int64_t K = 0; K < N; ++K) {
      double Aik = A[I * N + K];
      for (int64_t J = 0; J < N; ++J)
        C[I * N + J] += Aik * B[K * N + J];
    }
  }
}

DmmResult manti::workloads::runDmm(Runtime &RT, VProc &VP,
                                   const DmmParams &P) {
  int64_t N = P.N;
  XorShift64 Rng(P.Seed);
  std::vector<double> AData(static_cast<std::size_t>(N * N));
  std::vector<double> BData(static_cast<std::size_t>(N * N));
  for (auto &V : AData)
    V = Rng.nextDouble(-1.0, 1.0);
  for (auto &V : BData)
    V = Rng.nextDouble(-1.0, 1.0);

  RootScope S(VP.heap());
  Ref<> A = allocGlobalRaw(S, AData.data(), AData.size() * 8);
  Ref<> B = allocGlobalRaw(S, BData.data(), BData.size() * 8);

  std::vector<double> C(static_cast<std::size_t>(N * N));
  auto Start = std::chrono::steady_clock::now();
  dmm(RT, VP, A, B, N, C.data());
  auto End = std::chrono::steady_clock::now();

  // Verify a sample of rows against the serial reference (full serial
  // verification at 600x600 would dominate the benchmark run).
  std::vector<double> Ref(static_cast<std::size_t>(N * N));
  dmmSerial(AData.data(), BData.data(), N, Ref.data());
  for (std::size_t I = 0; I < C.size(); ++I)
    MANTI_CHECK(std::fabs(C[I] - Ref[I]) < 1e-9 * static_cast<double>(N),
                "parallel DMM diverges from serial reference");

  DmmResult Res;
  Res.N = N;
  Res.Seconds = std::chrono::duration<double>(End - Start).count();
  double Sum = 0;
  for (double V : C)
    Sum += V * V;
  Res.FrobeniusNorm = std::sqrt(Sum);
  return Res;
}
