//===- service/KVStore.h - NUMA-sharded in-memory KV store ----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A NUMA-sharded in-memory key/value store: the serving workload whose
/// allocation churn -- not a benchmark timer -- drives collection. Keys
/// hash to shards and each shard is homed on one NUMA node (round-robin
/// over the topology), so a node-affine worker serving a shard allocates
/// that shard's working set from its own node's local heap.
///
/// Values are built through the handle API: each entry is a typed
/// KVEntry object (ObjectType<KVEntry>) holding the key, a version, and
/// a pointer to a raw payload of configurable size, allocated locally in
/// the serving vproc's nursery and promoted to the global heap when the
/// entry is published. An overwrite or delete drops the previous global
/// entry -- real garbage for the next global collection -- and the local
/// copy dies young in the nursery, exactly the churn profile a serving
/// system hands a split local/global collector.
///
/// Payloads carry a deterministic key/version-derived fill plus a
/// checksum; get() re-verifies both, so a collector bug that moved or
/// dropped an object under the store surfaces as a counted corruption
/// rather than silent nonsense.
///
/// Threading discipline: each shard has a single owner -- requests are
/// routed to the shard's worker over a Channel (service/TrafficGen.h),
/// so shard state needs no locks. The entry tables are runtime (C++)
/// state holding global-heap references; the store registers as a
/// GlobalRootProvider and the global collector's leader enumerates every
/// entry slot while the world is stopped.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SERVICE_KVSTORE_H
#define MANTI_SERVICE_KVSTORE_H

#include "gc/Handles.h"
#include "runtime/Runtime.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace manti {

/// The typed heap object behind one published KV entry.
struct KVEntry {
  Value Payload; ///< raw data object (scanned)
  int64_t Key;
  int64_t Version;
  static constexpr const char *GcName = "kv-entry";
  static constexpr auto GcPtrFields = ptrFields(&KVEntry::Payload);
};

class KVStore : public GlobalRootProvider {
public:
  /// Registers the KVEntry object type (must therefore be constructed
  /// before the runtime's vprocs start allocating) and registers the
  /// store's entry tables as global GC roots. Shard home nodes are
  /// assigned round-robin over \p RT's topology.
  KVStore(Runtime &RT, unsigned NumShards);
  ~KVStore() override;

  KVStore(const KVStore &) = delete;
  KVStore &operator=(const KVStore &) = delete;

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// Shard owning \p Key (a mixed hash, stable across runs).
  unsigned shardOf(uint64_t Key) const;

  /// NUMA node the owning shard is homed on -- the affinity hint for the
  /// worker serving this key.
  NodeId homeNodeOf(uint64_t Key) const { return Shards[shardOf(Key)].Home; }

  /// Home node of shard \p Shard directly (worker spawn affinity).
  NodeId shardHome(unsigned Shard) const { return Shards[Shard].Home; }

  //===--------------------------------------------------------------------===//
  // Operations. Call on the owning shard's worker vproc (or, before the
  // workers start, from any single vproc -- e.g. preloading).
  //===--------------------------------------------------------------------===//

  /// Inserts or overwrites \p Key with a fresh \p ValueBytes payload.
  /// The previous entry (if any) becomes global-heap garbage.
  void put(VProc &VP, uint64_t Key, uint32_t ValueBytes);

  /// Looks up \p Key and verifies the payload's checksum and fill.
  /// \returns true on hit (misses and corruptions are counted).
  bool get(VProc &VP, uint64_t Key);

  /// Removes \p Key. \returns true if it was present.
  bool erase(VProc &VP, uint64_t Key);

  //===--------------------------------------------------------------------===//
  // Introspection (quiescent or owner-thread use).
  //===--------------------------------------------------------------------===//

  std::size_t size() const;
  uint64_t misses() const;
  /// Entries whose payload failed verification -- 0 unless the collector
  /// lost or scrambled an object under the store.
  uint64_t corruptions() const;

  /// Global-root enumeration (global collector's leader, world stopped).
  void enumerateGlobalRoots(RootSlotVisitor Visit, void *VisitorCtx) override;

private:
  struct Entry {
    Word Bits;        ///< global-heap KVEntry object (a root slot)
    uint64_t Version; ///< expected version, checked on get
  };
  struct Shard {
    std::unordered_map<uint64_t, Entry> Map;
    NodeId Home = 0;
    uint64_t NextVersion = 1;
    uint64_t Misses = 0;
    uint64_t Corruptions = 0;
  };

  Shard &shard(uint64_t Key) { return Shards[shardOf(Key)]; }

  Runtime &RT;
  std::vector<Shard> Shards;
};

} // namespace manti

#endif // MANTI_SERVICE_KVSTORE_H
