//===- service/LatencyRecorder.h - log-bucketed latency histogram ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An HDR-style log-bucketed latency histogram for the serving harness:
/// fixed memory, O(1) record, and percentile queries with bounded
/// *relative* error (~3.1%: 32 sub-buckets per power of two; values
/// below 32 ns are exact). Nothing allocates after construction, so a
/// recorder can sit on a worker's hot path without perturbing the GC
/// behavior it is measuring. One recorder per worker, merged after the
/// run -- no synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SERVICE_LATENCYRECORDER_H
#define MANTI_SERVICE_LATENCYRECORDER_H

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace manti {

class LatencyRecorder {
public:
  /// Records one sample (nanoseconds).
  void record(uint64_t Nanos) {
    Buckets[indexOf(Nanos)]++;
    Count_++;
    TotalNanos += Nanos;
    if (Nanos > Max_)
      Max_ = Nanos;
  }

  uint64_t count() const { return Count_; }

  /// Exact maximum of the recorded samples (not bucket-quantized).
  uint64_t maxNanos() const { return Max_; }

  double meanNanos() const {
    return Count_ ? static_cast<double>(TotalNanos) /
                        static_cast<double>(Count_)
                  : 0.0;
  }

  /// Value at percentile \p P (0..100): the smallest bucket upper edge
  /// such that at least P% of samples are at or below it, clamped to
  /// the exact maximum. 0 when nothing was recorded.
  uint64_t percentileNanos(double P) const {
    if (Count_ == 0)
      return 0;
    if (P >= 100.0)
      return Max_;
    if (P < 0.0)
      P = 0.0;
    // Nearest-rank: the ceil(P/100 * Count)-th sample in sorted order.
    uint64_t Rank = static_cast<uint64_t>(
        std::ceil(P * static_cast<double>(Count_) / 100.0));
    if (Rank < 1)
      Rank = 1;
    if (Rank > Count_)
      Rank = Count_;
    uint64_t Cum = 0;
    for (std::size_t I = 0; I < NumBuckets; ++I) {
      Cum += Buckets[I];
      if (Cum >= Rank) {
        uint64_t Edge = upperEdgeOf(I);
        return Edge < Max_ ? Edge : Max_;
      }
    }
    return Max_;
  }

  void merge(const LatencyRecorder &O) {
    for (std::size_t I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    Count_ += O.Count_;
    TotalNanos += O.TotalNanos;
    if (O.Max_ > Max_)
      Max_ = O.Max_;
  }

private:
  /// 2^SubBits sub-buckets per octave; octave 0 is [0, 2^SubBits) with
  /// exact single-value buckets.
  static constexpr unsigned SubBits = 5;
  static constexpr unsigned SubCount = 1u << SubBits;
  /// Octave O >= 1 covers [2^(O+SubBits-1), 2^(O+SubBits)); 60 octaves
  /// reach past any 64-bit nanosecond count this side of a reboot.
  static constexpr unsigned NumOctaves = 60;
  static constexpr std::size_t NumBuckets = NumOctaves * SubCount;

  static unsigned msb(uint64_t V) {
    unsigned B = 0;
    while (V >>= 1)
      B++;
    return B;
  }

  static std::size_t indexOf(uint64_t Nanos) {
    if (Nanos < SubCount)
      return Nanos;
    unsigned Octave = msb(Nanos) - SubBits + 1;
    if (Octave >= NumOctaves)
      Octave = NumOctaves - 1;
    unsigned Sub = (Nanos >> (Octave - 1)) & (SubCount - 1);
    return static_cast<std::size_t>(Octave) * SubCount + Sub;
  }

  /// Largest value mapping into bucket \p I (the conservative edge the
  /// percentile reports).
  static uint64_t upperEdgeOf(std::size_t I) {
    unsigned Octave = static_cast<unsigned>(I / SubCount);
    uint64_t Sub = I % SubCount;
    if (Octave == 0)
      return Sub;
    return ((SubCount + Sub + 1) << (Octave - 1)) - 1;
  }

  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count_ = 0;
  uint64_t TotalNanos = 0;
  uint64_t Max_ = 0;
};

} // namespace manti

#endif // MANTI_SERVICE_LATENCYRECORDER_H
