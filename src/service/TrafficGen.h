//===- service/TrafficGen.h - open-loop traffic and the serving harness ---===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The open-loop request generator and the serving harness that drives a
/// KVStore with it.
///
/// Open loop means the arrival schedule is fixed *before* the run:
/// requests are stamped with Poisson (exponential inter-arrival) times
/// derived deterministically from a seed, and a request's latency is
/// measured from its *scheduled* arrival, not from when the generator
/// managed to send it. A closed-loop generator (issue, wait, issue)
/// silently stops offering load whenever the system stalls -- a GC pause
/// hides all the requests that *would have* arrived during it
/// (coordinated omission); measuring from the schedule charges that
/// queueing delay to the requests, which is what a tail-latency SLO is
/// about.
///
/// Topology of a run: W shards = W node-affine workers, each owning one
/// Channel, plus W generators (generator 0 runs inline on the main
/// vproc), so the runtime needs 2W vprocs -- a blocking recv occupies
/// its vproc. Generators route each request to its key's shard channel;
/// workers execute against the store, stamp the completion, and record
/// scheduled-arrival-to-completion latency in a per-worker
/// LatencyRecorder (merged after the run).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_SERVICE_TRAFFICGEN_H
#define MANTI_SERVICE_TRAFFICGEN_H

#include "service/LatencyRecorder.h"

#include <cstdint>
#include <vector>

namespace manti {

class Runtime;

enum class OpKind : uint8_t { Get, Put, Delete };

/// One scheduled request. ScheduledNanos is relative to the run's epoch
/// (captured after preloading, before the workers start).
struct Request {
  uint64_t ScheduledNanos;
  uint64_t Key;
  OpKind Op;
  uint32_t ValueBytes;
};

/// Workload shape. Everything is derived deterministically from Seed, so
/// a schedule can be rebuilt bit-for-bit for tests and reproductions.
struct TrafficConfig {
  uint64_t Seed = 1;
  /// Offered load per generator, requests/second (Poisson arrivals).
  double RatePerGen = 20000.0;
  uint64_t RequestsPerGen = 2000;
  /// Keys are drawn uniformly from [0, KeySpace).
  uint64_t KeySpace = 1 << 14;
  /// Payload bytes for put requests.
  uint32_t ValueBytes = 256;
  /// Op mix in percent; the remainder after gets and puts is deletes.
  unsigned GetPct = 70;
  unsigned PutPct = 25;
};

/// Builds generator \p Generator's request schedule: a pure function of
/// (Cfg.Seed, Generator).
std::vector<Request> buildSchedule(const TrafficConfig &Cfg,
                                   unsigned Generator);

/// One serving run: W workers/shards/generators over a preloaded store.
struct ServingConfig {
  TrafficConfig Traffic;
  /// Shards = workers = generators; the runtime must have at least
  /// 2*Workers vprocs.
  unsigned Workers = 4;
  /// Keys 0..PreloadKeys-1 are put before the epoch so gets mostly hit.
  uint64_t PreloadKeys = 4096;
};

struct ServingResult {
  LatencyRecorder Latency; ///< all workers merged
  double Seconds = 0;      ///< epoch to last completion
  double OfferedRps = 0;
  double AchievedRps = 0;
  uint64_t Gets = 0, Puts = 0, Deletes = 0;
  uint64_t Misses = 0;
  uint64_t Corruptions = 0; ///< payload verification failures (want: 0)
};

/// Runs the serving workload on \p RT (which must outlive the call and
/// have >= 2*Cfg.Workers vprocs). May be called repeatedly; each call
/// builds a fresh store. GC statistics accumulate in RT's world --
/// read them per-run via a fresh Runtime, or diff aggregateStats.
ServingResult runServing(Runtime &RT, const ServingConfig &Cfg);

} // namespace manti

#endif // MANTI_SERVICE_TRAFFICGEN_H
