//===- service/TrafficGen.cpp ---------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "service/TrafficGen.h"

#include "runtime/Channel.h"
#include "runtime/Runtime.h"
#include "runtime/VProc.h"
#include "service/KVStore.h"
#include "support/Assert.h"
#include "support/XorShift.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

using namespace manti;

std::vector<Request> manti::buildSchedule(const TrafficConfig &Cfg,
                                          unsigned Generator) {
  MANTI_CHECK(Cfg.RatePerGen > 0.0, "offered rate must be positive");
  MANTI_CHECK(Cfg.GetPct + Cfg.PutPct <= 100, "op mix exceeds 100%");
  // Distinct, deterministic stream per (seed, generator).
  XorShift64 Rng(Cfg.Seed * 0x9e3779b97f4a7c15ull +
                 (Generator + 1) * 0xd1b54a32d192ed03ull);
  std::vector<Request> Sched;
  Sched.reserve(Cfg.RequestsPerGen);
  const double MeanGapNanos = 1e9 / Cfg.RatePerGen;
  double Clock = 0.0;
  for (uint64_t I = 0; I < Cfg.RequestsPerGen; ++I) {
    // Poisson arrivals: exponential inter-arrival gaps.
    double U = Rng.nextDouble();
    if (U >= 1.0)
      U = 0.999999999;
    Clock += -std::log(1.0 - U) * MeanGapNanos;
    Request R;
    R.ScheduledNanos = static_cast<uint64_t>(Clock);
    R.Key = Rng.nextBelow(Cfg.KeySpace);
    uint64_t Pick = Rng.nextBelow(100);
    R.Op = Pick < Cfg.GetPct            ? OpKind::Get
           : Pick < Cfg.GetPct + Cfg.PutPct ? OpKind::Put
                                            : OpKind::Delete;
    R.ValueBytes = Cfg.ValueBytes;
    Sched.push_back(R);
  }
  return Sched;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Shared, spawner-owned control state for one serving run (the Ctx side
/// of Task -- plain C++ state, no heap values except via the store and
/// channels, which are root providers themselves).
struct ServingState {
  const ServingConfig *Cfg = nullptr;
  KVStore *Store = nullptr;
  std::vector<std::unique_ptr<Channel>> Chans; ///< one per shard/worker
  std::vector<std::vector<Request>> Schedules; ///< one per generator
  Clock::time_point Epoch;

  struct PerWorker {
    LatencyRecorder Rec;
    uint64_t Gets = 0, Puts = 0, Deletes = 0;
    uint64_t LastDoneNanos = 0;
  };
  std::vector<PerWorker> Workers;

  JoinCounter Join;
};

uint64_t elapsedNanos(const ServingState &St) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           St.Epoch)
          .count());
}

/// Requests cross the channel as a tagged int: (generator << 32) | index
/// into that generator's schedule. Negative = poison (worker exits after
/// one per generator).
constexpr int64_t Poison = -1;

int64_t encodeToken(unsigned Generator, uint32_t Index) {
  return (static_cast<int64_t>(Generator) << 32) | Index;
}

void workerTask(Runtime &, VProc &VP, Task T) {
  auto *St = static_cast<ServingState *>(T.Ctx);
  const unsigned W = static_cast<unsigned>(T.A);
  const unsigned NumGens = St->Cfg->Workers;
  ServingState::PerWorker &Me = St->Workers[W];
  Channel &Chan = *St->Chans[W];
  unsigned Poisons = 0;
  while (Poisons < NumGens) {
    Value V = Chan.recv(VP);
    int64_t Tok = V.asInt();
    if (Tok < 0) {
      Poisons++;
      continue;
    }
    const unsigned Gen = static_cast<unsigned>(Tok >> 32);
    const uint32_t Idx = static_cast<uint32_t>(Tok & 0xffffffff);
    const Request &R = St->Schedules[Gen][Idx];
    switch (R.Op) {
    case OpKind::Get:
      St->Store->get(VP, R.Key);
      Me.Gets++;
      break;
    case OpKind::Put:
      St->Store->put(VP, R.Key, R.ValueBytes);
      Me.Puts++;
      break;
    case OpKind::Delete:
      St->Store->erase(VP, R.Key);
      Me.Deletes++;
      break;
    }
    // Open-loop latency: completion minus *scheduled* arrival. Queueing
    // delay behind a GC pause lands here -- no coordinated omission.
    uint64_t Now = elapsedNanos(*St);
    Me.Rec.record(Now > R.ScheduledNanos ? Now - R.ScheduledNanos : 0);
    if (Now > Me.LastDoneNanos)
      Me.LastDoneNanos = Now;
  }
  St->Join.sub();
}

/// Paces generator \p G's schedule: waits (polling, so global GC and
/// steal requests are serviced) until each request's scheduled time,
/// then routes it to its key's shard channel. Finishes by poisoning
/// every worker once.
void generatorBody(VProc &VP, ServingState *St, unsigned G) {
  const std::vector<Request> &Sched = St->Schedules[G];
  for (uint32_t I = 0; I < Sched.size(); ++I) {
    const Request &R = Sched[I];
    for (;;) {
      uint64_t Now = elapsedNanos(*St);
      if (Now >= R.ScheduledNanos)
        break;
      VP.poll();
      if (R.ScheduledNanos - Now > 50000)
        std::this_thread::yield();
    }
    unsigned Shard = St->Store->shardOf(R.Key);
    St->Chans[Shard]->send(VP, Value::fromInt(encodeToken(G, I)));
  }
  for (auto &Chan : St->Chans)
    Chan->send(VP, Value::fromInt(Poison));
}

void generatorTask(Runtime &, VProc &VP, Task T) {
  auto *St = static_cast<ServingState *>(T.Ctx);
  generatorBody(VP, St, static_cast<unsigned>(T.A));
  St->Join.sub();
}

void servingMain(Runtime &, VProc &VP, void *CtxP) {
  auto *St = static_cast<ServingState *>(CtxP);
  const ServingConfig &Cfg = *St->Cfg;
  const unsigned W = Cfg.Workers;

  // Preload before the epoch so the measured window starts warm.
  for (uint64_t K = 0; K < Cfg.PreloadKeys; ++K)
    St->Store->put(VP, K % Cfg.Traffic.KeySpace, Cfg.Traffic.ValueBytes);

  St->Epoch = Clock::now();
  St->Join.add(W + (W - 1));
  for (unsigned I = 0; I < W; ++I)
    VP.spawn(Task{&workerTask, St, Value::nil(), static_cast<int64_t>(I), 0,
                  St->Store->shardHome(I)});
  for (unsigned G = 1; G < W; ++G)
    VP.spawn(Task{&generatorTask, St, Value::nil(), static_cast<int64_t>(G),
                  0, Task::NoAffinity});
  // Generator 0 runs right here; joinWait then helps drain whatever is
  // left (it can even pick up a worker -- poisons still arrive).
  generatorBody(VP, St, 0);
  VP.joinWait(St->Join);
}

} // namespace

ServingResult manti::runServing(Runtime &RT, const ServingConfig &Cfg) {
  MANTI_CHECK(Cfg.Workers > 0, "serving needs at least one worker");
  MANTI_CHECK(RT.numVProcs() >= 2 * Cfg.Workers,
              "serving needs 2*Workers vprocs (blocking recv occupies one)");

  // Store and channels are locals: global-root providers must be gone
  // before the Runtime is destroyed.
  KVStore Store(RT, Cfg.Workers);
  ServingState St;
  St.Cfg = &Cfg;
  St.Store = &Store;
  St.Workers.resize(Cfg.Workers);
  for (unsigned I = 0; I < Cfg.Workers; ++I) {
    St.Chans.push_back(std::make_unique<Channel>(RT));
    St.Schedules.push_back(buildSchedule(Cfg.Traffic, I));
  }

  RT.run(&servingMain, &St);

  ServingResult R;
  uint64_t LastNanos = 0;
  for (const ServingState::PerWorker &P : St.Workers) {
    R.Latency.merge(P.Rec);
    R.Gets += P.Gets;
    R.Puts += P.Puts;
    R.Deletes += P.Deletes;
    if (P.LastDoneNanos > LastNanos)
      LastNanos = P.LastDoneNanos;
  }
  R.Misses = Store.misses();
  R.Corruptions = Store.corruptions();
  R.Seconds = static_cast<double>(LastNanos) / 1e9;
  R.OfferedRps = Cfg.Traffic.RatePerGen * Cfg.Workers;
  R.AchievedRps =
      R.Seconds > 0 ? static_cast<double>(R.Latency.count()) / R.Seconds : 0;
  return R;
}
