//===- service/KVStore.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "service/KVStore.h"

#include "support/Assert.h"

using namespace manti;

namespace {

/// splitmix64 finalizer: spreads sequential keys across shards.
uint64_t mixKey(uint64_t K) {
  K += 0x9e3779b97f4a7c15ull;
  K = (K ^ (K >> 30)) * 0xbf58476d1ce4e5b9ull;
  K = (K ^ (K >> 27)) * 0x94d049bb133111ebull;
  return K ^ (K >> 31);
}

uint64_t payloadChecksum(uint64_t Key, uint64_t Version, uint64_t Words) {
  return mixKey(Key ^ (Version * 0x100000001b3ull) ^ Words);
}

uint64_t fillWord(uint64_t Key, uint64_t Version, uint64_t I) {
  return mixKey(Key + Version * 31 + I);
}

} // namespace

KVStore::KVStore(Runtime &RT, unsigned NumShards) : RT(RT) {
  MANTI_CHECK(NumShards > 0, "KVStore needs at least one shard");
  if (!ObjectType<KVEntry>::registeredIn(RT.world()))
    ObjectType<KVEntry>::registerWith(RT.world());
  Shards.resize(NumShards);
  unsigned Nodes = RT.world().topology().numNodes();
  for (unsigned I = 0; I < NumShards; ++I)
    Shards[I].Home = static_cast<NodeId>(I % Nodes);
  RT.registerGlobalRoots(this);
}

KVStore::~KVStore() { RT.unregisterGlobalRoots(this); }

unsigned KVStore::shardOf(uint64_t Key) const {
  return static_cast<unsigned>(mixKey(Key) % Shards.size());
}

void KVStore::put(VProc &VP, uint64_t Key, uint32_t ValueBytes) {
  Shard &Sh = shard(Key);
  uint64_t Version = Sh.NextVersion++;
  // Header (key, version, checksum) plus the fill; at least one fill
  // word so even tiny payloads carry verifiable content.
  uint64_t Words = 3 + (ValueBytes + 7) / 8;

  VProcHeap &H = VP.heap();
  RootScope S(H);
  // The payload is zero-allocated, then initialized in place before it
  // can escape -- the PML init-time-store discipline (cf. vectorInit).
  Ref<> Payload = S.root(H.allocRaw(nullptr, Words * 8));
  {
    Word *P = static_cast<Word *>(rawData(Payload.value()));
    P[0] = Key;
    P[1] = Version;
    P[2] = payloadChecksum(Key, Version, Words);
    for (uint64_t I = 3; I < Words; ++I)
      P[I] = fillWord(Key, Version, I);
  }
  Ref<KVEntry> E =
      alloc<KVEntry>(S, KVEntry{Payload.value(), static_cast<int64_t>(Key),
                                static_cast<int64_t>(Version)});
  // Publishing promotes the entry graph (entry + payload) to the global
  // heap; the nursery copies die at the next minor collection, and the
  // overwritten predecessor (if any) becomes global-heap garbage. The
  // entry slots are global roots, so an overwrite is a root deletion: a
  // running concurrent mark must see the dropped value (Yuasa barrier).
  Ref<KVEntry> Published = promote(S, E);
  auto [It, Inserted] = Sh.Map.try_emplace(Key);
  if (!Inserted)
    H.satbRecord(Value::fromBits(It->second.Bits));
  It->second = Entry{Published.value().bits(), Version};
}

bool KVStore::get(VProc &VP, uint64_t Key) {
  (void)VP; // reads allocate nothing; the VProc pins the owner discipline
  Shard &Sh = shard(Key);
  auto It = Sh.Map.find(Key);
  if (It == Sh.Map.end()) {
    Sh.Misses++;
    return false;
  }
  Value E = Value::fromBits(It->second.Bits);
  Value Payload = ObjectType<KVEntry>::get<&KVEntry::Payload>(E);
  int64_t EntryKey = ObjectType<KVEntry>::get<&KVEntry::Key>(E);
  int64_t EntryVer = ObjectType<KVEntry>::get<&KVEntry::Version>(E);
  bool Ok = !Payload.isNil() &&
            EntryKey == static_cast<int64_t>(Key) &&
            EntryVer == static_cast<int64_t>(It->second.Version);
  if (Ok) {
    const Word *P = static_cast<const Word *>(rawData(Payload));
    uint64_t Words = rawSizeBytes(Payload) / 8;
    Ok = Words >= 3 && P[0] == Key &&
         P[1] == It->second.Version &&
         P[2] == payloadChecksum(Key, It->second.Version, Words) &&
         (Words == 3 ||
          P[Words - 1] == fillWord(Key, It->second.Version, Words - 1));
  }
  if (!Ok)
    Sh.Corruptions++;
  return true;
}

bool KVStore::erase(VProc &VP, uint64_t Key) {
  Shard &Sh = shard(Key);
  auto It = Sh.Map.find(Key);
  if (It == Sh.Map.end()) {
    Sh.Misses++;
    return false;
  }
  // The entry object (and transitively its payload) is now unreachable
  // from the store: garbage for the next global collection. Dropping a
  // global root mid-concurrent-mark must record the deleted value, or
  // the running cycle's snapshot would be missing it.
  VP.heap().satbRecord(Value::fromBits(It->second.Bits));
  Sh.Map.erase(It);
  return true;
}

std::size_t KVStore::size() const {
  std::size_t N = 0;
  for (const Shard &Sh : Shards)
    N += Sh.Map.size();
  return N;
}

uint64_t KVStore::misses() const {
  uint64_t N = 0;
  for (const Shard &Sh : Shards)
    N += Sh.Misses;
  return N;
}

uint64_t KVStore::corruptions() const {
  uint64_t N = 0;
  for (const Shard &Sh : Shards)
    N += Sh.Corruptions;
  return N;
}

void KVStore::enumerateGlobalRoots(RootSlotVisitor Visit, void *VisitorCtx) {
  for (Shard &Sh : Shards)
    for (auto &[Key, E] : Sh.Map)
      Visit(&E.Bits, VisitorCtx);
}
