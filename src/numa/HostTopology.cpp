//===- numa/HostTopology.cpp - probe the running machine ------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Topology::host() / Topology::hostFromSysfs(): build a Topology from
/// the machine the process is running on instead of the paper's recorded
/// hardware. Three probe legs, tried in order:
///
///   1. libnuma (only when the build found it: MANTI_HAVE_LIBNUMA) --
///      numa_node_to_cpus for the cpu partition, numa_distance for the
///      SLIT matrix, numa_node_size64 for per-node memory.
///   2. The Linux sysfs node tree (/sys/devices/system/node) -- same
///      facts parsed from cpulist/distance/meminfo files; needs no
///      library, so a default build still probes real machines.
///   3. A single-node topology sized by hardware_concurrency() -- the
///      UMA / non-Linux degradation everything downstream must accept.
///
/// Memory-only nodes (cpuless HBM/CXL banks) are skipped: a Topology
/// node is somewhere a vproc can run. Because Topology keeps a uniform
/// cores-per-node count, irregular machines are squared off to the
/// smallest node (the extra cpus are simply never pinned to).
///
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"

#include "support/Assert.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#if MANTI_HAVE_LIBNUMA
#include <numa.h>
#endif

using namespace manti;

namespace {

/// One cpu-bearing node as the probe saw it.
struct ProbedNode {
  unsigned OsId;
  std::vector<unsigned> Cpus;
  uint64_t MemBytes;
};

unsigned hostCpuCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

/// Parses a Linux cpulist ("0-3,8,10-11") into cpu ids; returns false on
/// malformed input.
bool parseCpuList(const std::string &Text, std::vector<unsigned> &Out) {
  std::size_t I = 0;
  auto ParseNum = [&](unsigned &V) {
    if (I >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[I])))
      return false;
    V = 0;
    while (I < Text.size() && std::isdigit(static_cast<unsigned char>(Text[I])))
      V = V * 10 + static_cast<unsigned>(Text[I++] - '0');
    return true;
  };
  while (I < Text.size()) {
    if (std::isspace(static_cast<unsigned char>(Text[I]))) {
      ++I;
      continue;
    }
    unsigned Lo, Hi;
    if (!ParseNum(Lo))
      return false;
    Hi = Lo;
    if (I < Text.size() && Text[I] == '-') {
      ++I;
      if (!ParseNum(Hi) || Hi < Lo)
        return false;
    }
    for (unsigned C = Lo; C <= Hi; ++C)
      Out.push_back(C);
    if (I < Text.size() && Text[I] == ',')
      ++I;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// "Node 0 MemTotal:       16309528 kB" -> bytes (0 when absent).
uint64_t parseMemInfoBytes(const std::string &Text) {
  std::size_t Pos = Text.find("MemTotal:");
  if (Pos == std::string::npos)
    return 0;
  std::istringstream In(Text.substr(Pos + 9));
  uint64_t KiB = 0;
  In >> KiB;
  return KiB * 1024;
}

/// Assembles a "host" topology from probed nodes plus their (already
/// filtered and densely indexed) SLIT matrix. \p Dist is K*K row-major
/// over \p Nodes' order.
Topology assembleHost(const std::vector<ProbedNode> &Nodes,
                      const std::vector<unsigned> &Dist) {
  unsigned K = static_cast<unsigned>(Nodes.size());
  MANTI_CHECK(K > 0, "assembleHost needs at least one node");

  // Topology nodes are uniform: square off to the smallest node.
  unsigned CoresPerNode = static_cast<unsigned>(Nodes[0].Cpus.size());
  for (const ProbedNode &N : Nodes)
    CoresPerNode =
        std::min(CoresPerNode, static_cast<unsigned>(N.Cpus.size()));
  MANTI_CHECK(CoresPerNode > 0, "assembleHost needs cpu-bearing nodes");

  // Full-mesh link graph; per-link bandwidth scales the nominal local
  // figure down by SLIT distance (placeholder until bench_numa_stream
  // measures the machine). Every node is its own package: without
  // firmware package info, sharing a package is a claim the probe cannot
  // back.
  std::vector<unsigned> NodePkg(K);
  for (unsigned N = 0; N < K; ++N)
    NodePkg[N] = N;
  std::vector<Link> Links;
  for (unsigned A = 0; A < K; ++A)
    for (unsigned B = A + 1; B < K; ++B) {
      unsigned D = std::max(Dist[A * K + B], Dist[B * K + A]);
      double GBps = Topology::HostNominalLocalGBps * 10.0 /
                    std::max(D, 11u); // remote: strictly below local
      Links.push_back({A, B, GBps});
    }

  Topology T("host", CoresPerNode, std::move(NodePkg), std::move(Links),
             Topology::HostNominalLocalGBps);

  if (K > 1) {
    // Clean the probed matrix so setDistanceMatrix's invariants hold
    // even against odd firmware: local entries forced to the row-wide
    // strict minimum convention (10), remote entries clamped above it.
    std::vector<unsigned> Clean(Dist);
    for (unsigned A = 0; A < K; ++A) {
      Clean[A * K + A] = 10;
      for (unsigned B = 0; B < K; ++B)
        if (A != B)
          Clean[A * K + B] = std::max(Clean[A * K + B], 11u);
    }
    T.setDistanceMatrix(std::move(Clean));
  }

  std::vector<unsigned> CpuMap;
  CpuMap.reserve(static_cast<std::size_t>(K) * CoresPerNode);
  std::vector<unsigned> OsIds;
  std::vector<uint64_t> MemBytes;
  for (const ProbedNode &N : Nodes) {
    for (unsigned C = 0; C < CoresPerNode; ++C)
      CpuMap.push_back(N.Cpus[C]);
    OsIds.push_back(N.OsId);
    MemBytes.push_back(N.MemBytes);
  }
  T.setCpuMap(std::move(CpuMap));
  T.setOsNodeIds(std::move(OsIds));
  T.setNodeMemoryBytes(std::move(MemBytes));
  return T;
}

#if MANTI_HAVE_LIBNUMA
/// libnuma probe leg. \returns false when the kernel reports no NUMA
/// support (the caller falls through to sysfs).
bool probeLibnuma(std::vector<ProbedNode> &Nodes,
                  std::vector<unsigned> &Dist) {
  if (numa_available() < 0)
    return false;
  int MaxNode = numa_max_node();
  struct bitmask *Mask = numa_allocate_cpumask();
  for (int N = 0; N <= MaxNode; ++N) {
    if (numa_node_to_cpus(N, Mask) != 0)
      continue;
    ProbedNode P;
    P.OsId = static_cast<unsigned>(N);
    for (unsigned C = 0; C < Mask->size; ++C)
      if (numa_bitmask_isbitset(Mask, C))
        P.Cpus.push_back(C);
    if (P.Cpus.empty())
      continue; // memory-only node
    long long Free = 0;
    long long Size = numa_node_size64(N, &Free);
    P.MemBytes = Size > 0 ? static_cast<uint64_t>(Size) : 0;
    Nodes.push_back(std::move(P));
  }
  numa_free_cpumask(Mask);
  if (Nodes.empty())
    return false;
  unsigned K = static_cast<unsigned>(Nodes.size());
  Dist.assign(static_cast<std::size_t>(K) * K, 10);
  for (unsigned A = 0; A < K; ++A)
    for (unsigned B = 0; B < K; ++B) {
      int D = numa_distance(static_cast<int>(Nodes[A].OsId),
                            static_cast<int>(Nodes[B].OsId));
      // numa_distance returns 0 on error; keep the derived default then.
      Dist[A * K + B] = D > 0 ? static_cast<unsigned>(D)
                              : (A == B ? 10u : 20u);
    }
  return true;
}
#endif // MANTI_HAVE_LIBNUMA

/// sysfs probe leg: parse \p Root/node<i>/{cpulist,distance,meminfo}.
/// \returns false when the tree is absent or holds no cpu-bearing node.
bool probeSysfs(const std::string &Root, std::vector<ProbedNode> &Nodes,
                std::vector<unsigned> &Dist) {
  // Which node ids exist? Prefer Root/online (cpulist format); fall back
  // to probing indices, tolerating sparse numbering up to a sane bound.
  std::vector<unsigned> OnlineIds;
  std::string Online;
  if (readFile(Root + "/online", Online)) {
    if (!parseCpuList(Online, OnlineIds))
      return false;
  } else {
    struct stat St;
    for (unsigned N = 0; N < 1024; ++N)
      if (stat((Root + "/node" + std::to_string(N)).c_str(), &St) == 0)
        OnlineIds.push_back(N);
  }
  if (OnlineIds.empty())
    return false;

  // Each node's distance file lists one entry per *online* node, in
  // ascending node-id order -- including memory-only nodes, which we
  // drop. Read everything first, then filter columns.
  struct RawNode {
    unsigned OsId;
    std::vector<unsigned> Cpus;
    std::vector<unsigned> DistRow;
    uint64_t MemBytes;
  };
  std::vector<RawNode> Raw;
  for (unsigned Id : OnlineIds) {
    std::string Dir = Root + "/node" + std::to_string(Id);
    RawNode R;
    R.OsId = Id;
    std::string CpuList;
    if (!readFile(Dir + "/cpulist", CpuList) ||
        !parseCpuList(CpuList, R.Cpus))
      continue;
    std::string DistText;
    if (readFile(Dir + "/distance", DistText)) {
      std::istringstream In(DistText);
      unsigned D;
      while (In >> D)
        R.DistRow.push_back(D);
    }
    std::string MemInfo;
    R.MemBytes =
        readFile(Dir + "/meminfo", MemInfo) ? parseMemInfoBytes(MemInfo) : 0;
    Raw.push_back(std::move(R));
  }

  // Keep cpu-bearing nodes; remember each kept node's index within the
  // online list so distance columns can be selected.
  std::vector<unsigned> KeptOnlineIdx;
  for (std::size_t I = 0; I < Raw.size(); ++I) {
    if (Raw[I].Cpus.empty())
      continue;
    auto It = std::find(OnlineIds.begin(), OnlineIds.end(), Raw[I].OsId);
    KeptOnlineIdx.push_back(static_cast<unsigned>(It - OnlineIds.begin()));
    Nodes.push_back({Raw[I].OsId, Raw[I].Cpus, Raw[I].MemBytes});
  }
  if (Nodes.empty())
    return false;

  unsigned K = static_cast<unsigned>(Nodes.size());
  Dist.assign(static_cast<std::size_t>(K) * K, 10);
  std::size_t RawIdx = 0;
  for (unsigned A = 0; A < K; ++A) {
    // Find A's raw record (Raw holds kept and dropped nodes alike).
    while (Raw[RawIdx].Cpus.empty())
      ++RawIdx;
    const RawNode &R = Raw[RawIdx++];
    for (unsigned B = 0; B < K; ++B) {
      unsigned Col = KeptOnlineIdx[B];
      if (Col < R.DistRow.size())
        Dist[A * K + B] = R.DistRow[Col];
      else
        Dist[A * K + B] = A == B ? 10 : 20; // distance file missing/short
    }
  }
  return true;
}

} // namespace

Topology Topology::hostFromSysfs(const std::string &Root) {
  std::vector<ProbedNode> Nodes;
  std::vector<unsigned> Dist;
  if (probeSysfs(Root, Nodes, Dist))
    return assembleHost(Nodes, Dist);
  return Topology::singleNode(hostCpuCount());
}

Topology Topology::host() {
#if MANTI_HAVE_LIBNUMA
  {
    std::vector<ProbedNode> Nodes;
    std::vector<unsigned> Dist;
    if (probeLibnuma(Nodes, Dist))
      return assembleHost(Nodes, Dist);
  }
#endif
  return hostFromSysfs("/sys/devices/system/node");
}
