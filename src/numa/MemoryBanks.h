//===- numa/MemoryBanks.h - per-node physical memory banks ---------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-node memory banks, in two placement modes.
///
/// Simulated (default): process-heap arenas that carry the *placement
/// metadata* -- a block allocated "on node 3" is recorded in a page map,
/// and every later consumer (the chunk manager's node affinity, the
/// traffic ledger, the machine model) consults that map exactly as the
/// real system would ask the OS which node backs a page. This is how the
/// recorded topologies run on any machine.
///
/// Bound (GCConfig::BindMemory): blocks are mmap'd anonymous arenas and,
/// when the build carries libnuma (MANTI_NUMA=ON) on a NUMA kernel,
/// bound to their node's physical bank with mbind before first touch --
/// the page map then *matches* the OS placement, verifiable through
/// move_pages (MemoryBindTest does exactly that). Without libnuma the
/// mode degrades to unbound mappings: still real placement-by-first-
/// touch, same metadata, nothing downstream changes.
///
/// Blocks are allocated at block granularity (a multiple of the page
/// size) and recycled through per-node, per-size free lists, mirroring
/// how the runtime reuses memory without returning it to the OS.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_NUMA_MEMORYBANKS_H
#define MANTI_NUMA_MEMORYBANKS_H

#include "numa/Topology.h"
#include "support/SpinLock.h"

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace manti {

/// Per-node block allocator plus the address-to-node page map.
class MemoryBanks {
public:
  static constexpr std::size_t PageSize = 4096;

  enum class BindMode {
    Simulated, ///< process-heap arenas, metadata-only placement
    Bound,     ///< mmap arenas, mbind'd to nodes when the host can
  };

  /// \p OsNodeIds maps logical node -> OS node for the Bound mode's
  /// mbind calls (empty = identity); ignored in Simulated mode.
  explicit MemoryBanks(unsigned NumNodes,
                       BindMode Mode = BindMode::Simulated,
                       std::vector<unsigned> OsNodeIds = {});
  ~MemoryBanks();

  MemoryBanks(const MemoryBanks &) = delete;
  MemoryBanks &operator=(const MemoryBanks &) = delete;

  unsigned numNodes() const { return static_cast<unsigned>(Banks.size()); }

  BindMode mode() const { return Mode; }

  /// True when Bound mode can actually mbind: built with libnuma
  /// (MANTI_NUMA=ON) on a NUMA-capable kernel. When false, Bound mode
  /// still mmaps but pages place by first touch.
  static bool canBind();

  /// The OS's answer for which node backs the (touched) page at
  /// \p Addr, via move_pages; -1 when the host cannot tell. Bound-mode
  /// placement is verified by comparing this against nodeOf.
  static int osNodeOf(const void *Addr);

  /// Bytes successfully mbind'd for \p Node (always 0 in Simulated mode
  /// or when canBind() is false).
  uint64_t bytesBound(NodeId Node) const;

  /// Allocates \p Bytes (rounded up to a page multiple) on \p Node,
  /// aligned to \p Align (a power of two >= PageSize; Bytes is rounded up
  /// to a multiple of it). Never returns null; aborts on OOM.
  void *allocBlock(std::size_t Bytes, NodeId Node,
                   std::size_t Align = PageSize);

  /// Returns a block obtained from allocBlock to its node's free list.
  /// \p Bytes and \p Align must match the allocation request.
  void freeBlock(void *Block, std::size_t Bytes,
                 std::size_t Align = PageSize);

  /// \returns the home node of the page containing \p Addr, or -1 if the
  /// address was not allocated from these banks.
  int nodeOf(const void *Addr) const;

  /// Total bytes currently handed out from \p Node (excludes free lists).
  uint64_t bytesInUse(NodeId Node) const;

  /// Total bytes ever reserved from the OS for \p Node.
  uint64_t bytesReserved(NodeId Node) const;

private:
  struct Bank {
    mutable SpinLock Lock;
    /// (size, align) -> stack of recycled blocks of exactly that shape.
    std::map<std::pair<std::size_t, std::size_t>, std::vector<void *>>
        FreeLists;
    uint64_t InUse = 0;
    uint64_t Reserved = 0;
    uint64_t Bound = 0; ///< bytes successfully mbind'd (Bound mode)
  };

  /// One contiguous OS allocation tagged with its home node.
  struct Extent {
    uintptr_t Begin;
    uintptr_t End;
    NodeId Node;
  };

  void *allocFresh(std::size_t Bytes, std::size_t Align, NodeId Node);
  void *mapAligned(std::size_t Bytes, std::size_t Align);

  BindMode Mode;
  std::vector<unsigned> OsNodeIds; ///< logical -> OS node (empty = identity)
  std::vector<Bank> Banks;
  mutable SpinLock ExtentLock;
  std::vector<Extent> Extents; ///< sorted by Begin
};

} // namespace manti

#endif // MANTI_NUMA_MEMORYBANKS_H
