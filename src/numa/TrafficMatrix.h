//===- numa/TrafficMatrix.h - inter-node traffic ledger ------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records bytes moved between NUMA nodes. The collector feeds it on
/// every copy (minor, major, promotion, global) and on benchmark data
/// accesses, so experiments can report how much memory traffic each
/// allocation policy put on each link -- the quantity whose saturation
/// explains Figs. 5-7.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_NUMA_TRAFFICMATRIX_H
#define MANTI_NUMA_TRAFFICMATRIX_H

#include "numa/Topology.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace manti {

class TrafficMatrix {
public:
  explicit TrafficMatrix(unsigned NumNodes);

  unsigned numNodes() const { return NumNodes; }

  /// Records \p Bytes moving from \p From to \p To (self-traffic allowed;
  /// it represents local-bank bandwidth consumption).
  void record(NodeId From, NodeId To, uint64_t Bytes) {
    Cells[From * NumNodes + To].fetch_add(Bytes, std::memory_order_relaxed);
  }

  uint64_t bytes(NodeId From, NodeId To) const {
    return Cells[From * NumNodes + To].load(std::memory_order_relaxed);
  }

  /// Sum over all source nodes of traffic into \p To.
  uint64_t bytesInto(NodeId To) const;

  /// Sum of all off-node (From != To) traffic.
  uint64_t remoteBytes() const;

  /// Sum of all recorded traffic.
  uint64_t totalBytes() const;

  /// Projects the ledger onto a topology's links: returns per-link bytes,
  /// assuming every From->To transfer crosses each link on route(From,To).
  std::vector<uint64_t> perLinkBytes(const Topology &Topo) const;

  void reset();

private:
  unsigned NumNodes;
  std::unique_ptr<std::atomic<uint64_t>[]> Cells;
};

} // namespace manti

#endif // MANTI_NUMA_TRAFFICMATRIX_H
