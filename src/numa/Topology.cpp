//===- numa/Topology.cpp --------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"

#include "support/Assert.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <utility>

using namespace manti;

Topology::Topology(std::string Name, unsigned CoresPerNode,
                   std::vector<unsigned> NodePackage, std::vector<Link> Links,
                   double LocalMemGBps)
    : Name(std::move(Name)), CoresPerNode(CoresPerNode),
      NodePkg(std::move(NodePackage)), Links(std::move(Links)),
      LocalMemGBps(LocalMemGBps) {
  assert(!NodePkg.empty() && "topology needs at least one node");
  assert(CoresPerNode > 0 && "topology needs at least one core per node");
  NumPackages = 0;
  for (unsigned Pkg : NodePkg)
    NumPackages = std::max(NumPackages, Pkg + 1);
  for (const Link &L : this->Links) {
    MANTI_CHECK(L.NodeA < NodePkg.size() && L.NodeB < NodePkg.size(),
                "link references nonexistent node");
    MANTI_CHECK(L.NodeA != L.NodeB, "self link");
    MANTI_CHECK(L.GBps > 0.0, "link bandwidth must be positive");
  }
  computeRoutes();
}

void Topology::computeRoutes() {
  unsigned N = numNodes();
  Routes.assign(static_cast<std::size_t>(N) * N, {});

  // Adjacency: node -> (neighbor, link id), sorted by link id so that
  // breadth-first search explores links deterministically.
  std::vector<std::vector<std::pair<NodeId, LinkId>>> Adj(N);
  for (LinkId Id = 0; Id < Links.size(); ++Id) {
    Adj[Links[Id].NodeA].push_back({Links[Id].NodeB, Id});
    Adj[Links[Id].NodeB].push_back({Links[Id].NodeA, Id});
  }
  for (auto &Neighbors : Adj)
    std::sort(Neighbors.begin(), Neighbors.end(),
              [](const auto &A, const auto &B) { return A.second < B.second; });

  for (NodeId Src = 0; Src < N; ++Src) {
    std::vector<unsigned> Dist(N, std::numeric_limits<unsigned>::max());
    std::vector<LinkId> Via(N, 0);
    std::vector<NodeId> Prev(N, Src);
    Dist[Src] = 0;
    std::deque<NodeId> Queue{Src};
    while (!Queue.empty()) {
      NodeId Cur = Queue.front();
      Queue.pop_front();
      for (auto [Next, LinkIdx] : Adj[Cur]) {
        if (Dist[Next] != std::numeric_limits<unsigned>::max())
          continue;
        Dist[Next] = Dist[Cur] + 1;
        Via[Next] = LinkIdx;
        Prev[Next] = Cur;
        Queue.push_back(Next);
      }
    }
    for (NodeId Dst = 0; Dst < N; ++Dst) {
      if (Dst == Src)
        continue;
      MANTI_CHECK(Dist[Dst] != std::numeric_limits<unsigned>::max(),
                  "topology link graph is disconnected");
      std::vector<LinkId> &Path = Routes[Src * N + Dst];
      for (NodeId Cur = Dst; Cur != Src; Cur = Prev[Cur])
        Path.push_back(Via[Cur]);
      std::reverse(Path.begin(), Path.end());
    }
  }

  // Default SLIT matrix derived from link hops (10 local, +10 per hop):
  // monotone in hops, so distance-based tiers equal the old hop-based
  // tiers on recorded machines. Host probes overwrite it.
  Distances.assign(static_cast<std::size_t>(N) * N, 10);
  for (NodeId Src = 0; Src < N; ++Src)
    for (NodeId Dst = 0; Dst < N; ++Dst)
      Distances[Src * N + Dst] = 10 + 10 * hopCount(Src, Dst);
}

void Topology::setDistanceMatrix(std::vector<unsigned> Dist) {
  unsigned N = numNodes();
  MANTI_CHECK(Dist.size() == static_cast<std::size_t>(N) * N,
              "distance matrix must be numNodes x numNodes");
  // Symmetrize: SLIT tables are symmetric in practice, but a probe that
  // reads the two directions from different rows should not hand the
  // scheduler an asymmetric tier structure.
  for (NodeId A = 0; A < N; ++A)
    for (NodeId B = A + 1; B < N; ++B) {
      unsigned D = std::max(Dist[A * N + B], Dist[B * N + A]);
      Dist[A * N + B] = Dist[B * N + A] = D;
    }
  for (NodeId A = 0; A < N; ++A) {
    MANTI_CHECK(Dist[A * N + A] > 0, "local distance must be positive");
    for (NodeId B = 0; B < N; ++B)
      MANTI_CHECK(A == B || Dist[A * N + B] > Dist[A * N + A],
                  "remote distance must exceed the local distance");
  }
  Distances = std::move(Dist);
}

void Topology::setCpuMap(std::vector<unsigned> OsCpus) {
  MANTI_CHECK(OsCpus.size() == numCores(),
              "cpu map must cover every logical core");
  std::vector<unsigned> Sorted = OsCpus;
  std::sort(Sorted.begin(), Sorted.end());
  MANTI_CHECK(std::adjacent_find(Sorted.begin(), Sorted.end()) ==
                  Sorted.end(),
              "cpu map entries must be unique OS cpus");
  CpuMap = std::move(OsCpus);
}

void Topology::setOsNodeIds(std::vector<unsigned> Ids) {
  MANTI_CHECK(Ids.size() == numNodes(), "OS node map must cover every node");
  OsNodeIds = std::move(Ids);
}

void Topology::setNodeMemoryBytes(std::vector<uint64_t> Bytes) {
  MANTI_CHECK(Bytes.size() == numNodes(),
              "memory sizes must cover every node");
  MemBytes = std::move(Bytes);
}

double Topology::pathGBps(NodeId From, NodeId To) const {
  double Bw = LocalMemGBps;
  for (LinkId Id : route(From, To))
    Bw = std::min(Bw, Links[Id].GBps);
  return Bw;
}

std::vector<CoreId> Topology::assignVProcsSparsely(unsigned NumVProcs) const {
  MANTI_CHECK(NumVProcs <= numCores(), "more vprocs than cores");
  std::vector<CoreId> Cores;
  Cores.reserve(NumVProcs);
  // Round-robin over nodes; the i-th visit to a node takes its i-th core.
  std::vector<unsigned> UsedOnNode(numNodes(), 0);
  NodeId Node = 0;
  while (Cores.size() < NumVProcs) {
    if (UsedOnNode[Node] < CoresPerNode) {
      Cores.push_back(Node * CoresPerNode + UsedOnNode[Node]);
      ++UsedOnNode[Node];
    }
    Node = (Node + 1) % numNodes();
  }
  return Cores;
}

std::vector<std::vector<NodeId>> Topology::nodesByDistance(NodeId From) const {
  // Bucket nodes by SLIT distance. Unlike hop counts, probed distances
  // are neither small nor contiguous (e.g. 10/16/22/28 on a real EPYC),
  // so sort the distinct values and bucket against them; iterating To in
  // id order keeps nodes within a tier in id order.
  std::vector<unsigned> Cuts;
  Cuts.reserve(numNodes());
  for (NodeId To = 0; To < numNodes(); ++To)
    Cuts.push_back(distance(From, To));
  std::sort(Cuts.begin(), Cuts.end());
  Cuts.erase(std::unique(Cuts.begin(), Cuts.end()), Cuts.end());

  std::vector<std::vector<NodeId>> Buckets(Cuts.size());
  for (NodeId To = 0; To < numNodes(); ++To) {
    auto It = std::lower_bound(Cuts.begin(), Cuts.end(), distance(From, To));
    Buckets[static_cast<std::size_t>(It - Cuts.begin())].push_back(To);
  }
  return Buckets;
}

Topology Topology::amdMagnyCours48() {
  // Four G34 packages; each package holds two 6-core dies (nodes).
  // Node numbering: package P contributes nodes 2P and 2P+1.
  std::vector<unsigned> NodePkg(8);
  for (unsigned Node = 0; Node < 8; ++Node)
    NodePkg[Node] = Node / 2;

  // Table 1: local memory 21.3 GB/s; the two dies in one package share a
  // 16-bit + 8-bit HT3 pair (19.2 GB/s); dies in different packages are
  // joined by single 8-bit HT3 links (6.4 GB/s). Each die has three
  // remote links, one per other package (Fig. 8); the exact die-to-die
  // wiring below balances link endpoints so every die gets three.
  std::vector<Link> Links;
  for (unsigned Pkg = 0; Pkg < 4; ++Pkg)
    Links.push_back({2 * Pkg, 2 * Pkg + 1, 19.2});
  for (unsigned P = 0; P < 4; ++P) {
    for (unsigned Q = P + 1; Q < 4; ++Q) {
      unsigned Flip = (P + Q) % 2;
      Links.push_back({2 * P + 0, 2 * Q + Flip, 6.4});
      Links.push_back({2 * P + 1, 2 * Q + (1 - Flip), 6.4});
    }
  }
  return Topology("amd48", /*CoresPerNode=*/6, std::move(NodePkg),
                  std::move(Links), /*LocalMemGBps=*/21.3);
}

Topology Topology::intelXeon32() {
  // Four X7560 packages, one node each, fully connected by QPI
  // (25.6 GB/s); two DDR3-1066 risers give 17.1 GB/s local (Table 1).
  std::vector<unsigned> NodePkg = {0, 1, 2, 3};
  std::vector<Link> Links;
  for (unsigned A = 0; A < 4; ++A)
    for (unsigned B = A + 1; B < 4; ++B)
      Links.push_back({A, B, 25.6});
  return Topology("intel32", /*CoresPerNode=*/8, std::move(NodePkg),
                  std::move(Links), /*LocalMemGBps=*/17.1);
}

Topology Topology::uniform(unsigned Nodes, unsigned CoresPerNode,
                           double LocalGBps, double RemoteGBps) {
  std::vector<unsigned> NodePkg(Nodes);
  for (unsigned Node = 0; Node < Nodes; ++Node)
    NodePkg[Node] = Node;
  std::vector<Link> Links;
  for (unsigned A = 0; A < Nodes; ++A)
    for (unsigned B = A + 1; B < Nodes; ++B)
      Links.push_back({A, B, RemoteGBps});
  return Topology("uniform", CoresPerNode, std::move(NodePkg),
                  std::move(Links), LocalGBps);
}

Topology Topology::singleNode(unsigned Cores) {
  return Topology("single", Cores, {0}, {}, 20.0);
}
