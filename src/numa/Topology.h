//===- numa/Topology.h - NUMA machine description ------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes a NUMA machine: nodes grouped into packages, cores per node,
/// the inter-node link graph with per-link bandwidth, and per-node memory
/// controller bandwidth. Two factory functions reproduce the paper's
/// Appendix A hardware: the 48-core AMD "Magny Cours" (Fig. 8, four G34
/// packages of two 6-core nodes, HyperTransport 3 links) and the 32-core
/// Intel Xeon X7560 (Fig. 9, four 8-core nodes fully connected by QPI).
/// Bandwidths are the theoretical figures from Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_NUMA_TOPOLOGY_H
#define MANTI_NUMA_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

namespace manti {

using NodeId = unsigned;
using CoreId = unsigned;
using LinkId = unsigned;

/// One bidirectional inter-node link with a per-direction bandwidth.
struct Link {
  NodeId NodeA;
  NodeId NodeB;
  double GBps; ///< bandwidth per direction, GB/s
};

/// An immutable NUMA machine description.
class Topology {
public:
  /// Builds a topology. \p NodePackage maps each node to its package;
  /// \p Links lists the inter-node links; \p LocalMemGBps is the per-node
  /// memory-controller bandwidth.
  Topology(std::string Name, unsigned CoresPerNode,
           std::vector<unsigned> NodePackage, std::vector<Link> Links,
           double LocalMemGBps);

  const std::string &name() const { return Name; }
  unsigned numNodes() const { return static_cast<unsigned>(NodePkg.size()); }
  unsigned numCores() const { return numNodes() * CoresPerNode; }
  unsigned coresPerNode() const { return CoresPerNode; }
  unsigned numPackages() const { return NumPackages; }
  unsigned numLinks() const { return static_cast<unsigned>(Links.size()); }

  NodeId nodeOfCore(CoreId Core) const { return Core / CoresPerNode; }
  unsigned packageOfNode(NodeId Node) const { return NodePkg[Node]; }
  bool samePackage(NodeId A, NodeId B) const {
    return NodePkg[A] == NodePkg[B];
  }

  const Link &link(LinkId Id) const { return Links[Id]; }

  /// Per-node local memory-controller bandwidth (Table 1 "Local Memory").
  double localMemoryGBps() const { return LocalMemGBps; }

  /// \returns the precomputed link route from \p From to \p To (empty when
  /// From == To). Routes are shortest paths, ties broken by lowest LinkId,
  /// so routing is deterministic.
  const std::vector<LinkId> &route(NodeId From, NodeId To) const {
    return Routes[From * numNodes() + To];
  }

  /// Number of link hops between two nodes (0 for the same node).
  unsigned hopCount(NodeId From, NodeId To) const {
    return static_cast<unsigned>(route(From, To).size());
  }

  /// Theoretical bandwidth available from a core on \p From to memory on
  /// \p To: the minimum of the memory-controller bandwidth and every link
  /// along the route (Table 1's three rows fall out of this).
  double pathGBps(NodeId From, NodeId To) const;

  /// Assigns \p NumVProcs vprocs to cores "sparsely across the nodes to
  /// minimize contention on the node-shared L3" (paper Section 2.2):
  /// round-robin over nodes, filling each node's cores in order.
  std::vector<CoreId> assignVProcsSparsely(unsigned NumVProcs) const;

  /// Groups all nodes into proximity tiers as seen from \p From: tier 0
  /// is {From} itself, and each following tier holds the nodes at the
  /// next-larger link-hop distance (nodes within a tier are in id order).
  /// The scheduler walks these tiers when choosing steal victims.
  std::vector<std::vector<NodeId>> nodesByDistance(NodeId From) const;

  /// The 48-core AMD Opteron 6172 machine of Appendix A.1.
  static Topology amdMagnyCours48();

  /// The 32-core Intel Xeon X7560 machine of Appendix A.2.
  static Topology intelXeon32();

  /// A uniform machine: \p Nodes nodes of \p CoresPerNode cores, fully
  /// connected with \p RemoteGBps links and \p LocalGBps local memory.
  static Topology uniform(unsigned Nodes, unsigned CoresPerNode,
                          double LocalGBps = 20.0, double RemoteGBps = 10.0);

  /// A single-node machine (no NUMA effects) with \p Cores cores.
  static Topology singleNode(unsigned Cores);

private:
  void computeRoutes();

  std::string Name;
  unsigned CoresPerNode;
  unsigned NumPackages;
  std::vector<unsigned> NodePkg; ///< node -> package
  std::vector<Link> Links;
  double LocalMemGBps;
  /// Routes[From * N + To] = link ids along the shortest path.
  std::vector<std::vector<LinkId>> Routes;
};

} // namespace manti

#endif // MANTI_NUMA_TOPOLOGY_H
