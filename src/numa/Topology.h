//===- numa/Topology.h - NUMA machine description ------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes a NUMA machine: nodes grouped into packages, cores per node,
/// the inter-node link graph with per-link bandwidth, and per-node memory
/// controller bandwidth. Two factory functions reproduce the paper's
/// Appendix A hardware: the 48-core AMD "Magny Cours" (Fig. 8, four G34
/// packages of two 6-core nodes, HyperTransport 3 links) and the 32-core
/// Intel Xeon X7560 (Fig. 9, four 8-core nodes fully connected by QPI).
/// Bandwidths are the theoretical figures from Table 1.
///
/// A third family of factories describes the *running* machine:
/// Topology::host() probes the OS (libnuma when built with MANTI_NUMA,
/// else the Linux sysfs node tree) and carries three extra pieces of
/// metadata the recorded machines synthesize -- an ACPI-SLIT-style
/// node-distance matrix, a core -> OS-cpu map for thread pinning, and
/// OS node ids for page binding. When the probe finds nothing (UMA
/// machine, non-Linux host) it degrades to the single-node topology, so
/// every consumer works unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_NUMA_TOPOLOGY_H
#define MANTI_NUMA_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

namespace manti {

using NodeId = unsigned;
using CoreId = unsigned;
using LinkId = unsigned;

/// One bidirectional inter-node link with a per-direction bandwidth.
struct Link {
  NodeId NodeA;
  NodeId NodeB;
  double GBps; ///< bandwidth per direction, GB/s
};

/// An immutable NUMA machine description.
class Topology {
public:
  /// Builds a topology. \p NodePackage maps each node to its package;
  /// \p Links lists the inter-node links; \p LocalMemGBps is the per-node
  /// memory-controller bandwidth.
  Topology(std::string Name, unsigned CoresPerNode,
           std::vector<unsigned> NodePackage, std::vector<Link> Links,
           double LocalMemGBps);

  const std::string &name() const { return Name; }
  unsigned numNodes() const { return static_cast<unsigned>(NodePkg.size()); }
  unsigned numCores() const { return numNodes() * CoresPerNode; }
  unsigned coresPerNode() const { return CoresPerNode; }
  unsigned numPackages() const { return NumPackages; }
  unsigned numLinks() const { return static_cast<unsigned>(Links.size()); }

  NodeId nodeOfCore(CoreId Core) const { return Core / CoresPerNode; }
  unsigned packageOfNode(NodeId Node) const { return NodePkg[Node]; }
  bool samePackage(NodeId A, NodeId B) const {
    return NodePkg[A] == NodePkg[B];
  }

  const Link &link(LinkId Id) const { return Links[Id]; }

  /// Per-node local memory-controller bandwidth (Table 1 "Local Memory").
  double localMemoryGBps() const { return LocalMemGBps; }

  /// \returns the precomputed link route from \p From to \p To (empty when
  /// From == To). Routes are shortest paths, ties broken by lowest LinkId,
  /// so routing is deterministic.
  const std::vector<LinkId> &route(NodeId From, NodeId To) const {
    return Routes[From * numNodes() + To];
  }

  /// ACPI-SLIT-style relative distance from \p From to \p To: 10 for the
  /// local node, larger for remoter ones. Recorded topologies derive
  /// 10 + 10 * hopCount from the link graph; host topologies carry the
  /// matrix the firmware reported (numa_distance / sysfs), so the
  /// scheduler's proximity tiers follow the machine's own view.
  unsigned distance(NodeId From, NodeId To) const {
    return Distances[From * numNodes() + To];
  }

  /// Number of link hops between two nodes (0 for the same node).
  unsigned hopCount(NodeId From, NodeId To) const {
    return static_cast<unsigned>(route(From, To).size());
  }

  /// Theoretical bandwidth available from a core on \p From to memory on
  /// \p To: the minimum of the memory-controller bandwidth and every link
  /// along the route (Table 1's three rows fall out of this).
  double pathGBps(NodeId From, NodeId To) const;

  /// Assigns \p NumVProcs vprocs to cores "sparsely across the nodes to
  /// minimize contention on the node-shared L3" (paper Section 2.2):
  /// round-robin over nodes, filling each node's cores in order.
  std::vector<CoreId> assignVProcsSparsely(unsigned NumVProcs) const;

  /// Groups all nodes into proximity tiers as seen from \p From: tier 0
  /// is {From} itself, and each following tier holds the nodes at the
  /// next-larger SLIT distance (nodes within a tier are in id order).
  /// For recorded topologies the derived distances make this identical
  /// to bucketing by link hops. The scheduler walks these tiers when
  /// choosing steal victims.
  std::vector<std::vector<NodeId>> nodesByDistance(NodeId From) const;

  //===--------------------------------------------------------------------===//
  // Host-probe metadata (set by Topology::host(); identity defaults
  // everywhere else, so recorded topologies behave exactly as before).
  //===--------------------------------------------------------------------===//

  /// True when a probed core -> OS-cpu map is attached (host topologies).
  bool hasCpuMap() const { return !CpuMap.empty(); }

  /// The OS cpu id backing logical core \p Core (identity without a
  /// probed map). Thread pinning uses this, so vprocs land on the cpus
  /// the probe saw rather than on `core % hardware_concurrency`.
  unsigned osCpuOfCore(CoreId Core) const {
    return CpuMap.empty() ? Core : CpuMap[Core];
  }

  /// The OS NUMA node id backing logical node \p Node (identity without
  /// a probed map). Page binding (mbind) needs OS ids because sysfs node
  /// numbering can be sparse.
  unsigned osNodeOfNode(NodeId Node) const {
    return OsNodeIds.empty() ? Node : OsNodeIds[Node];
  }

  /// Bytes of physical memory attached to \p Node (0 = unknown; only
  /// host topologies carry sizes).
  uint64_t memoryBytes(NodeId Node) const {
    return MemBytes.empty() ? 0 : MemBytes[Node];
  }

  /// Installs a probed N*N row-major distance matrix. Entries are
  /// symmetrized (max of the two directions); each diagonal entry must
  /// be its row's strict minimum. Replaces the hop-derived default.
  void setDistanceMatrix(std::vector<unsigned> Dist);

  /// Attaches the core -> OS-cpu map (size numCores, entries unique).
  void setCpuMap(std::vector<unsigned> OsCpus);

  /// Attaches the node -> OS-node-id map (size numNodes).
  void setOsNodeIds(std::vector<unsigned> Ids);

  /// Attaches per-node physical memory sizes (size numNodes).
  void setNodeMemoryBytes(std::vector<uint64_t> Bytes);

  /// The 48-core AMD Opteron 6172 machine of Appendix A.1.
  static Topology amdMagnyCours48();

  /// The 32-core Intel Xeon X7560 machine of Appendix A.2.
  static Topology intelXeon32();

  /// A uniform machine: \p Nodes nodes of \p CoresPerNode cores, fully
  /// connected with \p RemoteGBps links and \p LocalGBps local memory.
  static Topology uniform(unsigned Nodes, unsigned CoresPerNode,
                          double LocalGBps = 20.0, double RemoteGBps = 10.0);

  /// A single-node machine (no NUMA effects) with \p Cores cores.
  static Topology singleNode(unsigned Cores);

  /// The machine this process is running on (HostTopology.cpp): probed
  /// through libnuma when the build found it (MANTI_NUMA=ON), else
  /// through the Linux sysfs node tree, else a single-node fallback
  /// sized by std::thread::hardware_concurrency(). Host topologies are
  /// named "host", carry the probe metadata above, and synthesize a
  /// full-mesh link graph whose per-link bandwidth scales the nominal
  /// local figure down by SLIT distance -- placeholders until
  /// bench_numa_stream measures the real numbers.
  static Topology host();

  /// The sysfs leg of host(), probing \p Root (normally
  /// /sys/devices/system/node). Exposed so tests can point it at a fake
  /// node tree; falls back to the single-node topology when \p Root is
  /// missing or holds no cpu-bearing nodes.
  static Topology hostFromSysfs(const std::string &Root);

  /// Nominal local-memory bandwidth assumed for host topologies before
  /// calibration (the stream bench replaces assumptions with
  /// measurements).
  static constexpr double HostNominalLocalGBps = 20.0;

private:
  void computeRoutes();

  std::string Name;
  unsigned CoresPerNode;
  unsigned NumPackages;
  std::vector<unsigned> NodePkg; ///< node -> package
  std::vector<Link> Links;
  double LocalMemGBps;
  /// Routes[From * N + To] = link ids along the shortest path.
  std::vector<std::vector<LinkId>> Routes;
  /// Distances[From * N + To] = SLIT distance (derived or probed).
  std::vector<unsigned> Distances;
  std::vector<unsigned> CpuMap;    ///< core -> OS cpu (empty = identity)
  std::vector<unsigned> OsNodeIds; ///< node -> OS node (empty = identity)
  std::vector<uint64_t> MemBytes;  ///< node -> bytes (empty = unknown)
};

} // namespace manti

#endif // MANTI_NUMA_TOPOLOGY_H
