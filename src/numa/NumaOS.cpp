//===- numa/NumaOS.cpp ----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/NumaOS.h"

#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>

#if MANTI_HAVE_LIBNUMA
#include <numa.h>
#include <numaif.h>
#endif

using namespace manti;

bool numaos::available() {
#if MANTI_HAVE_LIBNUMA
  static const bool Avail = numa_available() >= 0;
  return Avail;
#else
  return false;
#endif
}

int numaos::maxOsNode() {
#if MANTI_HAVE_LIBNUMA
  if (available())
    return numa_max_node();
#endif
  return -1;
}

void *numaos::mapPages(std::size_t Bytes) {
  void *Mem = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return Mem == MAP_FAILED ? nullptr : Mem;
}

void numaos::unmapPages(void *Addr, std::size_t Bytes) {
  ::munmap(Addr, Bytes);
}

bool numaos::bindToOsNode(void *Addr, std::size_t Bytes, unsigned OsNode) {
#if MANTI_HAVE_LIBNUMA
  if (!available() || static_cast<int>(OsNode) > numa_max_node())
    return false;
  // numa_tonode_memory has no error return; issue the mbind directly so
  // failure (e.g. no CAP_SYS_NICE for foreign policies, offlined node)
  // is visible to the caller.
  struct bitmask *Mask = numa_allocate_nodemask();
  numa_bitmask_setbit(Mask, OsNode);
  long Rc = mbind(Addr, Bytes, MPOL_BIND, Mask->maskp, Mask->size + 1, 0);
  numa_free_nodemask(Mask);
  return Rc == 0;
#else
  (void)Addr;
  (void)Bytes;
  (void)OsNode;
  return false;
#endif
}

bool numaos::interleaveAllNodes(void *Addr, std::size_t Bytes) {
#if MANTI_HAVE_LIBNUMA
  if (!available())
    return false;
  struct bitmask *Mask = numa_get_mems_allowed();
  long Rc = mbind(Addr, Bytes, MPOL_INTERLEAVE, Mask->maskp, Mask->size + 1,
                  0);
  numa_bitmask_free(Mask);
  return Rc == 0;
#else
  (void)Addr;
  (void)Bytes;
  return false;
#endif
}

int numaos::osNodeOfPage(const void *Addr) {
#if MANTI_HAVE_LIBNUMA
  if (!available())
    return -1;
  void *Page = const_cast<void *>(Addr);
  int Status = -1;
  if (move_pages(0, 1, &Page, nullptr, &Status, 0) != 0)
    return -1;
  return Status >= 0 ? Status : -1;
#else
  (void)Addr;
  return -1;
#endif
}

bool numaos::pinThisThread(unsigned OsCpu) {
  cpu_set_t Set;
  CPU_ZERO(&Set);
  if (OsCpu >= CPU_SETSIZE)
    return false;
  CPU_SET(OsCpu, &Set);
  return pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set) == 0;
}
