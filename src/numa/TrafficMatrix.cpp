//===- numa/TrafficMatrix.cpp ---------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/TrafficMatrix.h"

#include "support/Assert.h"

using namespace manti;

TrafficMatrix::TrafficMatrix(unsigned NumNodes)
    : NumNodes(NumNodes),
      Cells(new std::atomic<uint64_t>[static_cast<std::size_t>(NumNodes) *
                                      NumNodes]) {
  MANTI_CHECK(NumNodes > 0, "traffic matrix needs at least one node");
  reset();
}

uint64_t TrafficMatrix::bytesInto(NodeId To) const {
  uint64_t Sum = 0;
  for (NodeId From = 0; From < NumNodes; ++From)
    Sum += bytes(From, To);
  return Sum;
}

uint64_t TrafficMatrix::remoteBytes() const {
  uint64_t Sum = 0;
  for (NodeId From = 0; From < NumNodes; ++From)
    for (NodeId To = 0; To < NumNodes; ++To)
      if (From != To)
        Sum += bytes(From, To);
  return Sum;
}

uint64_t TrafficMatrix::totalBytes() const {
  uint64_t Sum = 0;
  for (NodeId From = 0; From < NumNodes; ++From)
    for (NodeId To = 0; To < NumNodes; ++To)
      Sum += bytes(From, To);
  return Sum;
}

std::vector<uint64_t> TrafficMatrix::perLinkBytes(const Topology &Topo) const {
  MANTI_CHECK(Topo.numNodes() == NumNodes,
              "topology node count does not match traffic matrix");
  std::vector<uint64_t> PerLink(Topo.numLinks(), 0);
  for (NodeId From = 0; From < NumNodes; ++From) {
    for (NodeId To = 0; To < NumNodes; ++To) {
      uint64_t B = bytes(From, To);
      if (B == 0 || From == To)
        continue;
      for (LinkId Id : Topo.route(From, To))
        PerLink[Id] += B;
    }
  }
  return PerLink;
}

void TrafficMatrix::reset() {
  for (std::size_t I = 0; I < static_cast<std::size_t>(NumNodes) * NumNodes;
       ++I)
    Cells[I].store(0, std::memory_order_relaxed);
}
