//===- numa/MemoryBanks.cpp -----------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/MemoryBanks.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>

using namespace manti;

MemoryBanks::MemoryBanks(unsigned NumNodes) : Banks(NumNodes) {
  MANTI_CHECK(NumNodes > 0, "memory banks need at least one node");
}

MemoryBanks::~MemoryBanks() {
  std::lock_guard<SpinLock> Lock(ExtentLock);
  for (const Extent &E : Extents)
    std::free(reinterpret_cast<void *>(E.Begin));
}

void *MemoryBanks::allocFresh(std::size_t Bytes, std::size_t Align,
                              NodeId Node) {
  void *Mem = std::aligned_alloc(Align, Bytes);
  MANTI_CHECK(Mem, "out of memory in MemoryBanks");
  Banks[Node].Reserved += Bytes;

  uintptr_t Begin = reinterpret_cast<uintptr_t>(Mem);
  Extent E{Begin, Begin + Bytes, Node};
  std::lock_guard<SpinLock> Lock(ExtentLock);
  auto It = std::lower_bound(
      Extents.begin(), Extents.end(), E,
      [](const Extent &A, const Extent &B) { return A.Begin < B.Begin; });
  Extents.insert(It, E);
  return Mem;
}

void *MemoryBanks::allocBlock(std::size_t Bytes, NodeId Node,
                              std::size_t Align) {
  MANTI_CHECK(Node < Banks.size(), "allocBlock: bad node");
  MANTI_CHECK(Align >= PageSize && isPowerOf2(Align),
              "alignment must be a power of two >= the page size");
  Bytes = alignTo(alignTo(Bytes, PageSize), Align);
  Bank &B = Banks[Node];
  {
    std::lock_guard<SpinLock> Lock(B.Lock);
    auto It = B.FreeLists.find({Bytes, Align});
    if (It != B.FreeLists.end() && !It->second.empty()) {
      void *Block = It->second.back();
      It->second.pop_back();
      B.InUse += Bytes;
      return Block;
    }
    B.InUse += Bytes;
  }
  return allocFresh(Bytes, Align, Node);
}

void MemoryBanks::freeBlock(void *Block, std::size_t Bytes,
                            std::size_t Align) {
  Bytes = alignTo(alignTo(Bytes, PageSize), Align);
  int Node = nodeOf(Block);
  MANTI_CHECK(Node >= 0, "freeBlock: block not owned by these banks");
  Bank &B = Banks[static_cast<unsigned>(Node)];
  std::lock_guard<SpinLock> Lock(B.Lock);
  B.FreeLists[{Bytes, Align}].push_back(Block);
  B.InUse -= Bytes;
}

int MemoryBanks::nodeOf(const void *Addr) const {
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  std::lock_guard<SpinLock> Lock(ExtentLock);
  // Find the first extent with Begin > A, then step back.
  auto It = std::upper_bound(
      Extents.begin(), Extents.end(), A,
      [](uintptr_t Value, const Extent &E) { return Value < E.Begin; });
  if (It == Extents.begin())
    return -1;
  --It;
  if (A < It->End)
    return static_cast<int>(It->Node);
  return -1;
}

uint64_t MemoryBanks::bytesInUse(NodeId Node) const {
  const Bank &B = Banks[Node];
  std::lock_guard<SpinLock> Lock(B.Lock);
  return B.InUse;
}

uint64_t MemoryBanks::bytesReserved(NodeId Node) const {
  const Bank &B = Banks[Node];
  std::lock_guard<SpinLock> Lock(B.Lock);
  return B.Reserved;
}
