//===- numa/MemoryBanks.cpp -----------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/MemoryBanks.h"

#include "numa/NumaOS.h"
#include "support/Assert.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <utility>

using namespace manti;

MemoryBanks::MemoryBanks(unsigned NumNodes, BindMode Mode,
                         std::vector<unsigned> OsNodeIds)
    : Mode(Mode), OsNodeIds(std::move(OsNodeIds)), Banks(NumNodes) {
  MANTI_CHECK(NumNodes > 0, "memory banks need at least one node");
  MANTI_CHECK(this->OsNodeIds.empty() || this->OsNodeIds.size() == NumNodes,
              "OS node map must cover every node");
}

MemoryBanks::~MemoryBanks() {
  std::lock_guard<SpinLock> Lock(ExtentLock);
  for (const Extent &E : Extents) {
    if (Mode == BindMode::Bound)
      numaos::unmapPages(reinterpret_cast<void *>(E.Begin), E.End - E.Begin);
    else
      std::free(reinterpret_cast<void *>(E.Begin));
  }
}

bool MemoryBanks::canBind() { return numaos::available(); }

int MemoryBanks::osNodeOf(const void *Addr) {
  return numaos::osNodeOfPage(Addr);
}

uint64_t MemoryBanks::bytesBound(NodeId Node) const {
  const Bank &B = Banks[Node];
  std::lock_guard<SpinLock> Lock(B.Lock);
  return B.Bound;
}

/// mmap is page-granular; for larger alignments over-map by Align and
/// trim the head and tail back to the kernel so the extent is exactly
/// the aligned block.
void *MemoryBanks::mapAligned(std::size_t Bytes, std::size_t Align) {
  if (Align <= PageSize)
    return numaos::mapPages(Bytes);
  void *Raw = numaos::mapPages(Bytes + Align);
  if (!Raw)
    return nullptr;
  uintptr_t Base = reinterpret_cast<uintptr_t>(Raw);
  uintptr_t Aligned = alignTo(Base, Align);
  if (Aligned != Base)
    numaos::unmapPages(Raw, Aligned - Base);
  std::size_t Tail = (Base + Bytes + Align) - (Aligned + Bytes);
  if (Tail)
    numaos::unmapPages(reinterpret_cast<void *>(Aligned + Bytes), Tail);
  return reinterpret_cast<void *>(Aligned);
}

void *MemoryBanks::allocFresh(std::size_t Bytes, std::size_t Align,
                              NodeId Node) {
  void *Mem;
  if (Mode == BindMode::Bound) {
    Mem = mapAligned(Bytes, Align);
    MANTI_CHECK(Mem, "out of memory in MemoryBanks (mmap)");
    // Bind before first touch so every page faults in on its home
    // node's physical bank. Failure (no libnuma, UMA kernel, offlined
    // node) leaves a plain first-touch mapping -- the degradation mode.
    unsigned OsNode = OsNodeIds.empty() ? Node : OsNodeIds[Node];
    if (numaos::bindToOsNode(Mem, Bytes, OsNode))
      Banks[Node].Bound += Bytes;
  } else {
    Mem = std::aligned_alloc(Align, Bytes);
    MANTI_CHECK(Mem, "out of memory in MemoryBanks");
  }
  Banks[Node].Reserved += Bytes;

  uintptr_t Begin = reinterpret_cast<uintptr_t>(Mem);
  Extent E{Begin, Begin + Bytes, Node};
  std::lock_guard<SpinLock> Lock(ExtentLock);
  auto It = std::lower_bound(
      Extents.begin(), Extents.end(), E,
      [](const Extent &A, const Extent &B) { return A.Begin < B.Begin; });
  Extents.insert(It, E);
  return Mem;
}

void *MemoryBanks::allocBlock(std::size_t Bytes, NodeId Node,
                              std::size_t Align) {
  MANTI_CHECK(Node < Banks.size(), "allocBlock: bad node");
  MANTI_CHECK(Align >= PageSize && isPowerOf2(Align),
              "alignment must be a power of two >= the page size");
  Bytes = alignTo(alignTo(Bytes, PageSize), Align);
  Bank &B = Banks[Node];
  {
    std::lock_guard<SpinLock> Lock(B.Lock);
    auto It = B.FreeLists.find({Bytes, Align});
    if (It != B.FreeLists.end() && !It->second.empty()) {
      void *Block = It->second.back();
      It->second.pop_back();
      B.InUse += Bytes;
      return Block;
    }
    B.InUse += Bytes;
  }
  return allocFresh(Bytes, Align, Node);
}

void MemoryBanks::freeBlock(void *Block, std::size_t Bytes,
                            std::size_t Align) {
  Bytes = alignTo(alignTo(Bytes, PageSize), Align);
  int Node = nodeOf(Block);
  MANTI_CHECK(Node >= 0, "freeBlock: block not owned by these banks");
  Bank &B = Banks[static_cast<unsigned>(Node)];
  std::lock_guard<SpinLock> Lock(B.Lock);
  B.FreeLists[{Bytes, Align}].push_back(Block);
  B.InUse -= Bytes;
}

int MemoryBanks::nodeOf(const void *Addr) const {
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  std::lock_guard<SpinLock> Lock(ExtentLock);
  // Find the first extent with Begin > A, then step back.
  auto It = std::upper_bound(
      Extents.begin(), Extents.end(), A,
      [](uintptr_t Value, const Extent &E) { return Value < E.Begin; });
  if (It == Extents.begin())
    return -1;
  --It;
  if (A < It->End)
    return static_cast<int>(It->Node);
  return -1;
}

uint64_t MemoryBanks::bytesInUse(NodeId Node) const {
  const Bank &B = Banks[Node];
  std::lock_guard<SpinLock> Lock(B.Lock);
  return B.InUse;
}

uint64_t MemoryBanks::bytesReserved(NodeId Node) const {
  const Bank &B = Banks[Node];
  std::lock_guard<SpinLock> Lock(B.Lock);
  return B.Reserved;
}
