//===- numa/NumaOS.h - thin OS layer for real page placement -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place that talks to the OS about NUMA: anonymous page
/// mappings, mbind-style node binding, move_pages placement queries, and
/// thread-to-cpu pinning. Everything libnuma-specific is compiled only
/// under MANTI_HAVE_LIBNUMA (the MANTI_NUMA=ON CMake option found
/// numa.h); without it the binding/query entry points report
/// "unsupported" and callers degrade -- MemoryBanks falls back to plain
/// mappings, tests GTEST_SKIP, the stream bench labels its rows unbound.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_NUMA_NUMAOS_H
#define MANTI_NUMA_NUMAOS_H

#include <cstddef>

namespace manti::numaos {

/// True when the binary was built against libnuma AND the kernel
/// reports a NUMA API (numa_available() >= 0). All binding and query
/// calls below are no-ops returning failure when this is false.
bool available();

/// Largest OS node id (numa_max_node), or -1 when unavailable.
int maxOsNode();

/// Maps \p Bytes of anonymous read-write pages (nullptr on failure).
/// Works without libnuma; this is how real-placement arenas are carved
/// even on UMA machines.
void *mapPages(std::size_t Bytes);
void unmapPages(void *Addr, std::size_t Bytes);

/// Binds [Addr, Addr+Bytes) to OS node \p OsNode (numa_tonode_memory).
/// Call before first touch so pages fault in on the right node.
/// \returns false when unsupported or the call failed.
bool bindToOsNode(void *Addr, std::size_t Bytes, unsigned OsNode);

/// Interleaves [Addr, Addr+Bytes) page-round-robin across all nodes.
bool interleaveAllNodes(void *Addr, std::size_t Bytes);

/// The OS node currently backing the (touched) page at \p Addr, via a
/// move_pages query; -1 when unsupported or the page is not mapped in.
/// This is the ground truth the bind path is verified against.
int osNodeOfPage(const void *Addr);

/// Pins the calling thread to OS cpu \p OsCpu. \returns false when the
/// host forbids it (restricted containers) -- callers treat pinning as
/// best effort.
bool pinThisThread(unsigned OsCpu);

} // namespace manti::numaos

#endif // MANTI_NUMA_NUMAOS_H
