//===- numa/AllocPolicy.cpp -----------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "numa/AllocPolicy.h"

#include <cstring>

using namespace manti;

const char *manti::allocPolicyName(AllocPolicyKind Kind) {
  switch (Kind) {
  case AllocPolicyKind::Local:
    return "local";
  case AllocPolicyKind::Interleaved:
    return "interleaved";
  case AllocPolicyKind::SingleNode:
    return "single-node";
  }
  return "unknown";
}

AllocPolicyKind manti::parseAllocPolicy(const char *Name) {
  if (std::strcmp(Name, "interleaved") == 0)
    return AllocPolicyKind::Interleaved;
  if (std::strcmp(Name, "single-node") == 0 ||
      std::strcmp(Name, "socket0") == 0)
    return AllocPolicyKind::SingleNode;
  return AllocPolicyKind::Local;
}
