//===- numa/AllocPolicy.h - physical page placement policies -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three page-placement strategies compared in Section 4.3 of the
/// paper:
///   * Local       - pages go on the node of the requesting (pinned)
///                   vproc; Manticore's default and the paper's
///                   contribution (Fig. 5).
///   * Interleaved - pages are balanced round-robin across nodes, the
///                   strategy used by GHC (Fig. 6).
///   * SingleNode  - everything on node zero, the default behaviour a
///                   single-threaded collector gets from first-touch on
///                   one thread (Fig. 7).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_NUMA_ALLOCPOLICY_H
#define MANTI_NUMA_ALLOCPOLICY_H

#include "numa/Topology.h"

#include <atomic>

namespace manti {

enum class AllocPolicyKind {
  Local,
  Interleaved,
  SingleNode,
};

/// \returns a short stable name ("local", "interleaved", "single-node").
const char *allocPolicyName(AllocPolicyKind Kind);

/// Parses the result of allocPolicyName; returns Local for unknown input.
AllocPolicyKind parseAllocPolicy(const char *Name);

/// Decides the home node for each page-granularity allocation. Stateless
/// except for the interleave cursor, which mimics round-robin physical
/// page assignment.
class AllocPolicy {
public:
  AllocPolicy(AllocPolicyKind Kind, unsigned NumNodes)
      : Kind(Kind), NumNodes(NumNodes) {}

  AllocPolicyKind kind() const { return Kind; }

  /// \returns the node that should back an allocation requested from
  /// \p RequestingNode.
  NodeId homeFor(NodeId RequestingNode) {
    switch (Kind) {
    case AllocPolicyKind::Local:
      return RequestingNode;
    case AllocPolicyKind::Interleaved:
      return static_cast<NodeId>(
          InterleaveCursor.fetch_add(1, std::memory_order_relaxed) % NumNodes);
    case AllocPolicyKind::SingleNode:
      return 0;
    }
    return 0;
  }

private:
  AllocPolicyKind Kind;
  unsigned NumNodes;
  std::atomic<uint64_t> InterleaveCursor{0};
};

} // namespace manti

#endif // MANTI_NUMA_ALLOCPOLICY_H
