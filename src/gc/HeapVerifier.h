//===- gc/HeapVerifier.h - heap-invariant checking ------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traces the reachable heap and checks the two invariants the paper's
/// design rests on (Section 2.3):
///
///   1. There are no pointers from one vproc's local heap to another's.
///   2. There are no pointers from the global heap into any vproc's
///      local heap (except through registered proxies).
///
/// plus structural sanity: valid headers, in-bounds lengths, registered
/// object IDs, and forwarding pointers that lead to valid objects.
///
/// Intended for tests and debugging; the traversal allocates and is not
/// remotely lock-free, so call it only while the vproc (or the world) is
/// quiescent.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_HEAPVERIFIER_H
#define MANTI_GC_HEAPVERIFIER_H

#include "gc/Heap.h"

#include <cstdint>

namespace manti {

struct VerifyResult {
  uint64_t LocalObjects = 0;
  uint64_t GlobalObjects = 0;
  uint64_t Proxies = 0;
  uint64_t ForwardedEdges = 0;
  uint64_t Edges = 0;
};

/// Traces everything reachable from \p H's roots, aborting with a
/// diagnostic on the first invariant violation.
VerifyResult verifyHeap(VProcHeap &H);

/// Traces from every vproc's roots plus the registered global roots.
/// All vprocs must be quiescent.
VerifyResult verifyWorld(GCWorld &W);

} // namespace manti

#endif // MANTI_GC_HEAPVERIFIER_H
