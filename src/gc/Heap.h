//===- gc/Heap.h - GC world and per-vproc heaps ---------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap *infrastructure* layer: worlds, per-vproc heaps, and the
/// raw Value-level allocators the collectors and the handle layer are
/// built on. **The public mutator-facing surface is gc/Handles.h**
/// (RootScope, Ref<T>, ObjectType<T>, alloc<T>); workloads, examples,
/// and runtime libraries should program against that API, which makes
/// the rooting discipline below impossible to get wrong by construction.
///
/// A GCWorld owns everything shared: the object-descriptor table, the
/// per-node memory banks, the page-placement policy, the chunk manager
/// for the global heap, and the coordination state for parallel global
/// collections. It creates one VProcHeap per virtual processor, each
/// pinned (logically) to a core chosen sparsely across the NUMA nodes.
///
/// A VProcHeap bundles a vproc's local Appel heap, its current global
/// chunk, its shadow stack of roots, its proxy table, and its GC
/// statistics. All allocation goes through the VProcHeap and must happen
/// on the vproc's own thread; the only cross-thread operation is the
/// global collector zeroing allocation limits.
///
/// Rooting discipline: any Value live across an allocation must be
/// registered in the shadow stack (RootScope in Handles.h; the
/// collector-internal GcFrame in gc/HeapInternal.h is the raw face of
/// the same stack).
/// Allocation functions that take source Values receive *pointers to
/// rooted slots* so the sources survive a collection triggered by the
/// allocation itself.
///
/// The language model is mutation-free (PML): once an object's fields
/// are initialized they never change. That invariant -- not a write
/// barrier -- is what keeps minor collections synchronization-free and
/// lets the major collection retain young data (see the paper, Sections
/// 2.3 and 3).
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_HEAP_H
#define MANTI_GC_HEAP_H

#include "gc/GCStats.h"
#include "gc/GlobalHeap.h"
#include "gc/LocalHeap.h"
#include "gc/ObjectDescriptor.h"
#include "gc/ObjectModel.h"
#include "numa/AllocPolicy.h"
#include "numa/MemoryBanks.h"
#include "numa/Topology.h"
#include "numa/TrafficMatrix.h"
#include "support/Barrier.h"
#include "support/Compiler.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace manti {

class GCWorld;
class VProcHeap;

namespace gcinternal {
/// Gateway for the raw Value-level allocation surface (allocMixed,
/// allocMixedRooted, GcFrame). Lives in gc/HeapInternal.h, which only
/// MANTI_GC_INTERNAL translation units (collectors, the handle layer,
/// collector tests, gc_microbench) may include; everything else
/// programs against gc/Handles.h.
struct HeapAccess;
} // namespace gcinternal

/// Opaque per-world state of the parallel global collector (GlobalGC.cpp).
class GlobalCollection;
GlobalCollection *createGlobalCollection(GCWorld &W);
struct GlobalCollectionDeleter {
  void operator()(GlobalCollection *GC) const;
};

/// Opaque per-world state of the mostly-concurrent global marker
/// (ConcurrentGC.cpp).
class ConcurrentMark;
ConcurrentMark *createConcurrentMark(GCWorld &W);
struct ConcurrentMarkDeleter {
  void operator()(ConcurrentMark *CM) const;
};

/// Stop-the-world collection entry (GlobalGC.cpp): called from a safe
/// point when a STW collection is pending.
void globalGCParticipate(VProcHeap &H);

/// Concurrent-collection safe-point dispatch (ConcurrentGC.cpp): joins
/// the initial/terminal rendezvous or performs a bounded mutator marking
/// assist, depending on the current phase.
void concurrentGCSafePoint(VProcHeap &H);

/// Marker-task work step (ConcurrentGC.cpp): traces up to \p Budget gray
/// objects on behalf of \p H's vproc. \returns false when the cycle is
/// not in its marking phase or no gray work was available (the caller's
/// marker task should exit and let safe-point polls finish the cycle).
bool concurrentMarkSome(VProcHeap &H, unsigned Budget);

/// Tunables for the memory system. Defaults are scaled down from the
/// paper's values (L3-sized local heaps, 32 MB/vproc global trigger) so
/// the test suite exercises every collector phase quickly.
struct GCConfig {
  /// Fixed size of each vproc's local heap ("chosen so that the local
  /// heaps will fit into the L3 cache").
  std::size_t LocalHeapBytes = 512 * 1024;
  /// A minor collection triggers a major one when the new nursery would
  /// be smaller than this.
  std::size_t MinNurseryBytes = 64 * 1024;
  /// Size of each global-heap chunk.
  std::size_t ChunkBytes = 256 * 1024;
  /// Global collection triggers when active global bytes exceed
  /// NumVProcs * this (the paper uses 32 MB).
  std::size_t GlobalGCBytesPerVProc = 4 * 1024 * 1024;
  /// Page-placement policy (Section 4.3's experiment knob).
  AllocPolicyKind Policy = AllocPolicyKind::Local;
  /// Real page placement: mmap the memory banks' block arenas and bind
  /// them to their home node's physical bank with mbind (verified via
  /// move_pages). Only meaningful with a host topology on a build that
  /// found libnuma (MANTI_NUMA=ON); degrades to unbound first-touch
  /// mappings everywhere else. Off by default: the recorded topologies'
  /// "node 3" is a simulation label, not an OS node.
  bool BindMemory = false;
  /// Reuse global chunks on their home node (ablation knob).
  bool PreserveChunkAffinity = true;
  /// Chunks carved per fresh MemoryBanks mapping: the global
  /// synchronization cost of chunk registration is paid once per batch.
  unsigned ChunkBatch = ChunkManager::DefaultBatchChunks;
  /// Stress mode: force a minor collection on every allocation that is
  /// eligible for the GC slow path, and validate every shadow-stack slot
  /// (nil / int / live heap pointer) first. Turns "a collection *may*
  /// happen here" into "a collection *does* happen here", so unrooted
  /// Values fail deterministically instead of intermittently. Also
  /// enabled by setting the MANTI_STRESS_GC environment variable (any
  /// value but "0"), so existing test binaries can be stressed in CI
  /// without recompilation.
  bool StressGC = false;
  /// Stress schedule: collect on every Nth slow-path-eligible allocation
  /// instead of every one (1 = every allocation, the strictest setting).
  /// Larger periods let stress cover tests whose premises (phase-exact
  /// accounting, zero-promotion setups) a collection inside every
  /// allocation would destroy, and make big-geometry workloads
  /// affordable under stress. Overridden by the MANTI_STRESS_GC_PERIOD
  /// environment variable when set.
  unsigned StressGCPeriod = 1;
  /// Run global collections as mostly-concurrent mark cycles (snapshot-
  /// at-the-beginning marking overlapped with mutation, bounded by two
  /// short rendezvous) instead of the stop-the-world copying collection.
  /// Off by default: the STW collector compacts and is the ablation
  /// baseline; the concurrent collector reclaims whole-chunk garbage
  /// without moving anything.
  bool ConcurrentGlobal = false;
  /// Fraction of the global-GC threshold at which allocation-byte
  /// watermarks start a concurrent mark cycle (only meaningful with
  /// ConcurrentGlobal). Starting early keeps the cycle ahead of the
  /// hard threshold, whose crossing still forces a STW fallback.
  double ConcurrentMarkWatermark = 0.5;
  /// Per-vproc size-class caching for small vector allocation: refills
  /// carve a batch of equally-sized runs off the nursery in one bump and
  /// recycle them through per-size freelists. Flushed at every minor and
  /// major collection (the runs live in the nursery), so StressGC still
  /// collects -- and still catches rooting bugs -- at batch granularity.
  bool SizeClassCache = true;
  /// Software-prefetch the next object's header and the current object's
  /// pointer-field targets in the collector scan loops (minor Cheney
  /// scan, global evacuator drain, concurrent marker drain). Knob so the
  /// microbench ablation (BM_MinorScanPrefetch{On,Off}) can show the
  /// delta.
  bool ScanPrefetch = true;
};

/// Global-collection phase word. Single source of truth for "is any
/// global collection pending or running": every transition is a CAS or a
/// leader store on GCWorld::Phase, and safe points dispatch on one
/// acquire load.
enum class GCPhase : uint8_t {
  Idle,       ///< no global collection active
  StwPending, ///< stop-the-world collection requested; vprocs converging
  ConcInit,   ///< concurrent mark: initial snapshot rendezvous
  ConcMark,   ///< concurrent mark: tracing overlapped with mutation
  ConcTerm,   ///< concurrent mark: terminal rendezvous (re-scan + sweep)
};

/// Visits one root slot; the visitor may rewrite the slot's word.
using RootSlotVisitor = void (*)(Word *Slot, void *VisitorCtx);

/// Enumerates extra roots (beyond the shadow stack) owned by a vproc --
/// the runtime registers its ready-queue and mailbox scanning here.
/// Implementations call \p Visit once per root slot.
using VProcRootEnumerator = void (*)(unsigned VProcId, RootSlotVisitor Visit,
                                     void *VisitorCtx, void *EnumCtx);

/// Enumerates process-wide roots that may only reference the global heap
/// (join cells, channels). Scanned by the global collector's leader.
using GlobalRootEnumerator = void (*)(RootSlotVisitor Visit, void *VisitorCtx,
                                      void *EnumCtx);

//===----------------------------------------------------------------------===//
// VProcHeap
//===----------------------------------------------------------------------===//

/// Fixed-capacity block of root slots. RootScope (gc/Handles.h) embeds
/// one inline and chains overflow slabs through the owning heap's free
/// list; the collectors enumerate VProcHeap::SlabStack directly, so
/// registering a slot costs one slab store instead of a ShadowStack
/// push. Slabs never move while registered (handle slot addresses must
/// stay stable), which is why growth chains new slabs instead of
/// reallocating.
struct RootSlab {
  static constexpr unsigned Capacity = 16;
  RootSlab() {}
  unsigned Count = 0;
  RootSlab *NextFree = nullptr;
  /// Anonymous union: slots past Count are never read (the collectors
  /// and the shadow-stack checker iterate [0, Count)), so constructing
  /// a slab must not pay for nil-initializing all Capacity slots --
  /// RootScope embeds one per scope.
  union {
    Value Slots[Capacity];
  };
};

class VProcHeap {
public:
  VProcHeap(GCWorld &World, unsigned Id, CoreId Core, NodeId Node);
  ~VProcHeap();

  VProcHeap(const VProcHeap &) = delete;
  VProcHeap &operator=(const VProcHeap &) = delete;

  GCWorld &world() { return World; }
  unsigned id() const { return Id; }
  CoreId core() const { return Core; }
  NodeId node() const { return Node; }
  LocalHeap &local() { return Local; }
  const LocalHeap &local() const { return Local; }

  /// Node whose bank actually backs the local heap's pages (differs from
  /// node() under the interleaved / single-node policies).
  NodeId localHeapHomeNode() const { return LocalHeapHome; }

  //===--------------------------------------------------------------------===//
  // Allocation (vproc thread only)
  //===--------------------------------------------------------------------===//

  /// Allocates a raw-data object holding \p Bytes bytes (copied from
  /// \p Data when non-null, zeroed otherwise).
  Value allocRaw(const void *Data, std::size_t Bytes);

  /// Allocates a vector of \p N values. \p Elems (when non-null) points
  /// at N *rooted* slots that are re-read after any collection. Small
  /// vectors are served from the per-vproc size-class cache when a run
  /// is available (inline fast path below); everything else takes
  /// allocVectorSlow.
  Value allocVector(const Value *Elems, std::size_t N);

  /// Allocates a vector of \p N copies of a non-pointer \p Fill value.
  Value allocVectorFill(std::size_t N, Value Fill);

  // Mixed-type (typed, pointer-bearing) allocation is reached through
  // gc/Handles.h (alloc<T>(RootScope&, ...)); the raw word-level entry
  // points live behind gcinternal::HeapAccess in gc/HeapInternal.h.

  /// Allocates a raw object directly in the global heap (used for large
  /// immutable data shared across vprocs, e.g. benchmark inputs).
  Value allocGlobalRaw(const void *Data, std::size_t Bytes);

  /// Allocates a vector directly in the global heap. Every element must
  /// already be a non-pointer or a global-heap pointer (the no
  /// global-to-local-pointer invariant is checked).
  Value allocGlobalVector(const Value *Elems, std::size_t N);

  //===--------------------------------------------------------------------===//
  // Collection entry points (vproc thread only)
  //===--------------------------------------------------------------------===//

  /// Copies live nursery data into the old-data area (paper Fig. 2).
  void minorGC();

  /// Runs a minor collection, then copies the old-data area (except the
  /// young data the minor just produced) to the global heap and slides
  /// the young data to the heap base (paper Fig. 3).
  void majorGC();

  /// Promotes \p V's object graph into the global heap and \returns the
  /// promoted value ("essentially a major collection where the root set
  /// is a pointer to the promoted object"). Non-local values pass
  /// through unchanged. Other copies of the promoted value held in
  /// rooted slots are repaired lazily by the next local collection via
  /// the forwarding pointers left behind.
  Value promote(Value V);

  /// Polls for pending collector work and participates: joins a
  /// stop-the-world collection, a concurrent-mark rendezvous, or lends a
  /// bounded marking assist while a concurrent cycle is tracing. Every
  /// potentially-blocking runtime loop calls this.
  void safePoint();

  /// Yuasa-style deletion-barrier entry for runtime-owned root tables
  /// (e.g. the KV store's entry slots): call with the value about to be
  /// overwritten or dropped. No-op unless a concurrent mark snapshot is
  /// active.
  void satbRecord(Value Old);

  /// Cold half of the deletion barrier: marks \p Old's global object so
  /// the snapshot the running cycle committed to stays reachable.
  /// Requires Old.isPtr() and an active snapshot. (ConcurrentGC.cpp)
  void satbMarkOld(Value Old);

  /// \returns true if this vproc's allocation limit has been zeroed.
  bool gcSignalled() const { return Local.limitSignalled(); }

  /// Aborts unless every shadow-stack slot holds nil, a tagged int, or a
  /// pointer to a live object in this vproc's local heap or the global
  /// heap. Run before every forced collection under GCConfig::StressGC;
  /// catches the unrooted Values the raw API invited. Cold path.
  void debugCheckShadowStack() const;

  //===--------------------------------------------------------------------===//
  // Roots
  //===--------------------------------------------------------------------===//

  /// The shadow stack: slots whose Values are live across allocations.
  /// Managed through RootScope (gc/Handles.h) and the internal GcFrame
  /// (gc/HeapInternal.h); exposed for the collectors and tests.
  std::vector<Value *> ShadowStack;

  /// RootScope slot slabs, in scope-nesting order. Each live RootScope
  /// contributes its inline slab plus any overflow slabs it grew; the
  /// collectors enumerate Slots[0..Count) of every slab here alongside
  /// the shadow stack (forEachVProcRoot).
  std::vector<RootSlab *> SlabStack;

  /// Recycled overflow slabs (chained through RootSlab::NextFree), so
  /// deep scopes stop paying the heap allocation after the first growth.
  RootSlab *SlabFreeList = nullptr;

  /// Proxy objects owned by this vproc (see Proxy.h). Entries point at
  /// the proxy object's first data word in the global heap.
  std::vector<Word *> ProxyTable;

  GCStats Stats;

  /// Total registered root slots: shadow-stack entries plus every live
  /// slab's occupied slots. The tests' scope-balance assertions read
  /// this instead of ShadowStack.size().
  std::size_t numRegisteredRootSlots() const {
    std::size_t N = ShadowStack.size();
    for (const RootSlab *Slab : SlabStack)
      N += Slab->Count;
    return N;
  }

  /// Number of runs currently parked in the size-class cache (tests).
  uint64_t sizeClassCachedRuns() const { return SizeClasses.CachedRuns; }

  /// Drops every cached size-class run. Called by the collectors at the
  /// start of each minor and major collection: the runs live in the
  /// nursery, which the collection is about to recycle.
  void sizeClassFlush();

  //===--------------------------------------------------------------------===//
  // Internal state shared with the collector implementation files.
  //===--------------------------------------------------------------------===//

  /// This vproc's current global-heap chunk (null until first use).
  Chunk *CurChunk = nullptr;

  /// Global-heap bytes this vproc has allocated since the last completed
  /// global collection. Owner-bumped (uncontended) in globalReserve and
  /// summed lazily by the watermark trigger, corobase-style; reset by
  /// the finishing collection's leader.
  std::atomic<uint64_t> GlobalAllocSinceCycle{0};

  /// Bump-allocates an object shell in the global heap, acquiring chunks
  /// as needed. Used by the major collector, promotion, and the direct
  /// global allocation paths. Objects larger than a standard chunk get a
  /// dedicated oversized chunk.
  Word *globalAllocObject(uint16_t Id, uint64_t LenWords);

  /// Reserves footprint words in the global heap without writing a
  /// header (global GC copies whole objects). \p UsedChunk receives the
  /// chunk that satisfied the request: usually CurChunk, or a dedicated
  /// oversized chunk for very large objects.
  Word *globalReserve(uint64_t FootprintWords, Chunk **UsedChunk);

private:
  friend class GCWorld;
  friend class ConcurrentMark;
  friend struct gcinternal::HeapAccess;

  Chunk *acquireChunkCounted();
  Word *allocLocalObject(uint16_t Id, uint64_t LenWords);
  /// Out-of-line twin of allocLocalObject for the microbench's
  /// before/after comparison (gcinternal::HeapAccess::allocRawOutlined).
  Word *allocLocalOutlined(uint16_t Id, uint64_t LenWords);
  Word *allocSlowPath(uint16_t Id, uint64_t LenWords);
  Value allocVectorSlow(const Value *Elems, std::size_t N);
  Value allocVectorFillSlow(std::size_t N, Value Fill);
  /// Batch-carves a run of same-size vector shells off the nursery: the
  /// first is returned (header written), the rest are parked in the
  /// size-class freelist as dormant IdRaw objects.
  Word *sizeClassRefill(uint64_t LenWords);
  Word *sizeClassTryPop(uint64_t LenWords);
  void stressGCBeforeAlloc();
  bool vectorIsOversized(std::size_t N) const;
  /// Trigger check after \p JustAllocatedBytes landed in the global
  /// heap: the classic active-bytes threshold in STW mode, or the
  /// stride-gated allocation watermark in concurrent mode.
  void maybeTriggerGlobalGC(uint64_t JustAllocatedBytes);

  /// Per-vproc size-class cache for small vector allocation: Heads[L] is
  /// an intrusive freelist (linked through each run's first data word)
  /// of dormant L-word runs carved off this vproc's nursery. Dormant
  /// runs carry valid IdRaw headers so the nursery stays walkable; a pop
  /// rewrites the header to IdVector (same footprint). No locks: only
  /// the owning vproc touches it, and every collection flushes it.
  struct SizeClassCacheState {
    static constexpr uint64_t MaxWords = 16;
    Word *Heads[MaxWords + 1] = {};
    uint64_t CachedRuns = 0;
  };

  GCWorld &World;
  unsigned Id;
  CoreId Core;
  NodeId Node;
  NodeId LocalHeapHome;
  void *LocalMem;
  LocalHeap Local;
  SizeClassCacheState SizeClasses;
  uint64_t StressTick = 0; ///< StressGCPeriod schedule position
  /// Bytes accumulated toward the next watermark summation (owner-only;
  /// the summation itself is the expensive part the stride amortizes).
  uint64_t WatermarkResidue = 0;
};

//===----------------------------------------------------------------------===//
// GCWorld
//===----------------------------------------------------------------------===//

class GCWorld {
public:
  /// Builds the shared memory system and \p NumVProcs vproc heaps,
  /// assigning vprocs to cores sparsely across \p Topo's nodes.
  GCWorld(const GCConfig &Config, const Topology &Topo, unsigned NumVProcs);
  ~GCWorld();

  GCWorld(const GCWorld &) = delete;
  GCWorld &operator=(const GCWorld &) = delete;

  const GCConfig &config() const { return Config; }
  const Topology &topology() const { return Topo; }
  unsigned numVProcs() const { return static_cast<unsigned>(Heaps.size()); }
  VProcHeap &heap(unsigned VProcId) { return *Heaps[VProcId]; }

  ObjectDescriptorTable &descriptors() { return Descs; }
  const ObjectDescriptorTable &descriptors() const { return Descs; }
  MemoryBanks &banks() { return Banks; }
  AllocPolicy &policy() { return Policy; }
  TrafficMatrix &traffic() { return Traffic; }
  ChunkManager &chunks() { return Chunks; }

  /// Registers the runtime's extra per-vproc root enumerator.
  void setVProcRootEnumerator(VProcRootEnumerator Fn, void *Ctx) {
    VProcRoots = Fn;
    VProcRootsCtx = Ctx;
  }
  /// Registers the runtime's global root enumerator.
  void setGlobalRootEnumerator(GlobalRootEnumerator Fn, void *Ctx) {
    GlobalRoots = Fn;
    GlobalRootsCtx = Ctx;
  }

  /// Invokes the registered per-vproc root enumerator (collector use).
  void enumerateExtraVProcRoots(unsigned VProcId, RootSlotVisitor Visit,
                                void *VisitorCtx) {
    if (VProcRoots)
      VProcRoots(VProcId, Visit, VisitorCtx, VProcRootsCtx);
  }

  /// Invokes the registered global root enumerator (collector use).
  void enumerateGlobalRoots(RootSlotVisitor Visit, void *VisitorCtx) {
    if (GlobalRoots)
      GlobalRoots(Visit, VisitorCtx, GlobalRootsCtx);
  }

  /// Requests a stop-the-world global collection: flips the phase word
  /// to StwPending and zeroes every vproc's allocation limit (Section
  /// 3.4, steps 1-2), then invokes the wakeup hook so parked vprocs
  /// reach their safe points immediately. No-op when any collection is
  /// already pending or running.
  void requestGlobalGC();

  /// Starts a mostly-concurrent mark cycle: flips the phase word to
  /// ConcInit and signals every vproc to join the initial snapshot
  /// rendezvous at its next safe point. \returns false (and does
  /// nothing) when a collection is already pending or running.
  bool startConcurrentMark();

  /// Registers the runtime's wakeup hook: invoked (from any thread) when
  /// every vproc must promptly observe collector state -- at the global
  /// GC trigger and at its completion. The runtime wires this to the
  /// ParkLot's broadcast doorbell; without a hook the vprocs' bounded
  /// park backstops provide the (slower) fallback.
  void setWakeupHook(void (*Fn)(void *), void *Ctx) {
    WakeupHook = Fn;
    WakeupHookCtx = Ctx;
  }

  /// Invokes the registered wakeup hook, if any (collector use).
  void notifyWakeupHook() {
    if (WakeupHook)
      WakeupHook(WakeupHookCtx);
  }

  /// Registers the runtime's concurrent-mark hook: invoked by the cycle
  /// leader (on its own vproc thread, world still stopped) right after
  /// the phase flips to ConcMark. The runtime wires this to spawn
  /// per-node marker tasks through the scheduler; without a hook the
  /// mutators' safe-point assists do all of the tracing.
  void setConcurrentMarkHook(void (*Fn)(void *, unsigned LeaderVProc),
                             void *Ctx) {
    ConcMarkHook = Fn;
    ConcMarkHookCtx = Ctx;
  }

  /// Invokes the registered concurrent-mark hook, if any (collector use).
  void notifyConcurrentMarkHook(unsigned LeaderVProc) {
    if (ConcMarkHook)
      ConcMarkHook(ConcMarkHookCtx, LeaderVProc);
  }

  /// Home NUMA node of the memory backing \p V: the backing chunk's home
  /// for global objects, the backing bank of the owning vproc's local
  /// heap for local objects, \p Fallback for nil and tagged ints. The
  /// runtime uses this to derive Task affinity hints ("tasks chase their
  /// data"); O(NumVProcs) worst case, so derive hints once per job, not
  /// per element.
  NodeId homeNodeOf(Value V, NodeId Fallback);

  /// Current global-collection phase.
  GCPhase phase() const { return Phase.load(std::memory_order_acquire); }

  /// \returns true if a stop-the-world collection has been requested and
  /// not yet entered its rendezvous-complete state.
  bool globalGCPending() const { return phase() == GCPhase::StwPending; }

  /// \returns true while any global collection -- stop-the-world or a
  /// concurrent mark cycle in any of its phases -- is pending or
  /// running.
  bool collectionInProgress() const { return phase() != GCPhase::Idle; }

  /// \returns true while a phase that needs every vproc at a barrier is
  /// pending: a stop-the-world request, or a concurrent cycle's initial
  /// or terminal rendezvous. ConcMark itself needs no barrier -- mutators
  /// run freely there -- so schedulers should not treat it as urgent.
  bool rendezvousRequested() const {
    GCPhase P = phase();
    return P == GCPhase::StwPending || P == GCPhase::ConcInit ||
           P == GCPhase::ConcTerm;
  }

  /// \returns true while a concurrent cycle's snapshot is being held
  /// (deletion barrier active: from the initial rendezvous until the
  /// terminal rendezvous turns it off).
  bool satbActive() const {
    return SatbActive.load(std::memory_order_relaxed);
  }

  /// Number of completed global collections (both flavors).
  uint64_t globalGCCount() const {
    return GlobalGCsCompleted.load(std::memory_order_relaxed);
  }

  /// Number of completed concurrent mark cycles (subset of
  /// globalGCCount()).
  uint64_t concurrentGCCount() const {
    return ConcurrentGCsCompleted.load(std::memory_order_relaxed);
  }

  /// Current trigger threshold in bytes (grows adaptively if live data
  /// exceeds the configured trigger).
  uint64_t globalGCThresholdBytes() const {
    return GlobalGCThreshold.load(std::memory_order_relaxed);
  }

  /// Aggregated statistics across all vprocs.
  GCStats aggregateStats() const;

  /// Well-known object IDs registered by higher layers (the runtime's
  /// rope nodes, the Barnes-Hut quadtree). The collector itself never
  /// interprets these; they are stored here so value-level libraries get
  /// O(1) access to their IDs.
  uint16_t RopeNodeId = 0;
  uint16_t BhNodeId = 0;

  /// Typed-object-id registry for the handle layer (gc/Handles.h):
  /// object IDs are world state, so ObjectType<T> binds T's id here
  /// under a key unique per C++ type. Like descriptor registration,
  /// binding must finish before vprocs start running; lookups afterwards
  /// are lock-free reads.
  uint16_t typedObjectId(const void *TypeKey) const {
    auto It = TypedObjectIds.find(TypeKey);
    return It == TypedObjectIds.end() ? 0 : It->second;
  }
  void bindTypedObjectId(const void *TypeKey, uint16_t Id) {
    TypedObjectIds.emplace(TypeKey, Id);
  }

private:
  friend class VProcHeap;
  friend void globalGCParticipate(VProcHeap &H);
  friend bool concurrentMarkSome(VProcHeap &H, unsigned Budget);
  friend class GlobalCollection;
  friend class ConcurrentMark;

  /// Watermark summation stride (corobase's WATERMARK): a vproc re-sums
  /// everyone's allocation counters only once per this many bytes of its
  /// own global allocation.
  static constexpr uint64_t WatermarkStrideBytes = 64 * 1024;

  GCConfig Config;
  Topology Topo;
  ObjectDescriptorTable Descs;
  MemoryBanks Banks;
  AllocPolicy Policy;
  TrafficMatrix Traffic;
  ChunkManager Chunks;
  std::vector<std::unique_ptr<VProcHeap>> Heaps;

  // Global-collection coordination.
  std::atomic<GCPhase> Phase{GCPhase::Idle};
  std::atomic<bool> SatbActive{false};
  std::atomic<uint64_t> GlobalGCsCompleted{0};
  std::atomic<uint64_t> ConcurrentGCsCompleted{0};
  std::atomic<uint64_t> GlobalGCThreshold;
  /// Active bytes at the end of the last completed global collection --
  /// the live-estimate base the watermark trigger projects from.
  std::atomic<uint64_t> GlobalLiveBytes{0};
  Barrier GCBarrier;
  std::unique_ptr<GlobalCollection, GlobalCollectionDeleter> GCState;
  std::unique_ptr<ConcurrentMark, ConcurrentMarkDeleter> CMState;

  VProcRootEnumerator VProcRoots = nullptr;
  void *VProcRootsCtx = nullptr;
  GlobalRootEnumerator GlobalRoots = nullptr;
  void *GlobalRootsCtx = nullptr;
  void (*WakeupHook)(void *) = nullptr;
  void *WakeupHookCtx = nullptr;
  void (*ConcMarkHook)(void *, unsigned) = nullptr;
  void *ConcMarkHookCtx = nullptr;

  /// ObjectType<T> tag address -> object id (see typedObjectId).
  std::unordered_map<const void *, uint16_t> TypedObjectIds;
};

//===----------------------------------------------------------------------===//
// Object accessors (used by the runtime, workloads, and tests)
//===----------------------------------------------------------------------===//

/// \returns the length in data words of the object \p V points at.
inline uint64_t objectLenWords(Value V) {
  return headerLenWords(headerOf(V.asPtr()));
}

/// \returns the object ID of the object \p V points at.
inline uint16_t objectId(Value V) { return headerId(headerOf(V.asPtr())); }

/// Vector accessors.
inline uint64_t vectorLen(Value V) { return objectLenWords(V); }
inline Value vectorGet(Value V, uint64_t Index) {
  assert(Index < vectorLen(V) && "vector index out of range");
  return Value::fromBits(V.asPtr()[Index]);
}
/// Initialization-time store; PML values are immutable once published,
/// so this must only be used before the vector escapes its allocator.
inline void vectorInit(Value V, uint64_t Index, Value Elem) {
  assert(Index < vectorLen(V) && "vector index out of range");
  V.asPtr()[Index] = Elem.bits();
}

/// Raw-object accessors.
inline void *rawData(Value V) { return V.asPtr(); }
inline uint64_t rawSizeBytes(Value V) { return objectLenWords(V) * 8; }

/// Mixed-object field accessors.
inline Value mixedGet(Value V, unsigned FieldWord) {
  assert(FieldWord < objectLenWords(V) && "field out of range");
  return Value::fromBits(V.asPtr()[FieldWord]);
}
inline Word mixedGetWord(Value V, unsigned FieldWord) {
  assert(FieldWord < objectLenWords(V) && "field out of range");
  return V.asPtr()[FieldWord];
}

//===----------------------------------------------------------------------===//
// Inline hot paths (safe-point poll, deletion barrier, bump allocation)
//===----------------------------------------------------------------------===//

namespace gcdetail {
/// The heap of the innermost live RootScope on this thread (Handles.h
/// maintains it). The handle layer's deletion barrier reads it so
/// Ref<T>/VecRef<T> slot overwrites need no heap argument at the call
/// site.
extern thread_local VProcHeap *CurrentSatbHeap;
} // namespace gcdetail

inline void VProcHeap::safePoint() {
  GCPhase P = World.Phase.load(std::memory_order_acquire);
  if (MANTI_LIKELY(P == GCPhase::Idle))
    return;
  if (P == GCPhase::StwPending) {
    globalGCParticipate(*this);
    return;
  }
  concurrentGCSafePoint(*this);
}

inline void VProcHeap::satbRecord(Value Old) {
  if (MANTI_UNLIKELY(Old.isPtr() && World.satbActive()))
    satbMarkOld(Old);
}

/// Deletion barrier on handle-slot overwrites (Ref<T>/VecRef<T>
/// assignment in Handles.h): before a rooted slot drops its old value,
/// record it so a running concurrent mark keeps its snapshot closed.
/// Initializing stores (no old pointer) skip the whole gate, keeping the
/// mutator fast path one predictable branch.
inline void satbRecordOverwrite(Value Old) {
  if (MANTI_LIKELY(!Old.isPtr()))
    return;
  VProcHeap *H = gcdetail::CurrentSatbHeap;
  if (MANTI_LIKELY(!H || !H->world().satbActive()))
    return;
  H->satbMarkOld(Old);
}

inline Word *VProcHeap::allocLocalObject(uint16_t Id, uint64_t LenWords) {
  if (MANTI_UNLIKELY(World.Config.StressGC))
    stressGCBeforeAlloc();
  Stats.BytesAllocatedLocal += (LenWords + 1) * sizeof(Word);
  if (Word *P = Local.tryAlloc(Id, LenWords))
    return P;
  return allocSlowPath(Id, LenWords);
}

inline Value VProcHeap::allocRaw(const void *Data, std::size_t Bytes) {
  uint64_t LenWords = std::max<uint64_t>(1, divideCeil(Bytes, sizeof(Word)));
  Word *Obj = allocLocalObject(IdRaw, LenWords);
  Obj[LenWords - 1] = 0; // zero the tail beyond Bytes
  if (Data)
    std::memcpy(Obj, Data, Bytes);
  else
    std::memset(Obj, 0, LenWords * sizeof(Word));
  return Value::fromPtr(Obj);
}

/// Pops a dormant run from the size-class cache, or returns null to send
/// the caller down allocVectorSlow. The limitSignalled bail-out matters:
/// the hit path skips tryAlloc's limit check, and a zeroed limit is how
/// other vprocs summon this one to a rendezvous -- serving cached runs
/// through a pending signal would stall a stop-the-world collection.
inline Word *VProcHeap::sizeClassTryPop(uint64_t LenWords) {
  if (LenWords > SizeClassCacheState::MaxWords)
    return nullptr;
  Word *Run = SizeClasses.Heads[LenWords];
  if (!Run)
    return nullptr;
  if (MANTI_UNLIKELY(Local.limitSignalled()))
    return nullptr;
  SizeClasses.Heads[LenWords] = reinterpret_cast<Word *>(Run[0]);
  --SizeClasses.CachedRuns;
  ++Stats.SizeClassHits;
  headerOf(Run) = makeHeader(IdVector, LenWords);
  return Run;
}

inline Value VProcHeap::allocVector(const Value *Elems, std::size_t N) {
  uint64_t LenWords = std::max<uint64_t>(1, N);
  if (Word *Obj = sizeClassTryPop(LenWords)) {
    Obj[LenWords - 1] = Value::nil().bits(); // N == 0 pads one nil word
    for (std::size_t I = 0; I < N; ++I)
      Obj[I] = Elems ? Elems[I].bits() : Value::nil().bits();
    return Value::fromPtr(Obj);
  }
  return allocVectorSlow(Elems, N);
}

inline Value VProcHeap::allocVectorFill(std::size_t N, Value Fill) {
  uint64_t LenWords = std::max<uint64_t>(1, N);
  if (Word *Obj = sizeClassTryPop(LenWords)) {
    Obj[LenWords - 1] = Value::nil().bits();
    for (std::size_t I = 0; I < N; ++I)
      Obj[I] = Fill.bits();
    return Value::fromPtr(Obj);
  }
  return allocVectorFillSlow(N, Fill);
}

} // namespace manti

#endif // MANTI_GC_HEAP_H
