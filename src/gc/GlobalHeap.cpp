//===- gc/GlobalHeap.cpp --------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/GlobalHeap.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <mutex>
#include <new>
#include <utility>

using namespace manti;

Chunk *Chunk::fromInteriorPtr(const Word *P, std::size_t ChunkBytes) {
  uintptr_t BlockBase =
      reinterpret_cast<uintptr_t>(P) & ~(static_cast<uintptr_t>(ChunkBytes) - 1);
  const ChunkMeta *Meta = reinterpret_cast<const ChunkMeta *>(BlockBase);
  MANTI_CHECK(Meta->Magic == ChunkMeta::ExpectedMagic,
              "pointer is neither local nor global: heap invariant violated");
  return Meta->Desc;
}

ChunkManager::ChunkManager(MemoryBanks &Banks, AllocPolicy &Policy,
                           std::size_t ChunkBytes, bool PreserveAffinity)
    : Banks(Banks), Policy(Policy), ChunkBytes(ChunkBytes),
      PreserveAffinity(PreserveAffinity), FreeByNode(Banks.numNodes(),
                                                    nullptr) {
  MANTI_CHECK(ChunkBytes >= MemoryBanks::PageSize && isPowerOf2(ChunkBytes),
              "chunk size must be a power-of-two multiple of the page size");
}

ChunkManager::~ChunkManager() {
  for (Chunk *C : AllChunks) {
    Banks.freeBlock(C->Base - ChunkMetaWords, ChunkBytes, ChunkBytes);
    delete C;
  }
  for (auto &[Base, C] : Oversized) {
    Banks.freeBlock(reinterpret_cast<void *>(Base), C->BlockBytes);
    delete C;
  }
}

Chunk *ChunkManager::newChunk(NodeId RequestingNode) {
  // The allocation policy decides which bank actually backs the pages;
  // under the paper's default (local) policy this is the requester's
  // node, under interleaved/single-node it is not.
  NodeId Home = Policy.homeFor(RequestingNode);
  // Blocks are aligned to the chunk size so interior pointers can find
  // the chunk metadata with a mask (Chunk::fromInteriorPtr).
  void *Mem = Banks.allocBlock(ChunkBytes, Home, /*Align=*/ChunkBytes);
  Chunk *C = new Chunk();
  ChunkMeta *Meta = new (Mem) ChunkMeta();
  Meta->Desc = C;
  C->Base = static_cast<Word *>(Mem) + ChunkMetaWords;
  C->Top = static_cast<Word *>(Mem) + ChunkBytes / sizeof(Word);
  C->resetForReuse();
  C->HomeNode = Home;
  NumCreated.fetch_add(1, std::memory_order_relaxed);
  return C;
}

Chunk *ChunkManager::acquireChunk(NodeId RequestingNode) {
  Chunk *C = nullptr;
  {
    std::lock_guard<SpinLock> Guard(Lock);
    // Node-local reuse first ("preserves node affinity when reusing
    // chunks"); with affinity disabled, scan all free lists in order so
    // reuse ignores placement.
    if (PreserveAffinity && FreeByNode[RequestingNode]) {
      C = FreeByNode[RequestingNode];
      FreeByNode[RequestingNode] = C->Next;
      NodeLocalReuses.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (unsigned Node = 0; Node < FreeByNode.size() && !C; ++Node) {
        if (PreserveAffinity && Node == RequestingNode)
          continue; // already checked
        if (FreeByNode[Node]) {
          C = FreeByNode[Node];
          FreeByNode[Node] = C->Next;
          if (C->HomeNode == RequestingNode)
            NodeLocalReuses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (C) {
      C->resetForReuse();
      C->Next = Active;
      Active = C;
      ActiveBytes.fetch_add(ChunkBytes, std::memory_order_relaxed);
      return C;
    }
  }
  // No free chunk anywhere: global-cost path, map fresh memory and
  // register it with the runtime.
  C = newChunk(RequestingNode);
  GlobalAllocs.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<SpinLock> Guard(Lock);
    AllChunks.push_back(C);
    C->Next = Active;
    Active = C;
    ActiveBytes.fetch_add(ChunkBytes, std::memory_order_relaxed);
  }
  return C;
}

Chunk *ChunkManager::acquireOversized(NodeId RequestingNode,
                                      std::size_t MinObjectBytes) {
  NodeId Home = Policy.homeFor(RequestingNode);
  std::size_t BlockBytes =
      alignTo(MinObjectBytes + ChunkMetaWords * sizeof(Word),
              MemoryBanks::PageSize);
  void *Mem = Banks.allocBlock(BlockBytes, Home);
  Chunk *C = new Chunk();
  ChunkMeta *Meta = new (Mem) ChunkMeta();
  Meta->Desc = C;
  C->Base = static_cast<Word *>(Mem) + ChunkMetaWords;
  C->Top = static_cast<Word *>(Mem) + BlockBytes / sizeof(Word);
  C->resetForReuse();
  C->HomeNode = Home;
  C->IsOversized = true;
  C->BlockBytes = BlockBytes;
  NumCreated.fetch_add(1, std::memory_order_relaxed);
  GlobalAllocs.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<SpinLock> Guard(Lock);
  auto Entry = std::make_pair(reinterpret_cast<uintptr_t>(Mem), C);
  Oversized.insert(std::lower_bound(Oversized.begin(), Oversized.end(),
                                    Entry),
                   Entry);
  NumOversized.fetch_add(1, std::memory_order_release);
  C->Next = Active;
  Active = C;
  ActiveBytes.fetch_add(BlockBytes, std::memory_order_relaxed);
  return C;
}

Chunk *ChunkManager::chunkOf(const Word *P) const {
  // Oversized blocks are only page aligned, so for a pointer into one
  // the alignment mask below would read below the block -- possibly
  // unmapped memory. Check the (usually empty) oversized index first.
  if (NumOversized.load(std::memory_order_acquire) > 0) {
    std::lock_guard<SpinLock> Guard(Lock);
    uintptr_t Addr = reinterpret_cast<uintptr_t>(P);
    auto It = std::upper_bound(
        Oversized.begin(), Oversized.end(), Addr,
        [](uintptr_t A, const std::pair<uintptr_t, Chunk *> &E) {
          return A < E.first;
        });
    if (It != Oversized.begin()) {
      --It;
      if (Addr < It->first + It->second->BlockBytes)
        return It->second;
    }
  }

  // Standard chunks are size-aligned: the metadata is one mask away.
  uintptr_t BlockBase = reinterpret_cast<uintptr_t>(P) &
                        ~(static_cast<uintptr_t>(ChunkBytes) - 1);
  const ChunkMeta *Meta = reinterpret_cast<const ChunkMeta *>(BlockBase);
  MANTI_CHECK(Meta->Magic == ChunkMeta::ExpectedMagic && Meta->Desc,
              "pointer is neither local nor global: heap invariant violated");
  return Meta->Desc;
}

void ChunkManager::gatherFromSpace(std::vector<Chunk *> &PerNodeFromLists) {
  PerNodeFromLists.assign(Banks.numNodes(), nullptr);
  std::lock_guard<SpinLock> Guard(Lock);
  Chunk *C = Active;
  while (C) {
    Chunk *Next = C->Next;
    C->ScanPtr = C->Base;
    C->InFromSpace = true;
    C->Next = PerNodeFromLists[C->HomeNode];
    PerNodeFromLists[C->HomeNode] = C;
    C = Next;
  }
  Active = nullptr;
  ActiveBytes.store(0, std::memory_order_relaxed);
}

void ChunkManager::releaseChunk(Chunk *C) {
  std::lock_guard<SpinLock> Guard(Lock);
  if (C->IsOversized) {
    // Dedicated blocks go back to the banks rather than the pools.
    uintptr_t Base = reinterpret_cast<uintptr_t>(C->Base - ChunkMetaWords);
    auto It = std::lower_bound(
        Oversized.begin(), Oversized.end(), std::make_pair(Base, C));
    MANTI_CHECK(It != Oversized.end() && It->second == C,
                "oversized chunk missing from its index");
    Oversized.erase(It);
    NumOversized.fetch_sub(1, std::memory_order_release);
    Banks.freeBlock(reinterpret_cast<void *>(Base), C->BlockBytes);
    delete C;
    return;
  }
  C->resetForReuse();
  C->Next = FreeByNode[C->HomeNode];
  FreeByNode[C->HomeNode] = C;
}

bool ChunkManager::activeChunksContain(const Word *P) const {
  std::lock_guard<SpinLock> Guard(Lock);
  for (Chunk *C = Active; C; C = C->Next)
    if (C->contains(P))
      return true;
  return false;
}
