//===- gc/GlobalHeap.cpp --------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/GlobalHeap.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <mutex>
#include <new>
#include <utility>

using namespace manti;

Chunk *Chunk::fromInteriorPtr(const Word *P, std::size_t ChunkBytes) {
  uintptr_t BlockBase =
      reinterpret_cast<uintptr_t>(P) & ~(static_cast<uintptr_t>(ChunkBytes) - 1);
  const ChunkMeta *Meta = reinterpret_cast<const ChunkMeta *>(BlockBase);
  MANTI_CHECK(Meta->Magic == ChunkMeta::ExpectedMagic,
              "pointer is neither local nor global: heap invariant violated");
  return Meta->Desc;
}

ChunkManager::ChunkManager(MemoryBanks &Banks, AllocPolicy &Policy,
                           std::size_t ChunkBytes, bool PreserveAffinity,
                           unsigned BatchChunks)
    : Banks(Banks), Policy(Policy), ChunkBytes(ChunkBytes),
      PreserveAffinity(PreserveAffinity), BatchChunks(BatchChunks),
      Shards(Banks.numNodes()) {
  MANTI_CHECK(ChunkBytes >= MemoryBanks::PageSize && isPowerOf2(ChunkBytes),
              "chunk size must be a power-of-two multiple of the page size");
  MANTI_CHECK(BatchChunks >= 1, "registration batch must be at least 1");
}

ChunkManager::~ChunkManager() {
  for (Chunk *C : AllChunks)
    delete C;
  for (auto &[Base, Bytes] : BatchBlocks)
    Banks.freeBlock(Base, Bytes, ChunkBytes);
  for (auto &[Base, C] : Oversized) {
    Banks.freeBlock(reinterpret_cast<void *>(Base), C->BlockBytes);
    delete C;
  }
}

/// Initializes one standard chunk over the ChunkBytes-sized block at
/// \p BlockBase (already size-aligned).
Chunk *ChunkManager::carveChunk(void *BlockBase) {
  Chunk *C = new Chunk();
  ChunkMeta *Meta = new (BlockBase) ChunkMeta();
  Meta->Desc = C;
  C->Base = static_cast<Word *>(BlockBase) + ChunkMetaWords;
  C->Top = static_cast<Word *>(BlockBase) + ChunkBytes / sizeof(Word);
  C->resetForReuse();
  NumCreated.fetch_add(1, std::memory_order_relaxed);
  return C;
}

/// Pushes \p C onto \p S's active list; caller holds S.Lock.
void ChunkManager::activateLocked(Shard &S, Chunk *C, std::size_t Bytes) {
  C->Next = S.Active;
  S.Active = C;
  ActiveBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

Chunk *ChunkManager::registerFreshBatch(NodeId RequestingNode) {
  // The allocation policy decides which bank actually backs the pages;
  // under the paper's default (local) policy this is the requester's
  // node, under interleaved/single-node it is not. One mapping serves a
  // whole batch: the global synchronization cost (bank mapping plus
  // registration lock) is paid once per BatchChunks chunks.
  NodeId Home = Policy.homeFor(RequestingNode);
  std::size_t BlockBytes = ChunkBytes * BatchChunks;
  // Blocks are aligned to the chunk size so interior pointers can find
  // the chunk metadata with a mask (Chunk::fromInteriorPtr).
  void *Mem = Banks.allocBlock(BlockBytes, Home, /*Align=*/ChunkBytes);

  Chunk *First = nullptr;
  std::vector<Chunk *> Extras;
  Extras.reserve(BatchChunks - 1);
  for (unsigned I = 0; I < BatchChunks; ++I) {
    Chunk *C = carveChunk(static_cast<char *>(Mem) + I * ChunkBytes);
    C->HomeNode = Home;
    if (I == 0)
      First = C;
    else
      Extras.push_back(C);
  }

  {
    std::lock_guard<SpinLock> Guard(RegisterLock);
    AllChunks.push_back(First);
    AllChunks.insert(AllChunks.end(), Extras.begin(), Extras.end());
    BatchBlocks.emplace_back(Mem, BlockBytes);
  }
  FreshRegistrations.fetch_add(1, std::memory_order_relaxed);

  Shard &S = Shards[Home];
  std::lock_guard<SpinLock> Guard(S.Lock);
  for (Chunk *C : Extras) {
    C->Next = S.Free;
    S.Free = C;
  }
  activateLocked(S, First, ChunkBytes);
  return First;
}

Chunk *ChunkManager::acquireChunk(NodeId RequestingNode, ChunkSource *Source) {
  ChunkSource Src = ChunkSource::Fresh;
  Chunk *C = nullptr;

  // Node-local reuse first ("preserves node affinity when reusing
  // chunks"): only the requester's shard lock is taken.
  if (PreserveAffinity) {
    Shard &S = Shards[RequestingNode];
    std::lock_guard<SpinLock> Guard(S.Lock);
    if (S.Free) {
      C = S.Free;
      S.Free = C->Next;
      C->resetForReuse();
      activateLocked(S, C, ChunkBytes);
      Src = ChunkSource::LocalReuse;
    }
  }

  // Steal from another node's shard before mapping fresh memory (reuse
  // is cheaper than a mapping even across nodes). With affinity disabled
  // the scan starts at node 0 regardless of the requester, so reuse
  // ignores placement (the ablation's knob).
  if (!C) {
    unsigned N = static_cast<unsigned>(Shards.size());
    for (unsigned I = 0; I < N && !C; ++I) {
      NodeId Node = PreserveAffinity ? (RequestingNode + 1 + I) % N : I;
      if (PreserveAffinity && Node == RequestingNode)
        continue; // already checked above
      Shard &S = Shards[Node];
      std::lock_guard<SpinLock> Guard(S.Lock);
      if (S.Free) {
        C = S.Free;
        S.Free = C->Next;
        C->resetForReuse();
        // Free shards are keyed by home node, so the chunk stays on the
        // shard we hold the lock for.
        activateLocked(S, C, ChunkBytes);
        Src = C->HomeNode == RequestingNode ? ChunkSource::LocalReuse
                                            : ChunkSource::RemoteReuse;
      }
    }
  }

  if (!C)
    C = registerFreshBatch(RequestingNode);

  switch (Src) {
  case ChunkSource::LocalReuse:
    NodeLocalReuses.fetch_add(1, std::memory_order_relaxed);
    break;
  case ChunkSource::RemoteReuse:
    CrossNodeSteals.fetch_add(1, std::memory_order_relaxed);
    break;
  case ChunkSource::Fresh:
    break; // counted per mapping in registerFreshBatch
  }
  if (Source)
    *Source = Src;
  return C;
}

Chunk *ChunkManager::acquireOversized(NodeId RequestingNode,
                                      std::size_t MinObjectBytes) {
  NodeId Home = Policy.homeFor(RequestingNode);
  std::size_t BlockBytes =
      alignTo(MinObjectBytes + ChunkMetaWords * sizeof(Word),
              MemoryBanks::PageSize);
  void *Mem = Banks.allocBlock(BlockBytes, Home);
  Chunk *C = new Chunk();
  ChunkMeta *Meta = new (Mem) ChunkMeta();
  Meta->Desc = C;
  C->Base = static_cast<Word *>(Mem) + ChunkMetaWords;
  C->Top = static_cast<Word *>(Mem) + BlockBytes / sizeof(Word);
  C->resetForReuse();
  C->HomeNode = Home;
  C->IsOversized = true;
  C->BlockBytes = BlockBytes;
  NumCreated.fetch_add(1, std::memory_order_relaxed);
  FreshRegistrations.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<SpinLock> Guard(RegisterLock);
    auto Entry = std::make_pair(reinterpret_cast<uintptr_t>(Mem), C);
    Oversized.insert(std::lower_bound(Oversized.begin(), Oversized.end(),
                                      Entry),
                     Entry);
    NumOversized.fetch_add(1, std::memory_order_release);
  }

  Shard &S = Shards[Home];
  std::lock_guard<SpinLock> Guard(S.Lock);
  activateLocked(S, C, BlockBytes);
  return C;
}

Chunk *ChunkManager::chunkOf(const Word *P) const {
  // Oversized blocks are only page aligned, so for a pointer into one
  // the alignment mask below would read below the block -- possibly
  // unmapped memory. Check the (usually empty) oversized index first.
  if (NumOversized.load(std::memory_order_acquire) > 0) {
    std::lock_guard<SpinLock> Guard(RegisterLock);
    uintptr_t Addr = reinterpret_cast<uintptr_t>(P);
    auto It = std::upper_bound(
        Oversized.begin(), Oversized.end(), Addr,
        [](uintptr_t A, const std::pair<uintptr_t, Chunk *> &E) {
          return A < E.first;
        });
    if (It != Oversized.begin()) {
      --It;
      if (Addr < It->first + It->second->BlockBytes)
        return It->second;
    }
  }

  // Standard chunks are size-aligned: the metadata is one mask away.
  uintptr_t BlockBase = reinterpret_cast<uintptr_t>(P) &
                        ~(static_cast<uintptr_t>(ChunkBytes) - 1);
  const ChunkMeta *Meta = reinterpret_cast<const ChunkMeta *>(BlockBase);
  MANTI_CHECK(Meta->Magic == ChunkMeta::ExpectedMagic && Meta->Desc,
              "pointer is neither local nor global: heap invariant violated");
  return Meta->Desc;
}

void ChunkManager::gatherFromSpace(std::vector<Chunk *> &PerNodeFromLists) {
  PerNodeFromLists.assign(Banks.numNodes(), nullptr);
  for (Shard &S : Shards) {
    std::lock_guard<SpinLock> Guard(S.Lock);
    Chunk *C = S.Active;
    while (C) {
      Chunk *Next = C->Next;
      C->ScanPtr = C->Base;
      C->InFromSpace = true;
      C->Next = PerNodeFromLists[C->HomeNode];
      PerNodeFromLists[C->HomeNode] = C;
      C = Next;
    }
    S.Active = nullptr;
  }
  ActiveBytes.store(0, std::memory_order_relaxed);
}

void ChunkManager::releaseChunk(Chunk *C) {
  if (C->IsOversized) {
    // Dedicated blocks go back to the banks rather than the pools.
    uintptr_t Base = reinterpret_cast<uintptr_t>(C->Base - ChunkMetaWords);
    std::lock_guard<SpinLock> Guard(RegisterLock);
    auto It = std::lower_bound(
        Oversized.begin(), Oversized.end(), std::make_pair(Base, C));
    MANTI_CHECK(It != Oversized.end() && It->second == C,
                "oversized chunk missing from its index");
    Oversized.erase(It);
    NumOversized.fetch_sub(1, std::memory_order_release);
    Banks.freeBlock(reinterpret_cast<void *>(Base), C->BlockBytes);
    delete C;
    return;
  }
  C->resetForReuse();
  Shard &S = Shards[C->HomeNode];
  std::lock_guard<SpinLock> Guard(S.Lock);
  C->Next = S.Free;
  S.Free = C;
}

void Chunk::beginMark(uint64_t Cycle) {
  // The bitmap only needs to cover the stamped prefix: markers refuse
  // anything at or above MarkLimit, so bits for the unallocated tail
  // would never be touched.
  std::size_t UsedWords = static_cast<std::size_t>(AllocPtr - Base);
  std::size_t NeedWords = (UsedWords + 63) / 64;
  if (NeedWords > MarkBitsWords) {
    MarkBits.reset(new std::atomic<uint64_t>[NeedWords]);
    MarkBitsWords = NeedWords;
  }
  for (std::size_t I = 0; I < NeedWords; ++I)
    MarkBits[I].store(0, std::memory_order_relaxed);
  MarkedCount.store(0, std::memory_order_relaxed);
  MarkLimit.store(AllocPtr, std::memory_order_relaxed);
  MarkEpoch.store(Cycle, std::memory_order_release);
}

void ChunkManager::beginMarkCycle(uint64_t Cycle) {
  for (Shard &S : Shards) {
    std::lock_guard<SpinLock> Guard(S.Lock);
    for (Chunk *C = S.Active; C; C = C->Next)
      C->beginMark(Cycle);
  }
}

uint64_t
ChunkManager::sweepUnmarked(uint64_t Cycle,
                            const std::vector<const Chunk *> &Pinned) {
  uint64_t Freed = 0;
  std::vector<Chunk *> ToRelease;
  for (Shard &S : Shards) {
    std::lock_guard<SpinLock> Guard(S.Lock);
    Chunk **Link = &S.Active;
    while (Chunk *C = *Link) {
      // A chunk is reclaimable only when the whole cycle saw it: stamped
      // at the snapshot, zero survivors marked, and no allocation after
      // the stamp (post-MarkLimit objects were retained unscanned). The
      // vprocs' current chunks stay put so their cached pointers remain
      // valid.
      bool Dead = C->MarkEpoch.load(std::memory_order_relaxed) == Cycle &&
                  C->MarkedCount.load(std::memory_order_relaxed) == 0 &&
                  C->AllocPtr == C->MarkLimit.load(std::memory_order_relaxed) &&
                  std::find(Pinned.begin(), Pinned.end(), C) == Pinned.end();
      if (!Dead) {
        Link = &C->Next;
        continue;
      }
      *Link = C->Next;
      std::size_t Bytes = C->IsOversized ? C->BlockBytes : ChunkBytes;
      ActiveBytes.fetch_sub(Bytes, std::memory_order_relaxed);
      Freed += Bytes;
      ToRelease.push_back(C);
    }
  }
  // releaseChunk re-takes shard locks (and the register lock for
  // oversized blocks), so it runs after the walk drops them.
  for (Chunk *C : ToRelease)
    releaseChunk(C);
  return Freed;
}

bool ChunkManager::activeChunksContain(const Word *P) const {
  for (const Shard &S : Shards) {
    std::lock_guard<SpinLock> Guard(S.Lock);
    for (Chunk *C = S.Active; C; C = C->Next)
      if (C->contains(P))
        return true;
  }
  return false;
}
