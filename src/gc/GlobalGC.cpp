//===- gc/GlobalGC.cpp - parallel stop-the-world collection (paper 3.4) ---===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global collector. Trigger: active global-heap bytes exceed the
/// threshold. The triggering vproc sets the pending flag and zeroes
/// every allocation limit; every vproc then reaches this file through
/// its next safe point and the phases proceed in lockstep:
///
///   1. Each vproc performs its minor and major collections in parallel
///      (everything live in a local heap ends up in the young area or in
///      global chunks).
///   2. A leader gathers all global chunks into per-node from-space
///      lists.
///   3. Each vproc obtains a fresh to-space chunk and scans its roots
///      and its local heap, copying reachable from-space objects.
///   4. All vprocs drain the per-node lists of unscanned to-space
///      chunks in parallel, preferring chunks homed on their own node so
///      copying traffic stays node-local, until no work remains anywhere
///      (counted-idle termination).
///   5. The leader returns the from-space chunks to the free pool
///      (preserving node affinity) and execution resumes.
///
/// Copying is racy by design -- two vprocs can reach the same from-space
/// object -- so forwarding pointers are installed with a compare-and-
/// swap; the loser rolls back its reservation when it was the last
/// allocation in its chunk and otherwise abandons the bytes.
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorImpl.h"

#include "support/Logging.h"
#include "support/SpinLock.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

namespace manti {

/// Shared state for one (or more, serially) global collections. Owned by
/// the GCWorld; reset by the leader at the start of each collection.
class GlobalCollection {
public:
  explicit GlobalCollection(GCWorld &W)
      : W(W), FromByNode(W.topology().numNodes(), nullptr),
        PendingByNode(W.topology().numNodes()) {}

  void participate(VProcHeap &H);

  // The fields and queue operations below are shared with the per-vproc
  // GlobalScanner; this class is internal to src/gc, so they are public.
  // The pending queue is one lock-free Treiber stack per node, so
  // publishing and claiming scan work never serializes the vprocs.
  void pushPending(Chunk *C) {
    PendingByNode[C->HomeNode].push(C);
    PendingCount.fetch_add(1, std::memory_order_release);
  }

  /// Pops a pending chunk, preferring \p PreferNode ("the vprocs obtain
  /// chunks on a per-node basis").
  Chunk *popPending(NodeId PreferNode) {
    unsigned N = static_cast<unsigned>(PendingByNode.size());
    for (unsigned I = 0; I < N; ++I) {
      if (Chunk *C = PendingByNode[(PreferNode + I) % N].tryPop()) {
        PendingCount.fetch_sub(1, std::memory_order_release);
        return C;
      }
    }
    return nullptr;
  }

  GCWorld &W;
  std::vector<Chunk *> FromByNode;
  std::vector<ChunkStack> PendingByNode;
  std::atomic<int> PendingCount{0};
  std::atomic<unsigned> IdleCount{0};
};

GlobalCollection *createGlobalCollection(GCWorld &W) {
  return new GlobalCollection(W);
}

void GlobalCollectionDeleter::operator()(GlobalCollection *GC) const {
  delete GC;
}

namespace {

/// Per-vproc scanning state for one global collection.
class GlobalScanner {
public:
  GlobalScanner(VProcHeap &H, GlobalCollection &GC) : H(H), GC(GC) {}

  /// Forwards one word: from-space global objects are copied into this
  /// vproc's to-space chunk; local (young) pointers and already-copied
  /// objects pass through.
  Word forwardGlobal(Word W) {
    if (!wordIsPtr(W))
      return W;
    Word *Obj = reinterpret_cast<Word *>(W);
    if (H.local().contains(Obj))
      return W; // young data stays in the local heap
    Chunk *Source = H.world().chunks().chunkOf(Obj);
    if (!Source->InFromSpace)
      return W; // already in to-space

    std::atomic_ref<Word> HdrRef(headerOf(Obj));
    Word Hdr = HdrRef.load(std::memory_order_acquire);
    for (;;) {
      if (isForwardWord(Hdr))
        return Hdr; // another vproc won the race
      uint64_t Foot = objectFootprintWords(Hdr);
      Chunk *Used = nullptr;
      Word *NewHdrSlot = reserve(Foot, &Used);
      std::memcpy(NewHdrSlot, Obj - 1, Foot * sizeof(Word));
      Word NewW = reinterpret_cast<Word>(NewHdrSlot + 1);
      if (HdrRef.compare_exchange_strong(Hdr, NewW,
                                         std::memory_order_acq_rel)) {
        H.Stats.GlobalBytesCopied += Foot * sizeof(Word);
        TrafficMatrix &T = H.world().traffic();
        T.record(Source->HomeNode, H.node(), Foot * sizeof(Word));
        T.record(H.node(), Used->HomeNode, Foot * sizeof(Word));
        // A dedicated oversized copy is shared scan work (it is not our
        // current alloc chunk and nobody else knows about it yet).
        if (Used != H.CurChunk && Used->ScanPtr < Used->AllocPtr)
          GC.pushPending(Used);
        return NewW;
      }
      // Lost the race; Hdr now holds the winner's forwarding pointer.
      // Reclaim the reservation when nothing followed it.
      if (Used->AllocPtr == NewHdrSlot + Foot)
        Used->AllocPtr = NewHdrSlot;
    }
  }

  /// Forwards one pointer slot in place. Slots inside *global* objects
  /// can be reached twice in the same collection -- once through a root
  /// walk (a proxy payload slot is visited via the owner's proxy-table
  /// roots) and once through the shared to-space scan -- so the access
  /// must be atomic. Both visitors store the same forwarding target
  /// (the copy itself is ordered by the header CAS in forwardGlobal),
  /// so relaxed ordering suffices.
  void visitSlot(Word *Slot) {
    std::atomic_ref<Word> S(*Slot);
    Word Old = S.load(std::memory_order_relaxed);
    Word New = forwardGlobal(Old);
    if (New != Old)
      S.store(New, std::memory_order_relaxed);
  }

  /// Phase 3: forward this vproc's roots and scan its local heap for
  /// pointers into from-space.
  void forwardRootsAndLocalHeap() {
    // Forward the proxy-table entries first: they reference proxy
    // objects in the global heap, and the root walk below visits the
    // proxies' payload slots, which should land in the to-space copies.
    for (Word *&Proxy : H.ProxyTable)
      Proxy = reinterpret_cast<Word *>(
          forwardGlobal(reinterpret_cast<Word>(Proxy)));
    forEachVProcRoot(H, [this](Word *Slot) { visitSlot(Slot); });

    // "...and scans the vproc's roots and local heap": after the minor
    // and major collections the local heap holds only the freshly-minted
    // young data (now the old area), which is husk-free and linearly
    // walkable.
    LocalHeap &L = H.local();
    const ObjectDescriptorTable &Descs = H.world().descriptors();
    for (Word *Scan = L.base(); Scan < L.oldTop();) {
      Word Hdr = *Scan;
      MANTI_CHECK(isHeaderWord(Hdr), "husk in local heap during global GC");
      forEachPtrField(Scan + 1, Hdr, Descs,
                      [this](Word *Slot) { visitSlot(Slot); });
      Scan += objectFootprintWords(Hdr);
    }
  }

  /// Leader only: forward the process-wide roots (join cells, channels).
  void forwardGlobalRoots() {
    auto Visit = [this](Word *Slot) { visitSlot(Slot); };
    H.world().enumerateGlobalRoots(fieldVisitTrampoline<decltype(Visit)>,
                                   &Visit);
  }

  /// Phase 4: cooperative parallel scan until no vproc has work.
  void scanLoop() {
    unsigned NumVProcs = H.world().numVProcs();
    for (;;) {
      if (scanSome())
        continue;
      GC.IdleCount.fetch_add(1, std::memory_order_acq_rel);
      for (;;) {
        if (GC.PendingCount.load(std::memory_order_acquire) > 0 ||
            haveLocalWork()) {
          GC.IdleCount.fetch_sub(1, std::memory_order_acq_rel);
          break;
        }
        if (GC.IdleCount.load(std::memory_order_acquire) == NumVProcs)
          return; // nobody has work and nobody can create any
        std::this_thread::yield();
      }
    }
  }

private:
  Word *reserve(uint64_t Foot, Chunk **Used) {
    Chunk *Before = H.CurChunk;
    Word *P = H.globalReserve(Foot, Used);
    // When the reservation rotated our current chunk, the filled one may
    // still hold unscanned data: publish it as shared work, unless we
    // are the one scanning it right now.
    if (H.CurChunk != Before && Before && Before != ScanC &&
        Before->ScanPtr < Before->AllocPtr)
      GC.pushPending(Before);
    return P;
  }

  bool haveLocalWork() const {
    if (ScanC && ScanC->ScanPtr < ScanC->AllocPtr)
      return true;
    return H.CurChunk && H.CurChunk->ScanPtr < H.CurChunk->AllocPtr;
  }

  /// Scans a bounded batch of objects. \returns false when no work was
  /// available.
  bool scanSome() {
    if (!ScanC || ScanC->ScanPtr >= ScanC->AllocPtr) {
      ScanC = nullptr;
      if (H.CurChunk && H.CurChunk->ScanPtr < H.CurChunk->AllocPtr)
        ScanC = H.CurChunk;
      else if ((ScanC = GC.popPending(H.node())))
        ++H.Stats.GlobalChunksScanned;
      if (!ScanC)
        return false;
    }
    const ObjectDescriptorTable &Descs = H.world().descriptors();
    GCWorld &W = H.world();
    for (unsigned Budget = 64;
         Budget != 0 && ScanC->ScanPtr < ScanC->AllocPtr; --Budget) {
      Word Hdr = *ScanC->ScanPtr;
      MANTI_CHECK(isHeaderWord(Hdr), "corrupt header in to-space chunk");
      Word *Obj = ScanC->ScanPtr + 1;
      if (headerId(Hdr) == IdProxy) {
        // Proxies are the one sanctioned global-to-local reference: the
        // payload is traced only when it no longer points into the
        // owner's local heap (unresolved payloads are kept alive by the
        // owner's proxy-table roots instead). A negative owner field
        // marks a resolved proxy, whose payload is always global.
        Word Payload =
            std::atomic_ref<Word>(Obj[1]).load(std::memory_order_relaxed);
        if (wordIsPtr(Payload)) {
          int64_t OwnerOrResolved = Value::fromBits(Obj[0]).asInt();
          Word *Target = reinterpret_cast<Word *>(Payload);
          if (OwnerOrResolved < 0 ||
              !W.heap(static_cast<unsigned>(OwnerOrResolved))
                   .local()
                   .contains(Target))
            visitSlot(&Obj[1]);
        }
      } else {
        forEachPtrField(Obj, Hdr, Descs,
                        [this](Word *Slot) { visitSlot(Slot); });
      }
      ScanC->ScanPtr += objectFootprintWords(Hdr);
    }
    return true;
  }

  VProcHeap &H;
  GlobalCollection &GC;
  Chunk *ScanC = nullptr;
};

} // namespace

void GlobalCollection::participate(VProcHeap &H) {
  ScopedTimer Timer(H.Stats.GlobalPause);

  bool Leader;
  {
    ScopedTimer Rendezvous(H.Stats.GlobalRendezvousPause);

    // Phase 1: parallel local collections; everything live becomes young
    // data or global-heap objects (end state of Fig. 3 on every vproc).
    minorGCImpl(H);
    majorGCImpl(H, EvacuateMode::OldOnly);

    // Phase 2: leader gathers from-space once every vproc's local
    // collections are done.
    Leader = W.GCBarrier.arriveAndWait();
    if (Leader) {
      W.Chunks.gatherFromSpace(FromByNode);
      for (ChunkStack &Stack : PendingByNode)
        Stack.clear();
      PendingCount.store(0, std::memory_order_relaxed);
      IdleCount.store(0, std::memory_order_relaxed);
    }
    W.GCBarrier.arriveAndWait();
  }

  // Our current chunk now belongs to from-space.
  H.CurChunk = nullptr;

  {
    ScopedTimer Mark(H.Stats.GlobalMarkPause);
    // Phase 3 + 4: roots, local heap, then cooperative parallel scan.
    GlobalScanner Scanner(H, *this);
    Scanner.forwardRootsAndLocalHeap();
    if (Leader)
      Scanner.forwardGlobalRoots();
    Scanner.scanLoop();
  }

  // Phase 5: return from-space to the free pool and resume.
  bool Leader2 = W.GCBarrier.arriveAndWait();
  if (Leader2) {
    ScopedTimer Sweep(H.Stats.GlobalSweepPause);
    uint64_t Freed = 0;
    for (Chunk *&Head : FromByNode) {
      while (Chunk *C = Head) {
        Head = C->Next;
        Freed += C->sizeBytes();
        W.Chunks.releaseChunk(C);
      }
    }
    // Adapt the trigger so a nearly-live heap does not thrash: at least
    // the configured budget, and at least twice the surviving data.
    uint64_t Live = W.Chunks.activeBytes();
    uint64_t Base = static_cast<uint64_t>(W.Config.GlobalGCBytesPerVProc) *
                    W.numVProcs();
    W.GlobalGCThreshold.store(std::max(Base, 2 * Live),
                              std::memory_order_relaxed);
    W.GlobalLiveBytes.store(Live, std::memory_order_relaxed);
    for (auto &Heap : W.Heaps)
      Heap->GlobalAllocSinceCycle.store(0, std::memory_order_relaxed);
    W.GlobalGCsCompleted.fetch_add(1, std::memory_order_relaxed);
    W.Phase.store(GCPhase::Idle, std::memory_order_release);
    // Completion rings the broadcast doorbell too: anything parked on
    // "no collection pending" (the runtime's between-runs drain wait)
    // resumes now instead of running out its park backstop.
    W.notifyWakeupHook();
    MANTI_DEBUG("gc", "global GC #%llu: freed %llu bytes, live %llu bytes",
                static_cast<unsigned long long>(W.globalGCCount()),
                static_cast<unsigned long long>(Freed),
                static_cast<unsigned long long>(Live));
  }
  W.GCBarrier.arriveAndWait();

  // Each vproc restores its own allocation limit and resumes.
  H.local().restoreLimit();
}

void globalGCParticipate(VProcHeap &H) {
  H.world().GCState->participate(H);
}

} // namespace manti
