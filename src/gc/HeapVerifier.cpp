//===- gc/HeapVerifier.cpp -------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"

#include "gc/CollectorImpl.h"
#include "support/Assert.h"

#include <set>
#include <vector>

using namespace manti;

namespace {

/// Where an object lives, from the tracer's point of view.
enum class RegionKind { OwnLocal, OtherLocal, Global, Unknown };

class Tracer {
public:
  Tracer(GCWorld &W) : W(W) {}

  VerifyResult Result;

  RegionKind classify(const Word *Obj, const VProcHeap *Perspective) const {
    for (unsigned I = 0; I < W.numVProcs(); ++I) {
      if (W.heap(I).local().contains(Obj))
        return &W.heap(I) == Perspective ? RegionKind::OwnLocal
                                         : RegionKind::OtherLocal;
    }
    if (W.chunks().activeChunksContain(Obj))
      return RegionKind::Global;
    return RegionKind::Unknown;
  }

  /// Adds an edge from \p FromHeap (null for global roots / global
  /// objects) to the value \p Wd.
  void edge(const VProcHeap *FromHeap, bool FromGlobalObject, Word Wd) {
    if (!wordIsPtr(Wd))
      return;
    ++Result.Edges;
    Word *Obj = reinterpret_cast<Word *>(Wd);

    // Follow forwarding pointers the way a collector would.
    unsigned Hops = 0;
    while (isForwardWord(headerOf(Obj))) {
      ++Result.ForwardedEdges;
      Obj = reinterpret_cast<Word *>(headerOf(Obj));
      MANTI_CHECK(++Hops < 4, "forwarding-pointer cycle");
    }

    RegionKind Kind = classify(Obj, FromHeap);
    MANTI_CHECK(Kind != RegionKind::Unknown,
                "pointer to memory outside every heap");
    if (FromGlobalObject)
      MANTI_CHECK(Kind == RegionKind::Global,
                  "invariant violated: global heap points into a local heap");
    MANTI_CHECK(Kind != RegionKind::OtherLocal,
                "invariant violated: pointer into another vproc's local heap");

    if (!Visited.insert(Obj).second)
      return;
    Worklist.push_back({Obj, Kind == RegionKind::Global ? nullptr : FromHeap,
                        Kind == RegionKind::Global});
  }

  void drain() {
    while (!Worklist.empty()) {
      auto [Obj, Heap, IsGlobal] = Worklist.back();
      Worklist.pop_back();
      scanObject(Obj, Heap, IsGlobal);
    }
  }

private:
  void scanObject(Word *Obj, const VProcHeap *Heap, bool IsGlobal) {
    Word Hdr = headerOf(Obj);
    MANTI_CHECK(isHeaderWord(Hdr), "object with forwarded header reached");
    uint16_t Id = headerId(Hdr);
    uint64_t Len = headerLenWords(Hdr);
    MANTI_CHECK(Len <= MaxObjectWords, "object length out of range");

    if (IsGlobal)
      ++Result.GlobalObjects;
    else
      ++Result.LocalObjects;

    if (Id == IdRaw)
      return;
    if (Id == IdProxy) {
      MANTI_CHECK(IsGlobal, "proxy object found in a local heap");
      ++Result.Proxies;
      int64_t OwnerOrResolved = Value::fromBits(Obj[0]).asInt();
      Word Payload = Obj[1];
      if (!wordIsPtr(Payload))
        return;
      if (OwnerOrResolved >= 0) {
        // Unresolved: the payload may point into the *owner's* local
        // heap -- the sanctioned exception. Trace it from the owner's
        // perspective.
        MANTI_CHECK(static_cast<uint64_t>(OwnerOrResolved) < W.numVProcs(),
                    "proxy owner id out of range");
        VProcHeap &Owner = W.heap(static_cast<unsigned>(OwnerOrResolved));
        edge(&Owner, /*FromGlobalObject=*/false, Payload);
      } else {
        edge(nullptr, /*FromGlobalObject=*/true, Payload);
      }
      return;
    }
    if (Id == IdVector) {
      for (uint64_t I = 0; I != Len; ++I)
        edge(Heap, IsGlobal, Obj[I]);
      return;
    }
    const ObjectDescriptor &Desc = W.descriptors().lookup(Id);
    MANTI_CHECK(Desc.sizeWords() == Len,
                "mixed object length disagrees with its descriptor");
    for (unsigned I = 0; I < Desc.numPtrFields(); ++I)
      edge(Heap, IsGlobal, Obj[Desc.ptrOffsets()[I]]);
  }

  GCWorld &W;
  std::set<Word *> Visited;
  struct Item {
    Word *Obj;
    const VProcHeap *Heap;
    bool IsGlobal;
  };
  std::vector<Item> Worklist;
};

void traceVProcRoots(Tracer &T, VProcHeap &H) {
  forEachVProcRoot(H, [&](Word *Slot) {
    T.edge(&H, /*FromGlobalObject=*/false, *Slot);
  });
  for (Word *Proxy : H.ProxyTable)
    T.edge(&H, /*FromGlobalObject=*/false,
           reinterpret_cast<Word>(Proxy));
}

} // namespace

VerifyResult manti::verifyHeap(VProcHeap &H) {
  Tracer T(H.world());
  traceVProcRoots(T, H);
  T.drain();
  return T.Result;
}

VerifyResult manti::verifyWorld(GCWorld &W) {
  Tracer T(W);
  for (unsigned I = 0; I < W.numVProcs(); ++I)
    traceVProcRoots(T, W.heap(I));
  auto Visit = [&](Word *Slot) {
    T.edge(nullptr, /*FromGlobalObject=*/true, *Slot);
  };
  W.enumerateGlobalRoots(fieldVisitTrampoline<decltype(Visit)>, &Visit);
  T.drain();
  return T.Result;
}
