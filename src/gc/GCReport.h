//===- gc/GCReport.h - human-readable collector reports -------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a world's collector statistics -- per-phase counts, bytes,
/// pause times, chunk-manager synchronization classes, scheduler
/// counters, and the inter-node traffic matrix -- as text. Examples and
/// benchmarks use it; it is the library's equivalent of a runtime's
/// `+RTS -s` output.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_GCREPORT_H
#define MANTI_GC_GCREPORT_H

#include "gc/Heap.h"
#include "runtime/SchedStats.h"

#include <cstdio>
#include <string>

namespace manti {

/// Writes a full report for \p World to \p Out. Call while the vprocs
/// are quiescent.
void printGCReport(std::FILE *Out, GCWorld &World);

/// Same report as a string (for tests).
std::string gcReportString(GCWorld &World);

/// Report including a scheduler section rendered from \p Sched
/// (typically Runtime::aggregateSchedStats()).
void printGCReport(std::FILE *Out, GCWorld &World, const SchedStats &Sched);
std::string gcReportString(GCWorld &World, const SchedStats &Sched);

} // namespace manti

#endif // MANTI_GC_GCREPORT_H
