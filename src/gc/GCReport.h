//===- gc/GCReport.h - structured collector/scheduler reports -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a world's collector statistics -- per-phase counts, bytes,
/// pause times, chunk-manager synchronization classes, scheduler
/// counters, and the inter-node traffic matrix -- from one structured
/// Report. A Report is a named-metric list: the human table and the
/// machine-readable metric rows (bench/GCBenchUtils.h JsonReport) are
/// both rendered from the same entries, so the two can never drift
/// apart. It is the library's equivalent of a runtime's `+RTS -s`
/// output.
///
/// Usage:
/// \code
///   Report R = buildGCReport(World, RT.aggregateSchedStats());
///   std::fputs(R.human().c_str(), stdout);      // the table
///   Json.addRow(Topo, Cfg, R.rows());           // the same metrics
///   double MaxPause = R.value("pause.max_us");  // a single metric
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_GCREPORT_H
#define MANTI_GC_GCREPORT_H

#include "gc/Heap.h"
#include "runtime/SchedStats.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace manti {

/// A structured report: sections of named metrics plus free-form notes.
/// Metric keys are stable identifiers ("minor.collections"); the human
/// rendering groups each section onto wrapped lines, and rows() exposes
/// the identical (key, value) list for JSON emission.
class Report {
public:
  /// How a metric's value is formatted in the human table. The JSON
  /// side always gets the raw double.
  enum class Unit {
    Count,   ///< integer-ish count, "%.0f" (or %.3g when fractional)
    Bytes,   ///< formatBytes ("1.5 MB")
    Micros,  ///< "%.1f us"
    Millis,  ///< "%.1f ms"
    Percent, ///< "%.1f%%"
    Seconds, ///< "%.3f s"
  };

  explicit Report(std::string Title = "") : Title(std::move(Title)) {}

  /// Starts a new section; subsequent metrics get "<name>." key prefixes
  /// and render grouped under one "<name>:" heading.
  Report &section(std::string Name);

  /// Adds a metric to the current section. \p Key is the stable
  /// identifier within the section; \p Label (when empty, derived from
  /// the key with underscores as hyphens) is the human table's word.
  Report &metric(std::string Key, double V, Unit U = Unit::Count,
                 std::string Label = "");

  /// Adds a human-only context line (machine names, policy, captions).
  Report &note(std::string Text);

  /// The human table.
  std::string human() const;

  /// Every (full key, value) pair, in insertion order -- feed directly
  /// to benchutil::JsonReport::addRow.
  std::vector<std::pair<std::string, double>> rows() const;

  /// Looks up a single metric by full key ("pause.max_us"); \returns
  /// \p Fallback when absent.
  double value(const std::string &FullKey, double Fallback = 0.0) const;

  /// \returns true if \p FullKey names a metric in this report.
  bool has(const std::string &FullKey) const;

private:
  struct Entry {
    bool IsNote;        ///< note line vs metric
    std::string Key;    ///< full key (section-qualified); empty for notes
    std::string Label;  ///< human word; note text for notes
    double V = 0;
    Unit U = Unit::Count;
    std::size_t Section; ///< index into Sections; ~0 before any section
  };

  std::string Title;
  std::vector<std::string> Sections;
  std::vector<Entry> Entries;
};

/// Builds the collector report for \p World. Call while the vprocs are
/// quiescent.
Report buildGCReport(GCWorld &World);

/// Collector report plus a scheduler section rendered from \p Sched
/// (typically Runtime::aggregateSchedStats()).
Report buildGCReport(GCWorld &World, const SchedStats &Sched);

/// Convenience faces over buildGCReport(...).human().
void printGCReport(std::FILE *Out, GCWorld &World);
std::string gcReportString(GCWorld &World);
void printGCReport(std::FILE *Out, GCWorld &World, const SchedStats &Sched);
std::string gcReportString(GCWorld &World, const SchedStats &Sched);

} // namespace manti

#endif // MANTI_GC_GCREPORT_H
