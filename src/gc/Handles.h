//===- gc/Handles.h - typed, RAII-rooted handles for the mutator ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public mutator-facing allocation surface. The collector's strict
/// rooting discipline (every Value live across an allocation must sit in
/// a registered shadow-stack slot) is enforced here *by construction*
/// instead of by caller care:
///
///  * RootScope -- an RAII shadow-stack frame that owns handle storage.
///    Opening a scope marks the vproc's shadow stack; destroying it pops
///    every slot the scope created. Scopes nest like the C++ stack and
///    must be destroyed in LIFO order on the owning vproc's thread.
///
///  * Ref<T> / Ref<Object> -- handles to rooted slots. A collection
///    triggered by any allocation transparently updates the slot, so a
///    handle can never dangle. Handles are non-copyable (a copy could
///    outlive its scope) and movable; assigning a handle or a Value to a
///    handle overwrites the rooted slot in place.
///
///  * ObjectType<T> -- the typed object-layout DSL. A plain C++ struct
///    whose Value members are the GC-scanned fields describes a mixed
///    heap object; ObjectType<T> registers the ObjectDescriptor scan
///    function from that spec and generates typed field accessors
///    (Ref<T>::get<&T::Member>()) plus a safe alloc<T>() that roots its
///    pointer arguments automatically, so neither allocMixed's stale-
///    pointer footgun nor allocMixedRooted's slot gymnastics survive in
///    mutator code.
///
/// Usage:
/// \code
///   struct ListNode {
///     Value Head;                 // scanned
///     Value Tail;                 // scanned
///     int64_t Generation;         // raw
///     static constexpr const char *GcName = "list-node";
///     static constexpr auto GcPtrFields =
///         ptrFields(&ListNode::Head, &ListNode::Tail);
///   };
///   ObjectType<ListNode>::registerWith(World);  // once, at startup
///
///   RootScope S(Heap);
///   Ref<ListNode> N = alloc<ListNode>(S, ListNode{Head, Tail, 42});
///   Value H = N.get<&ListNode::Head>();         // typed field read
///   Ref<ListNode> G = promote(S, N);            // still typed, re-rooted
/// \endcode
///
/// The raw Value-level allocators (gcinternal::allocMixed and friends,
/// gc/HeapInternal.h) are the internal surface beneath this layer; only
/// the collectors and this file's own TU may include that header.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_HANDLES_H
#define MANTI_GC_HANDLES_H

#include "gc/Heap.h"
#include "support/Assert.h"

#include <cstring>
#include <tuple>
#include <type_traits>
#include <utility>

namespace manti {

/// Tag type for untyped handles: Ref<Object> (the default Ref<>) refers
/// to any heap value -- nil, a tagged int, or an object of any layout.
struct Object {};

template <typename T = Object> class Ref;
template <typename T = Object> class VecRef;
class RootScope;

namespace detail {

/// Registers \p Slots (rooted Value slots in descriptor offset order) on
/// the shadow stack for the duration of a mixed allocation, then calls
/// the internal allocMixedRooted. Lives in Handles.cpp so the raw
/// allocator (gc/HeapInternal.h) is touched only from the handle
/// layer's own TU.
Value allocMixedViaSlots(VProcHeap &H, uint16_t Id, const Word *RawFields,
                         Value *const *PtrFieldSlots, unsigned NumSlots);

/// Temporarily roots \p Slots[0..N) while a value-taking allocator runs.
class ScopedSlotRoots {
public:
  ScopedSlotRoots(VProcHeap &H, Value *Slots, std::size_t N) : H(H), N(N) {
    for (std::size_t I = 0; I < N; ++I)
      H.ShadowStack.push_back(&Slots[I]);
  }
  ~ScopedSlotRoots() { H.ShadowStack.resize(H.ShadowStack.size() - N); }

  ScopedSlotRoots(const ScopedSlotRoots &) = delete;
  ScopedSlotRoots &operator=(const ScopedSlotRoots &) = delete;

private:
  VProcHeap &H;
  std::size_t N;
};

/// Byte offset of member \p M within T, in 8-byte words. Member-pointer
/// offsets are not constexpr-accessible portably, so a static probe
/// instance is measured once per (T, member-type) instantiation.
template <typename T, typename M> unsigned wordOffsetOf(M T::*Member) {
  static const T Probe{};
  auto Off = reinterpret_cast<const char *>(&(Probe.*Member)) -
             reinterpret_cast<const char *>(&Probe);
  return static_cast<unsigned>(Off / sizeof(Word));
}

/// Reads a T::Member-typed field out of a heap word.
template <typename MT> MT fieldFromWord(Word W) {
  static_assert(sizeof(MT) == sizeof(Word),
                "GC object members must be word-sized");
  MT Out;
  std::memcpy(&Out, &W, sizeof(MT));
  return Out;
}
template <> inline Value fieldFromWord<Value>(Word W) {
  return Value::fromBits(W);
}

} // namespace detail

/// Builds a constexpr pointer-field spec for ObjectType<T>: list the
/// Value members of T, in declaration order.
template <typename... Ms> constexpr auto ptrFields(Ms... Members) {
  return std::make_tuple(Members...);
}

//===----------------------------------------------------------------------===//
// ObjectType<T>
//===----------------------------------------------------------------------===//

/// Typed layout descriptor for a mixed heap object modeled by the plain
/// struct \p T. Requirements on T:
///  * standard layout, trivially copyable, default constructible;
///  * every member is 8 bytes (Value for scanned fields, int64_t /
///    uint64_t / double / Word for raw fields);
///  * `static constexpr const char *GcName` -- the registered type name;
///  * `static constexpr auto GcPtrFields = ptrFields(&T::A, ...)` --
///    the Value members, in declaration order.
///
/// Object IDs are per-GCWorld (the descriptor table is world state), so
/// registration binds the id in the world's typed-id registry rather
/// than in a global.
template <typename T> class ObjectType {
  static_assert(std::is_standard_layout_v<T> &&
                    std::is_trivially_copyable_v<T>,
                "GC object types must be standard-layout and trivially "
                "copyable");
  static_assert(sizeof(T) % sizeof(Word) == 0,
                "GC object types must be a whole number of 8-byte words");

public:
  static constexpr unsigned SizeWords =
      static_cast<unsigned>(sizeof(T) / sizeof(Word));
  static constexpr unsigned NumPtrFields =
      static_cast<unsigned>(std::tuple_size_v<decltype(T::GcPtrFields)>);

  /// Registers T's descriptor with \p W and binds its object ID in the
  /// world's typed-id registry. Call once per world, before vprocs run.
  /// \returns the new object ID.
  static uint16_t registerWith(GCWorld &W) {
    MANTI_CHECK(W.typedObjectId(tag()) == 0,
                "object type already registered with this world");
    std::vector<uint16_t> Offsets;
    Offsets.reserve(NumPtrFields);
    std::apply(
        [&](auto... Ms) { (Offsets.push_back(ptrWordOffset(Ms)), ...); },
        T::GcPtrFields);
    for (unsigned I = 1; I < Offsets.size(); ++I)
      MANTI_CHECK(Offsets[I] > Offsets[I - 1],
                  "GcPtrFields must list Value members in declaration order");
    uint16_t Id = W.descriptors().registerMixed(T::GcName, SizeWords, Offsets);
    W.bindTypedObjectId(tag(), Id);
    return Id;
  }

  /// \returns T's object ID in \p W; aborts if T was never registered.
  static uint16_t idIn(const GCWorld &W) {
    uint16_t Id = W.typedObjectId(tag());
    MANTI_CHECK(Id != 0, "object type not registered with this world");
    return Id;
  }

  /// \returns true once registerWith(W) has run.
  static bool registeredIn(const GCWorld &W) {
    return W.typedObjectId(tag()) != 0;
  }

  /// \returns true if \p V points at a T object in \p W.
  static bool isInstance(const GCWorld &W, Value V) {
    return V.isPtr() && registeredIn(W) && objectId(V) == idIn(W);
  }

  /// Typed field read from a raw Value (no handle needed). For use in
  /// tight, allocation-free traversals; anything that allocates should
  /// hold a Ref<T> and use Ref::get instead.
  template <auto Member> static auto get(Value V) {
    return get(V, Member);
  }

  /// Runtime-member-pointer variant (e.g. indexing a constexpr array of
  /// member pointers for repeated fields).
  template <typename MT> static MT get(Value V, MT T::*Member) {
    assert(V.isPtr() && "typed field read from a non-pointer value");
    return detail::fieldFromWord<MT>(
        V.asPtr()[detail::wordOffsetOf<T, MT>(Member)]);
  }

private:
  template <typename MT> static uint16_t ptrWordOffset(MT T::*Member) {
    static_assert(std::is_same_v<MT, Value>,
                  "GcPtrFields may only list Value members");
    return static_cast<uint16_t>(detail::wordOffsetOf<T, MT>(Member));
  }

  /// Unique per-T key for the world's typed-id registry.
  static const void *tag() {
    static const char Tag = 0;
    return &Tag;
  }
};

//===----------------------------------------------------------------------===//
// RootScope
//===----------------------------------------------------------------------===//

/// An RAII shadow-stack frame that owns handle storage. All handles
/// created through a scope live in fixed-capacity slot slabs the scope
/// owns: one embedded inline, overflow slabs chained from the heap's
/// recycling list. The slabs themselves are registered with the
/// collectors (VProcHeap::SlabStack, enumerated by forEachVProcRoot), so
/// creating a slot is one slab store -- no per-slot ShadowStack push --
/// and the destructor deregisters the whole frame wholesale. Slabs never
/// move while registered, so handle slot addresses stay stable no matter
/// how many slots a scope grows. Subsumes the old GcFrame.
class RootScope {
public:
  explicit RootScope(VProcHeap &Heap)
      : Heap(Heap), Mark(Heap.ShadowStack.size()),
        SlabMark(Heap.SlabStack.size()),
        PrevSatbHeap(gcdetail::CurrentSatbHeap), Cur(&Inline) {
    // Publish the heap for the handle layer's deletion barrier
    // (satbRecordOverwrite in gc/Heap.h): scopes nest LIFO on one vproc
    // thread, so the innermost scope's heap is always current.
    gcdetail::CurrentSatbHeap = &Heap;
    // The batched registration: one push covers the inline slab's
    // (future) slots; growSlab registers overflow slabs the same way.
    Heap.SlabStack.push_back(&Inline);
  }
  ~RootScope() {
    gcdetail::CurrentSatbHeap = PrevSatbHeap;
    // Recycle this scope's overflow slabs (everything above the inline
    // slab at SlabMark; nesting is LIFO, so they are all ours), then pop
    // the whole frame in one resize each.
    auto &Slabs = Heap.SlabStack;
    for (std::size_t I = SlabMark + 1; I < Slabs.size(); ++I) {
      Slabs[I]->NextFree = Heap.SlabFreeList;
      Heap.SlabFreeList = Slabs[I];
    }
    Slabs.resize(SlabMark);
    Heap.ShadowStack.resize(Mark);
  }

  RootScope(const RootScope &) = delete;
  RootScope &operator=(const RootScope &) = delete;

  VProcHeap &heap() const { return Heap; }
  GCWorld &world() const { return Heap.world(); }

  /// Roots \p V in a fresh scope-owned slot and \returns an untyped
  /// handle to it.
  Ref<Object> root(Value V);

  /// Roots \p V as a \p T instance (checked: nil or an object whose ID
  /// matches ObjectType<T> in this world).
  template <typename T> Ref<T> rootAs(Value V);

  /// Re-roots another handle's current value into this scope. Useful for
  /// returning a result owned by an inner scope to the caller's scope.
  template <typename T> Ref<T> root(const Ref<T> &Other);

  /// Roots \p V (nil or a vector object; checked) in a fresh scope-owned
  /// slot and \returns a typed-vector handle to it.
  template <typename T = Object> VecRef<T> rootVector(Value V);

  /// Low-level escape hatch: a scope-owned rooted slot holding \p V.
  /// The reference stays valid (and registered) until the scope dies.
  Value &slot(Value V) {
    if (MANTI_UNLIKELY(Cur->Count == RootSlab::Capacity))
      growSlab();
    Value &Out = Cur->Slots[Cur->Count++];
    Out = V;
    ++NumOwned;
    return Out;
  }

  /// Registers \p Slot (an lvalue that outlives this scope) as a root
  /// without copying it into scope storage. For runtime-owned slots
  /// (task environments, mailbox cells); handles are the normal path.
  void rootExternal(Value &Slot) { Heap.ShadowStack.push_back(&Slot); }

  /// Number of slots this scope has created (tests / stats).
  std::size_t numSlots() const { return NumOwned; }

private:
  /// Chains a fresh (or recycled) overflow slab and makes it current.
  /// Out of line: slot() inlines everywhere, and growth is the cold 1/16
  /// of calls. (Handles.cpp)
  MANTI_NOINLINE void growSlab();

  VProcHeap &Heap;
  std::size_t Mark;
  std::size_t SlabMark;
  VProcHeap *PrevSatbHeap;
  RootSlab *Cur;
  std::size_t NumOwned = 0;
  /// First slab, embedded: scopes of up to RootSlab::Capacity slots (the
  /// overwhelmingly common case) never touch the heap allocator.
  RootSlab Inline;
};

//===----------------------------------------------------------------------===//
// Ref<T>
//===----------------------------------------------------------------------===//

/// A handle to a rooted slot. The slot is owned by a RootScope (or other
/// registered root storage) and is updated by every collection, so the
/// handle cannot hold a stale pointer. Non-copyable: a copy could be
/// bound somewhere that outlives the scope. Movable: move-construction
/// transfers the slot within the scope; move-assignment overwrites this
/// handle's rooted slot with the source's current value (both slots stay
/// registered, so no rooting is lost either way).
template <typename T> class Ref {
public:
  Ref(const Ref &) = delete;
  Ref &operator=(const Ref &) = delete;

  Ref(Ref &&Other) noexcept : Slot(Other.Slot) {}
  Ref &operator=(Ref &&Other) noexcept {
    satbRecordOverwrite(*Slot);
    *Slot = *Other.Slot;
    return *this;
  }

  /// Swaps the two handles' *values* (both slots stay registered).
  /// Generic std::swap would mis-compose the aliasing move-ctor with the
  /// value-copying move-assign and drop one value; this ADL overload is
  /// what unqualified swap (std::sort etc.) picks up instead.
  friend void swap(Ref &A, Ref &B) noexcept {
    Value Tmp = *A.Slot;
    *A.Slot = *B.Slot;
    *B.Slot = Tmp;
  }

  /// Overwrites the rooted slot in place (e.g. loop accumulators). The
  /// dropped value feeds the concurrent collector's deletion barrier.
  Ref &operator=(Value V) {
    satbRecordOverwrite(*Slot);
    *Slot = V;
    return *this;
  }

  /// Snapshot of the current value. Only on named handles: a snapshot
  /// taken from a temporary handle is the classic un-rooting footgun
  /// (the temporary's scope may pop before the Value is used), so it is
  /// a compile error -- bind the handle to a name first.
  Value value() const & { return *Slot; }
  Value value() const && = delete;

  /// Implicit decay to Value for interop with the Value-level accessors
  /// (vectorGet, rope::length, ...). Same lvalue-only rule as value().
  operator Value() const & { return *Slot; }
  operator Value() const && = delete;

  bool isNil() const { return Slot->isNil(); }
  bool isInt() const { return Slot->isInt(); }
  bool isPtr() const { return Slot->isPtr(); }
  int64_t asInt() const { return Slot->asInt(); }

  /// Typed field read (T described via ObjectType): N.get<&T::Member>().
  template <auto Member> auto get() const {
    static_assert(!std::is_same_v<T, Object>,
                  "typed field access requires a typed handle; use "
                  "RootScope::rootAs<T> to cast");
    return ObjectType<T>::template get<Member>(*Slot);
  }

  /// Runtime-member-pointer field read (repeated fields).
  template <typename MT> MT get(MT T::*Member) const {
    return ObjectType<T>::get(*Slot, Member);
  }

  /// The registered slot (collector-facing; tests use it to observe
  /// forwarding).
  Value *slotAddr() const { return Slot; }

private:
  friend class RootScope;
  template <typename U> friend Ref<U> promote(RootScope &S, const Ref<U> &V);
  explicit Ref(Value &Slot) : Slot(&Slot) {}

  Value *Slot;
};

//===----------------------------------------------------------------------===//
// VecRef<T>
//===----------------------------------------------------------------------===//

/// A handle to a rooted slot holding a *vector* object, with typed
/// element access -- the vector face of the handle layer, retiring raw
/// vectorGet/vectorInit from mutator code. T is the element view:
/// Object (the default) for untyped elements, or an ObjectType-described
/// struct, in which case rooted element reads are rootAs<T>-checked.
///
/// Like Ref, a VecRef *is* a registered slot: collections update it
/// transparently, so it may be held across allocations, and assigning a
/// Value re-targets the slot in place -- which makes the cons-list
/// traversal pattern `Cell = Cell.at(1)` allocation-free and rooted:
/// \code
///   RootScope S(H);
///   VecRef<> Cell = S.rootVector(List);
///   for (; !Cell.isNil(); Cell = Cell.at(1))
///     Sum += Cell.intAt(0);
/// \endcode
template <typename T> class VecRef {
public:
  VecRef(const VecRef &) = delete;
  VecRef &operator=(const VecRef &) = delete;

  VecRef(VecRef &&Other) noexcept : Slot(Other.Slot) {}
  VecRef &operator=(VecRef &&Other) noexcept {
    satbRecordOverwrite(*Slot);
    *Slot = *Other.Slot;
    return *this;
  }

  /// Swaps the two handles' *values* (both slots stay registered) --
  /// the same ADL overload Ref needs: generic std::swap would
  /// mis-compose the aliasing move-ctor with the value-copying
  /// move-assign and drop one value.
  friend void swap(VecRef &A, VecRef &B) noexcept {
    Value Tmp = *A.Slot;
    *A.Slot = *B.Slot;
    *B.Slot = Tmp;
  }

  /// Re-targets the rooted slot (nil or a vector object; checked). The
  /// dropped value feeds the concurrent collector's deletion barrier.
  VecRef &operator=(Value V) {
    assert((V.isNil() || (V.isPtr() && objectId(V) == IdVector)) &&
           "VecRef may only hold vector objects");
    satbRecordOverwrite(*Slot);
    *Slot = V;
    return *this;
  }

  /// Same lvalue-only decay rules as Ref (see Ref::value).
  Value value() const & { return *Slot; }
  Value value() const && = delete;
  operator Value() const & { return *Slot; }
  operator Value() const && = delete;

  bool isNil() const { return Slot->isNil(); }
  uint64_t size() const { return vectorLen(*Slot); }

  /// Element snapshot. For allocation-free traversals; anything that
  /// allocates between the read and the use should root the element
  /// (get below) instead.
  Value at(uint64_t I) const { return vectorGet(*Slot, I); }
  /// Typed scalar element read.
  int64_t intAt(uint64_t I) const { return at(I).asInt(); }

  /// Rooted, typed element read: the element comes back as a checked
  /// Ref<T> rooted in \p S.
  Ref<T> get(RootScope &S, uint64_t I) const;

  /// Initialization-time element store (PML values are immutable once
  /// published, so only before the vector escapes its allocator).
  void init(uint64_t I, Value E) { vectorInit(*Slot, I, E); }
  void init(uint64_t I, const Ref<T> &E) { init(I, E.value()); }

  /// Static typed element reads for raw-Value traversals that hold no
  /// handle (the vector analogue of ObjectType<T>::get(Value)).
  static Value get(Value Vec, uint64_t I) { return vectorGet(Vec, I); }
  static int64_t getInt(Value Vec, uint64_t I) {
    return get(Vec, I).asInt();
  }

  /// The registered slot (collector-facing; tests observe forwarding).
  Value *slotAddr() const { return Slot; }

private:
  friend class RootScope;
  explicit VecRef(Value &Slot) : Slot(&Slot) {}

  Value *Slot;
};

inline Ref<Object> RootScope::root(Value V) { return Ref<Object>(slot(V)); }

template <typename T> Ref<T> RootScope::rootAs(Value V) {
  if constexpr (!std::is_same_v<T, Object>)
    MANTI_CHECK(!V.isPtr() || objectId(V) == ObjectType<T>::idIn(world()),
                "rootAs: value is not an instance of the requested type");
  return Ref<T>(slot(V));
}

template <typename T> Ref<T> RootScope::root(const Ref<T> &Other) {
  return Ref<T>(slot(Other.value()));
}

template <typename T> VecRef<T> RootScope::rootVector(Value V) {
  MANTI_CHECK(V.isNil() || (V.isPtr() && objectId(V) == IdVector),
              "rootVector: value is not a vector object");
  return VecRef<T>(slot(V));
}

template <typename T>
Ref<T> VecRef<T>::get(RootScope &S, uint64_t I) const {
  return S.rootAs<T>(at(I));
}

//===----------------------------------------------------------------------===//
// Allocation through handles
//===----------------------------------------------------------------------===//

/// Allocates a mixed object of type \p T initialized from \p Init. The
/// Value members of \p Init are copied into rooted slots before the
/// allocation and re-read afterwards, so a collection triggered by the
/// allocation cannot leave stale pointers in the new object. \returns a
/// typed handle rooted in \p S.
template <typename T> Ref<T> alloc(RootScope &S, const T &Init) {
  uint16_t Id = ObjectType<T>::idIn(S.world());
  Word Raw[ObjectType<T>::SizeWords];
  std::memcpy(Raw, &Init, sizeof(T));

  constexpr unsigned NP = ObjectType<T>::NumPtrFields;
  Value Slots[NP > 0 ? NP : 1];
  Value *SlotPtrs[NP > 0 ? NP : 1];
  unsigned I = 0;
  std::apply(
      [&](auto... Ms) {
        ((Slots[I] = Init.*Ms, SlotPtrs[I] = &Slots[I], ++I), ...);
      },
      T::GcPtrFields);
  Value V = detail::allocMixedViaSlots(S.heap(), Id, Raw, SlotPtrs, NP);
  return S.rootAs<T>(V);
}

/// Convenience: alloc<T>(S, head, tail, 42) aggregate-initializes T.
/// Handle arguments decay to Values through their implicit conversion.
/// (A single T argument dispatches to the overload above instead.)
template <typename T, typename... Args,
          typename = std::enable_if_t<!(sizeof...(Args) == 1 &&
                                        (std::is_same_v<std::decay_t<Args>,
                                                        T> &&
                                         ...))>>
Ref<T> alloc(RootScope &S, Args &&...Fields) {
  return alloc<T>(S, T{std::forward<Args>(Fields)...});
}

/// Allocates a raw-data object (no scanned fields; see
/// VProcHeap::allocRaw).
inline Ref<Object> allocRaw(RootScope &S, const void *Data,
                            std::size_t Bytes) {
  return S.root(S.heap().allocRaw(Data, Bytes));
}

/// Allocates a raw-data object directly in the global heap.
inline Ref<Object> allocGlobalRaw(RootScope &S, const void *Data,
                                  std::size_t Bytes) {
  return S.root(S.heap().allocGlobalRaw(Data, Bytes));
}

/// Allocates a vector of the given elements (Values or handles), rooting
/// them across the allocation.
template <typename... Vs>
Ref<Object> allocVectorOf(RootScope &S, const Vs &...Elems) {
  Value Tmp[sizeof...(Vs) > 0 ? sizeof...(Vs) : 1] = {
      static_cast<Value>(Elems)...};
  Value V;
  {
    // The temporary roots must be popped *before* the result is rooted
    // in S: S.root pushes onto the same shadow stack, and a LIFO pop
    // after it would deregister the result slot instead of Tmp's.
    detail::ScopedSlotRoots Roots(S.heap(), Tmp, sizeof...(Vs));
    V = S.heap().allocVector(Tmp, sizeof...(Vs));
  }
  return S.root(V);
}

/// Allocates a vector of \p N copies of a (rooted-across-collection)
/// fill value.
inline Ref<Object> allocVectorFill(RootScope &S, std::size_t N, Value Fill) {
  return S.root(S.heap().allocVectorFill(N, Fill));
}

/// Allocates a vector whose elements are re-read from the rooted slots
/// of the given handles after any collection.
inline Ref<Object> allocVector(RootScope &S, const Value *Elems,
                               std::size_t N) {
  // The caller vouches that Elems points at rooted slots (e.g. obtained
  // from RootScope::slot); handles should prefer allocVectorOf.
  return S.root(S.heap().allocVector(Elems, N));
}

/// Allocates a vector of \p N copies of a non-pointer \p Fill value as a
/// typed-vector handle, for init-then-publish construction
/// (VecRef::init each element before the vector escapes).
template <typename T = Object>
VecRef<T> allocVec(RootScope &S, std::size_t N,
                   Value Fill = Value::nil()) {
  return S.rootVector<T>(S.heap().allocVectorFill(N, Fill));
}

//===----------------------------------------------------------------------===//
// Promotion through handles
//===----------------------------------------------------------------------===//

/// Promotes the handle's object graph to the global heap and \returns a
/// handle to the promoted value, rooted in \p S (see VProcHeap::promote;
/// stale copies elsewhere are repaired lazily by the next local
/// collection).
template <typename T> Ref<T> promote(RootScope &S, const Ref<T> &V) {
  return Ref<T>(S.slot(S.heap().promote(V.value())));
}

/// In-place promotion: overwrites the handle's rooted slot with the
/// promoted value.
template <typename T> void promoteInPlace(RootScope &S, Ref<T> &V) {
  V = S.heap().promote(V.value());
}

} // namespace manti

#endif // MANTI_GC_HANDLES_H
