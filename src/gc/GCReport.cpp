//===- gc/GCReport.cpp -----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/GCReport.h"

#include "support/Stats.h"

#include <cmath>
#include <cstdio>

using namespace manti;

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

namespace {

/// Section names become key prefixes: "global heap" -> "global_heap.".
std::string sanitizeKey(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name)
    Out += (C == ' ' || C == '-') ? '_' : C;
  return Out;
}

std::string formatValue(double V, Report::Unit U) {
  char Buf[48];
  switch (U) {
  case Report::Unit::Bytes:
    formatBytes(V < 0 ? 0 : static_cast<uint64_t>(V), Buf, sizeof(Buf));
    break;
  case Report::Unit::Micros:
    std::snprintf(Buf, sizeof(Buf), "%.1f us", V);
    break;
  case Report::Unit::Millis:
    std::snprintf(Buf, sizeof(Buf), "%.1f ms", V);
    break;
  case Report::Unit::Percent:
    std::snprintf(Buf, sizeof(Buf), "%.1f%%", V);
    break;
  case Report::Unit::Seconds:
    std::snprintf(Buf, sizeof(Buf), "%.3f s", V);
    break;
  case Report::Unit::Count:
    if (std::floor(V) == V && std::fabs(V) < 1e15)
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(V));
    else
      std::snprintf(Buf, sizeof(Buf), "%.2f", V);
    break;
  }
  return Buf;
}

} // namespace

Report &Report::section(std::string Name) {
  Sections.push_back(std::move(Name));
  return *this;
}

Report &Report::metric(std::string Key, double V, Unit U,
                       std::string Label) {
  Entry E;
  E.IsNote = false;
  E.Label = Label.empty() ? sanitizeKey(Key) : std::move(Label);
  if (Label.empty())
    for (char &C : E.Label)
      if (C == '_')
        C = '-';
  std::string Prefix =
      Sections.empty() ? "" : sanitizeKey(Sections.back()) + ".";
  E.Key = Prefix + std::move(Key);
  E.V = V;
  E.U = U;
  E.Section = Sections.empty() ? ~std::size_t{0} : Sections.size() - 1;
  Entries.push_back(std::move(E));
  return *this;
}

Report &Report::note(std::string Text) {
  Entry E;
  E.IsNote = true;
  E.Label = std::move(Text);
  E.Section = Sections.empty() ? ~std::size_t{0} : Sections.size() - 1;
  Entries.push_back(std::move(E));
  return *this;
}

std::string Report::human() const {
  std::string Out;
  if (!Title.empty())
    Out += "=== " + Title + " ===\n";

  // Render in entry order, emitting each section heading once and
  // wrapping its metrics onto continuation lines.
  std::size_t CurSection = ~std::size_t{0} - 1; // "nothing emitted yet"
  std::string Line;
  auto FlushLine = [&] {
    if (!Line.empty()) {
      Out += Line;
      Out += "\n";
      Line.clear();
    }
  };
  for (const Entry &E : Entries) {
    if (E.IsNote) {
      FlushLine();
      CurSection = ~std::size_t{0} - 1; // a heading reopens after a note
      Out += E.Label;
      Out += "\n";
      continue;
    }
    std::string Item = E.Label + " " + formatValue(E.V, E.U);
    if (E.Section != CurSection) {
      FlushLine();
      CurSection = E.Section;
      std::string Heading =
          E.Section == ~std::size_t{0} ? "" : Sections[E.Section] + ": ";
      Line = Heading + Item;
      continue;
    }
    if (Line.size() + 2 + Item.size() > 78) {
      Line += ",";
      FlushLine();
      Line = "  " + Item;
    } else {
      Line += ", " + Item;
    }
  }
  FlushLine();
  return Out;
}

std::vector<std::pair<std::string, double>> Report::rows() const {
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Entries.size());
  for (const Entry &E : Entries)
    if (!E.IsNote)
      Out.emplace_back(E.Key, E.V);
  return Out;
}

double Report::value(const std::string &FullKey, double Fallback) const {
  for (const Entry &E : Entries)
    if (!E.IsNote && E.Key == FullKey)
      return E.V;
  return Fallback;
}

bool Report::has(const std::string &FullKey) const {
  for (const Entry &E : Entries)
    if (!E.IsNote && E.Key == FullKey)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

Report manti::buildGCReport(GCWorld &World) {
  Report R("manticore-gc report");
  GCStats S = World.aggregateStats();

  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "vprocs: %u on %s (%u nodes, policy %s)",
                World.numVProcs(), World.topology().name().c_str(),
                World.topology().numNodes(),
                allocPolicyName(World.policy().kind()));
  R.note(Buf);

  R.section("allocation")
      .metric("local_bytes", static_cast<double>(S.BytesAllocatedLocal),
              Report::Unit::Bytes, "local")
      .metric("global_bytes", static_cast<double>(S.BytesAllocatedGlobal),
              Report::Unit::Bytes, "global");

  // Small-vector size-class cache effectiveness (keys alloc.sizeclass.*;
  // the serving/structures bench JSON rows carry hits/misses per cell).
  R.section("alloc")
      .metric("sizeclass.hits", static_cast<double>(S.SizeClassHits),
              Report::Unit::Count, "size-class cache hits")
      .metric("sizeclass.misses", static_cast<double>(S.SizeClassMisses),
              Report::Unit::Count, "misses")
      .metric("sizeclass.flushes", static_cast<double>(S.SizeClassFlushes),
              Report::Unit::Count, "collection flushes");

  auto Phase = [&](const char *Name, const DurationStat &D, uint64_t Bytes,
                   const char *CopiedLabel) -> Report & {
    return R.section(Name)
        .metric("collections", static_cast<double>(D.count()))
        .metric("copied_bytes", static_cast<double>(Bytes),
                Report::Unit::Bytes, CopiedLabel)
        .metric("mean_pause_us", D.meanNanos() / 1e3, Report::Unit::Micros,
                "pauses mean")
        .metric("max_pause_us", static_cast<double>(D.maxNanos()) / 1e3,
                Report::Unit::Micros, "max");
  };
  Phase("minor", S.MinorPause, S.MinorBytesCopied, "copied");
  Phase("major", S.MajorPause, S.MajorBytesPromoted, "promoted");
  Phase("promotion", S.PromotePause, S.PromoteBytes, "promoted");
  Phase("global", S.GlobalPause, S.GlobalBytesCopied, "copied")
      .metric("completed", static_cast<double>(World.globalGCCount()),
              Report::Unit::Count, "completed collections")
      .metric("concurrent", static_cast<double>(World.concurrentGCCount()),
              Report::Unit::Count, "concurrent cycles");

  // The serving-workload headline: the longest single mutator pause of
  // any phase (GCStats::maxPauseNanos), broken down by what the global
  // collection spent it on. For a concurrent cycle, mark_us covers only
  // the stopped terminal re-mark -- the bulk of tracing overlaps
  // mutation and never appears as pause.
  R.section("pause")
      .metric("max_us", static_cast<double>(S.maxPauseNanos()) / 1e3,
              Report::Unit::Micros, "max (all phases)")
      .metric("rendezvous_us",
              static_cast<double>(S.GlobalRendezvousPause.maxNanos()) / 1e3,
              Report::Unit::Micros, "max rendezvous")
      .metric("mark_us",
              static_cast<double>(S.GlobalMarkPause.maxNanos()) / 1e3,
              Report::Unit::Micros, "max stopped mark")
      .metric("sweep_us",
              static_cast<double>(S.GlobalSweepPause.maxNanos()) / 1e3,
              Report::Unit::Micros, "max sweep");

  ChunkManager &CM = World.chunks();
  R.section("global heap")
      .metric("chunks_created", static_cast<double>(CM.numChunksCreated()),
              Report::Unit::Count, "chunks created")
      .metric("batch_chunks", static_cast<double>(CM.batchChunks()),
              Report::Unit::Count, "batch/mapping")
      .metric("node_local_reuses", static_cast<double>(CM.nodeLocalReuses()),
              Report::Unit::Count, "node-local reuses")
      .metric("cross_node_steals", static_cast<double>(CM.crossNodeSteals()),
              Report::Unit::Count, "cross-node steals")
      .metric("fresh_mappings", static_cast<double>(CM.freshRegistrations()))
      .metric("active_bytes", static_cast<double>(CM.activeBytes()),
              Report::Unit::Bytes, "active")
      .metric("trigger_bytes",
              static_cast<double>(World.globalGCThresholdBytes()),
              Report::Unit::Bytes, "trigger at");
  R.section("chunk requests")
      .metric("node_local", static_cast<double>(S.ChunkLocalReuses),
              Report::Unit::Count, "node-local")
      .metric("cross_node_steals",
              static_cast<double>(S.ChunkCrossNodeSteals),
              Report::Unit::Count, "cross-node steals")
      .metric("fresh", static_cast<double>(S.ChunkFreshRegistrations));

  TrafficMatrix &T = World.traffic();
  uint64_t Total = T.totalBytes();
  if (Total > 0) {
    R.section("inter-node traffic")
        .metric("total_bytes", static_cast<double>(Total),
                Report::Unit::Bytes, "total")
        .metric("remote_pct",
                100.0 * static_cast<double>(T.remoteBytes()) /
                    static_cast<double>(Total),
                Report::Unit::Percent, "remote");
    unsigned N = World.topology().numNodes();
    for (NodeId To = 0; To < N; ++To) {
      char Key[32], Label[32];
      std::snprintf(Key, sizeof(Key), "into_node_%u_bytes", To);
      std::snprintf(Label, sizeof(Label), "into node %u", To);
      R.metric(Key, static_cast<double>(T.bytesInto(To)),
               Report::Unit::Bytes, Label);
    }
  }
  return R;
}

Report manti::buildGCReport(GCWorld &World, const SchedStats &Sched) {
  Report R = buildGCReport(World);
  R.section("scheduler")
      .metric("spawns", static_cast<double>(Sched.Spawns))
      .metric("tasks_stolen", static_cast<double>(Sched.TasksStolen),
              Report::Unit::Count, "tasks stolen")
      .metric("steal_batches", static_cast<double>(Sched.StealBatches),
              Report::Unit::Count, "batches")
      .metric("mean_steal_batch", Sched.meanStealBatch(),
              Report::Unit::Count, "mean/batch")
      .metric("node_local_batches",
              static_cast<double>(Sched.NodeLocalBatches),
              Report::Unit::Count, "node-local batches")
      .metric("cross_node_batches",
              static_cast<double>(Sched.CrossNodeBatches),
              Report::Unit::Count, "cross-node batches")
      .metric("node_local_pct", 100.0 * Sched.nodeLocalFraction(),
              Report::Unit::Percent, "node-local share")
      .metric("stolen_env_bytes", static_cast<double>(Sched.StolenEnvBytes),
              Report::Unit::Bytes, "stolen-env")
      .metric("failed_steal_rounds",
              static_cast<double>(Sched.FailedStealRounds),
              Report::Unit::Count, "failed steal rounds")
      .metric("failed_steal_attempts",
              static_cast<double>(Sched.FailedStealAttempts),
              Report::Unit::Count, "failed attempts")
      .metric("parks", static_cast<double>(Sched.Parks),
              Report::Unit::Count, "parked")
      .metric("park_ms", static_cast<double>(Sched.ParkNanos) / 1e6,
              Report::Unit::Millis, "park time")
      .metric("ring_wakeups", static_cast<double>(Sched.RingWakeups),
              Report::Unit::Count, "ring wake-ups")
      .metric("park_timeouts", static_cast<double>(Sched.ParkTimeouts),
              Report::Unit::Count, "park timeouts")
      .metric("mean_wake_us", Sched.meanRingWakeupMicros(),
              Report::Unit::Micros, "mean wake latency")
      .metric("rings_sent", static_cast<double>(Sched.RingsSent),
              Report::Unit::Count, "rings sent")
      .metric("rings_wasted", static_cast<double>(Sched.RingsWasted),
              Report::Unit::Count, "rings wasted")
      .metric("affinity_handoffs",
              static_cast<double>(Sched.AffinityHandoffs),
              Report::Unit::Count, "affinity-matched handoffs")
      .metric("steal_chunks", static_cast<double>(Sched.StealChunks),
              Report::Unit::Count, "steal-half chunks")
      .metric("mean_steal_chunks", Sched.meanStealChunks(),
              Report::Unit::Count, "mean chunks/handshake")
      .metric("tasks_shed", static_cast<double>(Sched.TasksShed),
              Report::Unit::Count, "tasks shed")
      .metric("shed_batches", static_cast<double>(Sched.ShedBatches),
              Report::Unit::Count, "shed batches")
      .metric("shed_target_misses",
              static_cast<double>(Sched.ShedTargetMisses),
              Report::Unit::Count, "shed target misses")
      .metric("shed_tasks_claimed",
              static_cast<double>(Sched.ShedTasksClaimed),
              Report::Unit::Count, "shed claimed")
      .metric("shed_claims", static_cast<double>(Sched.ShedClaims),
              Report::Unit::Count, "shed pickups")
      .metric("shed_env_bytes", static_cast<double>(Sched.ShedEnvBytes),
              Report::Unit::Bytes, "shed-env")
      .metric("patience_raises", static_cast<double>(Sched.PatienceRaises),
              Report::Unit::Count, "patience raises")
      .metric("patience_drops", static_cast<double>(Sched.PatienceDrops),
              Report::Unit::Count, "patience drops");
  return R;
}

//===----------------------------------------------------------------------===//
// Convenience faces
//===----------------------------------------------------------------------===//

std::string manti::gcReportString(GCWorld &World) {
  return buildGCReport(World).human();
}

std::string manti::gcReportString(GCWorld &World, const SchedStats &Sched) {
  return buildGCReport(World, Sched).human();
}

void manti::printGCReport(std::FILE *Out, GCWorld &World) {
  std::string Report = gcReportString(World);
  std::fwrite(Report.data(), 1, Report.size(), Out);
}

void manti::printGCReport(std::FILE *Out, GCWorld &World,
                          const SchedStats &Sched) {
  std::string Report = gcReportString(World, Sched);
  std::fwrite(Report.data(), 1, Report.size(), Out);
}
