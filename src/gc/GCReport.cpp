//===- gc/GCReport.cpp -----------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/GCReport.h"

#include "support/Stats.h"

#include <cinttypes>
#include <cstdarg>
#include <vector>

using namespace manti;

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

void appendBytes(std::string &Out, uint64_t Bytes) {
  char Buf[32];
  formatBytes(Bytes, Buf, sizeof(Buf));
  Out += Buf;
}

void appendPhase(std::string &Out, const char *Name, const DurationStat &D,
                 uint64_t Bytes) {
  appendf(Out, "  %-12s %8" PRIu64 " collections, ", Name, D.count());
  appendBytes(Out, Bytes);
  appendf(Out, " copied, pauses: mean %.1f us, max %.1f us\n",
          D.meanNanos() / 1e3, static_cast<double>(D.maxNanos()) / 1e3);
}

} // namespace

std::string manti::gcReportString(GCWorld &World) {
  std::string Out;
  GCStats S = World.aggregateStats();

  Out += "=== manticore-gc report ===\n";
  appendf(Out, "vprocs: %u on %s (%u nodes, policy %s)\n", World.numVProcs(),
          World.topology().name().c_str(), World.topology().numNodes(),
          allocPolicyName(World.policy().kind()));

  Out += "allocation:\n  local:  ";
  appendBytes(Out, S.BytesAllocatedLocal);
  Out += "\n  global: ";
  appendBytes(Out, S.BytesAllocatedGlobal);
  Out += "\ncollections:\n";
  appendPhase(Out, "minor", S.MinorPause, S.MinorBytesCopied);
  appendPhase(Out, "major", S.MajorPause, S.MajorBytesPromoted);
  appendPhase(Out, "promotion", S.PromotePause, S.PromoteBytes);
  appendPhase(Out, "global", S.GlobalPause, S.GlobalBytesCopied);

  ChunkManager &CM = World.chunks();
  appendf(Out,
          "global heap: %u chunks created (batch %u/mapping), %" PRIu64
          " node-local reuses, %" PRIu64 " cross-node steals, %" PRIu64
          " fresh mappings, ",
          CM.numChunksCreated(), CM.batchChunks(), CM.nodeLocalReuses(),
          CM.crossNodeSteals(), CM.freshRegistrations());
  appendBytes(Out, CM.activeBytes());
  appendf(Out, " active (trigger at ");
  appendBytes(Out, World.globalGCThresholdBytes());
  appendf(Out,
          ")\nchunk requests by vproc: %" PRIu64 " node-local, %" PRIu64
          " cross-node steals, %" PRIu64 " fresh\n",
          S.ChunkLocalReuses, S.ChunkCrossNodeSteals,
          S.ChunkFreshRegistrations);
  appendf(Out, "global collections: %" PRIu64 "\n", World.globalGCCount());

  TrafficMatrix &T = World.traffic();
  uint64_t Total = T.totalBytes();
  if (Total > 0) {
    appendf(Out, "inter-node traffic: ");
    appendBytes(Out, Total);
    appendf(Out, " total, %.1f%% remote\n",
            100.0 * static_cast<double>(T.remoteBytes()) /
                static_cast<double>(Total));
    unsigned N = World.topology().numNodes();
    for (NodeId To = 0; To < N; ++To) {
      appendf(Out, "  into node %u: ", To);
      appendBytes(Out, T.bytesInto(To));
      Out += "\n";
    }
  }
  return Out;
}

std::string manti::gcReportString(GCWorld &World, const SchedStats &Sched) {
  std::string Out = gcReportString(World);
  appendf(Out, "scheduler:\n  %" PRIu64 " spawns, %" PRIu64
               " tasks stolen in %" PRIu64 " batches (mean %.1f/batch)\n",
          Sched.Spawns, Sched.TasksStolen, Sched.StealBatches,
          Sched.meanStealBatch());
  appendf(Out,
          "  steal locality: %" PRIu64 " node-local, %" PRIu64
          " cross-node (%.1f%% node-local), ",
          Sched.NodeLocalBatches, Sched.CrossNodeBatches,
          100.0 * Sched.nodeLocalFraction());
  appendBytes(Out, Sched.StolenEnvBytes);
  appendf(Out, " stolen-env bytes\n");
  appendf(Out,
          "  failed steals: %" PRIu64 " rounds (%" PRIu64
          " attempts), parked %" PRIu64 " times for %.1f ms\n",
          Sched.FailedStealRounds, Sched.FailedStealAttempts, Sched.Parks,
          static_cast<double>(Sched.ParkNanos) / 1e6);
  appendf(Out,
          "  parking: %" PRIu64 " ring wake-ups, %" PRIu64
          " timeouts, mean wake latency %.1f us\n",
          Sched.RingWakeups, Sched.ParkTimeouts,
          Sched.meanRingWakeupMicros());
  appendf(Out,
          "  doorbell: %" PRIu64 " rings sent, %" PRIu64
          " wasted (no waiter), %" PRIu64 " affinity-matched handoffs\n",
          Sched.RingsSent, Sched.RingsWasted, Sched.AffinityHandoffs);
  appendf(Out,
          "  steal-half: %" PRIu64 " chunks over %" PRIu64
          " handshakes (mean %.1f chunks/handshake)\n",
          Sched.StealChunks, Sched.StealBatches, Sched.meanStealChunks());
  appendf(Out,
          "  rebalance: %" PRIu64 " tasks shed in %" PRIu64
          " batches (%" PRIu64 " target misses), %" PRIu64
          " claimed in %" PRIu64 " pickups, ",
          Sched.TasksShed, Sched.ShedBatches, Sched.ShedTargetMisses,
          Sched.ShedTasksClaimed, Sched.ShedClaims);
  appendBytes(Out, Sched.ShedEnvBytes);
  appendf(Out, " shed-env bytes\n");
  appendf(Out,
          "  patience: %" PRIu64 " adaptive raises, %" PRIu64 " drops\n",
          Sched.PatienceRaises, Sched.PatienceDrops);
  return Out;
}

void manti::printGCReport(std::FILE *Out, GCWorld &World) {
  std::string Report = gcReportString(World);
  std::fwrite(Report.data(), 1, Report.size(), Out);
}

void manti::printGCReport(std::FILE *Out, GCWorld &World,
                          const SchedStats &Sched) {
  std::string Report = gcReportString(World, Sched);
  std::fwrite(Report.data(), 1, Report.size(), Out);
}
