//===- gc/GCStats.h - per-vproc collection statistics --------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters and pause timers for every collector phase. Each vproc owns
/// one GCStats (no synchronization needed); experiments aggregate them
/// after the vprocs have stopped.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_GCSTATS_H
#define MANTI_GC_GCSTATS_H

#include "support/Stats.h"

#include <cstdint>

namespace manti {

struct GCStats {
  // Minor collections (nursery -> old data area).
  DurationStat MinorPause;
  uint64_t MinorBytesCopied = 0;
  uint64_t MinorBytesReclaimed = 0;

  // Major collections (old data area -> global heap).
  DurationStat MajorPause;
  uint64_t MajorBytesPromoted = 0;
  uint64_t MajorBytesSlid = 0;

  // Explicit promotions (sharing an object with other vprocs).
  DurationStat PromotePause;
  uint64_t PromoteCalls = 0;
  uint64_t PromoteBytes = 0;

  // Global (parallel stop-the-world) collections.
  DurationStat GlobalPause;
  uint64_t GlobalBytesCopied = 0;
  uint64_t GlobalChunksScanned = 0;

  // Per-phase breakdown of the global pause. For the STW collector the
  // three sum (approximately) to GlobalPause; for a concurrent cycle
  // only the two rendezvous windows stop this mutator, so GlobalPause
  // covers those while the mark phase runs overlapped with mutation.
  DurationStat GlobalRendezvousPause; ///< snapshot/root handshakes
  DurationStat GlobalMarkPause;       ///< tracing the mutator waited on
  DurationStat GlobalSweepPause;      ///< sweep / from-space release

  // Allocation volume.
  uint64_t BytesAllocatedLocal = 0;
  uint64_t BytesAllocatedGlobal = 0;

  // Size-class cache effectiveness (small-vector allocation): pops from
  // a per-vproc freelist vs. refills/misses, and how many times a
  // collection dropped the whole cache.
  uint64_t SizeClassHits = 0;
  uint64_t SizeClassMisses = 0;
  uint64_t SizeClassFlushes = 0;

  // Chunk acquisitions by synchronization class (paper Sections 3.1 and
  // 3.4): served from this vproc's node shard, stolen from another
  // node's shard, or by a fresh batched registration (global cost).
  uint64_t ChunkLocalReuses = 0;
  uint64_t ChunkCrossNodeSteals = 0;
  uint64_t ChunkFreshRegistrations = 0;

  /// Longest single mutator pause of any collector phase -- the number a
  /// serving workload's tail latency is bounded below by, reported
  /// alongside the request percentiles (bench/serving_kv.cpp).
  uint64_t maxPauseNanos() const {
    uint64_t Max = MinorPause.maxNanos();
    if (MajorPause.maxNanos() > Max)
      Max = MajorPause.maxNanos();
    if (PromotePause.maxNanos() > Max)
      Max = PromotePause.maxNanos();
    if (GlobalPause.maxNanos() > Max)
      Max = GlobalPause.maxNanos();
    return Max;
  }

  /// Merges another vproc's stats into this one (for reporting).
  void merge(const GCStats &O) {
    MinorPause.merge(O.MinorPause);
    MinorBytesCopied += O.MinorBytesCopied;
    MinorBytesReclaimed += O.MinorBytesReclaimed;
    MajorPause.merge(O.MajorPause);
    MajorBytesPromoted += O.MajorBytesPromoted;
    MajorBytesSlid += O.MajorBytesSlid;
    PromotePause.merge(O.PromotePause);
    PromoteCalls += O.PromoteCalls;
    PromoteBytes += O.PromoteBytes;
    GlobalPause.merge(O.GlobalPause);
    GlobalBytesCopied += O.GlobalBytesCopied;
    GlobalChunksScanned += O.GlobalChunksScanned;
    GlobalRendezvousPause.merge(O.GlobalRendezvousPause);
    GlobalMarkPause.merge(O.GlobalMarkPause);
    GlobalSweepPause.merge(O.GlobalSweepPause);
    BytesAllocatedLocal += O.BytesAllocatedLocal;
    BytesAllocatedGlobal += O.BytesAllocatedGlobal;
    SizeClassHits += O.SizeClassHits;
    SizeClassMisses += O.SizeClassMisses;
    SizeClassFlushes += O.SizeClassFlushes;
    ChunkLocalReuses += O.ChunkLocalReuses;
    ChunkCrossNodeSteals += O.ChunkCrossNodeSteals;
    ChunkFreshRegistrations += O.ChunkFreshRegistrations;
  }
};

} // namespace manti

#endif // MANTI_GC_GCSTATS_H
