//===- gc/Proxy.cpp --------------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// Proxies are part of the collector machinery and use the internal
// rooting surface directly.
#define MANTI_GC_INTERNAL 1

#include "gc/Proxy.h"

#include "gc/HeapInternal.h"

#include "support/Assert.h"

#include <algorithm>
#include <atomic>

using namespace manti;

Value manti::createProxy(VProcHeap &H, Value Payload) {
  GcFrame Frame(H);
  Frame.root(Payload);
  Word *Obj = H.globalAllocObject(IdProxy, 2);
  Obj[0] = Value::fromInt(static_cast<int64_t>(H.id())).bits();
  Obj[1] = Payload.bits();
  H.ProxyTable.push_back(Obj);
  return Value::fromPtr(Obj);
}

bool manti::isProxy(Value V) {
  return V.isPtr() && objectId(V) == IdProxy;
}

bool manti::proxyResolved(Value V) {
  assert(isProxy(V) && "not a proxy");
  return Value::fromBits(V.asPtr()[0]).asInt() < 0;
}

Value manti::proxyPayload(Value V) {
  assert(isProxy(V) && "not a proxy");
  return Value::fromBits(V.asPtr()[1]);
}

unsigned manti::proxyOwner(Value V) {
  assert(isProxy(V) && !proxyResolved(V) && "not an unresolved proxy");
  return static_cast<unsigned>(Value::fromBits(V.asPtr()[0]).asInt());
}

Value manti::resolveProxy(VProcHeap &H, Value Proxy) {
  MANTI_CHECK(isProxy(Proxy), "resolveProxy: not a proxy");
  MANTI_CHECK(!proxyResolved(Proxy), "resolveProxy: already resolved");
  MANTI_CHECK(proxyOwner(Proxy) == H.id(),
              "resolveProxy: only the owning vproc may resolve");

  GcFrame Frame(H);
  Frame.root(Proxy);
  Value Promoted = H.promote(proxyPayload(Proxy));
  // Promotion never moves the proxy itself (it is already global), but
  // re-read through the rooted value for clarity.
  Word *Obj = Proxy.asPtr();
  // Publication order matters for the concurrent marker, which may scan
  // this proxy mid-resolution: payload first, then the resolved owner
  // word, both release. A marker that acquires owner == -1 is then
  // guaranteed to read the promoted (global) payload, never the stale
  // local one. The old payload needs no deletion-barrier record: a local
  // referent is the owner's business, and its promoted copy is
  // epoch-retained.
  std::atomic_ref<Word>(Obj[1]).store(Promoted.bits(),
                                      std::memory_order_release);
  std::atomic_ref<Word>(Obj[0]).store(Value::fromInt(-1).bits(),
                                      std::memory_order_release);

  auto It = std::find(H.ProxyTable.begin(), H.ProxyTable.end(), Obj);
  MANTI_CHECK(It != H.ProxyTable.end(),
              "resolveProxy: proxy not registered with its owner");
  *It = H.ProxyTable.back();
  H.ProxyTable.pop_back();
  return Promoted;
}
