//===- gc/LocalHeap.cpp ---------------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/LocalHeap.h"

#include "support/Assert.h"
#include "support/MathExtras.h"

using namespace manti;

LocalHeap::LocalHeap(void *Mem, std::size_t Bytes) {
  MANTI_CHECK(Mem && isAligned(reinterpret_cast<uintptr_t>(Mem), 8),
              "local heap storage must be 8-byte aligned");
  MANTI_CHECK(Bytes >= 4096, "local heap too small");
  Base = static_cast<Word *>(Mem);
  Top = Base + Bytes / sizeof(Word);
  reset();
}

void LocalHeap::reset() {
  YoungStart = Base;
  OldTop = Base;
  resplitNursery();
}

void LocalHeap::setRegions(Word *NewYoungStart, Word *NewOldTop) {
  MANTI_CHECK(Base <= NewYoungStart && NewYoungStart <= NewOldTop &&
                  NewOldTop <= Top,
              "inconsistent local heap regions");
  YoungStart = NewYoungStart;
  OldTop = NewOldTop;
}

void LocalHeap::resplitNursery() {
  // Divide the free space [OldTop, Top) in half; the upper half is the
  // new nursery (Fig. 2). Rounding the nursery down keeps the lower gap
  // at least as large as the nursery, so a minor collection always has
  // room to copy a fully-live nursery.
  std::size_t FreeWords = static_cast<std::size_t>(Top - OldTop);
  NurseryStart = Top - FreeWords / 2;
  AllocPtr = NurseryStart;
  Limit.store(Top, std::memory_order_release);
}
