//===- gc/HeapInternal.h - raw Value-level heap surface -------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector-internal allocation surface: raw mixed-object
/// allocators and the GcFrame shadow-stack face. Only translation units
/// that define MANTI_GC_INTERNAL may include this header -- the
/// collectors themselves, the handle layer (gc/Handles.cpp), collector
/// tests, and gc_microbench. Everything else programs against
/// gc/Handles.h (RootScope / Ref<T> / alloc<T>), which makes the
/// rooting discipline impossible to get wrong by construction.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_HEAPINTERNAL_H
#define MANTI_GC_HEAPINTERNAL_H

#ifndef MANTI_GC_INTERNAL
#error "gc/HeapInternal.h is collector-internal: define MANTI_GC_INTERNAL "    \
       "before including it, or use the public gc/Handles.h API instead"
#endif

#include "gc/Heap.h"

#include <deque>

namespace manti {
namespace gcinternal {

/// Befriended gateway into VProcHeap's private allocation machinery.
/// Static methods are defined in Heap.cpp next to the fast paths they
/// wrap; use the free-function faces below.
struct HeapAccess {
  static Value allocMixed(VProcHeap &H, uint16_t Id, const Word *Fields);
  static Value allocMixedRooted(VProcHeap &H, uint16_t Id,
                                const Word *RawFields,
                                Value *const *PtrFieldSlots);
  /// Deliberately out-of-line twin of VProcHeap::allocRaw, kept so
  /// gc_microbench can report the call-boundary cost the header-inlined
  /// fast path removed. Not for production use.
  static Value allocRawOutlined(VProcHeap &H, const void *Data,
                                std::size_t Bytes);
};

/// Allocates a mixed-type object of registered type \p Id. \p Fields
/// supplies the object's SizeWords initial words verbatim. CAUTION: the
/// allocation may collect, moving any objects \p Fields points at; only
/// use this when the pointer fields are nil/ints or when no collection
/// can intervene.
inline Value allocMixed(VProcHeap &H, uint16_t Id, const Word *Fields) {
  return HeapAccess::allocMixed(H, Id, Fields);
}

/// Collection-safe mixed allocation: \p RawFields supplies every word,
/// then each descriptor pointer field is overwritten by re-reading the
/// corresponding entry of \p PtrFieldSlots (rooted Value slots, in
/// descriptor offset order) *after* the allocation, so a collection
/// triggered by the allocation cannot leave stale pointers behind.
inline Value allocMixedRooted(VProcHeap &H, uint16_t Id,
                              const Word *RawFields,
                              Value *const *PtrFieldSlots) {
  return HeapAccess::allocMixedRooted(H, Id, RawFields, PtrFieldSlots);
}

} // namespace gcinternal

/// Reference-only view of a rooted shadow-stack slot, returned by
/// GcFrame::root. Binds to `Value &` but refuses to decay into a plain
/// `Value`: the old `Value Xs = Frame.root(...)` silently copied the
/// root into an *unregistered* local that a collection would never
/// update, so that spelling is a compile error instead of a latent
/// use-after-move.
class RootedSlot {
public:
  /// Bind as `Value &Xs = Frame.root(...)`.
  operator Value &() const { return *Slot; }
  /// `Value Xs = Frame.root(...)` un-roots by copy; deleted.
  operator Value() const = delete;

private:
  friend class GcFrame;
  explicit RootedSlot(Value &Slot) : Slot(&Slot) {}
  Value *Slot;
};

/// RAII shadow-stack frame: the raw face of VProcHeap::ShadowStack, for
/// collectors and collector tests whose premises (phase-exact byte
/// accounting, deliberately unrooted slots) the handle layer would
/// disturb. Everything else uses RootScope (gc/Handles.h), which owns
/// its slot storage and hands out handles instead of bare references.
/// Usage:
/// \code
///   GcFrame Frame(Heap);
///   Value &Xs = Frame.root(Heap.allocVectorFill(4, Value::fromInt(0)));
///   ...                      // Xs is updated if a collection moves it
/// \endcode
class GcFrame {
public:
  explicit GcFrame(VProcHeap &Heap)
      : Heap(Heap), Mark(Heap.ShadowStack.size()) {
    // Keep push_back headroom ahead of the roots this frame will add: a
    // std::vector regrow in the middle of the allocation path (deep
    // parallelReduce recursion) is the worst place to call the system
    // allocator.
    if (MANTI_UNLIKELY(Heap.ShadowStack.capacity() < Mark + 16))
      Heap.ShadowStack.reserve(Mark + 64);
  }
  ~GcFrame() { Heap.ShadowStack.resize(Mark); }

  GcFrame(const GcFrame &) = delete;
  GcFrame &operator=(const GcFrame &) = delete;

  /// Registers \p Slot (an lvalue that outlives this frame) as a root.
  RootedSlot root(Value &Slot) {
    Heap.ShadowStack.push_back(&Slot);
    return RootedSlot(Slot);
  }

  /// Copies a temporary into frame-owned stable storage and roots it.
  /// \returns a reference-only view of the slot (bind it as Value&).
  RootedSlot root(Value &&Temp) {
    OwnedSlots.push_back(Temp);
    Heap.ShadowStack.push_back(&OwnedSlots.back());
    return RootedSlot(OwnedSlots.back());
  }

private:
  VProcHeap &Heap;
  std::size_t Mark;
  /// Deque: growth never invalidates addresses of existing elements.
  std::deque<Value> OwnedSlots;
};

} // namespace manti

#endif // MANTI_GC_HEAPINTERNAL_H
