//===- gc/ObjectDescriptor.cpp --------------------------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

#include "gc/ObjectDescriptor.h"

#include "support/Assert.h"

#include <utility>

using namespace manti;

namespace {

/// Scanner specialized for a fixed pointer-field count: the loop bound is
/// a template constant, so the compiler fully unrolls small cases --
/// mirroring what the PML compiler emits per type.
template <unsigned N>
void scanFixed(Word *Obj, const ObjectDescriptor &Desc, FieldVisitor Visit,
               void *Ctx) {
  const uint16_t *Offsets = Desc.ptrOffsets();
  for (unsigned I = 0; I < N; ++I)
    Visit(Obj + Offsets[I], Ctx);
}

/// Fallback for types with many pointer fields.
void scanGeneric(Word *Obj, const ObjectDescriptor &Desc, FieldVisitor Visit,
                 void *Ctx) {
  const uint16_t *Offsets = Desc.ptrOffsets();
  for (unsigned I = 0, E = Desc.numPtrFields(); I < E; ++I)
    Visit(Obj + Offsets[I], Ctx);
}

ScanFn selectScanner(unsigned NumPtrFields) {
  switch (NumPtrFields) {
  case 0:
    return scanFixed<0>;
  case 1:
    return scanFixed<1>;
  case 2:
    return scanFixed<2>;
  case 3:
    return scanFixed<3>;
  case 4:
    return scanFixed<4>;
  case 5:
    return scanFixed<5>;
  case 6:
    return scanFixed<6>;
  case 7:
    return scanFixed<7>;
  case 8:
    return scanFixed<8>;
  default:
    return scanGeneric;
  }
}

} // namespace

ObjectDescriptorTable::ObjectDescriptorTable() = default;

uint16_t
ObjectDescriptorTable::registerMixed(std::string Name, unsigned SizeWords,
                                     const std::vector<uint16_t> &Offsets) {
  MANTI_CHECK(SizeWords > 0 && SizeWords <= MaxObjectWords,
              "mixed object size out of range");
  MANTI_CHECK(Offsets.size() <= ObjectDescriptor::MaxFields,
              "too many pointer fields");
  MANTI_CHECK(FirstMixedId + Descriptors.size() <= MaxObjectId,
              "object-descriptor table full");

  ObjectDescriptor Desc;
  Desc.TypeName = std::move(Name);
  Desc.Id = static_cast<uint16_t>(FirstMixedId + Descriptors.size());
  Desc.SizeWords = static_cast<uint16_t>(SizeWords);
  Desc.NumPtrFields = static_cast<uint16_t>(Offsets.size());
  uint16_t Prev = 0;
  for (unsigned I = 0; I < Offsets.size(); ++I) {
    MANTI_CHECK(Offsets[I] < SizeWords, "pointer field offset out of range");
    MANTI_CHECK(I == 0 || Offsets[I] > Prev,
                "pointer field offsets must be strictly increasing");
    Prev = Offsets[I];
    Desc.PtrOffsets[I] = Offsets[I];
  }
  Desc.Scanner = selectScanner(Desc.NumPtrFields);
  Descriptors.push_back(std::move(Desc));
  return Descriptors.back().Id;
}

const ObjectDescriptor &ObjectDescriptorTable::lookup(uint16_t Id) const {
  MANTI_CHECK(Id >= FirstMixedId, "reserved IDs have no descriptor");
  unsigned Index = Id - FirstMixedId;
  MANTI_CHECK(Index < Descriptors.size(), "unregistered object ID");
  return Descriptors[Index];
}
