//===- gc/MinorGC.cpp - nursery collection (paper Fig. 2) -----------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minor collector copies all live nursery data to the end of the
/// old-data area, then splits the remaining free space in half and makes
/// the upper half the new nursery. Because no pointers enter the local
/// heap from outside (other than the roots), minor collections require
/// no synchronization with other vprocs.
///
/// The language is mutation-free, so pointers only refer to *older*
/// objects: old and young data can never reference the nursery, which is
/// why only the roots and the freshly-copied region need scanning.
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorImpl.h"

#include "support/Logging.h"

#include <cstring>

using namespace manti;

void manti::minorGCImpl(VProcHeap &H) {
  LocalHeap &L = H.local();
  ScopedTimer Timer(H.Stats.MinorPause);

  // The size-class cache holds dormant nursery runs; this collection is
  // about to recycle the nursery, so drop them all. Keeping the flush
  // here (not in the public wrappers) covers every path that collects:
  // slow-path minors, stress collections, and both global flavors'
  // per-vproc local collections.
  H.sizeClassFlush();

  Word *const DestBase = L.oldTop();
  Word *Dest = DestBase;
  std::size_t NurseryUsed = L.nurseryUsedBytes();

  // Forwards one word: nursery objects are copied to the old-data area;
  // everything else (tagged ints, old/young/global pointers) passes
  // through. A forwarding pointer found in a nursery header may point at
  // the old area (copied earlier in this collection) or at the global
  // heap (the object was promoted); both are returned verbatim.
  auto Forward = [&](Word W) -> Word {
    if (!wordIsPtr(W))
      return W;
    Word *Obj = reinterpret_cast<Word *>(W);
    if (!L.inNursery(Obj))
      return W;
    Word Hdr = headerOf(Obj);
    if (isForwardWord(Hdr))
      return Hdr;
    uint64_t Foot = objectFootprintWords(Hdr);
    std::memcpy(Dest, Obj - 1, Foot * sizeof(Word));
    Word *NewObj = Dest + 1;
    Dest += Foot;
    headerOf(Obj) = reinterpret_cast<Word>(NewObj);
    return reinterpret_cast<Word>(NewObj);
  };

  // Store only when the word actually moved: rooted slots that hold
  // global values (e.g. a lock-free structure's head, which other vprocs
  // read while this vproc collects) must not see a same-value rewrite --
  // that plain store would race their plain reads.
  forEachVProcRoot(H, [&](Word *Slot) {
    Word W = *Slot;
    Word F = Forward(W);
    if (F != W)
      *Slot = F;
  });

  // Cheney scan of the copied region. With ScanPrefetch the next
  // object's header and this object's pointer targets (their headers,
  // one word below the object) are requested ahead of use: the scan is
  // memory-latency-bound on heaps bigger than cache, and the Forward
  // pass touches exactly those lines a few dozen cycles later.
  const ObjectDescriptorTable &Descs = H.world().descriptors();
  const bool Prefetch = H.world().config().ScanPrefetch;
  for (Word *Scan = DestBase; Scan < Dest;) {
    Word Hdr = *Scan;
    MANTI_CHECK(isHeaderWord(Hdr), "corrupt header in minor-GC scan");
    uint64_t Foot = objectFootprintWords(Hdr);
    if (Prefetch) {
      MANTI_PREFETCH(Scan + Foot);
      forEachPtrField(Scan + 1, Hdr, Descs, [&](Word *Slot) {
        Word W = *Slot;
        if (wordIsPtr(W))
          MANTI_PREFETCH(reinterpret_cast<Word *>(W) - 1);
      });
    }
    forEachPtrField(Scan + 1, Hdr, Descs,
                    [&](Word *Slot) { *Slot = Forward(*Slot); });
    Scan += Foot;
  }

  MANTI_CHECK(Dest <= L.nurseryStart(),
              "minor GC copied more data than the reserve space holds");

  std::size_t Copied = static_cast<std::size_t>(Dest - DestBase) * sizeof(Word);
  H.Stats.MinorBytesCopied += Copied;
  H.Stats.MinorBytesReclaimed += NurseryUsed - Copied;
  // Local-bank traffic: the copy reads and writes the local heap's pages.
  if (Copied)
    H.world().traffic().record(H.localHeapHomeNode(), H.node(),
                               static_cast<uint64_t>(Copied) * 2);

  // The data just copied becomes the young-data area (retained by the
  // next major collection); reclaim the nursery and resplit (Fig. 2).
  L.setRegions(/*NewYoungStart=*/DestBase, /*NewOldTop=*/Dest);
  L.resplitNursery();

  // resplitNursery restored the allocation limit; do not swallow a
  // pending global-collection (or concurrent-rendezvous) signal.
  if (H.world().rendezvousRequested())
    L.signalLimit();

  MANTI_DEBUG("gc", "vp%u minor: copied %zu reclaimed %zu", H.id(), Copied,
              NurseryUsed - Copied);
}
