//===- gc/Handles.cpp - handle layer internals ----------------------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// The handle layer is one of the two sanctioned users of the raw
// Value-level mixed allocator (the other being the collectors).
#define MANTI_GC_INTERNAL 1

#include "gc/Handles.h"

#include "gc/HeapInternal.h"

using namespace manti;

/// Cold path of RootScope::slot: the current slab is full, so chain a
/// recycled (or fresh) overflow slab and register it with the collectors
/// in one SlabStack push.
MANTI_NOINLINE void RootScope::growSlab() {
  RootSlab *Slab = Heap.SlabFreeList;
  if (Slab) {
    Heap.SlabFreeList = Slab->NextFree;
    Slab->NextFree = nullptr;
    Slab->Count = 0;
  } else {
    Slab = new RootSlab();
  }
  Heap.SlabStack.push_back(Slab);
  Cur = Slab;
}

Value manti::detail::allocMixedViaSlots(VProcHeap &H, uint16_t Id,
                                        const Word *RawFields,
                                        Value *const *PtrFieldSlots,
                                        unsigned NumSlots) {
  // Register the caller's slot array on the shadow stack for the span of
  // the allocation: a collection triggered by it forwards the slots, and
  // allocMixedRooted re-reads them into the new object's pointer fields.
  std::size_t Mark = H.ShadowStack.size();
  for (unsigned I = 0; I < NumSlots; ++I)
    H.ShadowStack.push_back(PtrFieldSlots[I]);
  Value V = gcinternal::allocMixedRooted(H, Id, RawFields, PtrFieldSlots);
  H.ShadowStack.resize(Mark);
  return V;
}
