//===- gc/CollectorImpl.h - internals shared by the collectors -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private helpers shared by MinorGC.cpp, MajorGC.cpp, and GlobalGC.cpp:
/// object-field iteration, root enumeration, the local-to-global
/// evacuator used by major collections and promotion, and the internal
/// entry points the public VProcHeap methods drive. Not installed; do
/// not include outside src/gc.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_COLLECTORIMPL_H
#define MANTI_GC_COLLECTORIMPL_H

#include "gc/Heap.h"
#include "support/Assert.h"

#include <utility>
#include <vector>

namespace manti {

/// What the local-to-global evacuator condemns.
enum class EvacuateMode {
  OldOnly,  ///< normal major collection: keep young data local
  AllLocal, ///< promotion / emergency: any reachable local object moves
};

/// Trampoline adapting a C++ callable to the C-style RootSlotVisitor /
/// FieldVisitor signature.
template <typename FnT> void fieldVisitTrampoline(Word *Slot, void *Ctx) {
  (*static_cast<FnT *>(Ctx))(Slot);
}

/// Applies \p Fn to every field slot of the object at \p Obj that may
/// hold a pointer. Slots may also hold tagged integers; \p Fn must test
/// wordIsPtr itself. Raw objects have no such slots; vector objects are
/// handled inline; mixed objects dispatch through their descriptor's
/// generated scanner (paper Section 3.2). Proxy objects are the global
/// collector's business and must not reach this helper.
template <typename FnT>
inline void forEachPtrField(Word *Obj, Word Hdr,
                            const ObjectDescriptorTable &Descs, FnT Fn) {
  uint16_t Id = headerId(Hdr);
  switch (Id) {
  case IdRaw:
    return;
  case IdVector: {
    uint64_t Len = headerLenWords(Hdr);
    for (uint64_t I = 0; I != Len; ++I)
      Fn(Obj + I);
    return;
  }
  case IdProxy:
    MANTI_UNREACHABLE("proxy objects are scanned only by the global GC");
  default:
    Descs.lookup(Id).scan(Obj, fieldVisitTrampoline<FnT>, &Fn);
    return;
  }
}

/// Applies \p Fn to every root slot of vproc \p H: the shadow stack, the
/// payload slots of this vproc's unresolved proxies, and whatever extra
/// roots the runtime registered (scheduler queues, mailboxes).
template <typename FnT> inline void forEachVProcRoot(VProcHeap &H, FnT Fn) {
  for (Value *Slot : H.ShadowStack)
    Fn(reinterpret_cast<Word *>(Slot));
  // RootScope slot slabs: each live scope registered whole slabs rather
  // than individual slots, so enumeration walks the occupied prefix of
  // every slab here (always on the owning vproc's thread, or with the
  // world quiesced).
  for (RootSlab *Slab : H.SlabStack)
    for (unsigned I = 0; I < Slab->Count; ++I)
      Fn(reinterpret_cast<Word *>(&Slab->Slots[I]));
  // A proxy's payload (data word 1) can reference this vproc's local
  // heap; the owner treats it as a root so local collections keep the
  // referent alive and forward the slot (Section 3.1, footnote 1).
  for (Word *Proxy : H.ProxyTable)
    Fn(Proxy + 1);
  H.world().enumerateExtraVProcRoots(H.id(), fieldVisitTrampoline<FnT>, &Fn);
}

/// Copies local objects into the vproc's current global-heap chunk,
/// Cheney-scanning the copies transitively. Single-threaded: only the
/// owning vproc evacuates its local heap (minor and major collections
/// require no synchronization -- Section 3.3). Used by the major
/// collector (OldOnly), promotion and emergency evacuation (AllLocal).
class GlobalEvacuator {
public:
  GlobalEvacuator(VProcHeap &H, EvacuateMode Mode);

  /// Forwards one field/root word: if it points at a condemned local
  /// object, the object is copied to the global heap (a forwarding
  /// pointer replaces its header) and the new address is returned;
  /// anything else passes through.
  Word forwardWord(Word W);

  /// Rewrites \p Slot in place through forwardWord. The store is
  /// skipped when nothing moved: root slots holding already-global
  /// values are readable from other vprocs mid-collection (lock-free
  /// structure heads), and a same-value rewrite would race those reads.
  void visitSlot(Word *Slot) {
    Word W = *Slot;
    Word F = forwardWord(W);
    if (F != W)
      *Slot = F;
  }

  /// Scans all global copies made so far, transitively evacuating what
  /// they reference. Call once after all roots are forwarded.
  void drain();

  uint64_t bytesCopied() const { return Bytes; }

private:
  bool shouldEvacuate(const Word *Obj) const;

  VProcHeap &H;
  EvacuateMode Mode;
  /// GCConfig::ScanPrefetch snapshot: drain() prefetches upcoming copies
  /// and pointer targets when set.
  bool Prefetch;
  /// (chunk, scan cursor) pairs covering everything this evacuation has
  /// copied; the cursor chases the chunk's AllocPtr.
  std::vector<std::pair<Chunk *, Word *>> ScanCursors;
  uint64_t Bytes = 0;
};

/// Internal collection entry points (public VProcHeap methods wrap them).
void minorGCImpl(VProcHeap &H);
void majorGCImpl(VProcHeap &H, EvacuateMode Mode);
void globalGCParticipate(VProcHeap &H);

} // namespace manti

#endif // MANTI_GC_COLLECTORIMPL_H
