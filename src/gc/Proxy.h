//===- gc/Proxy.h - object proxies (paper Section 3.1, footnote 1) -------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Object proxies are a special kind of object that is used to allow
/// references from the global heap back into the local heap. We use them
/// in the implementation of our explicit concurrency constructs."
///
/// A proxy is a two-word global-heap object:
///
///   word 0: tagged integer -- the owning vproc's id while the proxy is
///           *unresolved*, or -1 once it has been *resolved*;
///   word 1: the payload -- a pointer into the owner's local heap while
///           unresolved, or the promoted (global) value once resolved.
///
/// The proxy is the one sanctioned exception to the no-global-to-local-
/// pointer invariant. It stays sound because the owner registers every
/// unresolved proxy in its proxy table: the payload slot is then part of
/// the owner's root set, so the owner's minor and major collections keep
/// the local referent alive and forward the slot, while the global
/// collector skips payloads that still point into the owner's local heap
/// (the objects themselves never move during a global collection) and
/// updates the table entries as the proxies move.
///
/// The reproduction's channel implementation (runtime/Channel.h) uses a
/// proxy per blocked receiver, exactly the use the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_PROXY_H
#define MANTI_GC_PROXY_H

#include "gc/Heap.h"

namespace manti {

/// Creates a proxy owned by \p H wrapping \p Payload (any value,
/// typically a pointer into \p H's local heap). The proxy is allocated
/// in the global heap and registered in \p H's proxy table.
/// Must run on \p H's vproc thread.
Value createProxy(VProcHeap &H, Value Payload);

/// \returns true if \p V points at a proxy object.
bool isProxy(Value V);

/// \returns true if \p V is a resolved proxy.
bool proxyResolved(Value V);

/// \returns the proxy's current payload. For an unresolved proxy this is
/// only meaningful on the owning vproc (it may point into its local
/// heap).
Value proxyPayload(Value V);

/// \returns the id of the vproc owning unresolved proxy \p V.
unsigned proxyOwner(Value V);

/// Resolves \p Proxy: promotes the payload into the global heap, stores
/// the promoted value, marks the proxy resolved, and removes it from the
/// owner's proxy table. Must run on the owning vproc's thread.
/// \returns the promoted payload.
Value resolveProxy(VProcHeap &H, Value Proxy);

} // namespace manti

#endif // MANTI_GC_PROXY_H
