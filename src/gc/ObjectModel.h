//===- gc/ObjectModel.h - heap object representation (paper Fig. 1) ------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap objects carry a 64-bit header word laid out exactly as the
/// paper's Figure 1:
///
///   bit  0      : 1  (distinguishes a header from a forwarding pointer)
///   bits 1..15  : 15-bit object ID
///   bits 16..63 : 48-bit object length (in 8-byte words)
///
/// Because heap objects are 8-byte aligned, a forwarding pointer written
/// over the header has bit 0 clear, which is how the collectors detect an
/// already-copied object.
///
/// Two IDs are reserved for raw data and for vectors of values; a third is
/// reserved for object proxies (Section 3.1, footnote 1). All other IDs
/// index the object-descriptor table (ObjectDescriptor.h), which holds the
/// per-type scanning and forwarding functions a compiler would generate.
///
/// A heap pointer addresses the first data word; the header lives one word
/// below it, matching the usual functional-language layout.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_OBJECTMODEL_H
#define MANTI_GC_OBJECTMODEL_H

#include <cassert>
#include <cstdint>

namespace manti {

using Word = uint64_t;

/// Reserved object IDs (paper: "We reserve two IDs for raw and vector
/// data"; proxies get a third so the collectors can special-case them).
enum ReservedObjectId : uint16_t {
  IdRaw = 0,
  IdVector = 1,
  IdProxy = 2,
  FirstMixedId = 3,
  MaxObjectId = (1u << 15) - 1,
};

inline constexpr unsigned HeaderIdBits = 15;
inline constexpr unsigned HeaderLenBits = 48;
inline constexpr uint64_t MaxObjectWords = (uint64_t(1) << HeaderLenBits) - 1;

/// Builds a header word from an object ID and a length in words.
constexpr Word makeHeader(uint16_t Id, uint64_t LenWords) {
  return (LenWords << 16) | (static_cast<Word>(Id) << 1) | 1;
}

/// \returns true if \p W is a header (bit 0 set) rather than a
/// forwarding pointer.
constexpr bool isHeaderWord(Word W) { return (W & 1) != 0; }

/// \returns true if \p W is a forwarding pointer (an aligned address).
constexpr bool isForwardWord(Word W) { return (W & 1) == 0; }

constexpr uint16_t headerId(Word Header) {
  return static_cast<uint16_t>((Header >> 1) & MaxObjectId);
}

constexpr uint64_t headerLenWords(Word Header) { return Header >> 16; }

/// Access to the header word of the object whose first data word is at
/// \p Obj.
inline Word &headerOf(Word *Obj) { return Obj[-1]; }
inline Word headerOf(const Word *Obj) { return Obj[-1]; }

/// Total footprint of an object (header + data), in words.
inline uint64_t objectFootprintWords(Word Header) {
  return headerLenWords(Header) + 1;
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

/// A PML value: either a tagged 63-bit integer (bit 0 set) or an 8-byte
/// aligned pointer to a heap object's first data word (low bits clear).
/// The tag assignment is the opposite of the header convention on
/// purpose: a *stored field* with bit 0 set is data, with bit 0 clear is
/// a pointer -- which lets vector scanning decide pointerness per word.
class Value {
public:
  constexpr Value() : Bits(0) {}

  static constexpr Value nil() { return Value(); }

  static constexpr Value fromInt(int64_t I) {
    return Value((static_cast<uint64_t>(I) << 1) | 1);
  }

  static Value fromPtr(Word *Obj) {
    assert((reinterpret_cast<uintptr_t>(Obj) & 7) == 0 &&
           "heap pointers must be 8-byte aligned");
    return Value(reinterpret_cast<uint64_t>(Obj));
  }

  static constexpr Value fromBits(uint64_t Bits) { return Value(Bits); }

  constexpr bool isNil() const { return Bits == 0; }
  constexpr bool isInt() const { return (Bits & 1) != 0; }
  constexpr bool isPtr() const { return !isNil() && !isInt(); }

  constexpr int64_t asInt() const {
    assert(isInt() && "Value is not a tagged integer");
    return static_cast<int64_t>(Bits) >> 1;
  }

  Word *asPtr() const {
    assert(isPtr() && "Value is not a heap pointer");
    return reinterpret_cast<Word *>(Bits);
  }

  constexpr uint64_t bits() const { return Bits; }

  friend constexpr bool operator==(Value A, Value B) {
    return A.Bits == B.Bits;
  }
  friend constexpr bool operator!=(Value A, Value B) {
    return A.Bits != B.Bits;
  }

private:
  explicit constexpr Value(uint64_t Bits) : Bits(Bits) {}
  uint64_t Bits;
};

static_assert(sizeof(Value) == 8, "values are single words");

/// \returns true when field word \p W holds a heap pointer.
constexpr bool wordIsPtr(Word W) { return W != 0 && (W & 1) == 0; }

} // namespace manti

#endif // MANTI_GC_OBJECTMODEL_H
