//===- gc/Heap.cpp - GCWorld / VProcHeap and the allocation paths ---------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//

// This TU implements the raw allocation surface the handle layer wraps.
#define MANTI_GC_INTERNAL 1

#include "gc/HeapInternal.h"

#include "gc/CollectorImpl.h"
#include "support/Assert.h"
#include "support/Compiler.h"
#include "support/Logging.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace manti;

namespace {

/// GCConfig::StressGC can be forced from the environment so existing
/// test binaries run stressed in CI without a rebuild.
bool stressGCFromEnv() {
  const char *Env = std::getenv("MANTI_STRESS_GC");
  return Env && *Env && !(Env[0] == '0' && Env[1] == '\0');
}

GCConfig applyEnvOverrides(GCConfig Config) {
  if (stressGCFromEnv())
    Config.StressGC = true;
  // MANTI_STRESS_GC_PERIOD=N: collect on every Nth eligible allocation
  // instead of every one (takes precedence over the config value).
  if (const char *Env = std::getenv("MANTI_STRESS_GC_PERIOD")) {
    char *End = nullptr;
    unsigned long N = std::strtoul(Env, &End, 10);
    if (End != Env && *End == '\0' && N >= 1)
      Config.StressGCPeriod = static_cast<unsigned>(N);
  }
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// GCWorld
//===----------------------------------------------------------------------===//

GCWorld::GCWorld(const GCConfig &Config, const Topology &Topo,
                 unsigned NumVProcs)
    : Config(applyEnvOverrides(Config)), Topo(Topo),
      Banks(Topo.numNodes(),
            Config.BindMemory ? MemoryBanks::BindMode::Bound
                              : MemoryBanks::BindMode::Simulated,
            [&] {
              std::vector<unsigned> Ids(Topo.numNodes());
              for (unsigned N = 0; N < Topo.numNodes(); ++N)
                Ids[N] = Topo.osNodeOfNode(N);
              return Ids;
            }()),
      Policy(Config.Policy, Topo.numNodes()), Traffic(Topo.numNodes()),
      Chunks(Banks, Policy, Config.ChunkBytes, Config.PreserveChunkAffinity,
             Config.ChunkBatch),
      GlobalGCThreshold(static_cast<uint64_t>(Config.GlobalGCBytesPerVProc) *
                        NumVProcs),
      GCBarrier(NumVProcs) {
  MANTI_CHECK(NumVProcs >= 1, "need at least one vproc");
  MANTI_CHECK(Config.LocalHeapBytes >= 64 * 1024 &&
                  isAligned(Config.LocalHeapBytes, MemoryBanks::PageSize),
              "local heap size must be a page multiple >= 64 KiB");
  MANTI_CHECK(Config.MinNurseryBytes * 4 <= Config.LocalHeapBytes,
              "minimum nursery too large for the local heap");

  // vprocs are assigned sparsely across the nodes (Section 2.2).
  std::vector<CoreId> Cores = Topo.assignVProcsSparsely(NumVProcs);
  Heaps.reserve(NumVProcs);
  for (unsigned Id = 0; Id < NumVProcs; ++Id)
    Heaps.push_back(std::make_unique<VProcHeap>(*this, Id, Cores[Id],
                                                Topo.nodeOfCore(Cores[Id])));

  GCState.reset(createGlobalCollection(*this));
  CMState.reset(createConcurrentMark(*this));
}

GCWorld::~GCWorld() = default;

void GCWorld::requestGlobalGC() {
  GCPhase Expected = GCPhase::Idle;
  if (!Phase.compare_exchange_strong(Expected, GCPhase::StwPending,
                                     std::memory_order_acq_rel))
    return; // a collection (either flavor) is already pending or running
  // Section 3.4, step 2: signal every vproc by zeroing its allocation
  // limit; each enters the collector at its next safe point.
  for (auto &H : Heaps)
    H->local().signalLimit();
  // Ring the broadcast doorbell: vprocs parked in the idle ladder or in
  // channel waits head for their safe points now instead of adding a
  // park interval to everyone's stop-the-world entry.
  notifyWakeupHook();
  MANTI_DEBUG("gc", "global collection requested (active=%llu)",
              static_cast<unsigned long long>(Chunks.activeBytes()));
}

bool GCWorld::startConcurrentMark() {
  GCPhase Expected = GCPhase::Idle;
  if (!Phase.compare_exchange_strong(Expected, GCPhase::ConcInit,
                                     std::memory_order_acq_rel))
    return false; // a collection (either flavor) is already underway
  // Same convergence mechanism as the STW request: zeroed limits plus
  // the broadcast doorbell bring every vproc to the (short) snapshot
  // rendezvous. Safe points dispatch on the phase word itself, so a
  // limit signal lost to a concurrent restoreLimit only costs latency,
  // never correctness.
  for (auto &H : Heaps)
    H->local().signalLimit();
  notifyWakeupHook();
  MANTI_DEBUG("gc", "concurrent mark requested (active=%llu)",
              static_cast<unsigned long long>(Chunks.activeBytes()));
  return true;
}

NodeId GCWorld::homeNodeOf(Value V, NodeId Fallback) {
  if (!V.isPtr())
    return Fallback;
  const Word *P = V.asPtr();
  for (auto &H : Heaps)
    if (H->local().contains(P))
      return H->localHeapHomeNode();
  return Chunks.chunkOf(P)->HomeNode;
}

GCStats GCWorld::aggregateStats() const {
  GCStats Total;
  for (const auto &H : Heaps)
    Total.merge(H->Stats);
  return Total;
}

//===----------------------------------------------------------------------===//
// VProcHeap
//===----------------------------------------------------------------------===//

VProcHeap::VProcHeap(GCWorld &World, unsigned Id, CoreId Core, NodeId Node)
    : World(World), Id(Id), Core(Core), Node(Node),
      LocalHeapHome(World.Policy.homeFor(Node)),
      LocalMem(World.Banks.allocBlock(World.Config.LocalHeapBytes,
                                      LocalHeapHome)),
      Local(LocalMem, World.Config.LocalHeapBytes) {
  // Pre-size the root stacks: a mid-allocation std::vector regrow is the
  // worst possible time to call the system allocator.
  ShadowStack.reserve(256);
  SlabStack.reserve(64);
}

VProcHeap::~VProcHeap() {
  while (SlabFreeList) {
    RootSlab *Next = SlabFreeList->NextFree;
    delete SlabFreeList;
    SlabFreeList = Next;
  }
  World.Banks.freeBlock(LocalMem, World.Config.LocalHeapBytes);
}

void VProcHeap::minorGC() { minorGCImpl(*this); }

void VProcHeap::majorGC() {
  // A major collection is always immediately preceded by a minor one;
  // the data that minor copies becomes the young area the major retains.
  minorGCImpl(*this);
  majorGCImpl(*this, EvacuateMode::OldOnly);
}

/// Innermost-RootScope heap for the handle layer's deletion barrier
/// (declared in Heap.h, maintained by RootScope in Handles.h).
thread_local VProcHeap *gcdetail::CurrentSatbHeap = nullptr;

//===----------------------------------------------------------------------===//
// Global-heap bump allocation
//===----------------------------------------------------------------------===//

/// Acquires a chunk for this vproc and tallies the synchronization class
/// into the per-vproc stats (the manager keeps the machine-wide view).
Chunk *VProcHeap::acquireChunkCounted() {
  ChunkSource Src;
  Chunk *C = World.Chunks.acquireChunk(Node, &Src);
  switch (Src) {
  case ChunkSource::LocalReuse:
    ++Stats.ChunkLocalReuses;
    break;
  case ChunkSource::RemoteReuse:
    ++Stats.ChunkCrossNodeSteals;
    break;
  case ChunkSource::Fresh:
    ++Stats.ChunkFreshRegistrations;
    break;
  }
  return C;
}

Word *VProcHeap::globalReserve(uint64_t FootprintWords, Chunk **UsedChunk) {
  std::size_t Bytes = FootprintWords * sizeof(Word);
  // Uncontended owner bump; the watermark trigger sums these lazily.
  GlobalAllocSinceCycle.fetch_add(Bytes, std::memory_order_relaxed);
  if (Bytes > World.Chunks.standardCapacityBytes()) {
    Chunk *Big = World.Chunks.acquireOversized(Node, Bytes);
    ++Stats.ChunkFreshRegistrations;
    Word *P = Big->tryReserve(FootprintWords);
    MANTI_CHECK(P, "oversized chunk cannot hold its object");
    *UsedChunk = Big;
    return P;
  }
  if (!CurChunk)
    CurChunk = acquireChunkCounted();
  *UsedChunk = CurChunk;
  if (Word *P = CurChunk->tryReserve(FootprintWords))
    return P;
  CurChunk = acquireChunkCounted();
  *UsedChunk = CurChunk;
  Word *P = CurChunk->tryReserve(FootprintWords);
  MANTI_CHECK(P, "object does not fit in a global-heap chunk");
  return P;
}

Word *VProcHeap::globalAllocObject(uint16_t Id, uint64_t LenWords) {
  Chunk *Used = nullptr;
  Word *HdrSlot = globalReserve(LenWords + 1, &Used);
  HdrSlot[0] = makeHeader(Id, LenWords);
  Stats.BytesAllocatedGlobal += (LenWords + 1) * sizeof(Word);
  World.Traffic.record(Node, Used->HomeNode, (LenWords + 1) * sizeof(Word));
  maybeTriggerGlobalGC((LenWords + 1) * sizeof(Word));
  return HdrSlot + 1;
}

void VProcHeap::maybeTriggerGlobalGC(uint64_t JustAllocatedBytes) {
  if (!World.Config.ConcurrentGlobal) {
    // Stop-the-world mode: the classic trigger, checked on every global
    // allocation so threshold crossings are caught exactly.
    if (World.Chunks.activeBytes() > World.globalGCThresholdBytes())
      World.requestGlobalGC();
    return;
  }
  // Concurrent mode, corobase-style: accumulate locally and only re-sum
  // everyone's counters once per stride of this vproc's own allocation.
  WatermarkResidue += JustAllocatedBytes;
  if (MANTI_LIKELY(WatermarkResidue < GCWorld::WatermarkStrideBytes))
    return;
  WatermarkResidue = 0;
  if (World.phase() != GCPhase::Idle)
    return; // a cycle is already pending or running
  uint64_t Allocated = 0;
  for (auto &H : World.Heaps)
    Allocated += H->GlobalAllocSinceCycle.load(std::memory_order_relaxed);
  const uint64_t Threshold = World.globalGCThresholdBytes();
  const auto Watermark = static_cast<uint64_t>(
      World.Config.ConcurrentMarkWatermark * static_cast<double>(Threshold));
  if (Allocated >= Watermark)
    // Enough new allocation since the last cycle: start marking now,
    // well before the hard threshold, so the cycle finishes while the
    // heap still has headroom.
    World.startConcurrentMark();
  else if (World.Chunks.activeBytes() > Threshold)
    // Backstop: fragmentation or floating garbage outran the watermark;
    // fall back to the compacting stop-the-world collection.
    World.requestGlobalGC();
}

//===----------------------------------------------------------------------===//
// Local allocation: fast path and GC-driving slow path
//===----------------------------------------------------------------------===//

/// StressGC: every slow-path-eligible allocation first validates the
/// shadow stack, then actually collects, so any Value held outside a
/// rooted slot across this allocation is stale the moment the caller
/// resumes -- the intermittent bug becomes a deterministic one.
void VProcHeap::stressGCBeforeAlloc() {
  // StressGCPeriod spaces the forced collections out: only every Nth
  // eligible allocation pays the check + collection.
  if (World.Config.StressGCPeriod > 1 &&
      (++StressTick % World.Config.StressGCPeriod) != 0)
    return;
  debugCheckShadowStack();
  safePoint();
  minorGCImpl(*this);
  if (Local.nurseryCapacityBytes() < World.Config.MinNurseryBytes)
    majorGCImpl(*this, EvacuateMode::OldOnly);
}

void VProcHeap::debugCheckShadowStack() const {
  auto CheckSlot = [&](Value V) {
    if (!V.isPtr())
      return; // nil and tagged ints are always fine
    const Word *P = V.asPtr();
    bool Placed;
    if (Local.contains(P)) {
      // Must be an allocated region of *this* vproc's heap: old data,
      // young data, or the used prefix of the nursery -- never the gap
      // or the unallocated nursery tail a stale pointer would hit.
      Placed = Local.inOldData(P) || Local.inYoungData(P) ||
               (P >= Local.nurseryStart() && P < Local.allocPtr());
    } else {
      Placed = World.Chunks.activeChunksContain(P);
    }
    bool Sound = Placed;
    if (Sound) {
      Word Hdr = headerOf(P);
      if (isForwardWord(Hdr))
        // A promotion husk: the slot is repaired lazily by the next
        // local collection (Heap.h, promote). The forwarded copy must
        // already live in the global heap.
        Sound = World.Chunks.activeChunksContain(
            reinterpret_cast<const Word *>(Hdr));
    }
    MANTI_CHECK(Sound,
                "shadow-stack slot holds an unrooted or stale heap pointer");
  };
  for (const Value *Slot : ShadowStack)
    CheckSlot(*Slot);
  for (const RootSlab *Slab : SlabStack)
    for (unsigned I = 0; I < Slab->Count; ++I)
      CheckSlot(Slab->Slots[I]);
}

Word *VProcHeap::allocSlowPath(uint16_t Id, uint64_t LenWords) {
  uint64_t FootBytes = (LenWords + 1) * sizeof(Word);
  for (unsigned Attempt = 0;; ++Attempt) {
    MANTI_CHECK(Attempt < 8, "allocation cannot make progress");

    // A zeroed limit may mean a pending collection rendezvous rather
    // than a full nursery (Section 3.4 step 2); safePoint dispatches on
    // the phase word and participates in whichever flavor is underway.
    safePoint();
    if (Word *P = Local.tryAlloc(Id, LenWords))
      return P;
    if (Local.limitSignalled())
      continue;

    // Raw objects too large for the nursery go straight to the global
    // heap: they contain no pointers, so the no-global-to-local-pointer
    // invariant cannot be violated. Pointer-carrying objects never take
    // this path; their public allocators pre-promote and allocate
    // globally themselves when oversized.
    if (Id == IdRaw && FootBytes > Local.nurseryCapacityBytes() / 2 &&
        FootBytes > World.Config.MinNurseryBytes)
      return globalAllocObject(Id, LenWords);

    // Genuine nursery exhaustion: minor collection, and a major one when
    // the new nursery falls below the threshold (Section 3.3).
    minorGCImpl(*this);
    if (Local.nurseryCapacityBytes() < World.Config.MinNurseryBytes ||
        Local.nurseryCapacityBytes() < FootBytes * 2)
      majorGCImpl(*this, EvacuateMode::OldOnly);
    if (Word *P = Local.tryAlloc(Id, LenWords))
      return P;
    if (Local.limitSignalled())
      continue;

    // Still failing: live local data is crowding the heap. Evacuate
    // everything reachable and retry with an empty local heap.
    majorGCImpl(*this, EvacuateMode::AllLocal);
    if (Word *P = Local.tryAlloc(Id, LenWords))
      return P;
    MANTI_CHECK(FootBytes <= Local.nurseryCapacityBytes(),
                "object too large for the local heap; allocate it globally");
  }
}

//===----------------------------------------------------------------------===//
// Public allocators
//===----------------------------------------------------------------------===//

/// Out-of-line twins of the header-inlined fast path, kept only so the
/// microbench can measure what the call-boundary version used to cost.
MANTI_NOINLINE Word *VProcHeap::allocLocalOutlined(uint16_t Id,
                                                   uint64_t LenWords) {
  if (MANTI_UNLIKELY(World.Config.StressGC))
    stressGCBeforeAlloc();
  Stats.BytesAllocatedLocal += (LenWords + 1) * sizeof(Word);
  if (Word *P = Local.tryAlloc(Id, LenWords))
    return P;
  return allocSlowPath(Id, LenWords);
}

MANTI_NOINLINE Value gcinternal::HeapAccess::allocRawOutlined(
    VProcHeap &H, const void *Data, std::size_t Bytes) {
  uint64_t LenWords = std::max<uint64_t>(1, divideCeil(Bytes, sizeof(Word)));
  Word *Obj = H.allocLocalOutlined(IdRaw, LenWords);
  Obj[LenWords - 1] = 0; // zero the tail beyond Bytes
  if (Data)
    std::memcpy(Obj, Data, Bytes);
  else
    std::memset(Obj, 0, LenWords * sizeof(Word));
  return Value::fromPtr(Obj);
}

/// Vectors larger than a quarter of the local heap are allocated in the
/// global heap directly (the paper's workloads use rope-like segmented
/// structures for bulk data; this is the corresponding large-object
/// escape hatch).
bool VProcHeap::vectorIsOversized(std::size_t N) const {
  return (std::max<uint64_t>(1, N) + 1) * sizeof(Word) >
         World.Config.LocalHeapBytes / 4;
}

/// Number of equally-sized runs a size-class refill tries to carve in
/// one nursery bump. One batch pays one stress gate and one limit check;
/// the remaining Runs-1 allocations of this size are freelist pops.
static constexpr uint64_t SizeClassBatchRuns = 8;

Word *VProcHeap::sizeClassRefill(uint64_t LenWords) {
  if (!World.Config.SizeClassCache ||
      LenWords > SizeClassCacheState::MaxWords)
    return allocLocalObject(IdVector, LenWords);
  // One stress gate per batch (not per run): carving run-by-run through
  // allocLocalObject would collect -- and flush -- between runs, so the
  // cache could never hold anything under MANTI_STRESS_GC=1.
  if (MANTI_UNLIKELY(World.Config.StressGC))
    stressGCBeforeAlloc();
  const uint64_t Foot = LenWords + 1;
  uint64_t Runs = SizeClassBatchRuns;
  Word *Block = Local.tryAllocRun(Runs * Foot);
  if (!Block) {
    Runs = 1;
    Block = Local.tryAllocRun(Foot);
  }
  if (!Block) {
    // Nursery exhausted (or limit signalled): the generic slow path
    // collects and retries. It does not bump BytesAllocatedLocal, so
    // account for the single object here.
    Stats.BytesAllocatedLocal += Foot * sizeof(Word);
    return allocSlowPath(IdVector, LenWords);
  }
  Stats.BytesAllocatedLocal += Runs * Foot * sizeof(Word);
  // First run is the live result; the rest are parked as dormant IdRaw
  // objects (valid headers keep the nursery walkable; IdRaw fields are
  // never scanned) chained through their first data word.
  Block[0] = makeHeader(IdVector, LenWords);
  Word *First = Block + 1;
  for (uint64_t R = 1; R < Runs; ++R) {
    Word *Hdr = Block + R * Foot;
    Hdr[0] = makeHeader(IdRaw, LenWords);
    Word *Run = Hdr + 1;
    Run[0] = reinterpret_cast<Word>(SizeClasses.Heads[LenWords]);
    SizeClasses.Heads[LenWords] = Run;
    ++SizeClasses.CachedRuns;
  }
  return First;
}

void VProcHeap::sizeClassFlush() {
  if (SizeClasses.CachedRuns == 0)
    return;
  for (auto &Head : SizeClasses.Heads)
    Head = nullptr;
  SizeClasses.CachedRuns = 0;
  ++Stats.SizeClassFlushes;
}

Value VProcHeap::allocVectorSlow(const Value *Elems, std::size_t N) {
  uint64_t LenWords = std::max<uint64_t>(1, N);
  if (vectorIsOversized(N)) {
    // The object lands in the global heap, so its elements must be
    // global first (no global-to-local pointers). Promote them in place:
    // Elems points at rooted slots, so rewriting them is sound, and the
    // husks left behind repair any other copies at the next minor GC.
    if (Elems)
      for (std::size_t I = 0; I < N; ++I)
        const_cast<Value *>(Elems)[I] = promote(Elems[I]);
    return allocGlobalVector(Elems, N);
  }
  ++Stats.SizeClassMisses;
  Word *Obj = sizeClassRefill(LenWords);
  Obj[LenWords - 1] = Value::nil().bits();
  for (std::size_t I = 0; I < N; ++I)
    Obj[I] = Elems ? Elems[I].bits() : Value::nil().bits();
  return Value::fromPtr(Obj);
}

Value VProcHeap::allocVectorFillSlow(std::size_t N, Value Fill) {
  uint64_t LenWords = std::max<uint64_t>(1, N);
  GcFrame Frame(*this);
  Frame.root(Fill);
  if (vectorIsOversized(N)) {
    Fill = promote(Fill);
    Word *Obj = globalAllocObject(IdVector, LenWords);
    Obj[LenWords - 1] = Value::nil().bits();
    for (std::size_t I = 0; I < N; ++I)
      Obj[I] = Fill.bits();
    return Value::fromPtr(Obj);
  }
  ++Stats.SizeClassMisses;
  Word *Obj = sizeClassRefill(LenWords);
  Obj[LenWords - 1] = Value::nil().bits();
  for (std::size_t I = 0; I < N; ++I)
    Obj[I] = Fill.bits();
  return Value::fromPtr(Obj);
}

Value gcinternal::HeapAccess::allocMixed(VProcHeap &H, uint16_t Id,
                                         const Word *Fields) {
  const ObjectDescriptor &Desc = H.World.descriptors().lookup(Id);
  Word *Obj = H.allocLocalObject(Id, Desc.sizeWords());
  std::memcpy(Obj, Fields, Desc.sizeWords() * sizeof(Word));
  return Value::fromPtr(Obj);
}

Value gcinternal::HeapAccess::allocMixedRooted(VProcHeap &H, uint16_t Id,
                                               const Word *RawFields,
                                               Value *const *PtrFieldSlots) {
  const ObjectDescriptor &Desc = H.World.descriptors().lookup(Id);
  Word *Obj = H.allocLocalObject(Id, Desc.sizeWords());
  std::memcpy(Obj, RawFields, Desc.sizeWords() * sizeof(Word));
  // The allocation may have collected; the rooted slots hold the current
  // addresses.
  for (unsigned I = 0; I < Desc.numPtrFields(); ++I)
    Obj[Desc.ptrOffsets()[I]] = PtrFieldSlots[I]->bits();
  return Value::fromPtr(Obj);
}

Value VProcHeap::allocGlobalRaw(const void *Data, std::size_t Bytes) {
  uint64_t LenWords = std::max<uint64_t>(1, divideCeil(Bytes, sizeof(Word)));
  Word *Obj = globalAllocObject(IdRaw, LenWords);
  Obj[LenWords - 1] = 0;
  if (Data)
    std::memcpy(Obj, Data, Bytes);
  else
    std::memset(Obj, 0, LenWords * sizeof(Word));
  return Value::fromPtr(Obj);
}

Value VProcHeap::allocGlobalVector(const Value *Elems, std::size_t N) {
  uint64_t LenWords = std::max<uint64_t>(1, N);
  Word *Obj = globalAllocObject(IdVector, LenWords);
  Obj[LenWords - 1] = Value::nil().bits();
  for (std::size_t I = 0; I < N; ++I) {
    Value V = Elems ? Elems[I] : Value::nil();
    MANTI_CHECK(!V.isPtr() || !Local.contains(V.asPtr()),
                "global vector element references a local heap");
    Obj[I] = V.bits();
  }
  return Value::fromPtr(Obj);
}

Value VProcHeap::promote(Value V) {
  if (!V.isPtr() || !Local.contains(V.asPtr()))
    return V;
  ScopedTimer Timer(Stats.PromotePause);
  ++Stats.PromoteCalls;
  GlobalEvacuator Evac(*this, EvacuateMode::AllLocal);
  Word NewW = Evac.forwardWord(V.bits());
  Evac.drain();
  Stats.PromoteBytes += Evac.bytesCopied();
  maybeTriggerGlobalGC(Evac.bytesCopied());
  return Value::fromBits(NewW);
}
