//===- gc/LocalHeap.h - per-vproc Appel semi-generational heap -----------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed-size per-vproc local heap of Section 3.3, with Appel's
/// semi-generational layout (Figures 2 and 3). Addresses grow upward:
///
///   Base          YoungStart    OldTop          NurseryStart        Top
///    |  old data  | young data  |  free (gap)   |  nursery  ....    |
///                                                ^AllocPtr  ->
///
///  * New objects bump-allocate in the nursery.
///  * A minor collection copies live nursery data to OldTop (it becomes
///    the new *young data*), then splits the remaining free space in
///    half, the upper half becoming the new nursery.
///  * A major collection evacuates [Base, YoungStart) to the global heap
///    and slides the young data down to Base.
///
/// The allocation limit is an atomic so another vproc can zero it to
/// signal a pending global collection (Section 3.4 step 2): the next
/// allocation then fails its limit check and enters the GC slow path.
///
/// The paper sizes local heaps to fit the L3 cache; the default here is
/// configurable (GCConfig::LocalHeapBytes) for the same reason.
///
//===----------------------------------------------------------------------===//

#ifndef MANTI_GC_LOCALHEAP_H
#define MANTI_GC_LOCALHEAP_H

#include "gc/ObjectModel.h"

#include <atomic>
#include <cstddef>

namespace manti {

class LocalHeap {
public:
  /// Wraps \p Bytes of 8-aligned storage at \p Mem (not owned).
  LocalHeap(void *Mem, std::size_t Bytes);

  LocalHeap(const LocalHeap &) = delete;
  LocalHeap &operator=(const LocalHeap &) = delete;

  Word *base() const { return Base; }
  Word *top() const { return Top; }
  std::size_t sizeBytes() const {
    return static_cast<std::size_t>(Top - Base) * sizeof(Word);
  }

  /// Region boundaries (see file comment).
  Word *youngStart() const { return YoungStart; }
  Word *oldTop() const { return OldTop; }
  Word *nurseryStart() const { return NurseryStart; }

  /// \returns true if \p P points into this heap (data words only).
  bool contains(const Word *P) const { return P >= Base && P < Top; }
  bool inNursery(const Word *P) const {
    return P >= NurseryStart && P < Top;
  }
  bool inOldData(const Word *P) const {
    return P >= Base && P < YoungStart;
  }
  bool inYoungData(const Word *P) const {
    return P >= YoungStart && P < OldTop;
  }

  /// Bytes of nursery already consumed by allocation.
  std::size_t nurseryUsedBytes() const {
    return static_cast<std::size_t>(AllocPtr - NurseryStart) * sizeof(Word);
  }
  /// Capacity of the current nursery.
  std::size_t nurseryCapacityBytes() const {
    return static_cast<std::size_t>(Top - NurseryStart) * sizeof(Word);
  }
  /// Bytes of live-ish data (old + young areas).
  std::size_t localDataBytes() const {
    return static_cast<std::size_t>(OldTop - Base) * sizeof(Word);
  }

  /// Bump-allocates header + \p LenWords data words in the nursery.
  /// \returns the object's first data word, or null if the nursery cannot
  /// satisfy the request (caller enters the GC slow path). Null is also
  /// returned when the limit was zeroed to signal a global collection.
  Word *tryAlloc(uint16_t Id, uint64_t LenWords) {
    Word *Hdr = AllocPtr;
    Word *NewTop = Hdr + LenWords + 1;
    if (NewTop > Limit.load(std::memory_order_relaxed))
      return nullptr;
    AllocPtr = NewTop;
    Hdr[0] = makeHeader(Id, LenWords);
    return Hdr + 1;
  }

  /// Bump-allocates \p TotalWords raw words in the nursery without
  /// writing a header; the caller lays out one or more headed objects in
  /// the block itself (the size-class refill carves a whole batch of
  /// runs in one bump). Null under the same conditions as tryAlloc.
  Word *tryAllocRun(uint64_t TotalWords) {
    Word *Blk = AllocPtr;
    Word *NewTop = Blk + TotalWords;
    if (NewTop > Limit.load(std::memory_order_relaxed))
      return nullptr;
    AllocPtr = NewTop;
    return Blk;
  }

  /// Zeroes the allocation limit; the owning vproc will take the slow
  /// path on its next allocation. Called by the global-GC leader.
  void signalLimit() { Limit.store(Base, std::memory_order_release); }

  /// Restores the allocation limit to the nursery top (owner only).
  void restoreLimit() { Limit.store(Top, std::memory_order_release); }

  /// \returns true if the limit is currently zeroed (signal pending).
  bool limitSignalled() const {
    return Limit.load(std::memory_order_acquire) != Top;
  }

  Word *allocPtr() const { return AllocPtr; }

  // The collectors (MinorGC/MajorGC) adjust the region boundaries
  // directly; they are the only mutators of this state besides reset().
  void setRegions(Word *NewYoungStart, Word *NewOldTop);

  /// Recomputes the nursery as the upper half of [OldTop, Top) and resets
  /// the allocation pointer (paper Fig. 2 right-hand side).
  void resplitNursery();

  /// Empties the heap entirely (used at startup and by tests).
  void reset();

private:
  Word *Base;
  Word *Top;
  Word *YoungStart;
  Word *OldTop;
  Word *NurseryStart;
  Word *AllocPtr;
  std::atomic<Word *> Limit;
};

} // namespace manti

#endif // MANTI_GC_LOCALHEAP_H
