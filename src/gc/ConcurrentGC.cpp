//===- gc/ConcurrentGC.cpp - mostly-concurrent global marking -------------===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mostly-concurrent global collector (GCConfig::ConcurrentGlobal):
/// snapshot-at-the-beginning marking overlapped with mutation, bounded
/// by two short rendezvous, with a non-moving whole-chunk sweep. The
/// stop-the-world copying collector (GlobalGC.cpp) remains the
/// compacting fallback and the ablation baseline.
///
/// A cycle proceeds through the GCPhase machine (gc/Heap.h):
///
///   ConcInit -- the *initial rendezvous*. Every vproc runs its minor
///   and major collections (afterwards each local heap is a husk-free,
///   linearly-walkable young area and everything else lives in global
///   chunks), the leader stamps every active chunk with the cycle
///   number and its allocation snapshot (Chunk::beginMark) and arms the
///   deletion barrier, then each vproc pushes the *values* of its roots
///   -- shadow stack, proxy table, runtime extras, and every global
///   reference found by walking its local heap -- onto the shared gray
///   stack. Nothing is moved and no slot is rewritten. The leader marks
///   the process-wide roots, flips the phase to ConcMark, and asks the
///   runtime to spawn marker tasks.
///
///   ConcMark -- tracing runs *concurrently with mutation*: per-node
///   marker tasks (scheduled as ordinary affinity-hinted tasks) and
///   bounded mutator assists at safe points drain the gray stack.
///   Soundness rests on three facts. (1) PML objects are immutable
///   once published, so the object graph reachable from the snapshot
///   can only shrink. (2) Objects allocated after the stamp sit above
///   their chunk's MarkLimit (or in an unstamped chunk) and are
///   retained wholesale without being scanned, so the tracer never
///   reads memory the mutator is still writing. (3) The only mutating
///   slots are roots, covered by the snapshot plus the terminal
///   re-scan, with a Yuasa-style deletion barrier (satbRecord /
///   satbRecordOverwrite) as a conservative backstop on overwrites.
///
///   ConcTerm -- the *terminal rendezvous*. Each vproc re-marks its
///   current root values (no local-heap walk is needed: local data is
///   retained by the vproc's own collections, and any global object it
///   came to reference was either snapshotted, retained by allocation
///   epoch, or recorded by the deletion barrier), the world drains the
///   gray stack cooperatively, and the leader sweeps: every stamped
///   chunk that ended the cycle with no marked objects and no
///   post-snapshot allocation is returned to the free pool. Chunks are
///   reclaimed whole; fragmented garbage is left to the next
///   stop-the-world compaction.
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorImpl.h"

#include "support/Logging.h"
#include "support/SpinLock.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace manti {

namespace {
/// Objects a mutator traces per safe-point assist. Small enough to keep
/// the poll latency bounded, large enough that assists alone terminate a
/// cycle when no marker tasks run (single-vproc tests, no runtime).
constexpr unsigned MutatorAssistBudget = 256;

/// Gray-stack objects claimed per batch (one InFlight increment each).
constexpr unsigned GrayBatch = 32;
} // namespace

/// Shared state for the concurrent mark cycles. Owned by the GCWorld.
class ConcurrentMark {
public:
  explicit ConcurrentMark(GCWorld &W) : W(W) {}

  /// Safe-point dispatch while Phase is one of the Conc* states.
  static void dispatch(VProcHeap &H);

  /// Marker-task work step; also the assist entry (see
  /// concurrentMarkSome below).
  bool markStep(VProcHeap &H, unsigned Budget);

  /// Marks the object at \p Obj (a global-heap pointer) for the running
  /// cycle. Objects in unstamped chunks or above their chunk's stamped
  /// allocation limit were allocated after the snapshot and are
  /// retained without scanning.
  void markObject(Word *Obj) {
    Chunk *C = W.Chunks.chunkOf(Obj);
    if (C->MarkEpoch.load(std::memory_order_relaxed) != Cycle)
      return; // chunk activated after the stamp: retained wholesale
    const Word *HdrSlot = Obj - 1;
    if (HdrSlot >= C->MarkLimit.load(std::memory_order_relaxed))
      return; // allocated after the stamp: retained, never scanned
    if (!C->testAndSetMark(HdrSlot))
      return;
    C->MarkedCount.fetch_add(1, std::memory_order_relaxed);
    pushGray(Obj);
  }

  /// Flips ConcMark -> ConcTerm when the gray stack looks drained. A
  /// racing deletion-barrier push can make the flip early; the terminal
  /// rendezvous re-drains the stack, so the race moves work into the
  /// terminal pause but never loses it.
  void tryTerminate() {
    {
      std::lock_guard<SpinLock> Guard(GrayLock);
      if (!Gray.empty())
        return;
    }
    if (InFlight.load(std::memory_order_acquire) != 0)
      return;
    GCPhase Expected = GCPhase::ConcMark;
    if (!W.Phase.compare_exchange_strong(Expected, GCPhase::ConcTerm,
                                         std::memory_order_acq_rel))
      return;
    for (auto &H : W.Heaps)
      H->local().signalLimit();
    W.notifyWakeupHook();
    MANTI_DEBUG("gc", "concurrent mark drained; terminal rendezvous");
  }

  void initRendezvous(VProcHeap &H);
  void terminalRendezvous(VProcHeap &H);

  GCWorld &W;

private:
  void pushGray(Word *Obj) {
    std::lock_guard<SpinLock> Guard(GrayLock);
    Gray.push_back(Obj);
  }

  /// Claims up to \p Max gray objects. Bumps InFlight (under the lock)
  /// when anything was claimed, so "gray empty" and "no batch active"
  /// can be checked as separate conditions by tryTerminate.
  unsigned popBatch(Word **Out, unsigned Max) {
    std::lock_guard<SpinLock> Guard(GrayLock);
    unsigned N = 0;
    while (N < Max && !Gray.empty()) {
      Out[N++] = Gray.back();
      Gray.pop_back();
    }
    if (N)
      InFlight.fetch_add(1, std::memory_order_acq_rel);
    return N;
  }

  void markWord(Word Wd) {
    if (wordIsPtr(Wd))
      markObject(reinterpret_cast<Word *>(Wd));
  }

  /// Marks a root value of \p H: local referents are skipped (kept by
  /// the vproc's own collections and covered by its local-heap walk).
  void markRootWord(VProcHeap &H, Word Wd) {
    if (!wordIsPtr(Wd))
      return;
    Word *Obj = reinterpret_cast<Word *>(Wd);
    if (H.local().contains(Obj))
      return;
    markObject(Obj);
  }

  void scanObject(Word *Obj);
  void markVProcRoots(VProcHeap &H, bool WalkLocalHeap);
  void drainUntilEmpty(VProcHeap &H);

  uint64_t Cycle = 0; ///< current mark epoch; changed only world-stopped
  SpinLock GrayLock;
  std::vector<Word *> Gray;
  /// Number of claimed-but-unfinished gray batches.
  std::atomic<int> InFlight{0};
};

ConcurrentMark *createConcurrentMark(GCWorld &W) {
  return new ConcurrentMark(W);
}

void ConcurrentMarkDeleter::operator()(ConcurrentMark *CM) const {
  delete CM;
}

/// Scans one marked (pre-snapshot, hence fully published) object. Only
/// proxies ever mutate after publication, so their two words are read
/// with atomic_refs: the owner word *first* (acquire) -- if it reads
/// resolved (-1), the subsequent payload load is guaranteed to see the
/// promoted global value the resolver published before flipping the
/// owner word (Proxy.cpp stores payload, then owner, both release).
void ConcurrentMark::scanObject(Word *Obj) {
  Word Hdr = headerOf(Obj);
  if (headerId(Hdr) == IdProxy) {
    Word OwnerW = std::atomic_ref<Word>(Obj[0]).load(std::memory_order_acquire);
    Word Payload =
        std::atomic_ref<Word>(Obj[1]).load(std::memory_order_acquire);
    if (!wordIsPtr(Payload))
      return;
    int64_t Owner = Value::fromBits(OwnerW).asInt();
    Word *Target = reinterpret_cast<Word *>(Payload);
    if (Owner >= 0 &&
        W.heap(static_cast<unsigned>(Owner)).local().contains(Target))
      return; // unresolved: the owner's proxy-table root keeps it alive
    markObject(Target);
    return;
  }
  // Ordinary objects may still have pointer fields CASed by mutators
  // mid-mark (lock-free structures do exactly that); a plain load here
  // is a data race with the mutator's atomic_ref CAS and, under the
  // SATB invariant, may also tear on weaker hardware. The dropped value
  // is covered by the mutator's SATB record; the new value is covered
  // either by this (acquire) load or by the allocating thread's mark.
  forEachPtrField(Obj, Hdr, W.Descs, [this](Word *Slot) {
    markWord(std::atomic_ref<Word>(*Slot).load(std::memory_order_acquire));
  });
}

bool ConcurrentMark::markStep(VProcHeap &H, unsigned Budget) {
  (void)H;
  const bool Prefetch = W.Config.ScanPrefetch;
  bool DidWork = false;
  while (Budget != 0) {
    Word *Batch[GrayBatch];
    unsigned N = popBatch(Batch, Budget < GrayBatch ? Budget : GrayBatch);
    if (N == 0)
      break;
    DidWork = true;
    // The gray batch is a random walk over the global heap: request
    // every header in the batch up front so the scans overlap the
    // misses instead of serializing on them.
    if (Prefetch)
      for (unsigned I = 0; I < N; ++I)
        MANTI_PREFETCH(Batch[I] - 1);
    for (unsigned I = 0; I < N; ++I)
      scanObject(Batch[I]);
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    Budget -= N;
  }
  return DidWork;
}

/// Pushes the values of \p H's roots: shadow stack, proxy objects and
/// their payload slots, runtime extras, and -- when \p WalkLocalHeap --
/// every global reference held by the (husk-free, post-major) local
/// heap. Values are only read, never rewritten: nothing moves.
void ConcurrentMark::markVProcRoots(VProcHeap &H, bool WalkLocalHeap) {
  // The proxy objects themselves are global and must survive; their
  // payload slots are covered by forEachVProcRoot below.
  for (Word *Proxy : H.ProxyTable)
    markObject(Proxy);
  forEachVProcRoot(H, [this, &H](Word *Slot) { markRootWord(H, *Slot); });

  if (!WalkLocalHeap)
    return;
  LocalHeap &L = H.local();
  for (Word *Scan = L.base(); Scan < L.oldTop();) {
    Word Hdr = *Scan;
    MANTI_CHECK(isHeaderWord(Hdr), "husk in local heap during mark snapshot");
    forEachPtrField(Scan + 1, Hdr, W.Descs,
                    [this, &H](Word *Slot) { markRootWord(H, *Slot); });
    Scan += objectFootprintWords(Hdr);
  }
}

void ConcurrentMark::initRendezvous(VProcHeap &H) {
  ScopedTimer Pause(H.Stats.GlobalPause);
  ScopedTimer Rendezvous(H.Stats.GlobalRendezvousPause);

  // Local collections first: afterwards the local heap is a husk-free
  // linear young area (promotion husks from mid-cycle would otherwise
  // break the walk below), and all old data sits in global chunks where
  // the stamp can see it.
  minorGCImpl(H);
  majorGCImpl(H, EvacuateMode::OldOnly);

  if (W.GCBarrier.arriveAndWait()) {
    // Leader, world stopped: open the cycle. Every currently-active
    // chunk is stamped; anything acquired afterwards stays unstamped
    // and is retained wholesale.
    ++Cycle;
    W.Chunks.beginMarkCycle(Cycle);
    Gray.clear();
    InFlight.store(0, std::memory_order_relaxed);
    W.SatbActive.store(true, std::memory_order_relaxed);
    MANTI_DEBUG("gc", "concurrent cycle %llu: snapshot (active=%llu)",
                static_cast<unsigned long long>(Cycle),
                static_cast<unsigned long long>(W.Chunks.activeBytes()));
  }
  W.GCBarrier.arriveAndWait();

  // Every vproc snapshots its own roots in parallel.
  markVProcRoots(H, /*WalkLocalHeap=*/true);

  if (W.GCBarrier.arriveAndWait()) {
    // Root snapshot complete everywhere: the leader adds the process-
    // wide roots, opens the concurrent phase, and asks the runtime for
    // marker tasks.
    auto Visit = [this](Word *Slot) { markWord(*Slot); };
    W.enumerateGlobalRoots(fieldVisitTrampoline<decltype(Visit)>, &Visit);
    W.Phase.store(GCPhase::ConcMark, std::memory_order_release);
    W.notifyConcurrentMarkHook(H.id());
  }
  // Final barrier: nobody resumes (or re-polls a stale ConcInit) until
  // the phase flip is published.
  W.GCBarrier.arriveAndWait();

  H.local().restoreLimit();
}

void ConcurrentMark::drainUntilEmpty(VProcHeap &H) {
  for (;;) {
    if (markStep(H, MutatorAssistBudget))
      continue;
    bool Empty;
    {
      std::lock_guard<SpinLock> Guard(GrayLock);
      Empty = Gray.empty();
    }
    if (Empty && InFlight.load(std::memory_order_acquire) == 0)
      return;
    std::this_thread::yield();
  }
}

void ConcurrentMark::terminalRendezvous(VProcHeap &H) {
  ScopedTimer Pause(H.Stats.GlobalPause);

  {
    ScopedTimer Mark(H.Stats.GlobalMarkPause);
    // Re-mark current root values: the roots are the only slots that
    // changed since the snapshot. No local-heap walk -- mid-cycle
    // promotions may have left husks, and every global object a local
    // one references is covered by the snapshot, the allocation epoch,
    // or the deletion barrier.
    markVProcRoots(H, /*WalkLocalHeap=*/false);
    if (W.GCBarrier.arriveAndWait()) {
      // All mutators are stopped and re-marked; the snapshot no longer
      // needs its barrier, and the leader re-marks the global roots.
      W.SatbActive.store(false, std::memory_order_relaxed);
      auto Visit = [this](Word *Slot) { markWord(*Slot); };
      W.enumerateGlobalRoots(fieldVisitTrampoline<decltype(Visit)>, &Visit);
    }
    W.GCBarrier.arriveAndWait();
    // Cooperative final drain (the marker tasks' leftovers plus
    // whatever the re-scan and the deletion barrier added).
    drainUntilEmpty(H);
  }

  if (W.GCBarrier.arriveAndWait()) {
    ScopedTimer Sweep(H.Stats.GlobalSweepPause);
    // Pin every vproc's current allocation chunk: releasing one would
    // leave a dangling CurChunk bump pointer.
    std::vector<const Chunk *> Pinned;
    Pinned.reserve(W.Heaps.size());
    for (auto &Heap : W.Heaps)
      if (Heap->CurChunk)
        Pinned.push_back(Heap->CurChunk);
    uint64_t Freed = W.Chunks.sweepUnmarked(Cycle, Pinned);
    uint64_t Live = W.Chunks.activeBytes();
    uint64_t Base = static_cast<uint64_t>(W.Config.GlobalGCBytesPerVProc) *
                    W.numVProcs();
    W.GlobalGCThreshold.store(std::max(Base, 2 * Live),
                              std::memory_order_relaxed);
    W.GlobalLiveBytes.store(Live, std::memory_order_relaxed);
    for (auto &Heap : W.Heaps)
      Heap->GlobalAllocSinceCycle.store(0, std::memory_order_relaxed);
    W.GlobalGCsCompleted.fetch_add(1, std::memory_order_relaxed);
    W.ConcurrentGCsCompleted.fetch_add(1, std::memory_order_relaxed);
    W.Phase.store(GCPhase::Idle, std::memory_order_release);
    W.notifyWakeupHook();
    MANTI_DEBUG("gc",
                "concurrent cycle %llu: freed %llu bytes, live %llu bytes",
                static_cast<unsigned long long>(Cycle),
                static_cast<unsigned long long>(Freed),
                static_cast<unsigned long long>(Live));
  }
  W.GCBarrier.arriveAndWait();

  H.local().restoreLimit();
}

void ConcurrentMark::dispatch(VProcHeap &H) {
  ConcurrentMark &CM = *H.world().CMState;
  switch (H.world().phase()) {
  case GCPhase::Idle:
    return; // cycle completed between the caller's load and ours
  case GCPhase::StwPending:
    // The phase moved on to a STW request since the caller's load.
    globalGCParticipate(H);
    return;
  case GCPhase::ConcInit:
    CM.initRendezvous(H);
    return;
  case GCPhase::ConcMark:
    // Bounded mutator assist: guarantees cycle progress even when no
    // marker tasks are running (no runtime, or they all finished).
    if (!CM.markStep(H, MutatorAssistBudget))
      CM.tryTerminate();
    return;
  case GCPhase::ConcTerm:
    CM.terminalRendezvous(H);
    return;
  }
}

void concurrentGCSafePoint(VProcHeap &H) { ConcurrentMark::dispatch(H); }

bool concurrentMarkSome(VProcHeap &H, unsigned Budget) {
  GCWorld &W = H.world();
  if (W.phase() != GCPhase::ConcMark)
    return false;
  ConcurrentMark &CM = *W.CMState;
  if (!CM.markStep(H, Budget)) {
    CM.tryTerminate();
    return false;
  }
  return true;
}

/// Cold half of the deletion barrier: called on slot overwrites while a
/// snapshot is held. Local referents are the vproc's own business; a
/// global referent is (re-)marked so the snapshot stays closed.
void VProcHeap::satbMarkOld(Value Old) {
  Word *Obj = Old.asPtr();
  if (Local.contains(Obj))
    return;
  World.CMState->markObject(Obj);
}

} // namespace manti
