//===- gc/MajorGC.cpp - major collection and promotion (paper Fig. 3) -----===//
//
// Part of the manticore-gc project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The major collector copies live objects from the old-data area of a
/// vproc's local heap to the vproc's dedicated chunk in the global heap.
/// To avoid premature promotion it retains the *young data* -- the data
/// copied by the immediately-preceding minor collection, guaranteed live
/// -- sliding it down to the heap base instead.
///
/// Synchronization is needed only when the current global chunk is
/// exhausted (chunk acquisition inside VProcHeap::globalReserve), which
/// is the paper's node-local/global synchronization split.
///
/// Promotion ("essentially a major collection, where the root set is a
/// pointer to the promoted object") reuses the same evacuator with the
/// AllLocal mode, as does the emergency path that empties a local heap
/// whose live data no longer leaves a usable nursery.
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorImpl.h"

#include "support/Logging.h"

#include <cstring>

using namespace manti;

//===----------------------------------------------------------------------===//
// GlobalEvacuator
//===----------------------------------------------------------------------===//

GlobalEvacuator::GlobalEvacuator(VProcHeap &H, EvacuateMode Mode)
    : H(H), Mode(Mode), Prefetch(H.world().config().ScanPrefetch) {
  // Start scanning at the current fill point of the vproc's chunk;
  // everything before it was copied by earlier collections and already
  // satisfies the invariants.
  if (H.CurChunk)
    ScanCursors.push_back({H.CurChunk, H.CurChunk->AllocPtr});
}

bool GlobalEvacuator::shouldEvacuate(const Word *Obj) const {
  if (Mode == EvacuateMode::OldOnly)
    return H.local().inOldData(Obj);
  return H.local().contains(Obj);
}

Word GlobalEvacuator::forwardWord(Word W) {
  if (!wordIsPtr(W))
    return W;
  Word *Obj = reinterpret_cast<Word *>(W);
  if (!shouldEvacuate(Obj))
    return W;
  Word Hdr = headerOf(Obj);
  if (isForwardWord(Hdr))
    return Hdr; // already promoted (possibly by an earlier promotion)

  uint64_t Foot = objectFootprintWords(Hdr);
  Chunk *Used = nullptr;
  Word *NewHdrSlot = H.globalReserve(Foot, &Used);
  // Start a scan cursor the first time a copy lands in a chunk this
  // evacuation has not touched yet (fresh CurChunk or oversized chunk).
  bool Covered = false;
  for (const auto &[C, Cur] : ScanCursors)
    Covered |= (C == Used);
  if (!Covered)
    ScanCursors.push_back({Used, NewHdrSlot});
  std::memcpy(NewHdrSlot, Obj - 1, Foot * sizeof(Word));
  Word *NewObj = NewHdrSlot + 1;
  headerOf(Obj) = reinterpret_cast<Word>(NewObj);
  Bytes += Foot * sizeof(Word);

  // Traffic: read from the local heap's bank, write to the used chunk's
  // bank, both through this vproc's node.
  TrafficMatrix &T = H.world().traffic();
  T.record(H.localHeapHomeNode(), H.node(), Foot * sizeof(Word));
  T.record(H.node(), Used->HomeNode, Foot * sizeof(Word));
  return reinterpret_cast<Word>(NewObj);
}

void GlobalEvacuator::drain() {
  const ObjectDescriptorTable &Descs = H.world().descriptors();
  bool Progress = true;
  while (Progress) {
    Progress = false;
    // Index-based: forwardWord may push new cursors while we scan.
    for (std::size_t I = 0; I < ScanCursors.size(); ++I) {
      for (;;) {
        Chunk *C = ScanCursors[I].first;
        Word *Cur = ScanCursors[I].second;
        if (Cur >= C->AllocPtr)
          break;
        Word Hdr = *Cur;
        MANTI_CHECK(isHeaderWord(Hdr), "corrupt header in evacuation scan");
        MANTI_CHECK(headerId(Hdr) != IdProxy,
                    "local heaps never hold proxy objects");
        uint64_t Foot = objectFootprintWords(Hdr);
        if (Prefetch) {
          // Pull in the next copy's header and this copy's pointer
          // targets before the forwarding pass needs them: the drain
          // walks freshly-written global chunks while chasing local
          // source objects, both outside cache on real heaps.
          MANTI_PREFETCH(Cur + Foot);
          forEachPtrField(Cur + 1, Hdr, Descs, [&](Word *Slot) {
            Word W = *Slot;
            if (wordIsPtr(W))
              MANTI_PREFETCH(reinterpret_cast<Word *>(W) - 1);
          });
        }
        forEachPtrField(Cur + 1, Hdr, Descs,
                        [&](Word *Slot) { visitSlot(Slot); });
        ScanCursors[I].second = Cur + Foot;
        Progress = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Major collection
//===----------------------------------------------------------------------===//

void manti::majorGCImpl(VProcHeap &H, EvacuateMode Mode) {
  LocalHeap &L = H.local();
  ScopedTimer Timer(H.Stats.MajorPause);
  const ObjectDescriptorTable &Descs = H.world().descriptors();

  // Cached size-class runs live in the nursery; an AllLocal evacuation
  // empties the whole local heap (and even OldOnly resplits the
  // nursery), so the cache must not survive either mode.
  H.sizeClassFlush();

  Word *const Base = L.base();
  Word *const YoungStart = L.youngStart();
  Word *const OldTop = L.oldTop();

  GlobalEvacuator Evac(H, Mode);

  // Roots. In OldOnly mode, roots into the young area are left alone
  // here and repaired by the slide below.
  forEachVProcRoot(H, [&](Word *Slot) { Evac.visitSlot(Slot); });

  if (Mode == EvacuateMode::OldOnly) {
    // The young data acts as part of the root set: its fields can
    // reference old data (never the other way around -- objects only
    // point at older objects). This walk is safe because the young area
    // was produced by the immediately-preceding minor collection and so
    // contains no promotion husks.
    for (Word *Scan = YoungStart; Scan < OldTop;) {
      Word Hdr = *Scan;
      MANTI_CHECK(isHeaderWord(Hdr), "forwarded object in young area");
      forEachPtrField(Scan + 1, Hdr, Descs,
                      [&](Word *Slot) { Evac.visitSlot(Slot); });
      Scan += objectFootprintWords(Hdr);
    }
  }

  Evac.drain();
  H.Stats.MajorBytesPromoted += Evac.bytesCopied();

  if (Mode == EvacuateMode::OldOnly) {
    // Slide the young data down to the heap base (Fig. 3 "Move"),
    // rewriting young-internal pointers and roots by the displacement.
    std::ptrdiff_t YoungWords = OldTop - YoungStart;
    std::ptrdiff_t Delta = YoungStart - Base;
    if (Delta > 0 && YoungWords > 0) {
      std::memmove(Base, YoungStart, YoungWords * sizeof(Word));
      auto SlideSlot = [&](Word *Slot) {
        Word W = *Slot;
        if (!wordIsPtr(W))
          return;
        Word *Obj = reinterpret_cast<Word *>(W);
        if (Obj >= YoungStart && Obj < OldTop)
          *Slot = reinterpret_cast<Word>(Obj - Delta);
      };
      for (Word *Scan = Base; Scan < Base + YoungWords;) {
        Word Hdr = *Scan;
        MANTI_CHECK(isHeaderWord(Hdr), "corrupt header while sliding");
        forEachPtrField(Scan + 1, Hdr, Descs, SlideSlot);
        Scan += objectFootprintWords(Hdr);
      }
      forEachVProcRoot(H, SlideSlot);
      H.Stats.MajorBytesSlid +=
          static_cast<uint64_t>(YoungWords) * sizeof(Word);
      // The slide moves data within the local heap's own pages.
      H.world().traffic().record(H.localHeapHomeNode(), H.node(),
                                 static_cast<uint64_t>(YoungWords) *
                                     sizeof(Word) * 2);
    }
    // The slid young data becomes the old data; the young area is empty
    // until the next minor collection.
    L.setRegions(Base + YoungWords, Base + YoungWords);
  } else {
    // AllLocal: everything reachable left the local heap.
    L.setRegions(Base, Base);
  }

  L.resplitNursery();
  if (H.world().rendezvousRequested())
    L.signalLimit();

  // Acquiring chunks may have pushed the global heap over its trigger
  // (the paper: vprocs-times-32MB). Requesting is a no-op while a global
  // collection is already pending or in progress.
  GCWorld &W = H.world();
  if (W.chunks().activeBytes() > W.globalGCThresholdBytes())
    W.requestGlobalGC();

  MANTI_DEBUG("gc", "vp%u major(%s): promoted %llu slid %lld words", H.id(),
              Mode == EvacuateMode::OldOnly ? "old" : "all",
              static_cast<unsigned long long>(Evac.bytesCopied()),
              static_cast<long long>(Mode == EvacuateMode::OldOnly
                                         ? OldTop - YoungStart
                                         : 0));
}
